// Degradation-ladder coverage for incremental resize (DESIGN.md
// "Incremental resize & degradation ladder"): rung 1 (allocation failure
// at the growth trigger defers the doubling and keeps serving), rung 2
// (the hard 15/16 watermark sheds instead of letting probe runs rot),
// recovery (backoff expiry retries the doubling and drains to a single
// table), and the acceptance claim that an allocation failure landing
// mid-migration leaves every backend validator-clean and lookup-correct.
//
// The injector choreography relies on a deliberate structural property of
// every growing backend: an insert polls the injector exactly once for
// its own PCB, and start_migration() polls exactly once more before
// touching memory. arm_after(2) around a single insert therefore fails
// precisely the growth attempt — never the insert itself — and a
// non-growing insert leaves the single-shot unconsumed (reset by the
// disarm that follows).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/demux_registry.h"
#include "core/fault_inject.h"
#include "core/validate.h"
#include "net/flow_key.h"

namespace tcpdemux::core {
namespace {

// The injector is process-wide: every test must leave it disarmed even on
// assertion failure, or it would poison later tests in the same binary.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::instance().reset(); }
  ~InjectorGuard() { FaultInjector::instance().reset(); }
};

net::FlowKey nth_key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 2), 1521,
                      net::Ipv4Addr(0x0a030000U + i),
                      static_cast<std::uint16_t>(3000 + (i & 0x7fff))};
}

// Ceiling on blind insert loops: generously above every table's growth
// trigger (largest is cuckoo:64 at 224 entries) yet small enough that a
// broken trigger fails the test instead of hanging it.
constexpr std::uint32_t kMaxAttempts = 4096;

class ResizeLadderTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const auto config = parse_demux_spec(GetParam());
    ASSERT_TRUE(config.has_value()) << GetParam();
    demuxer_ = make_demuxer(*config);
    ASSERT_NE(demuxer_, nullptr) << GetParam();
  }

  // Inserts nth_key(next_) and bumps next_ on success.
  [[nodiscard]] bool insert_next() {
    if (demuxer_->insert(nth_key(next_)) == nullptr) return false;
    ++next_;
    return true;
  }

  void expect_all_inserted_found(const char* when) {
    for (std::uint32_t i = 0; i < next_; ++i) {
      ASSERT_NE(demuxer_->lookup(nth_key(i)).pcb, nullptr)
          << GetParam() << " " << when << ": key " << i << " of " << next_;
    }
    EXPECT_EQ(demuxer_->size(), next_) << GetParam() << " " << when;
    EXPECT_EQ(validate_demuxer(*demuxer_).to_string(), "")
        << GetParam() << " " << when;
  }

  std::unique_ptr<Demuxer> demuxer_;
  std::uint32_t next_ = 0;  // keys [0, next_) are resident
};

// The full ladder, bottom to top: defer -> serve -> shed -> retry ->
// drain. Each rung is observed through telemetry counters and the
// structural validator only — no backend downcasts, so the contract is
// pinned at the Demuxer interface every caller actually uses.
TEST_P(ResizeLadderTest, DeferServesShedThenRecovers) {
  InjectorGuard guard;
  auto& injector = FaultInjector::instance();

  // Rung 1: walk inserts toward the growth trigger, failing exactly the
  // allocation start_migration() would make. The triggering insert must
  // still be admitted — deferral refuses the *doubling*, not the packet.
  std::uint32_t deferred_at = 0;
  for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    injector.arm_after(2);
    const bool admitted = insert_next();
    injector.disarm();
    if (demuxer_->telemetry().counters().resizes_deferred > 0) {
      EXPECT_TRUE(admitted) << GetParam() << ": deferring insert refused";
      deferred_at = next_;
      break;
    }
    ASSERT_TRUE(admitted) << GetParam() << ": refused below trigger at "
                          << next_;
  }
  ASSERT_GT(deferred_at, 0u) << GetParam() << ": growth never triggered";
  EXPECT_EQ(demuxer_->telemetry().counters().resizes_deferred, 1u);
  EXPECT_EQ(demuxer_->telemetry().counters().resizes_started, 0u);
  expect_all_inserted_found("after rung-1 defer");

  // Between the 7/8 trigger and the 15/16 watermark the table keeps
  // admitting; at the watermark it sheds. Keep every backoff retry
  // failing too (same arm_after(2) trick) so the block genuinely holds
  // until we choose to lift it, independent of the backoff constants.
  const std::uint64_t shed_before = demuxer_->resilience().inserts_shed;
  std::uint32_t admitted_blocked = 0;
  std::uint32_t shed_seen = 0;
  for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    injector.arm_after(2);
    const bool admitted = insert_next();
    injector.disarm();
    if (admitted) {
      ++admitted_blocked;
    } else if (demuxer_->resilience().inserts_shed > shed_before) {
      ++shed_seen;
      if (shed_seen >= 3) break;  // rung 2 is holding, not a one-off
    }
  }
  EXPECT_EQ(shed_seen, 3u) << GetParam() << ": watermark never shed";
  EXPECT_GT(admitted_blocked, 0u)
      << GetParam() << ": blocked table stopped admitting below watermark";
  EXPECT_EQ(demuxer_->telemetry().counters().resizes_started, 0u);
  expect_all_inserted_found("at rung-2 watermark");

  // Recovery: with allocations healthy again, refused inserts burn down
  // the backoff; the retry lands, the doubling starts, and admissions
  // resume. The shed keys were dropped — TCP retransmit is the contract
  // — so the recovered table simply admits the next arrivals.
  bool resumed = false;
  for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (insert_next() &&
        demuxer_->telemetry().counters().resizes_started > 0) {
      resumed = true;
      break;
    }
  }
  ASSERT_TRUE(resumed) << GetParam() << ": backoff retry never landed";
  expect_all_inserted_found("after recovery");

  // Drain to a single table and confirm nothing was lost along the way.
  std::uint32_t steps = 0;
  while (demuxer_->migration_step()) {
    ASSERT_LT(++steps, kMaxAttempts) << GetParam() << ": drain never ended";
  }
  EXPECT_GE(demuxer_->telemetry().counters().resizes_completed, 1u);
  expect_all_inserted_found("after drain");
}

// ISSUE acceptance: an allocation failure arriving *mid-migration* must
// not corrupt either table or stall the drain — migration moves existing
// PCBs and allocates nothing, so it completes even while every new
// allocation in the process is failing.
TEST_P(ResizeLadderTest, AllocFailureMidMigrationDrainsClean) {
  InjectorGuard guard;
  auto& injector = FaultInjector::instance();

  // Healthy growth: insert until a doubling starts. The starting insert
  // migrates only a bounded batch, so the old table still holds debt.
  for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    ASSERT_TRUE(insert_next()) << GetParam() << ": refused while healthy";
    if (demuxer_->telemetry().counters().resizes_started > 0) break;
  }
  ASSERT_GT(demuxer_->telemetry().counters().resizes_started, 0u)
      << GetParam() << ": growth never started";
  expect_all_inserted_found("at migration start");

  // Total allocation failure, mid-drain. New inserts are refused before
  // touching either table; lookups and explicit steps keep migrating.
  injector.arm_every(1);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(demuxer_->insert(nth_key(next_ + i)), nullptr) << GetParam();
    EXPECT_EQ(validate_demuxer(*demuxer_).to_string(), "")
        << GetParam() << ": refused insert " << i << " mid-migration";
  }
  std::uint32_t steps = 0;
  while (demuxer_->migration_step()) {
    ASSERT_LT(++steps, kMaxAttempts) << GetParam() << ": drain never ended";
  }
  injector.disarm();
  EXPECT_GE(demuxer_->telemetry().counters().resizes_completed, 1u)
      << GetParam() << ": drain did not complete under allocation failure";
  expect_all_inserted_found("after drain under failure");

  // The refused arrivals were dropped, not half-inserted: they are absent
  // now and insert cleanly once allocations recover.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(demuxer_->lookup(nth_key(next_ + i)).pcb, nullptr)
        << GetParam();
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(insert_next()) << GetParam() << ": refused after recovery";
  }
  expect_all_inserted_found("after full recovery");
}

INSTANTIATE_TEST_SUITE_P(
    GrowingBackends, ResizeLadderTest,
    ::testing::Values("dynamic:5:crc32:incremental", "flat:64:incremental",
                      "flat16:64:incremental", "cuckoo:64:crc32c:incremental"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '@' || c == '=') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tcpdemux::core
