// Keyed-hashing correctness: SipHash reference vectors, seed-0 paper
// parity, the two-tier seeding contract from net/hashers.h, and the
// seed grammar (hash_spec_name / parse_hash_spec_token round trips).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "core/demux_registry.h"
#include "net/flow_key.h"
#include "net/hashers.h"
#include "sim/collision_flood.h"

namespace tcpdemux::net {
namespace {

// The official test key: bytes 00 01 .. 0f, little-endian halves.
constexpr std::uint64_t kK0 = 0x0706050403020100ULL;
constexpr std::uint64_t kK1 = 0x0f0e0d0c0b0a0908ULL;

std::vector<std::uint8_t> iota_bytes(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  std::iota(bytes.begin(), bytes.end(), std::uint8_t{0});
  return bytes;
}

std::vector<FlowKey> sample_keys(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<FlowKey> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(FlowKey{Ipv4Addr(rng() | 1u),
                           static_cast<std::uint16_t>(rng() | 1u),
                           Ipv4Addr(rng() | 1u),
                           static_cast<std::uint16_t>(rng() | 1u)});
  }
  return keys;
}

TEST(SipHash, MatchesOfficialSipHash24Vectors) {
  // First rows of the reference vectors_sip64 table (SipHash-2-4, the
  // original parameters) — proves the compression/finalization rounds,
  // length byte, and little-endian packing are exactly the paper's.
  EXPECT_EQ(siphash(iota_bytes(0), kK0, kK1, 2, 4), 0x726fdb47dd0e0e31ULL);
  EXPECT_EQ(siphash(iota_bytes(1), kK0, kK1, 2, 4), 0x74f839c593dc67fdULL);
}

TEST(SipHash, MatchesSipHash13ReferenceVectors) {
  // SipHash-1-3 (the deployed parameterization) under the same key and
  // inputs, cross-checked against the reference implementation. Lengths
  // cover: empty, sub-block, 7/8 tail boundary, one full block (12 = the
  // flow-key size), and block+tail.
  EXPECT_EQ(siphash(iota_bytes(0), kK0, kK1, 1, 3), 0xabac0158050fc4dcULL);
  EXPECT_EQ(siphash(iota_bytes(1), kK0, kK1, 1, 3), 0xc9f49bf37d57ca93ULL);
  EXPECT_EQ(siphash(iota_bytes(7), kK0, kK1, 1, 3), 0xd3927d989bb11140ULL);
  EXPECT_EQ(siphash(iota_bytes(8), kK0, kK1, 1, 3), 0x369095118d299a8eULL);
  EXPECT_EQ(siphash(iota_bytes(12), kK0, kK1, 1, 3), 0x78a384b157b4d9a2ULL);
  EXPECT_EQ(siphash(iota_bytes(15), kK0, kK1, 1, 3), 0xd320d86d2a519956ULL);
}

TEST(KeyedHash, SeedZeroIsBitIdenticalToUnkeyed) {
  // Paper parity: every analytic/differential result in the repo is
  // produced with seed 0, which must be THE unkeyed function, not merely
  // an equivalent one.
  const auto keys = sample_keys(200, 0xfee1);
  for (const HasherKind kind : kAllHashers) {
    const HashSpec spec{kind, 0};
    for (const FlowKey& key : keys) {
      ASSERT_EQ(hash_flow(spec, key), hash_flow(kind, key))
          << hasher_name(kind);
    }
  }
}

TEST(KeyedHash, NonzeroSeedChangesAlmostEveryHash) {
  const auto keys = sample_keys(200, 0xfee2);
  for (const HasherKind kind : kAllHashers) {
    const HashSpec keyed{kind, 0x5eed};
    std::size_t changed = 0;
    for (const FlowKey& key : keys) {
      if (hash_flow(keyed, key) != hash_flow(kind, key)) ++changed;
    }
    // A 32-bit rehash leaves a key fixed with probability 2^-32; allow a
    // couple of coincidences, no more.
    EXPECT_GE(changed, keys.size() - 2) << hasher_name(kind);
  }
}

TEST(KeyedHash, DistinctSeedsDisagree) {
  const auto keys = sample_keys(100, 0xfee3);
  for (const HasherKind kind : {HasherKind::kSipHash, HasherKind::kCrc32}) {
    std::size_t changed = 0;
    for (const FlowKey& key : keys) {
      if (hash_flow({kind, 1}, key) != hash_flow({kind, 2}, key)) ++changed;
    }
    EXPECT_GE(changed, keys.size() - 2) << hasher_name(kind);
  }
}

TEST(KeyedHash, PostMixSeedingCannotSeparateFullHashCollisions) {
  // The documented limitation (net/hashers.h): legacy hashers seed by
  // post-mixing the 32-bit value, so keys engineered to share the full
  // xor_fold hash collide under EVERY xor_fold seed...
  sim::CollisionFloodParams params;
  params.count = 64;
  const auto keys = sim::craft_xorfold_collisions(params, 0xabad1dea);
  ASSERT_EQ(keys.size(), 64u);
  for (const std::uint32_t seed : {0u, 1u, 0x5eedu, 0xffffffffu}) {
    const HashSpec spec{HasherKind::kXorFold, seed};
    const std::uint32_t h0 = hash_flow(spec, keys.front());
    for (const FlowKey& key : keys) {
      ASSERT_EQ(hash_flow(spec, key), h0) << "seed " << seed;
    }
  }
}

TEST(KeyedHash, SipHashScattersFullHashCollisions) {
  // ...while the keyed PRF tier scatters the same crafted population.
  sim::CollisionFloodParams params;
  params.count = 1024;
  const auto keys = sim::craft_xorfold_collisions(params, 0xabad1dea);
  constexpr std::uint32_t kChains = 19;
  const HashSpec spec{HasherKind::kSipHash, 0x5eed};
  std::vector<std::size_t> chains(kChains, 0);
  for (const FlowKey& key : keys) ++chains[hash_chain(spec, key, kChains)];
  std::size_t max_chain = 0;
  for (const std::size_t n : chains) {
    EXPECT_GT(n, 0u);
    max_chain = std::max(max_chain, n);
  }
  // Uniform would be ~54 per chain; anything near the 1024-key pileup the
  // unkeyed table suffers means the PRF failed.
  EXPECT_LT(max_chain, 128u);
}

TEST(KeyedHash, NextSeedNeverReturnsZeroOrFixpoint) {
  std::uint32_t seed = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t rotated = next_seed(seed);
    ASSERT_NE(rotated, 0u);
    ASSERT_NE(rotated, seed);
    seed = rotated;
  }
  EXPECT_EQ(next_seed(7), next_seed(7));  // deterministic
}

TEST(KeyedHash, SpecNameFormatsSeedAsHexSuffix) {
  EXPECT_EQ(hash_spec_name({HasherKind::kCrc32, 0}), "crc32");
  EXPECT_EQ(hash_spec_name({HasherKind::kSipHash, 0xdeadbeef}),
            "siphash@deadbeef");
  EXPECT_EQ(hash_spec_name({HasherKind::kXorFold, 0x1}), "xor_fold@1");
  EXPECT_EQ(hash_spec_name({HasherKind::kJenkins, 0xffffffff}),
            "jenkins@ffffffff");
}

TEST(KeyedHash, SpecNameRoundTripsThroughParser) {
  for (const HasherKind kind : kAllHashers) {
    for (const std::uint32_t seed : {0u, 1u, 0xabcu, 0xdeadbeefu}) {
      const HashSpec spec{kind, seed};
      const auto parsed = core::parse_hash_spec_token(hash_spec_name(spec));
      ASSERT_TRUE(parsed.has_value()) << hash_spec_name(spec);
      EXPECT_EQ(*parsed, spec) << hash_spec_name(spec);
    }
  }
}

TEST(KeyedHash, ParserRejectsMalformedSeedTokens) {
  EXPECT_FALSE(core::parse_hash_spec_token("crc32@").has_value());
  EXPECT_FALSE(core::parse_hash_spec_token("crc32@xyz").has_value());
  EXPECT_FALSE(core::parse_hash_spec_token("crc32@123456789").has_value());
  EXPECT_FALSE(core::parse_hash_spec_token("crc32@12 ").has_value());
  EXPECT_FALSE(core::parse_hash_spec_token("sha256@12").has_value());
  EXPECT_FALSE(core::parse_hash_spec_token("@12").has_value());
  // "@0" is the explicit unkeyed spelling, not an error.
  const auto unkeyed = core::parse_hash_spec_token("crc32@0");
  ASSERT_TRUE(unkeyed.has_value());
  EXPECT_FALSE(unkeyed->keyed());
}

TEST(KeyedHash, RegistryThreadsSeedsIntoDemuxerNames) {
  const struct {
    const char* spec;
    const char* name;
  } kCases[] = {
      {"sequent:19:siphash@beef", "sequent(h=19,siphash@beef)"},
      {"sequent:19:crc32@0", "sequent(h=19,crc32)"},
      {"sequent:7:xor_fold@a:rehash:max=500",
       "sequent(h=7,xor_fold@a,rehash,max=500)"},
      {"dynamic:5:jenkins@12:max=100", "dynamic(h=5,jenkins@12,max=100)"},
      {"rcu:101:siphash@2:nocache", "rcu(h=101,siphash@2,nocache)"},
      {"flat:64:siphash@beef", "flat(cap=64,siphash@beef)"},
      {"flat:256:crc32:rehash:max=128",
       "flat(cap=256,crc32,rehash,max=128)"},
      {"flat16:64:siphash@beef", "flat16(cap=64,siphash@beef)"},
      {"flat16:256:crc32c:rehash:max=128",
       "flat16(cap=256,crc32c,rehash,max=128)"},
      {"cuckoo:64:siphash@beef", "cuckoo(cap=64,siphash@beef)"},
      {"cuckoo:256:crc32c:rehash:max=128",
       "cuckoo(cap=256,crc32c,rehash,max=128)"},
  };
  for (const auto& c : kCases) {
    const auto config = core::parse_demux_spec(c.spec);
    ASSERT_TRUE(config.has_value()) << c.spec;
    const auto demuxer = core::make_demuxer(*config);
    ASSERT_NE(demuxer, nullptr) << c.spec;
    EXPECT_EQ(demuxer->name(), c.name) << c.spec;
  }
}

TEST(KeyedHash, RegistryRejectsSeedAndOptionMisuse) {
  // hashed_mtf is a frozen paper strawman: no seeds.
  EXPECT_FALSE(core::parse_demux_spec("hashed_mtf:19:crc32@1").has_value());
  // Options gated per algorithm.
  EXPECT_FALSE(core::parse_demux_spec("dynamic:5:crc32:rehash").has_value());
  EXPECT_FALSE(core::parse_demux_spec("rcu:19:crc32:max=4").has_value());
  EXPECT_FALSE(core::parse_demux_spec("flat:64:crc32:nocache").has_value());
  EXPECT_FALSE(core::parse_demux_spec("flat16:64:crc32:nocache").has_value());
  EXPECT_FALSE(core::parse_demux_spec("cuckoo:64:crc32c:nocache").has_value());
  EXPECT_FALSE(core::parse_demux_spec("bsd:rehash").has_value());
  // Duplicate and malformed options.
  EXPECT_FALSE(
      core::parse_demux_spec("sequent:19:crc32:rehash:rehash").has_value());
  EXPECT_FALSE(core::parse_demux_spec("sequent:19:crc32:max=0").has_value());
  EXPECT_FALSE(core::parse_demux_spec("sequent:19:crc32@zz").has_value());
}

}  // namespace
}  // namespace tcpdemux::net
