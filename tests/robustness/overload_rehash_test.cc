// Flood detection and graceful degradation: the watermark monitors must
// fire under a crafted collision flood, rotate the seed, and restore
// balanced placement — and must NEVER fire on benign traffic, however
// skewed, so the paper's unkeyed results stay untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/cuckoo_demuxer.h"
#include "core/flat_demuxer.h"
#include "core/sequent_hash.h"
#include "core/validate.h"
#include "net/hashers.h"
#include "sim/collision_flood.h"

namespace tcpdemux::core {
namespace {

std::vector<net::FlowKey> random_keys(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<net::FlowKey> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(net::FlowKey{net::Ipv4Addr(rng() | 1u),
                                static_cast<std::uint16_t>(rng() | 1u),
                                net::Ipv4Addr(rng() | 1u),
                                static_cast<std::uint16_t>(rng() | 1u)});
  }
  return keys;
}

TEST(OverloadRehash, SequentRotatesSeedAndRebalancesUnderChainFlood) {
  SequentDemuxer demuxer(
      {19, {net::HasherKind::kXorFold, 0}, true, /*rehash_on_overload=*/true,
       0});
  ASSERT_FALSE(demuxer.hash_spec().keyed());

  // Craft keys that all land on chain 7 under the demuxer's CURRENT
  // placement — exactly what an attacker probing an unkeyed table does.
  sim::CollisionFloodParams params;
  params.count = 600;
  const auto flood = sim::craft_colliding_keys(
      params,
      [&](const net::FlowKey& k) {
        return net::hash_chain(demuxer.hash_spec(), k, demuxer.chains());
      },
      7);

  for (const net::FlowKey& key : flood) {
    ASSERT_NE(demuxer.insert(key), nullptr);
  }
  const ResilienceStats r = demuxer.resilience();
  EXPECT_GE(r.overload_rehashes, 1u);
  // The rotation keyed the table; crafted keys now spread across chains.
  EXPECT_TRUE(demuxer.hash_spec().keyed());
  const auto sizes = demuxer.chain_sizes();
  const std::size_t longest = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_LE(longest, demuxer.watermark_limit());
  // Cooldown hysteresis: the flood keeps inserting after the first
  // rotation, but rotations stay rare, not one-per-insert.
  EXPECT_LE(r.overload_rehashes, 4u);

  // Pointer-stable rebuild: every key still found, structure well-formed.
  EXPECT_EQ(demuxer.size(), flood.size());
  for (const net::FlowKey& key : flood) {
    EXPECT_NE(demuxer.lookup(key).pcb, nullptr);
  }
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");
}

TEST(OverloadRehash, SequentNeverFiresOnBenignTraffic) {
  SequentDemuxer demuxer(
      {19, {net::HasherKind::kCrc32, 0}, true, /*rehash_on_overload=*/true,
       0});
  for (const net::FlowKey& key : random_keys(4000, 0xbe9191)) {
    demuxer.insert(key);
  }
  const ResilienceStats r = demuxer.resilience();
  EXPECT_EQ(r.overload_rehashes, 0u);
  EXPECT_FALSE(demuxer.hash_spec().keyed());
  EXPECT_LE(r.watermark, r.watermark_limit);
}

TEST(OverloadRehash, SequentWithoutPolicyOnlyReportsWatermark) {
  // rehash_on_overload defaults off: the monitor is observability only.
  SequentDemuxer demuxer({19, {net::HasherKind::kXorFold, 0}, true, false, 0});
  sim::CollisionFloodParams params;
  params.count = 300;
  const auto flood = sim::craft_colliding_keys(
      params,
      [&](const net::FlowKey& k) {
        return net::hash_chain(demuxer.hash_spec(), k, demuxer.chains());
      },
      3);
  for (const net::FlowKey& key : flood) demuxer.insert(key);
  const ResilienceStats r = demuxer.resilience();
  EXPECT_EQ(r.overload_rehashes, 0u);
  EXPECT_EQ(r.watermark, flood.size());  // the pileup is visible in stats
  EXPECT_GT(r.watermark, r.watermark_limit);
  EXPECT_FALSE(demuxer.hash_spec().keyed());
}

TEST(OverloadRehash, FlatRotatesSeedAndRebalancesUnderSlotFlood) {
  FlatDemuxer demuxer(
      {4096, {net::HasherKind::kCrc32, 0}, /*rehash_on_overload=*/true, 0});

  // Target one home slot of the open-addressed table: the probe run grows
  // linearly until the watermark trips.
  sim::CollisionFloodParams params;
  params.count = 200;
  const auto mask = static_cast<std::uint32_t>(demuxer.capacity() - 1);
  const auto flood = sim::craft_colliding_keys(
      params,
      [&](const net::FlowKey& k) {
        return net::mix32_avalanche(net::hash_flow(demuxer.hash_spec(), k)) &
               mask;
      },
      42);

  for (const net::FlowKey& key : flood) {
    ASSERT_NE(demuxer.insert(key), nullptr);
  }
  const ResilienceStats r = demuxer.resilience();
  EXPECT_GE(r.overload_rehashes, 1u);
  EXPECT_LE(r.overload_rehashes, 4u);
  EXPECT_TRUE(demuxer.hash_spec().keyed());
  EXPECT_LE(demuxer.max_probe_distance(), demuxer.watermark_limit());

  EXPECT_EQ(demuxer.size(), flood.size());
  for (const net::FlowKey& key : flood) {
    EXPECT_NE(demuxer.lookup(key).pcb, nullptr);
  }
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");
}

TEST(OverloadRehash, Flat16RotatesSeedAndGroupProbeStillFindsEveryKey) {
  // Same slot flood as the flat test, but with SIMD group probing on: the
  // post-rotation table must answer every lookup through the grouped path.
  FlatDemuxer demuxer({4096,
                       {net::HasherKind::kCrc32, 0},
                       /*rehash_on_overload=*/true, 0,
                       /*group_probe=*/true});
  sim::CollisionFloodParams params;
  params.count = 200;
  const auto mask = static_cast<std::uint32_t>(demuxer.capacity() - 1);
  const auto flood = sim::craft_colliding_keys(
      params,
      [&](const net::FlowKey& k) {
        return net::mix32_avalanche(net::hash_flow(demuxer.hash_spec(), k)) &
               mask;
      },
      42);

  for (const net::FlowKey& key : flood) {
    ASSERT_NE(demuxer.insert(key), nullptr);
  }
  const ResilienceStats r = demuxer.resilience();
  EXPECT_GE(r.overload_rehashes, 1u);
  EXPECT_TRUE(demuxer.hash_spec().keyed());
  EXPECT_EQ(demuxer.size(), flood.size());
  for (const net::FlowKey& key : flood) {
    EXPECT_NE(demuxer.lookup(key).pcb, nullptr);
  }
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");
}

TEST(OverloadRehash, CuckooRotatesSeedAndRecoversUnderBucketPairFlood) {
  // Keys sharing both the bucket index AND the fingerprint tag share both
  // candidate buckets; past 8 of them the kick search must fail. With the
  // rehash policy on, the first failure rotates the seed and the re-placed
  // table absorbs the remainder.
  CuckooDemuxer demuxer(
      {256, {net::HasherKind::kCrc32, 0}, /*rehash_on_overload=*/true, 0});
  ASSERT_FALSE(demuxer.hash_spec().keyed());

  sim::CollisionFloodParams params;
  params.count = 12;  // > 2 buckets * 4 slots
  const auto bucket_mask =
      static_cast<std::uint32_t>(demuxer.bucket_count() - 1);
  const auto flood = sim::craft_colliding_keys(
      params,
      [&](const net::FlowKey& k) {
        // Bucket bits | tag bits: equal values => same (b1, b2, tag).
        const std::uint32_t mix =
            net::mix32_avalanche(net::hash_flow(demuxer.hash_spec(), k));
        return (mix & bucket_mask) | ((mix >> 25) << 6);
      },
      (0x40u << 6) | 5u);
  ASSERT_EQ(flood.size(), 12u);

  for (const net::FlowKey& key : flood) {
    ASSERT_NE(demuxer.insert(key), nullptr);
  }
  const ResilienceStats r = demuxer.resilience();
  EXPECT_GE(r.overload_rehashes, 1u);
  EXPECT_TRUE(demuxer.hash_spec().keyed());
  EXPECT_EQ(demuxer.size(), flood.size());
  for (const net::FlowKey& key : flood) {
    EXPECT_NE(demuxer.lookup(key).pcb, nullptr);
  }
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");
}

TEST(OverloadRehash, CuckooNeverFiresOnBenignTraffic) {
  CuckooDemuxer demuxer(
      {1024, {net::HasherKind::kCrc32c, 0}, /*rehash_on_overload=*/true, 0});
  for (const net::FlowKey& key : random_keys(6000, 0xbe9193)) {
    demuxer.insert(key);
  }
  const ResilienceStats r = demuxer.resilience();
  EXPECT_EQ(r.overload_rehashes, 0u);
  EXPECT_FALSE(demuxer.hash_spec().keyed());
  EXPECT_LE(r.watermark, r.watermark_limit);
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");
}

TEST(OverloadRehash, FlatNeverFiresOnBenignTraffic) {
  FlatDemuxer demuxer(
      {1024, {net::HasherKind::kCrc32, 0}, /*rehash_on_overload=*/true, 0});
  for (const net::FlowKey& key : random_keys(6000, 0xbe9192)) {
    demuxer.insert(key);
  }
  const ResilienceStats r = demuxer.resilience();
  EXPECT_EQ(r.overload_rehashes, 0u);
  EXPECT_FALSE(demuxer.hash_spec().keyed());
}

TEST(OverloadRehash, RehashSurvivesChurnAfterRotation) {
  // Insert flood, trigger rotation, then erase half and reinsert fresh
  // benign keys: counters stay sane and the validator stays clean.
  SequentDemuxer demuxer(
      {19, {net::HasherKind::kXorFold, 0}, true, true, 0});
  sim::CollisionFloodParams params;
  params.count = 400;
  const auto flood = sim::craft_colliding_keys(
      params,
      [&](const net::FlowKey& k) {
        return net::hash_chain(demuxer.hash_spec(), k, demuxer.chains());
      },
      0);
  for (const net::FlowKey& key : flood) demuxer.insert(key);
  ASSERT_GE(demuxer.resilience().overload_rehashes, 1u);

  for (std::size_t i = 0; i < flood.size(); i += 2) {
    EXPECT_TRUE(demuxer.erase(flood[i]));
  }
  for (const net::FlowKey& key : random_keys(500, 0xc0ffee)) {
    demuxer.insert(key);
  }
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");
  for (std::size_t i = 1; i < flood.size(); i += 2) {
    EXPECT_NE(demuxer.lookup(flood[i]).pcb, nullptr);
  }
}

}  // namespace
}  // namespace tcpdemux::core
