// PCB-pressure shedding: bounded-capacity demuxers refuse (and count)
// inserts past the cap with no structural damage, and the SYN cache's
// global budget sheds the oldest embryonic connection first.
#include <gtest/gtest.h>

#include <vector>

#include "core/cuckoo_demuxer.h"
#include "core/demux_registry.h"
#include "core/dynamic_hash.h"
#include "core/flat_demuxer.h"
#include "core/sequent_hash.h"
#include "core/validate.h"
#include "net/flow_key.h"
#include "tcp/syn_cache.h"

namespace tcpdemux::core {
namespace {

net::FlowKey nth_key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(0x0a010000U + i),
                      static_cast<std::uint16_t>(1000 + (i & 0x7fff))};
}

template <typename D>
void expect_cap_enforced(D& demuxer, std::size_t cap) {
  for (std::uint32_t i = 0; i < 100; ++i) {
    Pcb* const pcb = demuxer.insert(nth_key(i));
    if (i < cap) {
      ASSERT_NE(pcb, nullptr) << i;
    } else {
      ASSERT_EQ(pcb, nullptr) << i;
    }
  }
  EXPECT_EQ(demuxer.size(), cap);
  EXPECT_EQ(demuxer.resilience().inserts_shed, 100 - cap);
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");

  // Capped keys were refused, not half-inserted.
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(demuxer.lookup(nth_key(i)).pcb != nullptr, i < cap) << i;
  }

  // Erasing makes room again: the cap bounds population, not lifetime.
  ASSERT_TRUE(demuxer.erase(nth_key(0)));
  EXPECT_NE(demuxer.insert(nth_key(99)), nullptr);
  EXPECT_EQ(demuxer.size(), cap);
  EXPECT_EQ(validate_demuxer(demuxer).to_string(), "");
}

TEST(Shedding, SequentEnforcesMaxPcbs) {
  SequentDemuxer demuxer(
      {19, net::HasherKind::kCrc32, true, false, /*max_pcbs=*/64});
  expect_cap_enforced(demuxer, 64);
}

TEST(Shedding, DynamicEnforcesMaxPcbs) {
  DynamicHashDemuxer demuxer(
      {19, 2.0, net::HasherKind::kCrc32, true, /*max_pcbs=*/64});
  expect_cap_enforced(demuxer, 64);
}

TEST(Shedding, FlatEnforcesMaxPcbs) {
  FlatDemuxer demuxer(
      {1024, net::HasherKind::kCrc32, false, /*max_pcbs=*/64});
  expect_cap_enforced(demuxer, 64);
}

TEST(Shedding, Flat16EnforcesMaxPcbs) {
  FlatDemuxer demuxer({1024, net::HasherKind::kCrc32, false, /*max_pcbs=*/64,
                       /*group_probe=*/true});
  expect_cap_enforced(demuxer, 64);
}

TEST(Shedding, CuckooEnforcesMaxPcbs) {
  CuckooDemuxer demuxer(
      {1024, net::HasherKind::kCrc32c, false, /*max_pcbs=*/64});
  expect_cap_enforced(demuxer, 64);
}

TEST(Shedding, DuplicateInsertAtCapIsNotShed) {
  // A duplicate insert at the cap is the pre-existing "already present"
  // nullptr, not a shed — the counter must not conflate them.
  SequentDemuxer demuxer({19, net::HasherKind::kCrc32, true, false, 2});
  ASSERT_NE(demuxer.insert(nth_key(0)), nullptr);
  ASSERT_NE(demuxer.insert(nth_key(1)), nullptr);
  EXPECT_EQ(demuxer.insert(nth_key(0)), nullptr);
  EXPECT_EQ(demuxer.resilience().inserts_shed, 0u);
  EXPECT_EQ(demuxer.insert(nth_key(2)), nullptr);
  EXPECT_EQ(demuxer.resilience().inserts_shed, 1u);
}

TEST(Shedding, RegistrySpecSetsCap) {
  const auto config = parse_demux_spec("sequent:19:crc32:max=8");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->max_pcbs, 8u);
  const auto demuxer = make_demuxer(*config);
  for (std::uint32_t i = 0; i < 20; ++i) demuxer->insert(nth_key(i));
  EXPECT_EQ(demuxer->size(), 8u);
  EXPECT_EQ(demuxer->resilience().inserts_shed, 12u);
}

TEST(Shedding, SynCacheShedsGloballyOldestAtBudget) {
  tcp::SynCache::Options options;
  options.buckets = 16;
  options.bucket_limit = 16;  // high enough that only the global cap acts
  options.max_entries = 16;
  tcp::SynCache cache(options);

  for (std::uint32_t i = 0; i < 32; ++i) {
    ASSERT_NE(cache.add(nth_key(i), 100 + i, 200 + i,
                        /*now=*/static_cast<double>(i)),
              nullptr);
  }
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.stats().shed, 16u);
  EXPECT_EQ(cache.stats().added, 32u);

  // Strictly oldest-first: the first 16 embryos were shed, newest 16 live.
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(cache.find(nth_key(i)) != nullptr, i >= 16) << i;
  }

  // Promotion frees budget without counting as a shed.
  ASSERT_TRUE(cache.take(nth_key(20)));
  ASSERT_NE(cache.add(nth_key(40), 1, 2, 40.0), nullptr);
  EXPECT_EQ(cache.stats().shed, 16u);
  EXPECT_EQ(cache.size(), 16u);
}

TEST(Shedding, SynCacheUnboundedByDefault) {
  tcp::SynCache::Options options;
  options.buckets = 64;
  options.bucket_limit = 64;
  tcp::SynCache cache(options);
  for (std::uint32_t i = 0; i < 512; ++i) {
    ASSERT_NE(cache.add(nth_key(i), 1, 2, static_cast<double>(i)), nullptr);
  }
  EXPECT_EQ(cache.size(), 512u);
  EXPECT_EQ(cache.stats().shed, 0u);
}

}  // namespace
}  // namespace tcpdemux::core
