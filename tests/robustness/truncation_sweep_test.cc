// Truncation and garbling sweep over the wire parsers — the regression
// lock for the OOB audit of headers.cc / tcp_options.cc / packet.cc: every
// prefix length of a valid frame, and seeded burst-damaged variants, must
// parse (i.e. be rejected or accepted) without reading out of bounds.
// ci/check.sh runs this suite under ASan/UBSan, which turns any OOB read
// into a hard failure; in a plain build the consistency assertions below
// still catch length-accounting mistakes.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "net/ethernet.h"
#include "net/frame_fault.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/tcp_options.h"

namespace tcpdemux::net {
namespace {

std::vector<std::uint8_t> valid_wire(std::size_t payload) {
  return PacketBuilder()
      .from({Ipv4Addr(10, 1, 0, 2), 40001})
      .to({Ipv4Addr(10, 0, 0, 1), 1521})
      .seq(0x10000001)
      .ack_seq(0x20000002)
      .payload_size(payload)
      .build();
}

TEST(FrameFault, TruncatedAndPrefixHelpersAreExact) {
  const std::vector<std::uint8_t> frame = {1, 2, 3, 4, 5};
  EXPECT_EQ(truncated(frame, 0).size(), 0u);
  EXPECT_EQ(truncated(frame, 3), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(truncated(frame, 99), frame);  // clamped, not UB
  const auto prefixes = all_prefixes(frame);
  ASSERT_EQ(prefixes.size(), frame.size() + 1);
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    EXPECT_EQ(prefixes[len].size(), len);
  }
  EXPECT_EQ(prefixes.back(), frame);
}

TEST(FrameFault, GarbleIsSeededAndBounded) {
  const auto wire = valid_wire(32);
  const auto a = garble_bytes(wire, 7, 4);
  const auto b = garble_bytes(wire, 7, 4);
  const auto c = garble_bytes(wire, 8, 4);
  EXPECT_EQ(a, b);  // reproducible
  EXPECT_NE(a, c);  // seed-sensitive
  EXPECT_EQ(a.size(), wire.size());
}

TEST(TruncationSweep, PacketParseAcceptsOnlyTheFullFrame) {
  for (const std::size_t payload : {0u, 1u, 7u, 64u, 512u}) {
    const auto wire = valid_wire(payload);
    const auto prefixes = all_prefixes(wire);
    for (std::size_t len = 0; len < prefixes.size(); ++len) {
      const auto parsed = Packet::parse(prefixes[len]);
      // The IP total-length field covers the whole datagram, so every
      // strict prefix must be rejected; only the intact frame parses.
      EXPECT_EQ(parsed.has_value(), len == wire.size())
          << "payload " << payload << " prefix " << len;
    }
  }
}

TEST(TruncationSweep, HeaderParsersRejectEveryShortPrefix) {
  const auto wire = valid_wire(64);
  for (const auto& prefix : all_prefixes(wire)) {
    // total_length covers the whole datagram, so the IP parser must
    // reject every strict prefix — a truncated buffer never yields a
    // header that promises more bytes than exist.
    EXPECT_EQ(Ipv4Header::parse(prefix).has_value(),
              prefix.size() == wire.size())
        << "prefix " << prefix.size();
    (void)TcpHeader::parse(prefix);  // must not crash at any length
  }
  // The TCP header alone (no IP framing) through its own sweep.
  const auto packet = Packet::parse(wire);
  ASSERT_TRUE(packet.has_value());
  std::vector<std::uint8_t> tcp_bytes(64);
  const std::size_t tcp_len = packet->tcp.serialize(tcp_bytes);
  tcp_bytes.resize(tcp_len);
  for (const auto& prefix : all_prefixes(tcp_bytes)) {
    const auto tcp = TcpHeader::parse(prefix);
    EXPECT_EQ(tcp.has_value(), prefix.size() >= tcp_len)
        << "prefix " << prefix.size();
  }
}

TEST(TruncationSweep, TcpOptionsRejectTruncationMidOption) {
  const TcpOption mss{TcpOptionKind::kMss, 1460, 0, 0, 0};
  const TcpOption wscale{TcpOptionKind::kWindowScale, 0, 7, 0, 0};
  const TcpOption ts{TcpOptionKind::kTimestamps, 0, 0, 0x11223344,
                     0x55667788};
  const std::vector<TcpOption> options = {mss, wscale, ts};
  const auto blob = serialize_tcp_options(options);
  ASSERT_TRUE(parse_tcp_options(blob).has_value());
  for (const auto& prefix : all_prefixes(blob)) {
    // No prefix may crash; truncating inside an option's advertised
    // length must be rejected, never read past the buffer.
    (void)parse_tcp_options(prefix);
  }
  // A length byte pointing past the end is the classic OOB trigger.
  std::vector<std::uint8_t> overrun = {2 /*kMss*/, 44};
  EXPECT_FALSE(parse_tcp_options(overrun).has_value());
  overrun = {3 /*kWindowScale*/, 0};
  EXPECT_FALSE(parse_tcp_options(overrun).has_value());
}

TEST(TruncationSweep, EthernetFramesRejectEveryShortPrefix) {
  const auto datagram = valid_wire(32);
  const auto frame =
      ethernet_encapsulate(MacAddr(std::array<std::uint8_t, 6>{2, 0, 0, 0, 0, 1}),
                           MacAddr(std::array<std::uint8_t, 6>{2, 0, 0, 0, 0, 2}),
                           datagram);
  ASSERT_TRUE(ethernet_decapsulate_ipv4(frame).has_value());
  for (const auto& prefix : all_prefixes(frame)) {
    const auto inner = ethernet_decapsulate_ipv4(prefix);
    if (prefix.size() < frame.size()) {
      // A truncated frame may still decapsulate (ethernet carries no
      // length field), but the inner datagram must then fail Packet::parse
      // rather than be misread.
      if (inner.has_value()) {
        EXPECT_FALSE(Packet::parse(*inner).has_value())
            << "prefix " << prefix.size();
      }
    }
  }
}

TEST(GarbleSweep, DamagedFramesNeverCrashAndNeverParse) {
  const auto wire = valid_wire(128);
  int accepted = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto damaged = garble_bytes(wire, seed, 4);
    if (Packet::parse(damaged).has_value()) ++accepted;
    (void)Ipv4Header::parse(damaged);
    (void)TcpHeader::parse(damaged);
  }
  // The Internet checksum guarantees detection of single-bit damage only:
  // multi-byte overwrites can cancel in the 16-bit one's-complement sum
  // (and a draw can rewrite a byte to its own value), so allow the rare
  // lucky survivor — what this sweep locks down is "no crash, no OOB" plus
  // rejection of essentially all damage.
  EXPECT_LE(accepted, 2);
}

TEST(GarbleSweep, GarbledTruncatedCombinationsSurviveParsing) {
  const auto wire = valid_wire(48);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto damaged = garble_bytes(wire, seed, 6);
    for (std::size_t len = 0; len <= damaged.size(); len += 3) {
      const auto frame = truncated(damaged, len);
      (void)Packet::parse(frame);
      (void)Ipv4Header::parse(frame);
      (void)TcpHeader::parse(frame);
      (void)parse_tcp_options(frame);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace tcpdemux::net
