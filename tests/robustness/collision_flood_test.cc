// The adversarial workload generator itself, and the end-to-end claim it
// exists to prove: replaying a collision flood degrades an unkeyed table
// toward the BSD linear scan while the keyed and rehash-on-detect
// configurations keep the paper's O(N/2H) behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/demux_registry.h"
#include "net/hashers.h"
#include "sim/collision_flood.h"
#include "sim/replay.h"

namespace tcpdemux::sim {
namespace {

TEST(CollisionFlood, XorfoldCraftProducesDistinctKeysWithEqualHashes) {
  CollisionFloodParams params;
  params.count = 2048;
  const auto keys = craft_xorfold_collisions(params, 0x1234abcd);
  ASSERT_EQ(keys.size(), 2048u);
  std::unordered_set<net::FlowKey> distinct(keys.begin(), keys.end());
  EXPECT_EQ(distinct.size(), keys.size());
  for (const net::FlowKey& key : keys) {
    ASSERT_EQ(net::hash_flow(net::HasherKind::kXorFold, key), 0x1234abcdu);
    EXPECT_EQ(key.local_addr, params.server_addr);
    EXPECT_EQ(key.local_port, params.server_port);
  }
}

TEST(CollisionFlood, CraftCapsAtOneKeyPerForeignPort) {
  CollisionFloodParams params;
  params.count = 100000;  // more than 65535 distinct ports exist
  const auto keys = craft_xorfold_collisions(params, 1);
  EXPECT_EQ(keys.size(), 0xffffu);
}

TEST(CollisionFlood, BruteForceCraftHitsTheRequestedIndex) {
  CollisionFloodParams params;
  params.count = 200;
  const auto index_of = [](const net::FlowKey& k) {
    return net::hash_chain(net::HasherKind::kCrc32, k, 19);
  };
  const auto keys = craft_colliding_keys(params, index_of, 11);
  ASSERT_EQ(keys.size(), 200u);
  std::unordered_set<net::FlowKey> distinct(keys.begin(), keys.end());
  EXPECT_EQ(distinct.size(), keys.size());
  for (const net::FlowKey& key : keys) {
    ASSERT_EQ(index_of(key), 11u);
  }
}

TEST(CollisionFlood, TraceEmbedsAttackAmongBenignConnections) {
  CollisionFloodTraceParams params;
  params.benign.users = 50;
  params.benign.duration = 120.0;
  params.attack_start = 10.0;
  params.attack_duration = 60.0;
  params.arrivals_per_conn = 4;

  CollisionFloodParams craft;
  craft.count = 64;
  const auto attack_keys = craft_xorfold_collisions(craft, 0xfeed);
  const auto flood = generate_collision_flood(params, attack_keys);

  EXPECT_EQ(flood.benign_conns, 50u);
  EXPECT_EQ(flood.trace.connections, 50u + 64u);
  EXPECT_EQ(flood.keys.size(), flood.trace.connections);
  EXPECT_TRUE(flood.trace.valid());

  // Attack connections arrive via kOpen inside the window, each followed
  // by its data arrivals.
  std::size_t opens = 0;
  for (const TraceEvent& e : flood.trace.events) {
    if (e.kind != TraceEventKind::kOpen || e.conn < flood.benign_conns) {
      continue;
    }
    ++opens;
    EXPECT_GE(e.time, params.attack_start);
    EXPECT_LE(e.time, params.attack_start + params.attack_duration);
  }
  EXPECT_EQ(opens, 64u);
  // The attack keys ride at the tail of the key vector, aligned with the
  // re-indexed attack connections.
  for (std::size_t i = 0; i < attack_keys.size(); ++i) {
    EXPECT_EQ(flood.keys[flood.benign_conns + i], attack_keys[i]);
  }
}

TEST(CollisionFlood, ReplayDegradesUnkeyedAndSparesKeyedSequent) {
  CollisionFloodTraceParams params;
  params.benign.users = 60;
  params.benign.duration = 90.0;
  params.attack_start = 5.0;
  params.attack_duration = 45.0;
  params.arrivals_per_conn = 8;

  // Chain-targeted crafting (the attacker watched which chain is slow):
  // a fresh seed re-scatters these, so the rehash-on-detect policy can
  // recover. Full-hash xor_fold collisions would defeat the post-mix tier
  // — that stronger adversary is covered by the flat-table test below and
  // needs kSipHash (see net/hashers.h).
  CollisionFloodParams craft;
  craft.count = 1500;
  const auto attack_keys = craft_colliding_keys(
      craft,
      [](const net::FlowKey& k) {
        return net::hash_chain(net::HasherKind::kXorFold, k, 19);
      },
      7);
  const auto flood = generate_collision_flood(params, attack_keys);

  const auto run = [&](const char* spec) {
    const auto config = core::parse_demux_spec(spec);
    EXPECT_TRUE(config.has_value()) << spec;
    const auto demuxer = core::make_demuxer(*config);
    return replay_trace(flood.trace, flood.keys, *demuxer);
  };

  const ReplayResult unkeyed = run("sequent:19:xor_fold:nocache");
  const ReplayResult keyed = run("sequent:19:siphash@5eed:nocache");
  const ReplayResult rehashing = run("sequent:19:xor_fold:nocache:rehash");

  ASSERT_EQ(unkeyed.misses, 0u);
  ASSERT_EQ(keyed.misses, 0u);
  ASSERT_EQ(rehashing.misses, 0u);

  // All 1500 attack connections share one chain unkeyed: the mean scan
  // collapses toward a linear search. SipHash keeps the crafted keys
  // spread, so the mean examined count stays within a small factor of the
  // benign ideal (~size/2H plus cache effects).
  EXPECT_GT(unkeyed.overall.mean(), 10.0 * keyed.overall.mean());
  // Rehash-on-detect starts unkeyed, takes the hit until the watermark
  // fires, then recovers — an order of magnitude better than never
  // detecting, even counting the pre-detection arrivals.
  EXPECT_LT(rehashing.overall.mean(), unkeyed.overall.mean() / 2.0);
}

TEST(CollisionFlood, ReplayDegradesUnkeyedAndSparesKeyedFlat) {
  CollisionFloodTraceParams params;
  params.benign.users = 60;
  params.benign.duration = 90.0;
  params.attack_start = 5.0;
  params.attack_duration = 45.0;
  params.arrivals_per_conn = 8;

  // Full-32-bit-hash collisions defeat the flat table's avalanche
  // finalizer and every post-mixed seed — only the PRF tier recovers.
  CollisionFloodParams craft;
  craft.count = 1200;
  const auto attack_keys = craft_xorfold_collisions(craft, 0xdead0002);
  const auto flood = generate_collision_flood(params, attack_keys);

  const auto run = [&](const char* spec) {
    const auto config = core::parse_demux_spec(spec);
    EXPECT_TRUE(config.has_value()) << spec;
    const auto demuxer = core::make_demuxer(*config);
    return replay_trace(flood.trace, flood.keys, *demuxer);
  };

  const ReplayResult unkeyed = run("flat:4096:xor_fold");
  const ReplayResult keyed = run("flat:4096:siphash@5eed");

  ASSERT_EQ(unkeyed.misses, 0u);
  ASSERT_EQ(keyed.misses, 0u);
  EXPECT_GT(unkeyed.overall.mean(), 10.0 * (keyed.overall.mean() + 1.0));
}

TEST(CollisionFlood, CuckooShedsAttackOrSpreadsItButNeverScansLinearly) {
  // The cuckoo table's failure mode under a full-hash flood is the
  // *opposite* of the chained/flat tables': placement is bounded at two
  // 4-slot buckets, so lookup cost CANNOT degrade into a linear scan.
  // Instead the unplaceable attack keys (all sharing one bucket pair) are
  // shed — the attacker's own connections fail while everyone else's
  // latency is untouched. The PRF tier scatters the same keys and admits
  // every one.
  CollisionFloodTraceParams params;
  params.benign.users = 60;
  params.benign.duration = 90.0;
  params.attack_start = 5.0;
  params.attack_duration = 45.0;
  params.arrivals_per_conn = 8;

  CollisionFloodParams craft;
  craft.count = 1200;
  const auto attack_keys = craft_xorfold_collisions(craft, 0xdead0002);
  const auto flood = generate_collision_flood(params, attack_keys);

  // Unkeyed, driven directly (the replay harness treats a rejected open as
  // a hard error, and rejecting is exactly what we assert here): at most
  // 2 buckets * 4 slots of the 1200 colliding keys fit in the shared
  // bucket pair; the rest shed.
  {
    const auto demuxer =
        core::make_demuxer(*core::parse_demux_spec("cuckoo:4096:xor_fold"));
    std::size_t placed = 0;
    for (const net::FlowKey& key : attack_keys) {
      placed += demuxer->insert(key) != nullptr ? 1 : 0;
    }
    EXPECT_LE(placed, 8u);
    EXPECT_EQ(demuxer->resilience().inserts_shed,
              attack_keys.size() - placed);
    // ...and the worst lookup the polluted table answers still examines at
    // most the structural bound of 8 keys — no collateral latency damage.
    std::uint32_t worst = 0;
    for (const net::FlowKey& key : attack_keys) {
      worst = std::max(worst, demuxer->lookup(key).examined);
    }
    EXPECT_LE(worst, 8u);
  }

  // Keyed PRF tier, full replay: the crafted hashes scatter, every attack
  // connection is admitted, and lookups stay O(1) for everyone.
  const auto config = core::parse_demux_spec("cuckoo:4096:siphash@5eed");
  ASSERT_TRUE(config.has_value());
  const auto demuxer = core::make_demuxer(*config);
  const ReplayResult keyed = replay_trace(flood.trace, flood.keys, *demuxer);
  ASSERT_EQ(keyed.misses, 0u);
  EXPECT_LE(keyed.overall.max(), 8u);
}

}  // namespace
}  // namespace tcpdemux::sim
