// Allocation-failure injection: the injector's own counting semantics,
// and the contract that a refused insert leaves every demuxer (and the
// SYN cache) in a validator-clean, size-unchanged state.
#include <gtest/gtest.h>

#include <string>

#include "core/demux_registry.h"
#include "core/fault_inject.h"
#include "core/validate.h"
#include "net/flow_key.h"
#include "tcp/syn_cache.h"

namespace tcpdemux::core {
namespace {

// The injector is process-wide: every test must leave it disarmed even on
// assertion failure, or it would poison later tests in the same binary.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::instance().reset(); }
  ~InjectorGuard() { FaultInjector::instance().reset(); }
};

net::FlowKey nth_key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(0x0a020000U + i),
                      static_cast<std::uint16_t>(2000 + (i & 0x7fff))};
}

TEST(FaultInjector, ArmAfterFailsExactlyTheNthPollThenDisarms) {
  InjectorGuard guard;
  auto& injector = FaultInjector::instance();
  injector.arm_after(3);
  EXPECT_FALSE(injector.poll_alloc());
  EXPECT_FALSE(injector.poll_alloc());
  EXPECT_TRUE(injector.poll_alloc());
  EXPECT_FALSE(injector.poll_alloc());  // self-disarmed
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(injector.checkpoints(), 3u);  // disarmed poll not counted
}

TEST(FaultInjector, ArmEveryFailsPeriodically) {
  InjectorGuard guard;
  auto& injector = FaultInjector::instance();
  injector.arm_every(3);
  int injected = 0;
  for (int i = 1; i <= 12; ++i) {
    const bool failed = injector.poll_alloc();
    EXPECT_EQ(failed, i % 3 == 0) << "poll " << i;
    if (failed) ++injected;
  }
  EXPECT_EQ(injected, 4);
  EXPECT_EQ(injector.injected(), 4u);
  EXPECT_EQ(injector.checkpoints(), 12u);
}

TEST(FaultInjector, DisarmedPollsAreFreeAndUncounted) {
  InjectorGuard guard;
  auto& injector = FaultInjector::instance();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(injector.poll_alloc());
  EXPECT_EQ(injector.checkpoints(), 0u);
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(FaultInjector, ResetZeroesCountersDisarmKeepsThem) {
  InjectorGuard guard;
  auto& injector = FaultInjector::instance();
  injector.arm_every(1);
  EXPECT_TRUE(injector.poll_alloc());
  injector.disarm();
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(injector.checkpoints(), 1u);
  injector.reset();
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_EQ(injector.checkpoints(), 0u);
}

class InsertFaultTest : public ::testing::TestWithParam<const char*> {};

TEST_P(InsertFaultTest, RefusedInsertLeavesStructureIntact) {
  InjectorGuard guard;
  auto& injector = FaultInjector::instance();
  const std::string spec = GetParam();
  const auto config = parse_demux_spec(spec);
  ASSERT_TRUE(config.has_value()) << spec;
  const auto demuxer = make_demuxer(*config);
  ASSERT_NE(demuxer, nullptr);

  // Seed some population first so the refusal happens mid-structure, not
  // on an empty table.
  for (std::uint32_t i = 0; i < 40; ++i) {
    ASSERT_NE(demuxer->insert(nth_key(i)), nullptr) << spec;
  }
  ASSERT_EQ(validate_demuxer(*demuxer).to_string(), "");

  // Every allocation now fails: inserts of NEW keys must back out cleanly.
  injector.arm_every(1);
  for (std::uint32_t i = 40; i < 60; ++i) {
    EXPECT_EQ(demuxer->insert(nth_key(i)), nullptr) << spec;
  }
  injector.disarm();
  EXPECT_EQ(injector.injected(), 20u) << spec;
  EXPECT_EQ(demuxer->size(), 40u);
  EXPECT_EQ(validate_demuxer(*demuxer).to_string(), "") << spec;

  // A duplicate insert never reaches the allocation point.
  injector.reset();
  injector.arm_every(1);
  EXPECT_EQ(demuxer->insert(nth_key(0)), nullptr);
  injector.disarm();
  EXPECT_EQ(injector.injected(), 0u) << spec;

  // Recovery: with the injector off, the refused keys insert normally and
  // everything is findable.
  for (std::uint32_t i = 40; i < 60; ++i) {
    ASSERT_NE(demuxer->insert(nth_key(i)), nullptr) << spec;
  }
  EXPECT_EQ(demuxer->size(), 60u);
  for (std::uint32_t i = 0; i < 60; ++i) {
    EXPECT_NE(demuxer->lookup(nth_key(i)).pcb, nullptr) << spec << " " << i;
  }
  EXPECT_EQ(validate_demuxer(*demuxer).to_string(), "") << spec;
}

INSTANTIATE_TEST_SUITE_P(
    AllDemuxers, InsertFaultTest,
    ::testing::Values("bsd", "mtf", "srcache", "connection_id:256", "sequent",
                      "sequent:7:crc32:nocache", "hashed_mtf:19",
                      "dynamic:5:crc32", "rcu", "rcu:7:crc32:nocache", "flat",
                      "flat:64:crc32", "sequent:19:siphash@5eed:rehash",
                      "flat:256:siphash@5eed:rehash", "flat16",
                      "flat16:64:crc32", "flat16:256:siphash@5eed:rehash",
                      "cuckoo", "cuckoo:64:crc32",
                      "cuckoo:256:siphash@5eed:rehash", "sharded:4:flat16",
                      "sharded:2:sequent:19:crc32"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == '@' || c == '=') c = '_';
      }
      return name;
    });

TEST(FaultInjector, SynCacheCountsRefusedAdds) {
  InjectorGuard guard;
  tcp::SynCache cache;
  ASSERT_NE(cache.add(nth_key(0), 1, 2, 0.0), nullptr);
  // Persistent failure: the add sheds the globally oldest embryo to free
  // room, re-polls, still fails, and refuses — both attempts are counted.
  FaultInjector::instance().arm_every(1);
  EXPECT_EQ(cache.add(nth_key(1), 1, 2, 0.1), nullptr);
  FaultInjector::instance().disarm();
  EXPECT_EQ(cache.stats().alloc_failed, 2u);
  EXPECT_EQ(cache.stats().shed, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // The refused embryo is simply absent; a later add succeeds.
  EXPECT_EQ(cache.find(nth_key(1)), nullptr);
  EXPECT_NE(cache.add(nth_key(1), 1, 2, 0.2), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  // An empty cache has nothing to shed: one poll, one refusal.
  tcp::SynCache empty;
  FaultInjector::instance().arm_every(1);
  EXPECT_EQ(empty.add(nth_key(2), 1, 2, 0.3), nullptr);
  FaultInjector::instance().disarm();
  EXPECT_EQ(empty.stats().alloc_failed, 1u);
  EXPECT_EQ(empty.stats().shed, 0u);
  // A duplicate add never reaches the allocation point.
  FaultInjector::instance().arm_every(1);
  EXPECT_NE(cache.add(nth_key(1), 9, 9, 0.4), nullptr);
  FaultInjector::instance().disarm();
  EXPECT_EQ(cache.stats().alloc_failed, 2u);
}

// Regression: before the degradation-ladder PR, an injected allocation
// failure refused the add outright even though the cache held evictable
// embryos — a transient memory spike silently disabled the handshake
// path while stale embryos sat on the budget. A single-shot failure must
// instead shed the globally oldest embryo and admit the newcomer.
TEST(FaultInjector, SynCacheAllocFailureShedsOldestAndAdmits) {
  InjectorGuard guard;
  tcp::SynCache cache;
  ASSERT_NE(cache.add(nth_key(0), 1, 2, 0.0), nullptr);  // oldest
  ASSERT_NE(cache.add(nth_key(1), 1, 2, 1.0), nullptr);
  FaultInjector::instance().arm_after(1);  // fail exactly the next poll
  const auto* entry = cache.add(nth_key(2), 3, 4, 2.0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->key, nth_key(2));
  EXPECT_EQ(cache.stats().alloc_failed, 1u);
  EXPECT_EQ(cache.stats().shed, 1u);
  // The globally oldest embryo paid for the newcomer; the rest survive.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(nth_key(0)), nullptr);
  EXPECT_NE(cache.find(nth_key(1)), nullptr);
  EXPECT_NE(cache.find(nth_key(2)), nullptr);
}

}  // namespace
}  // namespace tcpdemux::core
