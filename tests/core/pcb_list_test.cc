#include "core/pcb_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

TEST(PcbList, StartsEmpty) {
  PcbList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.head(), nullptr);
}

TEST(PcbList, EmplaceFrontLinksAtHead) {
  PcbList list;
  Pcb* a = list.emplace_front(key(1), 0);
  Pcb* b = list.emplace_front(key(2), 1);
  EXPECT_EQ(list.head(), b);
  EXPECT_EQ(b->next, a);
  EXPECT_EQ(a->prev, b);
  EXPECT_EQ(a->next, nullptr);
  EXPECT_EQ(list.size(), 2u);
}

TEST(PcbList, FindScanCountsPosition) {
  PcbList list;
  for (std::uint16_t p = 1; p <= 5; ++p) list.emplace_front(key(p), p);
  // List order is 5,4,3,2,1 — key(5) is first, key(1) is fifth.
  EXPECT_EQ(list.find_scan(key(5)).examined, 1u);
  EXPECT_EQ(list.find_scan(key(3)).examined, 3u);
  EXPECT_EQ(list.find_scan(key(1)).examined, 5u);
}

TEST(PcbList, FindScanMissExaminesAll) {
  PcbList list;
  for (std::uint16_t p = 1; p <= 5; ++p) list.emplace_front(key(p), p);
  const auto r = list.find_scan(key(99));
  EXPECT_EQ(r.pcb, nullptr);
  EXPECT_EQ(r.examined, 5u);
}

TEST(PcbList, MoveToFrontReorders) {
  PcbList list;
  for (std::uint16_t p = 1; p <= 4; ++p) list.emplace_front(key(p), p);
  Pcb* target = list.find_scan(key(1)).pcb;  // at the tail
  ASSERT_NE(target, nullptr);
  list.move_to_front(target);
  EXPECT_EQ(list.head(), target);
  EXPECT_EQ(list.size(), 4u);
  EXPECT_EQ(list.find_scan(key(1)).examined, 1u);
  EXPECT_EQ(list.find_scan(key(4)).examined, 2u);
}

TEST(PcbList, MoveToFrontOfHeadIsNoop) {
  PcbList list;
  list.emplace_front(key(1), 1);
  Pcb* b = list.emplace_front(key(2), 2);
  list.move_to_front(b);
  EXPECT_EQ(list.head(), b);
  EXPECT_EQ(list.size(), 2u);
}

TEST(PcbList, MoveToFrontFromMiddle) {
  PcbList list;
  for (std::uint16_t p = 1; p <= 5; ++p) list.emplace_front(key(p), p);
  Pcb* middle = list.find_scan(key(3)).pcb;
  list.move_to_front(middle);
  // Expected order now: 3,5,4,2,1.
  std::vector<std::uint16_t> order;
  list.for_each([&](const Pcb& p) { order.push_back(p.key.foreign_port); });
  EXPECT_EQ(order, (std::vector<std::uint16_t>{3, 5, 4, 2, 1}));
}

TEST(PcbList, EraseHead) {
  PcbList list;
  list.emplace_front(key(1), 1);
  Pcb* b = list.emplace_front(key(2), 2);
  list.erase(b);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.head()->key, key(1));
  EXPECT_EQ(list.head()->prev, nullptr);
}

TEST(PcbList, EraseTailAndMiddle) {
  PcbList list;
  for (std::uint16_t p = 1; p <= 3; ++p) list.emplace_front(key(p), p);
  list.erase(list.find_scan(key(1)).pcb);  // tail
  list.erase(list.find_scan(key(2)).pcb);  // now tail (was middle)
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.head()->key, key(3));
  EXPECT_EQ(list.head()->next, nullptr);
}

TEST(PcbList, EraseOnlyElement) {
  PcbList list;
  Pcb* a = list.emplace_front(key(1), 1);
  list.erase(a);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.head(), nullptr);
}

TEST(PcbList, ClearEmpties) {
  PcbList list;
  for (std::uint16_t p = 1; p <= 10; ++p) list.emplace_front(key(p), p);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.find_scan(key(5)).pcb, nullptr);
}

TEST(PcbList, MoveConstructorTransfersOwnership) {
  PcbList list;
  for (std::uint16_t p = 1; p <= 3; ++p) list.emplace_front(key(p), p);
  PcbList other(std::move(list));
  EXPECT_EQ(other.size(), 3u);
  EXPECT_TRUE(list.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
  EXPECT_NE(other.find_scan(key(2)).pcb, nullptr);
}

TEST(PcbList, MoveAssignmentReleasesOldContents) {
  PcbList a;
  a.emplace_front(key(1), 1);
  PcbList b;
  b.emplace_front(key(2), 2);
  a = std::move(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_NE(a.find_scan(key(2)).pcb, nullptr);
  EXPECT_EQ(a.find_scan(key(1)).pcb, nullptr);
}

TEST(PcbList, FindBestMatchPrefersExact) {
  PcbList list;
  list.emplace_front(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                                  net::Ipv4Addr::any(), 0},
                     0);  // listener
  list.emplace_front(key(7), 1);  // exact connection, at head
  const auto r = list.find_best_match(key(7));
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_EQ(r.pcb->key, key(7));
  EXPECT_EQ(r.examined, 1u);  // exact match short-circuits at the head
}

TEST(PcbList, FindBestMatchFallsBackToWildcard) {
  PcbList list;
  list.emplace_front(net::FlowKey{net::Ipv4Addr::any(), 1521,
                                  net::Ipv4Addr::any(), 0},
                     0);
  list.emplace_front(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                                  net::Ipv4Addr::any(), 0},
                     1);
  const auto r = list.find_best_match(key(9));
  ASSERT_NE(r.pcb, nullptr);
  // The single-wildcard (local-addr-specified) listener must win over the
  // double-wildcard one.
  EXPECT_EQ(r.pcb->key.local_addr, net::Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(r.examined, 2u);  // no exact match: full scan
}

TEST(PcbList, FindBestMatchNoMatch) {
  PcbList list;
  list.emplace_front(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 80,
                                  net::Ipv4Addr::any(), 0},
                     0);
  const auto r = list.find_best_match(key(9));  // port 1521, no listener
  EXPECT_EQ(r.pcb, nullptr);
}

TEST(PcbList, ConnIdsArePreserved) {
  PcbList list;
  Pcb* a = list.emplace_front(key(1), 42);
  EXPECT_EQ(a->conn_id, 42u);
}

}  // namespace
}  // namespace tcpdemux::core
