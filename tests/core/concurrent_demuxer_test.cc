#include "core/concurrent_demuxer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/bsd_list.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(20000 + (i % 20000))};
}

TEST(ConcurrentSequent, SingleThreadedSemanticsMatchSequent) {
  ConcurrentSequentDemuxer d(ConcurrentSequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  EXPECT_EQ(d.insert(key(0)), nullptr);  // duplicate
  EXPECT_EQ(d.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto r = d.lookup(key(i));
    ASSERT_NE(r.pcb, nullptr);
    EXPECT_EQ(r.pcb->key, key(i));
  }
  (void)d.lookup(key(42));  // prime key 42's chain cache
  const auto warm = d.lookup(key(42));
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.examined, 1u);
  EXPECT_TRUE(d.erase(key(42)));
  EXPECT_FALSE(d.erase(key(42)));
  EXPECT_EQ(d.lookup(key(42)).pcb, nullptr);
}

TEST(ConcurrentSequent, ZeroChainsThrows) {
  EXPECT_THROW(ConcurrentSequentDemuxer(ConcurrentSequentDemuxer::Options{
                   0, net::HasherKind::kCrc32, true}),
               std::invalid_argument);
}

TEST(ConcurrentSequent, ParallelLookupsAllSucceed) {
  ConcurrentSequentDemuxer d(ConcurrentSequentDemuxer::Options{
      101, net::HasherKind::kCrc32, true});
  constexpr std::uint32_t kKeys = 2000;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t) * 2654435761u + 1u;
      for (int i = 0; i < kIterations; ++i) {
        state = state * 1664525u + 1013904223u;
        const auto r = d.lookup(key(state % kKeys));
        if (r.pcb == nullptr) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(d.lookups(), static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_GT(d.pcbs_examined(), d.lookups());
}

TEST(ConcurrentSequent, ParallelChurnKeepsInvariants) {
  // Threads own disjoint key ranges and concurrently insert, look up, and
  // erase; the structure must end exactly empty with every operation
  // having succeeded.
  ConcurrentSequentDemuxer d(ConcurrentSequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  constexpr int kThreads = 8;
  constexpr std::uint32_t kPerThread = 500;
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint32_t base = static_cast<std::uint32_t>(t) * kPerThread;
      for (std::uint32_t round = 0; round < 20; ++round) {
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          if (d.insert(key(base + i)) == nullptr) errors.fetch_add(1);
        }
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          if (d.lookup(key(base + i)).pcb == nullptr) errors.fetch_add(1);
        }
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          if (!d.erase(key(base + i))) errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(d.size(), 0u);
}

TEST(ConcurrentSequent, ConnIdsUniqueUnderContention) {
  ConcurrentSequentDemuxer d(ConcurrentSequentDemuxer::Options{
      101, net::HasherKind::kCrc32, true});
  constexpr int kThreads = 8;
  constexpr std::uint32_t kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint32_t base = static_cast<std::uint32_t>(t) * kPerThread;
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        d.insert(key(base + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<bool> seen(kThreads * kPerThread, false);
  std::size_t duplicates = 0;
  for (std::uint32_t i = 0; i < kThreads * kPerThread; ++i) {
    const auto r = d.lookup(key(i));
    ASSERT_NE(r.pcb, nullptr);
    const auto id = static_cast<std::size_t>(r.pcb->conn_id);
    ASSERT_LT(id, seen.size());
    if (seen[id]) ++duplicates;
    seen[id] = true;
  }
  EXPECT_EQ(duplicates, 0u);
}

TEST(GloballyLocked, WrapsAnyDemuxerCorrectly) {
  GloballyLockedDemuxer d(std::make_unique<BsdListDemuxer>());
  EXPECT_NE(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.lookup(key(1)).pcb->key, key(1));
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.name(), "locked(bsd)");
  EXPECT_TRUE(d.erase(key(1)));
}

TEST(GloballyLocked, ParallelAccessSafe) {
  GloballyLockedDemuxer d(std::make_unique<BsdListDemuxer>());
  for (std::uint32_t i = 0; i < 200; ++i) d.insert(key(i));
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        const auto r = d.lookup(key(static_cast<std::uint32_t>(
            (t * 5000 + i) % 200)));
        if (r.pcb == nullptr) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace tcpdemux::core
