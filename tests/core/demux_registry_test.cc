#include "core/demux_registry.h"

#include <gtest/gtest.h>

namespace tcpdemux::core {
namespace {

TEST(Registry, MakesEveryAlgorithm) {
  for (const Algorithm algo :
       {Algorithm::kBsd, Algorithm::kMtf, Algorithm::kSrCache,
        Algorithm::kSequent, Algorithm::kHashedMtf,
        Algorithm::kConnectionId, Algorithm::kDynamic, Algorithm::kRcu,
        Algorithm::kFlat}) {
    DemuxConfig config;
    config.algorithm = algo;
    const auto d = make_demuxer(config);
    ASSERT_NE(d, nullptr) << algorithm_name(algo);
    EXPECT_EQ(d->size(), 0u);
  }
}

TEST(Registry, ParseSimpleNames) {
  for (const auto& [spec, algo] :
       std::initializer_list<std::pair<const char*, Algorithm>>{
           {"bsd", Algorithm::kBsd},
           {"mtf", Algorithm::kMtf},
           {"srcache", Algorithm::kSrCache},
           {"sequent", Algorithm::kSequent},
           {"hashed_mtf", Algorithm::kHashedMtf},
           {"connection_id", Algorithm::kConnectionId},
           {"rcu", Algorithm::kRcu},
           {"flat", Algorithm::kFlat},
           {"flat16", Algorithm::kFlat16},
           {"cuckoo", Algorithm::kCuckoo}}) {
    const auto config = parse_demux_spec(spec);
    ASSERT_TRUE(config.has_value()) << spec;
    EXPECT_EQ(config->algorithm, algo) << spec;
  }
}

TEST(Registry, ParseSequentWithChainsAndHasher) {
  const auto config = parse_demux_spec("sequent:101:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kSequent);
  EXPECT_EQ(config->chains, 101u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  EXPECT_TRUE(config->per_chain_cache);
}

TEST(Registry, ParseSequentNoCache) {
  const auto config = parse_demux_spec("sequent:19:xor_fold:nocache");
  ASSERT_TRUE(config.has_value());
  EXPECT_FALSE(config->per_chain_cache);
}

TEST(Registry, ParseConnectionIdCapacity) {
  const auto config = parse_demux_spec("connection_id:256");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kConnectionId);
  EXPECT_EQ(config->id_capacity, 256u);
  EXPECT_FALSE(parse_demux_spec("connection_id:0").has_value());
  EXPECT_FALSE(parse_demux_spec("connection_id:abc").has_value());
  EXPECT_FALSE(parse_demux_spec("connection_id:256:extra").has_value());
}

TEST(Registry, ParseRejectsUnknownAlgorithm) {
  EXPECT_FALSE(parse_demux_spec("quantum").has_value());
  EXPECT_FALSE(parse_demux_spec("").has_value());
}

TEST(Registry, ParseRejectsChainsOnNonHashed) {
  EXPECT_FALSE(parse_demux_spec("bsd:19").has_value());
  EXPECT_FALSE(parse_demux_spec("mtf:3").has_value());
}

TEST(Registry, ParseRejectsBadChainCount) {
  EXPECT_FALSE(parse_demux_spec("sequent:0").has_value());
  EXPECT_FALSE(parse_demux_spec("sequent:abc").has_value());
}

TEST(Registry, ParseRejectsBadHasher) {
  EXPECT_FALSE(parse_demux_spec("sequent:19:sha256").has_value());
}

TEST(Registry, ParseRejectsNocacheOnHashedMtf) {
  EXPECT_FALSE(parse_demux_spec("hashed_mtf:19:crc32:nocache").has_value());
}

TEST(Registry, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(parse_demux_spec("sequent:19:crc32:nocache:extra").has_value());
}

TEST(Registry, ParseHasherNames) {
  for (const net::HasherKind kind : net::kAllHashers) {
    const auto parsed = parse_hasher_name(net::hasher_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_hasher_name("nope").has_value());
}

TEST(Registry, ParseRcuSpec) {
  const auto config = parse_demux_spec("rcu:101:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kRcu);
  EXPECT_EQ(config->chains, 101u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "rcu(h=101,crc32)");
}

TEST(Registry, ParseRcuNoCache) {
  const auto config = parse_demux_spec("rcu:19:xor_fold:nocache");
  ASSERT_TRUE(config.has_value());
  EXPECT_FALSE(config->per_chain_cache);
  EXPECT_FALSE(parse_demux_spec("rcu:0").has_value());
}

TEST(Registry, ParseDynamicSpec) {
  const auto config = parse_demux_spec("dynamic:41:jenkins");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kDynamic);
  EXPECT_EQ(config->chains, 41u);
  EXPECT_EQ(config->hasher, net::HasherKind::kJenkins);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "dynamic(h=41,jenkins)");
}

TEST(Registry, DynamicDefaultConfig) {
  const auto config = parse_demux_spec("dynamic");
  ASSERT_TRUE(config.has_value());
  const auto d = make_demuxer(*config);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->size(), 0u);
}

TEST(Registry, ParseFlatSpec) {
  const auto config = parse_demux_spec("flat:4096:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kFlat);
  EXPECT_EQ(config->flat_capacity, 4096u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "flat(cap=4096,crc32)");
}

TEST(Registry, FlatDefaultConfig) {
  const auto config = parse_demux_spec("flat");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->flat_capacity, 1024u);
  const auto d = make_demuxer(*config);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name(), "flat(cap=1024,xor_fold)");
}

TEST(Registry, FlatCapacityRoundsUpToPowerOfTwo) {
  // The table enforces power-of-two capacity; the registry passes the
  // requested value through and the constructor rounds up.
  const auto d = make_demuxer(*parse_demux_spec("flat:1000"));
  EXPECT_EQ(d->name(), "flat(cap=1024,xor_fold)");
}

TEST(Registry, ParseRejectsBadFlatSpec) {
  EXPECT_FALSE(parse_demux_spec("flat:0").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:abc").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:sha256").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:crc32:nocache").has_value());
}

TEST(Registry, ParseFlat16Spec) {
  const auto config = parse_demux_spec("flat16:4096:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kFlat16);
  EXPECT_EQ(config->flat_capacity, 4096u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "flat16(cap=4096,crc32)");
}

TEST(Registry, Flat16DefaultConfig) {
  const auto d = make_demuxer(*parse_demux_spec("flat16"));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name(), "flat16(cap=1024,xor_fold)");
}

TEST(Registry, ParseCuckooSpec) {
  const auto config = parse_demux_spec("cuckoo:512:jenkins");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kCuckoo);
  EXPECT_EQ(config->flat_capacity, 512u);
  EXPECT_EQ(config->hasher, net::HasherKind::kJenkins);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "cuckoo(cap=512,jenkins)");
}

TEST(Registry, CuckooDefaultsToHardwareCrc32c) {
  // The alt-bucket derivation needs a mixing hash, so the bare spec picks
  // the hardware-accelerated CRC32C family rather than xor_fold.
  const auto config = parse_demux_spec("cuckoo");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32c);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "cuckoo(cap=1024,crc32c)");
}

TEST(Registry, CuckooCapacityRoundsUpToPowerOfTwo) {
  const auto d = make_demuxer(*parse_demux_spec("cuckoo:1000"));
  EXPECT_EQ(d->name(), "cuckoo(cap=1024,crc32c)");
}

TEST(Registry, ParseRejectsBadFlat16AndCuckooSpecs) {
  EXPECT_FALSE(parse_demux_spec("flat16:0").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:0").has_value());
  EXPECT_FALSE(parse_demux_spec("flat16:64:sha256").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:64:sha256").has_value());
  EXPECT_FALSE(parse_demux_spec("flat16:64:crc32:nocache").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:64:crc32c:nocache").has_value());
}

TEST(Registry, ConfiguredDemuxerReflectsSpec) {
  const auto config = parse_demux_spec("sequent:31:jenkins");
  ASSERT_TRUE(config.has_value());
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "sequent(h=31,jenkins)");
}

}  // namespace
}  // namespace tcpdemux::core
