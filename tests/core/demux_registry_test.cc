#include "core/demux_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

namespace tcpdemux::core {
namespace {

TEST(Registry, MakesEveryAlgorithm) {
  for (const Algorithm algo :
       {Algorithm::kBsd, Algorithm::kMtf, Algorithm::kSrCache,
        Algorithm::kSequent, Algorithm::kHashedMtf,
        Algorithm::kConnectionId, Algorithm::kDynamic, Algorithm::kRcu,
        Algorithm::kFlat}) {
    DemuxConfig config;
    config.algorithm = algo;
    const auto d = make_demuxer(config);
    ASSERT_NE(d, nullptr) << algorithm_name(algo);
    EXPECT_EQ(d->size(), 0u);
  }
}

TEST(Registry, ParseSimpleNames) {
  for (const auto& [spec, algo] :
       std::initializer_list<std::pair<const char*, Algorithm>>{
           {"bsd", Algorithm::kBsd},
           {"mtf", Algorithm::kMtf},
           {"srcache", Algorithm::kSrCache},
           {"sequent", Algorithm::kSequent},
           {"hashed_mtf", Algorithm::kHashedMtf},
           {"connection_id", Algorithm::kConnectionId},
           {"rcu", Algorithm::kRcu},
           {"flat", Algorithm::kFlat},
           {"flat16", Algorithm::kFlat16},
           {"cuckoo", Algorithm::kCuckoo}}) {
    const auto config = parse_demux_spec(spec);
    ASSERT_TRUE(config.has_value()) << spec;
    EXPECT_EQ(config->algorithm, algo) << spec;
  }
}

TEST(Registry, ParseSequentWithChainsAndHasher) {
  const auto config = parse_demux_spec("sequent:101:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kSequent);
  EXPECT_EQ(config->chains, 101u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  EXPECT_TRUE(config->per_chain_cache);
}

TEST(Registry, ParseSequentNoCache) {
  const auto config = parse_demux_spec("sequent:19:xor_fold:nocache");
  ASSERT_TRUE(config.has_value());
  EXPECT_FALSE(config->per_chain_cache);
}

TEST(Registry, ParseConnectionIdCapacity) {
  const auto config = parse_demux_spec("connection_id:256");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kConnectionId);
  EXPECT_EQ(config->id_capacity, 256u);
  EXPECT_FALSE(parse_demux_spec("connection_id:0").has_value());
  EXPECT_FALSE(parse_demux_spec("connection_id:abc").has_value());
  EXPECT_FALSE(parse_demux_spec("connection_id:256:extra").has_value());
}

TEST(Registry, ParseRejectsUnknownAlgorithm) {
  EXPECT_FALSE(parse_demux_spec("quantum").has_value());
  EXPECT_FALSE(parse_demux_spec("").has_value());
}

TEST(Registry, ParseRejectsChainsOnNonHashed) {
  EXPECT_FALSE(parse_demux_spec("bsd:19").has_value());
  EXPECT_FALSE(parse_demux_spec("mtf:3").has_value());
}

TEST(Registry, ParseRejectsBadChainCount) {
  EXPECT_FALSE(parse_demux_spec("sequent:0").has_value());
  EXPECT_FALSE(parse_demux_spec("sequent:abc").has_value());
}

TEST(Registry, ParseRejectsBadHasher) {
  EXPECT_FALSE(parse_demux_spec("sequent:19:sha256").has_value());
}

TEST(Registry, ParseRejectsNocacheOnHashedMtf) {
  EXPECT_FALSE(parse_demux_spec("hashed_mtf:19:crc32:nocache").has_value());
}

TEST(Registry, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(parse_demux_spec("sequent:19:crc32:nocache:extra").has_value());
}

TEST(Registry, ParseHasherNames) {
  for (const net::HasherKind kind : net::kAllHashers) {
    const auto parsed = parse_hasher_name(net::hasher_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_hasher_name("nope").has_value());
}

TEST(Registry, ParseRcuSpec) {
  const auto config = parse_demux_spec("rcu:101:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kRcu);
  EXPECT_EQ(config->chains, 101u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "rcu(h=101,crc32)");
}

TEST(Registry, ParseRcuNoCache) {
  const auto config = parse_demux_spec("rcu:19:xor_fold:nocache");
  ASSERT_TRUE(config.has_value());
  EXPECT_FALSE(config->per_chain_cache);
  EXPECT_FALSE(parse_demux_spec("rcu:0").has_value());
}

TEST(Registry, ParseDynamicSpec) {
  const auto config = parse_demux_spec("dynamic:41:jenkins");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kDynamic);
  EXPECT_EQ(config->chains, 41u);
  EXPECT_EQ(config->hasher, net::HasherKind::kJenkins);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "dynamic(h=41,jenkins)");
}

TEST(Registry, DynamicDefaultConfig) {
  const auto config = parse_demux_spec("dynamic");
  ASSERT_TRUE(config.has_value());
  const auto d = make_demuxer(*config);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->size(), 0u);
}

TEST(Registry, ParseFlatSpec) {
  const auto config = parse_demux_spec("flat:4096:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kFlat);
  EXPECT_EQ(config->flat_capacity, 4096u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "flat(cap=4096,crc32)");
}

TEST(Registry, FlatDefaultConfig) {
  const auto config = parse_demux_spec("flat");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->flat_capacity, 1024u);
  const auto d = make_demuxer(*config);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name(), "flat(cap=1024,xor_fold)");
}

TEST(Registry, FlatCapacityRoundsUpToPowerOfTwo) {
  // The table enforces power-of-two capacity; the registry passes the
  // requested value through and the constructor rounds up.
  const auto d = make_demuxer(*parse_demux_spec("flat:1000"));
  EXPECT_EQ(d->name(), "flat(cap=1024,xor_fold)");
}

TEST(Registry, ParseRejectsBadFlatSpec) {
  EXPECT_FALSE(parse_demux_spec("flat:0").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:abc").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:sha256").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:crc32:nocache").has_value());
}

TEST(Registry, ParseFlat16Spec) {
  const auto config = parse_demux_spec("flat16:4096:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kFlat16);
  EXPECT_EQ(config->flat_capacity, 4096u);
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "flat16(cap=4096,crc32)");
}

TEST(Registry, Flat16DefaultConfig) {
  const auto d = make_demuxer(*parse_demux_spec("flat16"));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name(), "flat16(cap=1024,xor_fold)");
}

TEST(Registry, ParseCuckooSpec) {
  const auto config = parse_demux_spec("cuckoo:512:jenkins");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kCuckoo);
  EXPECT_EQ(config->flat_capacity, 512u);
  EXPECT_EQ(config->hasher, net::HasherKind::kJenkins);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "cuckoo(cap=512,jenkins)");
}

TEST(Registry, CuckooDefaultsToHardwareCrc32c) {
  // The alt-bucket derivation needs a mixing hash, so the bare spec picks
  // the hardware-accelerated CRC32C family rather than xor_fold.
  const auto config = parse_demux_spec("cuckoo");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->hasher, net::HasherKind::kCrc32c);
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "cuckoo(cap=1024,crc32c)");
}

TEST(Registry, CuckooCapacityRoundsUpToPowerOfTwo) {
  const auto d = make_demuxer(*parse_demux_spec("cuckoo:1000"));
  EXPECT_EQ(d->name(), "cuckoo(cap=1024,crc32c)");
}

TEST(Registry, ParseRejectsBadFlat16AndCuckooSpecs) {
  EXPECT_FALSE(parse_demux_spec("flat16:0").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:0").has_value());
  EXPECT_FALSE(parse_demux_spec("flat16:64:sha256").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:64:sha256").has_value());
  EXPECT_FALSE(parse_demux_spec("flat16:64:crc32:nocache").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:64:crc32c:nocache").has_value());
}

TEST(Registry, ConfiguredDemuxerReflectsSpec) {
  const auto config = parse_demux_spec("sequent:31:jenkins");
  ASSERT_TRUE(config.has_value());
  const auto d = make_demuxer(*config);
  EXPECT_EQ(d->name(), "sequent(h=31,jenkins)");
}

// --- grammar hardening: conflicting duplicates are named errors ------------
//
// Nesting specs under "sharded:N:<inner>" makes silent last-wins (or a
// bare nullopt) unacceptable: a typo deep inside a composed spec must
// come back with the offending token named.

std::string parse_error(std::string_view spec) {
  std::string error;
  EXPECT_FALSE(parse_demux_spec(spec, &error).has_value()) << spec;
  return error;
}

TEST(Registry, ParseRejectsDuplicateOptionTokensInEveryFamily) {
  // One duplicated-token probe per option, across the families that
  // accept it; all must fail, none may silently keep either copy.
  EXPECT_FALSE(parse_demux_spec("flat:incremental:incremental").has_value());
  EXPECT_FALSE(parse_demux_spec("flat16:64:incremental:incremental").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:incremental:incremental").has_value());
  EXPECT_FALSE(parse_demux_spec("dynamic:incremental:incremental").has_value());
  EXPECT_FALSE(parse_demux_spec("sequent:19:max=5:max=9").has_value());
  EXPECT_FALSE(parse_demux_spec("dynamic:5:max=5:max=5").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:max=100:max=200").has_value());
  EXPECT_FALSE(parse_demux_spec("sequent:rehash:rehash").has_value());
  EXPECT_FALSE(parse_demux_spec("flat16:rehash:rehash").has_value());
  EXPECT_FALSE(parse_demux_spec("sequent:nocache:nocache").has_value());
  EXPECT_FALSE(parse_demux_spec("rcu:19:nocache:nocache").has_value());
}

TEST(Registry, ParseRejectsDuplicateHasherTokens) {
  EXPECT_FALSE(parse_demux_spec("sequent:19:crc32:jenkins").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:crc32:crc32").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:64:crc32c@1:crc32c@2").has_value());
  EXPECT_FALSE(parse_demux_spec("rcu:19:xor_fold:siphash@5eed").has_value());
  EXPECT_EQ(parse_error("flat:64:crc32:crc32"),
            "duplicate hasher token 'crc32'");
}

TEST(Registry, ParseRejectsMisplacedCountToken) {
  // The count is positional; a number after a non-count token is a
  // different mistake than an unknown token and says so.
  EXPECT_FALSE(parse_demux_spec("sequent:crc32:19").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:rehash:64").has_value());
  EXPECT_EQ(parse_error("sequent:crc32:19"),
            "count token '19' must come directly after the algorithm name");
}

TEST(Registry, ParseAcceptsHasherAndOptionsInAnyOrder) {
  // The flip side of positional counts: everything after the count slot
  // may come in any order. "dynamic:incremental" (option in the count
  // slot) used to be rejected outright.
  const auto dynamic = parse_demux_spec("dynamic:incremental");
  ASSERT_TRUE(dynamic.has_value());
  EXPECT_TRUE(dynamic->incremental);
  const auto flat = parse_demux_spec("flat:rehash:crc32c");
  ASSERT_TRUE(flat.has_value());
  EXPECT_TRUE(flat->rehash_on_overload);
  EXPECT_EQ(flat->hasher, net::HasherKind::kCrc32c);
  const auto sequent = parse_demux_spec("sequent:nocache:crc32");
  ASSERT_TRUE(sequent.has_value());
  EXPECT_FALSE(sequent->per_chain_cache);
  const auto capped = parse_demux_spec("flat:64:max=100:crc32:incremental");
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->flat_capacity, 64u);
  EXPECT_EQ(capped->max_pcbs, 100u);
  EXPECT_TRUE(capped->incremental);
}

TEST(Registry, ParseRejectsMangledSeedSuffixes) {
  EXPECT_FALSE(parse_demux_spec("sequent:19:crc32@1f@2e").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:crc32@").has_value());
  EXPECT_FALSE(parse_demux_spec("flat:64:crc32@123456789").has_value());
  EXPECT_FALSE(parse_demux_spec("cuckoo:64:siphash@zz").has_value());
  EXPECT_EQ(parse_error("sequent:19:crc32@1f@2e"),
            "bad seed suffix in 'crc32@1f@2e' (want one '@' and 1-8 hex digits)");
}

TEST(Registry, ParseShardedGrammar) {
  const auto ok = parse_demux_spec("sharded:4:flat16:64:crc32");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->algorithm, Algorithm::kSharded);
  EXPECT_EQ(ok->shards, 4u);
  EXPECT_EQ(ok->inner_spec, "flat16:64:crc32");

  EXPECT_FALSE(parse_demux_spec("sharded").has_value());
  EXPECT_FALSE(parse_demux_spec("sharded:4").has_value());
  EXPECT_FALSE(parse_demux_spec("sharded:0:flat").has_value());
  EXPECT_FALSE(parse_demux_spec("sharded:abc:flat").has_value());
  EXPECT_FALSE(parse_demux_spec("sharded:2:sharded:2:flat").has_value());
  EXPECT_FALSE(parse_demux_spec("sharded:2:quantum").has_value());
  EXPECT_EQ(parse_error("sharded:2:sharded:2:flat"),
            "sharded cannot nest another sharded spec");
}

TEST(Registry, ErrorOverloadNamesTheOffendingToken) {
  EXPECT_EQ(parse_error("flat:incremental:incremental"),
            "duplicate 'incremental' token");
  EXPECT_EQ(parse_error("sequent:19:max=5:max=9"), "duplicate 'max=N' token");
  EXPECT_EQ(parse_error("flat:64:nocache"), "'nocache' is not supported by flat");
  EXPECT_EQ(parse_error("sequent:19:turbo"), "unknown token 'turbo'");
  EXPECT_EQ(parse_error("mtf:incremental"), "mtf takes no ':' parameters");
  // Inner-spec failures surface wrapped, so a bad token three levels into
  // a sharded spec still names itself.
  const std::string nested = parse_error("sharded:2:flat:64:max=1:max=2");
  EXPECT_NE(nested.find("bad inner spec 'flat:64:max=1:max=2'"),
            std::string::npos)
      << nested;
  EXPECT_NE(nested.find("duplicate 'max=N' token"), std::string::npos)
      << nested;
}

}  // namespace
}  // namespace tcpdemux::core
