// Demuxer::lookup_batch contract, parameterized over every registry
// algorithm: a batch must be indistinguishable from issuing the same
// lookups one at a time — found/not-found per key, returned identity,
// and the full stats ledger (lookups / found / cache_hits / examined).
// This covers the base-class default loop and every pipelined override
// (flat, sequent, rcu) with the same oracle: a twin demuxer, identically
// populated, driven scalar.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/demux_registry.h"
#include "core/demuxer.h"
#include "net/flow_key.h"

namespace tcpdemux::core {
namespace {

// Keys vary in the address only; mirroring `i` into the port too would
// cancel under xor_fold (i ^ (base + i) is often constant) and collapse
// hashed structures into one chain.
net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 2, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      30000};
}

class LookupBatchParity : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Demuxer> make() const {
    const auto config = parse_demux_spec(GetParam());
    EXPECT_TRUE(config.has_value()) << GetParam();
    return make_demuxer(*config);
  }
};

TEST_P(LookupBatchParity, BatchEqualsScalarSequence) {
  // Twin instances, identical population: batched on one, scalar on the
  // other. The demuxers process a batch in key order, so even the
  // order-sensitive algorithms (MTF splices, per-chain caches) must agree
  // on every result AND every counter.
  const auto batched = make();
  const auto scalar = make();
  constexpr std::uint32_t kLive = 400;
  for (std::uint32_t i = 0; i < kLive; ++i) {
    ASSERT_NE(batched->insert(key(i)), nullptr);
    ASSERT_NE(scalar->insert(key(i)), nullptr);
  }

  std::mt19937 rng(777);
  std::uniform_int_distribution<std::uint32_t> pick(0, kLive * 2);  // ~50% miss
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7},
                                       std::size_t{32}, std::size_t{129}}) {
    std::vector<net::FlowKey> keys(batch_size);
    for (auto& k : keys) k = key(pick(rng));
    std::vector<LookupResult> results(batch_size);
    const SegmentKind kind =
        batch_size % 2 == 0 ? SegmentKind::kAck : SegmentKind::kData;
    batched->lookup_batch(keys, results, kind);
    for (std::size_t i = 0; i < batch_size; ++i) {
      const LookupResult want = scalar->lookup(keys[i], kind);
      ASSERT_EQ(results[i].pcb != nullptr, want.pcb != nullptr)
          << GetParam() << " batch_size=" << batch_size << " index " << i;
      if (results[i].pcb != nullptr) {
        EXPECT_EQ(results[i].pcb->key, keys[i]);
      }
      EXPECT_EQ(results[i].examined, want.examined)
          << GetParam() << " batch_size=" << batch_size << " index " << i;
      EXPECT_EQ(results[i].cache_hit, want.cache_hit)
          << GetParam() << " batch_size=" << batch_size << " index " << i;
    }
    ASSERT_EQ(batched->stats().lookups, scalar->stats().lookups);
    ASSERT_EQ(batched->stats().found, scalar->stats().found);
    ASSERT_EQ(batched->stats().cache_hits, scalar->stats().cache_hits);
    ASSERT_EQ(batched->stats().pcbs_examined, scalar->stats().pcbs_examined);
  }
}

TEST_P(LookupBatchParity, EmptyBatchIsANoOp) {
  const auto d = make();
  d->insert(key(0));
  d->lookup_batch({}, {});
  EXPECT_EQ(d->stats().lookups, 0u);
}

TEST_P(LookupBatchParity, ResultSpanMayExceedKeySpan) {
  const auto d = make();
  d->insert(key(0));
  std::vector<net::FlowKey> keys = {key(0), key(1)};
  std::vector<LookupResult> results(8);
  d->lookup_batch(keys, results);
  EXPECT_NE(results[0].pcb, nullptr);
  EXPECT_EQ(results[1].pcb, nullptr);
  EXPECT_EQ(d->stats().lookups, 2u) << "only keys.size() lookups may run";
}

INSTANTIATE_TEST_SUITE_P(
    AllDemuxers, LookupBatchParity,
    ::testing::Values("bsd", "mtf", "srcache", "connection_id", "sequent",
                      "sequent:7:crc32:nocache", "hashed_mtf", "dynamic:5",
                      "rcu", "rcu:7:crc32:nocache", "flat", "flat:64",
                      "flat:1024:crc32", "flat16", "flat16:64",
                      "flat16:1024:crc32", "cuckoo", "cuckoo:64",
                      "cuckoo:1024:crc32c", "sharded:4:flat16",
                      "sharded:2:sequent:19:crc32"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tcpdemux::core
