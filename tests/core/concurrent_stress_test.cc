// Multi-threaded stress + differential tests, typed over both thread-safe
// demuxers (striped-mutex and RCU). N writers and M readers hammer
// overlapping key sets; afterwards the op log is checked against what a
// sequential execution must produce:
//
//   * every successful insert adds exactly one instance of a key and
//     every successful erase removes exactly one, so per key
//     net(successful inserts - successful erases) is 0 or 1 and must
//     equal the key's final presence — regardless of interleaving;
//   * the final size must equal the sum of those nets (no lost inserts,
//     no double frees);
//   * a looked-up PCB must always carry the requested key (a stale cache
//     entry or use-after-erase would return another connection's PCB —
//     the sentinel condition — or trip TSan/ASan in sanitizer runs).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/concurrent_demuxer.h"
#include "core/rcu_demuxer.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 4, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(30000 + (i % 30000))};
}

template <typename DemuxerT>
DemuxerT make_demuxer_under_test() {
  return DemuxerT(
      typename DemuxerT::Options{19, net::HasherKind::kCrc32, true});
}

template <typename DemuxerT>
class ConcurrentStress : public ::testing::Test {};

using ThreadSafeDemuxers =
    ::testing::Types<ConcurrentSequentDemuxer, RcuSequentDemuxer>;

class DemuxerTypeNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, ConcurrentSequentDemuxer>) {
      return "StripedMutex";
    } else {
      return "Rcu";
    }
  }
};

TYPED_TEST_SUITE(ConcurrentStress, ThreadSafeDemuxers, DemuxerTypeNames);

TYPED_TEST(ConcurrentStress, WritersAndReadersOnOverlappingKeys) {
  auto d = make_demuxer_under_test<TypeParam>();
  constexpr std::uint32_t kKeys = 256;
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kOpsPerWriter = 8000;

  // Per-writer, per-key success counters — the op log. Writers all work
  // the same key range, so inserts and erases genuinely race.
  struct WriterLog {
    std::vector<std::uint32_t> inserts;
    std::vector<std::uint32_t> erases;
  };
  std::vector<WriterLog> logs(kWriters);
  for (auto& log : logs) {
    log.inserts.assign(kKeys, 0);
    log.erases.assign(kKeys, 0);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t + 1) * 2654435761u;
      std::uint64_t local_hits = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        state = state * 1664525u + 1013904223u;
        const net::FlowKey k = key(state % kKeys);
        const auto r = d.lookup(k);
        // The returned Pcb* must NOT be dereferenced here: writers erase
        // these very keys concurrently, and neither structure keeps a
        // PCB alive for callers outside a read-side critical section
        // (rcu_demuxer_test.cc shows the guarded-dereference recipe).
        local_hits += (r.pcb != nullptr) ? 1 : 0;
      }
      hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t + 101) * 40503u;
      for (int op = 0; op < kOpsPerWriter; ++op) {
        state = state * 1664525u + 1013904223u;
        const std::uint32_t i = state % kKeys;
        if ((state >> 16) % 2 == 0) {
          if (d.insert(key(i)) != nullptr) ++logs[t].inserts[i];
        } else {
          if (d.erase(key(i))) ++logs[t].erases[i];
        }
      }
    });
  }
  for (int t = kReaders; t < kReaders + kWriters; ++t) threads[t].join();
  stop.store(true);
  for (int t = 0; t < kReaders; ++t) threads[t].join();

  // `hits` only has to be bounded by the number of lookups issued; the
  // real invariant is the op-log replay below.
  EXPECT_LE(hits.load(), d.lookups());

  // Sequential accounting over the merged op log.
  std::size_t expected_size = 0;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    std::int64_t net = 0;
    for (const auto& log : logs) {
      net += log.inserts[i];
      net -= log.erases[i];
    }
    ASSERT_GE(net, 0) << "key " << i << ": more erases succeeded than inserts";
    ASSERT_LE(net, 1) << "key " << i << ": duplicate insert accepted";
    const bool present = d.lookup(key(i)).pcb != nullptr;
    EXPECT_EQ(present, net == 1) << "key " << i;
    expected_size += static_cast<std::size_t>(net);
  }
  EXPECT_EQ(d.size(), expected_size);
}

TYPED_TEST(ConcurrentStress, DisjointWritersFullChurnEndsEmpty) {
  auto d = make_demuxer_under_test<TypeParam>();
  constexpr int kWriters = 8;
  constexpr std::uint32_t kPerWriter = 300;
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      const std::uint32_t base = static_cast<std::uint32_t>(t) * kPerWriter;
      for (int round = 0; round < 15; ++round) {
        for (std::uint32_t i = 0; i < kPerWriter; ++i) {
          if (d.insert(key(base + i)) == nullptr) errors.fetch_add(1);
        }
        for (std::uint32_t i = 0; i < kPerWriter; ++i) {
          if (d.lookup(key(base + i)).pcb == nullptr) errors.fetch_add(1);
        }
        for (std::uint32_t i = 0; i < kPerWriter; ++i) {
          if (!d.erase(key(base + i))) errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(d.size(), 0u);
}

TYPED_TEST(ConcurrentStress, MixedBurstsKeepCountersConsistent) {
  // Readers use both scalar and (where available) batch lookups while
  // writers churn a sliding window; counters must account every lookup.
  auto d = make_demuxer_under_test<TypeParam>();
  constexpr std::uint32_t kKeys = 512;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  constexpr int kReaders = 3;
  constexpr int kLookupsPerReader = 30000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t + 7) * 2654435761u;
      for (int i = 0; i < kLookupsPerReader; ++i) {
        state = state * 1664525u + 1013904223u;
        (void)d.lookup(key(state % kKeys));
      }
    });
  }
  std::thread writer([&] {
    std::uint32_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint32_t i = round++ % kKeys;
      d.erase(key(i));
      d.insert(key(i));
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  writer.join();
  EXPECT_GE(d.lookups(),
            static_cast<std::uint64_t>(kReaders) * kLookupsPerReader);
  EXPECT_GE(d.pcbs_examined(), d.lookups());
  EXPECT_EQ(d.size(), kKeys);
}

TEST(RcuStress, BatchReadersDuringChurn) {
  RcuSequentDemuxer d(
      RcuSequentDemuxer::Options{19, net::HasherKind::kCrc32, true});
  constexpr std::uint32_t kKeys = 256;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> wrong_pcb{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t + 3) * 97u;
      std::vector<net::FlowKey> burst(24);
      std::vector<LookupResult> results(24);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& k : burst) {
          state = state * 1664525u + 1013904223u;
          k = key(state % kKeys);
        }
        // The guard must span the batch AND the dereferences below:
        // lookup_batch's internal guard ends when it returns, and the
        // writer is concurrently erasing half of these keys.
        EpochManager::Guard g(d.epoch_manager());
        d.lookup_batch(burst, results);
        for (std::size_t i = 0; i < burst.size(); ++i) {
          if (results[i].pcb != nullptr &&
              !(results[i].pcb->key == burst[i])) {
            wrong_pcb.fetch_add(1);
          }
        }
      }
    });
  }
  for (int round = 0; round < 40; ++round) {
    for (std::uint32_t i = 0; i < kKeys; i += 2) d.erase(key(i));
    for (std::uint32_t i = 0; i < kKeys; i += 2) d.insert(key(i));
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(wrong_pcb.load(), 0u);
  EXPECT_EQ(d.size(), kKeys);
  d.epoch_manager().drain();
  EXPECT_EQ(d.epoch_manager().pending_count(), 0u);
}

}  // namespace
}  // namespace tcpdemux::core
