// Differential testing: every algorithm is a different *strategy* over the
// same abstract map, so identical operation sequences must produce
// identical membership results everywhere — only the examined counts may
// differ.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/demux_registry.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 2, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(10000 + (i % 50000))};
}

const char* kSpecs[] = {"bsd",           "mtf",
                        "srcache",       "sequent:19:crc32",
                        "sequent:1",     "sequent:101:toeplitz",
                        "hashed_mtf",    "dynamic",
                        "connection_id", "rcu:19:crc32",
                        "flat",          "flat:64:crc32",
                        "flat16",        "flat16:64:crc32",
                        "cuckoo",        "cuckoo:64:crc32",
                        "sharded:4:flat16",
                        "sharded:3:sequent:19:crc32",
                        "sharded:2:cuckoo"};

TEST(Differential, AllAlgorithmsAgreeOnMembership) {
  std::vector<std::unique_ptr<Demuxer>> demuxers;
  for (const char* spec : kSpecs) {
    demuxers.push_back(make_demuxer(*parse_demux_spec(spec)));
  }

  std::mt19937_64 rng(77);
  for (int step = 0; step < 6000; ++step) {
    const std::uint32_t i = static_cast<std::uint32_t>(rng() % 400);
    const net::FlowKey k = key(i);
    switch (rng() % 4) {
      case 0: {
        const bool first_inserted = demuxers[0]->insert(k) != nullptr;
        for (std::size_t d = 1; d < demuxers.size(); ++d) {
          EXPECT_EQ(demuxers[d]->insert(k) != nullptr, first_inserted)
              << kSpecs[d] << " diverged on insert at step " << step;
        }
        break;
      }
      case 1: {
        const bool first_erased = demuxers[0]->erase(k);
        for (std::size_t d = 1; d < demuxers.size(); ++d) {
          EXPECT_EQ(demuxers[d]->erase(k), first_erased)
              << kSpecs[d] << " diverged on erase at step " << step;
        }
        break;
      }
      default: {
        const auto kind =
            (rng() % 2 == 0) ? SegmentKind::kData : SegmentKind::kAck;
        const bool first_found = demuxers[0]->lookup(k, kind).pcb != nullptr;
        for (std::size_t d = 1; d < demuxers.size(); ++d) {
          const auto r = demuxers[d]->lookup(k, kind);
          EXPECT_EQ(r.pcb != nullptr, first_found)
              << kSpecs[d] << " diverged on lookup at step " << step;
          if (r.pcb != nullptr) {
            EXPECT_EQ(r.pcb->key, k);
          }
        }
        break;
      }
    }
    for (std::size_t d = 1; d < demuxers.size(); ++d) {
      ASSERT_EQ(demuxers[d]->size(), demuxers[0]->size())
          << kSpecs[d] << " size diverged at step " << step;
    }
  }
}

TEST(Differential, TotalFoundCountsIdenticalOverWorkload) {
  // Aggregate invariant over a fixed pseudo-workload: every algorithm
  // answers the same number of lookups positively.
  std::vector<std::uint64_t> found(std::size(kSpecs), 0);
  for (std::size_t d = 0; d < std::size(kSpecs); ++d) {
    const auto demuxer = make_demuxer(*parse_demux_spec(kSpecs[d]));
    std::mt19937_64 rng(123);
    for (int step = 0; step < 5000; ++step) {
      const net::FlowKey k = key(static_cast<std::uint32_t>(rng() % 300));
      switch (rng() % 5) {
        case 0: demuxer->insert(k); break;
        case 1: demuxer->erase(k); break;
        default:
          if (demuxer->lookup(k, SegmentKind::kData).pcb != nullptr) {
            ++found[d];
          }
      }
    }
  }
  for (std::size_t d = 1; d < std::size(kSpecs); ++d) {
    EXPECT_EQ(found[d], found[0]) << kSpecs[d];
  }
}

}  // namespace
}  // namespace tcpdemux::core
