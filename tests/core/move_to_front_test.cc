#include "core/move_to_front.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

TEST(MoveToFront, LookupMovesToFront) {
  MoveToFrontDemuxer d;
  for (std::uint16_t p = 1; p <= 5; ++p) d.insert(key(p));
  EXPECT_EQ(d.lookup(key(1)).examined, 5u);  // tail
  EXPECT_EQ(d.front()->key, key(1));
  EXPECT_EQ(d.lookup(key(1)).examined, 1u);  // now at the front
}

TEST(MoveToFront, HeadHitCountsAsCacheHit) {
  MoveToFrontDemuxer d;
  d.insert(key(1));
  d.insert(key(2));
  (void)d.lookup(key(1));
  const auto r = d.lookup(key(1));
  EXPECT_TRUE(r.cache_hit);
}

TEST(MoveToFront, DeepHitIsNotCacheHit) {
  MoveToFrontDemuxer d;
  d.insert(key(1));
  d.insert(key(2));
  const auto r = d.lookup(key(1));  // position 2
  EXPECT_FALSE(r.cache_hit);
}

TEST(MoveToFront, OthersShiftBackByOne) {
  MoveToFrontDemuxer d;
  for (std::uint16_t p = 1; p <= 4; ++p) d.insert(key(p));
  // Order: 4,3,2,1. Touch 2 -> 2,4,3,1.
  (void)d.lookup(key(2));
  std::vector<std::uint16_t> order;
  d.for_each_pcb([&](const Pcb& p) { order.push_back(p.key.foreign_port); });
  EXPECT_EQ(order, (std::vector<std::uint16_t>{2, 4, 3, 1}));
}

TEST(MoveToFront, MissDoesNotReorder) {
  MoveToFrontDemuxer d;
  for (std::uint16_t p = 1; p <= 3; ++p) d.insert(key(p));
  const auto r = d.lookup(key(99));
  EXPECT_EQ(r.pcb, nullptr);
  EXPECT_EQ(r.examined, 3u);
  EXPECT_EQ(d.front()->key, key(3));
}

TEST(MoveToFront, RoundRobinDegradesToFullScan) {
  // The paper's §3.2 worst case: with deterministic rotation every lookup
  // scans the whole list.
  MoveToFrontDemuxer d;
  constexpr std::uint16_t kN = 50;
  for (std::uint16_t p = 1; p <= kN; ++p) d.insert(key(p));
  // Warm one full rotation to reach the steady-state order.
  for (std::uint16_t p = 1; p <= kN; ++p) (void)d.lookup(key(p));
  d.reset_stats();
  for (std::uint16_t p = 1; p <= kN; ++p) {
    EXPECT_EQ(d.lookup(key(p)).examined, kN);
  }
  EXPECT_DOUBLE_EQ(d.stats().mean_examined(), kN);
}

TEST(MoveToFront, RepeatedSameKeyIsAlwaysOne) {
  MoveToFrontDemuxer d;
  for (std::uint16_t p = 1; p <= 10; ++p) d.insert(key(p));
  (void)d.lookup(key(4));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(d.lookup(key(4)).examined, 1u);
  }
}

TEST(MoveToFront, EraseWorksFromAnyPosition) {
  MoveToFrontDemuxer d;
  for (std::uint16_t p = 1; p <= 3; ++p) d.insert(key(p));
  EXPECT_TRUE(d.erase(key(2)));
  EXPECT_FALSE(d.erase(key(2)));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.lookup(key(2)).pcb, nullptr);
}

TEST(MoveToFront, DuplicateInsertRejected) {
  MoveToFrontDemuxer d;
  EXPECT_NE(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr);
}

TEST(MoveToFront, WildcardLookupDoesNotReorder) {
  MoveToFrontDemuxer d;
  d.insert(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                        net::Ipv4Addr::any(), 0});
  d.insert(key(5));
  const auto r = d.lookup_wildcard(key(7));
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_TRUE(r.pcb->key.foreign_addr.is_any());
  EXPECT_EQ(d.front()->key, key(5));  // order unchanged
}

}  // namespace
}  // namespace tcpdemux::core
