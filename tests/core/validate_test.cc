// StructuralValidator tests: well-formed structures must pass, and — the
// part that keeps the validators honest — each deliberately planted
// corruption (stale cache pointer, PCB on the wrong chain, bad size
// counter, broken linkage) must be reported. A validator that cannot fail
// is untested; every negative case here also restores the structure before
// destruction so the owning demuxer still tears down cleanly under ASan.
#include "core/validate.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/bsd_list.h"
#include "core/connection_id.h"
#include "core/cuckoo_demuxer.h"
#include "core/demux_registry.h"
#include "core/dynamic_hash.h"
#include "core/flat_demuxer.h"
#include "core/hashed_mtf.h"
#include "core/move_to_front.h"
#include "core/pcb_list.h"
#include "core/rcu_demuxer.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"
#include "core/sharded_demuxer.h"
#include "net/flow_key.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(0x0a000001), 5001,
                      net::Ipv4Addr(0x0a090000 + i),
                      static_cast<std::uint16_t>(40000 + (i % 20000))};
}

template <typename D>
void populate(D& demuxer, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_NE(demuxer.insert(key(i)), nullptr);
  }
}

// --- well-formed structures pass -------------------------------------------

TEST(ValidateTest, EveryRegistrySpecValidatesCleanAfterMixedOps) {
  const char* specs[] = {"bsd",        "mtf",         "srcache",
                         "connection_id", "sequent",  "sequent:7:crc32:nocache",
                         "hashed_mtf", "dynamic:5",   "rcu",
                         "rcu:7:crc32:nocache", "flat", "flat:64:crc32",
                         "flat16", "flat16:64:crc32", "cuckoo",
                         "cuckoo:64:crc32", "cuckoo:64:siphash@5eed",
                         "sharded:4:flat16", "sharded:2:sequent:19:crc32"};
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const auto config = parse_demux_spec(spec);
    ASSERT_TRUE(config.has_value());
    const auto demuxer = make_demuxer(*config);
    for (std::uint32_t i = 0; i < 64; ++i) demuxer->insert(key(i));
    for (std::uint32_t i = 0; i < 64; i += 3) demuxer->lookup(key(i));
    for (std::uint32_t i = 0; i < 64; i += 4) demuxer->erase(key(i));
    for (std::uint32_t i = 0; i < 64; i += 5) demuxer->lookup(key(i));
    const ValidationReport report = validate_demuxer(*demuxer);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(ValidateTest, EmptyStructuresValidateClean) {
  const char* specs[] = {"bsd", "mtf", "srcache", "connection_id",
                         "sequent", "hashed_mtf", "dynamic", "rcu", "flat",
                         "flat16", "cuckoo", "sharded:4:flat16"};
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const auto demuxer = make_demuxer(*parse_demux_spec(spec));
    const ValidationReport report = validate_demuxer(*demuxer);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

// --- planted corruptions must be reported ----------------------------------

TEST(ValidateTest, BsdStaleCachePointerIsReported) {
  BsdListDemuxer demuxer;
  populate(demuxer, 8);
  Pcb foreign(key(99), 99);  // never a member of the demuxer's list
  Pcb*& cache = ValidatorTestAccess::cache(demuxer);
  Pcb* const saved = cache;
  cache = &foreign;
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  cache = saved;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, BrokenPrevLinkIsReported) {
  MoveToFrontDemuxer demuxer;
  populate(demuxer, 8);
  PcbList& list = ValidatorTestAccess::list(demuxer);
  Pcb* const second = list.head()->next;
  ASSERT_NE(second, nullptr);
  Pcb* const saved = second->prev;
  second->prev = second;  // next/prev no longer mirror each other
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  second->prev = saved;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, SrcacheForeignCachePointersAreReported) {
  SendReceiveCacheDemuxer demuxer;
  populate(demuxer, 8);
  Pcb foreign(key(99), 99);
  for (Pcb** slot : {&ValidatorTestAccess::recv_cache(demuxer),
                     &ValidatorTestAccess::send_cache(demuxer)}) {
    Pcb* const saved = *slot;
    *slot = &foreign;
    EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
    *slot = saved;
  }
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, SequentPcbOnWrongChainIsReported) {
  SequentDemuxer demuxer;
  populate(demuxer, 32);
  // Move one PCB from its home chain to the neighbouring chain. Both
  // chains stay internally consistent, so only the hash-placement check
  // can catch it.
  std::uint32_t from = 0;
  while (ValidatorTestAccess::chain(demuxer, from).empty()) ++from;
  const std::uint32_t to = (from + 1) % demuxer.chains();
  Pcb* const moved = ValidatorTestAccess::chain(demuxer, from).extract_front();
  ASSERT_NE(moved, nullptr);
  ValidatorTestAccess::chain(demuxer, to).adopt_front(moved);
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("hashes to chain"), std::string::npos)
      << report.to_string();
  Pcb* const back = ValidatorTestAccess::chain(demuxer, to).extract_front();
  ASSERT_EQ(back, moved);
  ValidatorTestAccess::chain(demuxer, from).adopt_front(back);
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, SequentBadSizeCounterIsReported) {
  SequentDemuxer demuxer;
  populate(demuxer, 16);
  std::size_t& size = ValidatorTestAccess::size(demuxer);
  ++size;
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  --size;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, SequentForeignChainCacheIsReported) {
  SequentDemuxer demuxer;
  populate(demuxer, 32);
  std::uint32_t from = 0;
  while (ValidatorTestAccess::chain(demuxer, from).empty()) ++from;
  const std::uint32_t to = (from + 1) % demuxer.chains();
  Pcb*& cache = ValidatorTestAccess::cache(demuxer, to);
  Pcb* const saved = cache;
  cache = ValidatorTestAccess::chain(demuxer, from).head();
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  cache = saved;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, NocacheSequentWithInstalledCacheIsReported) {
  SequentDemuxer demuxer(
      SequentDemuxer::Options{19, net::HasherKind::kXorFold, false});
  populate(demuxer, 8);
  std::uint32_t c = 0;
  while (ValidatorTestAccess::chain(demuxer, c).empty()) ++c;
  Pcb*& cache = ValidatorTestAccess::cache(demuxer, c);
  cache = ValidatorTestAccess::chain(demuxer, c).head();
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  cache = nullptr;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, HashedMtfBadSizeCounterIsReported) {
  HashedMtfDemuxer demuxer;
  populate(demuxer, 16);
  std::size_t& size = ValidatorTestAccess::size(demuxer);
  --size;
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  ++size;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, DynamicPcbOnWrongChainIsReported) {
  DynamicHashDemuxer demuxer(
      DynamicHashDemuxer::Options{5, 2.0, net::HasherKind::kCrc32, true});
  populate(demuxer, 40);  // forces at least one rehash from 5 chains
  ASSERT_GE(demuxer.rehash_count(), 1u);
  std::uint32_t from = 0;
  while (ValidatorTestAccess::chain(demuxer, from).empty()) ++from;
  const std::uint32_t to = (from + 1) % demuxer.chains();
  Pcb* const moved = ValidatorTestAccess::chain(demuxer, from).extract_front();
  ASSERT_NE(moved, nullptr);
  ValidatorTestAccess::chain(demuxer, to).adopt_front(moved);
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  Pcb* const back = ValidatorTestAccess::chain(demuxer, to).extract_front();
  ASSERT_EQ(back, moved);
  ValidatorTestAccess::chain(demuxer, from).adopt_front(back);
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, ConnectionIdKeySlotMismatchIsReported) {
  ConnectionIdDemuxer demuxer(64);
  Pcb* const a = demuxer.insert(key(1));
  Pcb* const b = demuxer.insert(key(2));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Rebind a's key to b's slot: the table now maps a's key to a slot whose
  // PCB carries a different key.
  ValidatorTestAccess::rebind_id(demuxer, *a,
                                 static_cast<std::uint32_t>(b->conn_id));
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  ValidatorTestAccess::rebind_id(demuxer, *a,
                                 static_cast<std::uint32_t>(a->conn_id));
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, ConnectionIdFreeListOverOccupiedSlotIsReported) {
  ConnectionIdDemuxer demuxer(64);
  Pcb* const a = demuxer.insert(key(1));
  ASSERT_NE(a, nullptr);
  ValidatorTestAccess::push_free_id(demuxer,
                                    static_cast<std::uint32_t>(a->conn_id));
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  ValidatorTestAccess::pop_free_id(demuxer);
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, RcuNodeOnWrongChainIsReported) {
  RcuSequentDemuxer demuxer;
  for (std::uint32_t i = 0; i < 32; ++i) demuxer.insert(key(i));
  std::uint32_t from = 0;
  while (!ValidatorTestAccess::rcu_move_head(demuxer, from,
                                             (from + 1) % demuxer.chains())) {
    ++from;
  }
  const std::uint32_t to = (from + 1) % demuxer.chains();
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  ASSERT_TRUE(ValidatorTestAccess::rcu_move_head(demuxer, to, from));
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, RcuForeignCacheIsReported) {
  RcuSequentDemuxer demuxer;
  for (std::uint32_t i = 0; i < 32; ++i) demuxer.insert(key(i));
  std::uint32_t other = 0;
  std::uint32_t chain = 1;
  while (!ValidatorTestAccess::rcu_cache_foreign_head(
      demuxer, chain = (other + 1) % demuxer.chains(), other)) {
    ++other;
  }
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("not on the chain"), std::string::npos)
      << report.to_string();
  ValidatorTestAccess::rcu_clear_cache(demuxer, chain);
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, RcuRetiredButReachableNodeIsReported) {
  RcuSequentDemuxer demuxer;
  for (std::uint32_t i = 0; i < 8; ++i) demuxer.insert(key(i));
  std::uint32_t chain = 0;
  while (!ValidatorTestAccess::rcu_toggle_head_retired(demuxer, chain)) {
    ++chain;
  }
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("retired"), std::string::npos);
  ASSERT_TRUE(ValidatorTestAccess::rcu_toggle_head_retired(demuxer, chain));
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, RcuBadSizeCounterIsReported) {
  RcuSequentDemuxer demuxer;
  for (std::uint32_t i = 0; i < 8; ++i) demuxer.insert(key(i));
  ValidatorTestAccess::rcu_adjust_size(demuxer, +1);
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  ValidatorTestAccess::rcu_adjust_size(demuxer, -1);
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, FlatCorruptTagByteIsReported) {
  FlatDemuxer demuxer(FlatDemuxer::Options{64});
  populate(demuxer, 32);
  // Flip one fingerprint bit on an occupied slot: the slot stays occupied
  // (bit 7 intact) but the tag no longer matches the stored hash, so a
  // probe would skip a live connection.
  auto& tags = ValidatorTestAccess::flat_tags(demuxer);
  std::size_t slot = 0;
  while (tags[slot] == 0) ++slot;
  tags[slot] ^= 0x40;
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("tag"), std::string::npos)
      << report.to_string();
  tags[slot] ^= 0x40;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, FlatBadSizeCounterIsReported) {
  FlatDemuxer demuxer(FlatDemuxer::Options{64});
  populate(demuxer, 16);
  std::size_t& size = ValidatorTestAccess::flat_size(demuxer);
  ++size;
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  --size;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, FlatDisplacedSlotBreaksProbeInvariant) {
  FlatDemuxer demuxer(FlatDemuxer::Options{64});
  populate(demuxer, 24);
  // Move one resident to a distant empty slot. Tag, key, and hash all stay
  // mutually consistent, so only the robin-hood probe-distance invariant
  // (every slot reachable from its home via an unbroken occupied run) can
  // catch the displacement — exactly the corruption backward-shift
  // deletion would cause if it stopped shifting one slot too early.
  const auto& tags = ValidatorTestAccess::flat_tags(demuxer);
  std::size_t from = 0;
  while (tags[from] == 0) ++from;
  // Try empty destination slots until one actually breaks the invariant (a
  // destination that happens to be the key's own home slot would be legal).
  bool planted = false;
  std::size_t to = 0;
  for (; to < tags.size(); ++to) {
    if (tags[to] != 0 || to == from) continue;
    ValidatorTestAccess::flat_move_slot(demuxer, from, to);
    if (!StructuralValidator::validate(demuxer).ok()) {
      planted = true;
      break;
    }
    ValidatorTestAccess::flat_move_slot(demuxer, to, from);
  }
  ASSERT_TRUE(planted) << "no empty slot broke the probe invariant";
  ValidatorTestAccess::flat_move_slot(demuxer, to, from);
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, CuckooCorruptTagByteIsReported) {
  CuckooDemuxer demuxer(CuckooDemuxer::Options{64});
  populate(demuxer, 32);
  // Flip a fingerprint bit above the filter nibble: the slot stays
  // occupied and the presence filter stays consistent, so only the
  // tag-vs-hash recomputation can notice the lookup path would now skip
  // this live connection.
  std::size_t slot = 0;
  while (ValidatorTestAccess::cuckoo_tag(demuxer, slot) == 0) ++slot;
  ValidatorTestAccess::cuckoo_tag(demuxer, slot) ^= 0x40;
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("tag"), std::string::npos)
      << report.to_string();
  ValidatorTestAccess::cuckoo_tag(demuxer, slot) ^= 0x40;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, CuckooBadSizeCounterIsReported) {
  CuckooDemuxer demuxer(CuckooDemuxer::Options{64});
  populate(demuxer, 16);
  std::size_t& size = ValidatorTestAccess::cuckoo_size(demuxer);
  ++size;
  EXPECT_FALSE(StructuralValidator::validate(demuxer).ok());
  --size;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, CuckooStaleFilterBitIsReported) {
  // A spurious presence-filter bit never makes a lookup wrong, only slow —
  // which is exactly why it would survive every behavioral test and must
  // be caught structurally, by recomputing the filter from the residents.
  CuckooDemuxer demuxer(CuckooDemuxer::Options{64});
  populate(demuxer, 16);
  std::uint16_t& filter = ValidatorTestAccess::cuckoo_filter(demuxer, 0);
  filter ^= 1;
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("filter"), std::string::npos)
      << report.to_string();
  filter ^= 1;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, CuckooResidentOutsideItsTwoBucketsIsReported) {
  CuckooDemuxer demuxer(CuckooDemuxer::Options{64});
  populate(demuxer, 24);
  // Move one resident to a distant empty slot, raw (tag/hash/key stay
  // mutually consistent). Only the two-bucket placement invariant — the
  // property that bounds every lookup at two buckets — can catch it.
  std::size_t from = 0;
  while (ValidatorTestAccess::cuckoo_tag(demuxer, from) == 0) ++from;
  bool planted = false;
  std::size_t to = 0;
  for (; to < demuxer.capacity(); ++to) {
    if (ValidatorTestAccess::cuckoo_tag(demuxer, to) != 0 || to == from) {
      continue;
    }
    ValidatorTestAccess::cuckoo_move_slot(demuxer, from, to);
    if (!StructuralValidator::validate(demuxer).ok()) {
      planted = true;
      break;
    }
    ValidatorTestAccess::cuckoo_move_slot(demuxer, to, from);
  }
  ASSERT_TRUE(planted) << "no empty slot broke the two-bucket invariant";
  ValidatorTestAccess::cuckoo_move_slot(demuxer, to, from);
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, ShardedDuplicateKeyAcrossShardsIsReported) {
  ShardedDemuxer demuxer(
      ShardedDemuxer::Options{4, *parse_demux_spec("flat16:64")});
  populate(demuxer, 24);
  // Plant the cross-shard corruption no single shard can see: a key that
  // is resident on two shards at once. Each shard stays internally
  // consistent, so only the aggregate no-duplicate-key sweep catches it.
  const net::FlowKey dup = key(0);
  const std::uint32_t home = demuxer.home_shard(dup);
  const std::uint32_t other = (home + 1) % demuxer.shard_count();
  ASSERT_NE(demuxer.shard(other).insert(dup), nullptr);
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("more than one shard"), std::string::npos)
      << report.to_string();
  ASSERT_TRUE(demuxer.shard(other).erase(dup));
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, ShardedResidentOffItsHomeShardIsReported) {
  ShardedDemuxer demuxer(
      ShardedDemuxer::Options{4, *parse_demux_spec("sequent:19:crc32")});
  populate(demuxer, 24);
  // A PCB on a shard its steering hash does not select is a placement bug
  // while steering is stable (misplaced_possible() == false).
  const net::FlowKey stray = key(1000);
  const std::uint32_t home = demuxer.home_shard(stray);
  const std::uint32_t wrong = (home + 1) % demuxer.shard_count();
  ASSERT_NE(demuxer.shard(wrong).insert(stray), nullptr);
  ASSERT_FALSE(demuxer.misplaced_possible());
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(demuxer.shard(wrong).erase(stray));
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, ShardedInnerCorruptionSurfacesWithShardPrefix) {
  ShardedDemuxer demuxer(
      ShardedDemuxer::Options{2, *parse_demux_spec("sequent:19:crc32")});
  populate(demuxer, 32);
  // Per-shard recursion: corrupt one inner structure and expect the
  // aggregate report to name the shard.
  auto& inner = static_cast<SequentDemuxer&>(demuxer.shard(0));
  std::size_t& size = ValidatorTestAccess::size(inner);
  ++size;
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("shard 0"), std::string::npos)
      << report.to_string();
  --size;
  EXPECT_TRUE(StructuralValidator::validate(demuxer).ok());
}

TEST(ValidateTest, ReportJoinsAllErrors) {
  SequentDemuxer demuxer;
  populate(demuxer, 16);
  std::size_t& size = ValidatorTestAccess::size(demuxer);
  size += 2;
  Pcb foreign(key(99), 99);
  std::uint32_t c = 0;
  while (ValidatorTestAccess::chain(demuxer, c).empty()) ++c;
  Pcb*& cache = ValidatorTestAccess::cache(demuxer, c);
  Pcb* const saved = cache;
  cache = &foreign;
  const ValidationReport report = StructuralValidator::validate(demuxer);
  EXPECT_GE(report.errors.size(), 2u);
  EXPECT_NE(report.to_string().find('\n'), std::string::npos);
  cache = saved;
  size -= 2;
}

}  // namespace
}  // namespace tcpdemux::core
