// Invariant-validated differential fuzzing for every registry-listed
// demuxer.
//
// Drives long randomized insert/lookup/erase/lookup_wildcard/lookup_batch
// sequences through each algorithm against a
// naive reference map, asserting exact behavioural parity on every
// operation and running the StructuralValidator after every mutation —
// the whole point is that a dangling per-chain cache pointer or a
// miscounted chain is caught on the operation that plants it, not 50k
// operations later when a lookup finally trips over it.
//
// Two key regimes run the same op mix:
//   * random pool — benign traffic (the original suite);
//   * adversarial pool — mostly closed-form xor_fold full-hash collisions
//     (sim::craft_xorfold_collisions), so chained tables fuzz with one
//     giant chain and the flat table with one saturated probe run, and the
//     keyed/rehash configurations fuzz across their defense machinery.
//
// Budget: TCPDEMUX_FUZZ_OPS operations per spec (default 100000, the
// ci/check.sh acceptance floor). TCPDEMUX_FUZZ_SEED reseeds the whole run
// for soak testing; failures print the seed so any run is reproducible.
// TCPDEMUX_FUZZ_ALLOC_EVERY=N (default 0 = off) arms the allocation-
// failure injector to refuse every N-th insert-path allocation, proving
// recovery from memory pressure mid-sequence never corrupts a structure.
// TCPDEMUX_FUZZ_RESIZE_EVERY=N (default 0 = off) forces an explicit
// incremental-migration step (Demuxer::migration_step) every N ops and
// validates immediately after, so the two-table invariants (drained
// prefix, residents reconciliation, cross-table uniqueness) are exercised
// at every drain phase the "incremental" specs can reach — combine with
// ALLOC_EVERY to fuzz the degradation ladder mid-migration.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/demux_registry.h"
#include "core/demuxer.h"
#include "core/fault_inject.h"
#include "core/validate.h"
#include "net/flow_key.h"
#include "sim/collision_flood.h"

namespace tcpdemux::core {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// A pool of distinct fully-specified keys. Ops pick keys from the pool so
// the live set stays bounded and inserts collide with existing keys often
// enough to exercise the duplicate-insert path.
std::vector<net::FlowKey> make_key_pool(std::size_t n, std::mt19937& rng) {
  std::unordered_set<net::FlowKey> seen;
  std::vector<net::FlowKey> pool;
  pool.reserve(n);
  std::uniform_int_distribution<std::uint32_t> addr(1, 0xfffffffe);
  std::uniform_int_distribution<std::uint32_t> port(1, 0xffff);
  while (pool.size() < n) {
    const net::FlowKey k{net::Ipv4Addr(addr(rng)),
                         static_cast<std::uint16_t>(port(rng)),
                         net::Ipv4Addr(addr(rng)),
                         static_cast<std::uint16_t>(port(rng))};
    if (seen.insert(k).second) pool.push_back(k);
  }
  return pool;
}

// 160 full-hash xor_fold collisions + 32 random keys: collided enough to
// degenerate every unkeyed structure, mixed enough that erase/lookup still
// cross chains.
std::vector<net::FlowKey> make_adversarial_pool(std::mt19937& rng) {
  sim::CollisionFloodParams params;
  params.count = 160;
  auto pool = sim::craft_xorfold_collisions(params, 0x600dcafe);
  for (const net::FlowKey& k : make_key_pool(32, rng)) pool.push_back(k);
  return pool;
}

void run_fuzz_ops(const std::string& spec,
                  const std::vector<net::FlowKey>& pool) {
  const std::uint64_t ops = env_u64("TCPDEMUX_FUZZ_OPS", 100000);
  const std::uint64_t seed =
      env_u64("TCPDEMUX_FUZZ_SEED", 0x5ca1ab1e) ^
      std::hash<std::string>{}(spec);
  const std::uint64_t alloc_every = env_u64("TCPDEMUX_FUZZ_ALLOC_EVERY", 0);
  const std::uint64_t resize_every =
      env_u64("TCPDEMUX_FUZZ_RESIZE_EVERY", 0);
  SCOPED_TRACE("spec=" + spec + " ops=" + std::to_string(ops) +
               " seed=" + std::to_string(seed) +
               " alloc_every=" + std::to_string(alloc_every) +
               " resize_every=" + std::to_string(resize_every));

  const auto config = parse_demux_spec(spec);
  ASSERT_TRUE(config.has_value()) << spec;
  const auto demuxer = make_demuxer(*config);
  ASSERT_NE(demuxer, nullptr);
  // Histograms on for the whole run: the end-of-run differential check
  // demands the telemetry path agrees bit-exactly with DemuxStats.
  demuxer->enable_telemetry_histograms(true);

  auto& injector = FaultInjector::instance();
  injector.reset();
  if (alloc_every != 0) injector.arm_every(alloc_every);

  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  std::unordered_set<net::FlowKey> reference;

  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::uniform_int_distribution<int> dice(0, 99);

  // Returns "" when every structural invariant holds, so ASSERT_EQ gives
  // readable failure output (and actually aborts the test — ASSERT inside
  // a lambda would only return from the lambda).
  const auto invariant_errors = [&] {
    return validate_demuxer(*demuxer).to_string();
  };

  std::uint64_t lookups_since_validate = 0;
  for (std::uint64_t op = 0; op < ops; ++op) {
    if (resize_every != 0 && op % resize_every == 0) {
      // Forced drain step: a mutation of the two-table state even when no
      // regular op would touch it, validated on the spot so a cursor that
      // skipped an occupied slot fails at the step that skipped it.
      demuxer->migration_step();
      ASSERT_EQ(invariant_errors(), "")
          << "after forced migration step at op " << op;
    }
    const net::FlowKey& k = pool[pick(rng)];
    const bool expected = reference.contains(k);
    const int roll = dice(rng);
    if (roll < 45) {
      // lookup: found-ness, identity, and sane accounting must agree.
      const SegmentKind kind =
          (roll % 2 == 0) ? SegmentKind::kData : SegmentKind::kAck;
      const LookupResult r = demuxer->lookup(k, kind);
      ASSERT_EQ(r.pcb != nullptr, expected) << "op " << op;
      if (r.pcb != nullptr) {
        ASSERT_EQ(r.pcb->key, k);
        ASSERT_GE(r.examined, 1u);
        if (dice(rng) < 10) demuxer->note_sent(r.pcb);
      }
      // Lookups mutate caches and MTF order; validate on a sample so the
      // fuzz budget goes into operations, not only re-walks.
      if (++lookups_since_validate >= 64) {
        lookups_since_validate = 0;
        ASSERT_EQ(invariant_errors(), "") << "after lookup op " << op;
      }
    } else if (roll < 50) {
      // Exact-key wildcard lookup: a fully-specified stored key must be
      // found exactly; absence must not conjure a match (the pool holds no
      // wildcard PCBs).
      const LookupResult r = demuxer->lookup_wildcard(k);
      ASSERT_EQ(r.pcb != nullptr, expected) << "op " << op;
      if (r.pcb != nullptr) {
        ASSERT_EQ(r.pcb->key, k);
      }
    } else if (roll < 75) {
      // An insert can fail three ways: duplicate (expected), injected
      // allocation failure, or (not configured here) a max_pcbs shed. The
      // injector delta disambiguates; either way a refusal must leave the
      // reference state untouched.
      const std::uint64_t injected_before = injector.injected();
      Pcb* const pcb = demuxer->insert(k);
      if (injector.injected() != injected_before) {
        ASSERT_EQ(pcb, nullptr) << "op " << op;
        ASSERT_FALSE(expected) << "op " << op;  // duplicates never allocate
      } else {
        ASSERT_EQ(pcb == nullptr, expected) << "op " << op;
      }
      if (pcb != nullptr) {
        ASSERT_EQ(pcb->key, k);
        reference.insert(k);
      }
      ASSERT_EQ(invariant_errors(), "") << "after insert op " << op;
    } else if (roll < 95) {
      ASSERT_EQ(demuxer->erase(k), expected) << "op " << op;
      reference.erase(k);
      ASSERT_EQ(invariant_errors(), "") << "after erase op " << op;
    } else {
      // Batch lookup through whatever pipeline the algorithm provides
      // (default loop, flat/sequent prefetch pipelines, RCU fast path):
      // results must agree with the reference entry-by-entry.
      std::vector<net::FlowKey> keys(8);
      std::vector<LookupResult> results(keys.size());
      for (auto& bk : keys) bk = pool[pick(rng)];
      demuxer->lookup_batch(keys, results);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(results[i].pcb != nullptr, reference.contains(keys[i]))
            << "op " << op << " batch index " << i;
        if (results[i].pcb != nullptr) {
          ASSERT_EQ(results[i].pcb->key, keys[i]);
        }
      }
      if (++lookups_since_validate >= 64) {
        lookups_since_validate = 0;
        ASSERT_EQ(invariant_errors(), "") << "after batch op " << op;
      }
    }
    ASSERT_EQ(demuxer->size(), reference.size()) << "op " << op;
  }
  injector.reset();

  // Full sweep at the end: every reference key present, every absent pool
  // key absent, structure still well-formed.
  ASSERT_EQ(invariant_errors(), "") << "after final op";
  for (const net::FlowKey& k : pool) {
    const LookupResult r = demuxer->lookup(k);
    ASSERT_EQ(r.pcb != nullptr, reference.contains(k));
  }
  std::size_t counted = 0;
  demuxer->for_each_pcb([&](const Pcb& pcb) {
    ++counted;
    EXPECT_TRUE(reference.contains(pcb.key));
  });
  EXPECT_EQ(counted, reference.size());

  // Telemetry differential: the registry is a second accounting path fed
  // by the same note_lookup funnel as DemuxStats, so after any op sequence
  // the two must agree exactly — the histogram-summed examined count
  // bit-equal to pcbs_examined, every lookup in exactly one bucket, and
  // the insert/erase ledger equal to the live PCB count.
  const DemuxStats& stats = demuxer->stats();
  const report::Telemetry& telemetry = demuxer->telemetry();
  EXPECT_EQ(telemetry.counters().lookups, stats.lookups);
  EXPECT_EQ(telemetry.counters().found, stats.found);
  EXPECT_EQ(telemetry.counters().cache_hits, stats.cache_hits);
  EXPECT_EQ(telemetry.examined().count(), stats.lookups);
  EXPECT_EQ(telemetry.examined().sum(), stats.pcbs_examined);
  EXPECT_EQ(telemetry.counters().inserts - telemetry.counters().erases,
            demuxer->size());
  std::size_t occupancy_total = 0;
  for (const std::size_t o : demuxer->occupancy()) occupancy_total += o;
  EXPECT_EQ(occupancy_total, demuxer->size());
}

// The injector is process-wide; leave it disarmed even when an ASSERT
// aborted run_fuzz_ops mid-flight.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::instance().reset(); }
};

class FuzzOpsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzOpsTest, RandomOpsMatchReferenceAndPreserveInvariants) {
  InjectorGuard guard;
  const std::string spec = GetParam();
  std::mt19937 pool_rng(0xb00);
  run_fuzz_ops(spec, make_key_pool(192, pool_rng));
}

class FuzzAdversarialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzAdversarialTest, CollidedOpsMatchReferenceAndPreserveInvariants) {
  InjectorGuard guard;
  const std::string spec = GetParam();
  std::mt19937 pool_rng(0xbad);
  run_fuzz_ops(spec, make_adversarial_pool(pool_rng));
}

std::string sanitize_spec_name(const char* spec) {
  std::string name = spec;
  for (char& c : name) {
    if (c == ':' || c == '@' || c == '=') c = '_';
  }
  return name;
}

// Every algorithm the registry can produce, plus the option corners that
// change structure shape (nocache, tiny chain counts that force dynamic
// rehashes, a second hasher).
INSTANTIATE_TEST_SUITE_P(
    AllDemuxers, FuzzOpsTest,
    ::testing::Values("bsd", "mtf", "srcache", "connection_id:256", "sequent",
                      "sequent:7:crc32:nocache", "hashed_mtf:19",
                      "dynamic:5:crc32", "rcu",
                      "rcu:7:crc32:nocache", "flat",
                      "flat:64:crc32", "flat16", "flat16:64:crc32",
                      "cuckoo", "cuckoo:64:crc32",
                      // Bounded-pause incremental resize: the fuzz op mix
                      // drives growth through the two-table drain (see
                      // TCPDEMUX_FUZZ_RESIZE_EVERY for forcing extra
                      // steps); every growing backend runs it.
                      "dynamic:5:crc32:incremental", "flat:64:incremental",
                      "flat16:64:incremental",
                      "cuckoo:64:crc32c:incremental",
                      // Sharded fleet: per-shard structures, the cross-shard
                      // no-duplicate-key invariant, and the merged telemetry
                      // ledger must all stay bit-exact under the op mix.
                      "sharded:4:flat16", "sharded:2:sequent:19:crc32",
                      "sharded:3:dynamic:5:crc32:incremental"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return sanitize_spec_name(info.param);
    });

// The unkeyed specs fuzz fully degenerate (one chain / one probe run);
// the keyed and rehash specs fuzz the defense machinery: seed rotation
// mid-sequence must stay differential-exact and validator-clean.
INSTANTIATE_TEST_SUITE_P(
    AdversarialKeys, FuzzAdversarialTest,
    ::testing::Values("bsd", "sequent", "sequent:19:xor_fold",
                      "sequent:19:xor_fold:rehash",
                      "sequent:19:siphash@5eed", "hashed_mtf:19",
                      "dynamic:5:xor_fold", "rcu:19:xor_fold",
                      "flat:64:xor_fold", "flat:64:xor_fold:rehash",
                      "flat:64:siphash@5eed", "flat16:64:xor_fold",
                      "flat16:64:xor_fold:rehash", "flat16:64:siphash@5eed",
                      // Cuckoo only under hashes the adversarial pool can't
                      // fully collapse: >8 keys sharing one full hash share
                      // both buckets and shed by design (see the bucket-flood
                      // tests), which would break the fuzz membership model.
                      "cuckoo:64:siphash@5eed", "cuckoo:64:crc32c:rehash",
                      // Incremental resize under the collided pool: the
                      // drain must cope with one saturated probe run /
                      // one giant chain spanning both tables.
                      "dynamic:5:xor_fold:incremental",
                      "flat:64:xor_fold:incremental",
                      "flat16:64:xor_fold:rehash:incremental",
                      "cuckoo:64:siphash@5eed:incremental",
                      // Sharded under the collided pool: Toeplitz steering
                      // keeps spreading keys whose inner hash collapses.
                      "sharded:4:flat:64:xor_fold",
                      "sharded:2:sequent:19:siphash@5eed"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return sanitize_spec_name(info.param);
    });

}  // namespace
}  // namespace tcpdemux::core
