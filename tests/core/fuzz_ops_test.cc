// Invariant-validated differential fuzzing for every registry-listed
// demuxer.
//
// Drives long randomized insert/lookup/erase/lookup_wildcard/lookup_batch
// sequences through each algorithm against a
// naive reference map, asserting exact behavioural parity on every
// operation and running the StructuralValidator after every mutation —
// the whole point is that a dangling per-chain cache pointer or a
// miscounted chain is caught on the operation that plants it, not 50k
// operations later when a lookup finally trips over it.
//
// Budget: TCPDEMUX_FUZZ_OPS operations per spec (default 100000, the
// ci/check.sh acceptance floor). TCPDEMUX_FUZZ_SEED reseeds the whole run
// for soak testing; failures print the seed so any run is reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/demux_registry.h"
#include "core/demuxer.h"
#include "core/validate.h"
#include "net/flow_key.h"

namespace tcpdemux::core {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// A pool of distinct fully-specified keys. Ops pick keys from the pool so
// the live set stays bounded and inserts collide with existing keys often
// enough to exercise the duplicate-insert path.
std::vector<net::FlowKey> make_key_pool(std::size_t n, std::mt19937& rng) {
  std::unordered_set<net::FlowKey> seen;
  std::vector<net::FlowKey> pool;
  pool.reserve(n);
  std::uniform_int_distribution<std::uint32_t> addr(1, 0xfffffffe);
  std::uniform_int_distribution<std::uint32_t> port(1, 0xffff);
  while (pool.size() < n) {
    const net::FlowKey k{net::Ipv4Addr(addr(rng)),
                         static_cast<std::uint16_t>(port(rng)),
                         net::Ipv4Addr(addr(rng)),
                         static_cast<std::uint16_t>(port(rng))};
    if (seen.insert(k).second) pool.push_back(k);
  }
  return pool;
}

class FuzzOpsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzOpsTest, RandomOpsMatchReferenceAndPreserveInvariants) {
  const std::string spec = GetParam();
  const std::uint64_t ops = env_u64("TCPDEMUX_FUZZ_OPS", 100000);
  const std::uint64_t seed =
      env_u64("TCPDEMUX_FUZZ_SEED", 0x5ca1ab1e) ^
      std::hash<std::string>{}(spec);
  SCOPED_TRACE("spec=" + spec + " ops=" + std::to_string(ops) +
               " seed=" + std::to_string(seed));

  const auto config = parse_demux_spec(spec);
  ASSERT_TRUE(config.has_value()) << spec;
  const auto demuxer = make_demuxer(*config);
  ASSERT_NE(demuxer, nullptr);

  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  const auto pool = make_key_pool(192, rng);
  std::unordered_set<net::FlowKey> reference;

  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::uniform_int_distribution<int> dice(0, 99);

  // Returns "" when every structural invariant holds, so ASSERT_EQ gives
  // readable failure output (and actually aborts the test — ASSERT inside
  // a lambda would only return from the lambda).
  const auto invariant_errors = [&] {
    return validate_demuxer(*demuxer).to_string();
  };

  std::uint64_t lookups_since_validate = 0;
  for (std::uint64_t op = 0; op < ops; ++op) {
    const net::FlowKey& k = pool[pick(rng)];
    const bool expected = reference.contains(k);
    const int roll = dice(rng);
    if (roll < 45) {
      // lookup: found-ness, identity, and sane accounting must agree.
      const SegmentKind kind =
          (roll % 2 == 0) ? SegmentKind::kData : SegmentKind::kAck;
      const LookupResult r = demuxer->lookup(k, kind);
      ASSERT_EQ(r.pcb != nullptr, expected) << "op " << op;
      if (r.pcb != nullptr) {
        ASSERT_EQ(r.pcb->key, k);
        ASSERT_GE(r.examined, 1u);
        if (dice(rng) < 10) demuxer->note_sent(r.pcb);
      }
      // Lookups mutate caches and MTF order; validate on a sample so the
      // fuzz budget goes into operations, not only re-walks.
      if (++lookups_since_validate >= 64) {
        lookups_since_validate = 0;
        ASSERT_EQ(invariant_errors(), "") << "after lookup op " << op;
      }
    } else if (roll < 50) {
      // Exact-key wildcard lookup: a fully-specified stored key must be
      // found exactly; absence must not conjure a match (the pool holds no
      // wildcard PCBs).
      const LookupResult r = demuxer->lookup_wildcard(k);
      ASSERT_EQ(r.pcb != nullptr, expected) << "op " << op;
      if (r.pcb != nullptr) {
        ASSERT_EQ(r.pcb->key, k);
      }
    } else if (roll < 75) {
      Pcb* const pcb = demuxer->insert(k);
      ASSERT_EQ(pcb == nullptr, expected) << "op " << op;
      if (pcb != nullptr) {
        ASSERT_EQ(pcb->key, k);
        reference.insert(k);
      }
      ASSERT_EQ(invariant_errors(), "") << "after insert op " << op;
    } else if (roll < 95) {
      ASSERT_EQ(demuxer->erase(k), expected) << "op " << op;
      reference.erase(k);
      ASSERT_EQ(invariant_errors(), "") << "after erase op " << op;
    } else {
      // Batch lookup through whatever pipeline the algorithm provides
      // (default loop, flat/sequent prefetch pipelines, RCU fast path):
      // results must agree with the reference entry-by-entry.
      std::vector<net::FlowKey> keys(8);
      std::vector<LookupResult> results(keys.size());
      for (auto& bk : keys) bk = pool[pick(rng)];
      demuxer->lookup_batch(keys, results);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_EQ(results[i].pcb != nullptr, reference.contains(keys[i]))
            << "op " << op << " batch index " << i;
        if (results[i].pcb != nullptr) {
          ASSERT_EQ(results[i].pcb->key, keys[i]);
        }
      }
      if (++lookups_since_validate >= 64) {
        lookups_since_validate = 0;
        ASSERT_EQ(invariant_errors(), "") << "after batch op " << op;
      }
    }
    ASSERT_EQ(demuxer->size(), reference.size()) << "op " << op;
  }

  // Full sweep at the end: every reference key present, every absent pool
  // key absent, structure still well-formed.
  ASSERT_EQ(invariant_errors(), "") << "after final op";
  for (const net::FlowKey& k : pool) {
    const LookupResult r = demuxer->lookup(k);
    ASSERT_EQ(r.pcb != nullptr, reference.contains(k));
  }
  std::size_t counted = 0;
  demuxer->for_each_pcb([&](const Pcb& pcb) {
    ++counted;
    EXPECT_TRUE(reference.contains(pcb.key));
  });
  EXPECT_EQ(counted, reference.size());
}

// Every algorithm the registry can produce, plus the option corners that
// change structure shape (nocache, tiny chain counts that force dynamic
// rehashes, a second hasher).
INSTANTIATE_TEST_SUITE_P(
    AllDemuxers, FuzzOpsTest,
    ::testing::Values("bsd", "mtf", "srcache", "connection_id:256", "sequent",
                      "sequent:7:crc32:nocache", "hashed_mtf:19",
                      "dynamic:5:crc32", "rcu",
                      "rcu:7:crc32:nocache", "flat",
                      "flat:64:crc32"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tcpdemux::core
