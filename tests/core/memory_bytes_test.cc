// memory_bytes(): the §3.4 cost side of the trade — "the memory required
// for the hash-chain headers".
#include <gtest/gtest.h>

#include "core/demux_registry.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2),
                      static_cast<std::uint16_t>(1024 + i)};
}

TEST(MemoryBytes, GrowsWithPcbCount) {
  for (const char* spec : {"bsd", "mtf", "srcache", "sequent", "hashed_mtf",
                           "dynamic", "connection_id", "rcu", "flat",
                           "flat16", "cuckoo", "sharded:4:flat16"}) {
    const auto d = make_demuxer(*parse_demux_spec(spec));
    const std::size_t empty = d->memory_bytes();
    for (std::uint32_t i = 0; i < 100; ++i) d->insert(key(i));
    const std::size_t loaded = d->memory_bytes();
    EXPECT_GE(loaded, empty + 100 * sizeof(Pcb)) << spec;
  }
}

TEST(MemoryBytes, MoreChainsCostMoreHeaders) {
  const auto small = make_demuxer(*parse_demux_spec("sequent:19"));
  const auto large = make_demuxer(*parse_demux_spec("sequent:1021"));
  EXPECT_GT(large->memory_bytes(), small->memory_bytes());
  // ...but the increment is header-sized, not PCB-sized: going from 19 to
  // 1021 chains costs far less than 1002 PCBs would.
  EXPECT_LT(large->memory_bytes() - small->memory_bytes(),
            1002 * sizeof(Pcb));
}

TEST(MemoryBytes, ConnectionIdPaysForItsSlotArray) {
  DemuxConfig config;
  config.algorithm = Algorithm::kConnectionId;
  config.id_capacity = 65536;
  const auto d = make_demuxer(config);
  // 64 Ki pointer slots + 64 Ki free ids: the ID space is pre-paid.
  EXPECT_GT(d->memory_bytes(), 65536u * sizeof(void*));
}

TEST(MemoryBytes, PcbIsRealisticallyLarge) {
  // The paper's premise: PCBs are big enough that thousands of them blow
  // out on-chip caches. Keep ours honest (a classic inpcb+tcpcb pair runs
  // a few hundred bytes).
  EXPECT_GE(sizeof(Pcb), 100u);
}

}  // namespace
}  // namespace tcpdemux::core
