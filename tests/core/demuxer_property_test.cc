// Property tests that every demultiplexing algorithm must satisfy,
// parameterized over all registry configurations: randomized
// insert/erase/lookup sequences are checked against a reference model
// (std::unordered_map) and the accounting invariants of the Demuxer
// contract.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <unordered_map>

#include "core/demux_registry.h"
#include "core/demuxer.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(20000 + (i % 1000))};
}

class DemuxerProperty : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Demuxer> make() const {
    const auto config = parse_demux_spec(GetParam());
    EXPECT_TRUE(config.has_value());
    return make_demuxer(*config);
  }
};

TEST_P(DemuxerProperty, RandomOpsAgreeWithReferenceModel) {
  auto d = make();
  std::unordered_map<net::FlowKey, bool> reference;
  std::mt19937_64 rng(2026);
  std::uint64_t examined_sum = 0;
  std::uint64_t lookups = 0;

  for (int step = 0; step < 4000; ++step) {
    const std::uint32_t i = static_cast<std::uint32_t>(rng() % 300);
    const net::FlowKey k = key(i);
    switch (rng() % 4) {
      case 0: {  // insert
        Pcb* p = d->insert(k);
        if (reference.contains(k)) {
          EXPECT_EQ(p, nullptr) << "duplicate insert must be rejected";
        } else if (p != nullptr) {
          EXPECT_EQ(p->key, k);
          reference.emplace(k, true);
        }
        break;
      }
      case 1: {  // erase
        const bool erased = d->erase(k);
        EXPECT_EQ(erased, reference.erase(k) == 1);
        break;
      }
      default: {  // lookup (both kinds)
        const auto kind =
            (rng() % 2 == 0) ? SegmentKind::kData : SegmentKind::kAck;
        const auto r = d->lookup(k, kind);
        ++lookups;
        examined_sum += r.examined;
        if (reference.contains(k)) {
          ASSERT_NE(r.pcb, nullptr);
          EXPECT_EQ(r.pcb->key, k);
          EXPECT_GE(r.examined, 1u);
        } else {
          EXPECT_EQ(r.pcb, nullptr);
        }
        // Nothing may ever examine more than every PCB plus two cache
        // probes.
        EXPECT_LE(r.examined, d->size() + 2);
        if (r.cache_hit) {
          EXPECT_NE(r.pcb, nullptr) << "cache hit without a PCB";
        }
        break;
      }
    }
    ASSERT_EQ(d->size(), reference.size());
  }

  EXPECT_EQ(d->stats().lookups, lookups);
  EXPECT_EQ(d->stats().pcbs_examined, examined_sum);
}

TEST_P(DemuxerProperty, EveryStoredKeyIsFindable) {
  auto d = make();
  constexpr std::uint32_t kN = 200;
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_NE(d->insert(key(i)), nullptr) << i;
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    const auto r = d->lookup(key(i));
    ASSERT_NE(r.pcb, nullptr) << i;
    EXPECT_EQ(r.pcb->key, key(i));
  }
}

TEST_P(DemuxerProperty, ForEachEnumeratesExactlyStoredKeys) {
  auto d = make();
  std::map<std::uint16_t, int> expected;
  for (std::uint32_t i = 0; i < 100; ++i) {
    d->insert(key(i));
  }
  std::size_t visited = 0;
  d->for_each_pcb([&](const Pcb& p) {
    ++visited;
    EXPECT_EQ(p.key.local_port, 1521);
  });
  EXPECT_EQ(visited, 100u);
}

TEST_P(DemuxerProperty, EraseAllLeavesEmpty) {
  auto d = make();
  for (std::uint32_t i = 0; i < 100; ++i) d->insert(key(i));
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_TRUE(d->erase(key(i)));
  EXPECT_EQ(d->size(), 0u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(d->lookup(key(i)).pcb, nullptr);
  }
}

TEST_P(DemuxerProperty, LookupAfterEraseNeverReturnsStalePcb) {
  auto d = make();
  d->insert(key(0));
  d->insert(key(1));
  (void)d->lookup(key(0), SegmentKind::kData);  // populate caches
  (void)d->lookup(key(0), SegmentKind::kAck);
  ASSERT_TRUE(d->erase(key(0)));
  const auto r = d->lookup(key(0));
  EXPECT_EQ(r.pcb, nullptr);  // a stale cache entry would return freed memory
}

TEST_P(DemuxerProperty, StatsResetClearsCounters) {
  auto d = make();
  d->insert(key(0));
  (void)d->lookup(key(0));
  EXPECT_GT(d->stats().lookups, 0u);
  d->reset_stats();
  EXPECT_EQ(d->stats().lookups, 0u);
  EXPECT_EQ(d->stats().pcbs_examined, 0u);
}

TEST_P(DemuxerProperty, RepeatedLookupOfSameKeyCostsAtMostFirstCost) {
  // All algorithms under test have the LRU-ish property that an immediate
  // repeat of the same key is no more expensive than the first access.
  auto d = make();
  for (std::uint32_t i = 0; i < 64; ++i) d->insert(key(i));
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto first = d->lookup(key(i));
    const auto second = d->lookup(key(i));
    EXPECT_LE(second.examined, first.examined) << i;
  }
}

// The RCU demuxer is the Sequent algorithm under a different memory
// discipline, so driven single-threaded through the registry it must be
// *indistinguishable*: same hits, same PCB keys, same examined counts,
// same cache behavior, on identical random op sequences.
class RcuVsSequentDifferential
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(RcuVsSequentDifferential, IdenticalCostsOnRandomOps) {
  const auto [rcu_spec, sequent_spec] = GetParam();
  auto rcu = make_demuxer(*parse_demux_spec(rcu_spec));
  auto seq = make_demuxer(*parse_demux_spec(sequent_spec));
  std::mt19937_64 rng(4242);
  for (int step = 0; step < 6000; ++step) {
    const net::FlowKey k = key(static_cast<std::uint32_t>(rng() % 350));
    switch (rng() % 8) {
      case 0: {
        Pcb* a = rcu->insert(k);
        Pcb* b = seq->insert(k);
        ASSERT_EQ(a == nullptr, b == nullptr) << "step " << step;
        break;
      }
      case 1: {
        ASSERT_EQ(rcu->erase(k), seq->erase(k)) << "step " << step;
        break;
      }
      default: {  // lookups dominate, as in the modelled workload
        const auto kind =
            (rng() % 2 == 0) ? SegmentKind::kData : SegmentKind::kAck;
        const auto a = rcu->lookup(k, kind);
        const auto b = seq->lookup(k, kind);
        ASSERT_EQ(a.pcb == nullptr, b.pcb == nullptr) << "step " << step;
        if (a.pcb != nullptr) {
          ASSERT_EQ(a.pcb->key, b.pcb->key) << "step " << step;
          ASSERT_EQ(a.pcb->conn_id, b.pcb->conn_id) << "step " << step;
        }
        ASSERT_EQ(a.examined, b.examined) << "step " << step;
        ASSERT_EQ(a.cache_hit, b.cache_hit) << "step " << step;
        break;
      }
    }
    ASSERT_EQ(rcu->size(), seq->size());
  }
  EXPECT_EQ(rcu->stats().lookups, seq->stats().lookups);
  EXPECT_EQ(rcu->stats().pcbs_examined, seq->stats().pcbs_examined);
  EXPECT_EQ(rcu->stats().cache_hits, seq->stats().cache_hits);
}

INSTANTIATE_TEST_SUITE_P(
    RcuMirrorsSequent, RcuVsSequentDifferential,
    ::testing::Values(
        std::pair("rcu", "sequent"),
        std::pair("rcu:101:crc32", "sequent:101:crc32"),
        std::pair("rcu:19:xor_fold:nocache", "sequent:19:xor_fold:nocache"),
        std::pair("rcu:1:jenkins", "sequent:1:jenkins")),
    [](const auto& info) {
      std::string name = info.param.first;
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, DemuxerProperty,
    ::testing::Values("bsd", "mtf", "srcache", "sequent", "sequent:1",
                      "sequent:101:crc32", "sequent:19:xor_fold:nocache",
                      "sequent:19:toeplitz", "sequent:19:jenkins",
                      "sequent:19:multiplicative", "sequent:19:add_fold",
                      "sequent:19:bsd_modulo", "hashed_mtf",
                      "hashed_mtf:101:crc32", "connection_id", "dynamic",
                      "dynamic:41:jenkins", "rcu", "rcu:101:crc32",
                      "rcu:19:xor_fold:nocache", "flat", "flat:64",
                      "flat:1024:crc32", "flat16", "flat16:64",
                      "flat16:1024:crc32", "cuckoo", "cuckoo:64",
                      "cuckoo:1024:crc32c", "cuckoo:64:jenkins"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tcpdemux::core
