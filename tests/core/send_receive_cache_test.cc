#include "core/send_receive_cache.h"

#include <gtest/gtest.h>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

TEST(SrCache, ReceiveUpdatesReceiveCache) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  (void)d.lookup(key(1), SegmentKind::kData);
  EXPECT_EQ(d.receive_cached(), a);
  EXPECT_EQ(d.send_cached(), nullptr);
}

TEST(SrCache, NoteSentUpdatesSendCache) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  d.note_sent(a);
  EXPECT_EQ(d.send_cached(), a);
  EXPECT_EQ(d.receive_cached(), nullptr);
}

TEST(SrCache, DataProbesReceiveCacheFirst) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  d.insert(key(2));
  (void)d.lookup(key(1), SegmentKind::kData);  // recv cache := a
  d.note_sent(d.lookup(key(2), SegmentKind::kData).pcb);  // send cache := b
  (void)d.lookup(key(1), SegmentKind::kData);  // recv cache := a again
  // Now recv=a, send=b. A data packet for a costs exactly 1.
  const auto r = d.lookup(key(1), SegmentKind::kData);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.examined, 1u);
  EXPECT_EQ(r.pcb, a);
}

TEST(SrCache, AckProbesSendCacheFirst) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  d.insert(key(2));
  d.note_sent(a);                              // send cache := a
  (void)d.lookup(key(2), SegmentKind::kData);  // recv cache := b
  const auto r = d.lookup(key(1), SegmentKind::kAck);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.examined, 1u);  // send cache probed first for acks
  EXPECT_EQ(r.pcb, a);
}

TEST(SrCache, DataHitInSendCacheCostsTwo) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  d.insert(key(2));
  d.note_sent(a);                              // send cache := a
  (void)d.lookup(key(2), SegmentKind::kData);  // recv cache := b
  const auto r = d.lookup(key(1), SegmentKind::kData);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.examined, 2u);  // recv probe missed, send probe hit
}

TEST(SrCache, FullMissCostsTwoCachesPlusScan) {
  SendReceiveCacheDemuxer d;
  for (std::uint16_t p = 1; p <= 10; ++p) d.insert(key(p));
  Pcb* a = d.lookup(key(9), SegmentKind::kData).pcb;
  d.note_sent(a);
  (void)d.lookup(key(10), SegmentKind::kData);  // recv := key(10), send := key(9)
  // key(1) was inserted first: scan position 10.
  const auto r = d.lookup(key(1), SegmentKind::kData);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.examined, 2u + 10u);
}

TEST(SrCache, BothCachesSamePcbProbedOnce) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  d.insert(key(2));
  d.note_sent(a);
  (void)d.lookup(key(1), SegmentKind::kData);  // recv := a too
  // Both caches hold a; a miss should probe the shared entry only once.
  const auto r = d.lookup(key(2), SegmentKind::kData);
  EXPECT_EQ(r.examined, 1u + 1u);  // one shared cache probe + head scan
}

TEST(SrCache, ReceiveHitRefreshesReceiveCacheOnly) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  Pcb* b = d.insert(key(2));
  d.note_sent(b);
  (void)d.lookup(key(1), SegmentKind::kData);
  EXPECT_EQ(d.receive_cached(), a);
  EXPECT_EQ(d.send_cached(), b);
}

TEST(SrCache, EraseInvalidatesBothCaches) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  d.insert(key(2));
  d.note_sent(a);
  (void)d.lookup(key(1), SegmentKind::kData);
  EXPECT_TRUE(d.erase(key(1)));
  EXPECT_EQ(d.receive_cached(), nullptr);
  EXPECT_EQ(d.send_cached(), nullptr);
  EXPECT_EQ(d.lookup(key(1), SegmentKind::kData).pcb, nullptr);
}

TEST(SrCache, EraseOtherKeepsCaches) {
  SendReceiveCacheDemuxer d;
  Pcb* a = d.insert(key(1));
  d.insert(key(2));
  (void)d.lookup(key(1), SegmentKind::kData);
  EXPECT_TRUE(d.erase(key(2)));
  EXPECT_EQ(d.receive_cached(), a);
}

TEST(SrCache, DuplicateInsertRejected) {
  SendReceiveCacheDemuxer d;
  EXPECT_NE(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr);
}

TEST(SrCache, MissReturnsNullWithFullCost) {
  SendReceiveCacheDemuxer d;
  for (std::uint16_t p = 1; p <= 4; ++p) d.insert(key(p));
  Pcb* a = d.lookup(key(1), SegmentKind::kData).pcb;
  d.note_sent(a);
  (void)d.lookup(key(2), SegmentKind::kData);
  const auto r = d.lookup(key(99), SegmentKind::kData);
  EXPECT_EQ(r.pcb, nullptr);
  EXPECT_EQ(r.examined, 2u + 4u);
}

TEST(SrCache, StatsTrackHitRate) {
  SendReceiveCacheDemuxer d;
  d.insert(key(1));
  (void)d.lookup(key(1), SegmentKind::kData);  // miss (caches empty)
  (void)d.lookup(key(1), SegmentKind::kData);  // hit
  (void)d.lookup(key(1), SegmentKind::kData);  // hit
  EXPECT_NEAR(d.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace tcpdemux::core
