#include "core/connection_id.h"

#include <gtest/gtest.h>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

TEST(ConnectionId, LookupAlwaysExaminesExactlyOne) {
  ConnectionIdDemuxer d(64);
  for (std::uint16_t p = 1; p <= 50; ++p) d.insert(key(p));
  for (std::uint16_t p = 1; p <= 50; ++p) {
    const auto r = d.lookup(key(p));
    ASSERT_NE(r.pcb, nullptr);
    EXPECT_EQ(r.examined, 1u);
  }
}

TEST(ConnectionId, LookupByIdReturnsSamePcb) {
  ConnectionIdDemuxer d(8);
  Pcb* p = d.insert(key(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(d.lookup_by_id(d.id_of(*p)), p);
}

TEST(ConnectionId, IdsAreWithinCapacity) {
  ConnectionIdDemuxer d(8);
  for (std::uint16_t p = 1; p <= 8; ++p) {
    Pcb* pcb = d.insert(key(p));
    ASSERT_NE(pcb, nullptr);
    EXPECT_LT(d.id_of(*pcb), 8u);
  }
}

TEST(ConnectionId, CapacityExhaustionRejectsInsert) {
  ConnectionIdDemuxer d(4);
  for (std::uint16_t p = 1; p <= 4; ++p) {
    EXPECT_NE(d.insert(key(p)), nullptr);
  }
  EXPECT_EQ(d.insert(key(5)), nullptr);
  EXPECT_EQ(d.size(), 4u);
}

TEST(ConnectionId, EraseRecyclesIds) {
  ConnectionIdDemuxer d(2);
  ASSERT_NE(d.insert(key(1)), nullptr);
  ASSERT_NE(d.insert(key(2)), nullptr);
  EXPECT_TRUE(d.erase(key(1)));
  EXPECT_NE(d.insert(key(3)), nullptr);  // reuses the freed slot
  EXPECT_EQ(d.size(), 2u);
}

TEST(ConnectionId, LookupMissCostsOne) {
  ConnectionIdDemuxer d(8);
  d.insert(key(1));
  const auto r = d.lookup(key(2));
  EXPECT_EQ(r.pcb, nullptr);
  EXPECT_EQ(r.examined, 1u);
}

TEST(ConnectionId, LookupByBadId) {
  ConnectionIdDemuxer d(8);
  EXPECT_EQ(d.lookup_by_id(99), nullptr);
  EXPECT_EQ(d.lookup_by_id(3), nullptr);  // in range but unused
}

TEST(ConnectionId, DuplicateInsertRejected) {
  ConnectionIdDemuxer d(8);
  EXPECT_NE(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr);
}

TEST(ConnectionId, ZeroCapacityThrows) {
  EXPECT_THROW(ConnectionIdDemuxer(0), std::invalid_argument);
}

TEST(ConnectionId, ForEachSkipsEmptySlots) {
  ConnectionIdDemuxer d(16);
  d.insert(key(1));
  d.insert(key(2));
  d.erase(key(1));
  std::size_t count = 0;
  d.for_each_pcb([&](const Pcb&) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST(ConnectionId, WildcardFallbackScan) {
  ConnectionIdDemuxer d(16);
  d.insert(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                        net::Ipv4Addr::any(), 0});
  const auto r = d.lookup_wildcard(key(9));
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_TRUE(r.pcb->key.foreign_addr.is_any());
}

}  // namespace
}  // namespace tcpdemux::core
