// FlatDemuxer unit tests: the open-addressing mechanics the shared
// property/differential suites cannot see from outside — capacity
// rounding, amortized growth, robin-hood probe-distance bounds, and
// backward-shift deletion leaving no tombstone residue.
#include "core/flat_demuxer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/validate.h"
#include "net/flow_key.h"

namespace tcpdemux::core {
namespace {

// Distinct keys varying in the address only. Do NOT mirror `i` into the
// port as well: xor_fold XORs address and port words, so a key schedule
// with addr_low = i and port = base + i collapses to a handful of hashes
// (i ^ (base + i) is constant whenever the add carries stay out of the
// way) and every key lands in one probe run.
net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, static_cast<std::uint8_t>(i >> 16),
                                    static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      20000};
}

TEST(FlatDemuxerTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlatDemuxer(FlatDemuxer::Options{1}).capacity(), 16u);
  EXPECT_EQ(FlatDemuxer(FlatDemuxer::Options{16}).capacity(), 16u);
  EXPECT_EQ(FlatDemuxer(FlatDemuxer::Options{17}).capacity(), 32u);
  EXPECT_EQ(FlatDemuxer(FlatDemuxer::Options{1000}).capacity(), 1024u);
}

TEST(FlatDemuxerTest, RejectsZeroCapacity) {
  EXPECT_THROW(FlatDemuxer(FlatDemuxer::Options{0}), std::invalid_argument);
}

TEST(FlatDemuxerTest, InsertLookupEraseRoundTrip) {
  FlatDemuxer d;
  Pcb* const p = d.insert(key(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr) << "duplicate insert must fail";
  const auto r = d.lookup(key(1));
  EXPECT_EQ(r.pcb, p);
  EXPECT_EQ(r.examined, 1u);
  EXPECT_FALSE(r.cache_hit) << "the flat table has no single-entry cache";
  EXPECT_TRUE(d.erase(key(1)));
  EXPECT_FALSE(d.erase(key(1)));
  EXPECT_EQ(d.lookup(key(1)).pcb, nullptr);
  EXPECT_EQ(d.size(), 0u);
}

TEST(FlatDemuxerTest, GrowthKeepsEveryKeyFindableAndPcbPointersStable) {
  FlatDemuxer d(FlatDemuxer::Options{16});
  std::vector<Pcb*> pcbs;
  constexpr std::uint32_t kN = 1000;  // forces several doublings from 16
  for (std::uint32_t i = 0; i < kN; ++i) {
    Pcb* const p = d.insert(key(i));
    ASSERT_NE(p, nullptr) << i;
    pcbs.push_back(p);
  }
  EXPECT_GE(d.capacity(), kN);
  EXPECT_LE(d.size() * 8, d.capacity() * 7) << "load factor bound violated";
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(d.lookup(key(i)).pcb, pcbs[i]) << i;
  }
  EXPECT_TRUE(StructuralValidator::validate(d).ok());
}

TEST(FlatDemuxerTest, RobinHoodKeepsMeanProbeCostSmallNearLoadCap) {
  FlatDemuxer d(FlatDemuxer::Options{2048});
  for (std::uint32_t i = 0; i < 1700; ++i) {  // ~83% load, no growth
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  EXPECT_EQ(d.capacity(), 2048u);
  // Long occupied runs are unavoidable at 83% load (cluster lengths decay
  // only as (alpha*e^(1-alpha))^k ~ 0.984^k), so the max probe distance is
  // cluster-bounded, not logarithmic. What robin-hood guarantees is the
  // distribution: mean displacement stays ~(1 + 1/(1-alpha))/2 ~ 3.4 and
  // the table never degenerates into one key paying the whole cluster.
  std::uint64_t total_examined = 0;
  for (std::uint32_t i = 0; i < 1700; ++i) {
    const auto r = d.lookup(key(i));
    ASSERT_NE(r.pcb, nullptr) << i;
    total_examined += r.examined;
  }
  EXPECT_LE(total_examined, 1700u * 8) << "mean hit cost blew up at 83% load";
  EXPECT_LT(d.max_probe_distance(), d.capacity() / 4)
      << "one probe run spans a quarter of the table";
}

TEST(FlatDemuxerTest, ModerateLoadBoundsWorstCaseProbe) {
  FlatDemuxer d(FlatDemuxer::Options{2048});
  for (std::uint32_t i = 0; i < 1024; ++i) {  // 50% load
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  EXPECT_EQ(d.capacity(), 2048u);
  EXPECT_LE(d.max_probe_distance(), 64u);
}

TEST(FlatDemuxerTest, ChurnNeverDegradesLookupCost) {
  // Tombstone schemes rot under churn: erased slots keep lengthening probe
  // runs until a rebuild. Backward-shift deletion must keep the examined
  // count flat, so hammer one table with connect/disconnect cycles and
  // compare against a fresh table with the identical final population.
  FlatDemuxer churned(FlatDemuxer::Options{1024});
  for (std::uint32_t round = 0; round < 50; ++round) {
    for (std::uint32_t i = 0; i < 500; ++i) {
      ASSERT_NE(churned.insert(key(i)), nullptr);
    }
    for (std::uint32_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(churned.erase(key(i)));
    }
  }
  for (std::uint32_t i = 0; i < 500; ++i) {
    ASSERT_NE(churned.insert(key(i)), nullptr);
  }
  FlatDemuxer fresh(FlatDemuxer::Options{1024});
  for (std::uint32_t i = 0; i < 500; ++i) {
    ASSERT_NE(fresh.insert(key(i)), nullptr);
  }
  ASSERT_EQ(churned.capacity(), fresh.capacity());
  EXPECT_EQ(churned.max_probe_distance(), fresh.max_probe_distance())
      << "churn left probe-run residue a fresh build does not have";
  for (std::uint32_t i = 0; i < 500; ++i) {
    EXPECT_EQ(churned.lookup(key(i)).examined, fresh.lookup(key(i)).examined)
        << i;
  }
  EXPECT_TRUE(StructuralValidator::validate(churned).ok());
}

TEST(FlatDemuxerTest, ExaminedCountsKeyComparisonsOnly) {
  FlatDemuxer d;
  for (std::uint32_t i = 0; i < 100; ++i) ASSERT_NE(d.insert(key(i)), nullptr);
  // A miss examines only fingerprint-colliding slots: almost always zero.
  std::uint64_t miss_examined = 0;
  constexpr std::uint32_t kMisses = 200;
  for (std::uint32_t i = 0; i < kMisses; ++i) {
    const auto r = d.lookup(key(100000 + i));
    EXPECT_EQ(r.pcb, nullptr);
    miss_examined += r.examined;
  }
  // With 7 fingerprint bits, expected false positives per miss are well
  // under 0.1 at this occupancy; allow a generous margin.
  EXPECT_LE(miss_examined, kMisses / 4);
  // A hit examines at least the found PCB and rarely more.
  const auto hit = d.lookup(key(7));
  ASSERT_NE(hit.pcb, nullptr);
  EXPECT_GE(hit.examined, 1u);
}

TEST(FlatDemuxerTest, ForEachSeesExactlyTheResidents) {
  FlatDemuxer d(FlatDemuxer::Options{64});
  std::unordered_set<net::FlowKey> expected;
  for (std::uint32_t i = 0; i < 40; ++i) {
    d.insert(key(i));
    expected.insert(key(i));
  }
  for (std::uint32_t i = 0; i < 40; i += 2) {
    d.erase(key(i));
    expected.erase(key(i));
  }
  std::size_t seen = 0;
  d.for_each_pcb([&](const Pcb& pcb) {
    ++seen;
    EXPECT_TRUE(expected.contains(pcb.key));
  });
  EXPECT_EQ(seen, expected.size());
}

TEST(FlatDemuxerTest, MemoryBytesPricesSlotArraysAndPcbs) {
  FlatDemuxer d(FlatDemuxer::Options{1024});
  const std::size_t empty = d.memory_bytes();
  // Each slot costs tag + hash + key + pointer, paid up front.
  EXPECT_GE(empty, 1024 * (1 + 4 + sizeof(net::FlowKey) + sizeof(void*)));
  for (std::uint32_t i = 0; i < 100; ++i) d.insert(key(i));
  EXPECT_GE(d.memory_bytes(), empty + 100 * sizeof(Pcb));
}

TEST(FlatDemuxerTest, NameReportsCapacityAndHasher) {
  FlatDemuxer d(FlatDemuxer::Options{256, net::HasherKind::kCrc32});
  EXPECT_EQ(d.name(), "flat(cap=256,crc32)");
}

TEST(FlatDemuxerTest, BatchMatchesScalarExactly) {
  FlatDemuxer a(FlatDemuxer::Options{128});
  FlatDemuxer b(FlatDemuxer::Options{128});
  for (std::uint32_t i = 0; i < 300; ++i) {  // spans a growth
    a.insert(key(i));
    b.insert(key(i));
  }
  std::vector<net::FlowKey> keys;
  for (std::uint32_t i = 0; i < 64; ++i) keys.push_back(key(i * 7 % 400));
  std::vector<LookupResult> batch(keys.size());
  b.lookup_batch(keys, batch, SegmentKind::kData);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto scalar = a.lookup(keys[i]);
    EXPECT_EQ(batch[i].pcb == nullptr, scalar.pcb == nullptr) << i;
    EXPECT_EQ(batch[i].examined, scalar.examined) << i;
  }
  EXPECT_EQ(a.stats().lookups, b.stats().lookups);
  EXPECT_EQ(a.stats().pcbs_examined, b.stats().pcbs_examined);
}

}  // namespace
}  // namespace tcpdemux::core
