// The lookup_wildcard contract, parameterized over every algorithm:
// BSD in_pcblookup semantics — exact match wins, then fewest wildcards;
// no match when the local port differs; caches and stats untouched.
#include <gtest/gtest.h>

#include "core/demux_registry.h"

namespace tcpdemux::core {
namespace {

net::FlowKey conn_key(std::uint16_t fport) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), fport};
}

net::FlowKey listener_key(bool wild_local) {
  return net::FlowKey{
      wild_local ? net::Ipv4Addr::any() : net::Ipv4Addr(10, 0, 0, 1), 1521,
      net::Ipv4Addr::any(), 0};
}

class WildcardProperty : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Demuxer> make() const {
    return make_demuxer(*parse_demux_spec(GetParam()));
  }
};

TEST_P(WildcardProperty, ExactMatchBeatsAnyListener) {
  auto d = make();
  ASSERT_NE(d->insert(listener_key(false)), nullptr);
  ASSERT_NE(d->insert(listener_key(true)), nullptr);
  Pcb* exact = d->insert(conn_key(40001));
  ASSERT_NE(exact, nullptr);
  const auto r = d->lookup_wildcard(conn_key(40001));
  EXPECT_EQ(r.pcb, exact);
}

TEST_P(WildcardProperty, FewerWildcardsPreferred) {
  auto d = make();
  ASSERT_NE(d->insert(listener_key(true)), nullptr);   // **:1521
  ASSERT_NE(d->insert(listener_key(false)), nullptr);  // 10.0.0.1:1521
  const auto r = d->lookup_wildcard(conn_key(40009));
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_FALSE(r.pcb->key.local_addr.is_any())
      << "bound-address listener must beat the full wildcard";
}

TEST_P(WildcardProperty, PortMismatchFindsNothing) {
  auto d = make();
  d->insert(listener_key(false));
  net::FlowKey other_port = conn_key(40001);
  other_port.local_port = 80;
  EXPECT_EQ(d->lookup_wildcard(other_port).pcb, nullptr);
}

TEST_P(WildcardProperty, DoesNotDisturbCachesOrStats) {
  auto d = make();
  d->insert(listener_key(false));
  for (std::uint16_t p = 1; p <= 20; ++p) d->insert(conn_key(p));
  (void)d->lookup(conn_key(7));  // prime whatever cache exists
  const auto stats_before = d->stats().lookups;
  const auto warm_before = d->lookup(conn_key(7)).examined;
  (void)d->lookup_wildcard(conn_key(13));
  EXPECT_EQ(d->stats().lookups, stats_before + 1)
      << "wildcard lookups must not be recorded in fast-path stats";
  const auto warm_after = d->lookup(conn_key(7)).examined;
  EXPECT_LE(warm_after, warm_before)
      << "wildcard lookup disturbed the cache state";
}

TEST_P(WildcardProperty, EmptyTableFindsNothing) {
  auto d = make();
  EXPECT_EQ(d->lookup_wildcard(conn_key(1)).pcb, nullptr);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, WildcardProperty,
                         ::testing::Values("bsd", "mtf", "srcache",
                                           "sequent", "sequent:101:crc32",
                                           "hashed_mtf", "dynamic",
                                           "connection_id", "rcu",
                                           "rcu:101:crc32", "flat",
                                           "flat:64:crc32", "flat16",
                                           "flat16:64:crc32", "cuckoo",
                                           "cuckoo:64:crc32",
                                           "sharded:4:flat16",
                                           "sharded:2:sequent:19:crc32"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace tcpdemux::core
