// CuckooDemuxer unit tests: the bucketized-cuckoo mechanics the shared
// property/differential suites cannot see from outside — capacity
// rounding, BFS kick paths across growth, the Cuckoo++ presence filter
// keeping negative lookups at ~1 bucket, counted-filter maintenance under
// churn, and the bucket-flood -> keyed-rehash recovery path.
#include "core/cuckoo_demuxer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/validate.h"
#include "net/flow_key.h"
#include "net/hashers.h"

namespace tcpdemux::core {
namespace {

// Distinct keys varying in the address only (see flat_demuxer_test.cc for
// why mirroring i into the port collapses xor_fold).
net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, static_cast<std::uint8_t>(i >> 16),
                                    static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      20000};
}

TEST(CuckooDemuxerTest, CapacityRoundsUpToPowerOfTwoSlots) {
  EXPECT_EQ(CuckooDemuxer(CuckooDemuxer::Options{1}).capacity(), 16u);
  EXPECT_EQ(CuckooDemuxer(CuckooDemuxer::Options{16}).capacity(), 16u);
  EXPECT_EQ(CuckooDemuxer(CuckooDemuxer::Options{17}).capacity(), 32u);
  EXPECT_EQ(CuckooDemuxer(CuckooDemuxer::Options{1000}).capacity(), 1024u);
  EXPECT_EQ(CuckooDemuxer(CuckooDemuxer::Options{1024}).bucket_count(), 256u);
}

TEST(CuckooDemuxerTest, RejectsZeroCapacity) {
  EXPECT_THROW(CuckooDemuxer(CuckooDemuxer::Options{0}),
               std::invalid_argument);
}

TEST(CuckooDemuxerTest, InsertLookupEraseRoundTrip) {
  CuckooDemuxer d;
  Pcb* const p = d.insert(key(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr) << "duplicate insert must fail";
  const auto r = d.lookup(key(1));
  EXPECT_EQ(r.pcb, p);
  EXPECT_EQ(r.examined, 1u);
  EXPECT_FALSE(r.cache_hit) << "the cuckoo table has no single-entry cache";
  EXPECT_TRUE(d.erase(key(1)));
  EXPECT_FALSE(d.erase(key(1)));
  EXPECT_EQ(d.lookup(key(1)).pcb, nullptr);
  EXPECT_EQ(d.size(), 0u);
}

TEST(CuckooDemuxerTest, GrowthKeepsEveryKeyFindableAndPcbPointersStable) {
  CuckooDemuxer d(CuckooDemuxer::Options{16});
  std::vector<Pcb*> pcbs;
  constexpr std::uint32_t kN = 1000;  // forces several doublings from 16
  for (std::uint32_t i = 0; i < kN; ++i) {
    Pcb* const p = d.insert(key(i));
    ASSERT_NE(p, nullptr) << i;
    pcbs.push_back(p);
  }
  EXPECT_GE(d.capacity(), kN);
  EXPECT_LE(d.size() * 8, d.capacity() * 7) << "load factor bound violated";
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(d.lookup(key(i)).pcb, pcbs[i]) << i;
  }
  EXPECT_TRUE(StructuralValidator::validate(d).ok());
}

TEST(CuckooDemuxerTest, EveryLookupTouchesAtMostTwoBuckets) {
  CuckooDemuxer d(CuckooDemuxer::Options{4096});
  for (std::uint32_t i = 0; i < 3500; ++i) {  // ~85% load, no growth
    ASSERT_NE(d.insert(key(i)), nullptr) << i;
  }
  EXPECT_EQ(d.capacity(), 4096u);
  const std::uint64_t before = d.buckets_probed();
  for (std::uint32_t i = 0; i < 3500; ++i) {
    ASSERT_NE(d.lookup(key(i)).pcb, nullptr) << i;
  }
  EXPECT_LE(d.buckets_probed() - before, 2u * 3500u);
}

TEST(CuckooDemuxerTest, FilterKeepsNegativeLookupsNearOneBucket) {
  CuckooDemuxer d(CuckooDemuxer::Options{4096});
  for (std::uint32_t i = 0; i < 3500; ++i) {  // ~85% load: kicks + overflow
    ASSERT_NE(d.insert(key(i)), nullptr) << i;
  }
  constexpr std::uint32_t kMisses = 4000;
  const std::uint64_t before = d.buckets_probed();
  std::uint64_t miss_examined = 0;
  for (std::uint32_t i = 0; i < kMisses; ++i) {
    const auto r = d.lookup(key(100000 + i));
    EXPECT_EQ(r.pcb, nullptr);
    miss_examined += r.examined;
  }
  const std::uint64_t probed = d.buckets_probed() - before;
  // The Cuckoo++ claim: the filter answers almost every negative lookup
  // from the primary bucket's metadata alone. Even at 85% load the set
  // bits stay sparse (one of 16 per overflowed resident), so well under
  // 15% of misses should need the second bucket.
  EXPECT_LE(probed, kMisses + kMisses * 15 / 100)
      << "filter stopped suppressing second-bucket probes";
  // And misses almost never compare keys (7 fingerprint bits).
  EXPECT_LE(miss_examined, kMisses / 4);
}

TEST(CuckooDemuxerTest, ChurnKeepsFilterExactAndStructureValid) {
  CuckooDemuxer d(CuckooDemuxer::Options{1024});
  for (std::uint32_t round = 0; round < 20; ++round) {
    for (std::uint32_t i = 0; i < 500; ++i) {
      ASSERT_NE(d.insert(key(i)), nullptr);
    }
    for (std::uint32_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(d.erase(key(i)));
    }
    const auto report = StructuralValidator::validate(d);
    ASSERT_TRUE(report.ok()) << report.to_string();
  }
  EXPECT_EQ(d.size(), 0u);
  // An empty table must have an empty filter everywhere, or stale bits
  // would tax every future negative lookup with a second bucket probe.
  const std::uint64_t before = d.buckets_probed();
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(d.lookup(key(i)).pcb, nullptr);
  }
  EXPECT_EQ(d.buckets_probed() - before, 100u)
      << "churn left stale presence-filter bits behind";
}

TEST(CuckooDemuxerTest, BucketFloodShedsWithoutRehashOption) {
  // Craft keys sharing primary bucket AND fingerprint: they share both
  // candidate buckets, so only 2 * kBucketWidth = 8 can ever reside.
  const net::HashSpec spec{net::HasherKind::kCrc32, 0};
  CuckooDemuxer d(CuckooDemuxer::Options{256, spec});
  const std::size_t mask = d.bucket_count() - 1;
  std::vector<net::FlowKey> flood;
  for (std::uint32_t i = 0; flood.size() < 12 && i < 2000000; ++i) {
    const std::uint32_t h =
        net::mix32_avalanche(net::hash_flow(spec, key(i)));
    if ((h & mask) == 0 && (h >> 25) == 0x40) flood.push_back(key(i));
  }
  ASSERT_EQ(flood.size(), 12u) << "key crafting exhausted its budget";
  std::size_t inserted = 0;
  for (const auto& k : flood) {
    if (d.insert(k) != nullptr) ++inserted;
  }
  EXPECT_EQ(inserted, 8u) << "a shared bucket pair holds exactly 8";
  EXPECT_EQ(d.resilience().inserts_shed, 4u);
  EXPECT_EQ(d.capacity(), 256u) << "a degenerate flood must not force growth";
  const auto report = StructuralValidator::validate(d);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CuckooDemuxerTest, BucketFloodRecoversViaKeyedRehash) {
  // Same crafted flood, but with the rehash option: exhausting the kick
  // budget rotates the seed, which scatters the shared bucket pair (the
  // keys collide in the masked bits, not the full hash), so every key
  // lands.
  const net::HashSpec spec{net::HasherKind::kCrc32, 0};
  CuckooDemuxer d(
      CuckooDemuxer::Options{256, spec, /*rehash_on_overload=*/true});
  const std::size_t mask = d.bucket_count() - 1;
  std::vector<net::FlowKey> flood;
  for (std::uint32_t i = 0; flood.size() < 12 && i < 2000000; ++i) {
    const std::uint32_t h =
        net::mix32_avalanche(net::hash_flow(spec, key(i)));
    if ((h & mask) == 0 && (h >> 25) == 0x40) flood.push_back(key(i));
  }
  ASSERT_EQ(flood.size(), 12u) << "key crafting exhausted its budget";
  for (const auto& k : flood) {
    ASSERT_NE(d.insert(k), nullptr);
  }
  EXPECT_EQ(d.size(), 12u);
  EXPECT_GE(d.resilience().overload_rehashes, 1u);
  EXPECT_NE(d.hash_spec().seed, 0u) << "rehash must rotate the seed";
  for (const auto& k : flood) {
    EXPECT_NE(d.lookup(k).pcb, nullptr);
  }
  const auto report = StructuralValidator::validate(d);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CuckooDemuxerTest, MaxPcbsShedsBeyondCap) {
  CuckooDemuxer d(CuckooDemuxer::Options{
      1024, net::HashSpec{net::HasherKind::kXorFold, 0}, false,
      /*max_pcbs=*/10});
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  EXPECT_EQ(d.insert(key(10)), nullptr);
  EXPECT_EQ(d.resilience().inserts_shed, 1u);
  ASSERT_TRUE(d.erase(key(0)));
  EXPECT_NE(d.insert(key(10)), nullptr) << "erase must free cap headroom";
}

TEST(CuckooDemuxerTest, ForEachSeesExactlyTheResidents) {
  CuckooDemuxer d(CuckooDemuxer::Options{64});
  std::unordered_set<net::FlowKey> expected;
  for (std::uint32_t i = 0; i < 40; ++i) {
    d.insert(key(i));
    expected.insert(key(i));
  }
  for (std::uint32_t i = 0; i < 40; i += 2) {
    d.erase(key(i));
    expected.erase(key(i));
  }
  std::size_t seen = 0;
  d.for_each_pcb([&](const Pcb& pcb) {
    ++seen;
    EXPECT_TRUE(expected.contains(pcb.key));
  });
  EXPECT_EQ(seen, expected.size());
}

TEST(CuckooDemuxerTest, OccupancySumsToSizeAcrossBuckets) {
  CuckooDemuxer d(CuckooDemuxer::Options{256});
  for (std::uint32_t i = 0; i < 150; ++i) d.insert(key(i));
  const auto buckets = d.occupancy();
  EXPECT_EQ(buckets.size(), d.bucket_count());
  std::size_t total = 0;
  for (const std::size_t b : buckets) {
    EXPECT_LE(b, CuckooDemuxer::kBucketWidth);
    total += b;
  }
  EXPECT_EQ(total, d.size());
}

TEST(CuckooDemuxerTest, MemoryBytesPricesBucketsSlotsAndPcbs) {
  CuckooDemuxer d(CuckooDemuxer::Options{1024});
  const std::size_t empty = d.memory_bytes();
  // Each slot costs hash + key + pointer; each bucket adds tag/filter
  // metadata and the counted-filter backing store.
  EXPECT_GE(empty, 1024 * (4 + sizeof(net::FlowKey) + sizeof(void*)) +
                       256 * (6 + 32));
  for (std::uint32_t i = 0; i < 100; ++i) d.insert(key(i));
  EXPECT_GE(d.memory_bytes(), empty + 100 * sizeof(Pcb));
}

TEST(CuckooDemuxerTest, NameReportsCapacityAndHasher) {
  CuckooDemuxer d(
      CuckooDemuxer::Options{256, net::HashSpec{net::HasherKind::kCrc32, 0}});
  EXPECT_EQ(d.name(), "cuckoo(cap=256,crc32)");
}

TEST(CuckooDemuxerTest, BatchMatchesScalarExactly) {
  CuckooDemuxer a(CuckooDemuxer::Options{128});
  CuckooDemuxer b(CuckooDemuxer::Options{128});
  for (std::uint32_t i = 0; i < 300; ++i) {  // spans a growth
    a.insert(key(i));
    b.insert(key(i));
  }
  std::vector<net::FlowKey> keys;
  for (std::uint32_t i = 0; i < 64; ++i) keys.push_back(key(i * 7 % 400));
  std::vector<LookupResult> batch(keys.size());
  b.lookup_batch(keys, batch, SegmentKind::kData);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto scalar = a.lookup(keys[i]);
    EXPECT_EQ(batch[i].pcb == nullptr, scalar.pcb == nullptr) << i;
    EXPECT_EQ(batch[i].examined, scalar.examined) << i;
  }
  EXPECT_EQ(a.stats().lookups, b.stats().lookups);
  EXPECT_EQ(a.stats().pcbs_examined, b.stats().pcbs_examined);
  EXPECT_EQ(a.buckets_probed(), b.buckets_probed());
}

}  // namespace
}  // namespace tcpdemux::core
