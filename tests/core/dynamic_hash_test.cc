#include "core/dynamic_hash.h"

#include <gtest/gtest.h>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(30000 + (i % 30000))};
}

DynamicHashDemuxer::Options opts() {
  return DynamicHashDemuxer::Options{19, 2.0, net::HasherKind::kCrc32, true};
}

TEST(DynamicHash, StartsAtInitialChains) {
  DynamicHashDemuxer d(opts());
  EXPECT_EQ(d.chains(), 19u);
  EXPECT_EQ(d.rehash_count(), 0u);
}

TEST(DynamicHash, GrowsWhenLoadExceeded) {
  DynamicHashDemuxer d(opts());
  // 19 chains * load 2.0 = 38; the 39th insert triggers a rehash to 41.
  for (std::uint32_t i = 0; i < 39; ++i) ASSERT_NE(d.insert(key(i)), nullptr);
  EXPECT_EQ(d.chains(), 41u);
  EXPECT_EQ(d.rehash_count(), 1u);
}

TEST(DynamicHash, AllKeysFindableAfterManyRehashes) {
  DynamicHashDemuxer d(opts());
  constexpr std::uint32_t kN = 5000;
  std::vector<Pcb*> pcbs;
  for (std::uint32_t i = 0; i < kN; ++i) {
    Pcb* p = d.insert(key(i));
    ASSERT_NE(p, nullptr) << i;
    pcbs.push_back(p);
  }
  EXPECT_GT(d.rehash_count(), 4u);
  for (std::uint32_t i = 0; i < kN; ++i) {
    const auto r = d.lookup(key(i));
    ASSERT_NE(r.pcb, nullptr) << i;
    EXPECT_EQ(r.pcb, pcbs[i]) << "PCB reallocated during rehash";
  }
}

TEST(DynamicHash, LoadStaysBoundedSoLookupsStayCheap) {
  DynamicHashDemuxer d(opts());
  for (std::uint32_t i = 0; i < 20000; ++i) d.insert(key(i));
  d.reset_stats();
  for (std::uint32_t i = 0; i < 20000; ++i) (void)d.lookup(key(i));
  // Load factor <= 2 and a decent hash: mean examined must stay tiny even
  // at 10x the population the paper studied.
  EXPECT_LT(d.stats().mean_examined(), 4.0);
}

TEST(DynamicHash, NextTableSizeLadder) {
  EXPECT_EQ(DynamicHashDemuxer::next_table_size(19), 41u);
  EXPECT_EQ(DynamicHashDemuxer::next_table_size(41), 83u);
  EXPECT_GE(DynamicHashDemuxer::next_table_size(100), 200u);
}

TEST(DynamicHash, EraseAndShrinkAccounting) {
  DynamicHashDemuxer d(opts());
  for (std::uint32_t i = 0; i < 100; ++i) d.insert(key(i));
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_TRUE(d.erase(key(i)));
  EXPECT_EQ(d.size(), 0u);
  // The table never shrinks (like kernel hashtables); that's fine.
  EXPECT_GT(d.chains(), 19u);
}

TEST(DynamicHash, CachesColdAfterRehashButCorrect) {
  DynamicHashDemuxer d(opts());
  for (std::uint32_t i = 0; i < 38; ++i) d.insert(key(i));
  (void)d.lookup(key(0));
  const auto warm = d.lookup(key(0));
  EXPECT_TRUE(warm.cache_hit);
  d.insert(key(999));  // trigger rehash; caches invalidated
  const auto after = d.lookup(key(0));
  EXPECT_NE(after.pcb, nullptr);
  EXPECT_FALSE(after.cache_hit);
}

TEST(DynamicHash, InvalidOptionsThrow) {
  EXPECT_THROW(
      DynamicHashDemuxer(DynamicHashDemuxer::Options{0, 2.0,
                                                     net::HasherKind::kCrc32,
                                                     true}),
      std::invalid_argument);
  EXPECT_THROW(
      DynamicHashDemuxer(DynamicHashDemuxer::Options{19, 0.0,
                                                     net::HasherKind::kCrc32,
                                                     true}),
      std::invalid_argument);
}

TEST(DynamicHash, NameReflectsCurrentSize) {
  DynamicHashDemuxer d(opts());
  EXPECT_EQ(d.name(), "dynamic(h=19,crc32)");
  for (std::uint32_t i = 0; i < 39; ++i) d.insert(key(i));
  EXPECT_EQ(d.name(), "dynamic(h=41,crc32)");
}

TEST(DynamicHash, WildcardLookupAcrossChains) {
  DynamicHashDemuxer d(opts());
  d.insert(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                        net::Ipv4Addr::any(), 0});
  for (std::uint32_t i = 0; i < 50; ++i) d.insert(key(i));
  const auto r = d.lookup_wildcard(key(7777));
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_TRUE(r.pcb->key.foreign_addr.is_any());
}

}  // namespace
}  // namespace tcpdemux::core
