#include "core/hashed_mtf.h"

#include <gtest/gtest.h>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

HashedMtfDemuxer::Options opts(std::uint32_t chains) {
  return HashedMtfDemuxer::Options{chains, net::HasherKind::kCrc32};
}

TEST(HashedMtf, InsertAndLookup) {
  HashedMtfDemuxer d(opts(19));
  Pcb* p = d.insert(key(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(d.lookup(key(1)).pcb, p);
  EXPECT_EQ(d.size(), 1u);
}

TEST(HashedMtf, ZeroChainsThrows) {
  EXPECT_THROW(HashedMtfDemuxer(opts(0)), std::invalid_argument);
}

TEST(HashedMtf, RepeatLookupCostsOne) {
  HashedMtfDemuxer d(opts(19));
  for (std::uint16_t p = 1; p <= 200; ++p) d.insert(key(p));
  (void)d.lookup(key(77));
  const auto r = d.lookup(key(77));
  EXPECT_EQ(r.examined, 1u);
  EXPECT_TRUE(r.cache_hit);
}

TEST(HashedMtf, MtfOnlyWithinOwnChain) {
  HashedMtfDemuxer d(opts(2));
  // Insert keys until both chains have >= 2 entries.
  for (std::uint16_t p = 1; p <= 8; ++p) d.insert(key(p));
  // Touching a key reorders only its own chain; a key in the other chain
  // keeps its position (cost unchanged across the touch).
  std::uint16_t a = 1;
  std::uint16_t b = 2;
  while (net::hash_chain(net::HasherKind::kCrc32, key(b), 2) ==
         net::hash_chain(net::HasherKind::kCrc32, key(a), 2)) {
    ++b;
  }
  const auto cost_b_before = d.lookup(key(b)).examined;
  (void)d.lookup(key(b));  // b now at front of its chain
  (void)d.lookup(key(a));  // touch the other chain
  EXPECT_EQ(d.lookup(key(b)).examined, 1u);
  (void)cost_b_before;
}

TEST(HashedMtf, SingleChainEqualsPlainMtf) {
  HashedMtfDemuxer d(opts(1));
  for (std::uint16_t p = 1; p <= 5; ++p) d.insert(key(p));
  EXPECT_EQ(d.lookup(key(1)).examined, 5u);
  EXPECT_EQ(d.lookup(key(1)).examined, 1u);
  EXPECT_EQ(d.lookup(key(5)).examined, 2u);
}

TEST(HashedMtf, EraseAndDuplicates) {
  HashedMtfDemuxer d(opts(19));
  EXPECT_NE(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr);
  EXPECT_TRUE(d.erase(key(1)));
  EXPECT_FALSE(d.erase(key(1)));
  EXPECT_EQ(d.size(), 0u);
}

TEST(HashedMtf, NameReflectsConfiguration) {
  HashedMtfDemuxer d(opts(19));
  EXPECT_EQ(d.name(), "hashed_mtf(h=19,crc32)");
}

TEST(HashedMtf, ForEachVisitsAll) {
  HashedMtfDemuxer d(opts(5));
  for (std::uint16_t p = 1; p <= 23; ++p) d.insert(key(p));
  std::size_t count = 0;
  d.for_each_pcb([&](const Pcb&) { ++count; });
  EXPECT_EQ(count, 23u);
}

TEST(HashedMtf, WildcardLookupWorks) {
  HashedMtfDemuxer d(opts(19));
  d.insert(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                        net::Ipv4Addr::any(), 0});
  const auto r = d.lookup_wildcard(key(9));
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_TRUE(r.pcb->key.foreign_addr.is_any());
}

}  // namespace
}  // namespace tcpdemux::core
