// core/simd.h: the 16-wide group probe and 4-wide bucket probe must agree
// with a byte-at-a-time oracle on every backend, and the always-compiled
// SWAR fallback must agree with whichever native backend was selected —
// so the scalar path is exercised in CI even on SSE2/NEON machines.
#include "core/simd.h"

#include <array>
#include <cstdint>

#include "gtest/gtest.h"

namespace tcpdemux::core {
namespace {

std::uint32_t oracle_match(const std::uint8_t* tags, std::size_t n,
                           std::uint8_t tag) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (tags[i] == tag) mask |= 1U << i;
  }
  return mask;
}

// Deterministic xorshift so the sweep covers varied byte patterns without
// depending on seeded std:: machinery.
std::uint32_t next_rand(std::uint32_t& state) {
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return state;
}

TEST(SimdTest, BackendIsKnown) {
  const auto backend = simd_backend();
  EXPECT_TRUE(backend == "sse2" || backend == "neon" || backend == "swar")
      << backend;
}

TEST(SimdTest, GroupMatchAgainstOracleExhaustiveTags) {
  std::array<std::uint8_t, kGroupWidth> tags{};
  for (std::size_t i = 0; i < tags.size(); ++i) {
    tags[i] = static_cast<std::uint8_t>(0x80 | (i * 17));
  }
  tags[3] = 0;
  tags[9] = 0;
  for (int t = 0; t < 256; ++t) {
    const auto tag = static_cast<std::uint8_t>(t);
    const std::uint32_t expect = oracle_match(tags.data(), tags.size(), tag);
    EXPECT_EQ(group_match(tags.data(), tag), expect) << "tag=" << t;
    EXPECT_EQ(group_match_swar(tags.data(), tag), expect) << "tag=" << t;
  }
}

TEST(SimdTest, GroupMatchRandomSweepNativeEqualsSwar) {
  std::uint32_t state = 0x9e3779b9;
  std::array<std::uint8_t, kGroupWidth> tags{};
  for (int round = 0; round < 5000; ++round) {
    for (auto& t : tags) t = static_cast<std::uint8_t>(next_rand(state));
    const auto probe = static_cast<std::uint8_t>(next_rand(state));
    // Force some hits: overwrite a random slot with the probe byte.
    tags[next_rand(state) % kGroupWidth] = probe;
    const std::uint32_t expect = oracle_match(tags.data(), tags.size(), probe);
    EXPECT_EQ(group_match(tags.data(), probe), expect);
    EXPECT_EQ(group_match_swar(tags.data(), probe), expect);
    EXPECT_EQ(group_empty(tags.data()), group_empty_swar(tags.data()));
  }
}

TEST(SimdTest, GroupEmptyFindsZeroTags) {
  std::array<std::uint8_t, kGroupWidth> tags{};
  tags.fill(0xab);
  EXPECT_EQ(group_empty(tags.data()), 0U);
  tags[0] = 0;
  tags[15] = 0;
  EXPECT_EQ(group_empty(tags.data()), (1U << 0) | (1U << 15));
  EXPECT_EQ(group_empty_swar(tags.data()), (1U << 0) | (1U << 15));
}

TEST(SimdTest, BucketMatchAgainstOracle) {
  std::uint32_t state = 0x243f6a88;
  std::array<std::uint8_t, 4> tags{};
  for (int round = 0; round < 5000; ++round) {
    for (auto& t : tags) t = static_cast<std::uint8_t>(next_rand(state));
    const auto probe = static_cast<std::uint8_t>(next_rand(state));
    tags[next_rand(state) % tags.size()] = probe;
    const std::uint32_t expect = oracle_match(tags.data(), tags.size(), probe);
    EXPECT_EQ(bucket_match(tags.data(), probe), expect);
    EXPECT_EQ(bucket_match_swar(tags.data(), probe), expect);
    EXPECT_LE(bucket_match(tags.data(), probe), 0xfU);
  }
}

TEST(SimdTest, MatchMaskNeverExceedsGroupWidth) {
  std::array<std::uint8_t, kGroupWidth> tags{};
  tags.fill(0x80);
  EXPECT_EQ(group_match(tags.data(), 0x80), 0xffffU);
  EXPECT_EQ(group_match_swar(tags.data(), 0x80), 0xffffU);
}

}  // namespace
}  // namespace tcpdemux::core
