// Registry-wide miss-rate sweep: every spec family answers a lookup
// stream with absent keys blended at 0%, 50%, and 100%, and must (a)
// account every hit and miss exactly in stats(), and (b) produce
// bit-identical results and stats through lookup_batch — so the miss
// path (where the flat table's early exit and the cuckoo table's
// presence filter earn their keep) is exercised for every backend,
// scalar and batched, from day one.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/demux_registry.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, static_cast<std::uint8_t>(i >> 16),
                                    static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      20000};
}

// One spec per registered family (plus hashed variants of the new
// tables), so a future algorithm that forgets miss accounting or batch
// parity fails here by name.
const char* kSpecs[] = {
    "bsd",           "mtf",
    "srcache",       "sequent:19:crc32",
    "hashed_mtf",    "dynamic",
    "connection_id", "rcu:19:crc32",
    "flat:256",      "flat:256:crc32",
    "flat16:256",    "flat16:256:crc32c",
    "cuckoo:256",    "cuckoo:256:crc32c",
    "cuckoo:256:siphash@5eed",
    "sharded:4:flat:256",
    "sharded:2:sequent:19:crc32",
};

constexpr std::uint32_t kPresent = 200;
constexpr std::uint32_t kLookups = 1000;

// Deterministic present/absent interleave: miss_pct percent of the
// stream misses, spread evenly (the bench's MissSequencer pattern).
std::vector<net::FlowKey> make_stream(int miss_pct, std::uint32_t* misses) {
  std::vector<net::FlowKey> stream;
  stream.reserve(kLookups);
  int acc = 0;
  *misses = 0;
  for (std::uint32_t i = 0; i < kLookups; ++i) {
    acc += miss_pct;
    if (acc >= 100) {
      acc -= 100;
      stream.push_back(key(1000000 + i));  // never inserted
      ++*misses;
    } else {
      stream.push_back(key(i % kPresent));
    }
  }
  return stream;
}

class MissSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MissSweepTest, HitAndMissCountersExactAtEveryRate) {
  for (const int miss_pct : {0, 50, 100}) {
    const auto demuxer = make_demuxer(*parse_demux_spec(GetParam()));
    for (std::uint32_t i = 0; i < kPresent; ++i) {
      ASSERT_NE(demuxer->insert(key(i)), nullptr) << i;
    }
    std::uint32_t misses = 0;
    const auto stream = make_stream(miss_pct, &misses);
    demuxer->reset_stats();
    for (const auto& k : stream) {
      const auto r = demuxer->lookup(k, SegmentKind::kData);
      if (r.pcb != nullptr) {
        EXPECT_EQ(r.pcb->key, k);
      }
    }
    const auto& stats = demuxer->stats();
    EXPECT_EQ(stats.lookups, kLookups) << "miss_pct=" << miss_pct;
    EXPECT_EQ(stats.found, kLookups - misses) << "miss_pct=" << miss_pct;
    EXPECT_LE(stats.cache_hits, stats.found) << "miss_pct=" << miss_pct;
  }
}

TEST_P(MissSweepTest, BatchAgreesWithScalarAtEveryRate) {
  for (const int miss_pct : {0, 50, 100}) {
    const auto scalar = make_demuxer(*parse_demux_spec(GetParam()));
    const auto batched = make_demuxer(*parse_demux_spec(GetParam()));
    for (std::uint32_t i = 0; i < kPresent; ++i) {
      ASSERT_NE(scalar->insert(key(i)), nullptr);
      ASSERT_NE(batched->insert(key(i)), nullptr);
    }
    std::uint32_t misses = 0;
    const auto stream = make_stream(miss_pct, &misses);
    scalar->reset_stats();
    batched->reset_stats();

    std::vector<LookupResult> scalar_results;
    scalar_results.reserve(stream.size());
    for (const auto& k : stream) {
      scalar_results.push_back(scalar->lookup(k, SegmentKind::kData));
    }
    std::vector<LookupResult> batch_results(stream.size());
    batched->lookup_batch(stream, batch_results, SegmentKind::kData);

    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(batch_results[i].pcb == nullptr,
                scalar_results[i].pcb == nullptr)
          << "miss_pct=" << miss_pct << " i=" << i;
      EXPECT_EQ(batch_results[i].examined, scalar_results[i].examined)
          << "miss_pct=" << miss_pct << " i=" << i;
      EXPECT_EQ(batch_results[i].cache_hit, scalar_results[i].cache_hit)
          << "miss_pct=" << miss_pct << " i=" << i;
    }
    EXPECT_EQ(batched->stats().lookups, scalar->stats().lookups);
    EXPECT_EQ(batched->stats().found, scalar->stats().found);
    EXPECT_EQ(batched->stats().cache_hits, scalar->stats().cache_hits);
    EXPECT_EQ(batched->stats().pcbs_examined, scalar->stats().pcbs_examined);
    EXPECT_EQ(batched->stats().found,
              static_cast<std::uint64_t>(kLookups) - misses);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, MissSweepTest,
                         ::testing::ValuesIn(kSpecs),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '@' || c == '=') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace tcpdemux::core
