#include "core/bsd_list.h"

#include <gtest/gtest.h>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

TEST(BsdList, InsertAndLookup) {
  BsdListDemuxer d;
  Pcb* p = d.insert(key(1));
  ASSERT_NE(p, nullptr);
  const auto r = d.lookup(key(1));
  EXPECT_EQ(r.pcb, p);
  EXPECT_EQ(d.size(), 1u);
}

TEST(BsdList, DuplicateInsertRejected) {
  BsdListDemuxer d;
  EXPECT_NE(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.size(), 1u);
}

TEST(BsdList, FirstLookupMissesCacheAndScans) {
  BsdListDemuxer d;
  for (std::uint16_t p = 1; p <= 10; ++p) d.insert(key(p));
  // Cache empty; key(1) is deepest (inserted first => tail of list).
  const auto r = d.lookup(key(1));
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.examined, 10u);
}

TEST(BsdList, RepeatLookupHitsCacheWithCostOne) {
  BsdListDemuxer d;
  for (std::uint16_t p = 1; p <= 10; ++p) d.insert(key(p));
  (void)d.lookup(key(1));
  const auto r = d.lookup(key(1));
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.examined, 1u);
  EXPECT_EQ(r.pcb->key, key(1));
}

TEST(BsdList, CacheMissCostsOneProbePlusScan) {
  BsdListDemuxer d;
  for (std::uint16_t p = 1; p <= 10; ++p) d.insert(key(p));
  (void)d.lookup(key(1));  // cache := key(1)
  // key(10) was inserted last => head of list, scan position 1.
  const auto r = d.lookup(key(10));
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.examined, 1u + 1u);  // cache probe + head node
}

TEST(BsdList, CacheDoesNotReorderList) {
  BsdListDemuxer d;
  for (std::uint16_t p = 1; p <= 5; ++p) d.insert(key(p));
  (void)d.lookup(key(1));  // tail lookup
  (void)d.lookup(key(2));  // scan again: cache probe + 4 nodes (pos 4)
  const auto r = d.lookup(key(1));
  // key(1) is still at the tail: cache probe (1) + full scan (5).
  EXPECT_EQ(r.examined, 6u);
}

TEST(BsdList, LookupMissReturnsNull) {
  BsdListDemuxer d;
  d.insert(key(1));
  const auto r = d.lookup(key(2));
  EXPECT_EQ(r.pcb, nullptr);
  EXPECT_EQ(r.examined, 1u);  // empty cache skipped; scan of the 1 PCB
}

TEST(BsdList, EraseInvalidatesCache) {
  BsdListDemuxer d;
  d.insert(key(1));
  d.insert(key(2));
  (void)d.lookup(key(1));
  EXPECT_EQ(d.cached()->key, key(1));
  EXPECT_TRUE(d.erase(key(1)));
  EXPECT_EQ(d.cached(), nullptr);
  const auto r = d.lookup(key(1));
  EXPECT_EQ(r.pcb, nullptr);
}

TEST(BsdList, EraseMissingReturnsFalse) {
  BsdListDemuxer d;
  EXPECT_FALSE(d.erase(key(1)));
}

TEST(BsdList, StatsAccumulate) {
  BsdListDemuxer d;
  for (std::uint16_t p = 1; p <= 4; ++p) d.insert(key(p));
  (void)d.lookup(key(4));  // head: scan 1 (no cache yet)
  (void)d.lookup(key(4));  // cache hit: 1
  (void)d.lookup(key(1));  // probe 1 + scan 4
  const DemuxStats& s = d.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.found, 3u);
  EXPECT_EQ(s.pcbs_examined, 1u + 1u + 5u);
  EXPECT_NEAR(s.mean_examined(), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(BsdList, WildcardLookupFindsListener) {
  BsdListDemuxer d;
  d.insert(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                        net::Ipv4Addr::any(), 0});
  const auto r = d.lookup_wildcard(key(5));
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_TRUE(r.pcb->key.foreign_addr.is_any());
}

TEST(BsdList, NewestInsertSitsAtHead) {
  BsdListDemuxer d;
  for (std::uint16_t p = 1; p <= 3; ++p) d.insert(key(p));
  const auto r = d.lookup(key(3));
  EXPECT_EQ(r.examined, 1u);  // head, empty cache skipped? no cache yet
}

TEST(BsdList, ForEachVisitsAll) {
  BsdListDemuxer d;
  for (std::uint16_t p = 1; p <= 7; ++p) d.insert(key(p));
  std::size_t count = 0;
  d.for_each_pcb([&](const Pcb&) { ++count; });
  EXPECT_EQ(count, 7u);
}

TEST(BsdList, ConnIdsAreDense) {
  BsdListDemuxer d;
  Pcb* a = d.insert(key(1));
  Pcb* b = d.insert(key(2));
  EXPECT_EQ(a->conn_id + 1, b->conn_id);
}

}  // namespace
}  // namespace tcpdemux::core
