// ShardedDemuxer semantics: RSS steering places every flow on its home
// shard, steering drift (indirection rewrites, seed rotation) arms the
// cross-shard fallback without losing or duplicating connections, and the
// aggregation surface (size, occupancy, merged telemetry) presents the
// shard fleet as one demuxer without double-counting.
#include "core/sharded_demuxer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/demux_registry.h"
#include "net/hashers.h"
#include "net/rss.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 2, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(10000 + (i % 50000))};
}

ShardedDemuxer make_sharded(std::uint32_t shards, const char* inner) {
  return ShardedDemuxer(ShardedDemuxer::Options{
      shards, *parse_demux_spec(inner)});
}

TEST(ShardedDemuxer, EveryKeyLandsOnItsHomeShard) {
  ShardedDemuxer demuxer = make_sharded(4, "flat16:64");
  for (std::uint32_t i = 0; i < 200; ++i) {
    ASSERT_NE(demuxer.insert(key(i)), nullptr);
  }
  EXPECT_EQ(demuxer.size(), 200u);
  // Walk every shard; each resident's steering hash must select exactly
  // the shard it sits on (PCBs never migrate, and steering never drifted).
  for (std::uint32_t s = 0; s < demuxer.shard_count(); ++s) {
    demuxer.shard(s).for_each_pcb([&](const Pcb& pcb) {
      EXPECT_EQ(demuxer.home_shard(pcb.key), s) << pcb.key.to_string();
    });
  }
}

TEST(ShardedDemuxer, SteadyStateLookupTouchesOnlyTheHomeShard) {
  ShardedDemuxer demuxer = make_sharded(4, "sequent:19:crc32");
  for (std::uint32_t i = 0; i < 100; ++i) demuxer.insert(key(i));
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_NE(demuxer.lookup(key(i)).pcb, nullptr);
  }
  for (std::uint32_t i = 100; i < 150; ++i) {
    EXPECT_EQ(demuxer.lookup(key(i)).pcb, nullptr);
  }
  // One parent lookup == exactly one shard lookup while steering is
  // stable: the shard ledgers must sum to the parent's ledger.
  std::uint64_t shard_lookups = 0;
  std::uint64_t shard_found = 0;
  for (std::uint32_t s = 0; s < demuxer.shard_count(); ++s) {
    shard_lookups += demuxer.shard(s).stats().lookups;
    shard_found += demuxer.shard(s).stats().found;
  }
  EXPECT_EQ(shard_lookups, demuxer.stats().lookups);
  EXPECT_EQ(shard_found, demuxer.stats().found);
  EXPECT_EQ(demuxer.cross_shard_hits(), 0u);
  EXPECT_FALSE(demuxer.misplaced_possible());
}

TEST(ShardedDemuxer, IndirectionRewriteKeepsReSteeredFlowReachable) {
  ShardedDemuxer demuxer = make_sharded(4, "flat16:64");
  for (std::uint32_t i = 0; i < 64; ++i) demuxer.insert(key(i));

  // Re-steer key(7)'s indirection entry to a different shard — the host
  // rebalancing a live table. Its PCB stays where it was inserted.
  const net::FlowKey victim = key(7);
  const std::uint32_t old_home = demuxer.home_shard(victim);
  const std::uint32_t hash = net::hash_flow(demuxer.steering(), victim);
  const std::uint32_t index = hash & (demuxer.indirection().entries() - 1);
  demuxer.set_indirection_entry(index, (old_home + 1) % 4);
  ASSERT_NE(demuxer.home_shard(victim), old_home);
  EXPECT_TRUE(demuxer.misplaced_possible());

  // The new home shard misses; the fallback sweep must still find it.
  const LookupResult r = demuxer.lookup(victim);
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_EQ(r.pcb->key, victim);
  EXPECT_GE(demuxer.cross_shard_hits(), 1u);

  // Re-inserting the re-steered key must still be rejected as a duplicate
  // even though its new home shard does not hold it.
  EXPECT_EQ(demuxer.insert(victim), nullptr);
  // And erase must find it across the drift.
  EXPECT_TRUE(demuxer.erase(victim));
  EXPECT_FALSE(demuxer.erase(victim));
}

TEST(ShardedDemuxer, SeedRotationLosesNoConnections) {
  ShardedDemuxer demuxer = make_sharded(4, "sequent:19:crc32");
  for (std::uint32_t i = 0; i < 200; ++i) demuxer.insert(key(i));
  demuxer.rotate_steering_seed();
  EXPECT_TRUE(demuxer.misplaced_possible());
  // Every established flow may now steer elsewhere; all must stay
  // reachable, and none may become insertable again.
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_NE(demuxer.lookup(key(i)).pcb, nullptr) << i;
    EXPECT_EQ(demuxer.insert(key(i)), nullptr) << i;
  }
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(demuxer.erase(key(i))) << i;
  }
  EXPECT_EQ(demuxer.size(), 0u);
  // The drained table disarms the fallback path: new flows start clean.
  EXPECT_FALSE(demuxer.misplaced_possible());
  demuxer.insert(key(1000));
  demuxer.reset_stats();
  demuxer.lookup(key(1000));
  std::uint64_t shard_lookups = 0;
  for (std::uint32_t s = 0; s < demuxer.shard_count(); ++s) {
    shard_lookups += demuxer.shard(s).stats().lookups;
  }
  EXPECT_EQ(shard_lookups, 1u);
}

TEST(ShardedDemuxer, OccupancyReportsPerShardSizes) {
  ShardedDemuxer demuxer = make_sharded(4, "flat:64");
  for (std::uint32_t i = 0; i < 100; ++i) demuxer.insert(key(i));
  const std::vector<std::size_t> occ = demuxer.occupancy();
  ASSERT_EQ(occ.size(), 4u);
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(occ[s], demuxer.shard(s).size());
    total += occ[s];
  }
  EXPECT_EQ(total, demuxer.size());
}

TEST(ShardedDemuxer, MergedTelemetryIsIdempotentAcrossRepeatedReads) {
  // The aggregation bugfix's demuxer-level regression: telemetry() builds
  // a fresh merged view per call, so reading it N times must return the
  // same counters N times — a merge into persistent parent state would
  // re-add every shard's already-synced counters on each read.
  ShardedDemuxer demuxer = make_sharded(4, "sequent:19:crc32");
  demuxer.enable_telemetry_histograms(true);
  for (std::uint32_t i = 0; i < 100; ++i) demuxer.insert(key(i));
  for (std::uint32_t i = 0; i < 300; ++i) demuxer.lookup(key(i % 150));
  for (std::uint32_t i = 0; i < 50; ++i) demuxer.erase(key(i));

  const report::Telemetry first = demuxer.telemetry();
  const report::Telemetry second = demuxer.telemetry();
  const report::Telemetry third = demuxer.telemetry();
  for (const report::Telemetry* t : {&second, &third}) {
    EXPECT_EQ(t->counters().lookups, first.counters().lookups);
    EXPECT_EQ(t->counters().found, first.counters().found);
    EXPECT_EQ(t->counters().cache_hits, first.counters().cache_hits);
    EXPECT_EQ(t->counters().inserts, first.counters().inserts);
    EXPECT_EQ(t->counters().erases, first.counters().erases);
    EXPECT_EQ(t->examined().count(), first.examined().count());
    EXPECT_EQ(t->examined().sum(), first.examined().sum());
  }

  // And the merged view equals the parent's own ledger exactly — shard
  // ledgers partition the parent's, nothing counted twice or dropped.
  EXPECT_EQ(first.counters().lookups, demuxer.stats().lookups);
  EXPECT_EQ(first.counters().found, demuxer.stats().found);
  EXPECT_EQ(first.counters().cache_hits, demuxer.stats().cache_hits);
  EXPECT_EQ(first.examined().sum(), demuxer.stats().pcbs_examined);
  EXPECT_EQ(first.counters().inserts, 100u);
  EXPECT_EQ(first.counters().erases, 50u);
}

TEST(ShardedDemuxer, RegistryBuildsShardedSpecs) {
  const auto config = parse_demux_spec("sharded:4:flat16:64:crc32");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->algorithm, Algorithm::kSharded);
  EXPECT_EQ(config->shards, 4u);
  const auto demuxer = make_demuxer(*config);
  ASSERT_NE(demuxer, nullptr);
  auto* sharded = dynamic_cast<ShardedDemuxer*>(demuxer.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shard_count(), 4u);
  EXPECT_NE(sharded->name().find("sharded(4x"), std::string::npos)
      << sharded->name();
}

TEST(ShardedDemuxer, WildcardLookupResolvesAcrossShards) {
  ShardedDemuxer demuxer = make_sharded(4, "sequent:19:crc32");
  for (std::uint32_t i = 0; i < 32; ++i) demuxer.insert(key(i));
  // A fully wildcarded listener probe has no meaningful steering hash;
  // the sweep must still find the best (exact) match wherever it lives.
  const LookupResult exact = demuxer.lookup_wildcard(key(5));
  ASSERT_NE(exact.pcb, nullptr);
  EXPECT_EQ(exact.pcb->key, key(5));
  const LookupResult miss = demuxer.lookup_wildcard(key(9999));
  EXPECT_EQ(miss.pcb, nullptr);
}

TEST(ShardedDemuxer, ShardCountOneDegeneratesToInner) {
  ShardedDemuxer demuxer = make_sharded(1, "flat16:64");
  for (std::uint32_t i = 0; i < 50; ++i) demuxer.insert(key(i));
  EXPECT_EQ(demuxer.shard_count(), 1u);
  EXPECT_EQ(demuxer.shard(0).size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(demuxer.home_shard(key(i)), 0u);
  }
}

}  // namespace
}  // namespace tcpdemux::core
