#include "core/sequent_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

SequentDemuxer::Options opts(std::uint32_t chains, bool cache = true) {
  return SequentDemuxer::Options{chains, net::HasherKind::kCrc32, cache};
}

TEST(Sequent, InsertAndLookup) {
  SequentDemuxer d(opts(19));
  Pcb* p = d.insert(key(1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(d.lookup(key(1)).pcb, p);
}

TEST(Sequent, ZeroChainsThrows) {
  EXPECT_THROW(SequentDemuxer(opts(0)), std::invalid_argument);
}

TEST(Sequent, DefaultIsNineteenChains) {
  SequentDemuxer d;
  EXPECT_EQ(d.chains(), 19u);
}

TEST(Sequent, ChainSizesSumToSize) {
  SequentDemuxer d(opts(19));
  for (std::uint16_t p = 1; p <= 100; ++p) d.insert(key(p));
  const auto sizes = d.chain_sizes();
  EXPECT_EQ(sizes.size(), 19u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            100u);
  EXPECT_EQ(d.size(), 100u);
}

TEST(Sequent, PerChainCacheHitCostsOne) {
  SequentDemuxer d(opts(19));
  for (std::uint16_t p = 1; p <= 100; ++p) d.insert(key(p));
  (void)d.lookup(key(42));
  const auto r = d.lookup(key(42));
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.examined, 1u);
}

TEST(Sequent, MissScansOnlyOwnChain) {
  SequentDemuxer d(opts(19));
  for (std::uint16_t p = 1; p <= 100; ++p) d.insert(key(p));
  const auto sizes = d.chain_sizes();
  const std::size_t longest = *std::max_element(sizes.begin(), sizes.end());
  // Any lookup may touch at most cache-probe + its chain length.
  for (std::uint16_t p = 1; p <= 100; ++p) {
    const auto r = d.lookup(key(p));
    ASSERT_NE(r.pcb, nullptr);
    EXPECT_LE(r.examined, longest + 1);
  }
}

TEST(Sequent, CachesAreIndependentPerChain) {
  SequentDemuxer d(opts(4));
  // Find two keys in different chains.
  Pcb* a = d.insert(key(1));
  std::uint16_t other = 2;
  while (net::hash_chain(net::HasherKind::kCrc32, key(other), 4) ==
         net::hash_chain(net::HasherKind::kCrc32, key(1), 4)) {
    ++other;
  }
  Pcb* b = d.insert(key(other));
  (void)d.lookup(key(1));
  (void)d.lookup(key(other));
  // Both chain caches now hold their own PCB; both hits cost 1.
  EXPECT_EQ(d.lookup(key(1)).examined, 1u);
  EXPECT_EQ(d.lookup(key(other)).examined, 1u);
  EXPECT_EQ(d.lookup(key(1)).pcb, a);
  EXPECT_EQ(d.lookup(key(other)).pcb, b);
}

TEST(Sequent, NoCacheOptionDisablesCaching) {
  SequentDemuxer d(SequentDemuxer::Options{1, net::HasherKind::kCrc32, false});
  for (std::uint16_t p = 1; p <= 5; ++p) d.insert(key(p));
  (void)d.lookup(key(1));
  const auto r = d.lookup(key(1));  // would be a cache hit if enabled
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.examined, 5u);  // full scan to the tail every time
}

TEST(Sequent, SingleChainWithCacheBehavesLikeBsd) {
  SequentDemuxer d(opts(1));
  for (std::uint16_t p = 1; p <= 10; ++p) d.insert(key(p));
  (void)d.lookup(key(1));  // scan 10 (cache empty)
  EXPECT_EQ(d.lookup(key(1)).examined, 1u);        // cache hit
  EXPECT_EQ(d.lookup(key(10)).examined, 1u + 1u);  // probe + head
}

TEST(Sequent, EraseInvalidatesOwnChainCache) {
  SequentDemuxer d(opts(19));
  d.insert(key(1));
  (void)d.lookup(key(1));
  EXPECT_TRUE(d.erase(key(1)));
  EXPECT_EQ(d.lookup(key(1)).pcb, nullptr);
  EXPECT_EQ(d.size(), 0u);
}

TEST(Sequent, DuplicateInsertRejected) {
  SequentDemuxer d(opts(19));
  EXPECT_NE(d.insert(key(1)), nullptr);
  EXPECT_EQ(d.insert(key(1)), nullptr);
}

TEST(Sequent, NameReflectsConfiguration) {
  SequentDemuxer d(opts(19));
  EXPECT_EQ(d.name(), "sequent(h=19,crc32)");
  SequentDemuxer nc(SequentDemuxer::Options{7, net::HasherKind::kXorFold,
                                            false});
  EXPECT_EQ(nc.name(), "sequent(h=7,xor_fold,nocache)");
}

TEST(Sequent, WildcardLookupFindsListenerAcrossChains) {
  SequentDemuxer d(opts(19));
  d.insert(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                        net::Ipv4Addr::any(), 0});
  for (std::uint16_t p = 1; p <= 20; ++p) d.insert(key(p));
  const auto r = d.lookup_wildcard(
      net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                   net::Ipv4Addr(99, 9, 9, 9), 555});
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_TRUE(r.pcb->key.foreign_addr.is_any());
}

TEST(Sequent, WildcardLookupPrefersExactMatch) {
  SequentDemuxer d(opts(19));
  d.insert(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                        net::Ipv4Addr::any(), 0});
  Pcb* exact = d.insert(key(3));
  const auto r = d.lookup_wildcard(key(3));
  EXPECT_EQ(r.pcb, exact);
}

TEST(Sequent, ForEachVisitsAllChains) {
  SequentDemuxer d(opts(19));
  for (std::uint16_t p = 1; p <= 57; ++p) d.insert(key(p));
  std::size_t count = 0;
  d.for_each_pcb([&](const Pcb&) { ++count; });
  EXPECT_EQ(count, 57u);
}

TEST(Sequent, ManyChainsShortenSearch) {
  // The §3.5 observation: more chains, shorter scans. Compare mean
  // examined over a uniform sweep for H=1 vs H=101.
  const auto sweep = [](std::uint32_t chains) {
    SequentDemuxer d(opts(chains));
    for (std::uint16_t p = 1; p <= 500; ++p) d.insert(key(p));
    for (std::uint16_t p = 1; p <= 500; ++p) (void)d.lookup(key(p));
    return d.stats().mean_examined();
  };
  const double h1 = sweep(1);
  const double h101 = sweep(101);
  EXPECT_GT(h1, 100.0);
  EXPECT_LT(h101, 10.0);
}

}  // namespace
}  // namespace tcpdemux::core
