// RcuSequentDemuxer: single-threaded semantics (must match SequentDemuxer
// exactly), batch lookups, epoch-based reclamation, and read-mostly
// concurrent behavior.
#include "core/rcu_demuxer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sequent_hash.h"

namespace tcpdemux::core {
namespace {

net::FlowKey key(std::uint32_t i) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, static_cast<std::uint8_t>(i >> 8),
                                    static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(20000 + (i % 20000))};
}

RcuSequentDemuxer::Options opts(std::uint32_t chains, bool cache = true) {
  return RcuSequentDemuxer::Options{chains, net::HasherKind::kCrc32, cache};
}

TEST(RcuDemuxer, ZeroChainsThrows) {
  EXPECT_THROW(RcuSequentDemuxer(opts(0)), std::invalid_argument);
}

TEST(RcuDemuxer, SingleThreadedSemantics) {
  RcuSequentDemuxer d(opts(19));
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  EXPECT_EQ(d.insert(key(0)), nullptr);  // duplicate
  EXPECT_EQ(d.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto r = d.lookup(key(i));
    ASSERT_NE(r.pcb, nullptr);
    EXPECT_EQ(r.pcb->key, key(i));
  }
  (void)d.lookup(key(42));  // prime key 42's chain cache
  const auto warm = d.lookup(key(42));
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.examined, 1u);
  EXPECT_TRUE(d.erase(key(42)));
  EXPECT_FALSE(d.erase(key(42)));
  EXPECT_EQ(d.lookup(key(42)).pcb, nullptr);
}

TEST(RcuDemuxer, ExaminedCountsMatchSequentExactly) {
  // The RCU demuxer is the Sequent algorithm with a different memory
  // discipline; single-threaded, every lookup must cost the same.
  RcuSequentDemuxer rcu(opts(19));
  SequentDemuxer seq(
      SequentDemuxer::Options{19, net::HasherKind::kCrc32, true});
  for (std::uint32_t i = 0; i < 200; ++i) {
    ASSERT_NE(rcu.insert(key(i)), nullptr);
    ASSERT_NE(seq.insert(key(i)), nullptr);
  }
  std::uint32_t state = 12345;
  for (int op = 0; op < 2000; ++op) {
    state = state * 1664525u + 1013904223u;
    const net::FlowKey k = key(state % 250);  // ~20% misses
    const auto a = rcu.lookup(k);
    const auto b = seq.lookup(k);
    EXPECT_EQ(a.pcb == nullptr, b.pcb == nullptr);
    if (a.pcb != nullptr) {
      EXPECT_EQ(a.pcb->key, b.pcb->key);
    }
    EXPECT_EQ(a.examined, b.examined) << "op " << op;
    EXPECT_EQ(a.cache_hit, b.cache_hit) << "op " << op;
  }
}

TEST(RcuDemuxer, NoCacheOptionDisablesCacheProbe) {
  RcuSequentDemuxer d(opts(19, /*cache=*/false));
  ASSERT_NE(d.insert(key(7)), nullptr);
  (void)d.lookup(key(7));
  const auto again = d.lookup(key(7));
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(d.name(), "rcu(h=19,crc32,nocache)");
}

TEST(RcuDemuxer, BatchLookupMatchesScalarLookup) {
  RcuSequentDemuxer batch_d(opts(19));
  RcuSequentDemuxer scalar_d(opts(19));
  constexpr std::uint32_t kKeys = 300;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_NE(batch_d.insert(key(i)), nullptr);
    ASSERT_NE(scalar_d.insert(key(i)), nullptr);
  }
  std::vector<net::FlowKey> burst;
  std::uint32_t state = 99;
  for (int i = 0; i < 257; ++i) {  // deliberately not a multiple of the chunk
    state = state * 1664525u + 1013904223u;
    burst.push_back(key(state % (kKeys + 50)));  // some misses
  }
  std::vector<LookupResult> results(burst.size());
  batch_d.lookup_batch(burst, results);
  std::uint64_t batch_examined = 0;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const auto scalar = scalar_d.lookup(burst[i]);
    EXPECT_EQ(results[i].pcb == nullptr, scalar.pcb == nullptr) << i;
    if (results[i].pcb != nullptr) {
      EXPECT_EQ(results[i].pcb->key, burst[i]);
    }
    EXPECT_EQ(results[i].examined, scalar.examined) << i;
    EXPECT_EQ(results[i].cache_hit, scalar.cache_hit) << i;
    batch_examined += results[i].examined;
  }
  EXPECT_EQ(batch_d.lookups(), burst.size());
  EXPECT_EQ(batch_d.pcbs_examined(), batch_examined);
}

TEST(RcuDemuxer, EmptyBatchIsANoOp) {
  RcuSequentDemuxer d(opts(19));
  d.lookup_batch({}, {});
  EXPECT_EQ(d.lookups(), 0u);
}

TEST(RcuDemuxer, EraseRetiresAndEpochAdvancesReclaim) {
  RcuSequentDemuxer d(opts(19));
  for (std::uint32_t i = 0; i < 64; ++i) ASSERT_NE(d.insert(key(i)), nullptr);
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_TRUE(d.erase(key(i)));
  EXPECT_EQ(d.size(), 0u);
  auto& em = d.epoch_manager();
  EXPECT_EQ(em.retired_count(), 64u);
  em.drain();  // no readers are active, so everything must free
  EXPECT_EQ(em.freed_count(), 64u);
  EXPECT_EQ(em.pending_count(), 0u);
}

TEST(RcuDemuxer, ReclamationIsDeferredWhileAReaderIsPinned) {
  RcuSequentDemuxer d(opts(19));
  ASSERT_NE(d.insert(key(1)), nullptr);
  auto& em = d.epoch_manager();
  {
    const EpochManager::Guard guard(em);
    EXPECT_TRUE(d.erase(key(1)));
    // Two try_advance calls can retire at most two epochs; the pinned
    // guard blocks the second, so the node must still be in limbo.
    em.try_advance();
    em.try_advance();
    EXPECT_EQ(em.freed_count(), 0u);
    EXPECT_EQ(em.pending_count(), 1u);
  }
  em.drain();
  EXPECT_EQ(em.freed_count(), 1u);
}

TEST(RcuDemuxer, WildcardMirrorsSequentSemantics) {
  RcuSequentDemuxer d(opts(19));
  const net::FlowKey listener{net::Ipv4Addr(10, 0, 0, 1), 1521,
                              net::Ipv4Addr::any(), 0};
  ASSERT_NE(d.insert(listener), nullptr);
  Pcb* exact = d.insert(key(5));
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(d.lookup_wildcard(key(5)).pcb, exact);
  const auto wild = d.lookup_wildcard(key(900));
  ASSERT_NE(wild.pcb, nullptr);
  EXPECT_EQ(wild.pcb->key, listener);
  net::FlowKey other_port = key(5);
  other_port.local_port = 80;
  EXPECT_EQ(d.lookup_wildcard(other_port).pcb, nullptr);
}

TEST(RcuDemuxer, ForEachSeesExactlyStoredKeys) {
  RcuSequentDemuxer d(opts(19));
  for (std::uint32_t i = 0; i < 50; ++i) d.insert(key(i));
  std::size_t visited = 0;
  d.for_each_pcb([&](const Pcb& p) {
    ++visited;
    EXPECT_EQ(p.key.local_port, 1521);
  });
  EXPECT_EQ(visited, 50u);
}

TEST(RcuDemuxer, ParallelLookupsAllSucceed) {
  RcuSequentDemuxer d(opts(101));
  constexpr std::uint32_t kKeys = 2000;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t) * 2654435761u + 1u;
      for (int i = 0; i < kIterations; ++i) {
        state = state * 1664525u + 1013904223u;
        const auto r = d.lookup(key(state % kKeys));
        if (r.pcb == nullptr) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(d.lookups(), static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(RcuDemuxer, ParallelBatchLookupsAllSucceed) {
  RcuSequentDemuxer d(opts(101));
  constexpr std::uint32_t kKeys = 1000;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  constexpr int kThreads = 4;
  constexpr int kBursts = 500;
  constexpr std::size_t kBurst = 32;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t + 1) * 2654435761u;
      std::vector<net::FlowKey> burst(kBurst);
      std::vector<LookupResult> results(kBurst);
      for (int b = 0; b < kBursts; ++b) {
        for (auto& k : burst) {
          state = state * 1664525u + 1013904223u;
          k = key(state % kKeys);
        }
        d.lookup_batch(burst, results);
        for (std::size_t i = 0; i < kBurst; ++i) {
          if (results[i].pcb == nullptr ||
              !(results[i].pcb->key == burst[i])) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(RcuDemuxer, ReadersSurviveConcurrentEraseOfTheirKeys) {
  // Readers hammer a key range a writer is concurrently erasing; every
  // returned PCB must match the requested key (a use-after-free or a
  // torn unlink would surface here, and under TSan/ASan as a report).
  RcuSequentDemuxer d(opts(19));
  constexpr std::uint32_t kKeys = 400;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_NE(d.insert(key(i)), nullptr);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::uint32_t state = static_cast<std::uint32_t>(t + 1) * 40503u;
      while (!stop.load(std::memory_order_relaxed)) {
        state = state * 1664525u + 1013904223u;
        const net::FlowKey k = key(state % kKeys);
        // Dereferencing the returned Pcb* requires a guard entered
        // before the lookup (the header's lifetime contract); scoped per
        // iteration so reclamation can progress between probes.
        EpochManager::Guard g(d.epoch_manager());
        const auto r = d.lookup(k);
        if (r.pcb != nullptr && !(r.pcb->key == k)) mismatches.fetch_add(1);
      }
    });
  }
  for (std::uint32_t round = 0; round < 30; ++round) {
    for (std::uint32_t i = 0; i < kKeys; ++i) EXPECT_TRUE(d.erase(key(i)));
    EXPECT_EQ(d.size(), 0u);
    for (std::uint32_t i = 0; i < kKeys; ++i) {
      ASSERT_NE(d.insert(key(i)), nullptr);
    }
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0u);
  d.epoch_manager().drain();
  EXPECT_EQ(d.epoch_manager().pending_count(), 0u);
  EXPECT_EQ(d.epoch_manager().retired_count(), 30u * kKeys);
}

TEST(RcuDemuxer, ConnIdsUniqueUnderContention) {
  RcuSequentDemuxer d(opts(101));
  constexpr int kThreads = 8;
  constexpr std::uint32_t kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint32_t base = static_cast<std::uint32_t>(t) * kPerThread;
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        d.insert(key(base + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<bool> seen(kThreads * kPerThread, false);
  std::size_t duplicates = 0;
  for (std::uint32_t i = 0; i < kThreads * kPerThread; ++i) {
    const auto r = d.lookup(key(i));
    ASSERT_NE(r.pcb, nullptr);
    const auto id = static_cast<std::size_t>(r.pcb->conn_id);
    ASSERT_LT(id, seen.size());
    if (seen[id]) ++duplicates;
    seen[id] = true;
  }
  EXPECT_EQ(duplicates, 0u);
}

TEST(EpochManagerTest, GuardNestingPinsOnce) {
  EpochManager em;
  {
    const EpochManager::Guard outer(em);
    {
      const EpochManager::Guard inner(em);  // free: same slot, nested
      EXPECT_EQ(em.registered_threads(), 1u);
    }
    // Still pinned by the outer guard: retired nodes must not free.
    int* x = new int(7);
    em.retire(x, [](void* p) { delete static_cast<int*>(p); });
    em.try_advance();
    em.try_advance();
    EXPECT_EQ(em.freed_count(), 0u);
  }
  em.drain();
  EXPECT_EQ(em.freed_count(), 1u);
}

TEST(EpochManagerTest, ManyThreadsRegisterIndependentSlots) {
  EpochManager em;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const EpochManager::Guard guard(em);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(em.registered_threads(), 8u);
  EXPECT_TRUE(em.try_advance());  // all slots inactive, nothing blocks
}

}  // namespace
}  // namespace tcpdemux::core
