#include "report/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tcpdemux::report {
namespace {

TEST(AsciiPlot, RendersGlyphsAndLegend) {
  Series s;
  s.label = "bsd";
  s.glyph = 'B';
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  std::ostringstream os;
  PlotOptions opts;
  opts.title = "test plot";
  plot(os, {s}, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("bsd"), std::string::npos);
  EXPECT_NE(out.find("test plot"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesAllAppear) {
  Series a{"up", 'u', {0, 1, 2}, {0, 1, 2}};
  Series b{"down", 'd', {0, 1, 2}, {2, 1, 0}};
  std::ostringstream os;
  plot(os, {a, b}, PlotOptions{});
  EXPECT_NE(os.str().find('u'), std::string::npos);
  EXPECT_NE(os.str().find('d'), std::string::npos);
}

TEST(AsciiPlot, HighestPointOnTopRow) {
  Series s{"line", '*', {0, 1}, {0, 100}};
  std::ostringstream os;
  PlotOptions opts;
  opts.height = 10;
  plot(os, {s}, opts);
  std::istringstream is(os.str());
  std::string first_row;
  std::getline(is, first_row);
  EXPECT_NE(first_row.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDoesNotCrash) {
  std::ostringstream os;
  plot(os, {Series{"empty", 'e', {}, {}}}, PlotOptions{});
  EXPECT_FALSE(os.str().empty());
}

TEST(PrintBars, RendersLabelsAndScaledBars) {
  std::ostringstream os;
  print_bars(os, {"1", "2-3", "4-7"}, {10.0, 40.0, 20.0}, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("2-3"), std::string::npos);
  // The max value gets the full-width bar.
  EXPECT_NE(out.find(std::string(40, '#')), std::string::npos);
  EXPECT_NE(out.find("40"), std::string::npos);
}

TEST(PrintBars, HandlesAllZeroValues) {
  std::ostringstream os;
  print_bars(os, {"a", "b"}, {0.0, 0.0});
  EXPECT_FALSE(os.str().empty());
}

TEST(PrintBars, HandlesEmptyInput) {
  std::ostringstream os;
  print_bars(os, {}, {});
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiPlot, AxisAnnotationsPresent) {
  Series s{"s", '*', {0, 50}, {0, 2000}};
  std::ostringstream os;
  PlotOptions opts;
  opts.x_label = "users";
  plot(os, {s}, opts);
  EXPECT_NE(os.str().find("users"), std::string::npos);
  EXPECT_NE(os.str().find("2000.0"), std::string::npos);
  EXPECT_NE(os.str().find("50.0"), std::string::npos);
}

}  // namespace
}  // namespace tcpdemux::report
