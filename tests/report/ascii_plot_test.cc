#include "report/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tcpdemux::report {
namespace {

TEST(AsciiPlot, RendersGlyphsAndLegend) {
  Series s;
  s.label = "bsd";
  s.glyph = 'B';
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  std::ostringstream os;
  PlotOptions opts;
  opts.title = "test plot";
  plot(os, {s}, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("bsd"), std::string::npos);
  EXPECT_NE(out.find("test plot"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesAllAppear) {
  Series a{"up", 'u', {0, 1, 2}, {0, 1, 2}};
  Series b{"down", 'd', {0, 1, 2}, {2, 1, 0}};
  std::ostringstream os;
  plot(os, {a, b}, PlotOptions{});
  EXPECT_NE(os.str().find('u'), std::string::npos);
  EXPECT_NE(os.str().find('d'), std::string::npos);
}

TEST(AsciiPlot, HighestPointOnTopRow) {
  Series s{"line", '*', {0, 1}, {0, 100}};
  std::ostringstream os;
  PlotOptions opts;
  opts.height = 10;
  plot(os, {s}, opts);
  std::istringstream is(os.str());
  std::string first_row;
  std::getline(is, first_row);
  EXPECT_NE(first_row.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDoesNotCrash) {
  std::ostringstream os;
  plot(os, {Series{"empty", 'e', {}, {}}}, PlotOptions{});
  EXPECT_FALSE(os.str().empty());
}

TEST(PrintBars, RendersLabelsAndScaledBars) {
  std::ostringstream os;
  print_bars(os, {"1", "2-3", "4-7"}, {10.0, 40.0, 20.0}, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("2-3"), std::string::npos);
  // The max value gets the full-width bar.
  EXPECT_NE(out.find(std::string(40, '#')), std::string::npos);
  EXPECT_NE(out.find("40"), std::string::npos);
}

TEST(PrintBars, HandlesAllZeroValues) {
  std::ostringstream os;
  print_bars(os, {"a", "b"}, {0.0, 0.0});
  EXPECT_FALSE(os.str().empty());
}

TEST(PrintBars, HandlesEmptyInput) {
  std::ostringstream os;
  print_bars(os, {}, {});
  EXPECT_TRUE(os.str().empty());
}

// Regression: the range scan and raster loops iterated x.size() while
// indexing y[i], reading past the end of a shorter y (caught by ASan).
// Mismatched series must render just the pairs that exist.
TEST(AsciiPlot, MismatchedSeriesLengthsClampToShorter) {
  Series s{"short-y", '#', {0, 1, 2, 3, 4, 5, 6, 7}, {1, 2}};
  std::ostringstream os;
  plot(os, {s}, PlotOptions{});
  // Count glyphs in the grid only (the legend repeats the glyph once).
  const std::string out = os.str().substr(0, os.str().find("legend"));
  std::size_t glyphs = 0;
  for (const char c : out) glyphs += c == '#';
  EXPECT_GE(glyphs, 1u);
  EXPECT_LE(glyphs, 2u);  // only the two complete (x, y) pairs plot

  // The mirror case — y longer than x — must also stay in bounds.
  Series t{"short-x", '%', {0, 1}, {1, 2, 3, 4, 5, 6, 7, 8}};
  std::ostringstream os2;
  plot(os2, {t}, PlotOptions{});
  EXPECT_NE(os2.str().find('%'), std::string::npos);
}

// Regression: with y_from_zero (the default) an all-negative series got the
// axis range [0, max<0] — every point clamped onto one edge row. The plot
// must fall back to the true y-range and spread the points out.
TEST(AsciiPlot, AllNegativeYFallsBackToTrueRange) {
  Series s{"neg", 'n', {0, 1, 2, 3}, {-40, -30, -20, -10}};
  std::ostringstream os;
  PlotOptions opts;
  opts.height = 8;
  ASSERT_TRUE(opts.y_from_zero);
  plot(os, {s}, opts);

  std::istringstream is(os.str());
  std::string line;
  std::size_t rows_with_glyph = 0;
  bool axis_shows_negative = false;
  while (std::getline(is, line)) {
    if (line.find('n') != std::string::npos &&
        line.find("legend") == std::string::npos) {
      ++rows_with_glyph;
    }
    if (line.find("-40.0") != std::string::npos) axis_shows_negative = true;
  }
  EXPECT_GE(rows_with_glyph, 3u);  // points spread, not clamped to one row
  EXPECT_TRUE(axis_shows_negative);
}

TEST(AsciiPlot, AxisAnnotationsPresent) {
  Series s{"s", '*', {0, 50}, {0, 2000}};
  std::ostringstream os;
  PlotOptions opts;
  opts.x_label = "users";
  plot(os, {s}, opts);
  EXPECT_NE(os.str().find("users"), std::string::npos);
  EXPECT_NE(os.str().find("2000.0"), std::string::npos);
  EXPECT_NE(os.str().find("50.0"), std::string::npos);
}

}  // namespace
}  // namespace tcpdemux::report
