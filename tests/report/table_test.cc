#include "report/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tcpdemux::report {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1001.04, 1), "1001.0");
  EXPECT_EQ(fmt(52.9766, 1), "53.0");
  EXPECT_EQ(fmt(0.5, 0), "0");  // banker-free snprintf rounding: 0.5 -> 0
  EXPECT_EQ(fmt(2.5, 2), "2.50");
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(fmt_sci(1.9e-35, 1), "1.9e-35");
  EXPECT_EQ(fmt_sci(0.015444, 2), "1.54e-02");
}

TEST(Table, AlignsColumns) {
  Table t({"alg", "cost"});
  t.add_row({"bsd", "1001.0"});
  t.add_row({"sequent", "53.0"});
  const std::string s = t.to_string();
  // Header present, rule present, rows present.
  EXPECT_NE(s.find("alg"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("sequent"), std::string::npos);
  // Every line has the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, HandlesShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Table, RuleInsertedBetweenSections) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Two rules total: one under the header, one between rows.
  std::size_t rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("---") != std::string::npos) ++rules;
  }
  EXPECT_EQ(rules, 2u);
}

}  // namespace
}  // namespace tcpdemux::report
