// Tests for the telemetry registry: histogram bucketing/percentiles,
// interval deltas, the counters path, latency sampling, and JSON export.
#include "report/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "report/telemetry_json.h"

namespace tcpdemux::report {
namespace {

TEST(Log2Histogram, BucketsByBitWidth) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.bucket(0), 1U);  // {0}
  EXPECT_EQ(h.bucket(1), 1U);  // {1}
  EXPECT_EQ(h.bucket(2), 2U);  // {2,3}
  EXPECT_EQ(h.bucket(3), 2U);  // {4..7}
  EXPECT_EQ(h.bucket(4), 1U);  // {8..15}
  EXPECT_EQ(h.count(), 7U);
  EXPECT_EQ(h.sum(), 25U);
  EXPECT_EQ(h.max(), 8U);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0 / 7.0);
}

TEST(Log2Histogram, BucketUpperBounds) {
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0U);
  EXPECT_EQ(Log2Histogram::bucket_upper(1), 1U);
  EXPECT_EQ(Log2Histogram::bucket_upper(2), 3U);
  EXPECT_EQ(Log2Histogram::bucket_upper(10), 1023U);
  EXPECT_EQ(Log2Histogram::bucket_upper(64), ~0ULL);
}

TEST(Log2Histogram, PercentileUpperWalksCumulativeCounts) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(1);   // bucket 1, upper bound 1
  for (int i = 0; i < 9; ++i) h.add(3);    // bucket 2, upper bound 3
  h.add(100);                              // bucket 7, upper bound 127
  EXPECT_EQ(h.percentile_upper(0.50), 1U);
  EXPECT_EQ(h.percentile_upper(0.90), 1U);
  EXPECT_EQ(h.percentile_upper(0.95), 3U);
  EXPECT_EQ(h.percentile_upper(0.99), 3U);
  EXPECT_EQ(h.percentile_upper(1.0), 127U);
  EXPECT_EQ(Log2Histogram().percentile_upper(0.5), 0U);
}

TEST(Log2Histogram, SinceSubtractsPerBucket) {
  Log2Histogram early;
  early.add(1);
  early.add(4);
  Log2Histogram late = early;
  late.add(4);
  late.add(9);
  const Log2Histogram delta = late.since(early);
  EXPECT_EQ(delta.count(), 2U);
  EXPECT_EQ(delta.sum(), 13U);
  EXPECT_EQ(delta.bucket(3), 1U);
  EXPECT_EQ(delta.bucket(4), 1U);
  EXPECT_EQ(delta.max(), 15U);  // upper bound of highest occupied bucket
}

TEST(Telemetry, CountersAlwaysOnHistogramsOptIn) {
  Telemetry t;
  t.on_lookup(3, /*found=*/true, /*cache_hit=*/false);
  EXPECT_EQ(t.counters().lookups, 1U);
  EXPECT_EQ(t.counters().found, 1U);
  EXPECT_EQ(t.examined().count(), 0U);  // histograms default off

  t.enable_histograms(true);
  t.on_lookup(5, /*found=*/true, /*cache_hit=*/false);
  t.on_lookup(1, /*found=*/true, /*cache_hit=*/true);
  EXPECT_EQ(t.counters().lookups, 3U);
  EXPECT_EQ(t.counters().cache_hits, 1U);
  EXPECT_EQ(t.examined().count(), 2U);
  EXPECT_EQ(t.examined().sum(), 6U);
  // Cache hits never enter the miss-path probe-length histogram.
  EXPECT_EQ(t.probe_length().count(), 1U);
  EXPECT_EQ(t.probe_length().sum(), 5U);
}

TEST(Telemetry, ResetKeepsEnableFlag) {
  Telemetry t;
  t.enable_histograms(true);
  t.on_lookup(2, true, false);
  t.on_insert();
  t.reset();
  EXPECT_EQ(t.counters().lookups, 0U);
  EXPECT_EQ(t.counters().inserts, 0U);
  EXPECT_EQ(t.examined().count(), 0U);
  EXPECT_TRUE(t.histograms_enabled());
}

TEST(Telemetry, IntervalSampleDeltasAndOccupancy) {
  Telemetry t;
  t.enable_histograms(true);
  for (int i = 0; i < 10; ++i) t.on_lookup(1, true, true);
  const Telemetry prev = t;
  for (int i = 0; i < 10; ++i) t.on_lookup(3, true, false);

  const std::vector<std::size_t> occ = {4, 0, 8, 4};
  const TelemetrySample s = interval_sample(20, t, prev, occ);
  EXPECT_EQ(s.events, 20U);
  EXPECT_EQ(s.lookups, 10U);
  EXPECT_DOUBLE_EQ(s.mean_examined, 3.0);
  EXPECT_EQ(s.p50, 3U);
  EXPECT_EQ(s.p99, 3U);
  EXPECT_DOUBLE_EQ(s.hit_rate, 0.0);  // all interval lookups missed caches
  EXPECT_EQ(s.occ_max, 8U);
  EXPECT_DOUBLE_EQ(s.occ_mean, 4.0);
  EXPECT_DOUBLE_EQ(s.occ_skew, 2.0);
}

TEST(LatencySampler, SamplesOneInNAndSubtractsOverhead) {
  LatencySampler off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.should_sample());

  LatencySampler s(4);
  EXPECT_TRUE(s.enabled());
  int sampled = 0;
  for (int i = 0; i < 12; ++i) {
    if (s.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);

  s.record_ns(s.overhead_ns() + 100);
  EXPECT_EQ(s.histogram().count(), 1U);
  EXPECT_EQ(s.histogram().sum(), 100U);
  s.record_ns(0);  // below the overhead floor clamps to 0, never wraps
  EXPECT_EQ(s.histogram().sum(), 100U);
}

TEST(TelemetryJson, ExportsSchemaFields) {
  TelemetryReport r;
  r.source = "test";
  r.algorithm = "bsd";
  r.telemetry.enable_histograms(true);
  r.telemetry.on_lookup(2, true, false);
  r.telemetry.on_insert();
  r.occupancy = {1, 3};
  r.series.interval = 8;
  r.series.samples.push_back(
      interval_sample(8, r.telemetry, Telemetry{}, r.occupancy));

  const std::string json = telemetry_to_json(r);
  EXPECT_NE(json.find("\"schema\": \"tcpdemux.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"bsd\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"examined\""), std::string::npos);
  EXPECT_NE(json.find("\"probe_length\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"partitions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"interval\": 8"), std::string::npos);

  const std::vector<TelemetryReport> reports(2, r);
  const std::string array = telemetry_to_json(reports);
  EXPECT_EQ(array.front(), '[');
}

TEST(TelemetryJson, SeriesCsvHasHeaderAndRows) {
  TelemetrySeries series;
  series.interval = 4;
  TelemetrySample s;
  s.events = 4;
  s.lookups = 4;
  s.mean_examined = 1.5;
  series.samples.push_back(s);

  std::ostringstream os;
  write_series_csv(os, "bsd", series);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("algorithm,events,lookups,mean_examined"),
            std::string::npos);
  EXPECT_NE(csv.find("bsd,4,4,1.5"), std::string::npos);
}

TEST(Log2Histogram, MergeOfDisjointSplitsEqualsWhole) {
  // The property the sharded aggregation path rests on: recording a sample
  // stream split across N histograms and merging them back is bit-identical
  // to recording the whole stream into one histogram — count, sum, max,
  // every bucket, and therefore every nearest-rank percentile.
  constexpr std::size_t kShards = 4;
  Log2Histogram whole;
  Log2Histogram parts[kShards];
  std::uint64_t state = 0x243f6a8885a308d3ULL;  // deterministic xorshift
  for (int i = 0; i < 5000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    // Spread across 9 octaves so many buckets populate, including 0.
    const std::uint64_t value = state >> (55 - (i % 9));
    whole.add(value);
    parts[state % kShards].add(value);
  }
  Log2Histogram merged;
  for (const Log2Histogram& p : parts) merged.merge_from(p);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());
  EXPECT_EQ(merged.max(), whole.max());
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    EXPECT_EQ(merged.bucket(b), whole.bucket(b)) << "bucket " << b;
  }
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.percentile_upper(q), whole.percentile_upper(q)) << q;
  }
}

TEST(Log2Histogram, MergeFromEmptyAndIntoEmpty) {
  Log2Histogram loaded;
  loaded.add(5);
  loaded.add(9);
  Log2Histogram empty;
  loaded.merge_from(empty);  // no-op
  EXPECT_EQ(loaded.count(), 2u);
  EXPECT_EQ(loaded.sum(), 14u);
  EXPECT_EQ(loaded.max(), 9u);
  Log2Histogram target;
  target.merge_from(loaded);  // copy-equivalent
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.sum(), 14u);
  EXPECT_EQ(target.max(), 9u);
  EXPECT_EQ(target.percentile_upper(1.0), loaded.percentile_upper(1.0));
}

TEST(Telemetry, MergeFromAccumulatesEveryCounterAndHistogram) {
  Telemetry a;
  a.enable_histograms(true);
  a.on_lookup(3, true, false);
  a.on_lookup(1, true, true);
  a.on_insert();
  a.on_erase();
  a.on_shed();
  a.on_rehash();
  a.on_resize_start();
  a.on_resize_step(8, 24);
  a.on_resize_complete();

  Telemetry b;
  b.enable_histograms(true);
  b.on_lookup(7, false, false);
  b.on_insert();
  b.on_insert();
  b.on_resize_defer();

  Telemetry merged;
  merged.enable_histograms(true);
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.counters().lookups, 3u);
  EXPECT_EQ(merged.counters().found, 2u);
  EXPECT_EQ(merged.counters().cache_hits, 1u);
  EXPECT_EQ(merged.counters().inserts, 3u);
  EXPECT_EQ(merged.counters().erases, 1u);
  EXPECT_EQ(merged.counters().inserts_shed, 1u);
  EXPECT_EQ(merged.counters().rehashes, 1u);
  EXPECT_EQ(merged.counters().resizes_started, 1u);
  EXPECT_EQ(merged.counters().resizes_completed, 1u);
  EXPECT_EQ(merged.counters().resizes_deferred, 1u);
  EXPECT_EQ(merged.counters().resize_steps, 1u);
  EXPECT_EQ(merged.examined().count(), 3u);
  EXPECT_EQ(merged.examined().sum(), 11u);
  EXPECT_EQ(merged.probe_length().count(), 2u);  // cache hit excluded
  EXPECT_EQ(merged.resize_work().sum(), 8u);
  EXPECT_EQ(merged.migration_debt().sum(), 24u);
}

TEST(Telemetry, MergeIsIdempotentAcrossRepeatedReads) {
  // The shard-aggregation double-count regression. Per-shard registries
  // sync their lookup counters from the owning demuxer's ledger on every
  // telemetry() read (set_lookup_counters overwrites — reads are
  // idempotent per shard). The fleet view must merge those snapshots into
  // a FRESH target per read; merging into persistent parent state re-adds
  // every synced counter on each read and drifts without bound.
  Telemetry shard[3];
  for (std::uint64_t s = 0; s < 3; ++s) {
    // What a shard's telemetry() returns: ledger-synced lookup counters.
    shard[s].set_lookup_counters(100 * (s + 1), 60 * (s + 1), 10 * (s + 1));
    shard[s].on_insert();
  }
  const auto read_fleet = [&shard] {
    Telemetry fleet;  // fresh target per read — the fix
    for (const Telemetry& s : shard) fleet.merge_from(s);
    return fleet;
  };
  const Telemetry first = read_fleet();
  const Telemetry second = read_fleet();
  EXPECT_EQ(first.counters().lookups, 600u);
  EXPECT_EQ(first.counters().found, 360u);
  EXPECT_EQ(first.counters().cache_hits, 60u);
  EXPECT_EQ(first.counters().inserts, 3u);
  EXPECT_EQ(second.counters().lookups, first.counters().lookups);
  EXPECT_EQ(second.counters().found, first.counters().found);
  EXPECT_EQ(second.counters().inserts, first.counters().inserts);

  // The bug shape this pins down: a persistent accumulator doubles on the
  // second read. Kept as a demonstration that the assertion above is not
  // vacuous — this is exactly what merging into parent state produces.
  Telemetry sticky;
  for (const Telemetry& s : shard) sticky.merge_from(s);
  for (const Telemetry& s : shard) sticky.merge_from(s);
  EXPECT_EQ(sticky.counters().lookups, 1200u);  // double-counted
}

}  // namespace
}  // namespace tcpdemux::report
