// Tests for the telemetry registry: histogram bucketing/percentiles,
// interval deltas, the counters path, latency sampling, and JSON export.
#include "report/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "report/telemetry_json.h"

namespace tcpdemux::report {
namespace {

TEST(Log2Histogram, BucketsByBitWidth) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.bucket(0), 1U);  // {0}
  EXPECT_EQ(h.bucket(1), 1U);  // {1}
  EXPECT_EQ(h.bucket(2), 2U);  // {2,3}
  EXPECT_EQ(h.bucket(3), 2U);  // {4..7}
  EXPECT_EQ(h.bucket(4), 1U);  // {8..15}
  EXPECT_EQ(h.count(), 7U);
  EXPECT_EQ(h.sum(), 25U);
  EXPECT_EQ(h.max(), 8U);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0 / 7.0);
}

TEST(Log2Histogram, BucketUpperBounds) {
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0U);
  EXPECT_EQ(Log2Histogram::bucket_upper(1), 1U);
  EXPECT_EQ(Log2Histogram::bucket_upper(2), 3U);
  EXPECT_EQ(Log2Histogram::bucket_upper(10), 1023U);
  EXPECT_EQ(Log2Histogram::bucket_upper(64), ~0ULL);
}

TEST(Log2Histogram, PercentileUpperWalksCumulativeCounts) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(1);   // bucket 1, upper bound 1
  for (int i = 0; i < 9; ++i) h.add(3);    // bucket 2, upper bound 3
  h.add(100);                              // bucket 7, upper bound 127
  EXPECT_EQ(h.percentile_upper(0.50), 1U);
  EXPECT_EQ(h.percentile_upper(0.90), 1U);
  EXPECT_EQ(h.percentile_upper(0.95), 3U);
  EXPECT_EQ(h.percentile_upper(0.99), 3U);
  EXPECT_EQ(h.percentile_upper(1.0), 127U);
  EXPECT_EQ(Log2Histogram().percentile_upper(0.5), 0U);
}

TEST(Log2Histogram, SinceSubtractsPerBucket) {
  Log2Histogram early;
  early.add(1);
  early.add(4);
  Log2Histogram late = early;
  late.add(4);
  late.add(9);
  const Log2Histogram delta = late.since(early);
  EXPECT_EQ(delta.count(), 2U);
  EXPECT_EQ(delta.sum(), 13U);
  EXPECT_EQ(delta.bucket(3), 1U);
  EXPECT_EQ(delta.bucket(4), 1U);
  EXPECT_EQ(delta.max(), 15U);  // upper bound of highest occupied bucket
}

TEST(Telemetry, CountersAlwaysOnHistogramsOptIn) {
  Telemetry t;
  t.on_lookup(3, /*found=*/true, /*cache_hit=*/false);
  EXPECT_EQ(t.counters().lookups, 1U);
  EXPECT_EQ(t.counters().found, 1U);
  EXPECT_EQ(t.examined().count(), 0U);  // histograms default off

  t.enable_histograms(true);
  t.on_lookup(5, /*found=*/true, /*cache_hit=*/false);
  t.on_lookup(1, /*found=*/true, /*cache_hit=*/true);
  EXPECT_EQ(t.counters().lookups, 3U);
  EXPECT_EQ(t.counters().cache_hits, 1U);
  EXPECT_EQ(t.examined().count(), 2U);
  EXPECT_EQ(t.examined().sum(), 6U);
  // Cache hits never enter the miss-path probe-length histogram.
  EXPECT_EQ(t.probe_length().count(), 1U);
  EXPECT_EQ(t.probe_length().sum(), 5U);
}

TEST(Telemetry, ResetKeepsEnableFlag) {
  Telemetry t;
  t.enable_histograms(true);
  t.on_lookup(2, true, false);
  t.on_insert();
  t.reset();
  EXPECT_EQ(t.counters().lookups, 0U);
  EXPECT_EQ(t.counters().inserts, 0U);
  EXPECT_EQ(t.examined().count(), 0U);
  EXPECT_TRUE(t.histograms_enabled());
}

TEST(Telemetry, IntervalSampleDeltasAndOccupancy) {
  Telemetry t;
  t.enable_histograms(true);
  for (int i = 0; i < 10; ++i) t.on_lookup(1, true, true);
  const Telemetry prev = t;
  for (int i = 0; i < 10; ++i) t.on_lookup(3, true, false);

  const std::vector<std::size_t> occ = {4, 0, 8, 4};
  const TelemetrySample s = interval_sample(20, t, prev, occ);
  EXPECT_EQ(s.events, 20U);
  EXPECT_EQ(s.lookups, 10U);
  EXPECT_DOUBLE_EQ(s.mean_examined, 3.0);
  EXPECT_EQ(s.p50, 3U);
  EXPECT_EQ(s.p99, 3U);
  EXPECT_DOUBLE_EQ(s.hit_rate, 0.0);  // all interval lookups missed caches
  EXPECT_EQ(s.occ_max, 8U);
  EXPECT_DOUBLE_EQ(s.occ_mean, 4.0);
  EXPECT_DOUBLE_EQ(s.occ_skew, 2.0);
}

TEST(LatencySampler, SamplesOneInNAndSubtractsOverhead) {
  LatencySampler off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.should_sample());

  LatencySampler s(4);
  EXPECT_TRUE(s.enabled());
  int sampled = 0;
  for (int i = 0; i < 12; ++i) {
    if (s.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);

  s.record_ns(s.overhead_ns() + 100);
  EXPECT_EQ(s.histogram().count(), 1U);
  EXPECT_EQ(s.histogram().sum(), 100U);
  s.record_ns(0);  // below the overhead floor clamps to 0, never wraps
  EXPECT_EQ(s.histogram().sum(), 100U);
}

TEST(TelemetryJson, ExportsSchemaFields) {
  TelemetryReport r;
  r.source = "test";
  r.algorithm = "bsd";
  r.telemetry.enable_histograms(true);
  r.telemetry.on_lookup(2, true, false);
  r.telemetry.on_insert();
  r.occupancy = {1, 3};
  r.series.interval = 8;
  r.series.samples.push_back(
      interval_sample(8, r.telemetry, Telemetry{}, r.occupancy));

  const std::string json = telemetry_to_json(r);
  EXPECT_NE(json.find("\"schema\": \"tcpdemux.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"bsd\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"examined\""), std::string::npos);
  EXPECT_NE(json.find("\"probe_length\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"partitions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"interval\": 8"), std::string::npos);

  const std::vector<TelemetryReport> reports(2, r);
  const std::string array = telemetry_to_json(reports);
  EXPECT_EQ(array.front(), '[');
}

TEST(TelemetryJson, SeriesCsvHasHeaderAndRows) {
  TelemetrySeries series;
  series.interval = 4;
  TelemetrySample s;
  s.events = 4;
  s.lookups = 4;
  s.mean_examined = 1.5;
  series.samples.push_back(s);

  std::ostringstream os;
  write_series_csv(os, "bsd", series);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("algorithm,events,lookups,mean_examined"),
            std::string::npos);
  EXPECT_NE(csv.find("bsd,4,4,1.5"), std::string::npos);
}

}  // namespace
}  // namespace tcpdemux::report
