#include "report/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tcpdemux::report {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream os;
  write_csv_row(os, {"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesCommas) {
  std::ostringstream os;
  write_csv_row(os, {"x,y", "z"});
  EXPECT_EQ(os.str(), "\"x,y\",z\n");
}

TEST(Csv, EscapesQuotes) {
  std::ostringstream os;
  write_csv_row(os, {"he said \"hi\""});
  EXPECT_EQ(os.str(), "\"he said \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream os;
  write_csv_row(os, {"two\nlines", "b"});
  EXPECT_EQ(os.str(), "\"two\nlines\",b\n");
}

TEST(Csv, EmptyRow) {
  std::ostringstream os;
  write_csv_row(os, {});
  EXPECT_EQ(os.str(), "\n");
}

TEST(Csv, EmptyCells) {
  std::ostringstream os;
  write_csv_row(os, {"", "", ""});
  EXPECT_EQ(os.str(), ",,\n");
}

}  // namespace
}  // namespace tcpdemux::report
