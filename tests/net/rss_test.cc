// RssIndirectionTable: the hardware-faithful hash -> queue mask-and-index
// step, the rebalance default, and the steering composition rss_steer.
#include "net/rss.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tcpdemux::net {
namespace {

TEST(RssIndirectionTable, DefaultsMatchCommonHardware) {
  const RssIndirectionTable table(4);
  EXPECT_EQ(table.entries(), RssIndirectionTable::kDefaultEntries);
  EXPECT_EQ(table.queues(), 4u);
  // Round-robin default: entry i -> i % queues, so the mask alone decides.
  for (std::uint32_t i = 0; i < table.entries(); ++i) {
    EXPECT_EQ(table.entry(i), i % 4);
  }
}

TEST(RssIndirectionTable, EntriesRoundUpToPowerOfTwoAndQueues) {
  EXPECT_EQ(RssIndirectionTable(4, 100).entries(), 128u);
  EXPECT_EQ(RssIndirectionTable(4, 128).entries(), 128u);
  EXPECT_EQ(RssIndirectionTable(4, 1).entries(), 4u);   // >= queues
  EXPECT_EQ(RssIndirectionTable(3, 1).entries(), 4u);   // and a power of two
  EXPECT_EQ(RssIndirectionTable(1, 1).entries(), 1u);
}

TEST(RssIndirectionTable, QueueForMasksLowBits) {
  const RssIndirectionTable table(4, 8);
  ASSERT_EQ(table.entries(), 8u);
  for (const std::uint32_t hash : {0x0u, 0x7u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(table.queue_for(hash), table.entry(hash & 7u)) << hash;
  }
}

TEST(RssIndirectionTable, SetEntryRedirectsExactlyThoseHashes) {
  RssIndirectionTable table(4, 8);
  const std::uint32_t before = table.entry(3);
  table.set_entry(3, (before + 1) % 4);
  for (std::uint32_t hash = 0; hash < 64; ++hash) {
    const std::uint32_t expected =
        (hash & 7u) == 3u ? (before + 1) % 4 : table.entry(hash & 7u);
    EXPECT_EQ(table.queue_for(hash), expected) << hash;
  }
  table.rebalance();
  EXPECT_EQ(table.entry(3), 3u % 4);
}

TEST(RssSteer, ComposesHashAndTable) {
  const RssIndirectionTable table(4);
  const HashSpec spec{HasherKind::kToeplitz, 0};
  const FlowKey key{Ipv4Addr(10, 0, 0, 1), 1521, Ipv4Addr(10, 2, 3, 4), 40000};
  EXPECT_EQ(rss_steer(spec, key, table),
            table.queue_for(hash_flow(spec, key)));
  EXPECT_LT(rss_steer(spec, key, table), table.queues());
}

TEST(RssSteer, SpreadsAPopulationAcrossAllQueues) {
  const RssIndirectionTable table(8);
  const HashSpec spec{HasherKind::kToeplitz, 0};
  std::vector<std::uint32_t> hits(8, 0);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const FlowKey key{Ipv4Addr(10, 0, 0, 1), 1521,
                      Ipv4Addr(10, 2, static_cast<std::uint8_t>(i >> 8),
                               static_cast<std::uint8_t>(i & 0xff)),
                      static_cast<std::uint16_t>(10000 + i)};
    ++hits[rss_steer(spec, key, table)];
  }
  for (std::uint32_t q = 0; q < 8; ++q) {
    EXPECT_GT(hits[q], 100u) << "queue " << q << " starved";
  }
}

}  // namespace
}  // namespace tcpdemux::net
