#include "net/flow_key.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace tcpdemux::net {
namespace {

FlowKey concrete() {
  return FlowKey{Ipv4Addr(10, 0, 0, 1), 1521, Ipv4Addr(10, 1, 0, 2), 40001};
}

TEST(FlowKey, EqualityAndOrdering) {
  FlowKey a = concrete();
  FlowKey b = concrete();
  EXPECT_EQ(a, b);
  b.foreign_port = 40002;
  EXPECT_NE(a, b);
}

TEST(FlowKey, FullySpecified) {
  EXPECT_TRUE(concrete().fully_specified());
  FlowKey listen{Ipv4Addr::any(), 1521, Ipv4Addr::any(), 0};
  EXPECT_FALSE(listen.fully_specified());
  FlowKey no_fport = concrete();
  no_fport.foreign_port = 0;
  EXPECT_FALSE(no_fport.fully_specified());
}

TEST(FlowKey, ExactMatchScoreIsZero) {
  EXPECT_EQ(concrete().match_score(concrete()), 0);
}

TEST(FlowKey, PortMismatchNeverMatches) {
  FlowKey stored = concrete();
  FlowKey packet = concrete();
  packet.local_port = 80;
  EXPECT_EQ(stored.match_score(packet), -1);
}

TEST(FlowKey, WildcardForeignMatchesWithScoreOne) {
  FlowKey listener{Ipv4Addr(10, 0, 0, 1), 1521, Ipv4Addr::any(), 0};
  EXPECT_EQ(listener.match_score(concrete()), 1);
}

TEST(FlowKey, DoubleWildcardScoresTwo) {
  FlowKey listener{Ipv4Addr::any(), 1521, Ipv4Addr::any(), 0};
  EXPECT_EQ(listener.match_score(concrete()), 2);
}

TEST(FlowKey, ForeignHalfWildcardRequiresBothFieldsWild) {
  // A stored key with concrete foreign address but port 0 is not a listen
  // wildcard; it must not match a packet with a different port.
  FlowKey stored = concrete();
  stored.foreign_port = 0;
  EXPECT_EQ(stored.match_score(concrete()), -1);
}

TEST(FlowKey, WrongForeignAddrDoesNotMatch) {
  FlowKey stored = concrete();
  stored.foreign_addr = Ipv4Addr(10, 9, 9, 9);
  EXPECT_EQ(stored.match_score(concrete()), -1);
}

TEST(FlowKey, WrongLocalAddrDoesNotMatch) {
  FlowKey stored = concrete();
  stored.local_addr = Ipv4Addr(10, 9, 9, 9);
  EXPECT_EQ(stored.match_score(concrete()), -1);
}

TEST(FlowKey, ReversedSwapsHalves) {
  const FlowKey k = concrete();
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.local_addr, k.foreign_addr);
  EXPECT_EQ(r.local_port, k.foreign_port);
  EXPECT_EQ(r.foreign_addr, k.local_addr);
  EXPECT_EQ(r.foreign_port, k.local_port);
  EXPECT_EQ(r.reversed(), k);
}

TEST(FlowKey, ToStringFormat) {
  EXPECT_EQ(concrete().to_string(), "10.0.0.1:1521 <- 10.1.0.2:40001");
}

TEST(FlowKey, StdHashSpreadsDistinctKeys) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint16_t port = 1024; port < 1024 + 1000; ++port) {
    FlowKey k = concrete();
    k.foreign_port = port;
    hashes.insert(std::hash<FlowKey>{}(k));
  }
  // All 1000 single-bit-different keys should hash distinctly.
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(FlowKey, UsableInUnorderedSet) {
  std::unordered_set<FlowKey> set;
  set.insert(concrete());
  EXPECT_TRUE(set.contains(concrete()));
  FlowKey other = concrete();
  other.foreign_port = 40002;
  EXPECT_FALSE(set.contains(other));
}

}  // namespace
}  // namespace tcpdemux::net
