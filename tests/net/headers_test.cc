#include "net/headers.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace tcpdemux::net {
namespace {

Ipv4Header sample_ip() {
  Ipv4Header h;
  h.total_length = 40;
  h.identification = 0xbeef;
  h.ttl = 63;
  h.src = Ipv4Addr(10, 0, 0, 2);
  h.dst = Ipv4Addr(10, 0, 0, 1);
  return h;
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  const Ipv4Header h = sample_ip();
  std::array<std::uint8_t, 40> buf{};
  EXPECT_EQ(h.serialize(buf), Ipv4Header::kSize);
  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total_length, h.total_length);
  EXPECT_EQ(parsed->identification, h.identification);
  EXPECT_EQ(parsed->ttl, h.ttl);
  EXPECT_EQ(parsed->protocol, 6);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_TRUE(parsed->dont_fragment);
  EXPECT_FALSE(parsed->more_fragments);
}

TEST(Ipv4Header, ParseRejectsShortBuffer) {
  std::array<std::uint8_t, 19> buf{};
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, ParseRejectsBadVersion) {
  std::array<std::uint8_t, 20> buf{};
  sample_ip().serialize(buf);
  buf[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, ParseRejectsOptions) {
  std::array<std::uint8_t, 24> buf{};
  sample_ip().serialize(buf);
  buf[0] = 0x46;  // IHL 6 (one option word)
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, ParseRejectsCorruptChecksum) {
  std::array<std::uint8_t, 40> buf{};
  sample_ip().serialize(buf);
  buf[15] ^= 0x40;
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, ParseRejectsTotalLengthBeyondBuffer) {
  std::array<std::uint8_t, 20> buf{};
  Ipv4Header h = sample_ip();
  h.total_length = 100;  // claims more than the 20-byte buffer
  h.serialize(buf);
  EXPECT_FALSE(Ipv4Header::parse(buf).has_value());
}

TEST(Ipv4Header, FragmentFieldsRoundTrip) {
  Ipv4Header h = sample_ip();
  h.total_length = 20;
  h.dont_fragment = false;
  h.more_fragments = true;
  h.fragment_offset = 0x1234 & 0x1fff;
  std::array<std::uint8_t, 20> buf{};
  h.serialize(buf);
  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->dont_fragment);
  EXPECT_TRUE(parsed->more_fragments);
  EXPECT_EQ(parsed->fragment_offset, 0x1234 & 0x1fff);
}

TcpHeader sample_tcp() {
  TcpHeader t;
  t.src_port = 40001;
  t.dst_port = 1521;
  t.seq = 0xdeadbeef;
  t.ack = 0x01020304;
  t.set(TcpFlag::kAck);
  t.set(TcpFlag::kPsh);
  t.window = 8192;
  return t;
}

TEST(TcpHeader, SerializeParseRoundTrip) {
  const TcpHeader t = sample_tcp();
  std::array<std::uint8_t, 20> buf{};
  EXPECT_EQ(t.serialize(buf), TcpHeader::kMinSize);
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, t.src_port);
  EXPECT_EQ(parsed->dst_port, t.dst_port);
  EXPECT_EQ(parsed->seq, t.seq);
  EXPECT_EQ(parsed->ack, t.ack);
  EXPECT_EQ(parsed->flags, t.flags);
  EXPECT_EQ(parsed->window, t.window);
  EXPECT_TRUE(parsed->options.empty());
}

TEST(TcpHeader, OptionsRoundTrip) {
  TcpHeader t = sample_tcp();
  t.options = {0x02, 0x04, 0x05, 0xb4};  // MSS 1460
  std::array<std::uint8_t, 24> buf{};
  EXPECT_EQ(t.serialize(buf), 24u);
  EXPECT_EQ(buf[12] >> 4, 6);  // data offset 6 words
  const auto parsed = TcpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->options, t.options);
}

TEST(TcpHeader, ParseRejectsShortBuffer) {
  std::array<std::uint8_t, 19> buf{};
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
}

TEST(TcpHeader, ParseRejectsBadDataOffset) {
  std::array<std::uint8_t, 20> buf{};
  sample_tcp().serialize(buf);
  buf[12] = 0x40;  // data offset 4 < minimum 5
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
  buf[12] = 0x60;  // data offset 6 = 24 bytes > 20-byte buffer
  EXPECT_FALSE(TcpHeader::parse(buf).has_value());
}

TEST(TcpHeader, FlagHelpers) {
  TcpHeader t;
  EXPECT_FALSE(t.has(TcpFlag::kSyn));
  t.set(TcpFlag::kSyn);
  t.set(TcpFlag::kAck);
  EXPECT_TRUE(t.has(TcpFlag::kSyn));
  EXPECT_TRUE(t.has(TcpFlag::kAck));
  EXPECT_FALSE(t.has(TcpFlag::kFin));
  EXPECT_EQ(t.flags_to_string(), "SYN|ACK");
}

TEST(TcpHeader, FlagsToStringEmpty) {
  EXPECT_EQ(TcpHeader{}.flags_to_string(), "none");
}

TEST(TcpHeader, SizeIncludesOptions) {
  TcpHeader t;
  EXPECT_EQ(t.size(), 20u);
  t.options.assign(8, 1);
  EXPECT_EQ(t.size(), 28u);
}

}  // namespace
}  // namespace tcpdemux::net
