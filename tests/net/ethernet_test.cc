#include "net/ethernet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "net/packet.h"
#include "net/pcap.h"

namespace tcpdemux::net {
namespace {

TEST(MacAddr, ParseAndToStringRoundTrip) {
  const auto mac = MacAddr::parse("02:00:0a:01:00:02");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:0a:01:00:02");
  EXPECT_EQ(mac->octets()[0], 0x02);
  EXPECT_EQ(mac->octets()[5], 0x02);
}

TEST(MacAddr, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddr::parse(""));
  EXPECT_FALSE(MacAddr::parse("02:00:0a:01:00"));
  EXPECT_FALSE(MacAddr::parse("02:00:0a:01:00:02:ff"));
  EXPECT_FALSE(MacAddr::parse("02-00-0a-01-00-02"));
  EXPECT_FALSE(MacAddr::parse("0g:00:0a:01:00:02"));
  EXPECT_FALSE(MacAddr::parse("02:00:0a:01:00:0"));
}

TEST(MacAddr, Classification) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  const auto unicast = MacAddr::parse("02:00:00:00:00:01");
  EXPECT_FALSE(unicast->is_broadcast());
  EXPECT_FALSE(unicast->is_multicast());
  const auto mcast = MacAddr::parse("01:00:5e:00:00:01");
  EXPECT_TRUE(mcast->is_multicast());
}

TEST(MacAddr, FromIpv4Deterministic) {
  const MacAddr a = MacAddr::from_ipv4(Ipv4Addr(10, 1, 0, 2).value());
  const MacAddr b = MacAddr::from_ipv4(Ipv4Addr(10, 1, 0, 2).value());
  const MacAddr c = MacAddr::from_ipv4(Ipv4Addr(10, 1, 0, 3).value());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.is_multicast());  // locally administered unicast
  EXPECT_EQ(a.octets()[0] & 0x02, 0x02);
}

TEST(Ethernet, HeaderRoundTrip) {
  EthernetHeader h;
  h.dst = *MacAddr::parse("ff:ff:ff:ff:ff:ff");
  h.src = *MacAddr::parse("02:00:0a:00:00:01");
  h.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  std::array<std::uint8_t, 14> buf{};
  EXPECT_EQ(h.serialize(buf), EthernetHeader::kSize);
  const auto parsed = EthernetHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ether_type, h.ether_type);
}

TEST(Ethernet, ParseRejectsShortFrame) {
  std::array<std::uint8_t, 13> buf{};
  EXPECT_FALSE(EthernetHeader::parse(buf).has_value());
}

TEST(Ethernet, EncapsulateDecapsulateRoundTrip) {
  const auto datagram = PacketBuilder()
                            .from({Ipv4Addr(10, 1, 0, 2), 40001})
                            .to({Ipv4Addr(10, 0, 0, 1), 1521})
                            .payload_size(32)
                            .build();
  const MacAddr src = MacAddr::from_ipv4(Ipv4Addr(10, 1, 0, 2).value());
  const MacAddr dst = MacAddr::from_ipv4(Ipv4Addr(10, 0, 0, 1).value());
  const auto frame = ethernet_encapsulate(dst, src, datagram);
  EXPECT_EQ(frame.size(), datagram.size() + 14);

  const auto inner = ethernet_decapsulate_ipv4(frame);
  ASSERT_TRUE(inner.has_value());
  EXPECT_TRUE(std::equal(inner->begin(), inner->end(), datagram.begin(),
                         datagram.end()));
  // And the inner datagram still parses as a checksummed TCP packet.
  EXPECT_TRUE(Packet::parse(*inner).has_value());
}

TEST(Ethernet, DecapsulateRejectsNonIpv4) {
  EthernetHeader h;
  h.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  std::vector<std::uint8_t> frame(20, 0);
  h.serialize(frame);
  EXPECT_FALSE(ethernet_decapsulate_ipv4(frame).has_value());
}

TEST(Ethernet, VlanTaggedFrameRoundTrip) {
  const auto datagram = PacketBuilder()
                            .from({Ipv4Addr(10, 1, 0, 2), 40001})
                            .to({Ipv4Addr(10, 0, 0, 1), 1521})
                            .payload_size(16)
                            .build();
  const MacAddr src = MacAddr::from_ipv4(Ipv4Addr(10, 1, 0, 2).value());
  const MacAddr dst = MacAddr::from_ipv4(Ipv4Addr(10, 0, 0, 1).value());
  const auto frame =
      ethernet_encapsulate_vlan(dst, src, /*vid=*/42, /*pcp=*/5, datagram);
  EXPECT_EQ(frame.size(), datagram.size() + 14 + 4);

  EXPECT_EQ(ethernet_vlan_id(frame), 42);
  const auto inner = ethernet_decapsulate_ipv4(frame);
  ASSERT_TRUE(inner.has_value());
  EXPECT_TRUE(Packet::parse(*inner).has_value());
}

TEST(Ethernet, VlanIdMasksTwelveBits) {
  const std::vector<std::uint8_t> datagram(20, 0);
  const auto frame = ethernet_encapsulate_vlan(
      MacAddr::broadcast(), MacAddr::broadcast(), 0xffff, 7, datagram);
  EXPECT_EQ(ethernet_vlan_id(frame), 0x0fff);
}

TEST(Ethernet, UntaggedFrameHasNoVlanId) {
  const std::vector<std::uint8_t> datagram(20, 0);
  const auto frame = ethernet_encapsulate(MacAddr::broadcast(),
                                          MacAddr::broadcast(), datagram);
  EXPECT_FALSE(ethernet_vlan_id(frame).has_value());
}

TEST(Ethernet, TruncatedVlanFrameRejected) {
  std::vector<std::uint8_t> frame(15, 0);
  EthernetHeader h;
  h.ether_type = static_cast<std::uint16_t>(EtherType::kVlan);
  h.serialize(frame);
  EXPECT_FALSE(ethernet_decapsulate_ipv4(frame).has_value());
  EXPECT_FALSE(ethernet_vlan_id(frame).has_value());
}

TEST(Ethernet, PcapEthernetLinkTypeRoundTrip) {
  const auto datagram = PacketBuilder()
                            .from({Ipv4Addr(10, 1, 0, 2), 40001})
                            .to({Ipv4Addr(10, 0, 0, 1), 1521})
                            .payload_size(8)
                            .build();
  const auto frame = ethernet_encapsulate(
      MacAddr::from_ipv4(Ipv4Addr(10, 0, 0, 1).value()),
      MacAddr::from_ipv4(Ipv4Addr(10, 1, 0, 2).value()), datagram);

  std::stringstream buffer;
  PcapWriter writer(buffer, PcapWriter::kLinkTypeEthernet);
  ASSERT_TRUE(writer.write(1.0, frame));

  PcapReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.link_type(), PcapWriter::kLinkTypeEthernet);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  const auto inner = ethernet_decapsulate_ipv4(record->bytes);
  ASSERT_TRUE(inner.has_value());
  EXPECT_TRUE(Packet::parse(*inner).has_value());
}

}  // namespace
}  // namespace tcpdemux::net
