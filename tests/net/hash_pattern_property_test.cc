// Property sweep: hash quality across the cross product of hash functions
// and client address-space patterns. Strong (mixing) hashes must keep
// chains balanced on every population; the known-weak additive folds are
// exempted where the pattern is engineered against them.
#include <gtest/gtest.h>

#include <tuple>

#include "net/hash_quality.h"
#include "sim/address_space.h"

namespace tcpdemux::net {
namespace {

using Param = std::tuple<HasherKind, sim::ClientPattern>;

bool is_mixing_hash(HasherKind kind) {
  switch (kind) {
    case HasherKind::kCrc32:
    case HasherKind::kCrc32c:
    case HasherKind::kJenkins:
    case HasherKind::kToeplitz:
    case HasherKind::kMultiplicative:
    case HasherKind::kSipHash:
      return true;
    default:
      return false;
  }
}

class HashPatternSweep : public ::testing::TestWithParam<Param> {};

TEST_P(HashPatternSweep, ChainsStayBalancedForMixingHashes) {
  const auto [kind, pattern] = GetParam();
  sim::AddressSpaceParams ap;
  ap.clients = 2000;
  ap.pattern = pattern;
  const auto keys = sim::make_client_keys(ap);
  constexpr std::uint32_t kChains = 19;
  const auto q = evaluate_hash_quality(kind, keys, kChains);

  // Universal invariants: everything lands somewhere, totals add up.
  std::size_t total = 0;
  for (const std::size_t n : q.histogram) total += n;
  ASSERT_EQ(total, keys.size());
  EXPECT_DOUBLE_EQ(q.mean_chain, 2000.0 / kChains);

  if (is_mixing_hash(kind)) {
    // A mixing hash must never leave a chain empty at ~105 keys/chain and
    // must keep the expected scan within 25% of the uniform ideal.
    EXPECT_EQ(q.empty_chains, 0u) << hasher_name(kind);
    const double ideal = (q.mean_chain + 1.0) / 2.0;
    EXPECT_LT(q.expected_search, 1.25 * ideal) << hasher_name(kind);
    EXPECT_LT(q.max_chain, 2.0 * q.mean_chain) << hasher_name(kind);
  } else {
    // Weak folds may collapse (that is the point of the adversarial
    // pattern) but must still conserve keys — checked above.
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, HashPatternSweep,
    ::testing::Combine(
        ::testing::ValuesIn(kAllHashers),
        ::testing::Values(sim::ClientPattern::kSequentialHosts,
                          sim::ClientPattern::kConcentrators,
                          sim::ClientPattern::kRandom,
                          sim::ClientPattern::kAdversarialForModulo)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name(hasher_name(std::get<0>(info.param)));
      name += '_';
      switch (std::get<1>(info.param)) {
        case sim::ClientPattern::kSequentialHosts: name += "lan"; break;
        case sim::ClientPattern::kConcentrators: name += "conc"; break;
        case sim::ClientPattern::kRandom: name += "rand"; break;
        case sim::ClientPattern::kAdversarialForModulo: name += "adv"; break;
      }
      return name;
    });

}  // namespace
}  // namespace tcpdemux::net
