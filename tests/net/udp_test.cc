#include "net/udp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "net/byte_order.h"
#include "net/checksum.h"
#include "net/flow_key.h"
#include "net/headers.h"

namespace tcpdemux::net {
namespace {

const Ipv4Addr kSrc{10, 1, 0, 2};
const Ipv4Addr kDst{10, 0, 0, 1};

TEST(Udp, HeaderRoundTrip) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 40123;
  h.length = 8 + 12;
  std::vector<std::uint8_t> buf(20);
  EXPECT_EQ(h.serialize(buf), UdpHeader::kSize);
  const auto parsed = UdpHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 53);
  EXPECT_EQ(parsed->dst_port, 40123);
  EXPECT_EQ(parsed->length, 20);
}

TEST(Udp, ParseRejectsBadLength) {
  std::vector<std::uint8_t> buf(8, 0);
  UdpHeader h;
  h.length = 4;  // below the 8-byte header
  h.serialize(buf);
  EXPECT_FALSE(UdpHeader::parse(buf).has_value());
  h.length = 100;  // beyond the buffer
  h.serialize(buf);
  EXPECT_FALSE(UdpHeader::parse(buf).has_value());
  EXPECT_FALSE(UdpHeader::parse(std::span(buf).subspan(0, 4)).has_value());
}

TEST(Udp, BuildPacketVerifies) {
  const std::vector<std::uint8_t> payload = {'q', 'u', 'e', 'r', 'y'};
  const auto wire = build_udp_packet(kSrc, 40001, kDst, 53, payload);
  // IPv4 header checks out and says protocol 17.
  const auto ip = Ipv4Header::parse(wire);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->protocol, 17);
  EXPECT_EQ(ip->total_length, 20u + 8u + 5u);
  // UDP checksum over the pseudo-header + datagram verifies (sums to 0
  // through the complement, i.e. recomputing yields 0 or 0xffff).
  const auto datagram = std::span(wire).subspan(Ipv4Header::kSize);
  ChecksumAccumulator acc;
  acc.add_word(static_cast<std::uint16_t>(kSrc.value() >> 16));
  acc.add_word(static_cast<std::uint16_t>(kSrc.value() & 0xffff));
  acc.add_word(static_cast<std::uint16_t>(kDst.value() >> 16));
  acc.add_word(static_cast<std::uint16_t>(kDst.value() & 0xffff));
  acc.add_word(17);
  acc.add_word(static_cast<std::uint16_t>(datagram.size()));
  acc.add(datagram);
  EXPECT_EQ(acc.finish(), 0);
  // Payload survived.
  const auto udp = UdpHeader::parse(datagram);
  ASSERT_TRUE(udp.has_value());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         datagram.begin() + UdpHeader::kSize));
}

TEST(Udp, ChecksumNeverTransmittedAsZero) {
  // Craft inputs whose one's-complement sum would be 0xffff (complement
  // 0); the checksum function must substitute 0xffff.
  // The empty datagram from 0.0.0.0 to 0.0.0.0 with length 0: sum is
  // 17 + 0 -> checksum = ~17 != 0, so instead verify the substitution
  // property directly on a constructed case.
  std::vector<std::uint8_t> datagram(8, 0);
  UdpHeader h;
  h.length = 8;
  h.serialize(datagram);
  // Patch the checksum field so that total sum becomes 0xffff.
  const std::uint16_t partial =
      udp_checksum(Ipv4Addr(), Ipv4Addr(), datagram);
  store_be16(datagram.data() + 6, partial);
  const std::uint16_t re = udp_checksum(Ipv4Addr(), Ipv4Addr(), datagram);
  EXPECT_TRUE(re == 0xffff) << re;  // never 0
}

TEST(Udp, FlowKeyFromUdpFields) {
  // UDP demultiplexing uses the same 96-bit key; show the mapping.
  const auto wire = build_udp_packet(kSrc, 40001, kDst, 53, {});
  const auto ip = Ipv4Header::parse(wire);
  const auto udp =
      UdpHeader::parse(std::span(wire).subspan(Ipv4Header::kSize));
  ASSERT_TRUE(ip && udp);
  const FlowKey key{ip->dst, udp->dst_port, ip->src, udp->src_port};
  EXPECT_TRUE(key.fully_specified());
  EXPECT_EQ(key.local_port, 53);
  EXPECT_EQ(key.foreign_port, 40001);
}

}  // namespace
}  // namespace tcpdemux::net
