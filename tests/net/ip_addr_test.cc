#include "net/ip_addr.h"

#include <gtest/gtest.h>

namespace tcpdemux::net {
namespace {

TEST(Ipv4Addr, DefaultIsWildcard) {
  Ipv4Addr a;
  EXPECT_EQ(a.value(), 0u);
  EXPECT_TRUE(a.is_any());
  EXPECT_EQ(a, Ipv4Addr::any());
}

TEST(Ipv4Addr, OctetConstructorMatchesHostOrder) {
  Ipv4Addr a(10, 1, 2, 3);
  EXPECT_EQ(a.value(), 0x0a010203u);
}

TEST(Ipv4Addr, ToStringRoundTrips) {
  const Ipv4Addr cases[] = {
      Ipv4Addr(0, 0, 0, 0), Ipv4Addr(255, 255, 255, 255),
      Ipv4Addr(10, 0, 0, 1), Ipv4Addr(192, 168, 1, 254),
      Ipv4Addr(127, 0, 0, 1)};
  for (const Ipv4Addr a : cases) {
    const auto parsed = Ipv4Addr::parse(a.to_string());
    ASSERT_TRUE(parsed.has_value()) << a.to_string();
    EXPECT_EQ(*parsed, a);
  }
}

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("172.16.254.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xac10fe01u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3."));
  EXPECT_FALSE(Ipv4Addr::parse(".1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Addr::parse(" 1.2.3.4"));
  EXPECT_FALSE(Ipv4Addr::parse("-1.2.3.4"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.+4"));
}

TEST(Ipv4Addr, ParseRejectsOverflowingOctet) {
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.99999999999999999999"));
}

TEST(Ipv4Addr, Classification) {
  EXPECT_TRUE(Ipv4Addr(127, 0, 0, 1).is_loopback());
  EXPECT_TRUE(Ipv4Addr(127, 255, 0, 1).is_loopback());
  EXPECT_FALSE(Ipv4Addr(128, 0, 0, 1).is_loopback());
  EXPECT_TRUE(Ipv4Addr(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Addr(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(240, 0, 0, 1).is_multicast());
  EXPECT_FALSE(Ipv4Addr(223, 255, 255, 255).is_multicast());
}

TEST(Ipv4Addr, OrderingIsNumeric) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

}  // namespace
}  // namespace tcpdemux::net
