#include "net/fragment.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace tcpdemux::net {
namespace {

std::vector<std::uint8_t> datagram(std::size_t payload,
                                   std::uint16_t ip_id = 77,
                                   bool df = false) {
  auto wire = PacketBuilder()
                  .from({Ipv4Addr(10, 1, 0, 2), 40001})
                  .to({Ipv4Addr(10, 0, 0, 1), 1521})
                  .seq(100)
                  .ack_seq(200)
                  .ip_id(ip_id)
                  .payload_size(payload)
                  .build();
  if (!df) {
    auto h = Ipv4Header::parse(wire);
    h->dont_fragment = false;
    h->serialize(wire);
  }
  return wire;
}

TEST(Fragment, SmallPacketPassesThrough) {
  const auto wire = datagram(100);
  const auto fragments = fragment_packet(wire, 1500);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0], wire);
}

TEST(Fragment, SplitsRespectMtuAndAlignment) {
  const auto wire = datagram(1000);
  const auto fragments = fragment_packet(wire, 300);
  ASSERT_GT(fragments.size(), 1u);
  std::size_t total_payload = 0;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    const auto h = Ipv4Header::parse(fragments[i]);
    ASSERT_TRUE(h.has_value()) << "fragment " << i;
    EXPECT_LE(h->total_length, 300);
    EXPECT_EQ(h->more_fragments, i + 1 < fragments.size());
    if (i + 1 < fragments.size()) {
      EXPECT_EQ((h->total_length - Ipv4Header::kSize) % 8, 0u);
    }
    total_payload += h->total_length - Ipv4Header::kSize;
  }
  EXPECT_EQ(total_payload, 20u + 1000u);  // TCP header + payload
}

TEST(Fragment, DontFragmentRefuses) {
  const auto wire = datagram(1000, 77, /*df=*/true);
  EXPECT_TRUE(fragment_packet(wire, 300).empty());
}

TEST(Fragment, TinyMtuRefuses) {
  EXPECT_TRUE(fragment_packet(datagram(1000), 24).empty());
}

TEST(Fragment, GarbageRefused) {
  const std::vector<std::uint8_t> junk(40, 0xee);
  EXPECT_TRUE(fragment_packet(junk, 1500).empty());
}

TEST(Reassembly, InOrderRoundTrip) {
  const auto wire = datagram(1000);
  const auto fragments = fragment_packet(wire, 300);
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> result;
  for (const auto& f : fragments) {
    EXPECT_FALSE(result.has_value());
    result = r.offer(f, 0.0);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, wire);
  // The reassembled datagram parses as a full TCP packet again.
  EXPECT_TRUE(Packet::parse(*result).has_value());
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembly, OutOfOrderRoundTrip) {
  const auto wire = datagram(2000);
  auto fragments = fragment_packet(wire, 256);
  ASSERT_GT(fragments.size(), 3u);
  // Deliver in reverse.
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> result;
  for (auto it = fragments.rbegin(); it != fragments.rend(); ++it) {
    result = r.offer(*it, 0.0);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, wire);
}

TEST(Reassembly, DuplicateFragmentsHarmless) {
  const auto wire = datagram(900);
  const auto fragments = fragment_packet(wire, 300);
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> result;
  for (const auto& f : fragments) {
    (void)r.offer(f, 0.0);  // deliver everything twice
    result = r.offer(f, 0.0);
    if (result) break;
  }
  // The final duplicate completes (or the set completed on first pass).
  const auto again = fragment_packet(wire, 300);
  for (const auto& f : again) {
    if (!result) result = r.offer(f, 0.0);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, wire);
}

TEST(Reassembly, NonFragmentPassesThrough) {
  const auto wire = datagram(64);
  Reassembler r;
  const auto result = r.offer(wire, 0.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, wire);
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembly, InterleavedDatagramsKeptSeparate) {
  const auto wire_a = datagram(800, 1);
  const auto wire_b = datagram(800, 2);
  const auto fa = fragment_packet(wire_a, 300);
  const auto fb = fragment_packet(wire_b, 300);
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> got_a;
  std::optional<std::vector<std::uint8_t>> got_b;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    auto ra = r.offer(fa[i], 0.0);
    auto rb = r.offer(fb[i], 0.0);
    if (ra) got_a = ra;
    if (rb) got_b = rb;
  }
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(*got_a, wire_a);
  EXPECT_EQ(*got_b, wire_b);
}

TEST(Reassembly, MissingFragmentNeverCompletes) {
  const auto fragments = fragment_packet(datagram(1000), 300);
  Reassembler r;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    if (i == 1) continue;  // drop one middle fragment
    EXPECT_FALSE(r.offer(fragments[i], 0.0).has_value());
  }
  EXPECT_EQ(r.pending_datagrams(), 1u);
}

TEST(Reassembly, ExpireDropsStaleDatagrams) {
  const auto fragments = fragment_packet(datagram(1000), 300);
  Reassembler r;
  (void)r.offer(fragments[0], 0.0);
  EXPECT_EQ(r.expire(10.0), 0u);   // still young
  EXPECT_EQ(r.expire(31.0), 1u);   // past the 30 s timeout
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembly, CapacityBoundRespected) {
  Reassembler r(Reassembler::Options{30.0, 2, 65535});
  // Three concurrent partial datagrams; the third is rejected.
  for (std::uint16_t id = 1; id <= 3; ++id) {
    const auto fragments = fragment_packet(datagram(600, id), 300);
    (void)r.offer(fragments[0], 0.0);
  }
  EXPECT_EQ(r.pending_datagrams(), 2u);
  EXPECT_GT(r.rejected(), 0u);
}

TEST(Reassembly, OversizeDatagramRejected) {
  Reassembler r(Reassembler::Options{30.0, 16, 1024});
  const auto fragments = fragment_packet(datagram(2000), 300);
  bool any_completed = false;
  for (const auto& f : fragments) {
    if (r.offer(f, 0.0)) any_completed = true;
  }
  EXPECT_FALSE(any_completed);
  EXPECT_GT(r.rejected(), 0u);
}

TEST(Reassembly, RefragmentedMiddleFragmentKeepsMfBit) {
  // Fragment once at 600, then re-fragment the first (MF=1) piece at 300:
  // its last sub-fragment must keep MF set.
  const auto first_level = fragment_packet(datagram(1200), 600);
  ASSERT_GT(first_level.size(), 1u);
  const auto second_level = fragment_packet(first_level[0], 300);
  ASSERT_GT(second_level.size(), 1u);
  const auto h = Ipv4Header::parse(second_level.back());
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->more_fragments);
}

TEST(Reassembly, TwoLevelFragmentationStillReassembles) {
  const auto wire = datagram(1200);
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> result;
  for (const auto& f : fragment_packet(wire, 600)) {
    for (const auto& ff : fragment_packet(f, 300)) {
      const auto got = r.offer(ff, 0.0);
      if (got) result = got;
    }
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, wire);
}

}  // namespace
}  // namespace tcpdemux::net
