#include "net/tcp_options.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::net {
namespace {

TEST(TcpOptions, EmptyBlobParsesEmpty) {
  const auto parsed = parse_tcp_options({});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(TcpOptions, MssRoundTrip) {
  TcpOption mss;
  mss.kind = TcpOptionKind::kMss;
  mss.mss = 1460;
  const auto blob = serialize_tcp_options({{mss}});
  EXPECT_EQ(blob.size() % 4, 0u);
  const auto parsed = parse_tcp_options(blob);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0], mss);
  EXPECT_EQ(find_mss(*parsed), 1460);
}

TEST(TcpOptions, FullSynOptionSetRoundTrips) {
  std::vector<TcpOption> options;
  TcpOption o;
  o.kind = TcpOptionKind::kMss;
  o.mss = 1460;
  options.push_back(o);
  o = TcpOption{};
  o.kind = TcpOptionKind::kSackPermitted;
  options.push_back(o);
  o = TcpOption{};
  o.kind = TcpOptionKind::kTimestamps;
  o.ts_value = 0xdeadbeef;
  o.ts_echo_reply = 0x01020304;
  options.push_back(o);
  o = TcpOption{};
  o.kind = TcpOptionKind::kWindowScale;
  o.shift = 7;
  options.push_back(o);

  const auto blob = serialize_tcp_options(options);
  EXPECT_EQ(blob.size() % 4, 0u);
  EXPECT_LE(blob.size(), 40u);  // must fit a TCP header's option space
  const auto parsed = parse_tcp_options(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, options);
}

TEST(TcpOptions, NopsAreSkipped) {
  const std::vector<std::uint8_t> blob = {1, 1, 2, 4, 0x05, 0xb4, 1, 0};
  const auto parsed = parse_tcp_options(blob);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].mss, 1460);
}

TEST(TcpOptions, EolStopsParsing) {
  // MSS after EOL must be ignored.
  const std::vector<std::uint8_t> blob = {0, 2, 4, 0x05, 0xb4, 0, 0, 0};
  const auto parsed = parse_tcp_options(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(TcpOptions, UnknownKindSkippedByLength) {
  // Kind 254 (experimental), length 6, then a real MSS.
  const std::vector<std::uint8_t> blob = {254, 6, 0, 0, 0, 0,
                                          2,   4, 0x05, 0xb4, 0, 0};
  const auto parsed = parse_tcp_options(blob);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].kind, TcpOptionKind::kMss);
}

TEST(TcpOptions, MalformedRejected) {
  // Length 0 would loop forever.
  EXPECT_FALSE(parse_tcp_options(std::vector<std::uint8_t>{2, 0, 0, 0}));
  // Length 1 is below the 2-byte minimum.
  EXPECT_FALSE(parse_tcp_options(std::vector<std::uint8_t>{2, 1, 0, 0}));
  // Length overruns the blob.
  EXPECT_FALSE(parse_tcp_options(std::vector<std::uint8_t>{2, 8, 0, 0}));
  // Kind with no length byte at the end.
  EXPECT_FALSE(parse_tcp_options(std::vector<std::uint8_t>{1, 1, 1, 2}));
  // Wrong length for a known kind.
  EXPECT_FALSE(
      parse_tcp_options(std::vector<std::uint8_t>{3, 4, 0, 0}));  // ws len 4
  EXPECT_FALSE(
      parse_tcp_options(std::vector<std::uint8_t>{8, 4, 0, 0}));  // ts len 4
}

TEST(TcpOptions, FindMssAbsent) {
  TcpOption ws;
  ws.kind = TcpOptionKind::kWindowScale;
  ws.shift = 2;
  EXPECT_FALSE(find_mss({{ws}}).has_value());
  EXPECT_FALSE(find_mss({}).has_value());
}

TEST(TcpOptions, PaddingIsEol) {
  TcpOption ws;
  ws.kind = TcpOptionKind::kWindowScale;
  ws.shift = 2;
  const auto blob = serialize_tcp_options({{ws}});
  ASSERT_EQ(blob.size(), 4u);  // 3 bytes + 1 pad
  EXPECT_EQ(blob[3], 0);
}

}  // namespace
}  // namespace tcpdemux::net
