// Fuzz-style robustness: the wire parsers must never crash, loop, or
// accept structurally impossible input, no matter the bytes. Deterministic
// PRNG sweeps stand in for a fuzzer so the property runs in CI.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "net/fragment.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "net/tcp_options.h"

namespace tcpdemux::net {
namespace {

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng,
                                       std::size_t max_len) {
  std::vector<std::uint8_t> bytes(rng() % (max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  return bytes;
}

TEST(ParserRobustness, PacketParseNeverCrashesOnNoise) {
  std::mt19937_64 rng(1);
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = random_bytes(rng, 128);
    if (Packet::parse(bytes)) ++accepted;
  }
  // Random noise passing an IP checksum AND a TCP checksum is essentially
  // impossible.
  EXPECT_EQ(accepted, 0);
}

TEST(ParserRobustness, HeaderParsersNeverCrashOnNoise) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = random_bytes(rng, 80);
    (void)Ipv4Header::parse(bytes);
    (void)TcpHeader::parse(bytes);
  }
  SUCCEED();
}

TEST(ParserRobustness, TcpOptionsNeverCrashOrLoopOnNoise) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 50000; ++i) {
    const auto bytes = random_bytes(rng, 40);
    (void)parse_tcp_options(bytes);
  }
  SUCCEED();
}

TEST(ParserRobustness, CorruptedRealPacketNeverParses) {
  // Flip every single bit of a valid packet: the checksums must catch
  // every corruption (single-bit errors are exactly what the Internet
  // checksum guarantees to detect).
  const auto wire = PacketBuilder()
                        .from({Ipv4Addr(10, 1, 0, 2), 40001})
                        .to({Ipv4Addr(10, 0, 0, 1), 1521})
                        .seq(1)
                        .ack_seq(2)
                        .payload_size(16)
                        .build();
  ASSERT_TRUE(Packet::parse(wire).has_value());
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = wire;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto parsed = Packet::parse(corrupted);
      EXPECT_FALSE(parsed.has_value())
          << "bit " << bit << " of byte " << byte << " undetected";
    }
  }
}

TEST(ParserRobustness, ReassemblerSurvivesNoise) {
  std::mt19937_64 rng(4);
  Reassembler r;
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = random_bytes(rng, 96);
    (void)r.offer(bytes, static_cast<double>(i) * 0.001);
  }
  SUCCEED();
}

TEST(ParserRobustness, PcapReaderSurvivesNoise) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, 200);
    std::stringstream buffer(
        std::string(bytes.begin(), bytes.end()));
    PcapReader reader(buffer);
    while (reader.ok()) {
      if (!reader.next()) break;
    }
  }
  SUCCEED();
}

class HeaderRoundTripSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeaderRoundTripSweep, PacketRoundTripsAtEveryPayloadSize) {
  const std::size_t payload = GetParam();
  const auto wire = PacketBuilder()
                        .from({Ipv4Addr(172, 16, 3, 4), 55555})
                        .to({Ipv4Addr(10, 0, 0, 1), 80})
                        .seq(0xffffffff)  // wraparound values included
                        .ack_seq(0)
                        .payload_size(payload)
                        .build();
  const auto packet = Packet::parse(wire);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->payload.size(), payload);
  EXPECT_EQ(packet->tcp.seq, 0xffffffffu);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, HeaderRoundTripSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 9, 63, 64, 65,
                                           511, 512, 1000, 1459, 1460));

}  // namespace
}  // namespace tcpdemux::net
