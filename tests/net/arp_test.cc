#include "net/arp.h"

#include <gtest/gtest.h>

namespace tcpdemux::net {
namespace {

const MacAddr kMacA = MacAddr::from_ipv4(Ipv4Addr(10, 0, 0, 1).value());
const MacAddr kMacB = MacAddr::from_ipv4(Ipv4Addr(10, 0, 0, 2).value());
const Ipv4Addr kIpA{10, 0, 0, 1};
const Ipv4Addr kIpB{10, 0, 0, 2};

TEST(ArpPacket, SerializeParseRoundTrip) {
  ArpPacket p;
  p.op = ArpPacket::Op::kReply;
  p.sender_mac = kMacA;
  p.sender_ip = kIpA;
  p.target_mac = kMacB;
  p.target_ip = kIpB;
  std::vector<std::uint8_t> buf(ArpPacket::kSize);
  EXPECT_EQ(p.serialize(buf), ArpPacket::kSize);
  const auto parsed = ArpPacket::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ArpPacket::Op::kReply);
  EXPECT_EQ(parsed->sender_mac, kMacA);
  EXPECT_EQ(parsed->sender_ip, kIpA);
  EXPECT_EQ(parsed->target_mac, kMacB);
  EXPECT_EQ(parsed->target_ip, kIpB);
}

TEST(ArpPacket, ParseRejectsMalformed) {
  std::vector<std::uint8_t> buf(ArpPacket::kSize, 0);
  EXPECT_FALSE(ArpPacket::parse(buf).has_value());  // zero hw type
  std::vector<std::uint8_t> good(ArpPacket::kSize);
  ArpPacket{}.serialize(good);
  EXPECT_TRUE(ArpPacket::parse(good).has_value());
  good[6] = 0;
  good[7] = 9;  // invalid op
  EXPECT_FALSE(ArpPacket::parse(good).has_value());
  EXPECT_FALSE(ArpPacket::parse(std::span(good).subspan(0, 20)));
}

TEST(ArpTable, ResolveAfterLearn) {
  ArpTable table(kMacA, kIpA);
  EXPECT_FALSE(table.resolve(kIpB, 0.0).has_value());
  table.learn(kIpB, kMacB, 0.0);
  const auto mac = table.resolve(kIpB, 1.0);
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(*mac, kMacB);
}

TEST(ArpTable, EntriesAgeOut) {
  ArpTable table(kMacA, kIpA);
  table.learn(kIpB, kMacB, 0.0);
  EXPECT_TRUE(table.resolve(kIpB, 299.0).has_value());
  EXPECT_FALSE(table.resolve(kIpB, 301.0).has_value());
  EXPECT_EQ(table.expire(301.0), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(ArpTable, RequestReplyExchange) {
  ArpTable a(kMacA, kIpA);
  ArpTable b(kMacB, kIpB);

  // A broadcasts "who has B?".
  const auto request = a.make_request(kIpB);
  const auto ether = EthernetHeader::parse(request);
  ASSERT_TRUE(ether.has_value());
  EXPECT_TRUE(ether->dst.is_broadcast());
  EXPECT_EQ(ether->ether_type, static_cast<std::uint16_t>(EtherType::kArp));

  // B handles it: learns A and answers.
  const auto reply = b.handle_frame(request, 1.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(b.resolve(kIpA, 1.0), kMacA);

  // A handles the reply: learns B; no counter-reply.
  const auto nothing = a.handle_frame(*reply, 1.1);
  EXPECT_FALSE(nothing.has_value());
  EXPECT_EQ(a.resolve(kIpB, 1.1), kMacB);
}

TEST(ArpTable, RequestForSomeoneElseLearnsButStaysSilent) {
  ArpTable c(kMacB, Ipv4Addr(10, 0, 0, 3));
  ArpTable a(kMacA, kIpA);
  const auto request = a.make_request(kIpB);  // asks for B, not C
  const auto reply = c.handle_frame(request, 0.0);
  EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(c.resolve(kIpA, 0.0), kMacA);  // still learned the sender
}

TEST(ArpTable, NonArpFramesIgnored) {
  ArpTable a(kMacA, kIpA);
  std::vector<std::uint8_t> ipv4_frame(40, 0);
  EthernetHeader h;
  h.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  h.serialize(ipv4_frame);
  EXPECT_FALSE(a.handle_frame(ipv4_frame, 0.0).has_value());
  EXPECT_EQ(a.size(), 0u);
}

TEST(ArpTable, CapacityEvictsStalest) {
  ArpTable::Options options;
  options.max_entries = 2;
  ArpTable table(kMacA, kIpA, options);
  table.learn(Ipv4Addr(10, 0, 0, 10), kMacB, 1.0);
  table.learn(Ipv4Addr(10, 0, 0, 11), kMacB, 2.0);
  table.learn(Ipv4Addr(10, 0, 0, 12), kMacB, 3.0);  // evicts the 1.0 entry
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.resolve(Ipv4Addr(10, 0, 0, 10), 3.0).has_value());
  EXPECT_TRUE(table.resolve(Ipv4Addr(10, 0, 0, 12), 3.0).has_value());
}

TEST(ArpTable, RelearnRefreshesTimestamp) {
  ArpTable table(kMacA, kIpA);
  table.learn(kIpB, kMacB, 0.0);
  table.learn(kIpB, kMacB, 250.0);
  EXPECT_TRUE(table.resolve(kIpB, 500.0).has_value());  // refreshed at 250
}

}  // namespace
}  // namespace tcpdemux::net
