#include "net/hashers.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <random>
#include <unordered_set>
#include <vector>

#include "net/crc32c.h"

namespace tcpdemux::net {
namespace {

FlowKey server_key(Ipv4Addr client, std::uint16_t client_port) {
  return FlowKey{Ipv4Addr(10, 0, 0, 1), 1521, client, client_port};
}

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xcbf43926.
  const char* s = "123456789";
  std::array<std::uint8_t, 9> bytes{};
  std::memcpy(bytes.data(), s, 9);
  EXPECT_EQ(crc32_ieee(bytes), 0xcbf43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32_ieee({}), 0u); }

TEST(Crc32c, StandardCheckValue) {
  // The canonical CRC-32C check: crc32c("123456789") == 0xe3069283.
  const char* s = "123456789";
  std::array<std::uint8_t, 9> bytes{};
  std::memcpy(bytes.data(), s, 9);
  EXPECT_EQ(crc32c(bytes), 0xe3069283u);
  EXPECT_EQ(crc32c_sw(bytes), 0xe3069283u);
}

TEST(Crc32c, EmptyIsZero) {
  EXPECT_EQ(crc32c({}), 0u);
  EXPECT_EQ(crc32c_sw({}), 0u);
}

TEST(Crc32c, DiffersFromIeeeCrc32) {
  // Castagnoli and IEEE are different polynomials; a hasher registry that
  // aliased them would silently lose the hardware-accelerated family.
  const char* s = "123456789";
  std::array<std::uint8_t, 9> bytes{};
  std::memcpy(bytes.data(), s, 9);
  EXPECT_NE(crc32c(bytes), crc32_ieee(bytes));
}

TEST(Crc32c, HardwareMatchesSoftwareOnRandomInputs) {
  // The table fallback is the oracle: on machines with SSE4.2/ARMv8 CRC
  // this pins the silicon against it over every length 0..64 (covering
  // the 8/4/1-byte tail ladder); on machines without, hw falls back to
  // sw and the test degenerates to a tautology rather than failing.
  std::mt19937_64 rng(20260808);
  for (std::size_t len = 0; len <= 64; ++len) {
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(crc32c_hw(bytes), crc32c_sw(bytes)) << "len=" << len;
  }
}

TEST(Crc32c, BackendNameIsKnown) {
  const std::string_view backend = crc32c_backend();
  EXPECT_TRUE(backend == "sse4.2" || backend == "armv8-crc" ||
              backend == "table")
      << backend;
  if (crc32c_hw_available()) {
    EXPECT_NE(backend, "table");
  }
}

TEST(Crc32c, FlowHashMatchesDirectCrcOfRssInput) {
  const FlowKey key = server_key(Ipv4Addr(172, 16, 9, 44), 51515);
  // hash_flow serializes the packet 4-tuple exactly like the RSS input:
  // foreign (source) address, local (destination) address, ports.
  std::array<std::uint8_t, 12> in{};
  const std::uint32_t src = key.foreign_addr.value();
  const std::uint32_t dst = key.local_addr.value();
  in[0] = src >> 24; in[1] = (src >> 16) & 0xff;
  in[2] = (src >> 8) & 0xff; in[3] = src & 0xff;
  in[4] = dst >> 24; in[5] = (dst >> 16) & 0xff;
  in[6] = (dst >> 8) & 0xff; in[7] = dst & 0xff;
  in[8] = key.foreign_port >> 8; in[9] = key.foreign_port & 0xff;
  in[10] = key.local_port >> 8; in[11] = key.local_port & 0xff;
  EXPECT_EQ(hash_flow(HasherKind::kCrc32c, key), crc32c(in));
}

struct RssVector {
  Ipv4Addr src;
  std::uint16_t src_port;
  Ipv4Addr dst;
  std::uint16_t dst_port;
  std::uint32_t expected_tcp;
};

// Microsoft RSS verification suite (IPv4 with TCP ports).
const RssVector kRssVectors[] = {
    {Ipv4Addr(66, 9, 149, 187), 2794, Ipv4Addr(161, 142, 100, 80), 1766,
     0x51ccc178},
    {Ipv4Addr(199, 92, 111, 2), 14230, Ipv4Addr(65, 69, 140, 83), 4739,
     0xc626b0ea},
    {Ipv4Addr(24, 19, 198, 95), 12898, Ipv4Addr(12, 22, 207, 184), 38024,
     0x5c2b394a},
    {Ipv4Addr(38, 27, 205, 30), 48228, Ipv4Addr(209, 142, 163, 6), 2217,
     0xafc7327f},
    {Ipv4Addr(153, 39, 163, 191), 44251, Ipv4Addr(202, 188, 127, 2), 1303,
     0x10e828a2},
};

TEST(Toeplitz, MicrosoftRssTcpVerificationVectors) {
  for (const RssVector& v : kRssVectors) {
    // Build the RSS input: src addr, dst addr, src port, dst port (BE).
    std::array<std::uint8_t, 12> input{};
    const std::uint32_t s = v.src.value();
    const std::uint32_t d = v.dst.value();
    input[0] = s >> 24; input[1] = (s >> 16) & 0xff;
    input[2] = (s >> 8) & 0xff; input[3] = s & 0xff;
    input[4] = d >> 24; input[5] = (d >> 16) & 0xff;
    input[6] = (d >> 8) & 0xff; input[7] = d & 0xff;
    input[8] = v.src_port >> 8; input[9] = v.src_port & 0xff;
    input[10] = v.dst_port >> 8; input[11] = v.dst_port & 0xff;
    EXPECT_EQ(toeplitz_hash(input, rss_default_key()), v.expected_tcp)
        << v.src.to_string() << ":" << v.src_port;
  }
}

TEST(Toeplitz, HashFlowMatchesManualInput) {
  // hash_flow treats the stored key's foreign half as the packet's source.
  const RssVector& v = kRssVectors[0];
  const FlowKey key{v.dst, v.dst_port, v.src, v.src_port};
  EXPECT_EQ(hash_flow(HasherKind::kToeplitz, key), v.expected_tcp);
}

TEST(Toeplitz, ZeroInputHashesToZero) {
  const std::array<std::uint8_t, 12> zeros{};
  EXPECT_EQ(toeplitz_hash(zeros, rss_default_key()), 0u);
}

TEST(Toeplitz, KeyScheduleTableMatchesBitOracleOnRandomFlows) {
  // hash_flow(kToeplitz) runs the per-byte key-schedule table; the generic
  // toeplitz_hash() is the bit-at-a-time oracle. They must agree on every
  // flow, or the table was scheduled wrong.
  std::mt19937_64 rng(1992);
  for (int round = 0; round < 2000; ++round) {
    const FlowKey key{
        Ipv4Addr(static_cast<std::uint32_t>(rng())),
        static_cast<std::uint16_t>(rng()),
        Ipv4Addr(static_cast<std::uint32_t>(rng())),
        static_cast<std::uint16_t>(rng()),
    };
    std::array<std::uint8_t, 12> in{};
    const std::uint32_t src = key.foreign_addr.value();
    const std::uint32_t dst = key.local_addr.value();
    in[0] = src >> 24; in[1] = (src >> 16) & 0xff;
    in[2] = (src >> 8) & 0xff; in[3] = src & 0xff;
    in[4] = dst >> 24; in[5] = (dst >> 16) & 0xff;
    in[6] = (dst >> 8) & 0xff; in[7] = dst & 0xff;
    in[8] = key.foreign_port >> 8; in[9] = key.foreign_port & 0xff;
    in[10] = key.local_port >> 8; in[11] = key.local_port & 0xff;
    ASSERT_EQ(hash_flow(HasherKind::kToeplitz, key),
              toeplitz_hash(in, rss_default_key()))
        << "round " << round;
  }
}

TEST(Toeplitz, RssFlowInputSerializesPacketPerspective) {
  // rss_flow_input is the byte string both Toeplitz paths hash: source
  // address, destination address, source port, destination port, with the
  // stored key's foreign half as the packet's source.
  const RssVector& v = kRssVectors[0];
  const FlowKey key{v.dst, v.dst_port, v.src, v.src_port};
  const std::array<std::uint8_t, 12> in = rss_flow_input(key);
  const std::uint32_t s = v.src.value();
  const std::uint32_t d = v.dst.value();
  EXPECT_EQ(in[0], s >> 24);
  EXPECT_EQ(in[3], s & 0xff);
  EXPECT_EQ(in[4], d >> 24);
  EXPECT_EQ(in[7], d & 0xff);
  EXPECT_EQ(in[8], v.src_port >> 8);
  EXPECT_EQ(in[9], v.src_port & 0xff);
  EXPECT_EQ(in[10], v.dst_port >> 8);
  EXPECT_EQ(in[11], v.dst_port & 0xff);
  EXPECT_EQ(toeplitz_hash(in, rss_default_key()), v.expected_tcp);
}

TEST(Toeplitz, KeyedTablePathMatchesCallerKeyOracleOnMicrosoftVectors) {
  // The keyed table path is seeded_hash_mix over the unkeyed key-schedule
  // hash; the oracle composes the same post-mix over the bit-at-a-time
  // caller-key toeplitz_hash. Both paths must stay bit-identical under
  // every @hexseed, including seed 0 (== the unkeyed function exactly).
  for (const std::uint32_t seed : {0x0u, 0x1u, 0x5eedu, 0x1f2e3d4cu,
                                   0xffffffffu}) {
    for (const RssVector& v : kRssVectors) {
      const FlowKey key{v.dst, v.dst_port, v.src, v.src_port};
      const std::uint32_t table =
          hash_flow(HashSpec{HasherKind::kToeplitz, seed}, key);
      const std::uint32_t oracle_unkeyed =
          toeplitz_hash(rss_flow_input(key), rss_default_key());
      const std::uint32_t oracle =
          seed == 0 ? oracle_unkeyed : seeded_hash_mix(oracle_unkeyed, seed);
      EXPECT_EQ(table, oracle)
          << std::hex << "seed " << seed << " " << v.src.to_string();
      if (seed == 0) {
        EXPECT_EQ(table, v.expected_tcp);
      }
    }
  }
}

TEST(Toeplitz, KeyedPathsAgreeUnderSeedRotationOnRandomFlows) {
  // @hexseed rotation as the rehash path drives it (next_seed chain), over
  // random keys: the table path and the composed caller-key oracle must
  // never diverge, or a seed rotation would silently re-steer flows
  // differently in the two implementations.
  std::mt19937_64 rng(0x5eed);
  std::uint32_t seed = 0x1u;
  for (int round = 0; round < 500; ++round) {
    if (round % 50 == 0) seed = next_seed(seed);
    const FlowKey key{
        Ipv4Addr(static_cast<std::uint32_t>(rng())),
        static_cast<std::uint16_t>(rng()),
        Ipv4Addr(static_cast<std::uint32_t>(rng())),
        static_cast<std::uint16_t>(rng()),
    };
    const std::uint32_t unkeyed =
        toeplitz_hash(rss_flow_input(key), rss_default_key());
    ASSERT_EQ(hash_flow(HashSpec{HasherKind::kToeplitz, seed}, key),
              seeded_hash_mix(unkeyed, seed))
        << "round " << round;
    // And the seeded family really is a different family: some flow in
    // every rotation must move (checked in aggregate below).
  }
}

TEST(Toeplitz, SeedRotationActuallyMovesFlows) {
  // A rotation that never changed any hash would make the keyed family
  // pointless; check a healthy fraction of flows re-steer across 8 shards.
  std::mt19937_64 rng(7);
  int moved = 0;
  const int total = 256;
  for (int i = 0; i < total; ++i) {
    const FlowKey key{
        Ipv4Addr(static_cast<std::uint32_t>(rng())),
        static_cast<std::uint16_t>(rng()),
        Ipv4Addr(static_cast<std::uint32_t>(rng())),
        static_cast<std::uint16_t>(rng()),
    };
    const std::uint32_t before =
        hash_flow(HashSpec{HasherKind::kToeplitz, 0x5eed}, key) % 8;
    const std::uint32_t after =
        hash_flow(HashSpec{HasherKind::kToeplitz, next_seed(0x5eed)}, key) % 8;
    if (before != after) ++moved;
  }
  EXPECT_GT(moved, total / 2);
}

TEST(Hashers, AllKindsHaveDistinctNames) {
  std::unordered_set<std::string_view> names;
  for (const HasherKind kind : kAllHashers) {
    EXPECT_TRUE(names.insert(hasher_name(kind)).second)
        << "duplicate name " << hasher_name(kind);
  }
  EXPECT_EQ(names.size(), kAllHashers.size());
}

TEST(Hashers, DeterministicAcrossCalls) {
  const FlowKey key = server_key(Ipv4Addr(10, 1, 2, 3), 40001);
  for (const HasherKind kind : kAllHashers) {
    EXPECT_EQ(hash_flow(kind, key), hash_flow(kind, key))
        << hasher_name(kind);
  }
}

TEST(Hashers, BsdModuloIgnoresAddressHighBits) {
  // The historical weakness: the hash is a plain sum, so keys arranged so
  // that foreign_addr + ports stays constant collide completely.
  const FlowKey a = server_key(Ipv4Addr(10, 1, 0, 10), 40000);
  const FlowKey b = server_key(Ipv4Addr(10, 1, 0, 9), 40001);
  EXPECT_EQ(hash_flow(HasherKind::kBsdModulo, a),
            hash_flow(HasherKind::kBsdModulo, b));
}

TEST(Hashers, StrongHashesSeparateAdjacentKeys) {
  const FlowKey a = server_key(Ipv4Addr(10, 1, 0, 10), 40000);
  const FlowKey b = server_key(Ipv4Addr(10, 1, 0, 9), 40001);
  for (const HasherKind kind :
       {HasherKind::kCrc32, HasherKind::kJenkins, HasherKind::kToeplitz,
        HasherKind::kMultiplicative}) {
    EXPECT_NE(hash_flow(kind, a), hash_flow(kind, b)) << hasher_name(kind);
  }
}

TEST(Hashers, AddFoldStaysWithin16Bits) {
  for (std::uint16_t port = 1000; port < 1100; ++port) {
    const FlowKey key = server_key(Ipv4Addr(192, 168, 3, 4), port);
    EXPECT_LE(hash_flow(HasherKind::kAddFold, key), 0xffffu);
  }
}

TEST(Hashers, XorFoldSensitiveToEveryField) {
  const FlowKey base = server_key(Ipv4Addr(10, 1, 2, 3), 40001);
  const std::uint32_t h = hash_flow(HasherKind::kXorFold, base);
  FlowKey k = base;
  k.foreign_port ^= 1;
  EXPECT_NE(hash_flow(HasherKind::kXorFold, k), h);
  k = base;
  k.local_port ^= 1;
  EXPECT_NE(hash_flow(HasherKind::kXorFold, k), h);
  k = base;
  k.foreign_addr = Ipv4Addr(k.foreign_addr.value() ^ 0x10000);
  EXPECT_NE(hash_flow(HasherKind::kXorFold, k), h);
  k = base;
  k.local_addr = Ipv4Addr(k.local_addr.value() ^ 0x10000);
  EXPECT_NE(hash_flow(HasherKind::kXorFold, k), h);
}

TEST(Hashers, ChainIndexInRange) {
  for (const HasherKind kind : kAllHashers) {
    for (std::uint16_t port = 2000; port < 2050; ++port) {
      const FlowKey key = server_key(Ipv4Addr(10, 7, 7, 7), port);
      EXPECT_LT(hash_chain(kind, key, 19), 19u) << hasher_name(kind);
    }
  }
}

}  // namespace
}  // namespace tcpdemux::net
