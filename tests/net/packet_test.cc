#include "net/packet.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::net {
namespace {

std::vector<std::uint8_t> sample_wire(std::size_t payload = 64) {
  return PacketBuilder()
      .from({Ipv4Addr(10, 1, 0, 2), 40001})
      .to({Ipv4Addr(10, 0, 0, 1), 1521})
      .seq(1000)
      .ack_seq(2000)
      .flags(TcpFlag::kPsh)
      .payload_size(payload)
      .build();
}

TEST(Packet, BuildParseRoundTrip) {
  const auto wire = sample_wire();
  const auto p = Packet::parse(wire);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ip.src, Ipv4Addr(10, 1, 0, 2));
  EXPECT_EQ(p->ip.dst, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(p->tcp.src_port, 40001);
  EXPECT_EQ(p->tcp.dst_port, 1521);
  EXPECT_EQ(p->tcp.seq, 1000u);
  EXPECT_EQ(p->tcp.ack, 2000u);
  EXPECT_TRUE(p->tcp.has(TcpFlag::kAck));
  EXPECT_TRUE(p->tcp.has(TcpFlag::kPsh));
  EXPECT_EQ(p->payload.size(), 64u);
}

TEST(Packet, ReceiverFlowKeyIsDestinationCentric) {
  const auto p = Packet::parse(sample_wire());
  ASSERT_TRUE(p.has_value());
  const FlowKey k = p->receiver_flow_key();
  EXPECT_EQ(k.local_addr, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(k.local_port, 1521);
  EXPECT_EQ(k.foreign_addr, Ipv4Addr(10, 1, 0, 2));
  EXPECT_EQ(k.foreign_port, 40001);
}

TEST(Packet, WireLengthMatchesHeadersPlusPayload) {
  const auto wire = sample_wire(10);
  EXPECT_EQ(wire.size(), 20u + 20u + 10u);
}

TEST(Packet, ParseRejectsCorruptTcpChecksum) {
  auto wire = sample_wire();
  wire.back() ^= 0x01;  // flip a payload bit; TCP checksum must catch it
  EXPECT_FALSE(Packet::parse(wire).has_value());
}

TEST(Packet, ParseRejectsCorruptIpChecksum) {
  auto wire = sample_wire();
  wire[14] ^= 0x01;  // corrupt source address
  EXPECT_FALSE(Packet::parse(wire).has_value());
}

TEST(Packet, ParseRejectsNonTcpProtocol) {
  auto wire = sample_wire(0);
  // Rewrite the protocol to UDP and fix the IP checksum via re-serialize.
  auto ip = Ipv4Header::parse(wire);
  ASSERT_TRUE(ip.has_value());
  ip->protocol = 17;
  ip->serialize(wire);
  EXPECT_FALSE(Packet::parse(wire).has_value());
}

TEST(Packet, ParseRejectsFragments) {
  auto wire = sample_wire(0);
  auto ip = Ipv4Header::parse(wire);
  ASSERT_TRUE(ip.has_value());
  ip->more_fragments = true;
  ip->serialize(wire);
  EXPECT_FALSE(Packet::parse(wire).has_value());
}

TEST(Packet, ParseRejectsTruncatedWire) {
  const auto wire = sample_wire();
  const std::span<const std::uint8_t> shorter(wire.data(), 30);
  EXPECT_FALSE(Packet::parse(shorter).has_value());
}

TEST(Packet, ZeroPayloadAck) {
  const auto wire = PacketBuilder()
                        .from({Ipv4Addr(10, 1, 0, 2), 40001})
                        .to({Ipv4Addr(10, 0, 0, 1), 1521})
                        .seq(5)
                        .ack_seq(6)
                        .build();
  const auto p = Packet::parse(wire);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->payload.empty());
  EXPECT_TRUE(p->tcp.has(TcpFlag::kAck));
  EXPECT_FALSE(p->tcp.has(TcpFlag::kPsh));
}

TEST(Packet, SynHasNoAckFlagUnlessRequested) {
  const auto wire = PacketBuilder()
                        .from({Ipv4Addr(10, 1, 0, 2), 40001})
                        .to({Ipv4Addr(10, 0, 0, 1), 1521})
                        .seq(7)
                        .flags(TcpFlag::kSyn)
                        .build();
  const auto p = Packet::parse(wire);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->tcp.has(TcpFlag::kSyn));
  EXPECT_FALSE(p->tcp.has(TcpFlag::kAck));
}

TEST(Packet, PayloadBytesArePreserved) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  const auto wire = PacketBuilder()
                        .from({Ipv4Addr(10, 1, 0, 2), 40001})
                        .to({Ipv4Addr(10, 0, 0, 1), 1521})
                        .payload(data)
                        .build();
  const auto p = Packet::parse(wire);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->payload, data);
}

}  // namespace
}  // namespace tcpdemux::net
