#include "net/pcap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "net/packet.h"

namespace tcpdemux::net {
namespace {

std::vector<std::uint8_t> sample_packet(std::uint16_t port) {
  return PacketBuilder()
      .from({Ipv4Addr(10, 1, 0, 2), port})
      .to({Ipv4Addr(10, 0, 0, 1), 1521})
      .seq(100)
      .ack_seq(200)
      .payload_size(32)
      .build();
}

TEST(Pcap, WriteReadRoundTrip) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  const auto p1 = sample_packet(40001);
  const auto p2 = sample_packet(40002);
  EXPECT_TRUE(writer.write(1.25, p1));
  EXPECT_TRUE(writer.write(2.5, p2));
  EXPECT_EQ(writer.packets_written(), 2u);

  PcapReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.link_type(), PcapWriter::kLinkTypeRaw);

  const auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_NEAR(r1->timestamp, 1.25, 1e-6);
  EXPECT_EQ(r1->bytes, p1);

  const auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_NEAR(r2->timestamp, 2.5, 1e-6);
  EXPECT_EQ(r2->bytes, p2);

  EXPECT_FALSE(reader.next().has_value());  // clean EOF
  EXPECT_TRUE(reader.ok());
}

TEST(Pcap, GlobalHeaderLayout) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  const std::string header = buffer.str();
  ASSERT_EQ(header.size(), 24u);
  // Magic in host order at the front.
  std::uint32_t magic = 0;
  std::memcpy(&magic, header.data(), 4);
  EXPECT_EQ(magic, PcapWriter::kMagic);
}

TEST(Pcap, PacketsRemainParseable) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  writer.write(0.0, sample_packet(40007));
  PcapReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  const auto packet = Packet::parse(record->bytes);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->tcp.src_port, 40007);
}

TEST(Pcap, RejectsGarbageHeader) {
  std::stringstream buffer("this is not a capture file at all........");
  PcapReader reader(buffer);
  EXPECT_FALSE(reader.ok());
}

TEST(Pcap, EmptyStreamRejected) {
  std::stringstream buffer;
  PcapReader reader(buffer);
  EXPECT_FALSE(reader.ok());
}

TEST(Pcap, TruncatedRecordFlagsError) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  writer.write(1.0, sample_packet(40001));
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 10);  // chop the payload tail
  std::stringstream truncated(bytes);
  PcapReader reader(truncated);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.ok());
}

TEST(Pcap, SwappedEndiannessAccepted) {
  // Build a minimal byte-swapped capture by hand: swapped magic, version
  // 2.4, linktype 101, one 4-byte record.
  const auto put32be = [](std::string& s, std::uint32_t v) {
    s.push_back(static_cast<char>(v >> 24));
    s.push_back(static_cast<char>((v >> 16) & 0xff));
    s.push_back(static_cast<char>((v >> 8) & 0xff));
    s.push_back(static_cast<char>(v & 0xff));
  };
  const auto put16be = [](std::string& s, std::uint16_t v) {
    s.push_back(static_cast<char>(v >> 8));
    s.push_back(static_cast<char>(v & 0xff));
  };
  std::string file;
  // Writing big-endian on a little-endian host == "swapped" for reader.
  put32be(file, PcapWriter::kMagic);
  put16be(file, 2);
  put16be(file, 4);
  put32be(file, 0);
  put32be(file, 0);
  put32be(file, 65535);
  put32be(file, 101);
  put32be(file, 7);  // ts sec
  put32be(file, 500000);  // ts usec
  put32be(file, 4);  // incl
  put32be(file, 4);  // orig
  file += "abcd";

  std::stringstream buffer(file);
  PcapReader reader(buffer);
  // On a little-endian host the big-endian magic reads as swapped.
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.link_type(), 101u);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_NEAR(record->timestamp, 7.5, 1e-6);
  EXPECT_EQ(record->bytes.size(), 4u);
}

TEST(Pcap, ReadAllDrainsToCleanEof) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  for (int i = 0; i < 5; ++i) {
    writer.write(static_cast<double>(i),
                 sample_packet(static_cast<std::uint16_t>(40001 + i)));
  }
  PcapReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  const auto records = reader.read_all();
  EXPECT_EQ(records.size(), 5u);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.read_all().empty());  // idempotent at EOF
}

TEST(Pcap, ReadAllSalvagesTruncatedTail) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  for (int i = 0; i < 4; ++i) {
    writer.write(static_cast<double>(i),
                 sample_packet(static_cast<std::uint16_t>(40001 + i)));
  }
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 7);  // cut into the last record's payload
  std::stringstream truncated(bytes);
  PcapReader reader(truncated);
  ASSERT_TRUE(reader.ok());
  const auto records = reader.read_all();
  EXPECT_EQ(records.size(), 3u) << "intact prefix survives";
  EXPECT_FALSE(reader.ok()) << "damage is reported";
}

TEST(Pcap, GoldenRoundTripReEmitsByteIdentical) {
  // write -> read_all -> re-emit must reproduce the file byte for byte:
  // nothing (timestamps included) may be lost or rewritten in transit.
  std::stringstream first;
  PcapWriter writer(first);
  writer.write(0.000001, sample_packet(40001));
  writer.write(1.25, sample_packet(40002));
  writer.write(3.999999, sample_packet(40003));
  const std::string golden = first.str();

  std::stringstream input(golden);
  PcapReader reader(input);
  ASSERT_TRUE(reader.ok());
  const auto records = reader.read_all();
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(records.size(), 3u);

  std::stringstream second;
  PcapWriter rewriter(second, reader.link_type());
  for (const auto& record : records) {
    rewriter.write(record.timestamp, record.bytes);
  }
  EXPECT_EQ(second.str(), golden);
}

TEST(Pcap, ReadAllHandlesByteSwappedCaptures) {
  const auto put32be = [](std::string& s, std::uint32_t v) {
    s.push_back(static_cast<char>(v >> 24));
    s.push_back(static_cast<char>((v >> 16) & 0xff));
    s.push_back(static_cast<char>((v >> 8) & 0xff));
    s.push_back(static_cast<char>(v & 0xff));
  };
  const auto put16be = [](std::string& s, std::uint16_t v) {
    s.push_back(static_cast<char>(v >> 8));
    s.push_back(static_cast<char>(v & 0xff));
  };
  std::string file;
  put32be(file, PcapWriter::kMagic);  // big-endian == swapped when read
  put16be(file, 2);
  put16be(file, 4);
  put32be(file, 0);
  put32be(file, 0);
  put32be(file, 65535);
  put32be(file, 101);
  for (std::uint32_t i = 0; i < 3; ++i) {
    put32be(file, 10 + i);  // ts sec
    put32be(file, 0);       // ts usec
    put32be(file, 4);       // incl
    put32be(file, 4);       // orig
    file += "wxyz";
  }
  std::stringstream buffer(file);
  PcapReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(reader.ok());
  EXPECT_NEAR(records[2].timestamp, 12.0, 1e-6);
}

}  // namespace
}  // namespace tcpdemux::net
