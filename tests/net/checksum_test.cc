#include "net/checksum.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace tcpdemux::net {
namespace {

TEST(Checksum, RFC1071ReferenceExample) {
  // The worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
  // sum to 0xddf2 before complement.
  const std::array<std::uint8_t, 8> bytes = {0x00, 0x01, 0xf2, 0x03,
                                             0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(bytes), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, EmptyInputIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 1> one = {0xab};
  // Word is 0xab00; checksum is its complement.
  EXPECT_EQ(internet_checksum(one), static_cast<std::uint16_t>(~0xab00));
}

TEST(Checksum, VerifyAcceptsEmbeddedChecksum) {
  // Build a buffer, embed its checksum, verify it sums to zero.
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x28, 0x12, 0x34,
                                    0x00, 0x00, 0x40, 0x06, 0x00, 0x00,
                                    0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00,
                                    0x00, 0x02};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_TRUE(verify_checksum(data));
  data[12] ^= 0x01;  // corrupt one bit
  EXPECT_FALSE(verify_checksum(data));
}

TEST(Checksum, ChunkedFeedMatchesOneShot) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<std::uint8_t>(i));
  ChecksumAccumulator chunked;
  chunked.add(std::span(data).subspan(0, 40));
  chunked.add(std::span(data).subspan(40, 60));
  EXPECT_EQ(chunked.finish(), internet_checksum(data));
}

TEST(Checksum, CarryFolding) {
  // 0xffff + 0xffff wraps with end-around carry to 0xffff; complement 0.
  const std::array<std::uint8_t, 4> bytes = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(internet_checksum(bytes), 0x0000);
}

TEST(Checksum, TcpPseudoHeaderChangesSum) {
  const std::array<std::uint8_t, 4> seg = {0xde, 0xad, 0xbe, 0xef};
  const auto a = tcp_checksum(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), seg);
  const auto b = tcp_checksum(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 3), seg);
  EXPECT_NE(a, b);
}

TEST(Checksum, TcpChecksumVerifiesWhenEmbedded) {
  // A 20-byte TCP header with checksum zeroed, then patched.
  std::vector<std::uint8_t> seg(20, 0);
  seg[0] = 0x30; seg[1] = 0x39;  // src port 12345
  seg[2] = 0x00; seg[3] = 0x50;  // dst port 80
  seg[12] = 0x50;                // data offset 5
  seg[13] = 0x02;                // SYN
  const Ipv4Addr src(192, 168, 0, 1);
  const Ipv4Addr dst(192, 168, 0, 2);
  const std::uint16_t sum = tcp_checksum(src, dst, seg);
  seg[16] = static_cast<std::uint8_t>(sum >> 8);
  seg[17] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_EQ(tcp_checksum(src, dst, seg), 0);
}

}  // namespace
}  // namespace tcpdemux::net
