#include "net/hash_quality.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace tcpdemux::net {
namespace {

std::vector<FlowKey> sequential_port_keys(std::uint32_t n) {
  std::vector<FlowKey> keys;
  keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    keys.push_back(FlowKey{Ipv4Addr(10, 0, 0, 1), 1521,
                           Ipv4Addr(10, 2, 0, 5),
                           static_cast<std::uint16_t>(1024 + i)});
  }
  return keys;
}

TEST(HashQuality, HistogramSumsToKeyCount) {
  const auto keys = sequential_port_keys(500);
  const auto r = evaluate_hash_quality(HasherKind::kCrc32, keys, 19);
  EXPECT_EQ(std::accumulate(r.histogram.begin(), r.histogram.end(),
                            std::size_t{0}),
            500u);
  EXPECT_EQ(r.keys, 500u);
  EXPECT_EQ(r.chains, 19u);
}

TEST(HashQuality, MeanChainIsKeysOverChains) {
  const auto keys = sequential_port_keys(190);
  const auto r = evaluate_hash_quality(HasherKind::kJenkins, keys, 19);
  EXPECT_DOUBLE_EQ(r.mean_chain, 10.0);
}

TEST(HashQuality, PerfectBalanceHasZeroChiSquared) {
  // Sequential ports through the modulo of the BSD hash distribute
  // perfectly when the chain count divides the port range pattern.
  const auto keys = sequential_port_keys(190);
  const auto r = evaluate_hash_quality(HasherKind::kBsdModulo, keys, 19);
  // Sequential foreign ports with everything else fixed step the sum by 1
  // per key: perfectly uniform chains.
  EXPECT_EQ(r.max_chain, 10u);
  EXPECT_DOUBLE_EQ(r.chi_squared, 0.0);
  EXPECT_DOUBLE_EQ(r.stddev_chain, 0.0);
  EXPECT_EQ(r.empty_chains, 0u);
}

TEST(HashQuality, ExpectedSearchForUniformChains) {
  // Chains of length L have expected scan (L+1)/2 for a random stored key.
  const auto keys = sequential_port_keys(190);
  const auto r = evaluate_hash_quality(HasherKind::kBsdModulo, keys, 19);
  EXPECT_NEAR(r.expected_search, (10.0 + 1.0) / 2.0, 1e-12);
}

TEST(HashQuality, SingleChainDegeneratesToLinearList) {
  const auto keys = sequential_port_keys(100);
  const auto r = evaluate_hash_quality(HasherKind::kCrc32, keys, 1);
  EXPECT_EQ(r.max_chain, 100u);
  EXPECT_NEAR(r.expected_search, (100.0 + 1.0) / 2.0, 1e-12);
}

TEST(HashQuality, EmptyKeySetIsWellDefined) {
  const auto r = evaluate_hash_quality(HasherKind::kCrc32, {}, 19);
  EXPECT_EQ(r.keys, 0u);
  EXPECT_EQ(r.max_chain, 0u);
  EXPECT_EQ(r.empty_chains, 19u);
  EXPECT_DOUBLE_EQ(r.expected_search, 0.0);
}

TEST(HashQuality, StrongHashChiSquaredReasonable) {
  // For a good hash, the chi-squared statistic over H-1 = 18 dof should be
  // within a very generous envelope (mean 18, stddev 6).
  const auto keys = sequential_port_keys(2000);
  for (const HasherKind kind :
       {HasherKind::kCrc32, HasherKind::kCrc32c, HasherKind::kJenkins,
        HasherKind::kToeplitz}) {
    const auto r = evaluate_hash_quality(kind, keys, 19);
    EXPECT_LT(r.chi_squared, 18.0 + 10.0 * 6.0) << hasher_name(kind);
  }
}

}  // namespace
}  // namespace tcpdemux::net
