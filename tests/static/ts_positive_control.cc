// Positive control for the negative-compile harness: exercises every
// annotation vocabulary item the repo uses — capability fields, GUARDED_BY
// data, REQUIRES helpers, RAII scoped acquisition, try_lock with manual
// release, and reader/writer locking — in the shapes the analysis accepts.
// This file MUST compile cleanly under -Werror=thread-safety; if it stops
// compiling, the harness (not the planted violations) is broken, so the
// negative cases below prove nothing.
#include "core/thread_annotations.h"

namespace {

using tcpdemux::core::Mutex;
using tcpdemux::core::MutexLock;
using tcpdemux::core::ReaderMutexLock;
using tcpdemux::core::SharedMutex;
using tcpdemux::core::WriterMutexLock;

class Account {
 public:
  void deposit(int amount) {
    const MutexLock lock(mutex_);
    balance_ += amount;
  }

  int balance() const {
    const MutexLock lock(mutex_);
    return balance_;
  }

  // REQUIRES helper: callers must hold the lock; no re-lock inside.
  int balance_locked() const REQUIRES(mutex_) { return balance_; }

  int withdraw_all() {
    const MutexLock lock(mutex_);
    const int taken = balance_locked();
    balance_ = 0;
    return taken;
  }

  // try_lock + manual unlock, the rcu_demuxer cache-install shape.
  bool try_deposit(int amount) {
    if (!mutex_.try_lock()) return false;
    balance_ += amount;
    mutex_.unlock();
    return true;
  }

 private:
  mutable Mutex mutex_;
  int balance_ GUARDED_BY(mutex_) = 0;
};

class Directory {
 public:
  void publish(int generation) {
    const WriterMutexLock lock(mutex_);
    generation_ = generation;
  }

  int snapshot() const {
    const ReaderMutexLock lock(mutex_);
    return generation_;
  }

 private:
  mutable SharedMutex mutex_;
  int generation_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

// The harness builds this as a static library; reference the types so the
// translation unit is not empty and nothing is optimized out unanalyzed.
int tcpdemux_static_positive_control() {
  Account account;
  account.deposit(2);
  account.try_deposit(3);
  Directory directory;
  directory.publish(1);
  return account.withdraw_all() + account.balance() + directory.snapshot();
}
