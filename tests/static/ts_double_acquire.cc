// Negative-compile case: acquiring a mutex the calling scope already
// holds. Expected Clang diagnostic (asserted by tests/static/CMakeLists):
//   acquiring mutex 'mutex_' that is already held
#include "core/thread_annotations.h"

namespace {

class Account {
 public:
  void deposit_twice(int amount) {
    mutex_.lock();
    mutex_.lock();  // planted violation: already held
    balance_ += amount;
    mutex_.unlock();
    mutex_.unlock();
  }

 private:
  tcpdemux::core::Mutex mutex_;
  int balance_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

void tcpdemux_static_double_acquire() {
  Account account;
  account.deposit_twice(1);
}
