// Negative-compile case: calling a REQUIRES(mutex_) function without
// holding the mutex. Expected Clang diagnostic (asserted by
// tests/static/CMakeLists):
//   calling function 'balance_locked' requires holding mutex 'mutex_'
#include "core/thread_annotations.h"

namespace {

class Account {
 public:
  int balance_locked() const REQUIRES(mutex_) { return balance_; }

  int balance_unlocked() const {
    return balance_locked();  // planted violation: caller holds nothing
  }

 private:
  mutable tcpdemux::core::Mutex mutex_;
  int balance_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int tcpdemux_static_missing_requires() {
  const Account account;
  return account.balance_unlocked();
}
