// Negative-compile case: writing a GUARDED_BY field without holding its
// mutex. Expected Clang diagnostic (asserted by tests/static/CMakeLists):
//   writing variable 'balance_' requires holding mutex 'mutex_' exclusively
#include "core/thread_annotations.h"

namespace {

class Account {
 public:
  void deposit_unguarded(int amount) {
    balance_ += amount;  // planted violation: no lock held
  }

 private:
  tcpdemux::core::Mutex mutex_;
  int balance_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

void tcpdemux_static_unguarded_access() {
  Account account;
  account.deposit_unguarded(1);
}
