#include "tcp/udp_table.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace tcpdemux::tcp {
namespace {

using net::Ipv4Addr;

constexpr Ipv4Addr kServer{10, 0, 0, 1};
constexpr Ipv4Addr kClient{10, 1, 0, 2};

core::DemuxConfig sequent_config() {
  core::DemuxConfig c;
  c.algorithm = core::Algorithm::kSequent;
  c.hasher = net::HasherKind::kCrc32;
  return c;
}

std::vector<std::uint8_t> datagram(std::uint16_t src_port,
                                   std::uint16_t dst_port,
                                   std::size_t payload = 32) {
  const std::vector<std::uint8_t> body(payload, 0x5a);
  return net::build_udp_packet(kClient, src_port, kServer, dst_port, body);
}

TEST(UdpTable, ConnectedSocketExactMatch) {
  UdpTable table(sequent_config());
  core::Pcb* pcb =
      table.connect(net::FlowKey{kServer, 53, kClient, 40001});
  ASSERT_NE(pcb, nullptr);
  const auto r = table.deliver_wire(datagram(40001, 53));
  EXPECT_EQ(r.status, UdpTable::Delivery::kConnected);
  EXPECT_EQ(r.pcb, pcb);
  EXPECT_EQ(pcb->segs_in, 1u);
  EXPECT_EQ(pcb->bytes_in, 32u);
}

TEST(UdpTable, BoundSocketCatchesUnconnectedTraffic) {
  UdpTable table(sequent_config());
  ASSERT_TRUE(table.bind(kServer, 53));
  const auto r = table.deliver_wire(datagram(40001, 53));
  EXPECT_EQ(r.status, UdpTable::Delivery::kBound);
  ASSERT_EQ(table.bound().size(), 1u);
  EXPECT_EQ(table.bound()[0].datagrams, 1u);
  EXPECT_EQ(table.bound()[0].bytes, 32u);
}

TEST(UdpTable, ConnectedBeatsBound) {
  UdpTable table(sequent_config());
  table.bind(kServer, 53);
  core::Pcb* pcb = table.connect(net::FlowKey{kServer, 53, kClient, 40001});
  const auto r = table.deliver_wire(datagram(40001, 53));
  EXPECT_EQ(r.status, UdpTable::Delivery::kConnected);
  EXPECT_EQ(r.pcb, pcb);
  EXPECT_EQ(table.bound()[0].datagrams, 0u);
}

TEST(UdpTable, ExactBindBeatsWildcardBind) {
  UdpTable table(sequent_config());
  table.bind(Ipv4Addr::any(), 53);
  table.bind(kServer, 53);
  (void)table.deliver_wire(datagram(40001, 53));
  EXPECT_EQ(table.bound()[0].datagrams, 0u);  // wildcard skipped
  EXPECT_EQ(table.bound()[1].datagrams, 1u);
}

TEST(UdpTable, UnreachablePortCounted) {
  UdpTable table(sequent_config());
  table.bind(kServer, 53);
  const auto r = table.deliver_wire(datagram(40001, 54));
  EXPECT_EQ(r.status, UdpTable::Delivery::kUnreachable);
  EXPECT_EQ(table.unreachable(), 1u);
}

TEST(UdpTable, DuplicateBindRejected) {
  UdpTable table(sequent_config());
  EXPECT_TRUE(table.bind(kServer, 53));
  EXPECT_FALSE(table.bind(kServer, 53));
}

TEST(UdpTable, CorruptChecksumRejected) {
  UdpTable table(sequent_config());
  table.bind(kServer, 53);
  auto wire = datagram(40001, 53);
  wire.back() ^= 0x01;
  const auto r = table.deliver_wire(wire);
  EXPECT_EQ(r.status, UdpTable::Delivery::kParseError);
}

TEST(UdpTable, NonUdpProtocolRejected) {
  UdpTable table(sequent_config());
  // A TCP packet is not ours.
  const auto tcp_wire = net::PacketBuilder()
                            .from({kClient, 40001})
                            .to({kServer, 53})
                            .build();
  const auto r = table.deliver_wire(tcp_wire);
  EXPECT_EQ(r.status, UdpTable::Delivery::kParseError);
}

TEST(UdpTable, ManyConnectedSocketsDemuxCheaply) {
  UdpTable table(sequent_config());
  for (std::uint16_t p = 0; p < 500; ++p) {
    ASSERT_NE(table.connect(net::FlowKey{
                  kServer, 53, kClient,
                  static_cast<std::uint16_t>(40000 + p)}),
              nullptr);
  }
  for (std::uint16_t p = 0; p < 500; ++p) {
    const auto r = table.deliver_wire(
        datagram(static_cast<std::uint16_t>(40000 + p), 53, 8));
    ASSERT_EQ(r.status, UdpTable::Delivery::kConnected);
  }
  // 500 sockets over 19 chains: the paper's economics apply to UDP too.
  EXPECT_LT(table.demuxer().stats().mean_examined(), 30.0);
}

TEST(UdpTable, DisconnectRemovesExactMatch) {
  UdpTable table(sequent_config());
  table.bind(kServer, 53);
  table.connect(net::FlowKey{kServer, 53, kClient, 40001});
  EXPECT_TRUE(table.disconnect(net::FlowKey{kServer, 53, kClient, 40001}));
  const auto r = table.deliver_wire(datagram(40001, 53));
  EXPECT_EQ(r.status, UdpTable::Delivery::kBound);  // falls back
}

}  // namespace
}  // namespace tcpdemux::tcp
