#include "tcp/socket_table.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::tcp {
namespace {

using net::Ipv4Addr;
using net::Packet;
using net::PacketBuilder;
using net::TcpFlag;

constexpr Ipv4Addr kServer{10, 0, 0, 1};
constexpr std::uint16_t kPort = 1521;

class SocketTableTest : public ::testing::Test {
 protected:
  SocketTableTest()
      : table_(core::DemuxConfig{core::Algorithm::kSequent, 19,
                                 net::HasherKind::kCrc32, true, 0},
               [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                 outbound_.push_back(std::move(wire));
               }) {}

  Packet last_out() const {
    const auto p = Packet::parse(outbound_.back());
    EXPECT_TRUE(p.has_value());
    return *p;
  }

  std::vector<std::uint8_t> client_packet(std::uint16_t client_port,
                                          std::uint8_t flags,
                                          std::uint32_t seq,
                                          std::uint32_t ack,
                                          std::size_t payload = 0) {
    PacketBuilder b;
    b.from({Ipv4Addr(10, 1, 0, 2), client_port})
        .to({kServer, kPort})
        .seq(seq)
        .flags(flags)
        .payload_size(payload);
    if ((flags & static_cast<std::uint8_t>(TcpFlag::kAck)) != 0) {
      b.ack_seq(ack);
    }
    return b.build();
  }

  SocketTable table_;
  std::vector<std::vector<std::uint8_t>> outbound_;
};

TEST_F(SocketTableTest, SynToListenerSpawnsConnection) {
  ASSERT_TRUE(table_.listen(kServer, kPort));
  const auto r = table_.deliver_wire(
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  EXPECT_EQ(r.status, SocketTable::Delivery::kNewConnection);
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_EQ(r.pcb->state, core::TcpState::kSynReceived);
  EXPECT_EQ(table_.connection_count(), 1u);
  // The SYN|ACK went out on the wire with valid checksums.
  const Packet synack = last_out();
  EXPECT_TRUE(synack.tcp.has(TcpFlag::kSyn));
  EXPECT_TRUE(synack.tcp.has(TcpFlag::kAck));
  EXPECT_EQ(synack.tcp.ack, 101u);
  EXPECT_EQ(synack.ip.dst, Ipv4Addr(10, 1, 0, 2));
}

TEST_F(SocketTableTest, FullHandshakeAndDataExchange) {
  ASSERT_TRUE(table_.listen(kServer, kPort));
  auto r = table_.deliver_wire(
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  const std::uint32_t server_iss = last_out().tcp.seq;
  // Client completes the handshake.
  r = table_.deliver_wire(client_packet(
      40001, static_cast<std::uint8_t>(TcpFlag::kAck), 101, server_iss + 1));
  EXPECT_EQ(r.status, SocketTable::Delivery::kDelivered);
  EXPECT_EQ(r.pcb->state, core::TcpState::kEstablished);
  // Client sends 50 bytes; server must ack 151.
  r = table_.deliver_wire(client_packet(
      40001, TcpFlag::kAck | TcpFlag::kPsh, 101, server_iss + 1, 50));
  EXPECT_EQ(r.status, SocketTable::Delivery::kDelivered);
  EXPECT_EQ(last_out().tcp.ack, 151u);
  EXPECT_EQ(r.pcb->bytes_in, 50u);
  // Server sends a response.
  EXPECT_TRUE(table_.send_data(*r.pcb, 200));
  const Packet resp = last_out();
  EXPECT_EQ(resp.payload.size(), 200u);
  EXPECT_EQ(resp.tcp.seq, server_iss + 1);
}

TEST_F(SocketTableTest, SynWithoutListenerGetsRst) {
  const auto r = table_.deliver_wire(
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  EXPECT_EQ(r.status, SocketTable::Delivery::kReset);
  const Packet rst = last_out();
  EXPECT_TRUE(rst.tcp.has(TcpFlag::kRst));
  EXPECT_EQ(table_.connection_count(), 0u);
}

TEST_F(SocketTableTest, StrayAckGetsRstWithItsAckAsSeq) {
  const auto r = table_.deliver_wire(client_packet(
      40001, static_cast<std::uint8_t>(TcpFlag::kAck), 100, 7777));
  EXPECT_EQ(r.status, SocketTable::Delivery::kReset);
  const Packet rst = last_out();
  EXPECT_TRUE(rst.tcp.has(TcpFlag::kRst));
  EXPECT_EQ(rst.tcp.seq, 7777u);
}

TEST_F(SocketTableTest, MalformedPacketIsRejected) {
  std::vector<std::uint8_t> garbage(40, 0xcc);
  const auto r = table_.deliver_wire(garbage);
  EXPECT_EQ(r.status, SocketTable::Delivery::kParseError);
  EXPECT_TRUE(outbound_.empty());
}

TEST_F(SocketTableTest, CorruptChecksumIsRejected) {
  ASSERT_TRUE(table_.listen(kServer, kPort));
  auto wire =
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0);
  wire[wire.size() - 1] ^= 0xff;  // corrupt TCP header byte
  const auto r = table_.deliver_wire(wire);
  EXPECT_EQ(r.status, SocketTable::Delivery::kParseError);
}

TEST_F(SocketTableTest, WildcardListenerAcceptsAnyLocalAddr) {
  ASSERT_TRUE(table_.listen(Ipv4Addr::any(), kPort));
  const auto r = table_.deliver_wire(
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  EXPECT_EQ(r.status, SocketTable::Delivery::kNewConnection);
}

TEST_F(SocketTableTest, DuplicateListenRejected) {
  EXPECT_TRUE(table_.listen(kServer, kPort));
  EXPECT_FALSE(table_.listen(kServer, kPort));
  EXPECT_EQ(table_.listener_count(), 1u);
}

TEST_F(SocketTableTest, ActiveConnectEmitsSyn) {
  const net::FlowKey key{kServer, 30000, Ipv4Addr(10, 1, 0, 9), 80};
  core::Pcb* pcb = table_.connect(key);
  ASSERT_NE(pcb, nullptr);
  EXPECT_EQ(pcb->state, core::TcpState::kSynSent);
  const Packet syn = last_out();
  EXPECT_TRUE(syn.tcp.has(TcpFlag::kSyn));
  EXPECT_EQ(syn.ip.dst, Ipv4Addr(10, 1, 0, 9));
  EXPECT_EQ(syn.tcp.dst_port, 80);
  // Duplicate connect on the same flow is refused.
  EXPECT_EQ(table_.connect(key), nullptr);
}

TEST_F(SocketTableTest, DemuxStatsAccumulateAcrossDeliveries) {
  ASSERT_TRUE(table_.listen(kServer, kPort));
  for (std::uint16_t port = 40001; port <= 40020; ++port) {
    table_.deliver_wire(client_packet(
        port, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  }
  EXPECT_EQ(table_.connection_count(), 20u);
  EXPECT_EQ(table_.demuxer().stats().lookups, 20u);
}

TEST_F(SocketTableTest, EraseRemovesConnection) {
  ASSERT_TRUE(table_.listen(kServer, kPort));
  table_.deliver_wire(
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  const net::FlowKey key{kServer, kPort, Ipv4Addr(10, 1, 0, 2), 40001};
  EXPECT_TRUE(table_.erase(key));
  EXPECT_EQ(table_.connection_count(), 0u);
  // A data packet for the vanished connection now draws a RST.
  const auto r = table_.deliver_wire(client_packet(
      40001, TcpFlag::kAck | TcpFlag::kPsh, 101, 1, 10));
  EXPECT_EQ(r.status, SocketTable::Delivery::kReset);
}

TEST_F(SocketTableTest, DuplicateSynForExistingConnectionIsDelivered) {
  ASSERT_TRUE(table_.listen(kServer, kPort));
  table_.deliver_wire(
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  const auto before = table_.connection_count();
  // Retransmitted SYN matches the half-open PCB, not the listener.
  const auto r = table_.deliver_wire(
      client_packet(40001, static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0));
  EXPECT_EQ(r.status, SocketTable::Delivery::kDelivered);
  EXPECT_EQ(table_.connection_count(), before);
}

}  // namespace
}  // namespace tcpdemux::tcp
