#include "tcp/retransmit_queue.h"

#include <gtest/gtest.h>

namespace tcpdemux::tcp {
namespace {

TEST(RetransmitQueue, StartsEmpty) {
  RetransmitQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.outstanding(), 0u);
  EXPECT_FALSE(q.take_expired(100.0, 1.0).has_value());
}

TEST(RetransmitQueue, AckDropsCoveredSegments) {
  RetransmitQueue q;
  q.on_send(1000, 100, 0.0);
  q.on_send(1100, 100, 0.1);
  q.on_send(1200, 100, 0.2);
  EXPECT_EQ(q.outstanding(), 300u);
  (void)q.on_ack(1200, 0.3);  // covers the first two
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.outstanding(), 100u);
}

TEST(RetransmitQueue, PartialAckKeepsSegment) {
  RetransmitQueue q;
  q.on_send(1000, 100, 0.0);
  (void)q.on_ack(1050, 0.1);  // covers only half
  EXPECT_EQ(q.size(), 1u);
}

TEST(RetransmitQueue, AckYieldsRttSample) {
  RetransmitQueue q;
  q.on_send(1000, 100, 1.0);
  const auto sample = q.on_ack(1100, 1.25);
  ASSERT_TRUE(sample.has_value());
  EXPECT_NEAR(*sample, 0.25, 1e-12);
}

TEST(RetransmitQueue, KarnsRuleSuppressesRetransmittedSamples) {
  RetransmitQueue q;
  q.on_send(1000, 100, 1.0);
  const auto expired = q.take_expired(2.5, 1.0);
  ASSERT_TRUE(expired.has_value());
  EXPECT_EQ(expired->transmissions, 2u);
  const auto sample = q.on_ack(1100, 3.0);
  EXPECT_FALSE(sample.has_value()) << "retransmitted segment sampled";
  EXPECT_TRUE(q.empty());
}

TEST(RetransmitQueue, SampleComesFromNewestCleanSegment) {
  RetransmitQueue q;
  q.on_send(1000, 100, 1.0);
  q.on_send(1100, 100, 2.0);
  const auto sample = q.on_ack(1200, 2.5);
  ASSERT_TRUE(sample.has_value());
  EXPECT_NEAR(*sample, 0.5, 1e-12);  // from the second segment
}

TEST(RetransmitQueue, ExpiryHonorsRto) {
  RetransmitQueue q;
  q.on_send(1000, 100, 0.0);
  EXPECT_FALSE(q.take_expired(0.5, 1.0).has_value());  // too young
  const auto expired = q.take_expired(1.5, 1.0);
  ASSERT_TRUE(expired.has_value());
  EXPECT_EQ(expired->seq, 1000u);
  // Retransmission resets the timer.
  EXPECT_FALSE(q.take_expired(2.0, 1.0).has_value());
  EXPECT_TRUE(q.take_expired(2.6, 1.0).has_value());
}

TEST(RetransmitQueue, OldestSegmentExpiresFirst) {
  RetransmitQueue q;
  q.on_send(1000, 100, 0.0);
  q.on_send(1100, 100, 5.0);
  const auto expired = q.take_expired(6.0, 1.0);
  ASSERT_TRUE(expired.has_value());
  EXPECT_EQ(expired->seq, 1000u);
}

TEST(RetransmitQueue, SequenceWraparound) {
  RetransmitQueue q;
  q.on_send(0xffffff00u, 0x200, 0.0);  // wraps past zero
  const auto sample = q.on_ack(0x100, 0.1);
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(q.empty());
}

TEST(RetransmitQueue, DuplicateAckYieldsNothing) {
  RetransmitQueue q;
  q.on_send(1000, 100, 0.0);
  (void)q.on_ack(1100, 0.2);
  const auto dup = q.on_ack(1100, 0.3);
  EXPECT_FALSE(dup.has_value());
}

TEST(RetransmitQueue, ClearEmpties) {
  RetransmitQueue q;
  q.on_send(1, 1, 0.0);
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace tcpdemux::tcp
