#include <gtest/gtest.h>

#include <vector>

#include "tcp/tcp_machine.h"

namespace tcpdemux::tcp {
namespace {

using core::Pcb;
using core::TcpState;
using net::TcpFlag;
using net::TcpHeader;

class DelayedAckTest : public ::testing::Test {
 protected:
  DelayedAckTest()
      : machine_([this](Pcb&, const Emit& e) { sent_.push_back(e); },
                 TcpMachine::Options{true}),
        pcb_(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                          net::Ipv4Addr(10, 1, 0, 2), 40001},
             0) {
    TcpHeader syn;
    syn.flags = static_cast<std::uint8_t>(TcpFlag::kSyn);
    syn.seq = 100;
    machine_.open_passive(pcb_, syn);
    TcpHeader ack;
    ack.flags = static_cast<std::uint8_t>(TcpFlag::kAck);
    ack.seq = 101;
    ack.ack = pcb_.snd_nxt;
    machine_.process(pcb_, ack, 0);
    sent_.clear();
  }

  void deliver_data(std::uint32_t len) {
    TcpHeader data;
    data.flags = TcpFlag::kAck | TcpFlag::kPsh;
    data.seq = pcb_.rcv_nxt;
    data.ack = pcb_.snd_nxt;
    machine_.process(pcb_, data, len);
  }

  std::size_t acks_sent() const {
    std::size_t n = 0;
    for (const Emit& e : sent_) {
      if (e.payload_len == 0 &&
          (e.flags & static_cast<std::uint8_t>(TcpFlag::kAck)) != 0) {
        ++n;
      }
    }
    return n;
  }

  TcpMachine machine_;
  Pcb pcb_;
  std::vector<Emit> sent_;
};

TEST_F(DelayedAckTest, FirstSegmentOwesSecondForces) {
  deliver_data(100);
  EXPECT_EQ(acks_sent(), 0u);
  EXPECT_TRUE(pcb_.delack_pending);
  deliver_data(100);
  EXPECT_EQ(acks_sent(), 1u);
  EXPECT_FALSE(pcb_.delack_pending);
  // The forced ACK covers both segments cumulatively.
  EXPECT_EQ(sent_.back().ack, pcb_.rcv_nxt);
}

TEST_F(DelayedAckTest, EverySecondSegmentAcked) {
  for (int i = 0; i < 10; ++i) deliver_data(50);
  EXPECT_EQ(acks_sent(), 5u);
}

TEST_F(DelayedAckTest, FlushEmitsOwedAck) {
  deliver_data(100);
  EXPECT_EQ(acks_sent(), 0u);
  EXPECT_TRUE(machine_.flush_delayed_acks(pcb_));
  EXPECT_EQ(acks_sent(), 1u);
  EXPECT_EQ(sent_.back().ack, pcb_.rcv_nxt);
  EXPECT_FALSE(machine_.flush_delayed_acks(pcb_));  // nothing owed now
}

TEST_F(DelayedAckTest, OutOfOrderDataAcksImmediately) {
  deliver_data(100);  // owed
  TcpHeader ooo;
  ooo.flags = TcpFlag::kAck | TcpFlag::kPsh;
  ooo.seq = pcb_.rcv_nxt + 999;
  ooo.ack = pcb_.snd_nxt;
  machine_.process(pcb_, ooo, 50);
  EXPECT_EQ(acks_sent(), 1u) << "dup-ack must not be delayed";
  EXPECT_FALSE(pcb_.delack_pending);
}

TEST_F(DelayedAckTest, OutboundDataPiggybacksOwedAck) {
  deliver_data(100);
  EXPECT_TRUE(pcb_.delack_pending);
  EXPECT_TRUE(machine_.send_data(pcb_, 200));
  EXPECT_FALSE(pcb_.delack_pending);
  EXPECT_EQ(sent_.back().ack, pcb_.rcv_nxt);
  EXPECT_EQ(acks_sent(), 0u) << "no separate pure ACK needed";
}

TEST_F(DelayedAckTest, DisabledOptionAcksEverySegment) {
  std::vector<Emit> sent;
  TcpMachine immediate([&](Pcb&, const Emit& e) { sent.push_back(e); });
  Pcb pcb(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                       net::Ipv4Addr(10, 1, 0, 3), 40002},
          1);
  TcpHeader syn;
  syn.flags = static_cast<std::uint8_t>(TcpFlag::kSyn);
  syn.seq = 500;
  immediate.open_passive(pcb, syn);
  TcpHeader ack;
  ack.flags = static_cast<std::uint8_t>(TcpFlag::kAck);
  ack.seq = 501;
  ack.ack = pcb.snd_nxt;
  immediate.process(pcb, ack, 0);
  sent.clear();
  for (int i = 0; i < 4; ++i) {
    TcpHeader data;
    data.flags = TcpFlag::kAck | TcpFlag::kPsh;
    data.seq = pcb.rcv_nxt;
    data.ack = pcb.snd_nxt;
    immediate.process(pcb, data, 10);
  }
  EXPECT_EQ(sent.size(), 4u);
  EXPECT_FALSE(immediate.flush_delayed_acks(pcb));
}

}  // namespace
}  // namespace tcpdemux::tcp
