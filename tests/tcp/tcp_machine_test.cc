#include "tcp/tcp_machine.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::tcp {
namespace {

using core::Pcb;
using core::TcpState;
using net::TcpFlag;
using net::TcpHeader;

struct Sent {
  std::uint64_t conn;
  Emit emit;
};

class TcpMachineTest : public ::testing::Test {
 protected:
  TcpMachineTest()
      : machine_([this](Pcb& pcb, const Emit& e) {
          sent_.push_back(Sent{pcb.conn_id, e});
        }),
        pcb_(net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                          net::Ipv4Addr(10, 1, 0, 2), 40001},
             0) {}

  const Emit& last() const { return sent_.back().emit; }
  bool last_has(TcpFlag f) const {
    return (last().flags & static_cast<std::uint8_t>(f)) != 0;
  }

  TcpHeader make_seg(std::uint8_t flags, std::uint32_t seq,
                     std::uint32_t ack) {
    TcpHeader h;
    h.src_port = 40001;
    h.dst_port = 1521;
    h.flags = flags;
    h.seq = seq;
    h.ack = ack;
    return h;
  }

  // Drives the server-side handshake: peer SYN (seq 100) then ACK.
  void establish_passive() {
    TcpHeader syn = make_seg(static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0);
    machine_.open_passive(pcb_, syn);
    TcpHeader ack = make_seg(static_cast<std::uint8_t>(TcpFlag::kAck), 101,
                             pcb_.snd_nxt);
    machine_.process(pcb_, ack, 0);
    ASSERT_EQ(pcb_.state, TcpState::kEstablished);
  }

  TcpMachine machine_;
  Pcb pcb_;
  std::vector<Sent> sent_;
};

TEST_F(TcpMachineTest, ActiveOpenSendsSyn) {
  machine_.open_active(pcb_);
  EXPECT_EQ(pcb_.state, TcpState::kSynSent);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_TRUE(last_has(TcpFlag::kSyn));
  EXPECT_FALSE(last_has(TcpFlag::kAck));
  EXPECT_EQ(last().seq, pcb_.iss);
  EXPECT_EQ(pcb_.snd_nxt, pcb_.iss + 1);
}

TEST_F(TcpMachineTest, PassiveOpenSendsSynAck) {
  TcpHeader syn = make_seg(static_cast<std::uint8_t>(TcpFlag::kSyn), 100, 0);
  machine_.open_passive(pcb_, syn);
  EXPECT_EQ(pcb_.state, TcpState::kSynReceived);
  EXPECT_EQ(pcb_.rcv_nxt, 101u);
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_TRUE(last_has(TcpFlag::kSyn));
  EXPECT_TRUE(last_has(TcpFlag::kAck));
  EXPECT_EQ(last().ack, 101u);
}

TEST_F(TcpMachineTest, ThreeWayHandshakeClientSide) {
  machine_.open_active(pcb_);
  TcpHeader synack =
      make_seg(TcpFlag::kSyn | TcpFlag::kAck, 5000, pcb_.snd_nxt);
  machine_.process(pcb_, synack, 0);
  EXPECT_EQ(pcb_.state, TcpState::kEstablished);
  EXPECT_EQ(pcb_.rcv_nxt, 5001u);
  EXPECT_EQ(pcb_.irs, 5000u);
  // Final ACK of the handshake was emitted.
  EXPECT_TRUE(last_has(TcpFlag::kAck));
  EXPECT_EQ(last().ack, 5001u);
}

TEST_F(TcpMachineTest, SynSentRejectsBadAckWithRst) {
  machine_.open_active(pcb_);
  TcpHeader synack =
      make_seg(TcpFlag::kSyn | TcpFlag::kAck, 5000, pcb_.snd_nxt + 99);
  machine_.process(pcb_, synack, 0);
  EXPECT_EQ(pcb_.state, TcpState::kSynSent);
  EXPECT_TRUE(last_has(TcpFlag::kRst));
}

TEST_F(TcpMachineTest, ThreeWayHandshakeServerSide) {
  establish_passive();
  EXPECT_EQ(pcb_.snd_una, pcb_.snd_nxt);
}

TEST_F(TcpMachineTest, SimultaneousOpen) {
  machine_.open_active(pcb_);
  TcpHeader syn = make_seg(static_cast<std::uint8_t>(TcpFlag::kSyn), 7000, 0);
  machine_.process(pcb_, syn, 0);
  EXPECT_EQ(pcb_.state, TcpState::kSynReceived);
  EXPECT_TRUE(last_has(TcpFlag::kSyn));
  EXPECT_TRUE(last_has(TcpFlag::kAck));
}

TEST_F(TcpMachineTest, InOrderDataIsAckedCumulatively) {
  establish_passive();
  const std::uint32_t base = pcb_.rcv_nxt;
  TcpHeader data = make_seg(TcpFlag::kAck | TcpFlag::kPsh, base, pcb_.snd_nxt);
  machine_.process(pcb_, data, 100);
  EXPECT_EQ(pcb_.rcv_nxt, base + 100);
  EXPECT_TRUE(last_has(TcpFlag::kAck));
  EXPECT_EQ(last().ack, base + 100);
  EXPECT_EQ(pcb_.bytes_in, 100u);
}

TEST_F(TcpMachineTest, OutOfOrderDataGetsDuplicateAck) {
  establish_passive();
  const std::uint32_t base = pcb_.rcv_nxt;
  TcpHeader ooo =
      make_seg(TcpFlag::kAck | TcpFlag::kPsh, base + 500, pcb_.snd_nxt);
  machine_.process(pcb_, ooo, 100);
  EXPECT_EQ(pcb_.rcv_nxt, base) << "out-of-order data must not advance";
  EXPECT_EQ(last().ack, base) << "duplicate ACK must re-assert rcv_nxt";
}

TEST_F(TcpMachineTest, SendDataAdvancesSndNxt) {
  establish_passive();
  const std::uint32_t before = pcb_.snd_nxt;
  EXPECT_TRUE(machine_.send_data(pcb_, 256));
  EXPECT_EQ(pcb_.snd_nxt, before + 256);
  EXPECT_EQ(last().payload_len, 256u);
  EXPECT_TRUE(last_has(TcpFlag::kPsh));
}

TEST_F(TcpMachineTest, SendDataRefusedBeforeEstablished) {
  machine_.open_active(pcb_);
  EXPECT_FALSE(machine_.send_data(pcb_, 10));
}

TEST_F(TcpMachineTest, AckAdvancesSndUna) {
  establish_passive();
  machine_.send_data(pcb_, 100);
  TcpHeader ack = make_seg(static_cast<std::uint8_t>(TcpFlag::kAck),
                           pcb_.rcv_nxt, pcb_.snd_nxt);
  machine_.process(pcb_, ack, 0);
  EXPECT_EQ(pcb_.snd_una, pcb_.snd_nxt);
}

TEST_F(TcpMachineTest, StaleAckIgnored) {
  establish_passive();
  machine_.send_data(pcb_, 100);
  const std::uint32_t una = pcb_.snd_una;
  TcpHeader stale = make_seg(static_cast<std::uint8_t>(TcpFlag::kAck),
                             pcb_.rcv_nxt, una);  // acks nothing new
  machine_.process(pcb_, stale, 0);
  EXPECT_EQ(pcb_.snd_una, una);
}

TEST_F(TcpMachineTest, RstKillsConnection) {
  establish_passive();
  TcpHeader rst = make_seg(static_cast<std::uint8_t>(TcpFlag::kRst),
                           pcb_.rcv_nxt, 0);
  machine_.process(pcb_, rst, 0);
  EXPECT_EQ(pcb_.state, TcpState::kClosed);
}

TEST_F(TcpMachineTest, ActiveCloseFullSequence) {
  establish_passive();
  // We close first: FIN_WAIT_1.
  EXPECT_TRUE(machine_.close(pcb_));
  EXPECT_EQ(pcb_.state, TcpState::kFinWait1);
  EXPECT_TRUE(last_has(TcpFlag::kFin));
  // Peer acks our FIN: FIN_WAIT_2.
  TcpHeader ack = make_seg(static_cast<std::uint8_t>(TcpFlag::kAck),
                           pcb_.rcv_nxt, pcb_.snd_nxt);
  machine_.process(pcb_, ack, 0);
  EXPECT_EQ(pcb_.state, TcpState::kFinWait2);
  // Peer sends its FIN: TIME_WAIT + ACK it.
  TcpHeader fin = make_seg(TcpFlag::kFin | TcpFlag::kAck, pcb_.rcv_nxt,
                           pcb_.snd_nxt);
  machine_.process(pcb_, fin, 0);
  EXPECT_EQ(pcb_.state, TcpState::kTimeWait);
  EXPECT_TRUE(last_has(TcpFlag::kAck));
}

TEST_F(TcpMachineTest, PassiveCloseFullSequence) {
  establish_passive();
  // Peer FINs first: CLOSE_WAIT.
  TcpHeader fin = make_seg(TcpFlag::kFin | TcpFlag::kAck, pcb_.rcv_nxt,
                           pcb_.snd_nxt);
  machine_.process(pcb_, fin, 0);
  EXPECT_EQ(pcb_.state, TcpState::kCloseWait);
  // We close: LAST_ACK.
  EXPECT_TRUE(machine_.close(pcb_));
  EXPECT_EQ(pcb_.state, TcpState::kLastAck);
  // Peer acks our FIN: CLOSED.
  TcpHeader ack = make_seg(static_cast<std::uint8_t>(TcpFlag::kAck),
                           pcb_.rcv_nxt, pcb_.snd_nxt);
  machine_.process(pcb_, ack, 0);
  EXPECT_EQ(pcb_.state, TcpState::kClosed);
}

TEST_F(TcpMachineTest, SimultaneousClose) {
  establish_passive();
  EXPECT_TRUE(machine_.close(pcb_));  // FIN_WAIT_1
  // Peer's FIN arrives without acking ours: CLOSING.
  TcpHeader fin = make_seg(TcpFlag::kFin | TcpFlag::kAck, pcb_.rcv_nxt,
                           pcb_.snd_una);
  machine_.process(pcb_, fin, 0);
  EXPECT_EQ(pcb_.state, TcpState::kClosing);
  // Then the ACK of our FIN: TIME_WAIT.
  TcpHeader ack = make_seg(static_cast<std::uint8_t>(TcpFlag::kAck),
                           pcb_.rcv_nxt, pcb_.snd_nxt);
  machine_.process(pcb_, ack, 0);
  EXPECT_EQ(pcb_.state, TcpState::kTimeWait);
}

TEST_F(TcpMachineTest, CloseRefusedWhenAlreadyClosing) {
  establish_passive();
  EXPECT_TRUE(machine_.close(pcb_));
  EXPECT_FALSE(machine_.close(pcb_));
}

TEST_F(TcpMachineTest, RetransmittedFinInTimeWaitReAcked) {
  establish_passive();
  machine_.close(pcb_);
  TcpHeader ack = make_seg(static_cast<std::uint8_t>(TcpFlag::kAck),
                           pcb_.rcv_nxt, pcb_.snd_nxt);
  machine_.process(pcb_, ack, 0);
  TcpHeader fin = make_seg(TcpFlag::kFin | TcpFlag::kAck, pcb_.rcv_nxt,
                           pcb_.snd_nxt);
  machine_.process(pcb_, fin, 0);
  ASSERT_EQ(pcb_.state, TcpState::kTimeWait);
  const auto sends_before = sent_.size();
  machine_.process(pcb_, fin, 0);  // retransmitted FIN
  EXPECT_EQ(pcb_.state, TcpState::kTimeWait);
  EXPECT_EQ(sent_.size(), sends_before + 1);
  EXPECT_TRUE(last_has(TcpFlag::kAck));
}

TEST_F(TcpMachineTest, CountersTrackSegments) {
  establish_passive();
  EXPECT_GT(pcb_.segs_in, 0u);
  EXPECT_GT(pcb_.segs_out, 0u);
  const auto in_before = pcb_.segs_in;
  TcpHeader data = make_seg(TcpFlag::kAck | TcpFlag::kPsh, pcb_.rcv_nxt,
                            pcb_.snd_nxt);
  machine_.process(pcb_, data, 10);
  EXPECT_EQ(pcb_.segs_in, in_before + 1);
}

TEST_F(TcpMachineTest, DistinctIssPerConnection) {
  Pcb other(pcb_.key.reversed(), 1);
  machine_.open_active(pcb_);
  machine_.open_active(other);
  EXPECT_NE(pcb_.iss, other.iss);
}

}  // namespace
}  // namespace tcpdemux::tcp
