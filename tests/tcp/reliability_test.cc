// Loss recovery through the socket table: retransmission queues, RTT
// sampling (with Karn's rule), RTO backoff, and the accept queue.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "tcp/socket_table.h"

namespace tcpdemux::tcp {
namespace {

using net::Ipv4Addr;
using net::Packet;
using net::TcpFlag;

constexpr Ipv4Addr kServerAddr{10, 0, 0, 1};
constexpr Ipv4Addr kClientAddr{10, 1, 0, 2};
constexpr std::uint16_t kPort = 1521;

/// Two hosts with a manually pumped, droppable link and a manual clock.
class ReliabilityTest : public ::testing::Test {
 protected:
  ReliabilityTest()
      : server_(core::DemuxConfig{core::Algorithm::kSequent},
                [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                  to_client_.push_back(std::move(wire));
                }),
        client_(core::DemuxConfig{core::Algorithm::kBsd},
                [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                  to_server_.push_back(std::move(wire));
                }) {
    server_.set_clock([this] { return now_; });
    client_.set_clock([this] { return now_; });
    server_.listen(kServerAddr, kPort);
  }

  /// Delivers all queued packets in both directions until quiescent.
  void pump() {
    while (!to_client_.empty() || !to_server_.empty()) {
      auto client_batch = std::move(to_client_);
      to_client_.clear();
      for (const auto& wire : client_batch) client_.deliver_wire(wire);
      auto server_batch = std::move(to_server_);
      to_server_.clear();
      for (const auto& wire : server_batch) server_.deliver_wire(wire);
    }
  }

  core::Pcb* establish() {
    core::Pcb* pcb =
        client_.connect({kClientAddr, 40001, kServerAddr, kPort});
    pump();
    EXPECT_EQ(pcb->state, core::TcpState::kEstablished);
    return pcb;
  }

  double now_ = 0.0;
  std::vector<std::vector<std::uint8_t>> to_client_;
  std::vector<std::vector<std::uint8_t>> to_server_;
  SocketTable server_;
  SocketTable client_;
};

TEST_F(ReliabilityTest, AcceptQueueYieldsEstablishedConnections) {
  EXPECT_EQ(server_.accept(), nullptr);
  establish();
  EXPECT_EQ(server_.accept_backlog(), 1u);
  core::Pcb* pcb = server_.accept();
  ASSERT_NE(pcb, nullptr);
  EXPECT_EQ(pcb->state, core::TcpState::kEstablished);
  EXPECT_EQ(pcb->key.foreign_port, 40001);
  EXPECT_EQ(server_.accept(), nullptr);  // queue drained
}

TEST_F(ReliabilityTest, AcceptQueueIsFifo) {
  for (std::uint16_t port = 50001; port <= 50003; ++port) {
    client_.connect({kClientAddr, port, kServerAddr, kPort});
    pump();
  }
  EXPECT_EQ(server_.accept_backlog(), 3u);
  EXPECT_EQ(server_.accept()->key.foreign_port, 50001);
  EXPECT_EQ(server_.accept()->key.foreign_port, 50002);
  EXPECT_EQ(server_.accept()->key.foreign_port, 50003);
}

TEST_F(ReliabilityTest, RttSampleFeedsEstimator) {
  core::Pcb* pcb = establish();
  pcb->srtt_us = 0;  // no samples yet
  client_.send_data(*pcb, 100);
  now_ += 0.05;  // the ACK comes back 50 ms later
  pump();
  EXPECT_EQ(pcb->srtt_us, 50'000u);
  EXPECT_EQ(pcb->rttvar_us, 25'000u);
}

TEST_F(ReliabilityTest, LostDataIsRetransmittedAndRecovered) {
  core::Pcb* pcb = establish();
  client_.send_data(*pcb, 200);
  ASSERT_EQ(to_server_.size(), 1u);
  to_server_.clear();  // the network eats the segment

  // Nothing outstanding is acked; the RTO (1 s floor) expires.
  now_ += 1.5;
  EXPECT_EQ(client_.poll_retransmits(), 1u);
  EXPECT_EQ(client_.counters().retransmissions, 1u);
  pump();  // retransmission + its ACK flow

  EXPECT_EQ(pcb->snd_una, pcb->snd_nxt) << "data finally acknowledged";
  core::Pcb* server_pcb =
      server_.find({kServerAddr, kPort, kClientAddr, 40001});
  ASSERT_NE(server_pcb, nullptr);
  EXPECT_EQ(server_pcb->bytes_in, 200u);
}

TEST_F(ReliabilityTest, RtoBacksOffAcrossTimeouts) {
  core::Pcb* pcb = establish();
  const std::uint32_t base_rto = pcb->rto_us;
  client_.send_data(*pcb, 100);
  to_server_.clear();  // drop
  now_ += base_rto / 1e6 + 0.1;
  EXPECT_EQ(client_.poll_retransmits(), 1u);
  const std::uint32_t backed_off = pcb->rto_us;
  EXPECT_EQ(backed_off, base_rto * 2);
  // Drop the retransmission too.
  to_server_.clear();
  now_ += backed_off / 1e6 + 0.1;
  EXPECT_EQ(client_.poll_retransmits(), 1u);
  EXPECT_EQ(pcb->rto_us, base_rto * 4);
}

TEST_F(ReliabilityTest, KarnsRuleNoSampleFromRetransmission) {
  core::Pcb* pcb = establish();
  pcb->srtt_us = 0;
  client_.send_data(*pcb, 100);
  to_server_.clear();  // drop the first copy
  now_ += 1.5;
  client_.poll_retransmits();
  now_ += 0.05;
  pump();  // the retransmission is acked
  EXPECT_EQ(pcb->snd_una, pcb->snd_nxt);
  EXPECT_EQ(pcb->srtt_us, 0u) << "retransmitted segment must not be sampled";
}

TEST_F(ReliabilityTest, NoSpuriousRetransmissionBeforeRto) {
  core::Pcb* pcb = establish();
  client_.send_data(*pcb, 100);
  now_ += 0.2;  // well under the 1 s RTO floor
  EXPECT_EQ(client_.poll_retransmits(), 0u);
  pump();
  EXPECT_EQ(pcb->snd_una, pcb->snd_nxt);
  now_ += 5.0;
  EXPECT_EQ(client_.poll_retransmits(), 0u) << "acked data retransmitted";
}

TEST_F(ReliabilityTest, CountersTrackTraffic) {
  establish();
  core::Pcb* pcb = server_.accept();
  ASSERT_NE(pcb, nullptr);
  EXPECT_EQ(server_.counters().new_connections, 1u);
  EXPECT_GT(server_.counters().delivered, 0u);
  EXPECT_EQ(server_.counters().parse_errors, 0u);
  std::vector<std::uint8_t> junk(64, 0x7e);
  server_.deliver_wire(junk);
  EXPECT_EQ(server_.counters().parse_errors, 1u);
}

TEST_F(ReliabilityTest, EraseCleansAcceptQueueAndRetransmitState) {
  core::Pcb* pcb = establish();
  client_.send_data(*pcb, 50);
  to_server_.clear();  // leave a segment outstanding on the client
  EXPECT_TRUE(client_.erase({kClientAddr, 40001, kServerAddr, kPort}));
  now_ += 5.0;
  EXPECT_EQ(client_.poll_retransmits(), 0u) << "stale queue survived erase";

  EXPECT_EQ(server_.accept_backlog(), 1u);
  EXPECT_TRUE(server_.erase({kServerAddr, kPort, kClientAddr, 40001}));
  EXPECT_EQ(server_.accept_backlog(), 0u);
  EXPECT_EQ(server_.accept(), nullptr);
}

TEST_F(ReliabilityTest, TimeWaitReapedAfterTwoMsl) {
  core::Pcb* pcb = establish();
  core::Pcb* server_pcb =
      server_.find({kServerAddr, kPort, kClientAddr, 40001});
  ASSERT_NE(server_pcb, nullptr);
  // Full close from the client side.
  EXPECT_TRUE(client_.close(*pcb));
  pump();
  EXPECT_TRUE(server_.close(*server_pcb));
  pump();
  EXPECT_EQ(pcb->state, core::TcpState::kTimeWait);
  EXPECT_EQ(server_pcb->state, core::TcpState::kClosed);

  // Server side: CLOSED reaps immediately.
  EXPECT_EQ(server_.reap_closed(10.0), 1u);
  EXPECT_EQ(server_.connection_count(), 0u);

  // Client side: TIME_WAIT holds for 2*MSL, then goes.
  EXPECT_EQ(client_.reap_closed(10.0), 0u);
  EXPECT_EQ(client_.connection_count(), 1u);
  now_ += 21.0;
  EXPECT_EQ(client_.reap_closed(10.0), 1u);
  EXPECT_EQ(client_.connection_count(), 0u);
}

TEST_F(ReliabilityTest, ReapLeavesLiveConnectionsAlone) {
  establish();
  now_ += 1000.0;
  EXPECT_EQ(client_.reap_closed(10.0), 0u);
  EXPECT_EQ(server_.reap_closed(10.0), 0u);
  EXPECT_EQ(server_.connection_count(), 1u);
}

TEST_F(ReliabilityTest, WithoutClockNoRetransmitState) {
  SocketTable plain(core::DemuxConfig{core::Algorithm::kBsd},
                    [](std::vector<std::uint8_t>, const core::Pcb&) {});
  EXPECT_EQ(plain.poll_retransmits(), 0u);
}

}  // namespace
}  // namespace tcpdemux::tcp
