#include "tcp/seq_math.h"

#include <gtest/gtest.h>

namespace tcpdemux::tcp {
namespace {

TEST(SeqMath, BasicOrdering) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_FALSE(seq_lt(2, 1));
  EXPECT_FALSE(seq_lt(5, 5));
  EXPECT_TRUE(seq_leq(5, 5));
  EXPECT_TRUE(seq_gt(9, 3));
  EXPECT_TRUE(seq_geq(9, 9));
}

TEST(SeqMath, WrapAround) {
  // 0xffffffff + 2 wraps to 1; in sequence space 0xffffffff < 1.
  EXPECT_TRUE(seq_lt(0xffffffffu, 1u));
  EXPECT_TRUE(seq_gt(1u, 0xffffffffu));
  EXPECT_TRUE(seq_leq(0xfffffff0u, 0x10u));
}

TEST(SeqMath, HalfSpaceBoundary) {
  // A difference of exactly 2^31 is ambiguous: the int32 convention calls
  // *both* directions "less" (INT32_MIN is negative either way). One past
  // the boundary the ordering is well-defined again.
  EXPECT_TRUE(seq_lt(0x80000000u, 0u));
  EXPECT_TRUE(seq_lt(0u, 0x80000000u));
  EXPECT_FALSE(seq_lt(0u, 0x80000001u));
  EXPECT_TRUE(seq_lt(0x80000001u, 0u));
}

TEST(SeqMath, WindowMembership) {
  EXPECT_TRUE(seq_in_window(5, 5, 10));
  EXPECT_TRUE(seq_in_window(14, 5, 10));
  EXPECT_FALSE(seq_in_window(15, 5, 10));
  EXPECT_FALSE(seq_in_window(4, 5, 10));
  EXPECT_FALSE(seq_in_window(5, 5, 0));
}

TEST(SeqMath, WindowAcrossWrap) {
  EXPECT_TRUE(seq_in_window(2, 0xfffffffcu, 10));
  EXPECT_TRUE(seq_in_window(0xfffffffdu, 0xfffffffcu, 10));
  EXPECT_FALSE(seq_in_window(7, 0xfffffffcu, 10));
}

TEST(SeqMath, Constexpr) {
  static_assert(seq_lt(1, 2));
  static_assert(seq_in_window(3, 1, 5));
  SUCCEED();
}

}  // namespace
}  // namespace tcpdemux::tcp
