#include "tcp/rtt.h"

#include <gtest/gtest.h>

namespace tcpdemux::tcp {
namespace {

TEST(RttEstimator, InitialRtoIsOneSecond) {
  RttEstimator e;
  EXPECT_EQ(e.rto_us(), 1'000'000u);
  EXPECT_FALSE(e.has_samples());
}

TEST(RttEstimator, FirstSampleInitializesPerRfc) {
  RttEstimator e;
  e.add_sample(200'000);  // 200 ms
  EXPECT_EQ(e.srtt_us(), 200'000u);
  EXPECT_EQ(e.rttvar_us(), 100'000u);
  // RTO = SRTT + 4*RTTVAR = 600 ms, clamped up to the 1 s minimum.
  EXPECT_EQ(e.rto_us(), 1'000'000u);
}

TEST(RttEstimator, LargeRttExceedsMinimum) {
  RttEstimator e;
  e.add_sample(2'000'000);  // 2 s
  EXPECT_EQ(e.rto_us(), 2'000'000u + 4u * 1'000'000u);
}

TEST(RttEstimator, EwmaConvergesToSteadyRtt) {
  RttEstimator e;
  for (int i = 0; i < 100; ++i) e.add_sample(50'000);
  EXPECT_NEAR(e.srtt_us(), 50'000.0, 2000.0);
  EXPECT_LT(e.rttvar_us(), 5'000u);
}

TEST(RttEstimator, VarianceTracksJitter) {
  RttEstimator steady;
  RttEstimator jittery;
  // Base RTTs above the 1 s RTO floor so the comparison is unclamped.
  for (int i = 0; i < 200; ++i) {
    steady.add_sample(1'000'000);
    jittery.add_sample(i % 2 == 0 ? 500'000 : 1'500'000);
  }
  EXPECT_GT(jittery.rttvar_us(), steady.rttvar_us() + 100'000u);
  EXPECT_GT(jittery.rto_us(), steady.rto_us());
}

TEST(RttEstimator, TimeoutBacksOffExponentially) {
  RttEstimator e;
  e.add_sample(2'000'000);
  const auto base = e.rto_us();
  e.on_timeout();
  EXPECT_EQ(e.rto_us(), base * 2);
  e.on_timeout();
  EXPECT_EQ(e.rto_us(), base * 4);
}

TEST(RttEstimator, BackoffSaturatesAtMax) {
  RttEstimator e;
  for (int i = 0; i < 20; ++i) e.on_timeout();
  EXPECT_EQ(e.rto_us(), 60'000'000u);
}

TEST(RttEstimator, CustomConfigRespected) {
  RttConfig config;
  config.min_rto_us = 200'000;
  config.max_rto_us = 5'000'000;
  RttEstimator e(config);
  e.add_sample(10'000);
  EXPECT_EQ(e.rto_us(), 200'000u);  // clamped to custom floor
  for (int i = 0; i < 10; ++i) e.on_timeout();
  EXPECT_EQ(e.rto_us(), 5'000'000u);
}

TEST(UpdatePcbRtt, FirstAndFollowingSamples) {
  core::Pcb pcb(net::FlowKey{}, 0);
  pcb.srtt_us = 0;  // mark "no samples"
  update_pcb_rtt(pcb, 300'000);
  EXPECT_EQ(pcb.srtt_us, 300'000u);
  EXPECT_EQ(pcb.rttvar_us, 150'000u);
  update_pcb_rtt(pcb, 100'000);
  // srtt = 7/8*300 + 1/8*100 = 275 ms; rttvar = 3/4*150 + 1/4*200 = 162.5.
  EXPECT_EQ(pcb.srtt_us, 275'000u);
  EXPECT_EQ(pcb.rttvar_us, 162'500u);
  // 275 ms + 4 * 162.5 ms = 925 ms, below the RFC 6298 1 s floor.
  EXPECT_EQ(pcb.rto_us, 1'000'000u);
}

TEST(UpdatePcbRtt, MatchesEstimatorSequence) {
  core::Pcb pcb(net::FlowKey{}, 0);
  pcb.srtt_us = 0;
  RttEstimator e;
  const std::uint32_t samples[] = {120'000, 80'000, 90'000, 400'000, 110'000};
  for (const std::uint32_t s : samples) {
    update_pcb_rtt(pcb, s);
    e.add_sample(s);
  }
  EXPECT_EQ(pcb.srtt_us, e.srtt_us());
  EXPECT_EQ(pcb.rttvar_us, e.rttvar_us());
  EXPECT_EQ(pcb.rto_us, e.rto_us());
}

}  // namespace
}  // namespace tcpdemux::tcp
