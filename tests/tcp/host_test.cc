#include "tcp/host.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace tcpdemux::tcp {
namespace {

using net::Ipv4Addr;
using net::TcpFlag;

constexpr Ipv4Addr kServerAddr{10, 0, 0, 1};
constexpr std::uint16_t kPort = 1521;

class HostTest : public ::testing::Test {
 protected:
  HostTest()
      : host_(core::DemuxConfig{core::Algorithm::kSequent},
              [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                outbound_.push_back(std::move(wire));
              }) {
    host_.table().listen(kServerAddr, kPort);
  }

  std::vector<std::uint8_t> syn(std::uint16_t port) {
    return net::PacketBuilder()
        .from({Ipv4Addr(10, 1, 0, 2), port})
        .to({kServerAddr, kPort})
        .seq(100)
        .flags(TcpFlag::kSyn)
        .build();
  }

  /// A large query on an established connection, fragmentable.
  std::vector<std::uint8_t> big_data(std::uint16_t port, std::uint32_t seq,
                                     std::size_t payload) {
    auto wire = net::PacketBuilder()
                    .from({Ipv4Addr(10, 1, 0, 2), port})
                    .to({kServerAddr, kPort})
                    .seq(seq)
                    .ack_seq(1)
                    .flags(TcpFlag::kPsh)
                    .payload_size(payload)
                    .build();
    auto h = net::Ipv4Header::parse(wire);
    h->dont_fragment = false;
    h->serialize(wire);
    return wire;
  }

  Host host_;
  std::vector<std::vector<std::uint8_t>> outbound_;
};

TEST_F(HostTest, UnfragmentedPacketFlowsThrough) {
  const auto r = host_.input(syn(40001), 0.0);
  EXPECT_EQ(r.status, SocketTable::Delivery::kNewConnection);
  EXPECT_EQ(host_.pending_fragments(), 0u);
}

TEST_F(HostTest, FragmentedSegmentIsReassembledThenDelivered) {
  host_.input(syn(40001), 0.0);
  // Complete the handshake so payload lands on an ESTABLISHED pcb.
  const auto synack = net::Packet::parse(outbound_.back());
  ASSERT_TRUE(synack.has_value());
  const auto ack = net::PacketBuilder()
                       .from({Ipv4Addr(10, 1, 0, 2), 40001})
                       .to({kServerAddr, kPort})
                       .seq(101)
                       .ack_seq(synack->tcp.seq + 1)
                       .build();
  ASSERT_EQ(host_.input(ack, 0.0).status,
            SocketTable::Delivery::kDelivered);

  // A 1200-byte query fragmented at MTU 400 arrives piecewise.
  const auto fragments =
      net::fragment_packet(big_data(40001, 101, 1200), 400);
  ASSERT_GT(fragments.size(), 2u);
  for (std::size_t i = 0; i + 1 < fragments.size(); ++i) {
    const auto r = host_.input(fragments[i], 0.1);
    EXPECT_EQ(r.pcb, nullptr) << "delivered before reassembly completed";
    EXPECT_EQ(host_.pending_fragments(), 1u);
  }
  const auto r = host_.input(fragments.back(), 0.1);
  EXPECT_EQ(r.status, SocketTable::Delivery::kDelivered);
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_EQ(r.pcb->bytes_in, 1200u);
  EXPECT_EQ(host_.pending_fragments(), 0u);
}

TEST_F(HostTest, OutOfOrderFragmentsStillDeliver) {
  host_.input(syn(40002), 0.0);
  auto fragments = net::fragment_packet(big_data(40002, 101, 900), 300);
  ASSERT_GE(fragments.size(), 3u);
  std::swap(fragments[0], fragments[2]);
  SocketTable::DeliverResult last;
  for (const auto& f : fragments) last = host_.input(f, 0.0);
  // The half-open pcb exists (SYN_RCVD): data is demuxed to it.
  EXPECT_NE(last.pcb, nullptr);
}

TEST_F(HostTest, ExpireDropsStaleFragments) {
  const auto fragments =
      net::fragment_packet(big_data(40003, 1, 1000), 300);
  host_.input(fragments[0], 0.0);
  EXPECT_EQ(host_.pending_fragments(), 1u);
  EXPECT_EQ(host_.expire_fragments(31.0), 1u);
  EXPECT_EQ(host_.pending_fragments(), 0u);
}

TEST_F(HostTest, GarbageNeitherDeliversNorAccumulates) {
  const std::vector<std::uint8_t> junk(64, 0x42);
  const auto r = host_.input(junk, 0.0);
  EXPECT_EQ(r.status, SocketTable::Delivery::kParseError);
  EXPECT_EQ(host_.pending_fragments(), 0u);
}

}  // namespace
}  // namespace tcpdemux::tcp
