#include "tcp/syn_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "tcp/socket_table.h"

namespace tcpdemux::tcp {
namespace {

net::FlowKey key(std::uint16_t port) {
  return net::FlowKey{net::Ipv4Addr(10, 0, 0, 1), 1521,
                      net::Ipv4Addr(10, 1, 0, 2), port};
}

TEST(SynCache, AddFindTake) {
  SynCache cache;
  EXPECT_EQ(cache.find(key(1)), nullptr);
  const auto* entry = cache.add(key(1), 1000, 5000, 0.0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->irs, 1000u);
  EXPECT_EQ(entry->iss, 5000u);
  EXPECT_EQ(cache.size(), 1u);

  const auto* found = cache.find(key(1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->key, key(1));

  SynCache::Entry taken;
  EXPECT_TRUE(cache.take(key(1), &taken));
  EXPECT_EQ(taken.iss, 5000u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.take(key(1)));
}

TEST(SynCache, DuplicateSynReturnsExistingEntry) {
  SynCache cache;
  const auto* first = cache.add(key(1), 1000, 5000, 0.0);
  const auto* again = cache.add(key(1), 1000, 9999, 1.0);
  EXPECT_EQ(again->iss, first->iss) << "retransmitted SYN must not re-roll";
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().duplicates, 1u);
}

TEST(SynCache, BucketOverflowEvictsOldest) {
  SynCache::Options options;
  options.buckets = 1;  // force all keys into one bucket
  options.bucket_limit = 3;
  SynCache cache(options);
  for (std::uint16_t p = 1; p <= 4; ++p) {
    cache.add(key(p), p, 100u + p, static_cast<double>(p));
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evicted, 1u);
  EXPECT_EQ(cache.find(key(1)), nullptr) << "oldest must be the victim";
  EXPECT_NE(cache.find(key(4)), nullptr);
}

TEST(SynCache, ExpireDropsOldEntries) {
  SynCache cache;
  cache.add(key(1), 1, 2, 0.0);
  cache.add(key(2), 3, 4, 20.0);
  EXPECT_EQ(cache.expire(35.0), 1u);  // 30 s timeout: only key(1) is stale
  EXPECT_EQ(cache.find(key(1)), nullptr);
  EXPECT_NE(cache.find(key(2)), nullptr);
}

TEST(SynCache, InvalidOptionsThrow) {
  SynCache::Options options;
  options.buckets = 0;
  EXPECT_THROW(SynCache{options}, std::invalid_argument);
  options.buckets = 4;
  options.bucket_limit = 0;
  EXPECT_THROW(SynCache{options}, std::invalid_argument);
}

// --- socket-table integration -------------------------------------------

class SynCacheTableTest : public ::testing::Test {
 protected:
  SynCacheTableTest()
      : table_(core::DemuxConfig{core::Algorithm::kSequent},
               [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                 outbound_.push_back(std::move(wire));
               }) {
    table_.enable_syn_cache();
    table_.listen(net::Ipv4Addr(10, 0, 0, 1), 1521);
  }

  std::vector<std::uint8_t> syn(std::uint16_t port, std::uint32_t seq) {
    return net::PacketBuilder()
        .from({net::Ipv4Addr(10, 1, 0, 2), port})
        .to({net::Ipv4Addr(10, 0, 0, 1), 1521})
        .seq(seq)
        .flags(net::TcpFlag::kSyn)
        .build();
  }

  net::Packet last_out() {
    const auto p = net::Packet::parse(outbound_.back());
    EXPECT_TRUE(p.has_value());
    return *p;
  }

  SocketTable table_;
  std::vector<std::vector<std::uint8_t>> outbound_;
};

TEST_F(SynCacheTableTest, SynCreatesNoPcb) {
  const auto r = table_.deliver_wire(syn(40001, 100));
  EXPECT_EQ(r.status, SocketTable::Delivery::kSynCached);
  EXPECT_EQ(table_.connection_count(), 0u);
  ASSERT_NE(table_.syn_cache(), nullptr);
  EXPECT_EQ(table_.syn_cache()->size(), 1u);
  // A SYN|ACK still went out.
  const auto synack = last_out();
  EXPECT_TRUE(synack.tcp.has(net::TcpFlag::kSyn));
  EXPECT_TRUE(synack.tcp.has(net::TcpFlag::kAck));
  EXPECT_EQ(synack.tcp.ack, 101u);
}

TEST_F(SynCacheTableTest, HandshakeAckPromotesToPcb) {
  table_.deliver_wire(syn(40001, 100));
  const std::uint32_t iss = last_out().tcp.seq;
  const auto ack = net::PacketBuilder()
                       .from({net::Ipv4Addr(10, 1, 0, 2), 40001})
                       .to({net::Ipv4Addr(10, 0, 0, 1), 1521})
                       .seq(101)
                       .ack_seq(iss + 1)
                       .build();
  const auto r = table_.deliver_wire(ack);
  EXPECT_EQ(r.status, SocketTable::Delivery::kNewConnection);
  ASSERT_NE(r.pcb, nullptr);
  EXPECT_EQ(r.pcb->state, core::TcpState::kEstablished);
  EXPECT_EQ(r.pcb->rcv_nxt, 101u);
  EXPECT_EQ(r.pcb->snd_nxt, iss + 1);
  EXPECT_EQ(table_.connection_count(), 1u);
  EXPECT_EQ(table_.syn_cache()->size(), 0u);
  EXPECT_EQ(table_.accept_backlog(), 1u);
  EXPECT_EQ(table_.accept(), r.pcb);
}

TEST_F(SynCacheTableTest, BogusAckGetsRstNotPcb) {
  table_.deliver_wire(syn(40001, 100));
  const std::uint32_t iss = last_out().tcp.seq;
  const auto bad_ack = net::PacketBuilder()
                           .from({net::Ipv4Addr(10, 1, 0, 2), 40001})
                           .to({net::Ipv4Addr(10, 0, 0, 1), 1521})
                           .seq(101)
                           .ack_seq(iss + 999)  // wrong acknowledgement
                           .build();
  const auto r = table_.deliver_wire(bad_ack);
  EXPECT_EQ(r.status, SocketTable::Delivery::kReset);
  EXPECT_EQ(table_.connection_count(), 0u);
}

TEST_F(SynCacheTableTest, SynFloodCannotGrowPcbTable) {
  for (std::uint32_t i = 0; i < 5000; ++i) {
    table_.deliver_wire(
        syn(static_cast<std::uint16_t>(1024 + (i % 60000)), 100 + i));
  }
  EXPECT_EQ(table_.connection_count(), 0u);
  // The cache is bounded: 64 buckets * 8 entries.
  EXPECT_LE(table_.syn_cache()->size(), 64u * 8u);
  EXPECT_GT(table_.syn_cache()->stats().evicted, 0u);
}

TEST_F(SynCacheTableTest, RetransmittedSynKeepsSameIss) {
  table_.deliver_wire(syn(40001, 100));
  const std::uint32_t iss1 = last_out().tcp.seq;
  table_.deliver_wire(syn(40001, 100));  // peer retries
  const std::uint32_t iss2 = last_out().tcp.seq;
  EXPECT_EQ(iss1, iss2);
  EXPECT_EQ(table_.syn_cache()->size(), 1u);
}

TEST_F(SynCacheTableTest, EmbryonicEntriesExpire) {
  table_.deliver_wire(syn(40001, 100));
  EXPECT_EQ(table_.expire_embryonic(40.0), 1u);
  EXPECT_EQ(table_.syn_cache()->size(), 0u);
}

TEST(SynCacheTelemetry, CountsLookupsInsertsAndErases) {
  SynCache cache;
  cache.enable_telemetry_histograms(true);
  EXPECT_EQ(cache.find(key(1)), nullptr);  // miss: 0 embryos examined
  ASSERT_NE(cache.add(key(1), 1, 2, 0.0), nullptr);
  ASSERT_NE(cache.add(key(2), 1, 2, 0.0), nullptr);
  ASSERT_NE(cache.find(key(1)), nullptr);

  const auto& c = cache.telemetry().counters();
  EXPECT_EQ(c.lookups, 2u);
  EXPECT_EQ(c.found, 1u);
  EXPECT_EQ(c.inserts, 2u);
  EXPECT_EQ(c.erases, 0u);
  EXPECT_EQ(cache.telemetry().examined().count(), 2u);

  SynCache::Entry out;
  EXPECT_TRUE(cache.take(key(1), &out));
  EXPECT_EQ(cache.telemetry().counters().erases, 1u);
}

TEST(SynCacheTelemetry, ExpireAndShedFeedTheLedger) {
  SynCache::Options options;
  options.max_entries = 2;
  SynCache cache(options);
  ASSERT_NE(cache.add(key(1), 1, 2, 0.0), nullptr);
  ASSERT_NE(cache.add(key(2), 1, 2, 1.0), nullptr);
  ASSERT_NE(cache.add(key(3), 1, 2, 2.0), nullptr);  // sheds oldest
  EXPECT_EQ(cache.telemetry().counters().inserts_shed, 1u);
  EXPECT_EQ(cache.expire(100.0), 2u);
  EXPECT_EQ(cache.telemetry().counters().erases, 3u);  // 1 shed + 2 expired

  // Insert/erase ledger vs live size, same invariant as the demuxers.
  const auto& c = cache.telemetry().counters();
  EXPECT_EQ(c.inserts - c.erases, cache.size());
  std::size_t total = 0;
  for (const std::size_t o : cache.occupancy()) total += o;
  EXPECT_EQ(total, cache.size());
}

}  // namespace
}  // namespace tcpdemux::tcp
