#include "sim/flash_crowd_workload.h"

#include <gtest/gtest.h>

#include "core/dynamic_hash.h"
#include "core/sequent_hash.h"
#include "sim/replay.h"

namespace tcpdemux::sim {
namespace {

FlashCrowdParams small_params() {
  FlashCrowdParams p;
  p.users = 300;
  p.ramp = 60.0;
  p.duration = 120.0;
  return p;
}

TEST(FlashCrowd, TraceValidAndEveryUserOpens) {
  const Trace t = generate_flash_crowd_trace(small_params());
  EXPECT_TRUE(t.valid());
  std::size_t opens = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kOpen) ++opens;
  }
  EXPECT_EQ(opens, 300u);
}

TEST(FlashCrowd, OpensConfinedToRamp) {
  const auto p = small_params();
  const Trace t = generate_flash_crowd_trace(p);
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kOpen) {
      EXPECT_GE(e.time, 0.0);
      EXPECT_LT(e.time, p.ramp);
    }
  }
}

TEST(FlashCrowd, OpenAlwaysPrecedesActivity) {
  const Trace t = generate_flash_crowd_trace(small_params());
  std::vector<bool> open(t.connections, false);
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kOpen) {
      open[e.conn] = true;
    } else {
      EXPECT_TRUE(open[e.conn]) << "conn " << e.conn << " active unopened";
    }
  }
}

TEST(FlashCrowd, ReplayHasNoMissesAndFullPopulation) {
  const Trace t = generate_flash_crowd_trace(small_params());
  core::SequentDemuxer d;
  const auto r = replay_trace(t, d);
  EXPECT_EQ(r.misses, 0u);
  EXPECT_EQ(r.opens, 300u);
  EXPECT_EQ(d.size(), 300u);  // everyone stays connected
}

TEST(FlashCrowd, ArrivalRateGrowsThroughRamp) {
  const auto p = small_params();
  const Trace t = generate_flash_crowd_trace(p);
  std::size_t first_quarter = 0;
  std::size_t last_quarter = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind != TraceEventKind::kArrivalData) continue;
    if (e.time < p.ramp / 4) ++first_quarter;
    if (e.time >= p.duration - p.ramp / 4) ++last_quarter;
  }
  EXPECT_GT(last_quarter, 3 * first_quarter);
}

TEST(FlashCrowd, DynamicTableGrowsWithTheCrowd) {
  FlashCrowdParams p;
  p.users = 2000;
  p.ramp = 60.0;
  p.duration = 120.0;
  const Trace t = generate_flash_crowd_trace(p);
  core::DynamicHashDemuxer d;
  const auto r = replay_trace(t, d);
  EXPECT_EQ(r.misses, 0u);
  EXPECT_GT(d.rehash_count(), 3u);
  EXPECT_GE(d.chains(), 1361u);
  // Despite a 100x population swing, cost stayed bounded by the load cap.
  EXPECT_LT(r.overall.mean(), 4.0);
}

TEST(FlashCrowd, RejectsInvalidConfig) {
  FlashCrowdParams p;
  p.users = 0;
  EXPECT_THROW(generate_flash_crowd_trace(p), std::invalid_argument);
  p = FlashCrowdParams{};
  p.ramp = 0.0;
  EXPECT_THROW(generate_flash_crowd_trace(p), std::invalid_argument);
  p = FlashCrowdParams{};
  p.ramp = 500.0;  // beyond duration
  EXPECT_THROW(generate_flash_crowd_trace(p), std::invalid_argument);
}

TEST(FlashCrowd, Deterministic) {
  const auto a = generate_flash_crowd_trace(small_params());
  const auto b = generate_flash_crowd_trace(small_params());
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace tcpdemux::sim
