#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(4.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(q.now(), 4.5);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  EXPECT_EQ(q.run(), 10u);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_until(10.0), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesClockToHorizonWhenDrained) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.run_until(7.0);
  EXPECT_DOUBLE_EQ(q.now(), 7.0);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double when = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_in(3.0, [&] { when = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(EventQueue, EmptyQueueRunIsNoop) {
  EventQueue q;
  EXPECT_EQ(q.run(), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedSchedulingKeepsOrder) {
  EventQueue q;
  std::vector<double> times;
  q.schedule_at(1.0, [&] {
    times.push_back(q.now());
    q.schedule_at(1.5, [&] { times.push_back(q.now()); });
  });
  q.schedule_at(2.0, [&] { times.push_back(q.now()); });
  q.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0}));
}

}  // namespace
}  // namespace tcpdemux::sim
