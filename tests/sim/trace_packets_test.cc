#include "sim/trace_packets.h"

#include <gtest/gtest.h>

#include <map>

#include "net/packet.h"
#include "sim/address_space.h"
#include "sim/bulk_workload.h"
#include "sim/tpca_workload.h"

namespace tcpdemux::sim {
namespace {

Trace tpca_trace(std::uint32_t users = 20) {
  TpcaWorkloadParams p;
  p.users = users;
  p.duration = 100.0;
  p.warmup = 10.0;
  p.open_loop = false;  // clean query/ack alternation per connection
  return generate_tpca_trace(p);
}

std::vector<net::FlowKey> keys_for(const Trace& t) {
  AddressSpaceParams p;
  p.clients = t.connections;
  return make_client_keys(p);
}

TEST(TracePackets, EveryPacketParsesWithValidChecksums) {
  const Trace trace = tpca_trace();
  const auto packets = synthesize_packets(trace, keys_for(trace));
  ASSERT_EQ(packets.size(), trace.events.size());
  for (const TimedPacket& tp : packets) {
    EXPECT_TRUE(net::Packet::parse(tp.wire).has_value());
  }
}

TEST(TracePackets, DirectionsMatchEventKinds) {
  const Trace trace = tpca_trace();
  const auto packets = synthesize_packets(trace, keys_for(trace));
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const bool arrival =
        trace.events[i].kind != TraceEventKind::kTransmit;
    EXPECT_EQ(packets[i].to_server, arrival) << i;
  }
}

TEST(TracePackets, ArrivalFlowKeysMatchConnectionKeys) {
  const Trace trace = tpca_trace();
  const auto keys = keys_for(trace);
  const auto packets = synthesize_packets(trace, keys);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (!packets[i].to_server) continue;
    const auto p = net::Packet::parse(packets[i].wire);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->receiver_flow_key(), keys[trace.events[i].conn]);
  }
}

TEST(TracePackets, SequenceNumbersProgressConsistently) {
  // Per connection: query seq advances by query_bytes; the response ack
  // from the client acknowledges the full response.
  const Trace trace = tpca_trace(5);
  const auto keys = keys_for(trace);
  TracePacketOptions options;
  const auto packets = synthesize_packets(trace, keys, options);

  std::map<std::uint32_t, std::uint32_t> last_query_seq;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto p = net::Packet::parse(packets[i].wire);
    ASSERT_TRUE(p.has_value());
    const std::uint32_t conn = trace.events[i].conn;
    switch (trace.events[i].kind) {
      case TraceEventKind::kArrivalData: {
        EXPECT_EQ(p->payload.size(), options.query_bytes);
        if (last_query_seq.contains(conn)) {
          EXPECT_EQ(p->tcp.seq,
                    last_query_seq[conn] + options.query_bytes);
        }
        last_query_seq[conn] = p->tcp.seq;
        break;
      }
      case TraceEventKind::kArrivalAck:
        EXPECT_TRUE(p->payload.empty());
        EXPECT_TRUE(p->tcp.has(net::TcpFlag::kAck));
        break;
      case TraceEventKind::kTransmit:
      case TraceEventKind::kOpen:
      case TraceEventKind::kClose:
        break;
    }
  }
}

TEST(TracePackets, ExactlyOneResponsePerTransaction) {
  const Trace trace = tpca_trace(5);
  const auto packets = synthesize_packets(trace, keys_for(trace));
  std::size_t responses = 0;
  std::size_t acks = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto p = net::Packet::parse(packets[i].wire);
    ASSERT_TRUE(p.has_value());
    if (trace.events[i].kind == TraceEventKind::kTransmit &&
        !p->payload.empty()) {
      ++responses;
    }
    if (trace.events[i].kind == TraceEventKind::kArrivalAck) ++acks;
  }
  EXPECT_EQ(responses, acks);
}

TEST(TracePackets, BulkTraceHasOnlyPureServerAcks) {
  BulkWorkloadParams bp;
  bp.connections = 3;
  bp.duration = 1.0;
  const Trace trace = generate_bulk_trace(bp);
  const auto packets = synthesize_packets(trace, keys_for(trace));
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (trace.events[i].kind != TraceEventKind::kTransmit) continue;
    const auto p = net::Packet::parse(packets[i].wire);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->payload.empty()) << "bulk server segments are acks";
  }
}

TEST(TracePackets, ServerSegmentsCanBeSuppressed) {
  const Trace trace = tpca_trace(3);
  TracePacketOptions options;
  options.include_server_segments = false;
  const auto packets = synthesize_packets(trace, keys_for(trace), options);
  EXPECT_EQ(packets.size(), trace.arrivals());
  for (const TimedPacket& tp : packets) EXPECT_TRUE(tp.to_server);
}

TEST(TracePackets, ThrowsOnMissingKeys) {
  const Trace trace = tpca_trace(10);
  AddressSpaceParams p;
  p.clients = 3;
  EXPECT_THROW(synthesize_packets(trace, make_client_keys(p)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcpdemux::sim
