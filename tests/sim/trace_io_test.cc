#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/tpca_workload.h"

namespace tcpdemux::sim {
namespace {

TEST(TraceIo, RoundTripSmallTrace) {
  Trace t;
  t.connections = 3;
  t.events = {{0.125, 0, TraceEventKind::kArrivalData},
              {0.125, 0, TraceEventKind::kTransmit},
              {0.5, 1, TraceEventKind::kArrivalAck},
              {1.75, 2, TraceEventKind::kOpen},
              {2.0, 2, TraceEventKind::kClose}};
  std::stringstream buffer;
  ASSERT_TRUE(save_trace(buffer, t));
  const auto loaded = load_trace(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->connections, t.connections);
  EXPECT_EQ(loaded->events, t.events);
}

TEST(TraceIo, RoundTripGeneratedWorkload) {
  TpcaWorkloadParams p;
  p.users = 50;
  p.duration = 60.0;
  p.session_txns_mean = 5.0;  // include open/close events
  const Trace t = generate_tpca_trace(p);
  std::stringstream buffer;
  ASSERT_TRUE(save_trace(buffer, t));
  const auto loaded = load_trace(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->connections, t.connections);
  ASSERT_EQ(loaded->events.size(), t.events.size());
  // Times survive with enough precision that ordering and pairing hold.
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(loaded->events[i].conn, t.events[i].conn);
    EXPECT_EQ(loaded->events[i].kind, t.events[i].kind);
    EXPECT_NEAR(loaded->events[i].time, t.events[i].time, 1e-9);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace t;
  std::stringstream buffer;
  ASSERT_TRUE(save_trace(buffer, t));
  const auto loaded = load_trace(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->connections, 0u);
  EXPECT_TRUE(loaded->events.empty());
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream a("not-a-trace\n");
  EXPECT_FALSE(load_trace(a).has_value());
  std::stringstream b("tcpdemux-trace,v1,abc\n");
  EXPECT_FALSE(load_trace(b).has_value());
  std::stringstream c;
  EXPECT_FALSE(load_trace(c).has_value());
}

TEST(TraceIo, RejectsMalformedRows) {
  for (const char* text :
       {"tcpdemux-trace,v1,2\n1.0,0\n",         // missing kind column
        "tcpdemux-trace,v1,2\n1.0,0,frob\n",    // unknown kind
        "tcpdemux-trace,v1,2\nxyz,0,data\n",    // bad time
        "tcpdemux-trace,v1,2\n1.0,zz,data\n"})  // bad conn
  {
    std::stringstream s(text);
    EXPECT_FALSE(load_trace(s).has_value()) << text;
  }
}

TEST(TraceIo, RejectsSemanticallyInvalidTrace) {
  // conn out of range.
  std::stringstream a("tcpdemux-trace,v1,2\n1.0,5,data\n");
  EXPECT_FALSE(load_trace(a).has_value());
  // timestamps out of order.
  std::stringstream b("tcpdemux-trace,v1,2\n2.0,0,data\n1.0,1,ack\n");
  EXPECT_FALSE(load_trace(b).has_value());
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream s("tcpdemux-trace,v1,1\n1.0,0,data\n\n2.0,0,ack\n");
  const auto loaded = load_trace(s);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->events.size(), 2u);
}

}  // namespace
}  // namespace tcpdemux::sim
