#include "sim/trace.h"

#include <gtest/gtest.h>

namespace tcpdemux::sim {
namespace {

TEST(Trace, SortByTimeIsStable) {
  Trace t;
  t.connections = 3;
  t.events = {{2.0, 0, TraceEventKind::kArrivalData},
              {1.0, 1, TraceEventKind::kArrivalData},
              {1.0, 1, TraceEventKind::kTransmit},  // same time: keep order
              {0.5, 2, TraceEventKind::kArrivalAck}};
  t.sort_by_time();
  ASSERT_EQ(t.events.size(), 4u);
  EXPECT_EQ(t.events[0].conn, 2u);
  EXPECT_EQ(t.events[1].kind, TraceEventKind::kArrivalData);
  EXPECT_EQ(t.events[2].kind, TraceEventKind::kTransmit);
  EXPECT_EQ(t.events[3].conn, 0u);
}

TEST(Trace, ValidChecksOrderingAndConnRange) {
  Trace t;
  t.connections = 2;
  t.events = {{1.0, 0, TraceEventKind::kArrivalData},
              {2.0, 1, TraceEventKind::kArrivalAck}};
  EXPECT_TRUE(t.valid());
  t.events.push_back({1.5, 0, TraceEventKind::kArrivalData});
  EXPECT_FALSE(t.valid());  // out of order
  t.sort_by_time();
  EXPECT_TRUE(t.valid());
  t.events.push_back({3.0, 7, TraceEventKind::kArrivalData});
  EXPECT_FALSE(t.valid());  // conn out of range
}

TEST(Trace, ArrivalsExcludeTransmits) {
  Trace t;
  t.connections = 1;
  t.events = {{1.0, 0, TraceEventKind::kArrivalData},
              {1.0, 0, TraceEventKind::kTransmit},
              {2.0, 0, TraceEventKind::kArrivalAck}};
  EXPECT_EQ(t.arrivals(), 2u);
}

TEST(Trace, MergeRemapsConnections) {
  Trace a;
  a.connections = 2;
  a.events = {{1.0, 0, TraceEventKind::kArrivalData},
              {3.0, 1, TraceEventKind::kArrivalData}};
  Trace b;
  b.connections = 3;
  b.events = {{2.0, 0, TraceEventKind::kArrivalAck},
              {4.0, 2, TraceEventKind::kArrivalData}};
  a.merge(b);
  EXPECT_EQ(a.connections, 5u);
  ASSERT_EQ(a.events.size(), 4u);
  EXPECT_TRUE(a.valid());
  // b's conn 0 became 2, b's conn 2 became 4.
  EXPECT_EQ(a.events[1].conn, 2u);
  EXPECT_EQ(a.events[3].conn, 4u);
}

TEST(Trace, MergeWithEmpty) {
  Trace a;
  a.connections = 1;
  a.events = {{1.0, 0, TraceEventKind::kArrivalData}};
  Trace empty;
  a.merge(empty);
  EXPECT_EQ(a.connections, 1u);
  EXPECT_EQ(a.events.size(), 1u);
}

TEST(Trace, KindNames) {
  EXPECT_EQ(to_string(TraceEventKind::kArrivalData), "data");
  EXPECT_EQ(to_string(TraceEventKind::kArrivalAck), "ack");
  EXPECT_EQ(to_string(TraceEventKind::kTransmit), "xmit");
}

TEST(Trace, EmptyTraceIsValid) {
  Trace t;
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.arrivals(), 0u);
}

}  // namespace
}  // namespace tcpdemux::sim
