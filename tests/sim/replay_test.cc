#include "sim/replay.h"

#include <gtest/gtest.h>

#include "core/bsd_list.h"
#include "core/connection_id.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"

namespace tcpdemux::sim {
namespace {

Trace tiny_trace() {
  Trace t;
  t.connections = 3;
  t.events = {{0.1, 0, TraceEventKind::kArrivalData},
              {0.2, 0, TraceEventKind::kTransmit},
              {0.3, 1, TraceEventKind::kArrivalData},
              {0.4, 0, TraceEventKind::kArrivalAck},
              {0.5, 2, TraceEventKind::kArrivalData},
              {0.6, 1, TraceEventKind::kArrivalAck}};
  return t;
}

TEST(Replay, CountsLookupsNotTransmits) {
  core::BsdListDemuxer d;
  const auto r = replay_trace(tiny_trace(), d);
  EXPECT_EQ(r.lookups, 5u);
  EXPECT_EQ(r.data.count(), 3u);
  EXPECT_EQ(r.ack.count(), 2u);
  EXPECT_EQ(r.overall.count(), 5u);
  EXPECT_EQ(r.misses, 0u);
  EXPECT_EQ(r.algorithm, "bsd");
}

TEST(Replay, NoMissesWhenAllConnectionsInserted) {
  core::SequentDemuxer d;
  const auto r = replay_trace(tiny_trace(), d);
  EXPECT_EQ(r.misses, 0u);
}

TEST(Replay, ConnectionIdExaminesExactlyOneEach) {
  core::ConnectionIdDemuxer d(16);
  const auto r = replay_trace(tiny_trace(), d);
  EXPECT_DOUBLE_EQ(r.overall.mean(), 1.0);
  EXPECT_EQ(r.overall.max(), 1u);
}

TEST(Replay, TransmitFeedsSendCache) {
  // After conn 0's transmit, the ack for conn 0 must hit the send cache.
  core::SendReceiveCacheDemuxer d;
  Trace t;
  t.connections = 2;
  t.events = {{0.1, 0, TraceEventKind::kArrivalData},
              {0.2, 0, TraceEventKind::kTransmit},
              {0.3, 1, TraceEventKind::kArrivalData},  // flushes recv cache
              {0.4, 0, TraceEventKind::kArrivalAck}};
  const auto r = replay_trace(t, d);
  // The final ack probes the send cache first: 1 examined.
  EXPECT_EQ(r.ack.max(), 1u);
  EXPECT_GE(r.cache_hits, 1u);
}

TEST(Replay, ThrowsOnNonEmptyDemuxer) {
  core::BsdListDemuxer d;
  d.insert(net::FlowKey{net::Ipv4Addr(1, 2, 3, 4), 5,
                        net::Ipv4Addr(6, 7, 8, 9), 10});
  EXPECT_THROW(replay_trace(tiny_trace(), d), std::invalid_argument);
}

TEST(Replay, ThrowsOnInsufficientKeys) {
  core::BsdListDemuxer d;
  AddressSpaceParams p;
  p.clients = 2;  // trace needs 3
  const auto keys = make_client_keys(p);
  EXPECT_THROW(replay_trace(tiny_trace(), keys, d), std::invalid_argument);
}

TEST(Replay, HitRateComputation) {
  core::BsdListDemuxer d;
  Trace t;
  t.connections = 1;
  t.events = {{0.1, 0, TraceEventKind::kArrivalData},
              {0.2, 0, TraceEventKind::kArrivalData},
              {0.3, 0, TraceEventKind::kArrivalData}};
  const auto r = replay_trace(t, d);
  // First lookup misses the (empty) cache, the next two hit.
  EXPECT_NEAR(r.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Replay, SameTraceSameKeysReproducible) {
  core::SequentDemuxer d1;
  core::SequentDemuxer d2;
  const Trace t = tiny_trace();
  const auto a = replay_trace(t, d1);
  const auto b = replay_trace(t, d2);
  EXPECT_DOUBLE_EQ(a.overall.mean(), b.overall.mean());
  EXPECT_EQ(a.cache_hits, b.cache_hits);
}

TEST(Replay, DefaultOptionsProduceNoSeries) {
  core::SequentDemuxer d;
  const auto r = replay_trace(tiny_trace(), d);
  EXPECT_EQ(r.series.interval, 0u);
  EXPECT_TRUE(r.series.samples.empty());
  EXPECT_EQ(r.latency_ns.count(), 0u);
  // Counters-only default: histograms stay cold.
  EXPECT_FALSE(d.telemetry().histograms_enabled());
  EXPECT_EQ(d.telemetry().examined().count(), 0u);
}

TEST(Replay, TelemetryIntervalEmitsSeriesCoveringAllLookups) {
  core::SequentDemuxer d;
  ReplayOptions options;
  options.telemetry_interval = 2;
  const auto r = replay_trace(tiny_trace(), d, options);
  // 5 lookups at interval 2: samples at 2, 4, and the final partial at 5.
  ASSERT_EQ(r.series.samples.size(), 3u);
  EXPECT_EQ(r.series.interval, 2u);
  EXPECT_EQ(r.series.samples[0].events, 2u);
  EXPECT_EQ(r.series.samples[1].events, 4u);
  EXPECT_EQ(r.series.samples[2].events, 5u);
  std::uint64_t covered = 0;
  for (const auto& s : r.series.samples) {
    covered += s.lookups;
    EXPECT_GE(s.max_examined, 1u);
    EXPECT_GT(s.occ_mean, 0.0);
  }
  EXPECT_EQ(covered, r.lookups);
  // And the cumulative registry agrees with DemuxStats.
  EXPECT_EQ(d.telemetry().examined().sum(), d.stats().pcbs_examined);
}

TEST(Replay, LatencySamplerRecordsRequestedFraction) {
  core::SequentDemuxer d;
  ReplayOptions options;
  options.latency_sample_every = 2;
  const auto r = replay_trace(tiny_trace(), d, options);
  EXPECT_EQ(r.latency_ns.count(), 2u);  // 5 lookups, one in 2 sampled
}

}  // namespace
}  // namespace tcpdemux::sim
