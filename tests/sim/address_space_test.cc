#include "sim/address_space.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/hashers.h"

namespace tcpdemux::sim {
namespace {

TEST(AddressSpace, KeysAreDistinct) {
  for (const ClientPattern pattern :
       {ClientPattern::kSequentialHosts, ClientPattern::kConcentrators,
        ClientPattern::kRandom, ClientPattern::kAdversarialForModulo}) {
    AddressSpaceParams p;
    p.clients = 3000;
    p.pattern = pattern;
    const auto keys = make_client_keys(p);
    std::unordered_set<net::FlowKey> set(keys.begin(), keys.end());
    EXPECT_EQ(set.size(), keys.size())
        << "pattern " << static_cast<int>(pattern);
  }
}

TEST(AddressSpace, KeysAreFullySpecifiedAndServerLocal) {
  AddressSpaceParams p;
  p.clients = 100;
  const auto keys = make_client_keys(p);
  ASSERT_EQ(keys.size(), 100u);
  for (const net::FlowKey& k : keys) {
    EXPECT_TRUE(k.fully_specified());
    EXPECT_EQ(k.local_addr, p.server_addr);
    EXPECT_EQ(k.local_port, p.server_port);
  }
}

TEST(AddressSpace, SequentialHostsSkipNetworkAndBroadcast) {
  AddressSpaceParams p;
  p.clients = 1000;
  p.pattern = ClientPattern::kSequentialHosts;
  for (const auto& k : make_client_keys(p)) {
    const std::uint32_t low = k.foreign_addr.value() & 0xff;
    EXPECT_GE(low, 2u);
    EXPECT_LE(low, 254u);
  }
}

TEST(AddressSpace, ConcentratorsUseFewHosts) {
  AddressSpaceParams p;
  p.clients = 800;
  p.pattern = ClientPattern::kConcentrators;
  p.concentrator_hosts = 8;
  std::unordered_set<std::uint32_t> hosts;
  for (const auto& k : make_client_keys(p)) {
    hosts.insert(k.foreign_addr.value());
  }
  EXPECT_EQ(hosts.size(), 8u);
}

TEST(AddressSpace, AdversarialDefeatsBsdModulo) {
  AddressSpaceParams p;
  p.clients = 500;
  p.pattern = ClientPattern::kAdversarialForModulo;
  const auto keys = make_client_keys(p);
  std::unordered_set<std::uint32_t> hashes;
  for (const auto& k : keys) {
    hashes.insert(net::hash_flow(net::HasherKind::kBsdModulo, k));
  }
  EXPECT_EQ(hashes.size(), 1u) << "all keys must collide under BSD modulo";
  // ... while a strong hash still separates them.
  std::unordered_set<std::uint32_t> crc_hashes;
  for (const auto& k : keys) {
    crc_hashes.insert(net::hash_flow(net::HasherKind::kCrc32, k));
  }
  EXPECT_GT(crc_hashes.size(), 490u);
}

TEST(AddressSpace, RandomPatternIsSeedDeterministic) {
  AddressSpaceParams p;
  p.clients = 200;
  p.pattern = ClientPattern::kRandom;
  const auto a = make_client_keys(p);
  const auto b = make_client_keys(p);
  EXPECT_EQ(a, b);
  p.seed += 1;
  const auto c = make_client_keys(p);
  EXPECT_NE(a, c);
}

TEST(AddressSpace, ZeroClientsThrows) {
  AddressSpaceParams p;
  p.clients = 0;
  EXPECT_THROW(make_client_keys(p), std::invalid_argument);
}

}  // namespace
}  // namespace tcpdemux::sim
