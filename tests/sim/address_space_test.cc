#include "sim/address_space.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "net/hashers.h"

namespace tcpdemux::sim {
namespace {

TEST(AddressSpace, KeysAreDistinct) {
  for (const ClientPattern pattern :
       {ClientPattern::kSequentialHosts, ClientPattern::kConcentrators,
        ClientPattern::kRandom, ClientPattern::kAdversarialForModulo}) {
    AddressSpaceParams p;
    p.clients = 3000;
    p.pattern = pattern;
    const auto keys = make_client_keys(p);
    std::unordered_set<net::FlowKey> set(keys.begin(), keys.end());
    EXPECT_EQ(set.size(), keys.size())
        << "pattern " << static_cast<int>(pattern);
  }
}

TEST(AddressSpace, KeysAreFullySpecifiedAndServerLocal) {
  AddressSpaceParams p;
  p.clients = 100;
  const auto keys = make_client_keys(p);
  ASSERT_EQ(keys.size(), 100u);
  for (const net::FlowKey& k : keys) {
    EXPECT_TRUE(k.fully_specified());
    EXPECT_EQ(k.local_addr, p.server_addr);
    EXPECT_EQ(k.local_port, p.server_port);
  }
}

TEST(AddressSpace, SequentialHostsSkipNetworkAndBroadcast) {
  AddressSpaceParams p;
  p.clients = 1000;
  p.pattern = ClientPattern::kSequentialHosts;
  for (const auto& k : make_client_keys(p)) {
    const std::uint32_t low = k.foreign_addr.value() & 0xff;
    EXPECT_GE(low, 2u);
    EXPECT_LE(low, 254u);
  }
}

TEST(AddressSpace, ConcentratorsUseFewHosts) {
  AddressSpaceParams p;
  p.clients = 800;
  p.pattern = ClientPattern::kConcentrators;
  p.concentrator_hosts = 8;
  std::unordered_set<std::uint32_t> hosts;
  for (const auto& k : make_client_keys(p)) {
    hosts.insert(k.foreign_addr.value());
  }
  EXPECT_EQ(hosts.size(), 8u);
}

TEST(AddressSpace, AdversarialDefeatsBsdModulo) {
  AddressSpaceParams p;
  p.clients = 500;
  p.pattern = ClientPattern::kAdversarialForModulo;
  const auto keys = make_client_keys(p);
  std::unordered_set<std::uint32_t> hashes;
  for (const auto& k : keys) {
    hashes.insert(net::hash_flow(net::HasherKind::kBsdModulo, k));
  }
  EXPECT_EQ(hashes.size(), 1u) << "all keys must collide under BSD modulo";
  // ... while a strong hash still separates them.
  std::unordered_set<std::uint32_t> crc_hashes;
  for (const auto& k : keys) {
    crc_hashes.insert(net::hash_flow(net::HasherKind::kCrc32, k));
  }
  EXPECT_GT(crc_hashes.size(), 490u);
}

TEST(AddressSpace, RandomPatternIsSeedDeterministic) {
  AddressSpaceParams p;
  p.clients = 200;
  p.pattern = ClientPattern::kRandom;
  const auto a = make_client_keys(p);
  const auto b = make_client_keys(p);
  EXPECT_EQ(a, b);
  p.seed += 1;
  const auto c = make_client_keys(p);
  EXPECT_NE(a, c);
}

TEST(AddressSpace, ZeroClientsThrows) {
  AddressSpaceParams p;
  p.clients = 0;
  EXPECT_THROW(make_client_keys(p), std::invalid_argument);
}

TEST(EphemeralPortAllocator, HandsOutFreshPortsSequentiallyFirst) {
  EphemeralPortAllocator alloc(40000, 40003);
  EXPECT_EQ(alloc.capacity(), 4u);
  EXPECT_EQ(alloc.acquire(), 40000);
  EXPECT_EQ(alloc.acquire(), 40001);
  // Releasing does not tempt the allocator while fresh ports remain:
  // real stacks walk the whole range before revisiting (BSD/Linux cycling).
  alloc.release(40000);
  EXPECT_EQ(alloc.acquire(), 40002);
  EXPECT_EQ(alloc.acquire(), 40003);
  EXPECT_EQ(alloc.reuses(), 0u);
  // Only now does the released port come back.
  EXPECT_EQ(alloc.acquire(), 40000);
  EXPECT_EQ(alloc.reuses(), 1u);
}

TEST(EphemeralPortAllocator, RecyclesOldestReleaseFirst) {
  EphemeralPortAllocator alloc(50000, 50002);
  const std::uint16_t a = alloc.acquire();
  const std::uint16_t b = alloc.acquire();
  const std::uint16_t c = alloc.acquire();
  alloc.release(b);  // oldest release
  alloc.release(a);
  alloc.release(c);
  EXPECT_EQ(alloc.acquire(), b);
  EXPECT_EQ(alloc.acquire(), a);
  EXPECT_EQ(alloc.acquire(), c);
  EXPECT_EQ(alloc.reuses(), 3u);
}

TEST(EphemeralPortAllocator, ExhaustionThrows) {
  EphemeralPortAllocator alloc(60000, 60001);
  (void)alloc.acquire();
  (void)alloc.acquire();
  EXPECT_EQ(alloc.in_use(), 2u);
  EXPECT_THROW((void)alloc.acquire(), std::runtime_error);
  alloc.release(60000);
  EXPECT_EQ(alloc.acquire(), 60000);  // recoverable after a release
}

TEST(EphemeralPortAllocator, BadReleasesThrow) {
  EphemeralPortAllocator alloc(40000, 40007);
  const std::uint16_t p = alloc.acquire();
  EXPECT_THROW(alloc.release(39999), std::invalid_argument);  // out of range
  EXPECT_THROW(alloc.release(40005), std::invalid_argument);  // never issued
  alloc.release(p);
  EXPECT_THROW(alloc.release(p), std::invalid_argument);  // double release
  EXPECT_EQ(alloc.in_use(), 0u);
}

TEST(EphemeralPortAllocator, BadRangeThrows) {
  EXPECT_THROW(EphemeralPortAllocator(100, 99), std::invalid_argument);
  EXPECT_THROW(EphemeralPortAllocator(0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace tcpdemux::sim
