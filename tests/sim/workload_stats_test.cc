// Distributional property tests for the scenario generators: fixed seeds,
// real statistics. Each generator advertises a distribution (Zipf tail,
// train geometry, port-reuse rates, NAT fan-in); these tests measure the
// generated traces and fail if the advertised shape is not actually there.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/demux_registry.h"
#include "sim/replay.h"
#include "sim/rng.h"
#include "sim/trace.h"
#include "sim/workloads/churn_workload.h"
#include "sim/workloads/mix_workload.h"
#include "sim/workloads/natpop_workload.h"
#include "sim/workloads/workload_spec.h"
#include "sim/workloads/zipf_workload.h"

namespace tcpdemux::sim::workloads {
namespace {

sim::ReplayResult replay_through(const Workload& w, const char* spec) {
  const auto demuxer = core::make_demuxer(*core::parse_demux_spec(spec));
  return sim::replay_trace(w, *demuxer);
}

// ---------------------------------------------------------------------------
// Zipf

TEST(ZipfSampler, MatchesItsOwnPmf) {
  const std::uint32_t n = 50;
  ZipfSampler zipf(n, 1.0);
  double total = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    total += zipf.pmf(r);
    if (r > 0) {
      EXPECT_LT(zipf.pmf(r), zipf.pmf(r - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  Rng rng(1234);
  constexpr std::uint64_t kSamples = 200000;
  std::vector<std::uint64_t> counts(n, 0);
  for (std::uint64_t i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  // Every rank whose expectation is large enough for tight concentration
  // must land within 10% of it.
  for (std::uint32_t r = 0; r < n; ++r) {
    const double expected = zipf.pmf(r) * static_cast<double>(kSamples);
    if (expected < 1000.0) continue;
    EXPECT_NEAR(static_cast<double>(counts[r]), expected, 0.10 * expected)
        << "rank " << r;
  }
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfWorkload, RankFrequencySlopeMatchesExponent) {
  ZipfWorkloadParams p;
  p.flows = 2000;
  p.s = 1.2;
  p.arrivals = 300000;
  p.duration = 30.0;
  p.ack_every = 0x7fffffff;  // data only: keep the count per flow clean
  const Workload w = generate_zipf_workload(p);

  std::vector<std::uint64_t> per_flow(p.flows, 0);
  for (const TraceEvent& e : w.trace.events) {
    if (e.kind == TraceEventKind::kArrivalData) ++per_flow[e.conn];
  }
  // Conn index == popularity rank by construction. Least-squares slope of
  // log(count) vs log(rank+1) over well-populated ranks ~ -s.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int points = 0;
  for (std::uint32_t r = 0; r < p.flows; ++r) {
    if (per_flow[r] < 30) break;  // tail too noisy for a log fit
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(per_flow[r]));
    sx += x; sy += y; sxx += x * x; sxy += x * y;
    ++points;
  }
  ASSERT_GT(points, 50);
  const double n = static_cast<double>(points);
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, -p.s, 0.1);
}

TEST(ZipfWorkload, ArrivalsSpanDurationAndReplayClean) {
  const Workload w = make_workload("zipf:flows=300:arrivals=20k:duration=10");
  ASSERT_FALSE(w.trace.events.empty());
  EXPECT_LT(w.trace.events.back().time, 10.0 * 1.5);
  const auto result = replay_through(w, "sequent:251:crc32");
  EXPECT_EQ(result.misses, 0u);
  EXPECT_GT(result.lookups, 0u);
}

// ---------------------------------------------------------------------------
// Trains

TEST(TrainsWorkload, TrainLengthAndGapStatistics) {
  const double spacing = 2e-5;
  const double gap_mean = 0.01;
  const Workload w = make_workload(
      "trains:conns=2:len=16:spacing=2e-5:gap=0.01:duration=20:ack_every=1000");
  // Split each connection's data arrivals into trains wherever the gap
  // exceeds the intra-train spacing. Exponential inter-train gaps can
  // occasionally draw below any threshold (P ~ threshold/mean), which
  // merges two trains — so the shape assertions are on the overwhelming
  // majority, not on every sample.
  std::vector<std::vector<double>> times(2);
  for (const TraceEvent& e : w.trace.events) {
    if (e.kind == TraceEventKind::kArrivalData) times[e.conn].push_back(e.time);
  }
  std::vector<std::size_t> lengths;
  std::vector<double> gaps;
  for (const auto& t : times) {
    ASSERT_FALSE(t.empty());
    std::size_t len = 1;
    for (std::size_t i = 1; i < t.size(); ++i) {
      const double dt = t[i] - t[i - 1];
      if (dt > 2 * spacing) {
        lengths.push_back(len);
        len = 1;
        gaps.push_back(dt);
      } else {
        ++len;
      }
    }
  }
  ASSERT_GT(lengths.size(), 100u);
  std::size_t exact = 0;
  for (const std::size_t len : lengths) exact += (len == 16u) ? 1 : 0;
  EXPECT_GT(static_cast<double>(exact), 0.95 * static_cast<double>(lengths.size()))
      << "nearly every completed train must have the configured length";
  double mean_gap = 0.0;
  for (const double g : gaps) mean_gap += g;
  mean_gap /= static_cast<double>(gaps.size());
  // Thresholding an exponential shifts its mean up by ~the threshold
  // (memorylessness); 25% tolerance absorbs that plus sampling noise.
  EXPECT_NEAR(mean_gap, gap_mean, gap_mean * 0.25);
}

// ---------------------------------------------------------------------------
// Churn

TEST(ChurnWorkload, NarrowRangeActuallyReusesPortsAndKeys) {
  ChurnWorkloadParams p;
  p.users = 50;
  p.duration = 120.0;
  p.think_mean = 0.5;
  p.session_txns_mean = 4.0;
  p.port_range = 8;
  const ChurnWorkload churn = generate_churn_workload(p);
  EXPECT_GT(churn.sessions, 50u * 10u);
  EXPECT_GT(churn.port_reuses, 0u);
  EXPECT_GT(churn.key_reuses, churn.sessions / 2)
      << "with an 8-port range most reconnects must reuse a 4-tuple";
  // The reused tuples replay cleanly: every close lands before the reuse.
  const auto result = replay_through(churn.workload, "sequent:251:crc32");
  EXPECT_EQ(result.misses, 0u);
  EXPECT_GT(result.opens, 0u);
  EXPECT_GT(result.closes, 0u);
}

TEST(ChurnWorkload, FreshModeNeverReuses) {
  ChurnWorkloadParams p;
  p.users = 30;
  p.duration = 60.0;
  p.think_mean = 0.5;
  p.ephemeral_reuse = false;
  const ChurnWorkload churn = generate_churn_workload(p);
  EXPECT_GT(churn.sessions, 30u);
  EXPECT_EQ(churn.port_reuses, 0u);
  EXPECT_EQ(churn.key_reuses, 0u);
  std::unordered_set<net::FlowKey> keys(churn.workload.keys.begin(),
                                        churn.workload.keys.end());
  EXPECT_EQ(keys.size(), churn.workload.keys.size());
}

// ---------------------------------------------------------------------------
// NAT population

TEST(NatPopWorkload, FansInToGatewayAddressesAndRebinds) {
  NatPopParams p;
  p.clients = 400;
  p.gateways = 4;
  p.duration = 60.0;
  p.think_mean = 0.5;
  const NatPopWorkload nat = generate_natpop_workload(p);
  std::unordered_set<std::uint32_t> addrs;
  for (const auto& k : nat.workload.keys) addrs.insert(k.foreign_addr.value());
  EXPECT_EQ(addrs.size(), 4u) << "server must see exactly the gateway IPs";
  EXPECT_GT(nat.sessions, 400u);
  EXPECT_GT(nat.binding_reuses, 0u)
      << "400 users churning through 4x512 bindings must recycle";
  const auto result = replay_through(nat.workload, "sequent:251:crc32");
  EXPECT_EQ(result.misses, 0u);
  EXPECT_GT(result.closes, 0u);
}

TEST(NatPopWorkload, RejectsOverCommittedGateways) {
  NatPopParams p;
  p.clients = 50000;
  p.gateways = 2;  // 25000 users per 512-port gateway cannot fit
  EXPECT_THROW((void)generate_natpop_workload(p), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mix

TEST(MixWorkload, FloodFractionIsHonoured) {
  const Workload base = make_workload("zipf:flows=500:arrivals=40k:duration=10");
  MixWorkloadParams p;
  p.flood_fraction = 0.10;
  const MixWorkload mixed = mix_flood_over(base, p);
  const double total = static_cast<double>(mixed.workload.trace.arrivals());
  const double flood = static_cast<double>(mixed.flood_arrivals);
  EXPECT_NEAR(flood / total, 0.10, 0.02);
  EXPECT_EQ(mixed.benign_conns, 500u);
  EXPECT_GT(mixed.flood_conns, 0u);
  // Benign keys survive verbatim in front of the flood keys.
  for (std::uint32_t c = 0; c < mixed.benign_conns; ++c) {
    EXPECT_EQ(mixed.workload.keys[c], base.keys[c]);
  }
  const auto result = replay_through(mixed.workload, "sequent:251:crc32");
  EXPECT_EQ(result.misses, 0u);
  EXPECT_GT(result.opens, 0u);  // flood conns open mid-trace
}

TEST(MixWorkload, RejectsEmptyBaseAndBadFraction) {
  const Workload base = make_workload("zipf:flows=50:arrivals=1000");
  MixWorkloadParams p;
  p.flood_fraction = 1.0;
  EXPECT_THROW((void)mix_flood_over(base, p), std::invalid_argument);
  EXPECT_THROW((void)mix_flood_over(Workload{}, MixWorkloadParams{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcpdemux::sim::workloads
