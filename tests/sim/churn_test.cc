// Connection churn: sessions that close after a few transactions and
// reopen on fresh connections.
#include <gtest/gtest.h>

#include <map>

#include "core/bsd_list.h"
#include "core/sequent_hash.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

namespace tcpdemux::sim {
namespace {

TpcaWorkloadParams churn_params(double session_mean) {
  TpcaWorkloadParams p;
  p.users = 100;
  p.duration = 300.0;
  p.warmup = 30.0;
  p.session_txns_mean = session_mean;
  return p;
}

TEST(Churn, DisabledByDefault) {
  TpcaWorkloadParams p;
  p.users = 50;
  p.duration = 100.0;
  const Trace t = generate_tpca_trace(p);
  EXPECT_EQ(t.connections, 50u);
  for (const TraceEvent& e : t.events) {
    EXPECT_NE(e.kind, TraceEventKind::kOpen);
    EXPECT_NE(e.kind, TraceEventKind::kClose);
  }
}

TEST(Churn, AllocatesFreshConnections) {
  const Trace t = generate_tpca_trace(churn_params(5.0));
  EXPECT_GT(t.connections, 100u);
  std::size_t opens = 0;
  std::size_t closes = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kOpen) ++opens;
    if (e.kind == TraceEventKind::kClose) ++closes;
  }
  EXPECT_GT(opens, 100u);  // ~ 100 users * 30 txns / 5 per session
  EXPECT_GT(closes, opens / 2);
  EXPECT_TRUE(t.valid());
}

TEST(Churn, SessionLengthMatchesMean) {
  const double mean = 4.0;
  const Trace t = generate_tpca_trace(churn_params(mean));
  std::size_t txns = 0;
  std::size_t closes = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kArrivalData) ++txns;
    if (e.kind == TraceEventKind::kClose) ++closes;
  }
  ASSERT_GT(closes, 100u);
  EXPECT_NEAR(static_cast<double>(txns) / static_cast<double>(closes), mean,
              0.5);
}

TEST(Churn, OpenPrecedesActivityOnFreshConnections) {
  const Trace t = generate_tpca_trace(churn_params(3.0));
  std::map<std::uint32_t, bool> open;
  // Pre-established connections: any conn whose first event is not kOpen
  // (this includes fresh conns whose kOpen fell before the warmup cut) —
  // the same prescan replay_trace performs.
  {
    std::map<std::uint32_t, bool> seen;
    for (const TraceEvent& e : t.events) {
      if (!seen[e.conn]) {
        seen[e.conn] = true;
        open[e.conn] = e.kind != TraceEventKind::kOpen;
      }
    }
  }
  for (const TraceEvent& e : t.events) {
    switch (e.kind) {
      case TraceEventKind::kOpen:
        EXPECT_FALSE(open[e.conn]) << "double open of conn " << e.conn;
        open[e.conn] = true;
        break;
      case TraceEventKind::kClose:
        EXPECT_TRUE(open[e.conn]) << "close of closed conn " << e.conn;
        open[e.conn] = false;
        break;
      default:
        // Activity on a conn whose kOpen fell before the warmup cut is
        // legitimate (it replays as pre-established); activity after a
        // kClose is not.
        break;
    }
  }
}

TEST(Churn, NoLookupEverMissesDuringReplay) {
  const Trace t = generate_tpca_trace(churn_params(3.0));
  core::SequentDemuxer d;
  const auto r = replay_trace(t, d);
  EXPECT_EQ(r.misses, 0u);
  EXPECT_GT(r.opens, 0u);
  EXPECT_GT(r.closes, 0u);
}

TEST(Churn, LiveTableSizeStaysNearUserCount) {
  // At any instant each user holds at most one connection (briefly zero
  // between sessions), so after replay the table holds <= users + a few
  // stragglers and roughly (users - users-in-think-gap).
  const Trace t = generate_tpca_trace(churn_params(3.0));
  core::SequentDemuxer d;
  (void)replay_trace(t, d);
  EXPECT_LE(d.size(), 110u);
  EXPECT_GE(d.size(), 50u);
}

TEST(Churn, CostSimilarToStableConnections) {
  // The paper's result is about lookup cost, which depends on the live
  // population, not on session length: heavy churn must not change the
  // Sequent cost much.
  core::SequentDemuxer stable_d;
  core::SequentDemuxer churn_d;
  const auto stable =
      replay_trace(generate_tpca_trace(churn_params(0.0)), stable_d);
  const auto churned =
      replay_trace(generate_tpca_trace(churn_params(3.0)), churn_d);
  EXPECT_NEAR(churned.overall.mean() / stable.overall.mean(), 1.0, 0.25);
}

}  // namespace
}  // namespace tcpdemux::sim
