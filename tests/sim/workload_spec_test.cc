#include "sim/workloads/workload_spec.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "net/flow_key.h"
#include "sim/trace.h"

namespace tcpdemux::sim::workloads {
namespace {

TEST(WorkloadSpecGrammar, SplitsKindAndTokens) {
  const auto spec = parse_workload_spec("zipf:flows=200k:s=1.1:verbose");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, "zipf");
  ASSERT_EQ(spec->params.size(), 3u);
  EXPECT_EQ(spec->get("flows"), "200k");
  EXPECT_EQ(spec->get("s"), "1.1");
  EXPECT_TRUE(spec->has("verbose"));
  EXPECT_EQ(spec->get("verbose"), "");
  EXPECT_FALSE(spec->has("absent"));
}

TEST(WorkloadSpecGrammar, BareKindIsValid) {
  const auto spec = parse_workload_spec("tpca");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, "tpca");
  EXPECT_TRUE(spec->params.empty());
}

TEST(WorkloadSpecGrammar, RejectsMalformedStrings) {
  EXPECT_FALSE(parse_workload_spec("").has_value());
  EXPECT_FALSE(parse_workload_spec(":flows=1").has_value());  // empty kind
  EXPECT_FALSE(parse_workload_spec("zipf::s=1").has_value()); // empty token
  EXPECT_FALSE(parse_workload_spec("zipf:").has_value());     // trailing ':'
  EXPECT_FALSE(parse_workload_spec("zipf:=5").has_value());   // empty key
  EXPECT_FALSE(parse_workload_spec("kind=zipf").has_value()); // '=' in kind
}

TEST(WorkloadSpecGrammar, PathValuesKeepEverythingAfterFirstEquals) {
  const auto spec = parse_workload_spec("pcap:file=/tmp/a=b.pcap");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->get("file"), "/tmp/a=b.pcap");
}

TEST(WorkloadSpecMake, EveryAdvertisedKindInstantiates) {
  // Small sizes: this is a does-it-dispatch test, not a stats test.
  for (const std::string& spec :
       {std::string("tpca:users=50:duration=5"),
        std::string("zipf:flows=50:arrivals=2000:duration=5"),
        std::string("trains:conns=4:len=8:duration=1"),
        std::string("churn:users=10:duration=10:think=0.5"),
        std::string("natpop:clients=40:nats=2:duration=5"),
        std::string("mix:flood=10%:base=zipf:flows=50:arrivals=2000")}) {
    const Workload w = make_workload(spec);
    EXPECT_EQ(w.name, spec);
    EXPECT_GT(w.trace.connections, 0u) << spec;
    EXPECT_GE(w.keys.size(), w.trace.connections) << spec;
    EXPECT_TRUE(w.trace.valid()) << spec;
    EXPECT_GT(w.trace.arrivals(), 0u) << spec;
  }
}

TEST(WorkloadSpecMake, MagnitudeSuffixesScale) {
  const Workload w = make_workload("zipf:flows=1k:arrivals=2k:duration=5");
  EXPECT_EQ(w.trace.connections, 1000u);
}

TEST(WorkloadSpecMake, SameSpecIsDeterministic) {
  const Workload a = make_workload("churn:users=20:duration=20:seed=7");
  const Workload b = make_workload("churn:users=20:duration=20:seed=7");
  EXPECT_EQ(a.trace.connections, b.trace.connections);
  EXPECT_EQ(a.trace.events, b.trace.events);
  EXPECT_EQ(a.keys, b.keys);
  const Workload c = make_workload("churn:users=20:duration=20:seed=8");
  EXPECT_NE(a.trace.events, c.trace.events);
}

TEST(WorkloadSpecMake, UnknownKindOrTokenThrows) {
  EXPECT_THROW((void)make_workload("warp:factor=9"), std::invalid_argument);
  EXPECT_THROW((void)make_workload("zipf:flows"), std::invalid_argument);
  EXPECT_THROW((void)make_workload("zipf:flows=abc"), std::invalid_argument);
  EXPECT_THROW((void)make_workload("zipf:s=fast"), std::invalid_argument);
  EXPECT_THROW((void)make_workload("zipf:flows=1:flows=2"),
               std::invalid_argument);
  EXPECT_THROW((void)make_workload("bad spec"), std::invalid_argument);
}

TEST(WorkloadSpecMake, ChurnFlagsAreExclusive) {
  EXPECT_NO_THROW((void)make_workload("churn:users=5:duration=5:ephemeral"));
  EXPECT_NO_THROW((void)make_workload("churn:users=5:duration=5:fresh"));
  EXPECT_THROW((void)make_workload("churn:users=5:duration=5:ephemeral:fresh"),
               std::invalid_argument);
  EXPECT_THROW((void)make_workload("churn:users=5:ephemeral=yes"),
               std::invalid_argument);
}

TEST(WorkloadSpecMake, MixForwardsLeftoverTokensToBase) {
  const Workload w =
      make_workload("mix:flood=20%:base=zipf:flows=77:arrivals=5000");
  // Base tokens reached the zipf generator: exactly 77 benign connections
  // plus some flood connections on top.
  EXPECT_GT(w.trace.connections, 77u);
  std::unordered_set<net::FlowKey> keys(w.keys.begin(), w.keys.end());
  EXPECT_EQ(keys.size(), w.keys.size()) << "flood keys must not collide";
}

TEST(WorkloadSpecMake, MixRejectsRecursionAndBadBaseTokens) {
  EXPECT_THROW((void)make_workload("mix:flood=5%:base=mix"),
               std::invalid_argument);
  // An unknown token is rejected by the *base*, not silently eaten by mix.
  EXPECT_THROW((void)make_workload("mix:flood=5%:base=zipf:bogus=1"),
               std::invalid_argument);
}

TEST(WorkloadSpecMake, PcapKindRequiresFile) {
  EXPECT_THROW((void)make_workload("pcap"), std::invalid_argument);
  EXPECT_THROW((void)make_workload("pcap:file=/nonexistent/x.pcap"),
               std::invalid_argument);
}

TEST(WorkloadSpecMake, KindListCoversDispatcher) {
  const auto kinds = workload_kinds();
  EXPECT_EQ(kinds.size(), 7u);
  for (const auto kind : kinds) {
    if (kind == "pcap") continue;  // needs a file; covered above
    // Defaults must instantiate — a kind you cannot call by bare name
    // would be useless in the matrix. Keep sizes default; this is slow-ish
    // for tpca but still well under a second.
    if (kind == "tpca" || kind == "mix") continue;  // long default duration
    EXPECT_NO_THROW((void)make_workload(std::string(kind) + ":duration=2"))
        << kind;
  }
}

}  // namespace
}  // namespace tcpdemux::sim::workloads
