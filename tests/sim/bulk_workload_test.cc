#include "sim/bulk_workload.h"

#include <gtest/gtest.h>

namespace tcpdemux::sim {
namespace {

BulkWorkloadParams small_params() {
  BulkWorkloadParams p;
  p.connections = 4;
  p.train_length = 16;
  p.duration = 5.0;
  return p;
}

TEST(BulkWorkload, TraceIsValid) {
  const Trace t = generate_bulk_trace(small_params());
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.connections, 4u);
  EXPECT_GT(t.arrivals(), 100u);
}

TEST(BulkWorkload, OnlyDataArrivalsAndTransmits) {
  const Trace t = generate_bulk_trace(small_params());
  for (const TraceEvent& e : t.events) {
    EXPECT_NE(e.kind, TraceEventKind::kArrivalAck);
  }
}

TEST(BulkWorkload, TrainsArePredominantlyBackToBack) {
  // Within a train, consecutive data arrivals on the same connection are
  // segment_spacing apart — so the fraction of same-connection successive
  // arrivals must be high (that is what "packet train" means).
  const auto p = small_params();
  const Trace t = generate_bulk_trace(p);
  std::size_t same = 0;
  std::size_t total = 0;
  std::uint32_t prev_conn = ~0u;
  for (const TraceEvent& e : t.events) {
    if (e.kind != TraceEventKind::kArrivalData) continue;
    if (prev_conn != ~0u) {
      ++total;
      if (e.conn == prev_conn) ++same;
    }
    prev_conn = e.conn;
  }
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.7);
}

TEST(BulkWorkload, DelayedAckRatioRespected) {
  const auto p = small_params();
  const Trace t = generate_bulk_trace(p);
  std::size_t data = 0;
  std::size_t xmit = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kArrivalData) ++data;
    if (e.kind == TraceEventKind::kTransmit) ++xmit;
  }
  // One ack per segments_per_ack = 2 data segments (plus train-tail acks).
  EXPECT_NEAR(static_cast<double>(data) / static_cast<double>(xmit), 2.0,
              0.3);
}

TEST(BulkWorkload, DeterministicForSeed) {
  const auto a = generate_bulk_trace(small_params());
  const auto b = generate_bulk_trace(small_params());
  EXPECT_EQ(a.events, b.events);
}

TEST(BulkWorkload, RejectsEmptyConfig) {
  BulkWorkloadParams p;
  p.connections = 0;
  EXPECT_THROW(generate_bulk_trace(p), std::invalid_argument);
  p = BulkWorkloadParams{};
  p.train_length = 0;
  EXPECT_THROW(generate_bulk_trace(p), std::invalid_argument);
}

TEST(BulkWorkload, AllConnectionsSendTrains) {
  const auto p = small_params();
  const Trace t = generate_bulk_trace(p);
  std::vector<std::size_t> counts(p.connections, 0);
  for (const TraceEvent& e : t.events) ++counts[e.conn];
  for (const std::size_t c : counts) EXPECT_GT(c, 0u);
}

}  // namespace
}  // namespace tcpdemux::sim
