#include "sim/tpca_workload.h"

#include <gtest/gtest.h>

#include <map>

namespace tcpdemux::sim {
namespace {

TpcaWorkloadParams small_params() {
  TpcaWorkloadParams p;
  p.users = 100;
  p.duration = 300.0;
  p.warmup = 30.0;
  return p;
}

TEST(TpcaWorkload, TraceIsValidAndSorted) {
  const Trace t = generate_tpca_trace(small_params());
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.connections, 100u);
  EXPECT_GT(t.events.size(), 0u);
}

TEST(TpcaWorkload, EventTimesWithinWindow) {
  const auto p = small_params();
  const Trace t = generate_tpca_trace(p);
  for (const TraceEvent& e : t.events) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, p.duration);
  }
}

TEST(TpcaWorkload, ServerReceivesTwoPacketsPerTransaction) {
  // Data and ack arrivals should be (nearly) equal in number; edge effects
  // at the window boundaries account for at most a few transactions.
  const Trace t = generate_tpca_trace(small_params());
  std::size_t data = 0;
  std::size_t ack = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kArrivalData) ++data;
    if (e.kind == TraceEventKind::kArrivalAck) ++ack;
  }
  EXPECT_GT(data, 0u);
  EXPECT_NEAR(static_cast<double>(data), static_cast<double>(ack),
              static_cast<double>(t.connections));
}

TEST(TpcaWorkload, TransmitCountMatchesArrivals) {
  // Two transmissions (query ack + response) per transaction.
  const Trace t = generate_tpca_trace(small_params());
  std::size_t xmit = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kTransmit) ++xmit;
  }
  EXPECT_NEAR(static_cast<double>(xmit),
              static_cast<double>(t.arrivals()),
              static_cast<double>(2 * t.connections));
}

TEST(TpcaWorkload, AckTrailsQueryByResponseTime) {
  // Per transaction the ack arrival must be exactly R after the query
  // arrival. Verify per connection by pairing events in time order.
  auto p = small_params();
  p.users = 10;
  p.open_loop = false;  // guarantees query/ack alternation per connection
  const Trace t = generate_tpca_trace(p);
  std::map<std::uint32_t, double> last_query;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kArrivalData) {
      last_query[e.conn] = e.time;
    } else if (e.kind == TraceEventKind::kArrivalAck) {
      // An ack whose query fell before the warmup cut has no pair.
      if (!last_query.contains(e.conn)) continue;
      EXPECT_NEAR(e.time - last_query[e.conn], p.response_time, 1e-9);
    }
  }
}

TEST(TpcaWorkload, ThroughputMatchesOpenLoopRate)  {
  // Open loop: each user enters ~ duration/think_mean transactions, with
  // the truncated-exponential mean slightly below think_mean.
  TpcaWorkloadParams p;
  p.users = 500;
  p.duration = 500.0;
  p.warmup = 50.0;
  const Trace t = generate_tpca_trace(p);
  const double txns = static_cast<double>(t.arrivals()) / 2.0;
  const double expected = p.users * p.duration / 10.0;
  EXPECT_NEAR(txns / expected, 1.0, 0.1);
}

TEST(TpcaWorkload, ClosedLoopSlowerThanOpenLoop) {
  TpcaWorkloadParams p = small_params();
  p.users = 300;
  p.response_time = 2.0;  // maximum allowed; makes the difference visible
  p.open_loop = true;
  const auto open = generate_tpca_trace(p).arrivals();
  p.open_loop = false;
  const auto closed = generate_tpca_trace(p).arrivals();
  EXPECT_LT(closed, open);
  // Closed loop adds R to each cycle: ratio ~ think/(think+R) = 10/12.
  EXPECT_NEAR(static_cast<double>(closed) / static_cast<double>(open),
              10.0 / 12.0, 0.05);
}

TEST(TpcaWorkload, DeterministicForSeed) {
  const auto p = small_params();
  const Trace a = generate_tpca_trace(p);
  const Trace b = generate_tpca_trace(p);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.events, b.events);
}

TEST(TpcaWorkload, SeedChangesTrace) {
  auto p = small_params();
  const Trace a = generate_tpca_trace(p);
  p.seed += 1;
  const Trace b = generate_tpca_trace(p);
  EXPECT_NE(a.events, b.events);
}

TEST(TpcaWorkload, AllConnectionsEventuallyActive) {
  auto p = small_params();
  p.duration = 400.0;
  const Trace t = generate_tpca_trace(p);
  std::vector<bool> seen(p.users, false);
  for (const TraceEvent& e : t.events) seen[e.conn] = true;
  for (std::uint32_t u = 0; u < p.users; ++u) {
    EXPECT_TRUE(seen[u]) << "user " << u << " never transacted";
  }
}

TEST(TpcaWorkload, RejectsInvalidConfig) {
  TpcaWorkloadParams p;
  p.users = 0;
  EXPECT_THROW(generate_tpca_trace(p), std::invalid_argument);
  p = TpcaWorkloadParams{};
  p.response_time = 0.0005;
  p.rtt = 0.001;
  EXPECT_THROW(generate_tpca_trace(p), std::invalid_argument);
}

TEST(TpcaWorkload, UntruncatedThinkTimeRunsSlightlySlower) {
  // Pure exponential has a longer mean than the truncated distribution,
  // so slightly fewer transactions complete in a fixed window.
  TpcaWorkloadParams p;
  p.users = 2000;
  p.duration = 300.0;
  p.truncate_think = true;
  const auto truncated = generate_tpca_trace(p).arrivals();
  p.truncate_think = false;
  const auto pure = generate_tpca_trace(p).arrivals();
  // The paper (§3): truncation affects <0.4% of total think time.
  EXPECT_NEAR(static_cast<double>(pure) / static_cast<double>(truncated),
              1.0, 0.02);
}

}  // namespace
}  // namespace tcpdemux::sim
