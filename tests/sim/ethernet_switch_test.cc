#include "sim/ethernet_switch.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::sim {
namespace {

using net::EthernetHeader;
using net::MacAddr;

std::vector<std::uint8_t> frame(const MacAddr& dst, const MacAddr& src) {
  std::vector<std::uint8_t> out(EthernetHeader::kSize + 8, 0xab);
  EthernetHeader h;
  h.dst = dst;
  h.src = src;
  h.serialize(out);
  return out;
}

MacAddr mac(std::uint8_t tail) {
  return MacAddr({0x02, 0, 0, 0, 0, tail});
}

struct SwitchFixture : ::testing::Test {
  SwitchFixture() {
    for (int p = 0; p < 4; ++p) {
      bridge.add_port([this, p](std::vector<std::uint8_t> f) {
        received[static_cast<std::size_t>(p)].push_back(std::move(f));
      });
    }
  }
  EthernetSwitch bridge;
  std::vector<std::vector<std::uint8_t>> received[4];
};

TEST_F(SwitchFixture, UnknownUnicastFloodsAllButIngress) {
  bridge.receive(0, frame(mac(9), mac(1)), 0.0);
  EXPECT_EQ(received[0].size(), 0u);
  EXPECT_EQ(received[1].size(), 1u);
  EXPECT_EQ(received[2].size(), 1u);
  EXPECT_EQ(received[3].size(), 1u);
  EXPECT_EQ(bridge.stats().flooded, 1u);
}

TEST_F(SwitchFixture, LearnsSourceThenForwardsUnicast) {
  bridge.receive(2, frame(mac(9), mac(7)), 0.0);  // learn mac(7) @ port 2
  EXPECT_EQ(bridge.port_of(mac(7)), 2u);
  for (auto& r : received) r.clear();

  bridge.receive(0, frame(mac(7), mac(1)), 1.0);  // known unicast
  EXPECT_EQ(received[2].size(), 1u);
  EXPECT_EQ(received[1].size(), 0u);
  EXPECT_EQ(received[3].size(), 0u);
  EXPECT_EQ(bridge.stats().forwarded, 1u);
}

TEST_F(SwitchFixture, BroadcastAlwaysFloods) {
  bridge.receive(1, frame(MacAddr::broadcast(), mac(1)), 0.0);
  bridge.receive(1, frame(MacAddr::broadcast(), mac(1)), 1.0);
  EXPECT_EQ(received[0].size(), 2u);
  EXPECT_EQ(received[1].size(), 0u);
  EXPECT_EQ(bridge.stats().flooded, 2u);
}

TEST_F(SwitchFixture, HairpinDropped) {
  bridge.receive(2, frame(mac(9), mac(7)), 0.0);  // mac(7) on port 2
  for (auto& r : received) r.clear();
  bridge.receive(2, frame(mac(7), mac(8)), 1.0);  // toward its own port
  for (const auto& r : received) EXPECT_TRUE(r.empty());
  EXPECT_GT(bridge.stats().dropped, 0u);
}

TEST_F(SwitchFixture, MacMovesToNewPort) {
  bridge.receive(1, frame(mac(9), mac(5)), 0.0);
  EXPECT_EQ(bridge.port_of(mac(5)), 1u);
  bridge.receive(3, frame(mac(9), mac(5)), 1.0);  // host moved
  EXPECT_EQ(bridge.port_of(mac(5)), 3u);
}

TEST_F(SwitchFixture, AgeingFallsBackToFlooding) {
  bridge.receive(2, frame(mac(9), mac(7)), 0.0);
  EXPECT_EQ(bridge.expire(1000.0), 1u);
  for (auto& r : received) r.clear();
  bridge.receive(0, frame(mac(7), mac(1)), 1000.0);
  EXPECT_EQ(received[2].size(), 1u);
  EXPECT_EQ(received[1].size(), 1u) << "expired MAC must flood again";
}

TEST_F(SwitchFixture, RuntFramesDropped) {
  const std::vector<std::uint8_t> runt(10, 0);
  bridge.receive(0, runt, 0.0);
  for (const auto& r : received) EXPECT_TRUE(r.empty());
  EXPECT_EQ(bridge.stats().dropped, 1u);
}

TEST_F(SwitchFixture, BroadcastSourceNeverLearned) {
  bridge.receive(0, frame(mac(1), MacAddr::broadcast()), 0.0);
  EXPECT_EQ(bridge.port_of(MacAddr::broadcast()), EthernetSwitch::npos);
}

TEST(EthernetSwitchCapacity, EvictsStalestAtLimit) {
  EthernetSwitch::Options options;
  options.max_macs = 2;
  EthernetSwitch bridge(options);
  bridge.add_port([](std::vector<std::uint8_t>) {});
  bridge.add_port([](std::vector<std::uint8_t>) {});
  bridge.receive(0, frame(mac(9), mac(1)), 1.0);
  bridge.receive(0, frame(mac(9), mac(2)), 2.0);
  bridge.receive(0, frame(mac(9), mac(3)), 3.0);
  EXPECT_EQ(bridge.mac_table_size(), 2u);
  EXPECT_EQ(bridge.port_of(mac(1)), EthernetSwitch::npos);
  EXPECT_NE(bridge.port_of(mac(3)), EthernetSwitch::npos);
}

}  // namespace
}  // namespace tcpdemux::sim
