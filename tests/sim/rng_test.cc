#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "analytic/exp_math.h"

namespace tcpdemux::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng;
  std::array<int, 10> counts{};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.15);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(Rng, TruncatedExponentialNeverExceedsCap) {
  Rng rng;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.truncated_exponential(10.0, 100.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, TruncatedExponentialMeanMatchesAnalytic) {
  // TPC/A think time: mean 10 s truncated at 100 s. The realized mean must
  // match analytic::truncated_exp_mean, not the raw 10 s.
  Rng rng;
  double sum = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) sum += rng.truncated_exponential(10.0, 100.0);
  EXPECT_NEAR(sum / kN, analytic::truncated_exp_mean(10.0, 100.0), 0.1);
}

TEST(Rng, TruncatedTightCapStillSane) {
  Rng rng;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.truncated_exponential(1.0, 1.0);
  EXPECT_NEAR(sum / kN, analytic::truncated_exp_mean(1.0, 1.0), 0.01);
}

TEST(Rng, ExponentialMedianMatchesTheory) {
  Rng rng;
  std::vector<double> v;
  v.reserve(100001);
  for (int i = 0; i < 100001; ++i) v.push_back(rng.exponential(1.0));
  std::nth_element(v.begin(), v.begin() + 50000, v.end());
  EXPECT_NEAR(v[50000], std::log(2.0), 0.02);
}

}  // namespace
}  // namespace tcpdemux::sim
