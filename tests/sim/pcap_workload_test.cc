// The pcap importer reconstructs an event trace from wire packets; the
// cleanest check is a round trip against the packet synthesizer: a trace
// expanded to packets, written as a capture, and re-imported must produce
// the same event stream the original trace contained.
#include "sim/workloads/pcap_workload.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "core/demux_registry.h"
#include "net/pcap.h"
#include "sim/replay.h"
#include "sim/trace.h"
#include "sim/trace_packets.h"
#include "sim/workloads/workload_spec.h"

namespace tcpdemux::sim::workloads {
namespace {

std::array<std::uint64_t, 5> count_kinds(const Trace& trace) {
  std::array<std::uint64_t, 5> counts{};
  for (const TraceEvent& e : trace.events) {
    ++counts[static_cast<std::size_t>(e.kind)];
  }
  return counts;
}

std::stringstream capture_of(const Workload& w) {
  std::stringstream buffer;
  net::PcapWriter writer(buffer);
  for (const auto& p : synthesize_packets(w.trace, w.keys)) {
    writer.write(p.time, p.wire);
  }
  return buffer;
}

TEST(PcapWorkload, RoundTripPreservesTheEventStream) {
  // Trains keep every connection talking, so the imported capture must
  // rebuild all of them (a tpca user can sit out a short window).
  const Workload original = make_workload("trains:conns=4:len=16:duration=5");
  auto buffer = capture_of(original);

  PcapImportStats stats;
  const Workload imported = make_pcap_workload(buffer, {}, &stats);

  EXPECT_TRUE(stats.clean_eof);
  EXPECT_EQ(stats.unparseable, 0u);
  EXPECT_EQ(stats.other_direction, 0u);
  EXPECT_EQ(stats.server_port, 1521) << "busiest-port vote must find OLTP";
  EXPECT_EQ(imported.trace.connections, original.trace.connections);

  const auto want = count_kinds(original.trace);
  const auto got = count_kinds(imported.trace);
  EXPECT_EQ(got[0], want[0]) << "data arrivals";
  EXPECT_EQ(got[1], want[1]) << "pure acks";
  EXPECT_EQ(got[2], want[2]) << "server transmits";
}

TEST(PcapWorkload, ImportedWorkloadReplaysClean) {
  const Workload original = make_workload("tpca:users=20:duration=20");
  auto buffer = capture_of(original);
  const Workload imported = make_pcap_workload(buffer, {});
  const auto demuxer =
      core::make_demuxer(*core::parse_demux_spec("sequent:19:crc32"));
  const auto result = sim::replay_trace(imported, *demuxer);
  EXPECT_EQ(result.misses, 0u);
  EXPECT_GT(result.lookups, 0u);
}

TEST(PcapWorkload, ExplicitServerPortMatchesVote) {
  const Workload original = make_workload("tpca:users=10:duration=20");
  auto buffer1 = capture_of(original);
  auto buffer2 = capture_of(original);
  const Workload by_vote = make_pcap_workload(buffer1, {});
  PcapWorkloadParams explicit_port;
  explicit_port.server_port = 1521;
  const Workload by_param = make_pcap_workload(buffer2, explicit_port);
  EXPECT_EQ(by_vote.trace.events, by_param.trace.events);
  EXPECT_EQ(by_vote.keys, by_param.keys);
}

TEST(PcapWorkload, SalvagesTruncatedCaptures) {
  const Workload original = make_workload("tpca:users=10:duration=30");
  std::string bytes = capture_of(original).str();
  bytes.resize(bytes.size() - 20);  // tear the last record
  std::stringstream truncated(bytes);
  PcapImportStats stats;
  const Workload imported = make_pcap_workload(truncated, {}, &stats);
  EXPECT_FALSE(stats.clean_eof);
  EXPECT_GT(stats.records, 0u);
  EXPECT_GT(imported.trace.events.size(), 0u);
}

TEST(PcapWorkload, RejectsNonCaptureStreams) {
  std::stringstream garbage("definitely not a pcap file .............");
  EXPECT_THROW((void)make_pcap_workload(garbage, {}), std::invalid_argument);

  // A valid pcap header with zero records has no TCP traffic to import.
  std::stringstream empty;
  { net::PcapWriter writer(empty); }
  EXPECT_THROW((void)make_pcap_workload(empty, {}), std::invalid_argument);
}

TEST(PcapWorkload, MissingFileThrows) {
  PcapWorkloadParams params;
  params.path = "/nonexistent/definitely/missing.pcap";
  EXPECT_THROW((void)make_pcap_workload(params), std::invalid_argument);
}

}  // namespace
}  // namespace tcpdemux::sim::workloads
