// NicDispatch end-to-end: real workloads (connection churn with ephemeral
// port reuse, NAT'd populations) replayed through a simulated RSS NIC in
// front of a sharded demuxer. The properties under test are the handoff
// protocol's: a deliberately wrong NIC indirection entry mis-steers every
// frame of the affected flows, yet no connection is lost or duplicated and
// every close still reaches CLOSED — and the mis-steer telemetry matches
// ground truth computed independently from the trace and the two steering
// tables.
#include "sim/nic_dispatch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/demux_registry.h"
#include "core/sharded_demuxer.h"
#include "core/validate.h"
#include "net/hashers.h"
#include "sim/trace.h"
#include "sim/workloads/churn_workload.h"
#include "sim/workloads/natpop_workload.h"

namespace tcpdemux::sim {
namespace {

core::ShardedDemuxer make_sharded(std::uint32_t shards) {
  return core::ShardedDemuxer(core::ShardedDemuxer::Options{
      shards, *core::parse_demux_spec("flat16:1024")});
}

// Replays the NIC's frame accounting from the trace alone: which frames
// each event produces, and which of them the NIC's table steers away from
// the shard the host stack places (and keeps) the PCB on. Deliberately a
// second implementation — the test fails if NicDispatch and this ever
// disagree on what happened.
struct GroundTruth {
  std::uint64_t frames = 0;
  std::uint64_t missteers = 0;
};

GroundTruth compute_ground_truth(const workloads::Workload& w,
                                 const core::ShardedDemuxer& demuxer,
                                 const NicDispatch& nic) {
  std::vector<bool> mis(w.trace.connections, false);
  for (std::uint32_t c = 0; c < w.trace.connections; ++c) {
    mis[c] = nic.nic_queue_for(w.keys[c]) != demuxer.home_shard(w.keys[c]);
  }
  std::vector<bool> seen(w.trace.connections, false);
  std::vector<bool> alive(w.trace.connections, false);
  for (const TraceEvent& e : w.trace.events) {
    if (!seen[e.conn]) {
      seen[e.conn] = true;
      // Pre-established connections come up without NIC frames.
      alive[e.conn] = e.kind != TraceEventKind::kOpen;
    }
  }
  GroundTruth gt;
  const auto count = [&gt, &mis](std::uint32_t conn, std::uint64_t n) {
    gt.frames += n;
    if (mis[conn]) gt.missteers += n;
  };
  for (const TraceEvent& e : w.trace.events) {
    switch (e.kind) {
      case TraceEventKind::kOpen:
        count(e.conn, 2);  // SYN + handshake-completing ACK
        alive[e.conn] = true;
        break;
      case TraceEventKind::kArrivalData:
      case TraceEventKind::kArrivalAck:
        count(e.conn, 1);
        break;
      case TraceEventKind::kTransmit:
        break;  // host-side send, no inbound frame
      case TraceEventKind::kClose:
        if (alive[e.conn]) {
          count(e.conn, 2);  // client FIN + final ACK of our FIN
          alive[e.conn] = false;
        }
        break;
    }
  }
  return gt;
}

void expect_shard_stats_consistent(const NicDispatch::Result& r) {
  std::uint64_t frames = 0;
  std::uint64_t handoffs_in = 0;
  for (const NicDispatch::ShardStats& s : r.shard) {
    frames += s.frames;
    handoffs_in += s.handoffs_in;
    EXPECT_LE(s.max_inbox_depth, r.max_handoff_depth);
  }
  EXPECT_EQ(frames, r.frames);
  // Every enqueued handoff is eventually drained (run() force-drains at
  // the end), so per-shard inbound handoffs account for all of them.
  EXPECT_EQ(handoffs_in, r.handoffs);
}

TEST(NicDispatch, ChurnWithSyncedTablesHasNoMissteers) {
  core::ShardedDemuxer demuxer = make_sharded(4);
  NicDispatch nic(demuxer);
  workloads::ChurnWorkloadParams params;
  params.users = 400;
  params.duration = 20.0;
  const auto churn = generate_churn_workload(params);
  const GroundTruth gt = compute_ground_truth(churn.workload, demuxer, nic);
  const NicDispatch::Result r = nic.run(churn.workload);

  EXPECT_EQ(r.frames, gt.frames);
  EXPECT_EQ(r.missteers, 0u);
  EXPECT_EQ(gt.missteers, 0u);
  EXPECT_EQ(r.handoffs, 0u);
  EXPECT_EQ(r.handoff_drops, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicate_inserts, 0u);
  EXPECT_EQ(r.dirty_closes, 0u);
  EXPECT_GT(r.opens, 0u);
  EXPECT_GT(r.closes, 0u);
  EXPECT_GT(r.server_emits, 0u);
  EXPECT_GE(r.peak_occ_skew, 1.0);
  expect_shard_stats_consistent(r);
  EXPECT_TRUE(core::validate_demuxer(demuxer).ok());
}

TEST(NicDispatch, ChurnWithPlantedWrongEntriesMatchesGroundTruth) {
  core::ShardedDemuxer demuxer = make_sharded(4);
  NicDispatch nic(demuxer);
  // A buggy driver rewrote a quarter of the NIC's indirection table; the
  // host tables never see it. Every flow masking into those entries now
  // arrives on the wrong core, handshakes included.
  const auto& host = demuxer.indirection();
  for (std::uint32_t i = 0; i < host.entries() / 4; ++i) {
    nic.set_nic_entry(i, (host.entry(i) + 1) % demuxer.shard_count());
  }
  workloads::ChurnWorkloadParams params;
  params.users = 400;
  params.duration = 20.0;
  const auto churn = generate_churn_workload(params);
  const GroundTruth gt = compute_ground_truth(churn.workload, demuxer, nic);
  ASSERT_GT(gt.missteers, 0u);
  const NicDispatch::Result r = nic.run(churn.workload);

  // The telemetry must equal the independently computed truth exactly.
  EXPECT_EQ(r.frames, gt.frames);
  EXPECT_EQ(r.missteers, gt.missteers);
  EXPECT_GT(r.missteer_rate(), 0.0);
  EXPECT_LT(r.missteer_rate(), 1.0);
  EXPECT_GT(r.handoffs, 0u);
  EXPECT_GT(r.max_handoff_depth, 0u);

  // And mis-steering must cost forwarding only — never correctness.
  EXPECT_EQ(r.handoff_drops, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicate_inserts, 0u);
  EXPECT_EQ(r.dirty_closes, 0u);
  expect_shard_stats_consistent(r);
  // Host steering never drifted, so the strict per-shard home-placement
  // invariant still holds structurally.
  EXPECT_FALSE(demuxer.misplaced_possible());
  EXPECT_TRUE(core::validate_demuxer(demuxer).ok());
}

TEST(NicDispatch, NatPopulationWithPlantedWrongEntriesMatchesGroundTruth) {
  // NAT'd population: thousands of users behind a few gateway addresses,
  // all steering entropy in the port bits, with (gateway, port) bindings
  // legitimately recycled across users — tuple reuse under mis-steering.
  core::ShardedDemuxer demuxer = make_sharded(8);
  NicDispatch nic(demuxer);
  const auto& host = demuxer.indirection();
  for (std::uint32_t i = 0; i < host.entries(); i += 8) {
    nic.set_nic_entry(i, (host.entry(i) + 3) % demuxer.shard_count());
  }
  workloads::NatPopParams params;
  params.clients = 1500;
  params.gateways = 8;
  params.duration = 15.0;
  const auto nat = generate_natpop_workload(params);
  const GroundTruth gt = compute_ground_truth(nat.workload, demuxer, nic);
  ASSERT_GT(gt.missteers, 0u);
  const NicDispatch::Result r = nic.run(nat.workload);

  EXPECT_EQ(r.frames, gt.frames);
  EXPECT_EQ(r.missteers, gt.missteers);
  EXPECT_EQ(r.handoff_drops, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicate_inserts, 0u);
  EXPECT_EQ(r.dirty_closes, 0u);
  expect_shard_stats_consistent(r);
  EXPECT_TRUE(core::validate_demuxer(demuxer).ok());
}

TEST(NicDispatch, BoundedInboxDropsFramesUnderPressureWithoutLosingState) {
  // Shrink the handoff inbox until it overflows: frames are dropped and
  // counted (the backpressure a bounded queue exists to surface), the
  // depth bound holds, and the mis-steer count — taken before the
  // capacity check — still matches ground truth. Dropped FINs/ACKs may
  // leave closes dirty; they must never corrupt the table or lose a
  // *resident* PCB.
  core::ShardedDemuxer demuxer = make_sharded(4);
  NicDispatch::Options options;
  options.handoff_capacity = 2;
  options.drain_interval = 512;  // let inboxes actually fill
  NicDispatch nic(demuxer, options);
  const auto& host = demuxer.indirection();
  for (std::uint32_t i = 0; i < host.entries() / 2; ++i) {
    nic.set_nic_entry(i, (host.entry(i) + 1) % demuxer.shard_count());
  }
  workloads::ChurnWorkloadParams params;
  params.users = 400;
  params.duration = 20.0;
  const auto churn = generate_churn_workload(params);
  const GroundTruth gt = compute_ground_truth(churn.workload, demuxer, nic);
  const NicDispatch::Result r = nic.run(churn.workload);

  EXPECT_EQ(r.frames, gt.frames);
  EXPECT_EQ(r.missteers, gt.missteers);
  EXPECT_GT(r.handoff_drops, 0u);
  EXPECT_LE(r.max_handoff_depth, options.handoff_capacity);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicate_inserts, 0u);
  EXPECT_TRUE(core::validate_demuxer(demuxer).ok());
}

TEST(NicDispatch, SyncWithHostRestoresCleanSteering) {
  core::ShardedDemuxer demuxer = make_sharded(4);
  NicDispatch nic(demuxer);
  const auto& host = demuxer.indirection();
  for (std::uint32_t i = 0; i < host.entries(); ++i) {
    nic.set_nic_entry(i, (host.entry(i) + 1) % demuxer.shard_count());
  }
  nic.sync_with_host();  // ethtool -X back to the host's table
  workloads::ChurnWorkloadParams params;
  params.users = 100;
  params.duration = 5.0;
  const auto churn = generate_churn_workload(params);
  const NicDispatch::Result r = nic.run(churn.workload);
  EXPECT_EQ(r.missteers, 0u);
  EXPECT_EQ(r.lost, 0u);
}

}  // namespace
}  // namespace tcpdemux::sim
