#include "sim/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcpdemux::sim {
namespace {

std::vector<std::uint8_t> packet(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0xaa);
}

TEST(Link, DeliversAfterPropagationDelay) {
  EventQueue q;
  std::vector<double> arrivals;
  Link::Options options;
  options.delay = 0.01;
  Link link(q, options, [&](std::vector<std::uint8_t>) {
    arrivals.push_back(q.now());
  });
  link.send(packet(100));
  q.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.01);
}

TEST(Link, PreservesPayload) {
  EventQueue q;
  std::vector<std::uint8_t> received;
  Link link(q, Link::Options{}, [&](std::vector<std::uint8_t> wire) {
    received = std::move(wire);
  });
  std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  link.send(data);
  q.run();
  EXPECT_EQ(received, data);
}

TEST(Link, LossRateConverges) {
  EventQueue q;
  std::size_t delivered = 0;
  Link::Options options;
  options.loss_probability = 0.3;
  Link link(q, options, [&](std::vector<std::uint8_t>) { ++delivered; });
  constexpr int kPackets = 20000;
  for (int i = 0; i < kPackets; ++i) link.send(packet(10));
  q.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kPackets, 0.7, 0.02);
  EXPECT_NEAR(link.loss_rate(), 0.3, 0.02);
  EXPECT_EQ(link.stats().offered, static_cast<std::uint64_t>(kPackets));
}

TEST(Link, ZeroLossDeliversEverything) {
  EventQueue q;
  std::size_t delivered = 0;
  Link link(q, Link::Options{}, [&](std::vector<std::uint8_t>) {
    ++delivered;
  });
  for (int i = 0; i < 100; ++i) link.send(packet(10));
  q.run();
  EXPECT_EQ(delivered, 100u);
  EXPECT_EQ(link.stats().dropped, 0u);
}

TEST(Link, BandwidthSerializesBackToBackPackets) {
  EventQueue q;
  std::vector<double> arrivals;
  Link::Options options;
  options.delay = 0.0;
  options.bandwidth_bps = 8000.0;  // 1000 bytes/s
  Link link(q, options, [&](std::vector<std::uint8_t>) {
    arrivals.push_back(q.now());
  });
  link.send(packet(100));  // 0.1 s serialization
  link.send(packet(100));  // queues behind the first
  q.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.1, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.2, 1e-9);
}

TEST(Link, JitterBoundsExtraDelay) {
  EventQueue q;
  std::vector<double> arrivals;
  Link::Options options;
  options.delay = 0.01;
  options.jitter = 0.005;
  Link link(q, options, [&](std::vector<std::uint8_t>) {
    arrivals.push_back(q.now());
  });
  for (int i = 0; i < 500; ++i) link.send(packet(10));
  q.run();
  for (const double t : arrivals) {
    EXPECT_GE(t, 0.01);
    EXPECT_LT(t, 0.0151);
  }
}

TEST(Link, ByteCounterTracksOfferedBytes) {
  EventQueue q;
  Link link(q, Link::Options{}, [](std::vector<std::uint8_t>) {});
  link.send(packet(40));
  link.send(packet(60));
  EXPECT_EQ(link.stats().bytes, 100u);
}

}  // namespace
}  // namespace tcpdemux::sim
