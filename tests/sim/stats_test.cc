#include "sim/stats.h"

#include <gtest/gtest.h>

namespace tcpdemux::sim {
namespace {

TEST(SampleStats, EmptyIsZero) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_EQ(s.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStats, MeanAndMax) {
  SampleStats s;
  for (const std::uint32_t v : {1u, 2u, 3u, 4u, 10u}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.max(), 10u);
}

TEST(SampleStats, PercentilesNearestRank) {
  SampleStats s;
  for (std::uint32_t v = 1; v <= 100; ++v) s.add(v);
  EXPECT_EQ(s.percentile(0.5), 50u);
  EXPECT_EQ(s.percentile(0.9), 90u);
  EXPECT_EQ(s.percentile(0.99), 99u);
  EXPECT_EQ(s.percentile(1.0), 100u);
  EXPECT_EQ(s.percentile(0.0), 1u);
}

TEST(SampleStats, PercentileAfterLaterAdds) {
  SampleStats s;
  s.add(10);
  EXPECT_EQ(s.percentile(0.5), 10u);
  s.add(1);  // must invalidate the lazily sorted state
  EXPECT_EQ(s.percentile(0.0), 1u);
  EXPECT_EQ(s.percentile(1.0), 10u);
}

TEST(SampleStats, StddevOfConstantIsZero) {
  SampleStats s;
  for (int i = 0; i < 10; ++i) s.add(7);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStats, StddevKnownValue) {
  SampleStats s;
  s.add(2);
  s.add(4);
  s.add(4);
  s.add(4);
  s.add(5);
  s.add(5);
  s.add(7);
  s.add(9);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook data set
}

TEST(SampleStats, Log2BucketsClassifyByBitWidth) {
  SampleStats s;
  for (const std::uint32_t v : {0u, 1u, 1u, 2u, 3u, 4u, 7u, 8u}) s.add(v);
  const auto buckets = s.log2_buckets();
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0], 1u);  // {0}
  EXPECT_EQ(buckets[1], 2u);  // {1, 1}
  EXPECT_EQ(buckets[2], 2u);  // {2, 3}
  EXPECT_EQ(buckets[3], 2u);  // {4, 7}
  EXPECT_EQ(buckets[4], 1u);  // {8}
}

TEST(SampleStats, Log2BucketsEmptyStats) {
  SampleStats s;
  EXPECT_TRUE(s.log2_buckets().empty());
}

TEST(SampleStats, Ci95ZeroForConstantSamples) {
  SampleStats s;
  for (int i = 0; i < 1000; ++i) s.add(7);
  EXPECT_DOUBLE_EQ(s.mean_ci95(), 0.0);
}

TEST(SampleStats, Ci95CoversAlternatingNoise) {
  SampleStats s;
  for (int i = 0; i < 10000; ++i) s.add(i % 2 == 0 ? 10 : 20);
  const double ci = s.mean_ci95();
  EXPECT_GE(ci, 0.0);
  EXPECT_LT(ci, 1.0);  // batch means of an alternating series are ~equal
}

TEST(SampleStats, Ci95RequiresEnoughSamples) {
  SampleStats s;
  for (int i = 0; i < 10; ++i) s.add(static_cast<std::uint32_t>(i));
  EXPECT_DOUBLE_EQ(s.mean_ci95(20), 0.0);
}

// Regression: percentile() used to sort samples_ in place, destroying the
// arrival order mean_ci95's batch means need — any mean_ci95() call made
// after a percentile() silently returned 0. The summaries must commute.
TEST(SampleStats, Ci95UnaffectedByPercentileOrder) {
  SampleStats s;
  for (int i = 0; i < 1000; ++i) s.add(static_cast<std::uint32_t>(i));
  const double before = s.mean_ci95();
  EXPECT_GT(before, 0.0);  // a ramp: batch means clearly differ
  EXPECT_EQ(s.percentile(0.5), 499u);  // nearest-rank: ceil(0.5*1000)=500th
  EXPECT_DOUBLE_EQ(s.mean_ci95(), before);
  // And percentiles still see the sorted view after a CI query.
  EXPECT_EQ(s.percentile(1.0), 999u);
}

TEST(SampleStats, Ci95ShrinksWithSampleCount) {
  SampleStats small;
  SampleStats large;
  std::uint32_t state = 123;
  const auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state % 100;
  };
  for (int i = 0; i < 1000; ++i) small.add(next());
  state = 123;
  for (int i = 0; i < 100000; ++i) large.add(next());
  EXPECT_LT(large.mean_ci95(), small.mean_ci95());
}

TEST(SampleStats, PercentileClampsOutOfRangeQ) {
  SampleStats s;
  s.add(3);
  s.add(8);
  EXPECT_EQ(s.percentile(-0.5), 3u);
  EXPECT_EQ(s.percentile(1.5), 8u);
}

}  // namespace
}  // namespace tcpdemux::sim
