#include "sim/polling_workload.h"

#include <gtest/gtest.h>

namespace tcpdemux::sim {
namespace {

PollingWorkloadParams small_params() {
  PollingWorkloadParams p;
  p.terminals = 50;
  p.period = 10.0;
  p.duration = 60.0;
  return p;
}

TEST(PollingWorkload, TraceIsValid) {
  const Trace t = generate_polling_trace(small_params());
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.connections, 50u);
}

TEST(PollingWorkload, ArrivalsRotateRoundRobin) {
  const auto p = small_params();
  const Trace t = generate_polling_trace(p);
  // The data arrivals must cycle 0,1,2,...,N-1,0,1,...
  std::uint32_t expected = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind != TraceEventKind::kArrivalData) continue;
    EXPECT_EQ(e.conn, expected);
    expected = (expected + 1) % p.terminals;
  }
}

TEST(PollingWorkload, EachTerminalTransactsOncePerPeriod) {
  const auto p = small_params();
  const Trace t = generate_polling_trace(p);
  std::vector<std::size_t> count(p.terminals, 0);
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kArrivalData) ++count[e.conn];
  }
  const auto expected = static_cast<std::size_t>(p.duration / p.period);
  for (const std::size_t c : count) {
    EXPECT_NEAR(static_cast<double>(c), static_cast<double>(expected), 1.0);
  }
}

TEST(PollingWorkload, DeterministicNoSeed) {
  const auto a = generate_polling_trace(small_params());
  const auto b = generate_polling_trace(small_params());
  EXPECT_EQ(a.events, b.events);
}

TEST(PollingWorkload, AckFollowsQueryByResponseTime) {
  const auto p = small_params();
  const Trace t = generate_polling_trace(p);
  std::vector<double> last_query(p.terminals, -1.0);
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEventKind::kArrivalData) {
      last_query[e.conn] = e.time;
    } else if (e.kind == TraceEventKind::kArrivalAck) {
      ASSERT_GE(last_query[e.conn], 0.0);
      EXPECT_NEAR(e.time - last_query[e.conn], p.response_time, 1e-9);
    }
  }
}

TEST(PollingWorkload, RejectsInvalidConfig) {
  PollingWorkloadParams p;
  p.terminals = 0;
  EXPECT_THROW(generate_polling_trace(p), std::invalid_argument);
  p = PollingWorkloadParams{};
  p.response_time = 0.0;
  p.rtt = 0.01;
  EXPECT_THROW(generate_polling_trace(p), std::invalid_argument);
}

}  // namespace
}  // namespace tcpdemux::sim
