// Fixture: a minimal, fully clean tree. What matters is what is ABSENT:
// none of the rule exempt files (net/byte_order.h, sim/rng.h,
// core/thread_annotations.h, ...) exist here, so every exempt entry is
// stale and check_lint must refuse to run (exit 2) rather than silently
// carry dead exemptions.
#include "core/empty.h"

namespace tcpdemux::core {}  // namespace tcpdemux::core
