// Fixture support header; see empty.cc for what this tree tests.
#ifndef TCPDEMUX_CORE_EMPTY_H_
#define TCPDEMUX_CORE_EMPTY_H_

namespace tcpdemux::core {}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_EMPTY_H_
