// Fixture: lock-discipline in src/report scope — a bare std lock RAII
// type (positive; locks taken through it are invisible to the analysis)
// and a suppressed one. The lockable is a template parameter so only the
// RAII lines themselves carry banned tokens.
#include <mutex>

namespace tcpdemux::report {

template <typename M>
void with_raii(M& mutex) {
  const std::lock_guard<M> lock(mutex);  // positive
}

template <typename M>
void with_raii_suppressed(M& mutex) {
  const std::scoped_lock lock(mutex);  // NOLINT(lock-discipline)
}

}  // namespace tcpdemux::report
