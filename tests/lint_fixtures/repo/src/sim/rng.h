// Fixture copy of the rng-discipline exempt file: the one sanctioned
// std::mt19937 owner.
#ifndef TCPDEMUX_SIM_RNG_H_
#define TCPDEMUX_SIM_RNG_H_

#include <random>

namespace tcpdemux::sim {

class Rng {
 private:
  std::mt19937_64 engine_;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_RNG_H_
