// Fixture: prefetch-discipline — one positive, one suppressed.
namespace tcpdemux::core {

void warm(const void* address) {
  __builtin_prefetch(address);  // positive: raw intrinsic outside the shim
}

void warm_suppressed(const void* address) {
  __builtin_prefetch(address);  // NOLINT(prefetch-discipline)
}

}  // namespace tcpdemux::core
