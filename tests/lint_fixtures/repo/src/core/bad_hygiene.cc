// Fixture: include-hygiene — both patterns positive once, each
// suppressed once. The "../" case runs on RAW lines (the path is a string
// literal, blanked by the comment/string stripper — a hole the fixture
// suite exists to catch).
#include <bits/stl_algo.h>
#include <bits/stl_tree.h>  // NOLINT(include-hygiene)
#include "../net/byte_order.h"
// NOLINTNEXTLINE(include-hygiene)
#include "../net/checksum.h"

namespace tcpdemux::core {}  // namespace tcpdemux::core
