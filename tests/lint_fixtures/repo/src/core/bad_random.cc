// Fixture: no-random — one positive, one suppressed.
#include <cstdlib>

namespace tcpdemux::core {

int roll_unseeded() {
  return rand() % 6;  // positive: C rand() is banned
}

int roll_suppressed() {
  return rand() % 6;  // NOLINT(no-random)
}

}  // namespace tcpdemux::core
