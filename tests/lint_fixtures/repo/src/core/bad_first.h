// Fixture support header for the include-first cases.
#ifndef TCPDEMUX_CORE_BAD_FIRST_H_
#define TCPDEMUX_CORE_BAD_FIRST_H_

namespace tcpdemux::core {}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_BAD_FIRST_H_
