// NOLINT(include-guard) — fixture: same wrong guard, suppressed on line 1.
#ifndef LEGACY_GUARD_H
#define LEGACY_GUARD_H

namespace tcpdemux::core {}  // namespace tcpdemux::core

#endif  // LEGACY_GUARD_H
