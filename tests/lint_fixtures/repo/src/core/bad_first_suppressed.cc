// Fixture: include-first violation suppressed on the offending line.
#include <vector>  // NOLINT(include-first)

#include "core/bad_first_suppressed.h"

namespace tcpdemux::core {}  // namespace tcpdemux::core
