// Fixture: raw-owning-memory — one positive, one suppressed; a deleted
// special member must NOT count (declaration, not owning delete).
namespace tcpdemux::core {

struct Widget {
  Widget(const Widget&) = delete;  // not a finding: deleted member
  int value = 0;
};

int* allocate_raw() {
  return new int(7);  // positive: raw owning new in src/core
}

void free_sanctioned(int* p) {
  delete p;  // NOLINT(raw-owning-memory)
}

}  // namespace tcpdemux::core
