// Fixture support header for the suppressed include-first case.
#ifndef TCPDEMUX_CORE_BAD_FIRST_SUPPRESSED_H_
#define TCPDEMUX_CORE_BAD_FIRST_SUPPRESSED_H_

namespace tcpdemux::core {}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_BAD_FIRST_SUPPRESSED_H_
