// Fixture: migration-cursor coverage of atomics-discipline and
// lock-discipline. Positives: an atomic drain cursor, an atomic resident
// count, a condition_variable drain signal, and a once_flag start latch.
// A plain cursor, a suppressed atomic, and an atomic with an unrelated
// name must NOT count.
#ifndef TCPDEMUX_CORE_BAD_MIGRATION_H_
#define TCPDEMUX_CORE_BAD_MIGRATION_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace tcpdemux::core {

class BadMigrationState {
 private:
  std::atomic<std::size_t> cursor_{0};  // positive: single-writer by design
  std::atomic<std::uint64_t> residents_{0};  // positive: same
  std::atomic<std::uint32_t> grow_backoff_{0};  // NOLINT(atomics-discipline)
  std::size_t plain_cursor_ = 0;  // compliant: plain member
  std::atomic<int> epoch_gauge_{0};  // compliant: not migration state
  std::condition_variable drain_cv_;  // positive: ad-hoc coordination
  std::once_flag migration_started_;  // positive: hidden one-shot sync
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_BAD_MIGRATION_H_
