// Fixture: include-guard — the guard does not follow the canonical
// TCPDEMUX_<PATH>_H_ form (expected TCPDEMUX_CORE_BAD_GUARD_H_).
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace tcpdemux::core {}  // namespace tcpdemux::core

#endif  // WRONG_GUARD_H
