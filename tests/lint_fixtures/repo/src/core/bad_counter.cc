// Fixture: telemetry-registry — one positive, one suppressed; a
// static constexpr must NOT count (immutable, not a counter).
#include <atomic>
#include <cstdint>

namespace tcpdemux::core {

static constexpr int kChains = 19;  // not a finding: immutable

std::uint64_t count_lookup() {
  static std::uint64_t hits = 0;  // positive: ad-hoc mutable static counter
  return ++hits;
}

std::uint64_t count_suppressed() {
  static std::atomic<std::uint64_t> hits{0};  // NOLINT(telemetry-registry)
  return ++hits;
}

}  // namespace tcpdemux::core
