// Fixture copy of the simd-discipline exempt file: the audited group-probe
// shim deliberately contains banned intrinsic patterns to prove the
// exemption machinery holds.
#ifndef TCPDEMUX_CORE_SIMD_H_
#define TCPDEMUX_CORE_SIMD_H_

#include <emmintrin.h>

#include <cstdint>

namespace tcpdemux::core {

inline std::uint32_t group_match(const std::uint8_t* tags, std::uint8_t tag) {
  const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(group, probe)));
}

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_SIMD_H_
