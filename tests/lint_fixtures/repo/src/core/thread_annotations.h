// Fixture copy of the lock-discipline exempt file: the one sanctioned
// place bare std types appear, inside the annotated wrappers.
#ifndef TCPDEMUX_CORE_THREAD_ANNOTATIONS_H_
#define TCPDEMUX_CORE_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

namespace tcpdemux::core {

class Mutex {
 private:
  std::mutex mutex_;
};

class SharedMutex {
 private:
  std::shared_mutex mutex_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_THREAD_ANNOTATIONS_H_
