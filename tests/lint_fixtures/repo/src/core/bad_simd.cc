// Fixture: simd-discipline — positives for the intrinsic-header and
// intrinsic-call forms, plus one suppressed case.
#include <emmintrin.h>

#include <cstdint>

namespace tcpdemux::core {

std::uint32_t scatter_probe(const std::uint8_t* tags) {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(group));
}

std::uint32_t crc_probe(std::uint32_t crc, std::uint8_t byte) {
  return __crc32cb(crc, byte);
}

std::uint32_t suppressed_probe(std::uint32_t crc, std::uint8_t byte) {
  return _mm_crc32_u8(crc, byte);  // NOLINT(simd-discipline)
}

}  // namespace tcpdemux::core
