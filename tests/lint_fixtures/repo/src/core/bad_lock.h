// Fixture: lock-discipline — a bare std::mutex member (positive) and a
// suppressed std::shared_mutex.
#ifndef TCPDEMUX_CORE_BAD_LOCK_H_
#define TCPDEMUX_CORE_BAD_LOCK_H_

#include <mutex>
#include <shared_mutex>

namespace tcpdemux::core {

class ShardDirectory {
 private:
  std::mutex mutex_;  // positive: invisible to -Wthread-safety
  std::shared_mutex directory_mutex_;  // NOLINT(lock-discipline)
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_BAD_LOCK_H_
