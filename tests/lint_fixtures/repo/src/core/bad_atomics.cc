// Fixture: atomics-discipline — positives for default-order load and
// store, a suppressed case, and two compliant calls (one spanning lines,
// exercising the multi-line argument scanner) that must NOT count.
// std::exchange (the utility, not the atomic member) must NOT count.
#include <atomic>
#include <utility>

namespace tcpdemux::core {

std::atomic<int> gauge{0};

int load_default_order() {
  return gauge.load();  // positive: seq_cst by default
}

void store_default_order(int value) {
  gauge.store(value);  // positive: seq_cst by default
}

int load_suppressed() {
  return gauge.load();  // NOLINT(atomics-discipline)
}

int load_explicit() {
  return gauge.load(std::memory_order_acquire);  // compliant
}

bool cas_multiline(int expected) {
  return gauge.compare_exchange_strong(  // compliant, args span lines
      expected, expected + 1,
      std::memory_order_acq_rel,
      std::memory_order_acquire);
}

int not_an_atomic(int& slot) {
  return std::exchange(slot, 0);  // compliant: std::exchange, no member call
}

}  // namespace tcpdemux::core
