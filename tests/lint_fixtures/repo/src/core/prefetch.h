// Fixture copy of the prefetch-discipline exempt file: the audited shim
// over the raw intrinsic.
#ifndef TCPDEMUX_CORE_PREFETCH_H_
#define TCPDEMUX_CORE_PREFETCH_H_

namespace tcpdemux::core {

inline void prefetch_read(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, 0, 3);
#else
  (void)address;
#endif
}

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_PREFETCH_H_
