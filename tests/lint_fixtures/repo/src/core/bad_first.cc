// Fixture: include-first — the .cc's first include is not its own header,
// so the header is never proven self-contained.
#include <vector>

#include "core/bad_first.h"

namespace tcpdemux::core {}  // namespace tcpdemux::core
