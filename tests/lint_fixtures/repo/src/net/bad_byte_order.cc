// Fixture: byte-order — both patterns positive once, each suppressed once.
#include <cstdint>

namespace tcpdemux::net {

std::uint16_t swap_with_intrinsic(std::uint16_t v) {
  return htons(v);  // positive: htons family banned in src/
}

std::uint16_t swap_suppressed(std::uint16_t v) {
  return htons(v);  // NOLINT(byte-order)
}

std::uint32_t pointer_cast_load(const std::uint8_t* buffer) {
  // positive: pointer-cast load of wire data (misaligned access is UB)
  return *reinterpret_cast<const std::uint32_t*>(buffer);
}

std::uint32_t pointer_cast_suppressed(const std::uint8_t* buffer) {
  // NOLINTNEXTLINE(byte-order)
  return *reinterpret_cast<const std::uint32_t*>(buffer);
}

}  // namespace tcpdemux::net
