// Fixture: include-layering — src/net sits at the bottom of the module
// DAG and may only include src/net; reaching up into src/core (or any
// higher layer) inverts the architecture.
#include "core/pcb.h"

#include "sim/rng.h"  // NOLINT(include-layering)

namespace tcpdemux::net {}  // namespace tcpdemux::net
