// Fixture copy of the simd-discipline exempt file: the audited hardware
// CRC32C shim deliberately contains banned intrinsic patterns to prove
// the exemption machinery holds.
#ifndef TCPDEMUX_NET_CRC32C_H_
#define TCPDEMUX_NET_CRC32C_H_

#include <nmmintrin.h>

#include <cstdint>

namespace tcpdemux::net {

inline std::uint32_t crc_step(std::uint32_t crc, std::uint64_t word) {
  return static_cast<std::uint32_t>(_mm_crc32_u64(crc, word));
}

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_CRC32C_H_
