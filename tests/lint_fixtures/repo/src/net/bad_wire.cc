// Fixture: wire-parse — one positive, one suppressed.
#include <cstdint>

namespace tcpdemux::net {

std::uint16_t hand_rolled(const std::uint8_t* buffer) {
  // positive: shifting indexed bytes together outside byte_order.h
  return static_cast<std::uint16_t>((buffer[0] << 8) | buffer[1]);
}

std::uint16_t hand_rolled_suppressed(const std::uint8_t* buffer) {
  // NOLINTNEXTLINE(wire-parse)
  return static_cast<std::uint16_t>((buffer[0] << 8) | buffer[1]);
}

}  // namespace tcpdemux::net
