// Fixture copy of the wire-parse exempt file: the shift-assembly pattern
// below is the rule's *implementation* and must not be flagged here.
#ifndef TCPDEMUX_NET_BYTE_ORDER_H_
#define TCPDEMUX_NET_BYTE_ORDER_H_

#include <cstdint>

namespace tcpdemux::net {

inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_BYTE_ORDER_H_
