// Fixture copy of the wire-parse exempt file: the checksum accumulator
// folds bytes with shifts and must not be flagged here.
#include <cstdint>

namespace tcpdemux::net {

std::uint32_t accumulate(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0] << 8) | p[1];
}

}  // namespace tcpdemux::net
