// Fixture: rng-discipline in its extended scope (src/tcp) — one
// positive, one suppressed.
#include <random>

namespace tcpdemux::tcp {

std::uint32_t pick_port_raw(std::uint64_t seed) {
  std::mt19937 engine(static_cast<std::uint32_t>(seed));  // positive
  return engine() % 65535;
}

std::uint32_t pick_port_suppressed(std::uint64_t seed) {
  std::mt19937_64 engine(seed);  // NOLINT(rng-discipline)
  return engine() % 65535;
}

}  // namespace tcpdemux::tcp
