#include "analytic/exp_math.h"

#include <gtest/gtest.h>

namespace tcpdemux::analytic {
namespace {

TEST(ExpMath, PdfAndCdfBasics) {
  EXPECT_DOUBLE_EQ(exp_pdf(0.1, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(exp_pdf(0.1, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(exp_cdf(0.1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(exp_cdf(0.1, -1.0), 0.0);
  EXPECT_NEAR(exp_cdf(0.1, 10.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(ExpMath, SurvivalComplementsCdf) {
  for (const double t : {0.0, 0.5, 3.0, 42.0}) {
    EXPECT_NEAR(exp_cdf(0.1, t) + exp_sf(0.1, t), 1.0, 1e-12);
  }
}

TEST(ExpMath, PaperEquation2At200ms) {
  // §3.1 footnote 4: "96% probability that any given user will not offer a
  // transaction or deliver [an ack] during a given 200-millisecond
  // interval" — two Poisson streams at a = 0.1 => e^{-2*0.1*0.2} = 0.9608.
  EXPECT_NEAR(exp_sf(2.0 * 0.1, 0.2), 0.9608, 5e-5);
}

TEST(ExpMath, TruncatedTailMassIsPaperValue) {
  // §3: "only 0.004% of the values are neglected on average" for a cap of
  // 10x the mean: e^{-10} = 4.54e-5.
  EXPECT_NEAR(truncated_tail_mass(10.0, 100.0), 4.54e-5, 1e-6);
}

TEST(ExpMath, TruncatedMeanBelowUntruncated) {
  const double m = truncated_exp_mean(10.0, 100.0);
  EXPECT_LT(m, 10.0);
  EXPECT_GT(m, 9.99);  // the truncation effect is tiny, as the paper argues
}

TEST(ExpMath, TruncatedMeanApproachesUntruncatedAsCapGrows) {
  EXPECT_NEAR(truncated_exp_mean(10.0, 1000.0), 10.0, 1e-9);
}

TEST(ExpMath, TruncatedMeanTightCap) {
  // cap = mean: E[X | X <= m] = m - m e^{-1}/(1 - e^{-1}) ~ 0.4180 m.
  EXPECT_NEAR(truncated_exp_mean(1.0, 1.0),
              1.0 - std::exp(-1.0) / (1.0 - std::exp(-1.0)), 1e-12);
}

}  // namespace
}  // namespace tcpdemux::analytic
