#include "analytic/solvers.h"

#include <gtest/gtest.h>

#include "analytic/bsd_model.h"
#include "analytic/sequent_model.h"
#include "analytic/srcache_model.h"

namespace tcpdemux::analytic {
namespace {

constexpr double kRate = 0.1;
constexpr double kResponse = 0.2;

TEST(Solvers, ChainsForPaperOperatingPoint) {
  // 19 chains gave the paper 53 PCBs; asking for <= 53 must land near 19.
  const auto h = sequent_chains_for_target(2000, kRate, kResponse, 53.0);
  ASSERT_TRUE(h.has_value());
  EXPECT_GE(*h, 19u);
  EXPECT_LE(*h, 21u);
  // The found H actually meets the target and H-1 does not.
  EXPECT_LE(sequent_cost_exact(2000, *h, kRate, kResponse), 53.0);
  EXPECT_GT(sequent_cost_exact(2000, *h - 1, kRate, kResponse), 53.0);
}

TEST(Solvers, ChainsForTinyTarget) {
  const auto h = sequent_chains_for_target(2000, kRate, kResponse, 2.0);
  ASSERT_TRUE(h.has_value());
  EXPECT_LE(sequent_cost_exact(2000, *h, kRate, kResponse), 2.0);
  EXPECT_GT(*h, 100u);
}

TEST(Solvers, ChainsImpossibleTarget) {
  EXPECT_FALSE(
      sequent_chains_for_target(2000, kRate, kResponse, 0.5).has_value());
}

TEST(Solvers, ChainsTrivialTarget) {
  // A target above the single-chain cost is satisfied by H = 1.
  const auto h = sequent_chains_for_target(100, kRate, kResponse, 1000.0);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, 1u);
}

TEST(Solvers, UsersForTargetInvertsChainsForTarget) {
  const double users =
      sequent_users_for_target(19, kRate, kResponse, 53.0);
  // The paper's configuration carries about 2,000 users at 53 PCBs.
  EXPECT_NEAR(users, 2000.0, 25.0);
  EXPECT_LE(sequent_cost_exact(users, 19, kRate, kResponse), 53.0);
  EXPECT_GT(sequent_cost_exact(users + 2, 19, kRate, kResponse), 53.0);
}

TEST(Solvers, UsersForTargetZeroWhenImpossible) {
  EXPECT_EQ(sequent_users_for_target(19, kRate, kResponse, 0.5), 0.0);
}

TEST(Solvers, CrossoverSrVsBsd) {
  // Figure 14: "SR 10" tracks below BSD but converges; SR 1 beats BSD
  // everywhere in the plotted range. Verify SR(D=1ms) stays below BSD to
  // 10,000 users while SR with a huge D crosses early.
  const auto sr1 = [](double n) {
    return SrCacheModel{}
        .search_cost(TpcaParams{n, kRate, kResponse, 0.001})
        .overall;
  };
  const auto bsd = [](double n) { return bsd_cost(n); };
  EXPECT_FALSE(crossover_population(sr1, bsd, 10.0, 10000.0).has_value());
}

TEST(Solvers, CrossoverMtfVsSr) {
  // Fig 14 detail: MTF 0.2 starts above SR 1 ... both near 54 at N=200 and
  // MTF 0.2 passes below/above—verify the solver finds a sign change for
  // curves built to cross: a linear pair.
  const auto a = [](double n) { return 10.0 + 0.5 * n; };
  const auto b = [](double n) { return 100.0 + 0.1 * n; };
  const auto cross = crossover_population(a, b, 0.0, 1000.0, 0.01);
  ASSERT_TRUE(cross.has_value());
  EXPECT_NEAR(*cross, 225.0, 0.1);  // 10 + .5n = 100 + .1n  ->  n = 225
}

TEST(Solvers, CrossoverAtLowerBound) {
  const auto a = [](double) { return 5.0; };
  const auto b = [](double) { return 1.0; };
  const auto cross = crossover_population(a, b, 7.0, 100.0);
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(*cross, 7.0);
}

TEST(Solvers, MonotoneCostAssumptionHolds) {
  // Guard the solver's premise: Equation 22 increases in N and decreases
  // in H across the planning range.
  double prev = 0.0;
  for (double n = 100; n <= 10000; n += 100) {
    const double c = sequent_cost_exact(n, 19, kRate, kResponse);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace tcpdemux::analytic
