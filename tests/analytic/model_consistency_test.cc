// Cross-model invariants over parameter sweeps: relationships the paper's
// §3.5 comparison relies on must hold everywhere, not just at the
// published operating points.
#include <gtest/gtest.h>

#include "analytic/bsd_model.h"
#include "analytic/crowcroft_model.h"
#include "analytic/sequent_model.h"
#include "analytic/srcache_model.h"

namespace tcpdemux::analytic {
namespace {

constexpr double kRate = 0.1;

class PopulationSweep : public ::testing::TestWithParam<double> {};

TEST_P(PopulationSweep, SequentNeverWorseThanBsd) {
  const double n = GetParam();
  for (const double h : {1.0, 19.0, 101.0}) {
    EXPECT_LE(sequent_cost_exact(n, h, kRate, 0.2), bsd_cost(n) + 1e-9)
        << "N=" << n << " H=" << h;
  }
}

TEST_P(PopulationSweep, SrCacheBoundedByMissPenalty) {
  const double n = GetParam();
  for (const double d : {0.0001, 0.001, 0.01, 0.1}) {
    const auto c =
        SrCacheModel{}.search_cost(TpcaParams{n, kRate, 0.2, d});
    EXPECT_LE(c.overall, (n + 5.0) / 2.0 + 1e-9) << "N=" << n << " D=" << d;
    EXPECT_GE(c.overall, 1.0 - 1e-9);
  }
}

TEST_P(PopulationSweep, SrCacheBeatsBsdAtFastRtt) {
  // With D = 1 ms the send/receive cache never loses to plain BSD (it
  // converges from below; Figure 13's "SR 1" line).
  const double n = GetParam();
  const auto sr =
      SrCacheModel{}.search_cost(TpcaParams{n, kRate, 0.2, 0.001});
  EXPECT_LT(sr.overall, bsd_cost(n)) << "N=" << n;
}

TEST_P(PopulationSweep, MtfBeatsBsdAtPaperResponseTimes) {
  // Figure 13 shows every MTF line (R <= 1 s) below BSD.
  const double n = GetParam();
  if (n < 10) return;  // degenerate populations aside
  for (const double r : {0.2, 0.5, 1.0}) {
    const auto c = CrowcroftModel{}.search_cost(TpcaParams{n, kRate, r,
                                                           0.001});
    EXPECT_LT(c.overall, bsd_cost(n)) << "N=" << n << " R=" << r;
  }
}

TEST_P(PopulationSweep, CostsIncreaseWithPopulation) {
  const double n = GetParam();
  const double bigger = n * 1.5;
  EXPECT_LE(bsd_cost(n), bsd_cost(bigger));
  EXPECT_LE(sequent_cost_exact(n, 19, kRate, 0.2),
            sequent_cost_exact(bigger, 19, kRate, 0.2) + 1e-9);
  EXPECT_LE(
      SrCacheModel{}.search_cost(TpcaParams{n, kRate, 0.2, 0.001}).overall,
      SrCacheModel{}
              .search_cost(TpcaParams{bigger, kRate, 0.2, 0.001})
              .overall +
          1e-9);
}

TEST_P(PopulationSweep, SequentApproxUpperBoundsExact) {
  // Equation 19 ignores the quiet-interval cache wins, so it can only
  // overestimate Equation 22.
  const double n = GetParam();
  for (const double h : {1.0, 19.0, 101.0}) {
    EXPECT_GE(sequent_cost_approx(n, h) + 1e-9,
              sequent_cost_exact(n, h, kRate, 0.2))
        << "N=" << n << " H=" << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Populations, PopulationSweep,
                         ::testing::Values(10.0, 50.0, 200.0, 500.0,
                                           1000.0, 2000.0, 5000.0,
                                           10000.0),
                         [](const auto& info) {
                           return "N" + std::to_string(
                                            static_cast<int>(info.param));
                         });

}  // namespace
}  // namespace tcpdemux::analytic
