#include "analytic/integrate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tcpdemux::analytic {
namespace {

TEST(Integrate, Polynomial) {
  // Integral of x^2 over [0,3] = 9.
  EXPECT_NEAR(integrate([](double x) { return x * x; }, 0.0, 3.0), 9.0,
              1e-9);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(integrate([](double x) { return x; }, 2.0, 2.0), 0.0);
}

TEST(Integrate, ReversedIntervalIsNegative) {
  EXPECT_NEAR(integrate([](double) { return 1.0; }, 1.0, 0.0), -1.0, 1e-9);
}

TEST(Integrate, Sine) {
  // Integral of sin over [0, pi] = 2.
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0,
                        3.14159265358979323846),
              2.0, 1e-9);
}

TEST(Integrate, SharplyPeakedIntegrand) {
  // A narrow Gaussian-like bump; adaptive refinement must find it.
  const auto f = [](double x) {
    const double d = (x - 0.737) * 200.0;
    return std::exp(-d * d);
  };
  // True value: sqrt(pi)/200.
  EXPECT_NEAR(integrate(f, 0.0, 1.0), std::sqrt(3.14159265358979323846) / 200.0,
              1e-8);
}

TEST(IntegrateToInfinity, ExponentialDensityIntegratesToOne) {
  const double a = 0.1;
  EXPECT_NEAR(integrate_to_infinity(
                  [a](double t) { return a * std::exp(-a * t); }, 0.0),
              1.0, 1e-8);
}

TEST(IntegrateToInfinity, ExponentialMean) {
  const double a = 0.1;
  EXPECT_NEAR(integrate_to_infinity(
                  [a](double t) { return t * a * std::exp(-a * t); }, 0.0),
              10.0, 1e-6);
}

TEST(IntegrateToInfinity, TailFromOffset) {
  // Integral of e^{-t} from 2 to infinity = e^{-2}.
  EXPECT_NEAR(integrate_to_infinity([](double t) { return std::exp(-t); },
                                    2.0),
              std::exp(-2.0), 1e-9);
}

}  // namespace
}  // namespace tcpdemux::analytic
