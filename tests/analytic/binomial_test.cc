#include "analytic/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tcpdemux::analytic {
namespace {

TEST(Binomial, CoefficientSmallValues) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(7, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(7, 7)), 1.0, 1e-9);
}

TEST(Binomial, CoefficientOutOfRange) {
  EXPECT_EQ(log_binomial_coefficient(3, 4), -HUGE_VAL);
}

TEST(Binomial, PmfSumsToOne) {
  const double p = 0.3;
  double sum = 0.0;
  for (std::uint64_t k = 0; k <= 50; ++k) sum += binomial_pmf(50, k, p);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(Binomial, PmfDegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(Binomial, LiteralEquation3SumEqualsClosedForm) {
  // The paper's Equation 3 weighted sum is exactly the binomial mean.
  for (const std::uint64_t n : {1ull, 10ull, 100ull, 1999ull}) {
    for (const double p : {0.01, 0.1, 0.5, 0.9}) {
      EXPECT_NEAR(binomial_mean_by_sum(n, p), binomial_mean(n, p),
                  1e-8 * binomial_mean(n, p) + 1e-12)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(Binomial, StableAtPaperScale) {
  // N-1 = 1999 users, p = F(10s) at a = 0.1: the Figure 4 midpoint.
  const double p = 1.0 - std::exp(-1.0);
  const double by_sum = binomial_mean_by_sum(1999, p);
  EXPECT_NEAR(by_sum, 1999.0 * p, 1e-6);
  EXPECT_NEAR(by_sum, 1263.6, 0.1);  // the value Figure 4 shows at T=10
}

TEST(Binomial, StableAtVeryLargeN) {
  EXPECT_NEAR(binomial_mean_by_sum(100000, 0.123), 12300.0, 1e-3);
}

}  // namespace
}  // namespace tcpdemux::analytic
