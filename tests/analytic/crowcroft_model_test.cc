#include "analytic/crowcroft_model.h"

#include <gtest/gtest.h>

namespace tcpdemux::analytic {
namespace {

constexpr double kUsers = 2000.0;
constexpr double kRate = 0.1;

TEST(CrowcroftModel, PaperEntryCosts) {
  // §3.2: "The result for a 200 TPS benchmark is 1,019, 1,045, 1,086, and
  // 1,150 PCBs, corresponding to response times of 0.2, 0.5, 1.0, and 2.0
  // seconds." (Closed form gives 1018.9 / 1045.9 / 1085.9 / 1149.8; the
  // paper's rounding of the R=0.5 value is off by one.)
  EXPECT_NEAR(crowcroft_entry_cost(kUsers, kRate, 0.2), 1018.9, 0.1);
  EXPECT_NEAR(crowcroft_entry_cost(kUsers, kRate, 0.5), 1045.9, 0.1);
  EXPECT_NEAR(crowcroft_entry_cost(kUsers, kRate, 1.0), 1085.9, 0.1);
  EXPECT_NEAR(crowcroft_entry_cost(kUsers, kRate, 2.0), 1149.8, 0.1);
}

TEST(CrowcroftModel, PaperAckCosts) {
  // §3.2: "The length of the PCB search is 78, 190, 362, and 659 PCBs, for
  // response times of 0.2, 0.5, 1.0, and 2.0 seconds."
  EXPECT_NEAR(crowcroft_ack_cost(kUsers, kRate, 0.2), 78.0, 0.5);
  EXPECT_NEAR(crowcroft_ack_cost(kUsers, kRate, 0.5), 190.0, 0.5);
  EXPECT_NEAR(crowcroft_ack_cost(kUsers, kRate, 1.0), 362.0, 0.5);
  EXPECT_NEAR(crowcroft_ack_cost(kUsers, kRate, 2.0), 659.0, 0.5);
}

TEST(CrowcroftModel, PaperOverallCosts) {
  // §3.2: "average search lengths of 549, 618, 724, and 904 PCBs".
  const CrowcroftModel model;
  const double expected[] = {549.0, 618.0, 724.0, 904.0};
  const double response[] = {0.2, 0.5, 1.0, 2.0};
  for (int i = 0; i < 4; ++i) {
    const auto c = model.search_cost(
        TpcaParams{kUsers, kRate, response[i], 0.001});
    EXPECT_NEAR(c.overall, expected[i], 0.6) << "R=" << response[i];
  }
}

TEST(CrowcroftModel, NumericIntegrationMatchesClosedForm) {
  for (const double r : {0.05, 0.2, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(crowcroft_entry_cost_numeric(kUsers, kRate, r),
                crowcroft_entry_cost(kUsers, kRate, r), 1e-5)
        << "R=" << r;
  }
}

TEST(CrowcroftModel, EntryWorseThanBsdAckMuchBetter) {
  // §3.2: entry cost is "somewhat worse than the BSD algorithm's 1,001
  // PCBs"; the ack cost is far better.
  const double entry = crowcroft_entry_cost(kUsers, kRate, 0.2);
  const double ack = crowcroft_ack_cost(kUsers, kRate, 0.2);
  EXPECT_GT(entry, 1001.0);
  EXPECT_LT(ack, 100.0);
}

TEST(CrowcroftModel, ImprovesAsResponseTimeShrinks) {
  const CrowcroftModel model;
  double prev = 1e18;
  for (const double r : {2.0, 1.0, 0.5, 0.2, 0.1}) {
    const auto c = model.search_cost(TpcaParams{kUsers, kRate, r, 0.001});
    EXPECT_LT(c.overall, prev) << "R=" << r;
    prev = c.overall;
  }
}

TEST(CrowcroftModel, DeterministicWorstCaseScansAll) {
  EXPECT_DOUBLE_EQ(crowcroft_deterministic_cost(2000), 2000.0);
}

TEST(CrowcroftModel, DegenerateSingleUser) {
  EXPECT_DOUBLE_EQ(crowcroft_entry_cost(1, kRate, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(crowcroft_ack_cost(1, kRate, 0.2), 0.0);
}

TEST(CrowcroftModel, EntryCostBoundedByPopulation) {
  for (const double n : {10.0, 100.0, 1000.0, 10000.0}) {
    EXPECT_LE(crowcroft_entry_cost(n, kRate, 2.0), n - 1.0);
    EXPECT_GE(crowcroft_entry_cost(n, kRate, 0.01), 0.0);
  }
}

}  // namespace
}  // namespace tcpdemux::analytic
