#include "analytic/srcache_model.h"

#include <gtest/gtest.h>

namespace tcpdemux::analytic {
namespace {

constexpr double kUsers = 2000.0;
constexpr double kRate = 0.1;
constexpr double kResponse = 0.2;

TEST(SrCacheModel, PaperHeadlineNumbers) {
  // §3.3.4: "Solving this numerically for 2,000 users and round-trip
  // delays of 1, 10, and 100 milliseconds gives average search lengths of
  // 667, 993, and 1002 PCBs, respectively."
  const SrCacheModel model;
  EXPECT_NEAR(model.search_cost(TpcaParams{kUsers, kRate, kResponse, 0.001})
                  .overall,
              667.0, 0.7);
  EXPECT_NEAR(model.search_cost(TpcaParams{kUsers, kRate, kResponse, 0.010})
                  .overall,
              993.0, 0.5);
  EXPECT_NEAR(model.search_cost(TpcaParams{kUsers, kRate, kResponse, 0.100})
                  .overall,
              1002.0, 0.5);
}

TEST(SrCacheModel, InsensitiveToResponseTime) {
  // §3.3.4: "The algorithm is extremely insensitive to the value of R for
  // large values of N."
  const SrCacheModel model;
  const double at_02 =
      model.search_cost(TpcaParams{kUsers, kRate, 0.2, 0.001}).overall;
  const double at_20 =
      model.search_cost(TpcaParams{kUsers, kRate, 2.0, 0.001}).overall;
  EXPECT_NEAR(at_02, at_20, 0.05 * at_02);
}

TEST(SrCacheModel, ComponentsMatchNumericIntegration) {
  for (const double d : {0.001, 0.01, 0.1}) {
    EXPECT_NEAR(srcache_n1(kUsers, kRate, kResponse, d),
                srcache_n1_numeric(kUsers, kRate, kResponse, d), 1e-4)
        << "D=" << d;
    EXPECT_NEAR(srcache_n2(kUsers, kRate, kResponse, d),
                srcache_n2_numeric(kUsers, kRate, kResponse, d), 1e-4)
        << "D=" << d;
  }
}

TEST(SrCacheModel, AckCostApproachesMissPenaltyAsDGrows) {
  // §3.3.3: as D and N increase the expression approaches (N+5)/2.
  const double na = srcache_na(kUsers, kRate, 1.0);
  EXPECT_NEAR(na, (kUsers + 5.0) / 2.0, 0.01);
}

TEST(SrCacheModel, AckCostApproachesOneAsDShrinks) {
  // §3.3.3: "As D decreases toward zero ... the expression approaches just
  // one (the number of accesses required to check the send side)."
  EXPECT_NEAR(srcache_na(kUsers, kRate, 0.0), 1.0, 1e-9);
}

TEST(SrCacheModel, SingleUserAlwaysHits) {
  // With N = 1 every component collapses to one examined PCB.
  EXPECT_NEAR(srcache_n1(1, kRate, kResponse, 0.001) +
                  srcache_n2(1, kRate, kResponse, 0.001),
              1.0, 1e-9);
  EXPECT_NEAR(srcache_na(1, kRate, 0.001), 1.0, 1e-9);
}

TEST(SrCacheModel, TransactionCostApproachesBsdMissForLargeN) {
  // §3.3.2: "as the stress on the cache increases, the performance
  // converges to that of an uncached linked list plus the overhead imposed
  // by the cache" — (N+5)/2.
  const double txn = srcache_n1(kUsers, kRate, kResponse, 0.1) +
                     srcache_n2(kUsers, kRate, kResponse, 0.1);
  EXPECT_NEAR(txn, (kUsers + 5.0) / 2.0, 0.5);
}

TEST(SrCacheModel, BetterThanBsdForSmallPopulations) {
  // Figure 14's message: for small N the send/receive cache beats BSD.
  const SrCacheModel model;
  const double n = 50.0;
  const double sr =
      model.search_cost(TpcaParams{n, kRate, kResponse, 0.001}).overall;
  const double bsd = 1.0 + (n * n - 1.0) / (2.0 * n);
  EXPECT_LT(sr, bsd);
}

TEST(SrCacheModel, ComponentsAreNonNegativeAndOrdered) {
  for (const double d : {0.0001, 0.001, 0.01, 0.1, 1.0}) {
    const double n1 = srcache_n1(kUsers, kRate, kResponse, d);
    const double n2 = srcache_n2(kUsers, kRate, kResponse, d);
    const double na = srcache_na(kUsers, kRate, d);
    EXPECT_GE(n1, 0.0);
    EXPECT_GE(n2, 0.0);
    EXPECT_GE(na, 1.0 - 1e-12);
    EXPECT_LE(n1 + n2, (kUsers + 5.0) / 2.0 + 1e-9);
    EXPECT_LE(na, (kUsers + 5.0) / 2.0 + 1e-9);
  }
}

}  // namespace
}  // namespace tcpdemux::analytic
