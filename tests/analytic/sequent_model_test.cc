#include "analytic/sequent_model.h"

#include <gtest/gtest.h>

#include "analytic/bsd_model.h"

namespace tcpdemux::analytic {
namespace {

constexpr double kUsers = 2000.0;
constexpr double kRate = 0.1;
constexpr double kResponse = 0.2;

TEST(SequentModel, PaperExactCost) {
  // §3.4: "This equation yields an average cost of a linear scan of 53.0
  // PCBs for a 200 TPC/A TPS benchmark with 19 hash chains and a
  // 200-millisecond response time."
  EXPECT_NEAR(sequent_cost_exact(kUsers, 19, kRate, kResponse), 53.0, 0.05);
}

TEST(SequentModel, PaperApproximateCost) {
  // §3.4: "In contrast, Equation 19 predicts 53.6 for a little more than
  // 1% error."
  EXPECT_NEAR(sequent_cost_approx(kUsers, 19), 53.6, 0.05);
}

TEST(SequentModel, ApproximationErrorAboutOnePercent) {
  const double exact = sequent_cost_exact(kUsers, 19, kRate, kResponse);
  const double approx = sequent_cost_approx(kUsers, 19);
  const double err = (approx - exact) / exact;
  EXPECT_GT(err, 0.01);
  EXPECT_LT(err, 0.015);
}

TEST(SequentModel, ApproximationErrorExceedsTenPercentAt51Chains) {
  // §3.4: "The error gets larger ... exceeding 10% if 51 hash chains are
  // substituted into the previous example."
  const double exact = sequent_cost_exact(kUsers, 51, kRate, kResponse);
  const double approx = sequent_cost_approx(kUsers, 51);
  EXPECT_GT((approx - exact) / exact, 0.10);
}

TEST(SequentModel, PaperQuietProbabilities) {
  // §3.4: "This probability is about 1.5% for a 2000-user benchmark with a
  // 200-millisecond response time and 19 hash chains" and "if the number
  // of hash chains is increased to 51, the probability increases to almost
  // 21%" (Equation 20 gives 21.7%; the text's 21% reads as e^{-2aRN/H},
  // i.e. without Equation 20's "-1").
  EXPECT_NEAR(sequent_quiet_probability(kUsers, 19, kRate, kResponse),
              0.0154, 5e-4);
  EXPECT_NEAR(sequent_quiet_probability(kUsers, 51, kRate, kResponse),
              0.217, 5e-3);
}

TEST(SequentModel, HundredChainsUnderNine) {
  // §3.5: "if the number of hash chains ... is increased from 19 to 100,
  // the average number of PCBs searched drops from 53 to less than 9."
  const double c = sequent_cost_exact(kUsers, 100, kRate, kResponse);
  EXPECT_LT(c, 9.0);
  EXPECT_GT(c, 8.0);
}

TEST(SequentModel, OrderOfMagnitudeBetterThanBsd) {
  // The paper's headline claim.
  const double sequent = sequent_cost_exact(kUsers, 19, kRate, kResponse);
  const double bsd = bsd_cost(kUsers);
  EXPECT_GT(bsd / sequent, 10.0);
}

TEST(SequentModel, ApproachesNOver2H) {
  EXPECT_NEAR(sequent_cost_approx(100000, 19) / (100000.0 / (2 * 19.0)), 1.0,
              0.01);
}

TEST(SequentModel, SingleChainEqualsBsd) {
  EXPECT_DOUBLE_EQ(sequent_cost_approx(kUsers, 1), bsd_cost(kUsers));
}

TEST(SequentModel, CostNeverBelowOne) {
  // When chains outnumber users, a lookup still examines the target PCB.
  EXPECT_DOUBLE_EQ(sequent_cost_approx(10, 100), 1.0);
  EXPECT_DOUBLE_EQ(sequent_cost_exact(10, 100, kRate, kResponse), 1.0);
  EXPECT_DOUBLE_EQ(sequent_quiet_probability(10, 100, kRate, kResponse), 1.0);
}

TEST(SequentModel, SearchCostInterface) {
  const SequentModel model(19);
  const auto c = model.search_cost(TpcaParams{kUsers, kRate, kResponse,
                                              0.001});
  EXPECT_NEAR(c.overall, 53.0, 0.05);
  EXPECT_NEAR(c.txn_entry, 53.6, 0.05);
  EXPECT_NEAR(c.ack, 52.3, 0.05);
  EXPECT_EQ(model.name(), "sequent(h=19)");
}

TEST(SequentModel, MoreChainsNeverHurt) {
  double prev = 1e18;
  for (const double h : {1.0, 5.0, 19.0, 51.0, 101.0, 499.0}) {
    const double c = sequent_cost_exact(kUsers, h, kRate, kResponse);
    EXPECT_LE(c, prev + 1e-9) << "H=" << h;
    prev = c;
  }
}

}  // namespace
}  // namespace tcpdemux::analytic
