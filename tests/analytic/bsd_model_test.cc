#include "analytic/bsd_model.h"

#include <gtest/gtest.h>

namespace tcpdemux::analytic {
namespace {

TEST(BsdModel, PaperHeadlineNumber) {
  // §3.1: "This equation yields an average cost of a linear scan of 1,001
  // PCBs for a 200 TPC/A TPS benchmark" (N = 2000).
  EXPECT_NEAR(bsd_cost(2000), 1001.0, 0.05);
}

TEST(BsdModel, ApproachesHalfN) {
  EXPECT_NEAR(bsd_cost(10000) / 10000.0, 0.5, 1e-3);
}

TEST(BsdModel, SingleConnectionCostsOne) {
  // N=1: always a cache hit after the first packet; Equation 1 gives
  // exactly 1.
  EXPECT_DOUBLE_EQ(bsd_cost(1), 1.0);
}

TEST(BsdModel, HitRateIsOneOverN) {
  // §3.1: "The hit rate for the PCB cache is 1/N, which is 0.05% for a
  // 200 TPC/A TPS benchmark." (Implied by Equation 1's derivation:
  // cost = 1 + P(miss) * (N+1)/2 with P(miss) = (N-1)/N.)
  const double n = 2000;
  const double reconstructed = 1.0 + ((n - 1.0) / n) * (n + 1.0) / 2.0;
  EXPECT_NEAR(bsd_cost(n), reconstructed, 1e-9);
}

TEST(BsdModel, PacketTrainProbabilityTiny) {
  // §3.1 footnote 4: the chance that a transaction's entry and response
  // ack form a packet train. 0.96^1999 ~ 1.9e-35 (the paper's text prints
  // "1.9e-3"; see bsd_model.h for why the true exponent is -35).
  const double p = bsd_packet_train_probability(2000, 0.1, 0.2);
  EXPECT_NEAR(p / 1.9e-35, 1.0, 0.05);
}

TEST(BsdModel, PacketTrainProbabilityOneUser) {
  EXPECT_DOUBLE_EQ(bsd_packet_train_probability(1, 0.1, 0.2), 1.0);
}

TEST(BsdModel, SearchCostIsClassIndependent) {
  const BsdModel model;
  const auto c = model.search_cost(TpcaParams{2000, 0.1, 0.2, 0.001});
  EXPECT_DOUBLE_EQ(c.txn_entry, c.ack);
  EXPECT_DOUBLE_EQ(c.overall, c.txn_entry);
  EXPECT_NEAR(c.overall, 1001.0, 0.05);
}

TEST(BsdModel, ExpectedUsersEnteringClosedForm) {
  // Figure 4 anchor points for 2,000 users, a = 0.1/s.
  EXPECT_DOUBLE_EQ(expected_users_entering(2000, 0.1, 0.0), 0.0);
  EXPECT_NEAR(expected_users_entering(2000, 0.1, 10.0), 1263.6, 0.1);
  EXPECT_NEAR(expected_users_entering(2000, 0.1, 50.0), 1985.5, 0.2);
  EXPECT_DOUBLE_EQ(expected_users_entering(1, 0.1, 5.0), 0.0);
}

TEST(BsdModel, ExpectedUsersEnteringMonotone) {
  double prev = -1.0;
  for (double t = 0.0; t <= 50.0; t += 2.5) {
    const double n = expected_users_entering(2000, 0.1, t);
    EXPECT_GT(n, prev);
    prev = n;
  }
  EXPECT_LT(prev, 1999.0);
}

}  // namespace
}  // namespace tcpdemux::analytic
