// Cross-module behavioral checks: each traffic class produces the cache
// behavior the paper's introduction argues for.
#include <gtest/gtest.h>

#include "analytic/crowcroft_model.h"
#include "core/bsd_list.h"
#include "core/hashed_mtf.h"
#include "core/move_to_front.h"
#include "core/sequent_hash.h"
#include "sim/bulk_workload.h"
#include "sim/polling_workload.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

namespace tcpdemux {
namespace {

TEST(WorkloadBehavior, BulkTransferMakesBsdCacheShine) {
  // §1: "If packet trains are prevalent ... a very simple one-PCB cache
  // like those used in BSD systems yields very high cache hit rates."
  sim::BulkWorkloadParams p;
  p.connections = 4;
  p.train_gap_mean = 0.02;  // low enough duty cycle that trains rarely mix
  p.duration = 5.0;
  core::BsdListDemuxer d;
  const auto r = sim::replay_trace(sim::generate_bulk_trace(p), d);
  EXPECT_GT(r.hit_rate(), 0.80);
  EXPECT_LT(r.overall.mean(), 2.0);
}

TEST(WorkloadBehavior, OltpTrafficDefeatsBsdCache) {
  sim::TpcaWorkloadParams p;
  p.users = 400;
  p.duration = 300.0;
  core::BsdListDemuxer d;
  const auto r = sim::replay_trace(sim::generate_tpca_trace(p), d);
  EXPECT_LT(r.hit_rate(), 0.02);
  EXPECT_GT(r.overall.mean(), 150.0);  // ~N/2
}

TEST(WorkloadBehavior, PollingIsMtfWorstCase) {
  // §3.2: deterministic think times make MTF scan the entire list.
  sim::PollingWorkloadParams p;
  p.terminals = 200;
  p.period = 10.0;
  p.duration = 60.0;
  core::MoveToFrontDemuxer d;
  const auto r = sim::replay_trace(sim::generate_polling_trace(p), d);
  // Transaction entries scan all N PCBs (acks are cheap); overall must be
  // near the deterministic-worst-case prediction for entries.
  EXPECT_NEAR(r.data.mean(), analytic::crowcroft_deterministic_cost(200),
              3.0);
}

TEST(WorkloadBehavior, PollingHurtsMtfMoreThanBsd) {
  sim::PollingWorkloadParams p;
  p.terminals = 200;
  p.period = 10.0;
  p.duration = 60.0;
  const auto trace = sim::generate_polling_trace(p);
  core::MoveToFrontDemuxer mtf;
  core::BsdListDemuxer bsd;
  const double mtf_entry = sim::replay_trace(trace, mtf).data.mean();
  const double bsd_entry = sim::replay_trace(trace, bsd).data.mean();
  EXPECT_GT(mtf_entry, 1.9 * bsd_entry);  // N vs ~N/2
}

TEST(WorkloadBehavior, SequentHandlesBothTrafficClasses) {
  // §3.4's point: hashing wins on OLTP *while maintaining* packet-train
  // performance.
  core::SequentDemuxer oltp_d(core::SequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  sim::TpcaWorkloadParams tp;
  tp.users = 400;
  tp.duration = 300.0;
  const auto oltp = sim::replay_trace(sim::generate_tpca_trace(tp), oltp_d);
  EXPECT_LT(oltp.overall.mean(), 15.0);

  core::SequentDemuxer bulk_d(core::SequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  sim::BulkWorkloadParams bp;
  bp.connections = 8;
  bp.duration = 5.0;
  const auto bulk = sim::replay_trace(sim::generate_bulk_trace(bp), bulk_d);
  EXPECT_GT(bulk.hit_rate(), 0.80);
  EXPECT_LT(bulk.overall.mean(), 2.0);
}

TEST(WorkloadBehavior, MixedTrafficIntermediate) {
  sim::TpcaWorkloadParams tp;
  tp.users = 200;
  tp.duration = 60.0;
  sim::Trace mixed = sim::generate_tpca_trace(tp);
  sim::BulkWorkloadParams bp;
  bp.connections = 4;
  bp.duration = 60.0;
  bp.train_gap_mean = 0.5;
  mixed.merge(sim::generate_bulk_trace(bp));
  ASSERT_TRUE(mixed.valid());
  EXPECT_EQ(mixed.connections, 204u);

  core::BsdListDemuxer bsd;
  const auto r = sim::replay_trace(mixed, bsd);
  // Bulk segments hit the cache, OLTP packets scan: the hit rate sits
  // strictly between the pure cases.
  EXPECT_GT(r.hit_rate(), 0.05);
  EXPECT_LT(r.hit_rate(), 0.95);
}

TEST(WorkloadBehavior, HashedMtfNotBetterThanMoreChains) {
  // §3.5: "better results can be obtained simply by increasing the number
  // of hash chains."
  sim::TpcaWorkloadParams tp;
  tp.users = 600;
  tp.duration = 300.0;
  const auto trace = sim::generate_tpca_trace(tp);
  core::HashedMtfDemuxer mtf19(core::HashedMtfDemuxer::Options{
      19, net::HasherKind::kCrc32});
  core::SequentDemuxer seq100(core::SequentDemuxer::Options{
      100, net::HasherKind::kCrc32, true});
  const double combo = sim::replay_trace(trace, mtf19).overall.mean();
  const double more_chains = sim::replay_trace(trace, seq100).overall.mean();
  EXPECT_LT(more_chains, combo);
}

}  // namespace
}  // namespace tcpdemux
