// End-to-end recovery over a lossy link: two socket tables joined by
// sim::Link with packet loss; the retransmission machinery must carry all
// application data through anyway.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/link.h"
#include "tcp/socket_table.h"

namespace tcpdemux {
namespace {

using net::Ipv4Addr;

constexpr Ipv4Addr kServerAddr{10, 0, 0, 1};
constexpr Ipv4Addr kClientAddr{10, 1, 0, 2};
constexpr std::uint16_t kPort = 1521;

class LossyLinkTest : public ::testing::Test {
 protected:
  static sim::Link::Options link_options(double loss,
                                          std::uint64_t seed = 99) {
    sim::Link::Options o;
    o.delay = 0.005;
    o.loss_probability = loss;
    o.seed = seed;
    return o;
  }

  /// Builds both hosts with loss applied to the client->server direction
  /// only (the ack path stays clean so recovery is observable in
  /// isolation).
  void build_hosts(double client_to_server_loss,
                   std::uint64_t loss_seed = 99) {
    to_server_ = std::make_unique<sim::Link>(
        queue_, link_options(client_to_server_loss, loss_seed),
        [this](std::vector<std::uint8_t> wire) {
          server_->deliver_wire(wire);
        });
    to_client_ = std::make_unique<sim::Link>(
        queue_, link_options(0.0), [this](std::vector<std::uint8_t> wire) {
          client_->deliver_wire(wire);
        });
    server_ = std::make_unique<tcp::SocketTable>(
        core::DemuxConfig{core::Algorithm::kSequent},
        [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
          to_client_->send(std::move(wire));
        });
    client_ = std::make_unique<tcp::SocketTable>(
        core::DemuxConfig{core::Algorithm::kBsd},
        [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
          to_server_->send(std::move(wire));
        });
    server_->set_clock([this] { return queue_.now(); });
    client_->set_clock([this] { return queue_.now(); });
    server_->listen(kServerAddr, kPort);
    // Retransmission timer: a 100 ms tick for five simulated minutes.
    tick_ = [this] {
      client_->poll_retransmits();
      server_->poll_retransmits();
      if (queue_.now() < 300.0) queue_.schedule_in(0.1, tick_);
    };
    queue_.schedule_in(0.1, tick_);
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Link> to_server_;
  std::unique_ptr<sim::Link> to_client_;
  std::unique_ptr<tcp::SocketTable> server_;
  std::unique_ptr<tcp::SocketTable> client_;
  std::function<void()> tick_;
};

TEST_F(LossyLinkTest, AllDataArrivesDespiteLoss) {
  build_hosts(/*loss=*/0.25);
  core::Pcb* pcb = client_->connect({kClientAddr, 40001, kServerAddr, kPort});
  ASSERT_NE(pcb, nullptr);
  queue_.run_until(5.0);
  // Data-only recovery: the handshake must survive on its own. With this
  // seed the SYN gets through; assert so a seed change is caught loudly.
  ASSERT_EQ(pcb->state, core::TcpState::kEstablished)
      << "handshake lost; pick a seed whose SYN survives";

  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(client_->send_data(*pcb, 100));
  }
  queue_.run_until(290.0);

  core::Pcb* server_pcb =
      server_->find({kServerAddr, kPort, kClientAddr, 40001});
  ASSERT_NE(server_pcb, nullptr);
  EXPECT_EQ(server_pcb->bytes_in, 100u * kMessages)
      << "cumulative-ack recovery failed";
  EXPECT_EQ(pcb->snd_una, pcb->snd_nxt) << "client still has unacked data";
  EXPECT_GT(client_->counters().retransmissions, 0u)
      << "loss was configured but nothing was retransmitted";
  EXPECT_GT(to_server_->stats().dropped, 0u);
}

TEST_F(LossyLinkTest, CleanLinkNeedsNoRetransmissions) {
  build_hosts(/*loss=*/0.0);
  core::Pcb* pcb = client_->connect({kClientAddr, 40001, kServerAddr, kPort});
  queue_.run_until(2.0);
  ASSERT_EQ(pcb->state, core::TcpState::kEstablished);
  for (int i = 0; i < 20; ++i) client_->send_data(*pcb, 50);
  queue_.run_until(200.0);
  EXPECT_EQ(client_->counters().retransmissions, 0u);
  core::Pcb* server_pcb =
      server_->find({kServerAddr, kPort, kClientAddr, 40001});
  ASSERT_NE(server_pcb, nullptr);
  EXPECT_EQ(server_pcb->bytes_in, 1000u);
}

TEST_F(LossyLinkTest, HeavyLossStillConvergesEventually) {
  build_hosts(/*loss=*/0.5, /*loss_seed=*/7);
  core::Pcb* pcb = client_->connect({kClientAddr, 40002, kServerAddr, kPort});
  queue_.run_until(5.0);
  if (pcb->state != core::TcpState::kEstablished) {
    GTEST_SKIP() << "handshake lost under 50% loss with this seed";
  }
  for (int i = 0; i < 10; ++i) client_->send_data(*pcb, 64);
  queue_.run_until(290.0);
  core::Pcb* server_pcb =
      server_->find({kServerAddr, kPort, kClientAddr, 40002});
  ASSERT_NE(server_pcb, nullptr);
  EXPECT_EQ(server_pcb->bytes_in, 640u);
}

}  // namespace
}  // namespace tcpdemux
