// The paper's §1 setting, end to end at the frame level: hosts on a
// switched LAN — Ethernet framing, ARP resolution, a learning bridge,
// per-port link delay, and the full TCP receive path (demux + machine) on
// top. Every byte any host sees went through frame encapsulation.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "net/ethernet.h"
#include "sim/ethernet_switch.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "tcp/lan_host.h"

namespace tcpdemux {
namespace {

using net::Ipv4Addr;
using net::MacAddr;

constexpr std::uint16_t kPort = 1521;

class LanTest : public ::testing::Test {
 protected:
  static constexpr double kLinkDelay = 0.0001;

  /// Builds `n` hosts, each cabled to one switch port via a delayed link
  /// in each direction.
  void build_lan(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      hosts_.push_back(std::make_unique<tcp::LanHost>(
          Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(1 + i)),
          core::DemuxConfig{core::Algorithm::kSequent},
          [this] { return queue_.now(); }));
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Downlink: switch -> host i.
      sim::Link::Options o;
      o.delay = kLinkDelay;
      downlinks_.push_back(std::make_unique<sim::Link>(
          queue_, o, [this, i](std::vector<std::uint8_t> f) {
            hosts_[i]->receive_frame(std::move(f));
          }));
      const std::size_t port = bridge_.add_port(
          [this, i](std::vector<std::uint8_t> f) {
            downlinks_[i]->send(std::move(f));
          });
      // Uplink: host i -> switch.
      uplinks_.push_back(std::make_unique<sim::Link>(
          queue_, o, [this, port](std::vector<std::uint8_t> f) {
            bridge_.receive(port, f, queue_.now());
          }));
      hosts_[i]->set_transmit([this, i](std::vector<std::uint8_t> f) {
        uplinks_[i]->send(std::move(f));
      });
    }
  }

  sim::EventQueue queue_;
  sim::EthernetSwitch bridge_;
  std::vector<std::unique_ptr<tcp::LanHost>> hosts_;
  std::vector<std::unique_ptr<sim::Link>> uplinks_;
  std::vector<std::unique_ptr<sim::Link>> downlinks_;
};

TEST_F(LanTest, ArpThenHandshakeThenDataAcrossTheSwitch) {
  build_lan(3);
  tcp::LanHost& server = *hosts_[0];
  tcp::LanHost& client = *hosts_[1];
  server.table().listen(Ipv4Addr(10, 0, 0, 1), kPort);

  core::Pcb* pcb = client.table().connect(
      {Ipv4Addr(10, 0, 0, 2), 40001, Ipv4Addr(10, 0, 0, 1), kPort});
  ASSERT_NE(pcb, nullptr);
  queue_.run();

  // ARP resolved on both sides, handshake completed through the bridge.
  EXPECT_GE(client.arp_entries(), 1u);
  EXPECT_GE(server.arp_entries(), 1u);
  EXPECT_EQ(client.pending(), 0u);
  ASSERT_EQ(pcb->state, core::TcpState::kEstablished);
  ASSERT_EQ(server.table().connection_count(), 1u);

  // Data both ways.
  ASSERT_TRUE(client.table().send_data(*pcb, 120));
  queue_.run();
  core::Pcb* server_pcb = server.table().find(
      {Ipv4Addr(10, 0, 0, 1), kPort, Ipv4Addr(10, 0, 0, 2), 40001});
  ASSERT_NE(server_pcb, nullptr);
  EXPECT_EQ(server_pcb->bytes_in, 120u);
  ASSERT_TRUE(server.table().send_data(*server_pcb, 320));
  queue_.run();
  EXPECT_EQ(pcb->bytes_in, 320u);

  // The switch learned both hosts' MACs on the right ports.
  EXPECT_EQ(bridge_.port_of(server.mac()), 0u);
  EXPECT_EQ(bridge_.port_of(client.mac()), 1u);
}

TEST_F(LanTest, UnicastTrafficNotSeenByThirdHost) {
  build_lan(3);
  hosts_[0]->table().listen(Ipv4Addr(10, 0, 0, 1), kPort);
  core::Pcb* pcb = hosts_[1]->table().connect(
      {Ipv4Addr(10, 0, 0, 2), 40001, Ipv4Addr(10, 0, 0, 1), kPort});
  queue_.run();
  ASSERT_EQ(pcb->state, core::TcpState::kEstablished);
  hosts_[1]->table().send_data(*pcb, 100);
  queue_.run();
  // Host 2 never demultiplexed anything: its lookups stayed at zero (the
  // ARP broadcast reached it, but no TCP did once MACs were learned).
  EXPECT_EQ(hosts_[2]->table().demuxer().stats().lookups, 0u);
  EXPECT_GT(bridge_.stats().forwarded, 0u);
}

TEST_F(LanTest, ManyClientsOneServer) {
  constexpr std::size_t kClients = 12;
  build_lan(kClients + 1);
  tcp::LanHost& server = *hosts_[0];
  server.table().listen(Ipv4Addr(10, 0, 0, 1), kPort);

  std::vector<core::Pcb*> pcbs;
  for (std::size_t i = 1; i <= kClients; ++i) {
    core::Pcb* pcb = hosts_[i]->table().connect(
        {Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(1 + i)), 40001,
         Ipv4Addr(10, 0, 0, 1), kPort});
    ASSERT_NE(pcb, nullptr);
    pcbs.push_back(pcb);
  }
  queue_.run();
  EXPECT_EQ(server.table().connection_count(), kClients);
  for (core::Pcb* pcb : pcbs) {
    EXPECT_EQ(pcb->state, core::TcpState::kEstablished);
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    hosts_[i + 1]->table().send_data(*pcbs[i], 50);
  }
  queue_.run();
  std::uint64_t total = 0;
  server.table().demuxer().for_each_pcb(
      [&](const core::Pcb& p) { total += p.bytes_in; });
  EXPECT_EQ(total, 50u * kClients);
  // Every server-side demux decision went through real frames.
  EXPECT_GT(server.table().demuxer().stats().lookups, 2 * kClients);
}

}  // namespace
}  // namespace tcpdemux
