// Full-pipeline integration: workload -> synthesized wire packets -> pcap
// file -> reader -> parser -> demultiplexer. If any stage lied about
// formats, this breaks.
#include <gtest/gtest.h>

#include <sstream>

#include "core/demux_registry.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "sim/address_space.h"
#include "sim/tpca_workload.h"
#include "sim/trace_packets.h"

namespace tcpdemux {
namespace {

TEST(PcapRoundtrip, WorkloadToPcapToDemux) {
  // 1. Generate a small TPC/A trace and expand it to wire packets.
  sim::TpcaWorkloadParams wp;
  wp.users = 30;
  wp.duration = 60.0;
  wp.warmup = 10.0;
  wp.open_loop = false;
  const sim::Trace trace = sim::generate_tpca_trace(wp);
  sim::AddressSpaceParams ap;
  ap.clients = trace.connections;
  const auto keys = sim::make_client_keys(ap);
  const auto packets = sim::synthesize_packets(trace, keys);
  ASSERT_GT(packets.size(), 50u);

  // 2. Write a pcap capture of the server-bound direction.
  std::stringstream file;
  net::PcapWriter writer(file);
  std::size_t written = 0;
  for (const sim::TimedPacket& tp : packets) {
    if (!tp.to_server) continue;
    ASSERT_TRUE(writer.write(tp.time, tp.wire));
    ++written;
  }
  EXPECT_EQ(written, trace.arrivals());

  // 3. Read the capture back and demultiplex every packet.
  const auto demuxer = core::make_demuxer(
      *core::parse_demux_spec("sequent:19:crc32"));
  for (const net::FlowKey& key : keys) {
    ASSERT_NE(demuxer->insert(key), nullptr);
  }

  net::PcapReader reader(file);
  ASSERT_TRUE(reader.ok());
  std::size_t replayed = 0;
  double last_ts = -1.0;
  while (const auto record = reader.next()) {
    EXPECT_GE(record->timestamp, last_ts) << "pcap must be time-ordered";
    last_ts = record->timestamp;
    const auto packet = net::Packet::parse(record->bytes);
    ASSERT_TRUE(packet.has_value());
    const auto kind = packet->payload.empty() ? core::SegmentKind::kAck
                                              : core::SegmentKind::kData;
    const auto r = demuxer->lookup(packet->receiver_flow_key(), kind);
    ASSERT_NE(r.pcb, nullptr) << "capture packet missed every PCB";
    ++replayed;
  }
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(demuxer->stats().found, replayed);
}

}  // namespace
}  // namespace tcpdemux
