// The scenario matrix end to end: every WorkloadSpec kind crossed with
// every demultiplexer family must replay without a single failed lookup.
// This is the invariant the wallclock_scenarios bench (and the numbers in
// EXPERIMENTS.md) stand on — a miss would mean the generator emitted an
// arrival for a connection the demuxer did not hold, i.e. broken
// open/close ordering under port reuse.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/demux_registry.h"
#include "net/pcap.h"
#include "sim/replay.h"
#include "sim/trace_packets.h"
#include "sim/workloads/pcap_workload.h"
#include "sim/workloads/workload_spec.h"

namespace tcpdemux::sim::workloads {
namespace {

const std::vector<std::string>& scenario_specs() {
  static const std::vector<std::string> specs = {
      "tpca:users=200:duration=10",
      "zipf:flows=300:arrivals=10k:duration=10",
      "trains:conns=8:len=16:duration=2",
      "churn:users=40:session=4:think=0.5:ports=8:duration=20",
      "natpop:clients=150:nats=4:duration=10:think=0.5",
      "mix:flood=10%:base=zipf:flows=300:arrivals=10k:duration=10",
  };
  return specs;
}

const std::vector<std::string>& demuxer_specs() {
  static const std::vector<std::string> specs = {
      "bsd",     "mtf",           "srcache",        "sequent:19:crc32",
      "dynamic", "rcu:61:crc32",  "flat:1024:crc32",
      "flat16:1024:crc32",        "cuckoo:1024:crc32c"};
  return specs;
}

TEST(ScenarioMatrix, EveryCellReplaysWithoutMisses) {
  for (const std::string& wspec : scenario_specs()) {
    const Workload workload = make_workload(wspec);
    ASSERT_GT(workload.trace.arrivals(), 0u) << wspec;
    for (const std::string& dspec : demuxer_specs()) {
      const auto demuxer = core::make_demuxer(*core::parse_demux_spec(dspec));
      const auto result = sim::replay_trace(workload, *demuxer);
      EXPECT_EQ(result.misses, 0u) << wspec << " x " << dspec;
      EXPECT_GT(result.lookups, 0u) << wspec << " x " << dspec;
    }
  }
}

TEST(ScenarioMatrix, PcapRowJoinsTheMatrix) {
  // The pcap-driven row enters through the same Workload interface: a
  // synthesized capture re-imported and replayed through every demuxer.
  const Workload base = make_workload("trains:conns=6:len=8:duration=2");
  std::stringstream capture;
  net::PcapWriter writer(capture);
  for (const auto& p : synthesize_packets(base.trace, base.keys)) {
    writer.write(p.time, p.wire);
  }
  const Workload imported = make_pcap_workload(capture, {});
  ASSERT_EQ(imported.trace.connections, base.trace.connections);
  for (const std::string& dspec : demuxer_specs()) {
    const auto demuxer = core::make_demuxer(*core::parse_demux_spec(dspec));
    const auto result = sim::replay_trace(imported, *demuxer);
    EXPECT_EQ(result.misses, 0u) << "pcap x " << dspec;
    EXPECT_GT(result.lookups, 0u);
  }
}

TEST(ScenarioMatrix, CellsAreDeterministicAcrossRuns) {
  const std::string wspec = "churn:users=30:duration=20:ports=8:think=0.5";
  const std::string dspec = "sequent:19:crc32";
  std::vector<std::uint64_t> fingerprints;
  for (int run = 0; run < 2; ++run) {
    const Workload w = make_workload(wspec);
    const auto demuxer = core::make_demuxer(*core::parse_demux_spec(dspec));
    const auto result = sim::replay_trace(w, *demuxer);
    fingerprints.push_back(result.lookups ^ (result.cache_hits << 1) ^
                           (static_cast<std::uint64_t>(result.opens) << 32));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

}  // namespace
}  // namespace tcpdemux::sim::workloads
