// The paper's validation claim (§4): "These approximations have been
// qualitatively confirmed by benchmarks." This suite is that confirmation:
// each algorithm's measured PCBs-examined under a simulated TPC/A
// population must match the corresponding analytic model.
#include <gtest/gtest.h>

#include <memory>

#include "analytic/bsd_model.h"
#include "analytic/crowcroft_model.h"
#include "analytic/sequent_model.h"
#include "analytic/srcache_model.h"
#include "core/bsd_list.h"
#include "core/move_to_front.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

namespace tcpdemux {
namespace {

constexpr std::uint32_t kUsers = 600;
constexpr double kRate = 0.1;
constexpr double kResponse = 0.2;
constexpr double kRtt = 0.001;

sim::Trace make_trace(std::uint64_t seed = 42) {
  sim::TpcaWorkloadParams p;
  p.users = kUsers;
  p.response_time = kResponse;
  p.rtt = kRtt;
  p.duration = 400.0;
  p.warmup = 40.0;
  p.open_loop = true;       // the analysis assumes open-loop users
  p.truncate_think = false;  // and untruncated think times
  p.seed = seed;
  return generate_tpca_trace(p);
}

analytic::TpcaParams model_params() {
  return analytic::TpcaParams{static_cast<double>(kUsers), kRate, kResponse,
                              kRtt};
}

TEST(SimVsModel, BsdMatchesEquation1) {
  core::BsdListDemuxer d;
  const auto r = sim::replay_trace(make_trace(), d);
  const double predicted = analytic::bsd_cost(kUsers);
  EXPECT_NEAR(r.overall.mean() / predicted, 1.0, 0.05)
      << "sim " << r.overall.mean() << " vs model " << predicted;
}

TEST(SimVsModel, BsdHitRateIsNegligible) {
  core::BsdListDemuxer d;
  const auto r = sim::replay_trace(make_trace(), d);
  // §3.1: the one-entry cache provides essentially no help under TPC/A.
  EXPECT_LT(r.hit_rate(), 0.02);
}

TEST(SimVsModel, CrowcroftMatchesEquation6) {
  core::MoveToFrontDemuxer d;
  const auto r = sim::replay_trace(make_trace(), d);
  const auto c = analytic::CrowcroftModel{}.search_cost(model_params());
  // The model counts PCBs preceding the target; the implementation counts
  // the target too (+1).
  EXPECT_NEAR(r.overall.mean() / (c.overall + 1.0), 1.0, 0.05)
      << "sim " << r.overall.mean() << " vs model " << c.overall + 1.0;
}

TEST(SimVsModel, CrowcroftAckCostMatches) {
  core::MoveToFrontDemuxer d;
  const auto r = sim::replay_trace(make_trace(), d);
  const double predicted =
      analytic::crowcroft_ack_cost(kUsers, kRate, kResponse) + 1.0;
  EXPECT_NEAR(r.ack.mean() / predicted, 1.0, 0.08)
      << "sim " << r.ack.mean() << " vs model " << predicted;
}

TEST(SimVsModel, CrowcroftEntryCostMatches) {
  core::MoveToFrontDemuxer d;
  const auto r = sim::replay_trace(make_trace(), d);
  const double predicted =
      analytic::crowcroft_entry_cost(kUsers, kRate, kResponse) + 1.0;
  EXPECT_NEAR(r.data.mean() / predicted, 1.0, 0.05)
      << "sim " << r.data.mean() << " vs model " << predicted;
}

TEST(SimVsModel, SrCacheMatchesEquation17) {
  core::SendReceiveCacheDemuxer d;
  const auto r = sim::replay_trace(make_trace(), d);
  const auto c = analytic::SrCacheModel{}.search_cost(model_params());
  EXPECT_NEAR(r.overall.mean() / c.overall, 1.0, 0.08)
      << "sim " << r.overall.mean() << " vs model " << c.overall;
}

TEST(SimVsModel, SequentMatchesEquation22) {
  core::SequentDemuxer d(core::SequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  const auto r = sim::replay_trace(make_trace(), d);
  const double predicted =
      analytic::sequent_cost_exact(kUsers, 19, kRate, kResponse);
  EXPECT_NEAR(r.overall.mean() / predicted, 1.0, 0.10)
      << "sim " << r.overall.mean() << " vs model " << predicted;
}

TEST(SimVsModel, SequentAckCostMatchesEquation21) {
  core::SequentDemuxer d(core::SequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  const auto r = sim::replay_trace(make_trace(), d);
  const double predicted_ack =
      analytic::sequent_ack_cost(kUsers, 19, kRate, kResponse);
  EXPECT_NEAR(r.ack.mean() / predicted_ack, 1.0, 0.12)
      << "sim " << r.ack.mean() << " vs model " << predicted_ack;
}

TEST(SimVsModel, PaperOrderingHolds) {
  // Figure 13's qualitative story at this population size.
  const auto trace = make_trace();
  core::BsdListDemuxer bsd;
  core::MoveToFrontDemuxer mtf;
  core::SendReceiveCacheDemuxer sr;
  core::SequentDemuxer sequent(core::SequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  const double bsd_cost = sim::replay_trace(trace, bsd).overall.mean();
  const double mtf_cost = sim::replay_trace(trace, mtf).overall.mean();
  const double sr_cost = sim::replay_trace(trace, sr).overall.mean();
  const double seq_cost = sim::replay_trace(trace, sequent).overall.mean();
  EXPECT_LT(mtf_cost, bsd_cost);
  EXPECT_LT(sr_cost, bsd_cost);
  EXPECT_LT(seq_cost, mtf_cost / 5.0);
  EXPECT_LT(seq_cost, sr_cost / 5.0);
  EXPECT_GT(bsd_cost / seq_cost, 10.0) << "order-of-magnitude claim";
}

TEST(SimVsModel, ModelAssumptionsCostLittle) {
  // §3's modelling shortcuts (open-loop users, untruncated think time)
  // change the BSD cost by only a few percent versus the real TPC/A rules.
  sim::TpcaWorkloadParams p;
  p.users = kUsers;
  p.response_time = kResponse;
  p.rtt = kRtt;
  p.duration = 400.0;
  p.warmup = 40.0;
  p.open_loop = true;
  p.truncate_think = false;
  core::BsdListDemuxer model_like;
  const double idealized =
      sim::replay_trace(generate_tpca_trace(p), model_like).overall.mean();
  p.open_loop = false;
  p.truncate_think = true;
  core::BsdListDemuxer realistic;
  const double real =
      sim::replay_trace(generate_tpca_trace(p), realistic).overall.mean();
  EXPECT_NEAR(real / idealized, 1.0, 0.05);
}

TEST(SimVsModel, SeedInvariance) {
  // Two independent seeds agree with each other within noise — the
  // measured quantity is a property of the workload, not the seed.
  core::SequentDemuxer d1(core::SequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  core::SequentDemuxer d2(core::SequentDemuxer::Options{
      19, net::HasherKind::kCrc32, true});
  const double a = sim::replay_trace(make_trace(1), d1).overall.mean();
  const double b = sim::replay_trace(make_trace(2), d2).overall.mean();
  EXPECT_NEAR(a / b, 1.0, 0.10);
}

}  // namespace
}  // namespace tcpdemux
