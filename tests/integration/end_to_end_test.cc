// End-to-end: two SocketTables (an OLTP server and a client host) exchange
// real wire packets through the discrete-event simulator, exercising
// parsing, checksums, demultiplexing, and the TCP state machine together.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "sim/event_queue.h"
#include "tcp/socket_table.h"

namespace tcpdemux {
namespace {

using net::Ipv4Addr;
using tcp::SocketTable;

constexpr Ipv4Addr kServerAddr{10, 0, 0, 1};
constexpr Ipv4Addr kClientAddr{10, 1, 0, 2};
constexpr std::uint16_t kServerPort = 1521;
constexpr double kOneWayDelay = 0.0005;

/// A pair of hosts joined by a fixed-latency link over the event queue.
class TwoHostFixture : public ::testing::Test {
 protected:
  TwoHostFixture()
      : server_(core::DemuxConfig{core::Algorithm::kSequent, 19,
                                  net::HasherKind::kCrc32, true, 0},
                [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                  send_via_link(std::move(wire), /*to_client=*/true);
                }),
        client_(core::DemuxConfig{core::Algorithm::kBsd, 0,
                                  net::HasherKind::kCrc32, true, 0},
                [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                  send_via_link(std::move(wire), /*to_client=*/false);
                }) {}

  void send_via_link(std::vector<std::uint8_t> wire, bool to_client) {
    queue_.schedule_in(kOneWayDelay, [this, wire = std::move(wire),
                                      to_client] {
      if (to_client) {
        client_.deliver_wire(wire);
      } else {
        server_.deliver_wire(wire);
      }
    });
  }

  sim::EventQueue queue_;
  SocketTable server_;
  SocketTable client_;
};

TEST_F(TwoHostFixture, HandshakeDataTeardown) {
  ASSERT_TRUE(server_.listen(kServerAddr, kServerPort));
  const net::FlowKey client_key{kClientAddr, 40001, kServerAddr, kServerPort};
  core::Pcb* client_pcb = client_.connect(client_key);
  ASSERT_NE(client_pcb, nullptr);

  queue_.run();  // handshake completes
  EXPECT_EQ(client_pcb->state, core::TcpState::kEstablished);
  ASSERT_EQ(server_.connection_count(), 1u);

  // Find the server-side PCB (diagnostic lookup; no cache disturbance).
  core::Pcb* server_pcb = server_.find(
      net::FlowKey{kServerAddr, kServerPort, kClientAddr, 40001});
  ASSERT_NE(server_pcb, nullptr);
  EXPECT_EQ(server_pcb->state, core::TcpState::kEstablished);

  // Client sends a 64-byte query; server receives and acks it.
  EXPECT_TRUE(client_.send_data(*client_pcb, 64));
  queue_.run();
  EXPECT_EQ(server_pcb->bytes_in, 64u);
  EXPECT_EQ(client_pcb->snd_una, client_pcb->snd_nxt) << "query unacked";

  // Server responds with 256 bytes.
  EXPECT_TRUE(server_.send_data(*server_pcb, 256));
  queue_.run();
  EXPECT_EQ(client_pcb->bytes_in, 256u);
  EXPECT_EQ(server_pcb->snd_una, server_pcb->snd_nxt) << "response unacked";

  // Client closes; both sides finish the shutdown sequence.
  EXPECT_TRUE(client_.close(*client_pcb));
  queue_.run();
  EXPECT_EQ(server_pcb->state, core::TcpState::kCloseWait);
  EXPECT_TRUE(server_.close(*server_pcb));
  queue_.run();
  EXPECT_EQ(server_pcb->state, core::TcpState::kClosed);
  EXPECT_EQ(client_pcb->state, core::TcpState::kTimeWait);
}

TEST_F(TwoHostFixture, ManyClientsConcurrently) {
  ASSERT_TRUE(server_.listen(kServerAddr, kServerPort));
  constexpr int kClients = 50;
  std::vector<core::Pcb*> pcbs;
  for (int i = 0; i < kClients; ++i) {
    const net::FlowKey key{kClientAddr,
                           static_cast<std::uint16_t>(40001 + i), kServerAddr,
                           kServerPort};
    core::Pcb* pcb = client_.connect(key);
    ASSERT_NE(pcb, nullptr);
    pcbs.push_back(pcb);
  }
  queue_.run();
  EXPECT_EQ(server_.connection_count(), kClients);
  for (core::Pcb* pcb : pcbs) {
    EXPECT_EQ(pcb->state, core::TcpState::kEstablished);
  }
  // Every client sends one query.
  for (core::Pcb* pcb : pcbs) {
    EXPECT_TRUE(client_.send_data(*pcb, 100));
  }
  queue_.run();
  std::uint64_t total_in = 0;
  server_.demuxer().for_each_pcb(
      [&](const core::Pcb& p) { total_in += p.bytes_in; });
  EXPECT_EQ(total_in, 100u * kClients);
  // The server demuxed every arrival to the right PCB.
  EXPECT_EQ(server_.demuxer().stats().found,
            server_.demuxer().stats().lookups -
                static_cast<std::uint64_t>(kClients))
      << "only the initial SYNs may miss";
}

TEST_F(TwoHostFixture, InterleavedEchoKeepsStreamsSeparate) {
  ASSERT_TRUE(server_.listen(kServerAddr, kServerPort));
  core::Pcb* a = client_.connect({kClientAddr, 50001, kServerAddr,
                                  kServerPort});
  core::Pcb* b = client_.connect({kClientAddr, 50002, kServerAddr,
                                  kServerPort});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  queue_.run();
  client_.send_data(*a, 11);
  client_.send_data(*b, 22);
  client_.send_data(*a, 33);
  queue_.run();
  std::uint64_t a_bytes = 0;
  std::uint64_t b_bytes = 0;
  server_.demuxer().for_each_pcb([&](const core::Pcb& p) {
    if (p.key.foreign_port == 50001) a_bytes = p.bytes_in;
    if (p.key.foreign_port == 50002) b_bytes = p.bytes_in;
  });
  EXPECT_EQ(a_bytes, 44u);
  EXPECT_EQ(b_bytes, 22u);
}

}  // namespace
}  // namespace tcpdemux
