#!/usr/bin/env python3
"""Validates tcpdemux.telemetry.v1 JSON exports (stdlib only).

Usage: validate_schema.py <telemetry.json> [...]

Accepts a single report object or an array of them (the form
report/telemetry_json.h writes). Exits non-zero with one line per
violation; prints a summary per file when clean. The checked schema is
documented in src/report/telemetry_json.h and DESIGN.md "Observability".
"""

import json
import sys

SCHEMA = "tcpdemux.telemetry.v1"

COUNTER_FIELDS = (
    "lookups",
    "found",
    "cache_hits",
    "inserts",
    "erases",
    "inserts_shed",
    "rehashes",
    "resizes_started",
    "resizes_completed",
    "resizes_deferred",
    "resize_steps",
)

HISTOGRAM_FIELDS = (
    "examined",
    "probe_length",
    "latency_ns",
    "resize_work",
    "migration_debt",
)

SAMPLE_FIELDS = {
    "events": int,
    "lookups": int,
    "mean_examined": (int, float),
    "p50": int,
    "p90": int,
    "p99": int,
    "max_examined": int,
    "hit_rate": (int, float),
    "occ_max": int,
    "occ_mean": (int, float),
    "occ_skew": (int, float),
}


def _non_negative_int(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_histogram(report, name, errors):
    hist = report.get(name)
    if not isinstance(hist, dict):
        errors.append(f"missing histogram object '{name}'")
        return
    for field in ("count", "sum", "max"):
        if not _non_negative_int(hist.get(field)):
            errors.append(f"{name}.{field} must be a non-negative integer")
    buckets = hist.get("buckets")
    if not isinstance(buckets, list) or not all(
        _non_negative_int(b) for b in buckets
    ):
        errors.append(f"{name}.buckets must be a list of non-negative integers")
        return
    if len(buckets) > 65:
        errors.append(f"{name}.buckets has {len(buckets)} buckets (max 65)")
    if isinstance(hist.get("count"), int) and sum(buckets) != hist["count"]:
        errors.append(
            f"{name}: bucket total {sum(buckets)} != count {hist['count']}"
        )


def check_report(report, errors):
    if report.get("schema") != SCHEMA:
        errors.append(f"schema must be '{SCHEMA}', got {report.get('schema')!r}")
    for field in ("source", "algorithm"):
        if not isinstance(report.get(field), str) or not report[field]:
            errors.append(f"'{field}' must be a non-empty string")

    counters = report.get("counters")
    if not isinstance(counters, dict):
        errors.append("missing 'counters' object")
    else:
        for field in COUNTER_FIELDS:
            if not _non_negative_int(counters.get(field)):
                errors.append(f"counters.{field} must be a non-negative integer")
        if all(_non_negative_int(counters.get(f)) for f in COUNTER_FIELDS):
            if counters["found"] > counters["lookups"]:
                errors.append("counters.found exceeds counters.lookups")
            if counters["cache_hits"] > counters["lookups"]:
                errors.append("counters.cache_hits exceeds counters.lookups")
            if counters["resizes_completed"] > counters["resizes_started"]:
                errors.append(
                    "counters.resizes_completed exceeds "
                    "counters.resizes_started"
                )

    for name in HISTOGRAM_FIELDS:
        check_histogram(report, name, errors)

    # Histogram totals must agree with the counters whenever the run had
    # histograms enabled (count != 0); counters-only runs export empty ones.
    examined = report.get("examined")
    if (
        isinstance(examined, dict)
        and isinstance(counters, dict)
        and _non_negative_int(examined.get("count"))
        and examined["count"] != 0
        and _non_negative_int(counters.get("lookups"))
        and examined["count"] != counters["lookups"]
    ):
        errors.append(
            f"examined.count {examined['count']} != counters.lookups "
            f"{counters['lookups']}"
        )

    occupancy = report.get("occupancy")
    if not isinstance(occupancy, dict):
        errors.append("missing 'occupancy' object")
    else:
        for field in ("partitions", "max"):
            if not _non_negative_int(occupancy.get(field)):
                errors.append(
                    f"occupancy.{field} must be a non-negative integer"
                )
        for field in ("mean", "skew"):
            if not isinstance(occupancy.get(field), (int, float)):
                errors.append(f"occupancy.{field} must be a number")

    series = report.get("series")
    if not isinstance(series, dict):
        errors.append("missing 'series' object")
        return
    if not _non_negative_int(series.get("interval")):
        errors.append("series.interval must be a non-negative integer")
    samples = series.get("samples")
    if not isinstance(samples, list):
        errors.append("series.samples must be a list")
        return
    if series.get("interval") == 0 and samples:
        errors.append("series.interval 0 but samples present")
    previous_events = 0
    for i, sample in enumerate(samples):
        if not isinstance(sample, dict):
            errors.append(f"samples[{i}] must be an object")
            continue
        for field, kinds in SAMPLE_FIELDS.items():
            value = sample.get(field)
            if not isinstance(value, kinds) or isinstance(value, bool):
                errors.append(f"samples[{i}].{field} must be {kinds}")
        events = sample.get("events")
        if isinstance(events, int) and not isinstance(events, bool):
            if events <= previous_events:
                errors.append(
                    f"samples[{i}].events {events} not increasing"
                )
            previous_events = events


def validate_file(path):
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    reports = data if isinstance(data, list) else [data]
    errors = []
    for i, report in enumerate(reports):
        if not isinstance(report, dict):
            errors.append(f"report[{i}]: not an object")
            continue
        local = []
        check_report(report, local)
        errors.extend(f"report[{i}]: {e}" for e in local)
    return len(reports), errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            count, errors = validate_file(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
            continue
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        if errors:
            status = 1
        else:
            print(f"{path}: OK ({count} report(s))")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
