#!/usr/bin/env python3
"""Gate on the sharded receive path's claims (ci/check.sh stage 13).

Reads a wallclock_sharded --json export and asserts:

  1. Zero-miss invariants (hard, exact): the nic/churn row — a churn
     replay through a NIC whose indirection table was deliberately
     damaged — must report lost == 0 and duplicate_inserts == 0. Frames
     may be mis-steered and even dropped by the bounded handoff inbox,
     but no resident connection may vanish or double-insert. These are
     correctness counters, not timings, so no tolerance applies.
  2. Mis-steer telemetry sanity: the damaged table must actually
     mis-steer (missteer_rate strictly between 0 and 1), handoff depth
     must be positive, and peak occupancy skew >= 1 by construction.
  3. Head-to-head (loose): at the top thread count present, the sharded
     read path must not be slower than SLOWDOWN_FACTOR x the best
     shared-structure baseline (striped or RCU) at the same thread
     count. Sharding removes every atomic from the hot path, so it wins
     by a constant factor even when threads time-slice on a 1-core CI
     container; the factor-of-2 allowance absorbs scheduler noise, not
     an architectural regression.

Stdlib only.  Usage: validate_sharded.py <wallclock_sharded.json>
"""
import json
import sys

SLOWDOWN_FACTOR = 2.0


def fail(msg):
    print(f"validate_sharded: FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        records = [r for r in json.load(f)
                   if r.get("bench") == "wallclock_sharded"]
    if not records:
        return fail("no wallclock_sharded records in export")

    # --- 1 & 2: NIC telemetry row -----------------------------------
    nic = [r["metrics"] for r in records if r["name"] == "nic/churn"]
    if not nic:
        return fail("no nic/churn telemetry row")
    m = nic[0]
    if m["lost"] != 0:
        return fail(f"lost frames: {m['lost']} (want exactly 0)")
    if m["duplicate_inserts"] != 0:
        return fail(f"duplicate inserts: {m['duplicate_inserts']} "
                    "(want exactly 0)")
    if not 0.0 < m["missteer_rate"] < 1.0:
        return fail(f"missteer_rate {m['missteer_rate']} not in (0, 1); "
                    "the damaged-table scenario did not mis-steer")
    if m["max_handoff_depth"] <= 0:
        return fail("mis-steered run recorded no handoff depth")
    if m["peak_occ_skew"] < 1.0:
        return fail(f"peak_occ_skew {m['peak_occ_skew']} < 1")

    # --- 3: head-to-head at the top thread count --------------------
    def rows(prefix, writes):
        return [(int(r["metrics"]["threads"]), r["metrics"]["ns_per_op"])
                for r in records
                if r["name"].startswith(prefix)
                and int(r["metrics"]["writes_per_1024"]) == writes]

    for writes in (0, 64):
        sharded = dict(rows("sharded:", writes))
        striped = dict(rows("striped/", writes))
        rcu = dict(rows("rcu/", writes))
        if not (sharded and striped and rcu):
            return fail(f"missing scaling rows for writes={writes}")
        top = max(k for k in sharded if k in striped and k in rcu)
        best_shared = min(striped[top], rcu[top])
        if sharded[top] > SLOWDOWN_FACTOR * best_shared:
            return fail(
                f"writes={writes} threads={top}: sharded "
                f"{sharded[top]:.1f} ns/op vs best shared "
                f"{best_shared:.1f} ns/op exceeds {SLOWDOWN_FACTOR}x")
        print(f"validate_sharded: writes={writes} threads={top}: sharded "
              f"{sharded[top]:.1f} ns/op, striped {striped[top]:.1f}, "
              f"rcu {rcu[top]:.1f}")

    print(f"validate_sharded: OK "
          f"(missteer_rate={m['missteer_rate']:.4f}, "
          f"max_handoff_depth={int(m['max_handoff_depth'])}, "
          f"peak_occ_skew={m['peak_occ_skew']:.3f}, lost=0, dup=0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
