#!/usr/bin/env python3
"""Gate on the bounded-pause resize claim (ci/check.sh stage 12).

Reads a wallclock_resize --json export and asserts, for every
(backend, users, thp) cell that has both a baseline and an incremental
row:

  1. max-pause fraction: the incremental mode's worst single-operation
     pause is at most MAX_PAUSE_FRACTION of the stop-the-world baseline's
     worst pause. The incremental spike is the one-time doubled-array
     allocation (O(alloc)); the baseline additionally re-places every
     entry, so the ratio must stay well under 1 even on a noisy shared
     host (the bench already reports min-over-rounds maxima to shed
     scheduler jitter).
  2. p99 flatness: the incremental mode's growth-phase lookup p99 stays
     within P99_GROWTH_FACTOR of its own steady-state p99 — the
     "latency stays flat through the doubling" acceptance criterion.

Both thresholds are deliberately loose enough for a 1-core CI container;
the full-size (--sizes 2m) margins recorded in EXPERIMENTS.md are far
wider. Stdlib only.

Usage: validate_resize.py <wallclock_resize.json>
"""
import json
import sys

MAX_PAUSE_FRACTION = 0.75
P99_GROWTH_FACTOR = 3.0
# Below this the baseline "spike" is itself timer-jitter-sized and the
# ratio is meaningless; a cell this small is a configuration error.
MIN_BASELINE_PAUSE_NS = 50_000.0


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        records = [r for r in json.load(f)
                   if r.get("bench") == "wallclock_resize"]
    if not records:
        print("no wallclock_resize records in export", file=sys.stderr)
        return 1

    cells = {}
    for r in records:
        m = r["metrics"]
        backend = r["name"].split("/")[0]
        key = (backend, int(m["users"]), int(m.get("thp_disabled", 0)))
        mode = "incremental" if m.get("incremental") else "baseline"
        cells.setdefault(key, {})[mode] = m

    failures = []
    checked = 0
    for key, modes in sorted(cells.items()):
        if "baseline" not in modes or "incremental" not in modes:
            failures.append(f"{key}: missing {'baseline' if 'baseline' not in modes else 'incremental'} row")
            continue
        base, incr = modes["baseline"], modes["incremental"]
        checked += 1
        label = f"{key[0]} users={key[1]} thp_disabled={key[2]}"

        base_max = base["max_pause_ns"]
        incr_max = incr["max_pause_ns"]
        if base_max < MIN_BASELINE_PAUSE_NS:
            failures.append(
                f"{label}: baseline max pause {base_max:.0f} ns is below the "
                f"{MIN_BASELINE_PAUSE_NS:.0f} ns floor — cell too small to gate")
            continue
        ratio = incr_max / base_max
        if ratio > MAX_PAUSE_FRACTION:
            failures.append(
                f"{label}: incremental max pause {incr_max:.0f} ns is "
                f"{ratio:.2f}x the stop-the-world spike {base_max:.0f} ns "
                f"(limit {MAX_PAUSE_FRACTION})")

        steady = incr["steady_p99_ns"]
        growth = incr["growth_lookup_p99_ns"]
        if steady > 0 and growth > P99_GROWTH_FACTOR * steady:
            failures.append(
                f"{label}: incremental growth-phase lookup p99 {growth:.0f} ns "
                f"exceeds {P99_GROWTH_FACTOR}x steady-state p99 {steady:.0f} ns")

    for f_ in failures:
        print(f"FAIL: {f_}", file=sys.stderr)
    if not failures:
        print(f"validate_resize: {checked} cells OK "
              f"(max-pause fraction <= {MAX_PAUSE_FRACTION}, "
              f"growth p99 <= {P99_GROWTH_FACTOR}x steady)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
