#!/usr/bin/env python3
"""Self-test for the lint framework against tests/lint_fixtures/.

Three assertions, run as the `lint.fixtures` ctest:

1. Linting tests/lint_fixtures/repo yields EXACTLY the (file, line, rule)
   triples in repo/expected.json — every rule's positive case fires, and
   every NOLINT / NOLINTNEXTLINE / exempt-file case stays silent.
2. The --json export for that run validates as tcpdemux.lint.v1
   (via validate_findings.py) and its findings arrive stably sorted.
3. Linting tests/lint_fixtures/repo_stale — where the exempt files do
   not exist — exits 2 and names every stale exempt entry.

Usage: run_fixture_tests.py REPO_ROOT
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import check_lint  # noqa: E402
import validate_findings  # noqa: E402


def fail(msg: str) -> None:
    print(f"lint fixtures: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_lint(root: str):
    rules = check_lint.build_rules(root)
    config_errors = check_lint.validate_exemptions(root, rules)
    findings, files_checked = check_lint.lint_tree(root, rules)
    return rules, config_errors, findings, files_checked


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    fixtures = os.path.join(argv[1], "tests", "lint_fixtures")
    good_root = os.path.join(fixtures, "repo")
    stale_root = os.path.join(fixtures, "repo_stale")

    # --- 1. the good tree: exact finding set ---------------------------
    _, config_errors, findings, files_checked = run_lint(good_root)
    if config_errors:
        fail(f"repo/ must have no config errors, got: {config_errors}")

    with open(os.path.join(good_root, "expected.json"),
              encoding="utf-8") as fh:
        expected = {(f["file"], f["line"], f["rule"])
                    for f in json.load(fh)["findings"]}
    actual = {(f.file, f.line, f.rule) for f in findings}

    for triple in sorted(expected - actual):
        print(f"lint fixtures: expected but not reported: {triple}",
              file=sys.stderr)
    for triple in sorted(actual - expected):
        print(f"lint fixtures: reported but not expected: {triple}",
              file=sys.stderr)
    if expected != actual:
        fail(f"finding set mismatch ({len(actual)} actual vs "
             f"{len(expected)} expected)")
    if len(findings) != len(expected):
        fail("duplicate findings for a single (file, line, rule)")

    # --- 2. stable order + valid JSON export ---------------------------
    keys = [f.sort_key() for f in findings]
    if keys != sorted(keys):
        fail("findings are not stably sorted by (file, line, rule, message)")
    doc = check_lint.to_json_doc(findings, files_checked)
    problems = validate_findings.validate(doc)
    if problems:
        fail(f"--json export does not validate: {problems}")

    # --- 3. the stale tree: loud exit 2, every entry named -------------
    rules, stale_errors, _, _ = run_lint(stale_root)
    if not stale_errors:
        fail("repo_stale/ must produce stale-exempt config errors")
    stale_exempts = {exempt for rule in rules for exempt in rule.exempt}
    for exempt in sorted(stale_exempts):
        if not any(exempt in err for err in stale_errors):
            fail(f"stale exempt entry {exempt!r} not reported")
    rc = check_lint.main([stale_root])
    if rc != 2:
        fail(f"check_lint on repo_stale/ must exit 2, got {rc}")

    print(f"lint fixtures: PASS ({len(findings)} expected findings "
          f"matched exactly; {len(stale_errors)} stale exempt entries "
          "reported; JSON export valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
