#!/usr/bin/env python3
"""Repo-specific lint for tcpdemux, registered as the `lint`-labelled ctest.

Enforces invariants that -Wall and clang-tidy cannot express:

  no-random          rand()/srand()/std::rand anywhere: all randomness goes
                     through <random> engines (sim::Rng) so runs are seeded
                     and reproducible.
  raw-owning-memory  no raw owning new/delete in src/core: PCB ownership
                     belongs to the intrusive-list/epoch primitives or to
                     std containers (the flat table's slot arrays are
                     std::vector + std::unique_ptr and need no sanction).
                     The sanctioned owners carry an explicit
                     NOLINT(raw-owning-memory) marker.
  prefetch-discipline
                     __builtin_prefetch only inside core/prefetch.h
                     (prefetch_read): one audited shim keeps prefetches
                     portable (no-op off GNU/Clang) and greppable, instead
                     of intrinsics scattered through lookup paths.
  byte-order         network-order header fields are only touched through
                     net/byte_order.h: no htons/ntohl family, no
                     __builtin_bswap, no reinterpret_cast to multi-byte
                     integer pointers (the misaligned-load UB the ASan/UBSan
                     matrix exists to catch).
  include-guard      headers use the canonical TCPDEMUX_<PATH>_H_ guard.
  include-first      every src .cc includes its own header first, so each
                     header is proven self-contained.
  include-hygiene    no <bits/...> internals, no "../" relative includes
                     (all repo includes are rooted at src/).
  wire-parse         no hand-rolled multi-byte loads (buf[i] << 8 | ...)
                     from wire buffers outside net/byte_order.h: shifting
                     indexed bytes together is exactly where an
                     attacker-controlled length walks past the buffer, so
                     every such read goes through the two audited helpers
                     (load_be16/load_be32) and the checksum accumulator.
  telemetry-registry no mutable static integer/atomic counters in src/core:
                     instrumentation goes through the per-demuxer registry
                     types (DemuxStats, report::Telemetry) so counts reset
                     with the object, survive concurrent demuxers, and show
                     up in the JSON export instead of hiding in a global.
  rng-discipline     no raw std::mt19937 engines in src/sim outside
                     sim/rng.h: workload generators draw through sim::Rng
                     so every trace is reproducible from one seed and the
                     engine can be swapped in exactly one place. (Tests and
                     benches may still use std:: engines directly.)

Usage: check_lint.py [repo-root]        exit 0 = clean, 1 = violations.
Suppress a finding with a trailing  // NOLINT(<rule>)  comment, or a
// NOLINTNEXTLINE(<rule>)  comment on the line above.
"""

import os
import re
import sys

# (rule, pattern, scopes, message[, exempt-files]) — the optional fifth
# element lists the audited files where the pattern is the implementation,
# not a violation.
CODE_RULES = [
    (
        "no-random",
        re.compile(r"\b(?:std::)?s?rand\s*\("),
        ("src", "tests", "bench", "examples"),
        "use a seeded <random> engine (see sim/rng.h), never C rand()",
    ),
    (
        "byte-order",
        re.compile(r"\b(?:htons|htonl|ntohs|ntohl|__builtin_bswap(?:16|32|64))\b"),
        ("src",),
        "touch network-order fields only through net/byte_order.h",
    ),
    (
        "byte-order",
        re.compile(r"reinterpret_cast<\s*(?:const\s+)?(?:std::)?u?int(?:16|32|64)_t\s*\*"),
        ("src",),
        "no pointer-cast loads of wire data: use net/byte_order.h "
        "(misaligned access is UB)",
    ),
    (
        "raw-owning-memory",
        re.compile(r"(?<![\w:])(?:new|delete)\b(?!\s*\()"),
        ("src/core",),
        "raw owning new/delete in src/core is reserved for the list/epoch "
        "primitives; use the owning containers or mark the owner with "
        "NOLINT(raw-owning-memory)",
    ),
    (
        "prefetch-discipline",
        re.compile(r"__builtin_prefetch\b"),
        ("src", "tests", "bench", "examples"),
        "call core/prefetch.h's prefetch_read instead of the raw intrinsic "
        "(portability no-op off GNU/Clang, and one greppable shim)",
    ),
    (
        "include-hygiene",
        re.compile(r'#\s*include\s*<bits/'),
        ("src", "tests", "bench", "examples"),
        "never include libstdc++ internals",
    ),
    (
        "include-hygiene",
        re.compile(r'#\s*include\s*"\.\./'),
        ("src", "tests", "bench", "examples"),
        'repo includes are rooted at src/ ("core/pcb.h"), not relative',
    ),
    (
        "wire-parse",
        re.compile(r"\[[^\]]*\]\s*\)?\s*<<\s*(?:8|16|24)\b"),
        ("src",),
        "no hand-rolled multi-byte wire loads (buf[i] << 8): read "
        "attacker-controlled bytes through net/byte_order.h so bounds "
        "checks live in one audited place",
        ("src/net/byte_order.h", "src/net/checksum.cc"),
    ),
    (
        "telemetry-registry",
        # Mutable static counters: `static std::atomic...` or a static
        # integer with an initializer. `static constexpr`/`static const`
        # never match (the type must follow `static` directly), and static
        # member *functions* returning integers are excluded by refusing
        # '(' or ';' before the '='.
        re.compile(
            r"(?<![\w_])static\s+(?:(?:std::)?atomic\b"
            r"|(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t|unsigned|long|int)"
            r"\b[^();]*=)"
        ),
        ("src/core",),
        "no ad-hoc mutable static counters in src/core: route "
        "instrumentation through DemuxStats / report::Telemetry so it is "
        "per-demuxer, resettable, and exported",
    ),
    (
        "rng-discipline",
        re.compile(r"\bstd::mt19937(?:_64)?\b"),
        ("src/sim",),
        "workload generators must draw randomness through sim::Rng "
        "(sim/rng.h), never a raw std::mt19937: one seed, one engine, "
        "reproducible traces",
        ("src/sim/rng.h",),
    ),
]

NOLINT = re.compile(r"//\s*NOLINT\(([a-z-]+(?:,\s*[a-z-]+)*)\)")
NOLINTNEXTLINE = re.compile(r"//\s*NOLINTNEXTLINE\(([a-z-]+(?:,\s*[a-z-]+)*)\)")


def strip_code(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Blanks out comments and string/char literals, preserving length.

    Good enough for line-oriented rules: no raw strings or line
    continuations in this codebase (and the lint would flag the pattern
    inside them conservatively anyway).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            out.append(" " * (n - i))
            break
        if ch == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            out.append("  ")
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == quote:
                    break
                j += 1
            out.append(quote + " " * (min(j, n - 1) - i))
            i = min(j, n - 1) + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def guard_for(rel_path: str) -> str:
    stem = re.sub(r"[/.]", "_", rel_path.upper())
    return f"TCPDEMUX_{stem}_"


def lint_file(root: str, rel: str, errors: list[str]) -> None:
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        raw_lines = f.read().splitlines()

    in_block = False
    stripped_lines = []
    for raw in raw_lines:
        stripped, in_block = strip_code(raw, in_block)
        stripped_lines.append(stripped)

    for lineno, (raw, code) in enumerate(zip(raw_lines, stripped_lines), 1):
        # Deleted/defaulted special members are declarations, not the
        # owning operator delete the raw-owning-memory rule targets.
        code = re.sub(r"=\s*(?:delete|default)\b", "", code)
        suppressed = set()
        m = NOLINT.search(raw)
        if m:
            suppressed |= {r.strip() for r in m.group(1).split(",")}
        if lineno >= 2:
            m = NOLINTNEXTLINE.search(raw_lines[lineno - 2])
            if m:
                suppressed |= {r.strip() for r in m.group(1).split(",")}
        for entry in CODE_RULES:
            rule, pattern, scopes, message = entry[:4]
            exempt = entry[4] if len(entry) > 4 else ()
            if rule in suppressed or rel in exempt:
                continue
            if not any(
                rel.startswith(scope + "/") or rel == scope for scope in scopes
            ):
                continue
            if pattern.search(code):
                errors.append(f"{rel}:{lineno}: [{rule}] {message}")

    if rel.startswith("src/") and rel.endswith(".h"):
        expected = guard_for(rel[len("src/"):])
        joined = "\n".join(stripped_lines)
        m = re.search(r"#\s*ifndef\s+(\S+)", joined)
        if m is None or m.group(1) != expected:
            got = m.group(1) if m else "none"
            errors.append(
                f"{rel}:1: [include-guard] expected guard {expected}, "
                f"found {got}"
            )

    if rel.startswith("src/") and rel.endswith(".cc"):
        own_header = rel[len("src/"):-len(".cc")] + ".h"
        if os.path.exists(os.path.join(root, "src", own_header)):
            # Paths live inside string literals, which strip_code blanks —
            # find the directive in stripped text, read the path from raw.
            for raw, code in zip(raw_lines, stripped_lines):
                if not re.match(r"\s*#\s*include\b", code):
                    continue
                m = re.search(r'#\s*include\s*["<]([^">]+)[">]', raw)
                if m and m.group(1) != own_header:
                    errors.append(
                        f"{rel}:1: [include-first] first include must be "
                        f'"{own_header}" (found {m.group(1)})'
                    )
                break


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors: list[str] = []
    checked = 0
    for top in ("src", "tests", "bench", "examples", "tools"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if not name.endswith((".h", ".cc", ".cpp")):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                lint_file(root, rel, errors)
                checked += 1
    for error in sorted(errors):
        print(error)
    print(f"lint: {checked} files checked, {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
