#!/usr/bin/env python3
"""Repo-specific multi-pass lint for tcpdemux, the `lint`-labelled ctest.

Enforces invariants that -Wall and clang-tidy cannot express. The
analyzer is a framework of per-rule passes: simple line rules are
regexes, semantic passes (include layering, atomics discipline, lock
discipline, header hygiene) get the stripped source and the include
graph. Findings are stable-sorted and exportable as JSON
(tcpdemux.lint.v1) for CI artifacts; tools/lint/validate_findings.py
checks the export.

Line rules:

  no-random          rand()/srand()/std::rand anywhere: all randomness goes
                     through <random> engines (sim::Rng) so runs are seeded
                     and reproducible.
  raw-owning-memory  no raw owning new/delete in src/core: PCB ownership
                     belongs to the intrusive-list/epoch primitives or to
                     std containers. The sanctioned owners carry an explicit
                     NOLINT(raw-owning-memory) marker.
  prefetch-discipline
                     __builtin_prefetch only inside core/prefetch.h
                     (prefetch_read): one audited shim keeps prefetches
                     portable and greppable.
  byte-order         network-order header fields are only touched through
                     net/byte_order.h: no htons/ntohl family, no
                     __builtin_bswap, no reinterpret_cast to multi-byte
                     integer pointers.
  include-hygiene    no <bits/...> internals, no "../" relative includes.
  wire-parse         no hand-rolled multi-byte loads (buf[i] << 8 | ...)
                     from wire buffers outside net/byte_order.h.
  telemetry-registry no mutable static integer/atomic counters in src/core:
                     instrumentation goes through DemuxStats /
                     report::Telemetry.
  simd-discipline    vector/hash intrinsics (_mm_*, NEON v*q_*, __crc32*,
                     and their headers) only inside the audited shims
                     core/simd.h and net/crc32c.h: every SIMD path must
                     ship next to its portable SWAR/table fallback and a
                     runtime-verifiable backend report, not scatter
                     ifdef'd intrinsics through the tree.
  rng-discipline     no raw std::mt19937 engines in src/sim, src/tcp, or
                     src/net outside sim/rng.h: generators draw through
                     sim::Rng so every trace is reproducible from one seed.
                     (net/frame_fault.cc carries a documented inline
                     exemption: net sits below sim in the layering DAG, so
                     it cannot include sim/rng.h without inverting a layer;
                     its engine is caller-seeded and deterministic.)

Semantic passes:

  include-guard      headers use the canonical TCPDEMUX_<PATH>_H_ guard.
  include-first      every src .cc includes its own header first, so each
                     header is proven self-contained.
  include-layering   src/ modules may only include downward along the
                     architecture DAG (net, report, analytic at the base;
                     core above net+report; tcp above core; sim above tcp).
                     A sharded pipeline cannot quietly invert a layer.
  atomics-discipline every atomic load/store/fetch_*/exchange/
                     compare_exchange in src/core names an explicit
                     std::memory_order. The paper's whole argument is that
                     demultiplexing cost is memory behavior; orderings are
                     part of the algorithm and must be visible, never
                     seq_cst-by-default. Also covers the incremental-resize
                     bookkeeping (DESIGN.md "Incremental resize &
                     degradation ladder"): migration cursor/residents/
                     backoff fields are single-writer plain members by
                     design, so declaring one std::atomic outside the
                     audited concurrent primitives is flagged — an atomic
                     sprinkle there hides the race from TSan without
                     adding a protocol.
  lock-discipline    no bare std::mutex/std::shared_mutex (or std lock
                     RAII, std::condition_variable, std::once_flag/
                     call_once) in src/core, src/report, or src/tcp
                     outside core/thread_annotations.h: locks must be the
                     capability-annotated core::Mutex so -Wthread-safety
                     covers them (TCPDEMUX_THREAD_SAFETY=ON), and
                     migration start/finish coordination must not grow
                     ad-hoc sync primitives invisible to that analysis.

Usage: check_lint.py [repo-root] [--json FILE]
Exit codes: 0 = clean, 1 = violations, 2 = lint configuration broken
(e.g. a rule exempts a file that no longer exists — exemptions must be
pruned when their file goes away, or they silently blanket new code).

Suppress a finding with a trailing  // NOLINT(<rule>)  comment, or a
// NOLINTNEXTLINE(<rule>)  comment on the line above. Fixture trees under
tests/lint_fixtures/ are skipped by the repo walk (they contain planted
violations) and linted by the fixture ctest instead.
"""

import argparse
import json
import os
import re
import sys

SCHEMA = "tcpdemux.lint.v1"

# Directories walked from the repo root.
TOP_DIRS = ("src", "tests", "bench", "examples", "tools")

# Directory names whose subtrees are never linted by the repo walk.
# lint_fixtures holds planted violations exercised by the fixture ctest.
SKIP_DIR_NAMES = {"lint_fixtures"}

# The architecture DAG, derived from the actual #include graph: each
# src/<module> may include only from the listed modules. net, report, and
# analytic are base layers (no cross-module includes); core sits above
# net+report; tcp above core; sim is the top composition layer and may
# additionally drive tcp machines and analytic models.
LAYERING = {
    "analytic": {"analytic"},
    "net": {"net"},
    "report": {"report"},
    "core": {"core", "net", "report"},
    "tcp": {"tcp", "core", "net", "report"},
    "sim": {"sim", "tcp", "core", "net", "report", "analytic"},
}

NOLINT = re.compile(r"//\s*NOLINT\(([a-z-]+(?:,\s*[a-z-]+)*)\)")
NOLINTNEXTLINE = re.compile(r"//\s*NOLINTNEXTLINE\(([a-z-]+(?:,\s*[a-z-]+)*)\)")


class Finding:
    """One lint violation, sortable into the stable report order."""

    __slots__ = ("file", "line", "rule", "message")

    def __init__(self, file: str, line: int, rule: str, message: str):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message

    def sort_key(self):
        return (self.file, self.line, self.rule, self.message)

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class FileContext:
    """A linted file: raw text, comment/string-stripped text, suppressions."""

    def __init__(self, root: str, rel: str):
        self.rel = rel
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            self.raw_lines = f.read().splitlines()
        in_block = False
        self.stripped_lines = []
        for raw in self.raw_lines:
            stripped, in_block = strip_code(raw, in_block)
            self.stripped_lines.append(stripped)
        # Rules that need declaration-shaped text: deleted/defaulted
        # special members are declarations, not owning operator delete.
        self.decl_lines = [
            re.sub(r"=\s*(?:delete|default)\b", "", line)
            for line in self.stripped_lines
        ]

    def suppressed(self, lineno: int) -> set:
        """Rules NOLINT-suppressed on 1-based line `lineno`."""
        rules = set()
        m = NOLINT.search(self.raw_lines[lineno - 1])
        if m:
            rules |= {r.strip() for r in m.group(1).split(",")}
        if lineno >= 2:
            m = NOLINTNEXTLINE.search(self.raw_lines[lineno - 2])
            if m:
                rules |= {r.strip() for r in m.group(1).split(",")}
        return rules


def strip_code(line: str, in_block_comment: bool) -> tuple:
    """Blanks out comments and string/char literals, preserving length.

    Good enough for line-oriented rules: no raw strings or line
    continuations in this codebase (and the lint would flag the pattern
    inside them conservatively anyway).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            out.append(" " * (n - i))
            break
        if ch == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            out.append("  ")
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == quote:
                    break
                j += 1
            out.append(quote + " " * (min(j, n - 1) - i))
            i = min(j, n - 1) + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


class Rule:
    """A lint pass: scoped to path prefixes, with audited exempt files."""

    name = ""
    scopes = ()
    exempt = ()

    def applies_to(self, rel: str) -> bool:
        if rel in self.exempt:
            return False
        return any(
            rel.startswith(scope + "/") or rel == scope
            for scope in self.scopes
        )

    def check(self, ctx: FileContext) -> list:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> list:
        if not self.applies_to(ctx.rel):
            return []
        return [
            f
            for f in self.check(ctx)
            if self.name not in ctx.suppressed(f.line)
        ]


class RegexRule(Rule):
    """Flags every stripped line matching a pattern."""

    # Subclasses may run on declaration-normalized text (see FileContext)
    # or on the raw line (include-path rules: strip_code blanks string
    # literals, and an #include's path IS a string literal).
    use_decl_lines = False
    use_raw_lines = False

    def __init__(self, name, pattern, scopes, message, exempt=()):
        self.name = name
        self.pattern = re.compile(pattern)
        self.scopes = scopes
        self.message = message
        self.exempt = exempt

    def check(self, ctx: FileContext) -> list:
        if self.use_raw_lines:
            lines = ctx.raw_lines
        elif self.use_decl_lines:
            lines = ctx.decl_lines
        else:
            lines = ctx.stripped_lines
        return [
            Finding(ctx.rel, lineno, self.name, self.message)
            for lineno, code in enumerate(lines, 1)
            if self.pattern.search(code)
        ]


class DeclRegexRule(RegexRule):
    use_decl_lines = True


class RawRegexRule(RegexRule):
    use_raw_lines = True


class IncludeGuardRule(Rule):
    """src headers carry the canonical TCPDEMUX_<PATH>_H_ guard."""

    name = "include-guard"
    scopes = ("src",)

    @staticmethod
    def guard_for(rel_path: str) -> str:
        stem = re.sub(r"[/.]", "_", rel_path.upper())
        return f"TCPDEMUX_{stem}_"

    def applies_to(self, rel: str) -> bool:
        return super().applies_to(rel) and rel.endswith(".h")

    def check(self, ctx: FileContext) -> list:
        expected = self.guard_for(ctx.rel[len("src/"):])
        m = re.search(r"#\s*ifndef\s+(\S+)", "\n".join(ctx.stripped_lines))
        if m is not None and m.group(1) == expected:
            return []
        got = m.group(1) if m else "none"
        return [
            Finding(ctx.rel, 1, self.name,
                    f"expected guard {expected}, found {got}")
        ]


class IncludeFirstRule(Rule):
    """Every src .cc includes its own header first (self-containment)."""

    name = "include-first"
    scopes = ("src",)

    def __init__(self, root: str):
        self.root = root

    def applies_to(self, rel: str) -> bool:
        return super().applies_to(rel) and rel.endswith(".cc")

    def check(self, ctx: FileContext) -> list:
        own_header = ctx.rel[len("src/"):-len(".cc")] + ".h"
        if not os.path.exists(os.path.join(self.root, "src", own_header)):
            return []
        # Paths live inside string literals, which strip_code blanks —
        # find the directive in stripped text, read the path from raw.
        for lineno, (raw, code) in enumerate(
                zip(ctx.raw_lines, ctx.stripped_lines), 1):
            if not re.match(r"\s*#\s*include\b", code):
                continue
            m = re.search(r'#\s*include\s*["<]([^">]+)[">]', raw)
            if m and m.group(1) != own_header:
                return [
                    Finding(ctx.rel, lineno, self.name,
                            f'first include must be "{own_header}" '
                            f"(found {m.group(1)})")
                ]
            return []
        return []


class IncludeLayeringRule(Rule):
    """src modules include only downward along the architecture DAG."""

    name = "include-layering"
    scopes = ("src",)

    def check(self, ctx: FileContext) -> list:
        parts = ctx.rel.split("/")
        if len(parts) < 3 or parts[1] not in LAYERING:
            return []
        module = parts[1]
        allowed = LAYERING[module]
        findings = []
        for lineno, (raw, code) in enumerate(
                zip(ctx.raw_lines, ctx.stripped_lines), 1):
            if not re.match(r"\s*#\s*include\b", code):
                continue
            m = re.search(r'#\s*include\s*"([^"]+)"', raw)
            if m is None:
                continue  # system include
            target = m.group(1).split("/")[0]
            if target in LAYERING and target not in allowed:
                order = " > ".join(
                    ("sim", "tcp", "core", "net|report|analytic"))
                findings.append(
                    Finding(ctx.rel, lineno, self.name,
                            f"src/{module} may not include src/{target}: "
                            f"the module DAG is {order}; inverting a layer "
                            "couples the lower module to its own callers"))
        return findings


class AtomicsDisciplineRule(Rule):
    """Atomic operations in src/core name an explicit std::memory_order."""

    name = "atomics-discipline"
    scopes = ("src/core",)

    # Member-call spelling only: `std::exchange(...)`, `std::atomic_...`
    # free functions and non-atomic .clear()/.load of other APIs are not
    # matched. Preceded by `.` or `->` keeps std::exchange out.
    CALL = re.compile(
        r"(?:\.|->)\s*"
        r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
        r"fetch_xor|compare_exchange_weak|compare_exchange_strong)"
        r"\s*\(")

    # Incremental-resize bookkeeping declared atomic. The migration state
    # (drain cursor, resident count, defer backoff) is single-writer by
    # design — the Demuxer API imposes external synchronization and the
    # TSan cell enforces it. An atomic field there would silence the race
    # detector while providing no ordering protocol. The audited
    # concurrent primitives keep their atomics (they ARE the protocol).
    MIGRATION_ATOMIC = re.compile(
        r"\bstd::atomic(?:<[^;{]*>|_\w+)?\s+\w*"
        r"(?:cursor|resident|debt|backoff|retry|migrat)\w*\s*[{;=]")
    MIGRATION_EXEMPT = (
        "src/core/epoch.h", "src/core/epoch.cc",
        "src/core/rcu_demuxer.h", "src/core/concurrent_demuxer.h",
        "src/core/fault_inject.h",
    )

    def check(self, ctx: FileContext) -> list:
        findings = []
        for lineno, code in enumerate(ctx.stripped_lines, 1):
            for m in self.CALL.finditer(code):
                args = self._call_args(ctx.stripped_lines, lineno - 1,
                                       m.end() - 1)
                if "memory_order" not in args:
                    findings.append(
                        Finding(ctx.rel, lineno, self.name,
                                f"atomic {m.group(1)}() must name an "
                                "explicit std::memory_order: orderings are "
                                "part of the algorithm (seq_cst-by-default "
                                "hides the protocol and the cost)"))
            if (ctx.rel not in self.MIGRATION_EXEMPT
                    and self.MIGRATION_ATOMIC.search(code)):
                findings.append(
                    Finding(ctx.rel, lineno, self.name,
                            "migration/resize bookkeeping (cursor, "
                            "residents, backoff) is single-writer by "
                            "design: declaring it std::atomic hides the "
                            "race from TSan without adding a protocol — "
                            "keep it plain and let the concurrency suite "
                            "gate (see DESIGN.md, incremental resize)"))
        return findings

    @staticmethod
    def _call_args(lines, line_idx, open_paren_col) -> str:
        """Text between the call's parentheses, spanning lines if needed."""
        depth = 0
        collected = []
        i, j = line_idx, open_paren_col
        while i < len(lines):
            line = lines[i]
            while j < len(line):
                ch = line[j]
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        collected.append(line[open_paren_col:j]
                                         if i == line_idx else line[:j])
                        return "\n".join(collected)
                j += 1
            collected.append(line[open_paren_col:] if i == line_idx
                             else line)
            i, j = i + 1, 0
            open_paren_col = 0
        return "\n".join(collected)


class LockDisciplineRule(Rule):
    """Locks in concurrency-bearing modules are the annotated wrappers."""

    name = "lock-discipline"
    scopes = ("src/core", "src/report", "src/tcp")
    exempt = ("src/core/thread_annotations.h",)

    BARE = re.compile(
        r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
        r"recursive_timed_mutex|scoped_lock|lock_guard|unique_lock|"
        r"shared_lock)\b")

    # Ad-hoc coordination primitives: a condition_variable needs a bare
    # std::mutex (itself banned here), and once_flag/call_once is hidden
    # one-shot synchronization — both invisible to -Wthread-safety. The
    # incremental-resize migration added exactly the kind of start/finish
    # lifecycle these get bolted onto; its discipline is single-writer
    # methods on the owning table, not a side channel.
    COORD = re.compile(
        r"\bstd::(condition_variable(?:_any)?|once_flag|call_once)\b")

    def check(self, ctx: FileContext) -> list:
        findings = []
        for lineno, code in enumerate(ctx.stripped_lines, 1):
            m = self.BARE.search(code)
            if m:
                findings.append(
                    Finding(ctx.rel, lineno, self.name,
                            f"bare std::{m.group(1)} is invisible to "
                            "-Wthread-safety: use the capability-annotated "
                            "core::Mutex / core::MutexLock family from "
                            "core/thread_annotations.h"))
            m = self.COORD.search(code)
            if m:
                findings.append(
                    Finding(ctx.rel, lineno, self.name,
                            f"std::{m.group(1)} is ad-hoc coordination "
                            "invisible to -Wthread-safety: migration and "
                            "lifecycle hand-offs go through the annotated "
                            "core::Mutex family or the single-writer "
                            "method discipline (DESIGN.md, incremental "
                            "resize), never a side-channel primitive"))
        return findings


def build_rules(root: str) -> list:
    return [
        RegexRule(
            "no-random",
            r"\b(?:std::)?s?rand\s*\(",
            ("src", "tests", "bench", "examples"),
            "use a seeded <random> engine (see sim/rng.h), never C rand()",
        ),
        RegexRule(
            "byte-order",
            r"\b(?:htons|htonl|ntohs|ntohl|__builtin_bswap(?:16|32|64))\b",
            ("src",),
            "touch network-order fields only through net/byte_order.h",
        ),
        RegexRule(
            "byte-order",
            r"reinterpret_cast<\s*(?:const\s+)?(?:std::)?u?int(?:16|32|64)_t\s*\*",
            ("src",),
            "no pointer-cast loads of wire data: use net/byte_order.h "
            "(misaligned access is UB)",
        ),
        DeclRegexRule(
            "raw-owning-memory",
            r"(?<![\w:])(?:new|delete)\b(?!\s*\()",
            ("src/core",),
            "raw owning new/delete in src/core is reserved for the "
            "list/epoch primitives; use the owning containers or mark the "
            "owner with NOLINT(raw-owning-memory)",
        ),
        RegexRule(
            "prefetch-discipline",
            r"__builtin_prefetch\b",
            ("src", "tests", "bench", "examples"),
            "call core/prefetch.h's prefetch_read instead of the raw "
            "intrinsic (portability no-op off GNU/Clang, one greppable "
            "shim)",
            ("src/core/prefetch.h",),
        ),
        RegexRule(
            "include-hygiene",
            r"#\s*include\s*<bits/",
            ("src", "tests", "bench", "examples"),
            "never include libstdc++ internals",
        ),
        # Raw-line rule: the path in an #include is a string literal, which
        # strip_code blanks — the stripped-text form of this pattern can
        # never fire (a latent hole in the old flat-list lint, caught by
        # the fixture suite).
        RawRegexRule(
            "include-hygiene",
            r'#\s*include\s*"\.\./',
            ("src", "tests", "bench", "examples"),
            'repo includes are rooted at src/ ("core/pcb.h"), not relative',
        ),
        RegexRule(
            "wire-parse",
            r"\[[^\]]*\]\s*\)?\s*<<\s*(?:8|16|24)\b",
            ("src",),
            "no hand-rolled multi-byte wire loads (buf[i] << 8): read "
            "attacker-controlled bytes through net/byte_order.h so bounds "
            "checks live in one audited place",
            ("src/net/byte_order.h", "src/net/checksum.cc"),
        ),
        RegexRule(
            "telemetry-registry",
            # Mutable static counters: `static std::atomic...` or a static
            # integer with an initializer. `static constexpr`/`static
            # const` never match (the type must follow `static` directly),
            # and static member *functions* returning integers are
            # excluded by refusing '(' or ';' before the '='.
            r"(?<![\w_])static\s+(?:(?:std::)?atomic\b"
            r"|(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t|unsigned|long|int)"
            r"\b[^();]*=)",
            ("src/core",),
            "no ad-hoc mutable static counters in src/core: route "
            "instrumentation through DemuxStats / report::Telemetry so it "
            "is per-demuxer, resettable, and exported",
        ),
        RegexRule(
            "simd-discipline",
            r"(?:\b_mm_\w+|\b_mm256_\w+|\b__m128i?\b|\b__m256i?d?\b"
            r"|\bv(?:ld1|st1|ceq|dup|and|orr|min|max)q?_\w+"
            r"|\b__crc32c?[bhwd]\b"
            r"|#\s*include\s*<(?:\w*mmintrin|arm_neon|arm_acle)\.h>)",
            ("src", "tests", "bench", "examples"),
            "vector/hash intrinsics live only in the audited shims "
            "(core/simd.h group probing, net/crc32c.h hashing): one "
            "portable header per capability keeps every SIMD path paired "
            "with its SWAR/table fallback and runtime dispatch",
            ("src/core/simd.h", "src/net/crc32c.h"),
        ),
        RegexRule(
            "rng-discipline",
            r"\bstd::mt19937(?:_64)?\b",
            ("src/sim", "src/tcp", "src/net"),
            "generators must draw randomness through sim::Rng (sim/rng.h),"
            " never a raw std::mt19937: one seed, one engine, reproducible"
            " traces",
            ("src/sim/rng.h",),
        ),
        IncludeGuardRule(),
        IncludeFirstRule(root),
        IncludeLayeringRule(),
        AtomicsDisciplineRule(),
        LockDisciplineRule(),
    ]


def validate_exemptions(root: str, rules: list) -> list:
    """Every exempt path must still exist: a stale entry would silently
    blanket whatever file later reuses the name. Returns error strings."""
    errors = []
    for rule in rules:
        for rel in rule.exempt:
            if not os.path.exists(os.path.join(root, rel)):
                errors.append(
                    f"lint configuration: rule '{rule.name}' exempts "
                    f"'{rel}', which does not exist — prune the stale "
                    "exempt entry")
    return errors


def lint_tree(root: str, rules: list):
    """Walks the repo and returns (findings, files_checked)."""
    findings = []
    checked = 0
    for top in TOP_DIRS:
        for dirpath, dirnames, files in os.walk(os.path.join(root, top)):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIR_NAMES)
            for name in sorted(files):
                if not name.endswith((".h", ".cc", ".cpp")):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                ctx = FileContext(root, rel)
                for rule in rules:
                    findings.extend(rule.run(ctx))
                checked += 1
    findings.sort(key=Finding.sort_key)
    return findings, checked


def to_json_doc(findings: list, checked: int) -> dict:
    by_rule = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return {
        "schema": SCHEMA,
        "files_checked": checked,
        "violations": len(findings),
        "findings_by_rule": dict(sorted(by_rule.items())),
        "findings": [f.to_json() for f in findings],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="tcpdemux repo lint (multi-pass)")
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root to lint (default: cwd)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write findings as tcpdemux.lint.v1 JSON")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    rules = build_rules(root)

    config_errors = validate_exemptions(root, rules)
    if config_errors:
        for error in config_errors:
            print(error, file=sys.stderr)
        return 2

    findings, checked = lint_tree(root, rules)
    for finding in findings:
        print(finding.render())
    print(f"lint: {checked} files checked, {len(findings)} violation(s)")

    if args.json is not None:
        doc = to_json_doc(findings, checked)
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"lint: findings written to {args.json}")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
