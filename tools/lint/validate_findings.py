#!/usr/bin/env python3
"""Validate a lint findings export against the tcpdemux.lint.v1 schema.

Stdlib-only, mirroring tools/telemetry/validate_schema.py: CI emits
build/lint_findings.json and pipes it through this validator so the
export format is itself a tested contract, not a best-effort dump.

Usage: validate_findings.py FINDINGS_JSON
Exit codes: 0 valid, 1 invalid or unreadable.
"""

import json
import sys

SCHEMA = "tcpdemux.lint.v1"

FINDING_FIELDS = {
    "file": str,
    "line": int,
    "rule": str,
    "message": str,
}


def validate(doc) -> list:
    """Return a list of human-readable problems (empty == valid)."""
    problems = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]

    if doc.get("schema") != SCHEMA:
        problems.append(
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")

    for key in ("files_checked", "violations"):
        value = doc.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{key} must be a non-negative integer")

    findings = doc.get("findings")
    if not isinstance(findings, list):
        problems.append("findings must be a list")
        return problems

    for i, f in enumerate(findings):
        where = f"findings[{i}]"
        if not isinstance(f, dict):
            problems.append(f"{where} must be an object")
            continue
        for field, typ in FINDING_FIELDS.items():
            value = f.get(field)
            if not isinstance(value, typ) or isinstance(value, bool):
                problems.append(
                    f"{where}.{field} must be {typ.__name__}")
        if isinstance(f.get("line"), int) and f["line"] < 1:
            problems.append(f"{where}.line must be >= 1")
        extra = set(f) - set(FINDING_FIELDS)
        if extra:
            problems.append(f"{where} has unknown fields {sorted(extra)}")

    keys = [
        (f["file"], f["line"], f["rule"], f["message"])
        for f in findings
        if isinstance(f, dict) and all(
            isinstance(f.get(field), typ) and
            not isinstance(f.get(field), bool)
            for field, typ in FINDING_FIELDS.items())
    ]
    if keys != sorted(keys):
        problems.append(
            "findings must be sorted by (file, line, rule, message)")

    if isinstance(doc.get("violations"), int) and \
            doc["violations"] != len(findings):
        problems.append(
            f"violations ({doc['violations']}) != len(findings) "
            f"({len(findings)})")

    by_rule = doc.get("findings_by_rule")
    if not isinstance(by_rule, dict):
        problems.append("findings_by_rule must be an object")
    else:
        counted = {}
        for f in findings:
            if isinstance(f, dict) and isinstance(f.get("rule"), str):
                counted[f["rule"]] = counted.get(f["rule"], 0) + 1
        if by_rule != counted:
            problems.append(
                f"findings_by_rule {by_rule} inconsistent with findings "
                f"(recount: {counted})")

    return problems


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    try:
        with open(argv[1], encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"validate_findings: cannot read {argv[1]}: {err}",
              file=sys.stderr)
        return 1
    problems = validate(doc)
    for problem in problems:
        print(f"validate_findings: {argv[1]}: {problem}", file=sys.stderr)
    if not problems:
        print(f"validate_findings: {argv[1]}: valid {SCHEMA} "
              f"({doc['violations']} finding(s), "
              f"{doc['files_checked']} file(s) checked)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
