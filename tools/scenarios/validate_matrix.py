#!/usr/bin/env python3
"""Validates the wallclock_scenarios JSON matrix (stdlib only).

Usage: validate_matrix.py <matrix.json> [...]

The file is a bench_json.h record array (other benches' records may be
mixed in; only bench == "wallclock_scenarios" records are checked). Each
record's name is "<workload-spec>|<demuxer-spec>". The matrix must be:

  * complete  — every observed workload crossed with every observed
                demuxer, no duplicates, no holes;
  * broad     — at least 5 synthetic workloads, at least 1 pcap-driven
                workload, at least 5 demuxer families;
  * sound     — required metrics present and numeric, zero replay misses
                (a miss means a generator broke open/close ordering),
                positive timings, hit rates in [0, 1].

Exits non-zero with one line per violation; prints a summary per file
when clean.
"""

import json
import sys

BENCH = "wallclock_scenarios"

REQUIRED_METRICS = (
    "ns_per_event",
    "pcbs_examined",
    "hit_rate",
    "misses",
    "events",
    "connections",
)

MIN_SYNTHETIC_WORKLOADS = 5
MIN_PCAP_WORKLOADS = 1
MIN_DEMUXERS = 5

# Demuxer families (the spec head before the first ':') that must have a
# row in every matrix. Grown alongside the registry so a new backend that
# never enters the bench is caught here, not noticed months later.
REQUIRED_DEMUXER_FAMILIES = ("bsd", "sequent", "flat", "flat16", "cuckoo")


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_record(record, errors):
    """Validates one cell; returns (workload, demuxer) or None."""
    name = record.get("name")
    if not isinstance(name, str) or name.count("|") != 1:
        errors.append(f"record name {name!r} is not '<workload>|<demuxer>'")
        return None
    workload, demuxer = name.split("|")
    if not workload or not demuxer:
        errors.append(f"record name {name!r} has an empty axis")
        return None

    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        errors.append(f"{name}: missing 'metrics' object")
        return None
    for key in REQUIRED_METRICS:
        if not _is_number(metrics.get(key)):
            errors.append(f"{name}: metric '{key}' missing or not numeric")
    if _is_number(metrics.get("misses")) and metrics["misses"] != 0:
        errors.append(
            f"{name}: {metrics['misses']} replay misses (every generated "
            "arrival must find its PCB)"
        )
    if _is_number(metrics.get("ns_per_event")) and metrics["ns_per_event"] <= 0:
        errors.append(f"{name}: ns_per_event must be positive")
    if _is_number(metrics.get("hit_rate")) and not (
        0.0 <= metrics["hit_rate"] <= 1.0
    ):
        errors.append(f"{name}: hit_rate outside [0, 1]")
    if _is_number(metrics.get("events")) and metrics["events"] <= 0:
        errors.append(f"{name}: events must be positive")
    return workload, demuxer


def check_matrix(records, errors):
    cells = {}
    for record in records:
        cell = check_record(record, errors)
        if cell is None:
            continue
        if cell in cells:
            errors.append(f"duplicate cell {cell[0]}|{cell[1]}")
        cells[cell] = True

    workloads = sorted({w for w, _ in cells})
    demuxers = sorted({d for _, d in cells})
    for w in workloads:
        for d in demuxers:
            if (w, d) not in cells:
                errors.append(f"matrix hole: no cell for {w}|{d}")

    synthetic = [w for w in workloads if not w.startswith("pcap")]
    pcap = [w for w in workloads if w.startswith("pcap")]
    if len(synthetic) < MIN_SYNTHETIC_WORKLOADS:
        errors.append(
            f"only {len(synthetic)} synthetic workloads "
            f"(need >= {MIN_SYNTHETIC_WORKLOADS}): {synthetic}"
        )
    if len(pcap) < MIN_PCAP_WORKLOADS:
        errors.append("no pcap-driven workload row in the matrix")
    if len(demuxers) < MIN_DEMUXERS:
        errors.append(
            f"only {len(demuxers)} demuxers (need >= {MIN_DEMUXERS}): "
            f"{demuxers}"
        )
    families = {d.split(":")[0] for d in demuxers}
    for family in REQUIRED_DEMUXER_FAMILIES:
        if family not in families:
            errors.append(
                f"required demuxer family '{family}' has no matrix row "
                f"(present: {sorted(families)})"
            )
    return len(workloads), len(demuxers), len(cells)


def validate_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]
    if not isinstance(data, list):
        return [f"{path}: top level must be a JSON array of records"]

    records = [
        r for r in data if isinstance(r, dict) and r.get("bench") == BENCH
    ]
    if not records:
        return [f"{path}: no {BENCH} records found"]

    n_workloads, n_demuxers, n_cells = check_matrix(records, errors)
    if not errors:
        print(
            f"{path}: OK ({n_workloads} workloads x {n_demuxers} demuxers "
            f"= {n_cells} cells)"
        )
    return [f"{path}: {e}" for e in errors]


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in sys.argv[1:]:
        failures.extend(validate_file(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
