file(REMOVE_RECURSE
  "libtcpdemux_core.a"
)
