# Empty compiler generated dependencies file for tcpdemux_core.
# This may be replaced when dependencies are built.
