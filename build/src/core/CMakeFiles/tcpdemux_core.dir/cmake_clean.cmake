file(REMOVE_RECURSE
  "CMakeFiles/tcpdemux_core.dir/bsd_list.cc.o"
  "CMakeFiles/tcpdemux_core.dir/bsd_list.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/concurrent_demuxer.cc.o"
  "CMakeFiles/tcpdemux_core.dir/concurrent_demuxer.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/connection_id.cc.o"
  "CMakeFiles/tcpdemux_core.dir/connection_id.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/demux_registry.cc.o"
  "CMakeFiles/tcpdemux_core.dir/demux_registry.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/dynamic_hash.cc.o"
  "CMakeFiles/tcpdemux_core.dir/dynamic_hash.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/epoch.cc.o"
  "CMakeFiles/tcpdemux_core.dir/epoch.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/hashed_mtf.cc.o"
  "CMakeFiles/tcpdemux_core.dir/hashed_mtf.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/move_to_front.cc.o"
  "CMakeFiles/tcpdemux_core.dir/move_to_front.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/pcb.cc.o"
  "CMakeFiles/tcpdemux_core.dir/pcb.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/pcb_list.cc.o"
  "CMakeFiles/tcpdemux_core.dir/pcb_list.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/rcu_demuxer.cc.o"
  "CMakeFiles/tcpdemux_core.dir/rcu_demuxer.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/send_receive_cache.cc.o"
  "CMakeFiles/tcpdemux_core.dir/send_receive_cache.cc.o.d"
  "CMakeFiles/tcpdemux_core.dir/sequent_hash.cc.o"
  "CMakeFiles/tcpdemux_core.dir/sequent_hash.cc.o.d"
  "libtcpdemux_core.a"
  "libtcpdemux_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpdemux_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
