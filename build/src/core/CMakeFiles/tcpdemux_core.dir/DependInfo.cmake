
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bsd_list.cc" "src/core/CMakeFiles/tcpdemux_core.dir/bsd_list.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/bsd_list.cc.o.d"
  "/root/repo/src/core/concurrent_demuxer.cc" "src/core/CMakeFiles/tcpdemux_core.dir/concurrent_demuxer.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/concurrent_demuxer.cc.o.d"
  "/root/repo/src/core/connection_id.cc" "src/core/CMakeFiles/tcpdemux_core.dir/connection_id.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/connection_id.cc.o.d"
  "/root/repo/src/core/demux_registry.cc" "src/core/CMakeFiles/tcpdemux_core.dir/demux_registry.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/demux_registry.cc.o.d"
  "/root/repo/src/core/dynamic_hash.cc" "src/core/CMakeFiles/tcpdemux_core.dir/dynamic_hash.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/dynamic_hash.cc.o.d"
  "/root/repo/src/core/epoch.cc" "src/core/CMakeFiles/tcpdemux_core.dir/epoch.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/epoch.cc.o.d"
  "/root/repo/src/core/hashed_mtf.cc" "src/core/CMakeFiles/tcpdemux_core.dir/hashed_mtf.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/hashed_mtf.cc.o.d"
  "/root/repo/src/core/move_to_front.cc" "src/core/CMakeFiles/tcpdemux_core.dir/move_to_front.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/move_to_front.cc.o.d"
  "/root/repo/src/core/pcb.cc" "src/core/CMakeFiles/tcpdemux_core.dir/pcb.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/pcb.cc.o.d"
  "/root/repo/src/core/pcb_list.cc" "src/core/CMakeFiles/tcpdemux_core.dir/pcb_list.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/pcb_list.cc.o.d"
  "/root/repo/src/core/rcu_demuxer.cc" "src/core/CMakeFiles/tcpdemux_core.dir/rcu_demuxer.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/rcu_demuxer.cc.o.d"
  "/root/repo/src/core/send_receive_cache.cc" "src/core/CMakeFiles/tcpdemux_core.dir/send_receive_cache.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/send_receive_cache.cc.o.d"
  "/root/repo/src/core/sequent_hash.cc" "src/core/CMakeFiles/tcpdemux_core.dir/sequent_hash.cc.o" "gcc" "src/core/CMakeFiles/tcpdemux_core.dir/sequent_hash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
