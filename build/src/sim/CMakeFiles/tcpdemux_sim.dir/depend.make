# Empty dependencies file for tcpdemux_sim.
# This may be replaced when dependencies are built.
