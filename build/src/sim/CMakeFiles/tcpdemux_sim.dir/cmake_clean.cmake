file(REMOVE_RECURSE
  "CMakeFiles/tcpdemux_sim.dir/address_space.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/address_space.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/bulk_workload.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/bulk_workload.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/ethernet_switch.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/ethernet_switch.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/event_queue.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/flash_crowd_workload.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/flash_crowd_workload.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/polling_workload.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/polling_workload.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/replay.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/replay.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/rng.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/rng.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/stats.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/stats.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/tpca_workload.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/tpca_workload.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/trace.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/trace.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/trace_io.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/trace_io.cc.o.d"
  "CMakeFiles/tcpdemux_sim.dir/trace_packets.cc.o"
  "CMakeFiles/tcpdemux_sim.dir/trace_packets.cc.o.d"
  "libtcpdemux_sim.a"
  "libtcpdemux_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpdemux_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
