
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_space.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/address_space.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/address_space.cc.o.d"
  "/root/repo/src/sim/bulk_workload.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/bulk_workload.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/bulk_workload.cc.o.d"
  "/root/repo/src/sim/ethernet_switch.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/ethernet_switch.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/ethernet_switch.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/flash_crowd_workload.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/flash_crowd_workload.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/flash_crowd_workload.cc.o.d"
  "/root/repo/src/sim/polling_workload.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/polling_workload.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/polling_workload.cc.o.d"
  "/root/repo/src/sim/replay.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/replay.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/replay.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/rng.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/tpca_workload.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/tpca_workload.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/tpca_workload.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/trace_io.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/trace_io.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/trace_io.cc.o.d"
  "/root/repo/src/sim/trace_packets.cc" "src/sim/CMakeFiles/tcpdemux_sim.dir/trace_packets.cc.o" "gcc" "src/sim/CMakeFiles/tcpdemux_sim.dir/trace_packets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
