file(REMOVE_RECURSE
  "libtcpdemux_sim.a"
)
