# Empty compiler generated dependencies file for tcpdemux_report.
# This may be replaced when dependencies are built.
