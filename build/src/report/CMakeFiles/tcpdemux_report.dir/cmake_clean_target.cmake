file(REMOVE_RECURSE
  "libtcpdemux_report.a"
)
