file(REMOVE_RECURSE
  "CMakeFiles/tcpdemux_report.dir/ascii_plot.cc.o"
  "CMakeFiles/tcpdemux_report.dir/ascii_plot.cc.o.d"
  "CMakeFiles/tcpdemux_report.dir/csv.cc.o"
  "CMakeFiles/tcpdemux_report.dir/csv.cc.o.d"
  "CMakeFiles/tcpdemux_report.dir/table.cc.o"
  "CMakeFiles/tcpdemux_report.dir/table.cc.o.d"
  "libtcpdemux_report.a"
  "libtcpdemux_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpdemux_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
