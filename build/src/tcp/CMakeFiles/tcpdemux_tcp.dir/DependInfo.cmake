
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/lan_host.cc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/lan_host.cc.o" "gcc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/lan_host.cc.o.d"
  "/root/repo/src/tcp/retransmit_queue.cc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/retransmit_queue.cc.o" "gcc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/retransmit_queue.cc.o.d"
  "/root/repo/src/tcp/rtt.cc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/rtt.cc.o" "gcc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/rtt.cc.o.d"
  "/root/repo/src/tcp/socket_table.cc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/socket_table.cc.o" "gcc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/socket_table.cc.o.d"
  "/root/repo/src/tcp/syn_cache.cc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/syn_cache.cc.o" "gcc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/syn_cache.cc.o.d"
  "/root/repo/src/tcp/tcp_machine.cc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/tcp_machine.cc.o" "gcc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/tcp_machine.cc.o.d"
  "/root/repo/src/tcp/udp_table.cc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/udp_table.cc.o" "gcc" "src/tcp/CMakeFiles/tcpdemux_tcp.dir/udp_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
