# Empty dependencies file for tcpdemux_tcp.
# This may be replaced when dependencies are built.
