file(REMOVE_RECURSE
  "CMakeFiles/tcpdemux_tcp.dir/lan_host.cc.o"
  "CMakeFiles/tcpdemux_tcp.dir/lan_host.cc.o.d"
  "CMakeFiles/tcpdemux_tcp.dir/retransmit_queue.cc.o"
  "CMakeFiles/tcpdemux_tcp.dir/retransmit_queue.cc.o.d"
  "CMakeFiles/tcpdemux_tcp.dir/rtt.cc.o"
  "CMakeFiles/tcpdemux_tcp.dir/rtt.cc.o.d"
  "CMakeFiles/tcpdemux_tcp.dir/socket_table.cc.o"
  "CMakeFiles/tcpdemux_tcp.dir/socket_table.cc.o.d"
  "CMakeFiles/tcpdemux_tcp.dir/syn_cache.cc.o"
  "CMakeFiles/tcpdemux_tcp.dir/syn_cache.cc.o.d"
  "CMakeFiles/tcpdemux_tcp.dir/tcp_machine.cc.o"
  "CMakeFiles/tcpdemux_tcp.dir/tcp_machine.cc.o.d"
  "CMakeFiles/tcpdemux_tcp.dir/udp_table.cc.o"
  "CMakeFiles/tcpdemux_tcp.dir/udp_table.cc.o.d"
  "libtcpdemux_tcp.a"
  "libtcpdemux_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpdemux_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
