file(REMOVE_RECURSE
  "libtcpdemux_tcp.a"
)
