# Empty compiler generated dependencies file for tcpdemux_net.
# This may be replaced when dependencies are built.
