
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arp.cc" "src/net/CMakeFiles/tcpdemux_net.dir/arp.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/arp.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/tcpdemux_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/net/CMakeFiles/tcpdemux_net.dir/ethernet.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/ethernet.cc.o.d"
  "/root/repo/src/net/flow_key.cc" "src/net/CMakeFiles/tcpdemux_net.dir/flow_key.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/flow_key.cc.o.d"
  "/root/repo/src/net/fragment.cc" "src/net/CMakeFiles/tcpdemux_net.dir/fragment.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/fragment.cc.o.d"
  "/root/repo/src/net/hash_quality.cc" "src/net/CMakeFiles/tcpdemux_net.dir/hash_quality.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/hash_quality.cc.o.d"
  "/root/repo/src/net/hashers.cc" "src/net/CMakeFiles/tcpdemux_net.dir/hashers.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/hashers.cc.o.d"
  "/root/repo/src/net/headers.cc" "src/net/CMakeFiles/tcpdemux_net.dir/headers.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/headers.cc.o.d"
  "/root/repo/src/net/ip_addr.cc" "src/net/CMakeFiles/tcpdemux_net.dir/ip_addr.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/ip_addr.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/tcpdemux_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/packet.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/net/CMakeFiles/tcpdemux_net.dir/pcap.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/pcap.cc.o.d"
  "/root/repo/src/net/tcp_options.cc" "src/net/CMakeFiles/tcpdemux_net.dir/tcp_options.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/tcp_options.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/net/CMakeFiles/tcpdemux_net.dir/udp.cc.o" "gcc" "src/net/CMakeFiles/tcpdemux_net.dir/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
