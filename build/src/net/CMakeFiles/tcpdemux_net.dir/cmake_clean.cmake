file(REMOVE_RECURSE
  "CMakeFiles/tcpdemux_net.dir/arp.cc.o"
  "CMakeFiles/tcpdemux_net.dir/arp.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/checksum.cc.o"
  "CMakeFiles/tcpdemux_net.dir/checksum.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/ethernet.cc.o"
  "CMakeFiles/tcpdemux_net.dir/ethernet.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/flow_key.cc.o"
  "CMakeFiles/tcpdemux_net.dir/flow_key.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/fragment.cc.o"
  "CMakeFiles/tcpdemux_net.dir/fragment.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/hash_quality.cc.o"
  "CMakeFiles/tcpdemux_net.dir/hash_quality.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/hashers.cc.o"
  "CMakeFiles/tcpdemux_net.dir/hashers.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/headers.cc.o"
  "CMakeFiles/tcpdemux_net.dir/headers.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/ip_addr.cc.o"
  "CMakeFiles/tcpdemux_net.dir/ip_addr.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/packet.cc.o"
  "CMakeFiles/tcpdemux_net.dir/packet.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/pcap.cc.o"
  "CMakeFiles/tcpdemux_net.dir/pcap.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/tcp_options.cc.o"
  "CMakeFiles/tcpdemux_net.dir/tcp_options.cc.o.d"
  "CMakeFiles/tcpdemux_net.dir/udp.cc.o"
  "CMakeFiles/tcpdemux_net.dir/udp.cc.o.d"
  "libtcpdemux_net.a"
  "libtcpdemux_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpdemux_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
