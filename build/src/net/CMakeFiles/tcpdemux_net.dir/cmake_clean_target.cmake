file(REMOVE_RECURSE
  "libtcpdemux_net.a"
)
