# Empty dependencies file for tcpdemux_analytic.
# This may be replaced when dependencies are built.
