
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/binomial.cc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/binomial.cc.o" "gcc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/binomial.cc.o.d"
  "/root/repo/src/analytic/bsd_model.cc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/bsd_model.cc.o" "gcc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/bsd_model.cc.o.d"
  "/root/repo/src/analytic/crowcroft_model.cc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/crowcroft_model.cc.o" "gcc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/crowcroft_model.cc.o.d"
  "/root/repo/src/analytic/integrate.cc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/integrate.cc.o" "gcc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/integrate.cc.o.d"
  "/root/repo/src/analytic/sequent_model.cc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/sequent_model.cc.o" "gcc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/sequent_model.cc.o.d"
  "/root/repo/src/analytic/solvers.cc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/solvers.cc.o" "gcc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/solvers.cc.o.d"
  "/root/repo/src/analytic/srcache_model.cc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/srcache_model.cc.o" "gcc" "src/analytic/CMakeFiles/tcpdemux_analytic.dir/srcache_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
