file(REMOVE_RECURSE
  "CMakeFiles/tcpdemux_analytic.dir/binomial.cc.o"
  "CMakeFiles/tcpdemux_analytic.dir/binomial.cc.o.d"
  "CMakeFiles/tcpdemux_analytic.dir/bsd_model.cc.o"
  "CMakeFiles/tcpdemux_analytic.dir/bsd_model.cc.o.d"
  "CMakeFiles/tcpdemux_analytic.dir/crowcroft_model.cc.o"
  "CMakeFiles/tcpdemux_analytic.dir/crowcroft_model.cc.o.d"
  "CMakeFiles/tcpdemux_analytic.dir/integrate.cc.o"
  "CMakeFiles/tcpdemux_analytic.dir/integrate.cc.o.d"
  "CMakeFiles/tcpdemux_analytic.dir/sequent_model.cc.o"
  "CMakeFiles/tcpdemux_analytic.dir/sequent_model.cc.o.d"
  "CMakeFiles/tcpdemux_analytic.dir/solvers.cc.o"
  "CMakeFiles/tcpdemux_analytic.dir/solvers.cc.o.d"
  "CMakeFiles/tcpdemux_analytic.dir/srcache_model.cc.o"
  "CMakeFiles/tcpdemux_analytic.dir/srcache_model.cc.o.d"
  "libtcpdemux_analytic.a"
  "libtcpdemux_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpdemux_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
