file(REMOVE_RECURSE
  "libtcpdemux_analytic.a"
)
