file(REMOVE_RECURSE
  "CMakeFiles/tbl3_srcache.dir/tbl3_srcache.cc.o"
  "CMakeFiles/tbl3_srcache.dir/tbl3_srcache.cc.o.d"
  "tbl3_srcache"
  "tbl3_srcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl3_srcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
