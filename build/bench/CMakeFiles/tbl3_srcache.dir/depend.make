# Empty dependencies file for tbl3_srcache.
# This may be replaced when dependencies are built.
