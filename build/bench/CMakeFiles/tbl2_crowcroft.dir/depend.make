# Empty dependencies file for tbl2_crowcroft.
# This may be replaced when dependencies are built.
