file(REMOVE_RECURSE
  "CMakeFiles/tbl2_crowcroft.dir/tbl2_crowcroft.cc.o"
  "CMakeFiles/tbl2_crowcroft.dir/tbl2_crowcroft.cc.o.d"
  "tbl2_crowcroft"
  "tbl2_crowcroft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl2_crowcroft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
