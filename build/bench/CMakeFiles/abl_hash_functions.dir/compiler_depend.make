# Empty compiler generated dependencies file for abl_hash_functions.
# This may be replaced when dependencies are built.
