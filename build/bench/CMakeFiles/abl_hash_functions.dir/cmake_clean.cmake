file(REMOVE_RECURSE
  "CMakeFiles/abl_hash_functions.dir/abl_hash_functions.cc.o"
  "CMakeFiles/abl_hash_functions.dir/abl_hash_functions.cc.o.d"
  "abl_hash_functions"
  "abl_hash_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hash_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
