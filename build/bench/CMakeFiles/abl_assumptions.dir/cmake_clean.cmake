file(REMOVE_RECURSE
  "CMakeFiles/abl_assumptions.dir/abl_assumptions.cc.o"
  "CMakeFiles/abl_assumptions.dir/abl_assumptions.cc.o.d"
  "abl_assumptions"
  "abl_assumptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
