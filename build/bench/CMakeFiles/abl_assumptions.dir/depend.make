# Empty dependencies file for abl_assumptions.
# This may be replaced when dependencies are built.
