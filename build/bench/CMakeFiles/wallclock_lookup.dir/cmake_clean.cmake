file(REMOVE_RECURSE
  "CMakeFiles/wallclock_lookup.dir/wallclock_lookup.cc.o"
  "CMakeFiles/wallclock_lookup.dir/wallclock_lookup.cc.o.d"
  "wallclock_lookup"
  "wallclock_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallclock_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
