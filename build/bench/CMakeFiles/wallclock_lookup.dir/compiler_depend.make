# Empty compiler generated dependencies file for wallclock_lookup.
# This may be replaced when dependencies are built.
