file(REMOVE_RECURSE
  "CMakeFiles/abl_workload_mix.dir/abl_workload_mix.cc.o"
  "CMakeFiles/abl_workload_mix.dir/abl_workload_mix.cc.o.d"
  "abl_workload_mix"
  "abl_workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
