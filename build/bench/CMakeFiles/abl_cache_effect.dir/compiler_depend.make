# Empty compiler generated dependencies file for abl_cache_effect.
# This may be replaced when dependencies are built.
