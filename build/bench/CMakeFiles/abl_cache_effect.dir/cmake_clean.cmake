file(REMOVE_RECURSE
  "CMakeFiles/abl_cache_effect.dir/abl_cache_effect.cc.o"
  "CMakeFiles/abl_cache_effect.dir/abl_cache_effect.cc.o.d"
  "abl_cache_effect"
  "abl_cache_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cache_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
