file(REMOVE_RECURSE
  "CMakeFiles/tbl4_sequent.dir/tbl4_sequent.cc.o"
  "CMakeFiles/tbl4_sequent.dir/tbl4_sequent.cc.o.d"
  "tbl4_sequent"
  "tbl4_sequent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl4_sequent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
