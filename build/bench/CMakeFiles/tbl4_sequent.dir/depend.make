# Empty dependencies file for tbl4_sequent.
# This may be replaced when dependencies are built.
