file(REMOVE_RECURSE
  "CMakeFiles/abl_churn.dir/abl_churn.cc.o"
  "CMakeFiles/abl_churn.dir/abl_churn.cc.o.d"
  "abl_churn"
  "abl_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
