file(REMOVE_RECURSE
  "CMakeFiles/fig04_users_entering.dir/fig04_users_entering.cc.o"
  "CMakeFiles/fig04_users_entering.dir/fig04_users_entering.cc.o.d"
  "fig04_users_entering"
  "fig04_users_entering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_users_entering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
