# Empty dependencies file for fig04_users_entering.
# This may be replaced when dependencies are built.
