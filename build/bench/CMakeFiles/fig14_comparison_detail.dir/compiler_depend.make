# Empty compiler generated dependencies file for fig14_comparison_detail.
# This may be replaced when dependencies are built.
