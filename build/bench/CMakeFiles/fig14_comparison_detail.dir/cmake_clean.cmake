file(REMOVE_RECURSE
  "CMakeFiles/fig14_comparison_detail.dir/fig14_comparison_detail.cc.o"
  "CMakeFiles/fig14_comparison_detail.dir/fig14_comparison_detail.cc.o.d"
  "fig14_comparison_detail"
  "fig14_comparison_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_comparison_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
