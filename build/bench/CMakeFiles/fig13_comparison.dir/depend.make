# Empty dependencies file for fig13_comparison.
# This may be replaced when dependencies are built.
