file(REMOVE_RECURSE
  "CMakeFiles/wallclock_hash.dir/wallclock_hash.cc.o"
  "CMakeFiles/wallclock_hash.dir/wallclock_hash.cc.o.d"
  "wallclock_hash"
  "wallclock_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallclock_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
