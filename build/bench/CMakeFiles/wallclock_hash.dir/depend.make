# Empty dependencies file for wallclock_hash.
# This may be replaced when dependencies are built.
