file(REMOVE_RECURSE
  "CMakeFiles/paper_check.dir/paper_check.cc.o"
  "CMakeFiles/paper_check.dir/paper_check.cc.o.d"
  "paper_check"
  "paper_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
