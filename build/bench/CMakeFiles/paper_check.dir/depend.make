# Empty dependencies file for paper_check.
# This may be replaced when dependencies are built.
