# Empty dependencies file for abl_chain_sweep.
# This may be replaced when dependencies are built.
