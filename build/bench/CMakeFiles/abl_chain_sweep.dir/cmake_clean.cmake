file(REMOVE_RECURSE
  "CMakeFiles/abl_chain_sweep.dir/abl_chain_sweep.cc.o"
  "CMakeFiles/abl_chain_sweep.dir/abl_chain_sweep.cc.o.d"
  "abl_chain_sweep"
  "abl_chain_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chain_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
