file(REMOVE_RECURSE
  "CMakeFiles/tbl1_bsd.dir/tbl1_bsd.cc.o"
  "CMakeFiles/tbl1_bsd.dir/tbl1_bsd.cc.o.d"
  "tbl1_bsd"
  "tbl1_bsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl1_bsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
