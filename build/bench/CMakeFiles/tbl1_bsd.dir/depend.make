# Empty dependencies file for tbl1_bsd.
# This may be replaced when dependencies are built.
