file(REMOVE_RECURSE
  "CMakeFiles/abl_syn_flood.dir/abl_syn_flood.cc.o"
  "CMakeFiles/abl_syn_flood.dir/abl_syn_flood.cc.o.d"
  "abl_syn_flood"
  "abl_syn_flood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_syn_flood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
