# Empty dependencies file for abl_syn_flood.
# This may be replaced when dependencies are built.
