file(REMOVE_RECURSE
  "CMakeFiles/wallclock_parallel.dir/wallclock_parallel.cc.o"
  "CMakeFiles/wallclock_parallel.dir/wallclock_parallel.cc.o.d"
  "wallclock_parallel"
  "wallclock_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallclock_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
