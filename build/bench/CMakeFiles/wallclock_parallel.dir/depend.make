# Empty dependencies file for wallclock_parallel.
# This may be replaced when dependencies are built.
