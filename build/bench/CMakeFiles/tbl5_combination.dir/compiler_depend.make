# Empty compiler generated dependencies file for tbl5_combination.
# This may be replaced when dependencies are built.
