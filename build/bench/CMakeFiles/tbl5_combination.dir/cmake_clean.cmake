file(REMOVE_RECURSE
  "CMakeFiles/tbl5_combination.dir/tbl5_combination.cc.o"
  "CMakeFiles/tbl5_combination.dir/tbl5_combination.cc.o.d"
  "tbl5_combination"
  "tbl5_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl5_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
