# Empty dependencies file for abl_flash_crowd.
# This may be replaced when dependencies are built.
