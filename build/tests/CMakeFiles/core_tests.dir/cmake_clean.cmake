file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/bsd_list_test.cc.o"
  "CMakeFiles/core_tests.dir/core/bsd_list_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/connection_id_test.cc.o"
  "CMakeFiles/core_tests.dir/core/connection_id_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/demux_registry_test.cc.o"
  "CMakeFiles/core_tests.dir/core/demux_registry_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/demuxer_property_test.cc.o"
  "CMakeFiles/core_tests.dir/core/demuxer_property_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/differential_test.cc.o"
  "CMakeFiles/core_tests.dir/core/differential_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/dynamic_hash_test.cc.o"
  "CMakeFiles/core_tests.dir/core/dynamic_hash_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/hashed_mtf_test.cc.o"
  "CMakeFiles/core_tests.dir/core/hashed_mtf_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/memory_bytes_test.cc.o"
  "CMakeFiles/core_tests.dir/core/memory_bytes_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/move_to_front_test.cc.o"
  "CMakeFiles/core_tests.dir/core/move_to_front_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/pcb_list_test.cc.o"
  "CMakeFiles/core_tests.dir/core/pcb_list_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/send_receive_cache_test.cc.o"
  "CMakeFiles/core_tests.dir/core/send_receive_cache_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/sequent_hash_test.cc.o"
  "CMakeFiles/core_tests.dir/core/sequent_hash_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/wildcard_property_test.cc.o"
  "CMakeFiles/core_tests.dir/core/wildcard_property_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
