
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bsd_list_test.cc" "tests/CMakeFiles/core_tests.dir/core/bsd_list_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/bsd_list_test.cc.o.d"
  "/root/repo/tests/core/connection_id_test.cc" "tests/CMakeFiles/core_tests.dir/core/connection_id_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/connection_id_test.cc.o.d"
  "/root/repo/tests/core/demux_registry_test.cc" "tests/CMakeFiles/core_tests.dir/core/demux_registry_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/demux_registry_test.cc.o.d"
  "/root/repo/tests/core/demuxer_property_test.cc" "tests/CMakeFiles/core_tests.dir/core/demuxer_property_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/demuxer_property_test.cc.o.d"
  "/root/repo/tests/core/differential_test.cc" "tests/CMakeFiles/core_tests.dir/core/differential_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/differential_test.cc.o.d"
  "/root/repo/tests/core/dynamic_hash_test.cc" "tests/CMakeFiles/core_tests.dir/core/dynamic_hash_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dynamic_hash_test.cc.o.d"
  "/root/repo/tests/core/hashed_mtf_test.cc" "tests/CMakeFiles/core_tests.dir/core/hashed_mtf_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hashed_mtf_test.cc.o.d"
  "/root/repo/tests/core/memory_bytes_test.cc" "tests/CMakeFiles/core_tests.dir/core/memory_bytes_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/memory_bytes_test.cc.o.d"
  "/root/repo/tests/core/move_to_front_test.cc" "tests/CMakeFiles/core_tests.dir/core/move_to_front_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/move_to_front_test.cc.o.d"
  "/root/repo/tests/core/pcb_list_test.cc" "tests/CMakeFiles/core_tests.dir/core/pcb_list_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pcb_list_test.cc.o.d"
  "/root/repo/tests/core/send_receive_cache_test.cc" "tests/CMakeFiles/core_tests.dir/core/send_receive_cache_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/send_receive_cache_test.cc.o.d"
  "/root/repo/tests/core/sequent_hash_test.cc" "tests/CMakeFiles/core_tests.dir/core/sequent_hash_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/sequent_hash_test.cc.o.d"
  "/root/repo/tests/core/wildcard_property_test.cc" "tests/CMakeFiles/core_tests.dir/core/wildcard_property_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/wildcard_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tcpdemux_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpdemux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/tcpdemux_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tcpdemux_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
