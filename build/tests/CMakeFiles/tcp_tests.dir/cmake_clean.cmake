file(REMOVE_RECURSE
  "CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/host_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/host_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/reliability_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/reliability_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/retransmit_queue_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/retransmit_queue_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/rtt_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/rtt_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/seq_math_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/seq_math_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/socket_table_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/socket_table_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/syn_cache_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/syn_cache_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/tcp_machine_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/tcp_machine_test.cc.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/udp_table_test.cc.o"
  "CMakeFiles/tcp_tests.dir/tcp/udp_table_test.cc.o.d"
  "tcp_tests"
  "tcp_tests.pdb"
  "tcp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
