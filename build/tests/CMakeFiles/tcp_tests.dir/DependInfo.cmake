
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tcp/delayed_ack_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cc.o.d"
  "/root/repo/tests/tcp/host_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/host_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/host_test.cc.o.d"
  "/root/repo/tests/tcp/reliability_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/reliability_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/reliability_test.cc.o.d"
  "/root/repo/tests/tcp/retransmit_queue_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/retransmit_queue_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/retransmit_queue_test.cc.o.d"
  "/root/repo/tests/tcp/rtt_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/rtt_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/rtt_test.cc.o.d"
  "/root/repo/tests/tcp/seq_math_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/seq_math_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/seq_math_test.cc.o.d"
  "/root/repo/tests/tcp/socket_table_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/socket_table_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/socket_table_test.cc.o.d"
  "/root/repo/tests/tcp/syn_cache_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/syn_cache_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/syn_cache_test.cc.o.d"
  "/root/repo/tests/tcp/tcp_machine_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/tcp_machine_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/tcp_machine_test.cc.o.d"
  "/root/repo/tests/tcp/udp_table_test.cc" "tests/CMakeFiles/tcp_tests.dir/tcp/udp_table_test.cc.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/udp_table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tcpdemux_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpdemux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/tcpdemux_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tcpdemux_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
