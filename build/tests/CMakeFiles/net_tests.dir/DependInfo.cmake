
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/arp_test.cc" "tests/CMakeFiles/net_tests.dir/net/arp_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/arp_test.cc.o.d"
  "/root/repo/tests/net/checksum_test.cc" "tests/CMakeFiles/net_tests.dir/net/checksum_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/checksum_test.cc.o.d"
  "/root/repo/tests/net/ethernet_test.cc" "tests/CMakeFiles/net_tests.dir/net/ethernet_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/ethernet_test.cc.o.d"
  "/root/repo/tests/net/flow_key_test.cc" "tests/CMakeFiles/net_tests.dir/net/flow_key_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/flow_key_test.cc.o.d"
  "/root/repo/tests/net/fragment_test.cc" "tests/CMakeFiles/net_tests.dir/net/fragment_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/fragment_test.cc.o.d"
  "/root/repo/tests/net/hash_pattern_property_test.cc" "tests/CMakeFiles/net_tests.dir/net/hash_pattern_property_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/hash_pattern_property_test.cc.o.d"
  "/root/repo/tests/net/hash_quality_test.cc" "tests/CMakeFiles/net_tests.dir/net/hash_quality_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/hash_quality_test.cc.o.d"
  "/root/repo/tests/net/hashers_test.cc" "tests/CMakeFiles/net_tests.dir/net/hashers_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/hashers_test.cc.o.d"
  "/root/repo/tests/net/headers_test.cc" "tests/CMakeFiles/net_tests.dir/net/headers_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/headers_test.cc.o.d"
  "/root/repo/tests/net/ip_addr_test.cc" "tests/CMakeFiles/net_tests.dir/net/ip_addr_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/ip_addr_test.cc.o.d"
  "/root/repo/tests/net/packet_test.cc" "tests/CMakeFiles/net_tests.dir/net/packet_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/packet_test.cc.o.d"
  "/root/repo/tests/net/parser_robustness_test.cc" "tests/CMakeFiles/net_tests.dir/net/parser_robustness_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/parser_robustness_test.cc.o.d"
  "/root/repo/tests/net/pcap_test.cc" "tests/CMakeFiles/net_tests.dir/net/pcap_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/pcap_test.cc.o.d"
  "/root/repo/tests/net/tcp_options_test.cc" "tests/CMakeFiles/net_tests.dir/net/tcp_options_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/tcp_options_test.cc.o.d"
  "/root/repo/tests/net/udp_test.cc" "tests/CMakeFiles/net_tests.dir/net/udp_test.cc.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/udp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tcpdemux_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpdemux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/tcpdemux_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tcpdemux_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
