
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/address_space_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/address_space_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/address_space_test.cc.o.d"
  "/root/repo/tests/sim/bulk_workload_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/bulk_workload_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/bulk_workload_test.cc.o.d"
  "/root/repo/tests/sim/churn_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/churn_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/churn_test.cc.o.d"
  "/root/repo/tests/sim/ethernet_switch_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/ethernet_switch_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/ethernet_switch_test.cc.o.d"
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/event_queue_test.cc.o.d"
  "/root/repo/tests/sim/flash_crowd_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/flash_crowd_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/flash_crowd_test.cc.o.d"
  "/root/repo/tests/sim/link_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/link_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/link_test.cc.o.d"
  "/root/repo/tests/sim/polling_workload_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/polling_workload_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/polling_workload_test.cc.o.d"
  "/root/repo/tests/sim/replay_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/replay_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/replay_test.cc.o.d"
  "/root/repo/tests/sim/rng_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/rng_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/rng_test.cc.o.d"
  "/root/repo/tests/sim/stats_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/stats_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/stats_test.cc.o.d"
  "/root/repo/tests/sim/tpca_workload_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/tpca_workload_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/tpca_workload_test.cc.o.d"
  "/root/repo/tests/sim/trace_io_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/trace_io_test.cc.o.d"
  "/root/repo/tests/sim/trace_packets_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/trace_packets_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/trace_packets_test.cc.o.d"
  "/root/repo/tests/sim/trace_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/trace_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tcpdemux_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpdemux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/tcpdemux_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tcpdemux_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
