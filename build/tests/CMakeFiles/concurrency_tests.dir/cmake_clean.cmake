file(REMOVE_RECURSE
  "CMakeFiles/concurrency_tests.dir/core/concurrent_demuxer_test.cc.o"
  "CMakeFiles/concurrency_tests.dir/core/concurrent_demuxer_test.cc.o.d"
  "CMakeFiles/concurrency_tests.dir/core/concurrent_stress_test.cc.o"
  "CMakeFiles/concurrency_tests.dir/core/concurrent_stress_test.cc.o.d"
  "CMakeFiles/concurrency_tests.dir/core/rcu_demuxer_test.cc.o"
  "CMakeFiles/concurrency_tests.dir/core/rcu_demuxer_test.cc.o.d"
  "concurrency_tests"
  "concurrency_tests.pdb"
  "concurrency_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
