
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/concurrent_demuxer_test.cc" "tests/CMakeFiles/concurrency_tests.dir/core/concurrent_demuxer_test.cc.o" "gcc" "tests/CMakeFiles/concurrency_tests.dir/core/concurrent_demuxer_test.cc.o.d"
  "/root/repo/tests/core/concurrent_stress_test.cc" "tests/CMakeFiles/concurrency_tests.dir/core/concurrent_stress_test.cc.o" "gcc" "tests/CMakeFiles/concurrency_tests.dir/core/concurrent_stress_test.cc.o.d"
  "/root/repo/tests/core/rcu_demuxer_test.cc" "tests/CMakeFiles/concurrency_tests.dir/core/rcu_demuxer_test.cc.o" "gcc" "tests/CMakeFiles/concurrency_tests.dir/core/rcu_demuxer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tcpdemux_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpdemux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/tcpdemux_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tcpdemux_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
