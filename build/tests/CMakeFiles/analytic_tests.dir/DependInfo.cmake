
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytic/binomial_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/binomial_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/binomial_test.cc.o.d"
  "/root/repo/tests/analytic/bsd_model_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/bsd_model_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/bsd_model_test.cc.o.d"
  "/root/repo/tests/analytic/crowcroft_model_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/crowcroft_model_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/crowcroft_model_test.cc.o.d"
  "/root/repo/tests/analytic/exp_math_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/exp_math_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/exp_math_test.cc.o.d"
  "/root/repo/tests/analytic/integrate_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/integrate_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/integrate_test.cc.o.d"
  "/root/repo/tests/analytic/model_consistency_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/model_consistency_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/model_consistency_test.cc.o.d"
  "/root/repo/tests/analytic/sequent_model_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/sequent_model_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/sequent_model_test.cc.o.d"
  "/root/repo/tests/analytic/solvers_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/solvers_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/solvers_test.cc.o.d"
  "/root/repo/tests/analytic/srcache_model_test.cc" "tests/CMakeFiles/analytic_tests.dir/analytic/srcache_model_test.cc.o" "gcc" "tests/CMakeFiles/analytic_tests.dir/analytic/srcache_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tcpdemux_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tcpdemux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tcpdemux_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpdemux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/tcpdemux_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tcpdemux_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
