file(REMOVE_RECURSE
  "CMakeFiles/analytic_tests.dir/analytic/binomial_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/binomial_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/bsd_model_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/bsd_model_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/crowcroft_model_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/crowcroft_model_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/exp_math_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/exp_math_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/integrate_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/integrate_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/model_consistency_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/model_consistency_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/sequent_model_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/sequent_model_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/solvers_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/solvers_test.cc.o.d"
  "CMakeFiles/analytic_tests.dir/analytic/srcache_model_test.cc.o"
  "CMakeFiles/analytic_tests.dir/analytic/srcache_model_test.cc.o.d"
  "analytic_tests"
  "analytic_tests.pdb"
  "analytic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
