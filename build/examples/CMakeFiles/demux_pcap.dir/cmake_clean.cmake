file(REMOVE_RECURSE
  "CMakeFiles/demux_pcap.dir/demux_pcap.cpp.o"
  "CMakeFiles/demux_pcap.dir/demux_pcap.cpp.o.d"
  "demux_pcap"
  "demux_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demux_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
