# Empty compiler generated dependencies file for demux_pcap.
# This may be replaced when dependencies are built.
