# Empty compiler generated dependencies file for export_pcap.
# This may be replaced when dependencies are built.
