file(REMOVE_RECURSE
  "CMakeFiles/export_pcap.dir/export_pcap.cpp.o"
  "CMakeFiles/export_pcap.dir/export_pcap.cpp.o.d"
  "export_pcap"
  "export_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
