file(REMOVE_RECURSE
  "CMakeFiles/lan_simulation.dir/lan_simulation.cpp.o"
  "CMakeFiles/lan_simulation.dir/lan_simulation.cpp.o.d"
  "lan_simulation"
  "lan_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lan_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
