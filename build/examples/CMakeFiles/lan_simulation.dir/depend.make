# Empty dependencies file for lan_simulation.
# This may be replaced when dependencies are built.
