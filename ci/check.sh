#!/usr/bin/env bash
# Tier-1 gate + concurrency gate.
#
#   1. Build everything and run the full test suite (the tier-1 check
#      from ROADMAP.md).
#   2. Rebuild with ThreadSanitizer (-DTCPDEMUX_SANITIZE=thread) and run
#      the `concurrency`-labelled stress suites; any data-race report
#      fails the script (halt_on_error) and so does any test failure.
#
# Usage: ci/check.sh [jobs]      (default: nproc)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"

echo "== tier-1: build + full ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo "== concurrency: rebuild under ThreadSanitizer, run -L concurrency =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DTCPDEMUX_SANITIZE=thread
cmake --build "$ROOT/build-tsan" --target concurrency_tests -j "$JOBS"
TSAN_OPTIONS="halt_on_error=1 abort_on_error=0 ${TSAN_OPTIONS:-}" \
  ctest --test-dir "$ROOT/build-tsan" -L concurrency --output-on-failure \
        -j "$JOBS"

echo "== ci/check.sh: all gates passed =="
