#!/usr/bin/env bash
# Staged correctness gate. Every stage is independently skippable so
# contributors without a sanitizer-capable toolchain can still run the
# tier-1 and lint stages.
#
#   stage 1  tier1   build + full ctest                 (SKIP_TIER1=1 skips)
#   stage 2  asan    ASan+UBSan rebuild, full ctest     (SKIP_ASAN=1 skips)
#   stage 3  tsan    TSan rebuild, `-L concurrency`     (SKIP_TSAN=1 skips)
#   stage 4  lint    repo lint ctest (`-L lint`)        (SKIP_LINT=1 skips)
#   stage 5  bench   wallclock suite --smoke + JSON     (SKIP_BENCH=1 skips)
#   stage 6  robust  `-L robustness` + attack smoke     (SKIP_ROBUSTNESS=1 skips)
#   stage 7  telem   telemetry replay smoke + schema    (SKIP_TELEMETRY=1 skips)
#   stage 8  scenario workload x demuxer matrix smoke   (SKIP_SCENARIO=1 skips)
#   stage 9  tsafety Clang -Wthread-safety build        (SKIP_THREAD_SAFETY=1 skips)
#   stage 10 tidy    clang-tidy over compile_commands   (SKIP_TIDY=1 skips)
#   stage 11 swar    SWAR-forced rebuild of the group-probe/hash fallbacks
#                    + core/fuzz/robustness ctest       (SKIP_SWAR=1 skips)
#   stage 12 resize  wallclock_resize --smoke + bounded-pause
#                    assertion (validate_resize.py)     (SKIP_RESIZE=1 skips)
#   stage 13 sharded wallclock_sharded --smoke + zero-miss/scaling
#                    assertion (validate_sharded.py)    (SKIP_SHARDED=1 skips)
#
# Stages 9 and 10 need LLVM tooling (clang++ / clang-tidy) and skip with a
# notice when it is not installed, so a GCC-only box still passes the gate.
#
# All builds use -DTCPDEMUX_WERROR=ON: a new warning fails the gate.
#
# Usage: ci/check.sh [jobs]      (default: nproc)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"

stage() { echo; echo "== stage $1: $2 =="; }
skipped() { echo; echo "== stage $1: skipped ($2=1) =="; }

if [[ "${SKIP_TIER1:-0}" != "1" ]]; then
  stage tier1 "build + full ctest"
  cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
  cmake --build "$ROOT/build" -j "$JOBS"
  ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"
else
  skipped tier1 SKIP_TIER1
fi

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  stage asan "rebuild under ASan+UBSan, full ctest (zero reports)"
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DTCPDEMUX_WERROR=ON \
        -DTCPDEMUX_SANITIZE="address;undefined"
  cmake --build "$ROOT/build-asan" -j "$JOBS"
  ASAN_OPTIONS="detect_leaks=1 halt_on_error=1 ${ASAN_OPTIONS:-}" \
  UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1 ${UBSAN_OPTIONS:-}" \
    ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"
else
  skipped asan SKIP_ASAN
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  stage tsan "rebuild under ThreadSanitizer, run -L concurrency"
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DTCPDEMUX_WERROR=ON \
        -DTCPDEMUX_SANITIZE=thread
  cmake --build "$ROOT/build-tsan" --target concurrency_tests -j "$JOBS"
  TSAN_OPTIONS="halt_on_error=1 abort_on_error=0 ${TSAN_OPTIONS:-}" \
    ctest --test-dir "$ROOT/build-tsan" -L concurrency --output-on-failure \
          -j "$JOBS"
else
  skipped tsan SKIP_TSAN
fi

if [[ "${SKIP_LINT:-0}" != "1" ]]; then
  stage lint "repo-specific lint (ctest -L lint) + findings export"
  if [[ ! -d "$ROOT/build" ]]; then
    cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
  fi
  ctest --test-dir "$ROOT/build" -L lint --output-on-failure
  # Machine-readable export of the run that just gated (tcpdemux.lint.v1),
  # then validate the export itself so the schema stays a tested contract.
  python3 "$ROOT/tools/lint/check_lint.py" "$ROOT" \
      --json "$ROOT/build/lint_findings.json"
  python3 "$ROOT/tools/lint/validate_findings.py" \
      "$ROOT/build/lint_findings.json"
else
  skipped lint SKIP_LINT
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  stage bench "wallclock suite smoke run + merged JSON export"
  # Smoke output goes to the build tree: the checked-in BENCH_wallclock.json
  # holds full-size numbers and must not be clobbered by smoke-sized runs.
  "$ROOT/ci/bench_smoke.sh" "$JOBS" "$ROOT/build/BENCH_wallclock.smoke.json"
else
  skipped bench SKIP_BENCH
fi

if [[ "${SKIP_ROBUSTNESS:-0}" != "1" ]]; then
  stage robust "hostile-traffic suite (-L robustness) + attack bench smoke"
  if [[ ! -d "$ROOT/build" ]]; then
    cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
  fi
  cmake --build "$ROOT/build" -j "$JOBS" \
        --target robustness_tests wallclock_attack
  ctest --test-dir "$ROOT/build" -L robustness --output-on-failure -j "$JOBS"
  # Alloc-failure soak: every 13th allocation refused across the whole
  # differential fuzz run; invariants must hold and no op may leak.
  TCPDEMUX_FUZZ_ALLOC_EVERY=13 \
    ctest --test-dir "$ROOT/build" -R FuzzOps --output-on-failure -j "$JOBS"
  "$ROOT/build/bench/wallclock_attack" --smoke
else
  skipped robust SKIP_ROBUSTNESS
fi

if [[ "${SKIP_TELEMETRY:-0}" != "1" ]]; then
  stage telem "telemetry replay smoke + JSON schema validation"
  if [[ ! -d "$ROOT/build" ]]; then
    cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
  fi
  cmake --build "$ROOT/build" -j "$JOBS" --target telemetry_dump
  # Short TPC/A replay (200 users) with interval series + sampled latency;
  # the exported JSON must satisfy the tcpdemux.telemetry.v1 schema.
  "$ROOT/build/examples/telemetry_dump" sequent:19:crc32 200 500 \
      "$ROOT/build/telemetry.smoke.json" > /dev/null
  python3 "$ROOT/tools/telemetry/validate_schema.py" \
      "$ROOT/build/telemetry.smoke.json"
else
  skipped telem SKIP_TELEMETRY
fi

if [[ "${SKIP_SCENARIO:-0}" != "1" ]]; then
  stage scenario "workload x demuxer scenario matrix smoke + validation"
  if [[ ! -d "$ROOT/build" ]]; then
    cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
  fi
  cmake --build "$ROOT/build" -j "$JOBS" --target wallclock_scenarios
  # One-rep slice of the full matrix (all 7 workload kinds, including a
  # self-synthesized pcap row, against every demuxer family). The validator
  # enforces a complete cross product with zero replay misses.
  "$ROOT/build/bench/wallclock_scenarios" --smoke \
      --json "$ROOT/build/scenario_matrix.smoke.json"
  python3 "$ROOT/tools/scenarios/validate_matrix.py" \
      "$ROOT/build/scenario_matrix.smoke.json"
else
  skipped scenario SKIP_SCENARIO
fi

if [[ "${SKIP_THREAD_SAFETY:-0}" != "1" ]]; then
  stage tsafety "Clang -Wthread-safety analysis + negative-compile harness"
  if command -v clang++ > /dev/null 2>&1; then
    # -Werror=thread-safety build of the whole tree, plus the configure-time
    # tests/static try_compile harness proving the annotations catch the
    # planted violations (and that the positive control stays clean).
    cmake -B "$ROOT/build-tsafety" -S "$ROOT" -DTCPDEMUX_WERROR=ON \
          -DCMAKE_CXX_COMPILER=clang++ -DTCPDEMUX_THREAD_SAFETY=ON
    cmake --build "$ROOT/build-tsafety" -j "$JOBS"
  else
    echo "clang++ not installed: thread-safety analysis needs Clang; skipping"
  fi
else
  skipped tsafety SKIP_THREAD_SAFETY
fi

if [[ "${SKIP_TIDY:-0}" != "1" ]]; then
  stage tidy "clang-tidy (checks from .clang-tidy) over src/"
  if command -v clang-tidy > /dev/null 2>&1; then
    cmake -B "$ROOT/build-tidy" -S "$ROOT" \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Sources only: headers are covered through their includers via
    # HeaderFilterRegex in .clang-tidy.
    find "$ROOT/src" -name '*.cc' -print0 \
      | xargs -0 clang-tidy -p "$ROOT/build-tidy" --quiet --warnings-as-errors='*'
  else
    echo "clang-tidy not installed: skipping"
  fi
else
  skipped tidy SKIP_TIDY
fi

if [[ "${SKIP_SWAR:-0}" != "1" ]]; then
  stage swar "SWAR-forced rebuild (no vector intrinsics) + demuxer suites"
  # The portable fallback must be behaviourally identical to the SIMD
  # path, not merely compile: rebuild with every vector backend disabled
  # and run the suites that exercise group probing, the cuckoo table, and
  # the hashers (the crc32c software table is always tested against the
  # hardware instruction in-process; this covers the group-probe shim).
  cmake -B "$ROOT/build-swar" -S "$ROOT" -DTCPDEMUX_WERROR=ON \
        -DTCPDEMUX_FORCE_SWAR=ON
  cmake --build "$ROOT/build-swar" -j "$JOBS" \
        --target core_tests net_tests fuzz_ops_test robustness_tests
  # Run the binaries directly: only these four targets exist in this tree,
  # so a full ctest invocation would trip over the undiscovered suites.
  for t in core_tests net_tests fuzz_ops_test robustness_tests; do
    "$ROOT/build-swar/tests/$t"
  done
else
  skipped swar SKIP_SWAR
fi

if [[ "${SKIP_RESIZE:-0}" != "1" ]]; then
  stage resize "incremental-resize pause smoke + bounded-pause assertion"
  if [[ ! -d "$ROOT/build" ]]; then
    cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
  fi
  cmake --build "$ROOT/build" -j "$JOBS" --target wallclock_resize
  # Smoke-size growth sweep (64k -> 128k per backend, baseline vs
  # incremental); the validator asserts the incremental worst-case pause
  # stays a fixed fraction of the stop-the-world spike and that lookup
  # p99 stays flat through the doubling.
  "$ROOT/build/bench/wallclock_resize" --smoke \
      --json "$ROOT/build/wallclock_resize.smoke.json"
  python3 "$ROOT/tools/bench/validate_resize.py" \
      "$ROOT/build/wallclock_resize.smoke.json"
else
  skipped resize SKIP_RESIZE
fi

if [[ "${SKIP_SHARDED:-0}" != "1" ]]; then
  stage sharded "sharded receive path smoke + zero-miss/scaling assertion"
  if [[ ! -d "$ROOT/build" ]]; then
    cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
  fi
  cmake --build "$ROOT/build" -j "$JOBS" --target wallclock_sharded
  # Per-core sharded fleet vs global-lock/striped/RCU head-to-head, plus
  # a churn replay through a deliberately damaged NIC indirection table;
  # the validator hard-asserts lost == 0 and duplicate_inserts == 0 under
  # mis-steering, and that sharding stays competitive with the best
  # shared-structure baseline at the top thread count.
  "$ROOT/build/bench/wallclock_sharded" --smoke \
      --json "$ROOT/build/wallclock_sharded.smoke.json"
  python3 "$ROOT/tools/bench/validate_sharded.py" \
      "$ROOT/build/wallclock_sharded.smoke.json"
else
  skipped sharded SKIP_SHARDED
fi

echo
echo "== ci/check.sh: all requested stages passed =="
