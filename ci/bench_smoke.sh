#!/usr/bin/env bash
# Bench smoke: builds the wallclock suite, runs every binary in --smoke
# mode (minimum sizes, minimum reps — this checks "runs and emits sane
# records", not performance), and merges the per-binary JSON exports into
# one JSON array. Default output is BENCH_wallclock.json at the repo root;
# ci/check.sh overrides it into the build tree so smoke-sized numbers never
# clobber the checked-in full-size export.
#
# Usage: ci/bench_smoke.sh [jobs] [output.json]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"
OUT="${2:-$ROOT/BENCH_wallclock.json}"

BENCHES=(wallclock_hash wallclock_lookup wallclock_batch wallclock_parallel
         wallclock_attack)

cmake -B "$ROOT/build" -S "$ROOT" -DTCPDEMUX_WERROR=ON
cmake --build "$ROOT/build" -j "$JOBS" --target "${BENCHES[@]}"

TMPDIR_JSON="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_JSON"' EXIT

for b in "${BENCHES[@]}"; do
  echo "== bench smoke: $b =="
  "$ROOT/build/bench/$b" --smoke --json "$TMPDIR_JSON/$b.json"
done

# --sizes suffix handling: "2k" must parse to a 2000-user row (the
# multi-million sweeps are spelled "--sizes 2m"; a regression here would
# silently bench the wrong population).
echo "== bench smoke: --sizes suffix parse =="
"$ROOT/build/bench/wallclock_lookup" --smoke --sizes 2k \
    --json "$TMPDIR_JSON/sizes_suffix.json"
python3 - "$TMPDIR_JSON/sizes_suffix.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    records = json.load(f)
users = {r["metrics"]["users"] for r in records
         if "users" in r.get("metrics", {})}
if users != {2000}:
    sys.exit(f"--sizes 2k parsed to populations {sorted(users)}, not 2000")
print("--sizes suffix parse OK")
EOF
rm -f "$TMPDIR_JSON/sizes_suffix.json"

# Each export is a JSON array; merge them into one array, then check the
# backend roster: every demuxer family the registry grew must show up in
# the merged export, or a bench spec list silently went stale.
python3 - "$OUT" "$TMPDIR_JSON"/*.json <<'EOF'
import json, sys
out, *parts = sys.argv[1:]
records = []
for p in parts:
    with open(p) as f:
        records.extend(json.load(f))
with open(out, "w") as f:
    json.dump(records, f, indent=1)
    f.write("\n")
print(f"merged {len(records)} records -> {out}")

families = {r["name"].split(":")[0] for r in records if "name" in r}
required = {"flat", "flat16", "cuckoo", "sequent", "connection_id"}
missing = sorted(required - families)
if missing:
    sys.exit(f"bench export is missing backend families: {missing}")
hashes = {r["name"] for r in records if r.get("bench") == "wallclock_hash"}
if not any("crc32c" in h for h in hashes):
    sys.exit("wallclock_hash export has no crc32c row")
print(f"backend roster OK: {sorted(families)}")
EOF
