// Modulo-2^32 sequence-number arithmetic (RFC 793 §3.3).
#ifndef TCPDEMUX_TCP_SEQ_MATH_H_
#define TCPDEMUX_TCP_SEQ_MATH_H_

#include <cstdint>

namespace tcpdemux::tcp {

/// a < b in sequence space.
[[nodiscard]] constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}

/// a <= b in sequence space.
[[nodiscard]] constexpr bool seq_leq(std::uint32_t a,
                                     std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) <= 0;
}

/// a > b in sequence space.
[[nodiscard]] constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) > 0;
}

/// a >= b in sequence space.
[[nodiscard]] constexpr bool seq_geq(std::uint32_t a,
                                     std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) >= 0;
}

/// True if `seq` falls within the window [lo, lo+size).
[[nodiscard]] constexpr bool seq_in_window(std::uint32_t seq, std::uint32_t lo,
                                           std::uint32_t size) noexcept {
  return size > 0 && seq_geq(seq, lo) && seq_lt(seq, lo + size);
}

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_SEQ_MATH_H_
