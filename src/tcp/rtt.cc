#include "tcp/rtt.h"

#include <algorithm>
#include <cstdlib>

namespace tcpdemux::tcp {

void RttEstimator::add_sample(std::uint32_t rtt_us) noexcept {
  if (!has_samples_) {
    // RFC 6298 (2.2): SRTT <- R, RTTVAR <- R/2.
    srtt_us_ = rtt_us;
    rttvar_us_ = rtt_us / 2;
    has_samples_ = true;
  } else {
    // RFC 6298 (2.3): RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R'|,
    //                 SRTT   <- 7/8 SRTT + 1/8 R'.
    const std::uint32_t abs_err =
        srtt_us_ > rtt_us ? srtt_us_ - rtt_us : rtt_us - srtt_us_;
    rttvar_us_ = (3 * rttvar_us_ + abs_err) / 4;
    srtt_us_ = (7 * srtt_us_ + rtt_us) / 8;
  }
  // RTO <- SRTT + max(G, 4 * RTTVAR).
  rto_us_ = srtt_us_ +
            std::max(config_.clock_granularity_us, 4 * rttvar_us_);
  clamp_rto();
}

void RttEstimator::on_timeout() noexcept {
  rto_us_ = rto_us_ >= config_.max_rto_us / 2 ? config_.max_rto_us
                                              : rto_us_ * 2;
  clamp_rto();
}

void RttEstimator::clamp_rto() noexcept {
  rto_us_ = std::clamp(rto_us_, config_.min_rto_us, config_.max_rto_us);
}

void update_pcb_rtt(core::Pcb& pcb, std::uint32_t rtt_sample_us,
                    const RttConfig& config) noexcept {
  // Same arithmetic as RttEstimator, but persisted in the PCB fields
  // (srtt_us == 0 marks "no samples yet").
  if (pcb.srtt_us == 0) {
    pcb.srtt_us = rtt_sample_us;
    pcb.rttvar_us = rtt_sample_us / 2;
  } else {
    const std::uint32_t abs_err = pcb.srtt_us > rtt_sample_us
                                      ? pcb.srtt_us - rtt_sample_us
                                      : rtt_sample_us - pcb.srtt_us;
    pcb.rttvar_us = (3 * pcb.rttvar_us + abs_err) / 4;
    pcb.srtt_us = (7 * pcb.srtt_us + rtt_sample_us) / 8;
  }
  pcb.rto_us = std::clamp(
      pcb.srtt_us +
          std::max(config.clock_granularity_us, 4 * pcb.rttvar_us),
      config.min_rto_us, config.max_rto_us);
}

}  // namespace tcpdemux::tcp
