#include "tcp/udp_table.h"

#include "net/byte_order.h"

namespace tcpdemux::tcp {

bool UdpTable::bind(net::Ipv4Addr addr, std::uint16_t port) {
  for (const BoundSocket& s : bound_) {
    if (s.addr == addr && s.port == port) return false;
  }
  bound_.push_back(BoundSocket{addr, port, 0, 0});
  return true;
}

UdpTable::DeliverResult UdpTable::deliver_wire(
    std::span<const std::uint8_t> wire) {
  DeliverResult result;
  const auto ip = net::Ipv4Header::parse(wire);
  if (!ip || ip->protocol != 17) return result;
  if (ip->more_fragments || ip->fragment_offset != 0) return result;
  const auto datagram =
      wire.subspan(net::Ipv4Header::kSize,
                   ip->total_length - net::Ipv4Header::kSize);
  const auto udp = net::UdpHeader::parse(datagram);
  if (!udp) return result;
  // RFC 768: a zero wire checksum means "not computed". A present
  // checksum must verify — recomputing over the datagram (embedded
  // checksum included) yields complement 0, which udp_checksum's
  // zero-substitution reports as 0xffff.
  const std::uint16_t wire_sum = net::load_be16(datagram.data() + 6);
  if (wire_sum != 0 &&
      net::udp_checksum(ip->src, ip->dst, datagram) != 0xffff) {
    return result;
  }

  const net::FlowKey key{ip->dst, udp->dst_port, ip->src, udp->src_port};
  const auto lookup = demuxer_->lookup(key, core::SegmentKind::kData);
  result.pcbs_examined = lookup.examined;
  if (lookup.pcb != nullptr) {
    ++lookup.pcb->segs_in;
    lookup.pcb->bytes_in += udp->length - net::UdpHeader::kSize;
    result.status = Delivery::kConnected;
    result.pcb = lookup.pcb;
    return result;
  }

  // Bound-socket fallback: exact address beats wildcard.
  BoundSocket* best = nullptr;
  for (BoundSocket& s : bound_) {
    if (s.port != udp->dst_port) continue;
    if (s.addr == ip->dst) {
      best = &s;
      break;
    }
    if (s.addr.is_any() && best == nullptr) best = &s;
  }
  if (best != nullptr) {
    ++best->datagrams;
    best->bytes += udp->length - net::UdpHeader::kSize;
    result.status = Delivery::kBound;
    return result;
  }

  ++unreachable_;
  result.status = Delivery::kUnreachable;
  return result;
}

}  // namespace tcpdemux::tcp
