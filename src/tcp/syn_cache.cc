#include "tcp/syn_cache.h"

#include <stdexcept>

namespace tcpdemux::tcp {

SynCache::SynCache(Options options) : options_(options) {
  if (options_.buckets == 0 || options_.bucket_limit == 0) {
    throw std::invalid_argument("SynCache: buckets and limit must be >= 1");
  }
  buckets_.resize(options_.buckets);
}

const SynCache::Entry* SynCache::add(const net::FlowKey& key,
                                     std::uint32_t irs, std::uint32_t iss,
                                     double now) {
  Bucket& bucket = bucket_of(key);
  for (const Entry& e : bucket) {
    if (e.key == key) {
      ++stats_.duplicates;
      return &e;
    }
  }
  if (bucket.size() >= options_.bucket_limit) {
    bucket.pop_front();  // evict the oldest embryo in this bucket
    --size_;
    ++stats_.evicted;
  }
  bucket.push_back(Entry{key, irs, iss, now});
  ++size_;
  ++stats_.added;
  return &bucket.back();
}

const SynCache::Entry* SynCache::find(const net::FlowKey& key) const {
  const Bucket& bucket = bucket_of(key);
  for (const Entry& e : bucket) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

bool SynCache::take(const net::FlowKey& key, Entry* out) {
  Bucket& bucket = bucket_of(key);
  for (auto it = bucket.begin(); it != bucket.end(); ++it) {
    if (it->key == key) {
      if (out != nullptr) *out = *it;
      bucket.erase(it);
      --size_;
      ++stats_.promoted;
      return true;
    }
  }
  return false;
}

std::size_t SynCache::expire(double now) {
  std::size_t dropped = 0;
  for (Bucket& bucket : buckets_) {
    // Entries are in arrival order, so expired ones cluster at the front.
    while (!bucket.empty() &&
           now - bucket.front().created > options_.timeout) {
      bucket.pop_front();
      --size_;
      ++dropped;
    }
  }
  stats_.expired += dropped;
  return dropped;
}

}  // namespace tcpdemux::tcp
