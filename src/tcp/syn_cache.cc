#include "tcp/syn_cache.h"

#include <stdexcept>

#include "core/fault_inject.h"

namespace tcpdemux::tcp {

SynCache::SynCache(Options options) : options_(options) {
  if (options_.buckets == 0 || options_.bucket_limit == 0) {
    throw std::invalid_argument("SynCache: buckets and limit must be >= 1");
  }
  buckets_.resize(options_.buckets);
}

const SynCache::Entry* SynCache::add(const net::FlowKey& key,
                                     std::uint32_t irs, std::uint32_t iss,
                                     double now) {
  Bucket& bucket = bucket_of(key);
  for (const Entry& e : bucket) {
    if (e.key == key) {
      ++stats_.duplicates;
      return &e;
    }
  }
  if (core::FaultInjector::instance().poll_alloc()) {
    // Allocation pressure gets the same answer as the global cap: the
    // globally oldest embryo is the least defensible ~40 bytes in the
    // cache, so shed it to free room and retry the admission once. A
    // persistent failure (or an already-empty cache) still refuses — but
    // a transient one must not, or a memory spike silently disables the
    // handshake path while old embryos sit on the budget.
    ++stats_.alloc_failed;
    if (size_ == 0) return nullptr;
    shed_oldest();
    if (core::FaultInjector::instance().poll_alloc()) {
      ++stats_.alloc_failed;
      return nullptr;
    }
  }
  if (options_.max_entries != 0 && size_ >= options_.max_entries) {
    shed_oldest();
  }
  if (bucket.size() >= options_.bucket_limit) {
    bucket.pop_front();  // evict the oldest embryo in this bucket
    --size_;
    ++stats_.evicted;
    telemetry_.on_erase();
  }
  bucket.push_back(Entry{key, irs, iss, now});
  ++size_;
  ++stats_.added;
  telemetry_.on_insert();
  return &bucket.back();
}

void SynCache::shed_oldest() {
  // Embryos are in arrival order within each bucket, so the globally
  // oldest is some bucket's front. One scan over bucket heads — H is
  // small and this only runs at the cap, i.e. already under attack.
  Bucket* victim = nullptr;
  for (Bucket& b : buckets_) {
    if (b.empty()) continue;
    if (victim == nullptr || b.front().created < victim->front().created) {
      victim = &b;
    }
  }
  if (victim == nullptr) return;  // cap is 0-sized relative to occupancy
  victim->pop_front();
  --size_;
  ++stats_.shed;
  // Unlike the demuxers' shed (a refused insert), this removes a live
  // embryo: it is both an erase (ledger) and a shed (reason).
  telemetry_.on_erase();
  telemetry_.on_shed();
}

const SynCache::Entry* SynCache::find(const net::FlowKey& key) const {
  const Bucket& bucket = bucket_of(key);
  std::uint32_t examined = 0;
  for (const Entry& e : bucket) {
    ++examined;
    if (e.key == key) {
      telemetry_.on_lookup(examined, /*found=*/true, /*cache_hit=*/false);
      return &e;
    }
  }
  telemetry_.on_lookup(examined, /*found=*/false, /*cache_hit=*/false);
  return nullptr;
}

bool SynCache::take(const net::FlowKey& key, Entry* out) {
  Bucket& bucket = bucket_of(key);
  for (auto it = bucket.begin(); it != bucket.end(); ++it) {
    if (it->key == key) {
      if (out != nullptr) *out = *it;
      bucket.erase(it);
      --size_;
      ++stats_.promoted;
      telemetry_.on_erase();
      return true;
    }
  }
  return false;
}

std::size_t SynCache::expire(double now) {
  std::size_t dropped = 0;
  for (Bucket& bucket : buckets_) {
    // Entries are in arrival order, so expired ones cluster at the front.
    while (!bucket.empty() &&
           now - bucket.front().created > options_.timeout) {
      bucket.pop_front();
      --size_;
      ++dropped;
      telemetry_.on_erase();
    }
  }
  stats_.expired += dropped;
  return dropped;
}

}  // namespace tcpdemux::tcp
