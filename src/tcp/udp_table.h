// UDP demultiplexing: the transport Partridge & Pink actually proposed
// their cache for ("A faster UDP", [PP91]).
//
// UDP needs the same 96-bit-key lookup as TCP — connected sockets carry a
// full 4-tuple, bound-only sockets a wildcard foreign half — so this table
// reuses the paper's demultiplexers unchanged. Arriving datagrams resolve
// exact-match first (connected sockets), then fall back to the bound-
// socket list, mirroring udp_input().
#ifndef TCPDEMUX_TCP_UDP_TABLE_H_
#define TCPDEMUX_TCP_UDP_TABLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/demux_registry.h"
#include "core/demuxer.h"
#include "net/headers.h"
#include "net/udp.h"

namespace tcpdemux::tcp {

class UdpTable {
 public:
  enum class Delivery : std::uint8_t {
    kConnected,   ///< matched a connected socket (exact 4-tuple)
    kBound,       ///< matched a bound socket (wildcard foreign half)
    kUnreachable, ///< no socket; a real stack would emit ICMP
    kParseError,
  };

  struct DeliverResult {
    Delivery status = Delivery::kParseError;
    core::Pcb* pcb = nullptr;           ///< connected-socket PCB, if any
    std::uint32_t pcbs_examined = 0;
  };

  struct BoundSocket {
    net::Ipv4Addr addr;  ///< may be wildcard
    std::uint16_t port = 0;
    std::uint64_t datagrams = 0;
    std::uint64_t bytes = 0;
  };

  explicit UdpTable(const core::DemuxConfig& demux_config)
      : demuxer_(core::make_demuxer(demux_config)) {}

  /// Binds addr:port (addr may be 0.0.0.0). False if already bound.
  bool bind(net::Ipv4Addr addr, std::uint16_t port);

  /// Connects a socket to a fixed peer: exact-match fast path thereafter.
  core::Pcb* connect(const net::FlowKey& key) {
    return demuxer_->insert(key);
  }

  bool disconnect(const net::FlowKey& key) { return demuxer_->erase(key); }

  /// Delivers a wire-format UDP/IPv4 packet.
  DeliverResult deliver_wire(std::span<const std::uint8_t> wire);

  [[nodiscard]] core::Demuxer& demuxer() noexcept { return *demuxer_; }
  [[nodiscard]] std::size_t bound_count() const noexcept {
    return bound_.size();
  }
  [[nodiscard]] const std::vector<BoundSocket>& bound() const noexcept {
    return bound_;
  }
  [[nodiscard]] std::uint64_t unreachable() const noexcept {
    return unreachable_;
  }

 private:
  std::unique_ptr<core::Demuxer> demuxer_;
  std::vector<BoundSocket> bound_;
  std::uint64_t unreachable_ = 0;
};

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_UDP_TABLE_H_
