#include "tcp/lan_host.h"

namespace tcpdemux::tcp {

void LanHost::receive_frame(std::vector<std::uint8_t> frame) {
  const double now = clock_ ? clock_() : 0.0;
  if (const auto reply = arp_.handle_frame(frame, now)) {
    transmit_(std::move(*reply));
  }
  flush_pending();
  const auto header = net::EthernetHeader::parse(frame);
  if (!header) return;
  if (!(header->dst == mac_) && !header->dst.is_broadcast()) {
    return;  // flooded unicast for another host
  }
  if (const auto inner = net::ethernet_decapsulate_ipv4(frame)) {
    table_.deliver_wire(*inner);
  }
}

void LanHost::send_ipv4(net::Ipv4Addr next_hop,
                        std::vector<std::uint8_t> datagram) {
  const double now = clock_ ? clock_() : 0.0;
  const auto dst_mac = arp_.resolve(next_hop, now);
  if (!dst_mac) {
    pending_.push_back({next_hop, std::move(datagram)});
    transmit_(arp_.make_request(next_hop));
    return;
  }
  transmit_(net::ethernet_encapsulate(*dst_mac, mac_, datagram));
}

void LanHost::flush_pending() {
  const double now = clock_ ? clock_() : 0.0;
  for (std::size_t i = 0; i < pending_.size();) {
    const auto dst_mac = arp_.resolve(pending_[i].next_hop, now);
    if (dst_mac) {
      transmit_(net::ethernet_encapsulate(*dst_mac, mac_,
                                          pending_[i].datagram));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

}  // namespace tcpdemux::tcp
