// Host: the complete receive pipeline — IPv4 reassembly in front of the
// socket table.
//
//   wire bytes -> Reassembler (fragments) -> SocketTable (demux + TCP)
//
// This is the composition a driver's input routine performs; the
// fragmented-query tests drive it end to end. Everything SocketTable
// exposes is reachable through table().
#ifndef TCPDEMUX_TCP_HOST_H_
#define TCPDEMUX_TCP_HOST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "net/fragment.h"
#include "tcp/socket_table.h"

namespace tcpdemux::tcp {

class Host {
 public:
  Host(const core::DemuxConfig& demux_config,
       SocketTable::TransmitFn transmit,
       net::Reassembler::Options reassembly = {})
      : table_(demux_config, std::move(transmit)),
        reassembler_(reassembly) {}

  /// Receives raw bytes from the wire at time `now`. Fragments are held
  /// for reassembly; complete datagrams flow into the socket table.
  /// Returns the delivery result, or a kParseError-status result while a
  /// datagram is still incomplete (pending() tells the two apart).
  SocketTable::DeliverResult input(std::span<const std::uint8_t> wire,
                                   double now) {
    const auto datagram = reassembler_.offer(wire, now);
    if (!datagram.has_value()) return SocketTable::DeliverResult{};
    return table_.deliver_wire(*datagram);
  }

  /// Drops reassembly state older than the timeout (call periodically).
  std::size_t expire_fragments(double now) {
    return reassembler_.expire(now);
  }

  [[nodiscard]] SocketTable& table() noexcept { return table_; }
  [[nodiscard]] const SocketTable& table() const noexcept { return table_; }
  [[nodiscard]] std::size_t pending_fragments() const noexcept {
    return reassembler_.pending_datagrams();
  }

 private:
  SocketTable table_;
  net::Reassembler reassembler_;
};

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_HOST_H_
