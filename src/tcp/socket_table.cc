#include "tcp/socket_table.h"

#include <algorithm>

#include "tcp/rtt.h"

namespace tcpdemux::tcp {

using core::Pcb;
using net::TcpFlag;

SocketTable::SocketTable(const core::DemuxConfig& demux_config,
                         TransmitFn transmit)
    : demuxer_(core::make_demuxer(demux_config)),
      transmit_(std::move(transmit)),
      machine_([this](Pcb& pcb, const Emit& emit) {
        transmit_segment(pcb, emit);
      }) {}

bool SocketTable::listen(net::Ipv4Addr addr, std::uint16_t port) {
  for (const Listener& l : listeners_) {
    if (l.addr == addr && l.port == port) return false;
  }
  listeners_.push_back(Listener{addr, port});
  return true;
}

Pcb* SocketTable::connect(const net::FlowKey& key) {
  Pcb* pcb = demuxer_->insert(key);
  if (pcb == nullptr) return nullptr;
  machine_.open_active(*pcb);
  return pcb;
}

Pcb* SocketTable::accept() {
  if (accept_queue_.empty()) return nullptr;
  Pcb* pcb = accept_queue_.front();
  accept_queue_.erase(accept_queue_.begin());
  return pcb;
}

bool SocketTable::erase(const net::FlowKey& key) {
  Pcb* pcb = find(key);
  if (pcb != nullptr) {
    accept_queue_.erase(
        std::remove(accept_queue_.begin(), accept_queue_.end(), pcb),
        accept_queue_.end());
    retransmit_.erase(pcb);
    closing_since_.erase(pcb);
  }
  return demuxer_->erase(key);
}

std::size_t SocketTable::reap_closed(double msl) {
  if (!clock_) return 0;
  const double now = clock_();
  std::vector<net::FlowKey> victims;
  for (const auto& [pcb, since] : closing_since_) {
    const bool expired = pcb->state == core::TcpState::kClosed ||
                         (pcb->state == core::TcpState::kTimeWait &&
                          now - since >= 2.0 * msl);
    if (expired) victims.push_back(pcb->key);
  }
  std::size_t reaped = 0;
  for (const net::FlowKey& key : victims) {
    if (erase(key)) ++reaped;
  }
  return reaped;
}

const SocketTable::Listener* SocketTable::find_listener(
    const net::FlowKey& packet_key) const noexcept {
  const Listener* best = nullptr;
  for (const Listener& l : listeners_) {
    if (l.port != packet_key.local_port) continue;
    if (l.addr == packet_key.local_addr) return &l;  // exact beats wildcard
    if (l.addr.is_any() && best == nullptr) best = &l;
  }
  return best;
}

SocketTable::DeliverResult SocketTable::deliver_wire(
    std::span<const std::uint8_t> wire) {
  const auto packet = net::Packet::parse(wire);
  if (!packet) {
    ++counters_.parse_errors;
    return DeliverResult{};
  }
  return deliver(*packet);
}

SocketTable::DeliverResult SocketTable::deliver(const net::Packet& packet) {
  DeliverResult result;
  const net::FlowKey key = packet.receiver_flow_key();

  // Pure ACKs probe the send-side cache first (paper §3.3 footnote 5);
  // anything carrying payload or SYN/FIN counts as data.
  const bool pure_ack = packet.payload.empty() &&
                        packet.tcp.has(TcpFlag::kAck) &&
                        !packet.tcp.has(TcpFlag::kSyn) &&
                        !packet.tcp.has(TcpFlag::kFin);
  const auto lookup = demuxer_->lookup(
      key, pure_ack ? core::SegmentKind::kAck : core::SegmentKind::kData);
  result.pcbs_examined = lookup.examined;

  if (lookup.pcb != nullptr) {
    const core::TcpState before = lookup.pcb->state;
    machine_.process(*lookup.pcb, packet.tcp,
                     static_cast<std::uint32_t>(packet.payload.size()));
    if (before == core::TcpState::kSynReceived &&
        lookup.pcb->state == core::TcpState::kEstablished) {
      accept_queue_.push_back(lookup.pcb);
    }
    if (clock_ && lookup.pcb->state != before &&
        (lookup.pcb->state == core::TcpState::kTimeWait ||
         lookup.pcb->state == core::TcpState::kClosed)) {
      closing_since_.emplace(lookup.pcb, clock_());
    }
    note_acked(*lookup.pcb);
    ++counters_.delivered;
    result.status = Delivery::kDelivered;
    result.pcb = lookup.pcb;
    return result;
  }

  if (packet.tcp.has(TcpFlag::kSyn) && !packet.tcp.has(TcpFlag::kAck) &&
      find_listener(key) != nullptr) {
    if (syn_cache_) {
      // Park the embryo; no PCB until the handshake completes. A
      // retransmitted SYN finds its existing entry and reuses its ISS.
      const SynCache::Entry* entry = syn_cache_->add(
          key, packet.tcp.seq, machine_.next_iss(), clock_ ? clock_() : 0.0);
      net::PacketBuilder builder;
      builder.from({key.local_addr, key.local_port})
          .to({key.foreign_addr, key.foreign_port})
          .seq(entry->iss)
          .ack_seq(entry->irs + 1)
          .flags(TcpFlag::kSyn);
      static thread_local core::Pcb embryo_pcb{net::FlowKey{}, ~0ULL - 1};
      embryo_pcb.key = key;
      transmit_(builder.build(), embryo_pcb);
      result.status = Delivery::kSynCached;
      return result;
    }
    Pcb* child = demuxer_->insert(key);
    if (child != nullptr) {
      machine_.open_passive(*child, packet.tcp);
      ++counters_.new_connections;
      result.status = Delivery::kNewConnection;
      result.pcb = child;
      return result;
    }
  }

  // A pure ACK that matched no PCB may complete a SYN-cached handshake.
  if (syn_cache_ && pure_ack) {
    SynCache::Entry entry;
    if (syn_cache_->find(key) != nullptr && syn_cache_->take(key, &entry)) {
      if (packet.tcp.ack == entry.iss + 1 &&
          packet.tcp.seq == entry.irs + 1) {
        Pcb* child = demuxer_->insert(key);
        if (child != nullptr) {
          child->iss = entry.iss;
          child->irs = entry.irs;
          child->snd_una = entry.iss + 1;
          child->snd_nxt = entry.iss + 1;
          child->rcv_nxt = entry.irs + 1;
          child->state = core::TcpState::kEstablished;
          ++child->segs_in;
          accept_queue_.push_back(child);
          ++counters_.new_connections;
          result.status = Delivery::kNewConnection;
          result.pcb = child;
          return result;
        }
      }
      // Bad ACK for an embryo: fall through to the RST path.
    }
  }

  transmit_rst(packet);
  ++counters_.resets_sent;
  result.status = Delivery::kReset;
  return result;
}

void SocketTable::note_acked(Pcb& pcb) {
  if (!clock_) return;
  const auto it = retransmit_.find(&pcb);
  if (it == retransmit_.end()) return;
  const std::size_t outstanding_before = it->second.size();
  const auto sample = it->second.on_ack(pcb.snd_una, clock_());
  if (it->second.size() < outstanding_before) {
    pcb.dupacks = 0;
    if (sample.has_value() && *sample >= 0.0) {
      update_pcb_rtt(pcb, static_cast<std::uint32_t>(*sample * 1e6));
    } else {
      // Forward progress acknowledged via a retransmission: Karn forbids a
      // sample, but the backed-off RTO may return to the estimator's value
      // — or the 1 s default when no sample ever succeeded — so recovery
      // keeps a steady cadence (RFC 6298 §5.7's allowance).
      pcb.rto_us =
          pcb.srtt_us != 0
              ? std::clamp(pcb.srtt_us + std::max(1000u, 4 * pcb.rttvar_us),
                           1'000'000u, 60'000'000u)
              : 1'000'000u;
    }
  } else if (!it->second.empty()) {
    // A non-advancing ACK while data is outstanding: a duplicate. Three in
    // a row trigger fast retransmit of the oldest segment (RFC 5681 §3.2,
    // without the congestion-window machinery).
    if (++pcb.dupacks >= 3) {
      pcb.dupacks = 0;
      if (const auto segment = it->second.take_front(clock_())) {
        retransmit_segment(pcb, *segment);
      }
    }
  }
  if (it->second.empty()) retransmit_.erase(it);
}

void SocketTable::retransmit_segment(Pcb& pcb,
                                     const RetransmitQueue::Segment& segment) {
  // Rebuild the segment; the receiver's cumulative ACK logic treats a
  // duplicate seq as an old friend.
  net::PacketBuilder builder;
  builder.from({pcb.key.local_addr, pcb.key.local_port})
      .to({pcb.key.foreign_addr, pcb.key.foreign_port})
      .seq(segment.seq)
      .ack_seq(pcb.rcv_nxt)
      .flags(TcpFlag::kPsh)
      .window(pcb.rcv_wnd)
      .payload_size(segment.len);
  demuxer_->note_sent(&pcb);
  transmit_(builder.build(), pcb);
  ++pcb.segs_out;
  ++counters_.retransmissions;
}

std::size_t SocketTable::poll_retransmits() {
  if (!clock_) return 0;
  const double now = clock_();
  std::size_t resent = 0;
  for (auto& [pcb, queue] : retransmit_) {
    const double rto = pcb->rto_us / 1e6;
    // Classic RTO behavior: resend only the oldest outstanding segment and
    // back the timer off once; the cumulative ACK it provokes re-arms
    // recovery for the rest (retransmitting the whole queue would mark
    // every segment with Karn's bit and starve the RTT estimator forever).
    if (const auto segment = queue.take_expired(now, rto)) {
      retransmit_segment(*pcb, *segment);
      ++resent;
      pcb->rto_us = std::min<std::uint32_t>(pcb->rto_us * 2, 60'000'000u);
    }
  }
  return resent;
}

void SocketTable::transmit_segment(Pcb& pcb, const Emit& emit) {
  net::PacketBuilder builder;
  builder.from({pcb.key.local_addr, pcb.key.local_port})
      .to({pcb.key.foreign_addr, pcb.key.foreign_port})
      .seq(emit.seq)
      .flags(emit.flags)
      .window(pcb.rcv_wnd)
      .payload_size(emit.payload_len);
  if ((emit.flags & static_cast<std::uint8_t>(TcpFlag::kAck)) != 0) {
    builder.ack_seq(emit.ack);
  }
  if (clock_ && emit.payload_len > 0) {
    retransmit_[&pcb].on_send(emit.seq, emit.payload_len, clock_());
  }
  demuxer_->note_sent(&pcb);
  transmit_(builder.build(), pcb);
}

void SocketTable::transmit_rst(const net::Packet& packet) {
  // RFC 793: if the incoming segment has an ACK, the RST takes its seq from
  // the segment's ack field; otherwise seq 0 with ACK covering the segment.
  const net::FlowKey key = packet.receiver_flow_key();
  net::PacketBuilder builder;
  builder.from({key.local_addr, key.local_port})
      .to({key.foreign_addr, key.foreign_port})
      .flags(TcpFlag::kRst);
  if (packet.tcp.has(TcpFlag::kAck)) {
    builder.seq(packet.tcp.ack);
  } else {
    const std::uint32_t syn_fin =
        (packet.tcp.has(TcpFlag::kSyn) ? 1 : 0) +
        (packet.tcp.has(TcpFlag::kFin) ? 1 : 0);
    builder.seq(0).ack_seq(packet.tcp.seq +
                           static_cast<std::uint32_t>(packet.payload.size()) +
                           syn_fin);
  }
  // A RST belongs to no PCB; report it against a synthetic closed one.
  static thread_local Pcb rst_pcb{net::FlowKey{}, ~0ULL};
  rst_pcb.key = key;
  transmit_(builder.build(), rst_pcb);
}

}  // namespace tcpdemux::tcp
