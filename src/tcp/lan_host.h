// LanHost: a complete simulated LAN endpoint — NIC framing, ARP
// resolution with an output hold queue, and the TCP socket table.
//
//   frames in  -> ARP handling -> decapsulate -> SocketTable::deliver
//   IPv4 out   -> ARP resolve (queue + request on miss) -> encapsulate
//
// This is the composition a real driver + stack performs, packaged so
// examples and integration tests can stand up switched-LAN topologies in
// a few lines (see examples/lan_simulation.cpp and tests/integration/
// lan_test.cc).
#ifndef TCPDEMUX_TCP_LAN_HOST_H_
#define TCPDEMUX_TCP_LAN_HOST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/arp.h"
#include "net/ethernet.h"
#include "tcp/socket_table.h"

namespace tcpdemux::tcp {

class LanHost {
 public:
  /// Transmits a frame onto the host's cable.
  using TransmitFn = std::function<void(std::vector<std::uint8_t> frame)>;
  /// Supplies the current simulation time (for ARP entry ageing).
  using ClockFn = std::function<double()>;

  LanHost(net::Ipv4Addr ip, const core::DemuxConfig& demux, ClockFn clock)
      : ip_(ip),
        mac_(net::MacAddr::from_ipv4(ip.value())),
        clock_(std::move(clock)),
        arp_(mac_, ip),
        table_(demux, [this](std::vector<std::uint8_t> wire,
                             const core::Pcb& pcb) {
          send_ipv4(pcb.key.foreign_addr, std::move(wire));
        }) {}

  /// Attaches the cable. Must be called before any traffic moves.
  void set_transmit(TransmitFn fn) { transmit_ = std::move(fn); }

  /// Frame arrival from the wire: ARP is answered and learned, queued
  /// datagrams unblocked, IPv4-for-us delivered to the socket table.
  void receive_frame(std::vector<std::uint8_t> frame);

  /// Sends an IPv4 datagram toward `next_hop`, resolving its MAC first
  /// (datagrams wait in the hold queue behind an ARP request on a miss).
  void send_ipv4(net::Ipv4Addr next_hop, std::vector<std::uint8_t> datagram);

  [[nodiscard]] SocketTable& table() noexcept { return table_; }
  [[nodiscard]] const SocketTable& table() const noexcept { return table_; }
  [[nodiscard]] const net::MacAddr& mac() const noexcept { return mac_; }
  [[nodiscard]] net::Ipv4Addr ip() const noexcept { return ip_; }
  [[nodiscard]] std::size_t arp_entries() const noexcept {
    return arp_.size();
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }

 private:
  void flush_pending();

  struct Pending {
    net::Ipv4Addr next_hop;
    std::vector<std::uint8_t> datagram;
  };

  net::Ipv4Addr ip_;
  net::MacAddr mac_;
  ClockFn clock_;
  net::ArpTable arp_;
  SocketTable table_;
  TransmitFn transmit_;
  std::deque<Pending> pending_;
};

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_LAN_HOST_H_
