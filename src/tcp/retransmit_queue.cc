#include "tcp/retransmit_queue.h"

namespace tcpdemux::tcp {

void RetransmitQueue::on_send(std::uint32_t seq, std::uint32_t len,
                              double now) {
  segments_.push_back(Segment{seq, len, now, now, 1});
}

std::optional<double> RetransmitQueue::on_ack(std::uint32_t ack,
                                              double now) {
  std::optional<double> sample;
  while (!segments_.empty()) {
    const Segment& front = segments_.front();
    if (!seq_leq(front.seq + front.len, ack)) break;  // not fully covered
    if (front.transmissions == 1) {
      sample = now - front.first_sent;  // Karn: only clean transmissions
    }
    segments_.pop_front();
  }
  return sample;
}

std::optional<RetransmitQueue::Segment> RetransmitQueue::take_expired(
    double now, double rto) {
  if (segments_.empty()) return std::nullopt;
  Segment& oldest = segments_.front();
  if (now - oldest.last_sent < rto) return std::nullopt;
  oldest.last_sent = now;
  ++oldest.transmissions;
  return oldest;
}

std::optional<RetransmitQueue::Segment> RetransmitQueue::take_front(
    double now) {
  if (segments_.empty()) return std::nullopt;
  Segment& oldest = segments_.front();
  oldest.last_sent = now;
  ++oldest.transmissions;
  return oldest;
}

std::uint64_t RetransmitQueue::outstanding() const noexcept {
  std::uint64_t total = 0;
  for (const Segment& s : segments_) total += s.len;
  return total;
}

}  // namespace tcpdemux::tcp
