// Retransmission queue: the unacknowledged-segment bookkeeping a real TCP
// sender keeps per connection.
//
// The demultiplexing study itself runs lossless, but a credible TCP
// substrate needs the send side's reliability machinery: segments enter
// when transmitted, leave when cumulatively acknowledged, and come back
// for retransmission when their RTO expires. Karn's algorithm is applied:
// a segment that has been retransmitted never produces an RTT sample.
#ifndef TCPDEMUX_TCP_RETRANSMIT_QUEUE_H_
#define TCPDEMUX_TCP_RETRANSMIT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "tcp/seq_math.h"

namespace tcpdemux::tcp {

class RetransmitQueue {
 public:
  struct Segment {
    std::uint32_t seq = 0;
    std::uint32_t len = 0;  ///< payload bytes (SYN/FIN count as 1)
    double first_sent = 0.0;
    double last_sent = 0.0;
    std::uint32_t transmissions = 1;
  };

  /// Records a transmitted segment. Segments must be offered in sequence
  /// order (as a sender emits them).
  void on_send(std::uint32_t seq, std::uint32_t len, double now);

  /// Processes a cumulative acknowledgement: drops fully acked segments.
  /// Returns the RTT sample (now - first_sent of the newest fully-acked,
  /// never-retransmitted segment), or nullopt when Karn's rule or an
  /// empty ack forbids sampling.
  std::optional<double> on_ack(std::uint32_t ack, double now);

  /// The segment whose retransmission timer expires first, if its age
  /// exceeds `rto` at `now`. Marks it retransmitted and returns a copy.
  std::optional<Segment> take_expired(double now, double rto);

  /// Unconditionally marks the oldest outstanding segment retransmitted
  /// (fast retransmit on duplicate ACKs) and returns a copy; nullopt when
  /// nothing is outstanding.
  std::optional<Segment> take_front(double now);

  /// Bytes (plus SYN/FIN units) still unacknowledged.
  [[nodiscard]] std::uint64_t outstanding() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }
  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  void clear() noexcept { segments_.clear(); }

 private:
  std::deque<Segment> segments_;  ///< ordered by seq
};

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_RETRANSMIT_QUEUE_H_
