// A minimal RFC 793 TCP state machine over core::Pcb.
//
// This is the substrate that makes the demultiplexers part of a working
// receive path rather than a bare data structure: the socket table
// demultiplexes an arriving segment to a PCB, then hands it here to run the
// connection state. Covered: three-way handshake (both directions),
// in-order data transfer with cumulative acknowledgements, duplicate-ACK
// generation for out-of-order segments, RST handling, and the full
// close sequence (FIN_WAIT_1/2, CLOSE_WAIT, LAST_ACK, CLOSING, TIME_WAIT).
// Not modeled: retransmission timers, reassembly queues, window scaling,
// congestion control dynamics — none of which affect demultiplexing.
#ifndef TCPDEMUX_TCP_TCP_MACHINE_H_
#define TCPDEMUX_TCP_TCP_MACHINE_H_

#include <cstdint>
#include <functional>

#include "core/pcb.h"
#include "net/headers.h"

namespace tcpdemux::tcp {

/// A segment the machine asks the host to transmit.
struct Emit {
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint32_t payload_len = 0;
};

class TcpMachine {
 public:
  /// `send` transmits an Emit on the given PCB's connection. It is invoked
  /// synchronously from within the processing functions.
  using SendFn = std::function<void(core::Pcb&, const Emit&)>;

  struct Options {
    /// RFC 1122 §4.2.3.2 delayed acknowledgements: ack every second
    /// in-order data segment instead of every one; the owed ACK for an
    /// odd segment is flushed by flush_delayed_acks() (the 200 ms timer)
    /// or piggybacked on the next transmission. Halves the pure-ACK
    /// traffic a bulk receiver generates — visible to the demultiplexer.
    bool delayed_ack = false;
  };

  explicit TcpMachine(SendFn send) : TcpMachine(std::move(send), Options()) {}
  TcpMachine(SendFn send, Options options)
      : send_(std::move(send)), options_(options) {}

  /// Emits the owed ACK, if any (the delayed-ack timer). Returns true if
  /// one was sent.
  bool flush_delayed_acks(core::Pcb& pcb);

  /// Active open: chooses an ISS, emits SYN, moves to SYN_SENT.
  void open_active(core::Pcb& pcb);

  /// Passive open of a child PCB for an arriving SYN (the socket table has
  /// already created the PCB with the peer's concrete flow key): records
  /// the peer's ISN, emits SYN|ACK, moves to SYN_RCVD.
  void open_passive(core::Pcb& pcb, const net::TcpHeader& syn);

  /// Queues application data for transmission: emits one data segment of
  /// `len` bytes and advances snd_nxt. Only legal in ESTABLISHED or
  /// CLOSE_WAIT.  Returns false otherwise.
  bool send_data(core::Pcb& pcb, std::uint32_t len);

  /// Application close: emits FIN and advances the state machine.
  /// Returns false if the state cannot close (e.g. already closing).
  bool close(core::Pcb& pcb);

  /// Runs the arrival processing for a segment already demultiplexed to
  /// `pcb`. `payload_len` is the number of data bytes the segment carries.
  void process(core::Pcb& pcb, const net::TcpHeader& seg,
               std::uint32_t payload_len);

  /// Next initial send sequence; deterministic for reproducible tests.
  [[nodiscard]] std::uint32_t next_iss() noexcept {
    iss_seq_ += 64000;
    return iss_seq_;
  }

 private:
  void emit(core::Pcb& pcb, std::uint8_t flags, std::uint32_t seq,
            std::uint32_t ack, std::uint32_t payload_len = 0);
  void emit_ack(core::Pcb& pcb);
  void process_ack(core::Pcb& pcb, const net::TcpHeader& seg);
  void process_data(core::Pcb& pcb, const net::TcpHeader& seg,
                    std::uint32_t payload_len);

  SendFn send_;
  Options options_;
  std::uint32_t iss_seq_ = 0x1000;
};

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_TCP_MACHINE_H_
