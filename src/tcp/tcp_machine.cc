#include "tcp/tcp_machine.h"

#include "tcp/seq_math.h"

namespace tcpdemux::tcp {

using core::Pcb;
using core::TcpState;
using net::TcpFlag;
using net::TcpHeader;

void TcpMachine::emit(Pcb& pcb, std::uint8_t flags, std::uint32_t seq,
                      std::uint32_t ack, std::uint32_t payload_len) {
  ++pcb.segs_out;
  pcb.bytes_out += payload_len;
  send_(pcb, Emit{flags, seq, ack, payload_len});
}

void TcpMachine::emit_ack(Pcb& pcb) {
  emit(pcb, static_cast<std::uint8_t>(TcpFlag::kAck), pcb.snd_nxt,
       pcb.rcv_nxt);
}

void TcpMachine::open_active(Pcb& pcb) {
  pcb.iss = next_iss();
  pcb.snd_una = pcb.iss;
  pcb.snd_nxt = pcb.iss + 1;  // SYN consumes one sequence number
  pcb.state = TcpState::kSynSent;
  emit(pcb, static_cast<std::uint8_t>(TcpFlag::kSyn), pcb.iss, 0);
}

void TcpMachine::open_passive(Pcb& pcb, const TcpHeader& syn) {
  pcb.irs = syn.seq;
  pcb.rcv_nxt = syn.seq + 1;
  pcb.iss = next_iss();
  pcb.snd_una = pcb.iss;
  pcb.snd_nxt = pcb.iss + 1;
  pcb.state = TcpState::kSynReceived;
  ++pcb.segs_in;
  emit(pcb, TcpFlag::kSyn | TcpFlag::kAck, pcb.iss, pcb.rcv_nxt);
}

bool TcpMachine::send_data(Pcb& pcb, std::uint32_t len) {
  if (pcb.state != TcpState::kEstablished &&
      pcb.state != TcpState::kCloseWait) {
    return false;
  }
  pcb.delack_pending = false;  // the data segment piggybacks the ACK
  emit(pcb, TcpFlag::kAck | TcpFlag::kPsh, pcb.snd_nxt, pcb.rcv_nxt, len);
  pcb.snd_nxt += len;
  return true;
}

bool TcpMachine::close(Pcb& pcb) {
  switch (pcb.state) {
    case TcpState::kEstablished:
      pcb.state = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      pcb.state = TcpState::kLastAck;
      break;
    case TcpState::kSynReceived:
      pcb.state = TcpState::kFinWait1;
      break;
    default:
      return false;
  }
  emit(pcb, TcpFlag::kFin | TcpFlag::kAck, pcb.snd_nxt, pcb.rcv_nxt);
  pcb.snd_nxt += 1;  // FIN consumes one sequence number
  return true;
}

void TcpMachine::process_ack(Pcb& pcb, const TcpHeader& seg) {
  if (!seg.has(TcpFlag::kAck)) return;
  if (seq_gt(seg.ack, pcb.snd_una) && seq_leq(seg.ack, pcb.snd_nxt)) {
    pcb.snd_una = seg.ack;
  }
  pcb.snd_wnd = seg.window;
}

void TcpMachine::process_data(Pcb& pcb, const TcpHeader& seg,
                              std::uint32_t payload_len) {
  if (payload_len == 0) return;
  if (seg.seq == pcb.rcv_nxt) {
    pcb.rcv_nxt += payload_len;
    pcb.bytes_in += payload_len;
    if (options_.delayed_ack && !pcb.delack_pending) {
      pcb.delack_pending = true;  // owe an ACK; second segment forces it
    } else {
      pcb.delack_pending = false;
      emit_ack(pcb);
    }
  } else {
    // Out of order (or duplicate): ack immediately (RFC 5681 §4.2), so
    // the sender's duplicate-ACK machinery can engage.
    pcb.delack_pending = false;
    emit_ack(pcb);
  }
}

bool TcpMachine::flush_delayed_acks(Pcb& pcb) {
  if (!pcb.delack_pending) return false;
  pcb.delack_pending = false;
  emit_ack(pcb);
  return true;
}

void TcpMachine::process(Pcb& pcb, const TcpHeader& seg,
                         std::uint32_t payload_len) {
  ++pcb.segs_in;

  if (seg.has(TcpFlag::kRst)) {
    pcb.state = TcpState::kClosed;
    return;
  }

  switch (pcb.state) {
    case TcpState::kSynSent:
      if (seg.has(TcpFlag::kSyn) && seg.has(TcpFlag::kAck)) {
        if (seg.ack != pcb.snd_nxt) {
          emit(pcb, static_cast<std::uint8_t>(TcpFlag::kRst), seg.ack, 0);
          return;
        }
        pcb.irs = seg.seq;
        pcb.rcv_nxt = seg.seq + 1;
        pcb.snd_una = seg.ack;
        pcb.state = TcpState::kEstablished;
        emit_ack(pcb);
      } else if (seg.has(TcpFlag::kSyn)) {
        // Simultaneous open.
        pcb.irs = seg.seq;
        pcb.rcv_nxt = seg.seq + 1;
        pcb.state = TcpState::kSynReceived;
        emit(pcb, TcpFlag::kSyn | TcpFlag::kAck, pcb.iss, pcb.rcv_nxt);
      }
      return;

    case TcpState::kSynReceived:
      if (seg.has(TcpFlag::kAck) && seg.ack == pcb.snd_nxt) {
        pcb.snd_una = seg.ack;
        pcb.state = TcpState::kEstablished;
        // Fall through conceptually: the ACK may carry data.
        process_data(pcb, seg, payload_len);
      }
      return;

    case TcpState::kEstablished:
      process_ack(pcb, seg);
      process_data(pcb, seg, payload_len);
      if (seg.has(TcpFlag::kFin) && seg.seq + payload_len == pcb.rcv_nxt) {
        pcb.rcv_nxt += 1;
        pcb.state = TcpState::kCloseWait;
        emit_ack(pcb);
      }
      return;

    case TcpState::kFinWait1: {
      process_ack(pcb, seg);
      const bool our_fin_acked = pcb.snd_una == pcb.snd_nxt;
      process_data(pcb, seg, payload_len);
      if (seg.has(TcpFlag::kFin)) {
        pcb.rcv_nxt = seg.seq + payload_len + 1;
        emit_ack(pcb);
        pcb.state = our_fin_acked ? TcpState::kTimeWait : TcpState::kClosing;
      } else if (our_fin_acked) {
        pcb.state = TcpState::kFinWait2;
      }
      return;
    }

    case TcpState::kFinWait2:
      process_ack(pcb, seg);
      process_data(pcb, seg, payload_len);
      if (seg.has(TcpFlag::kFin)) {
        pcb.rcv_nxt = seg.seq + payload_len + 1;
        emit_ack(pcb);
        pcb.state = TcpState::kTimeWait;
      }
      return;

    case TcpState::kCloseWait:
      process_ack(pcb, seg);
      return;

    case TcpState::kClosing:
      process_ack(pcb, seg);
      if (pcb.snd_una == pcb.snd_nxt) pcb.state = TcpState::kTimeWait;
      return;

    case TcpState::kLastAck:
      process_ack(pcb, seg);
      if (pcb.snd_una == pcb.snd_nxt) pcb.state = TcpState::kClosed;
      return;

    case TcpState::kTimeWait:
      // Retransmitted FIN: re-acknowledge.
      if (seg.has(TcpFlag::kFin)) emit_ack(pcb);
      return;

    case TcpState::kClosed:
    case TcpState::kListen:
      return;
  }
}

}  // namespace tcpdemux::tcp
