// SYN cache: compact storage for half-open passive connections.
//
// Creating a full PCB for every arriving SYN lets an attacker (or just a
// flash crowd) blow up the connection table that the demultiplexer must
// search — the SYN-flood problem that hit the real Internet a few years
// after this paper. The fix production stacks adopted keeps embryonic
// connections in a small fixed-budget hash cache of ~40-byte entries;
// only the handshake-completing ACK promotes one to a real PCB.
//
// This implementation follows the classic BSD syncache shape: H buckets,
// per-bucket entry limit with oldest-entry eviction, global timeout.
//
// Threading: single-owner by design — one SynCache belongs to one tcp
// machine (and, in the sharded receive path, one shard), so it carries no
// lock and no capability annotations; concurrent use requires external
// synchronization. The `lock-discipline` lint pass keeps this honest at
// compile time: any mutex added to src/tcp must be the annotated
// core::Mutex from core/thread_annotations.h, so the moment this type
// grows a lock it becomes -Wthread-safety-checkable by construction.
#ifndef TCPDEMUX_TCP_SYN_CACHE_H_
#define TCPDEMUX_TCP_SYN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "net/flow_key.h"
#include "net/hashers.h"
#include "report/telemetry.h"

namespace tcpdemux::tcp {

class SynCache {
 public:
  struct Options {
    std::uint32_t buckets = 64;
    std::uint32_t bucket_limit = 8;  ///< entries per bucket before eviction
    double timeout = 30.0;           ///< seconds an embryonic entry lives
    net::HashSpec hasher = net::HasherKind::kCrc32;  ///< seed 0 = unkeyed
    /// Global embryonic-connection budget (0 = buckets * bucket_limit is
    /// the only bound). At the cap, add() evicts the globally oldest
    /// embryo before admitting the newcomer — a flood cannot grow the
    /// cache, only churn it — and counts the kill in stats().shed.
    std::size_t max_entries = 0;
  };

  /// One embryonic connection: just enough to finish the handshake.
  struct Entry {
    net::FlowKey key;
    std::uint32_t irs = 0;  ///< peer's initial sequence number
    std::uint32_t iss = 0;  ///< our initial sequence number
    double created = 0.0;
  };

  struct Stats {
    std::uint64_t added = 0;
    std::uint64_t evicted = 0;   ///< dropped for bucket overflow
    std::uint64_t expired = 0;
    std::uint64_t promoted = 0;  ///< completed handshakes removed via take
    std::uint64_t duplicates = 0;
    std::uint64_t shed = 0;      ///< globally-oldest kills at max_entries
    std::uint64_t alloc_failed = 0;  ///< adds refused by fault injection
  };

  SynCache() : SynCache(Options()) {}
  explicit SynCache(Options options);

  /// Records an arriving SYN. A duplicate key refreshes nothing and
  /// returns the existing entry (the peer retransmitted its SYN). When the
  /// bucket is full the oldest entry is evicted — the flood defense. At
  /// the global max_entries cap the globally oldest embryo is shed first.
  /// Returns nullptr only when allocation-failure injection refuses the
  /// add (core::FaultInjector).
  const Entry* add(const net::FlowKey& key, std::uint32_t irs,
                   std::uint32_t iss, double now);

  /// Finds the embryonic entry for `key`, or nullptr.
  [[nodiscard]] const Entry* find(const net::FlowKey& key) const;

  /// Removes and returns the entry (handshake completed or RST received).
  /// Returns false if absent.
  bool take(const net::FlowKey& key, Entry* out = nullptr);

  /// Drops entries older than the timeout. Returns how many.
  std::size_t expire(double now);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Registry-typed telemetry, same shape as Demuxer::telemetry():
  /// lookups/found track find() calls, examined counts embryos scanned,
  /// inserts/erases track add/take/expire, inserts_shed the global-cap
  /// kills. Exports through the same tcpdemux.telemetry.v1 schema.
  [[nodiscard]] const report::Telemetry& telemetry() const noexcept {
    return telemetry_;
  }
  void enable_telemetry_histograms(bool on) noexcept {
    telemetry_.enable_histograms(on);
  }
  /// Per-bucket embryo counts (sums to size()).
  [[nodiscard]] std::vector<std::size_t> occupancy() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(buckets_.size());
    for (const Bucket& b : buckets_) sizes.push_back(b.size());
    return sizes;
  }

 private:
  using Bucket = std::deque<Entry>;  ///< oldest at the front

  [[nodiscard]] Bucket& bucket_of(const net::FlowKey& key) {
    return buckets_[net::hash_chain(options_.hasher, key,
                                    options_.buckets)];
  }
  [[nodiscard]] const Bucket& bucket_of(const net::FlowKey& key) const {
    return buckets_[net::hash_chain(options_.hasher, key,
                                    options_.buckets)];
  }

  /// Evicts the globally oldest embryo (max_entries overflow policy).
  void shed_oldest();

  Options options_;
  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  Stats stats_;
  /// mutable: find() is logically const but must account the scan, same
  /// trade DemuxStats makes by keeping Demuxer::lookup non-const.
  mutable report::Telemetry telemetry_;
};

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_SYN_CACHE_H_
