// RFC 6298 round-trip-time estimation and retransmission timeout.
//
// The PCB carries srtt/rttvar/rto fields (they are part of what makes a
// PCB a few hundred bytes — the paper's whole premise); this module owns
// the arithmetic that maintains them. Times are in microseconds.
#ifndef TCPDEMUX_TCP_RTT_H_
#define TCPDEMUX_TCP_RTT_H_

#include <cstdint>

#include "core/pcb.h"

namespace tcpdemux::tcp {

struct RttConfig {
  std::uint32_t clock_granularity_us = 1000;  ///< G in RFC 6298
  std::uint32_t min_rto_us = 1'000'000;       ///< RFC 6298 §2.4: 1 second
  std::uint32_t max_rto_us = 60'000'000;
};

/// RFC 6298 estimator. Feed it measured RTT samples; read rto().
class RttEstimator {
 public:
  explicit RttEstimator(RttConfig config = RttConfig()) noexcept
      : config_(config), rto_us_(config.min_rto_us) {}

  /// Applies one RTT measurement (§2.2/§2.3: first sample initializes,
  /// later samples use alpha = 1/8, beta = 1/4).
  void add_sample(std::uint32_t rtt_us) noexcept;

  /// Doubles the RTO after a retransmission timeout (§5.5, "back off the
  /// timer"), saturating at the maximum.
  void on_timeout() noexcept;

  [[nodiscard]] std::uint32_t rto_us() const noexcept { return rto_us_; }
  [[nodiscard]] std::uint32_t srtt_us() const noexcept { return srtt_us_; }
  [[nodiscard]] std::uint32_t rttvar_us() const noexcept {
    return rttvar_us_;
  }
  [[nodiscard]] bool has_samples() const noexcept { return has_samples_; }

 private:
  void clamp_rto() noexcept;

  RttConfig config_;
  bool has_samples_ = false;
  std::uint32_t srtt_us_ = 0;
  std::uint32_t rttvar_us_ = 0;
  std::uint32_t rto_us_;
};

/// Convenience: runs one sample through an estimator seeded from the
/// PCB's current fields and writes the results back.
void update_pcb_rtt(core::Pcb& pcb, std::uint32_t rtt_sample_us,
                    const RttConfig& config = RttConfig()) noexcept;

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_RTT_H_
