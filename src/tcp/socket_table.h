// SocketTable: a host's TCP receive path — demultiplexer + listening
// sockets + state machine — over real wire-format packets.
//
// This is the integration layer the paper's algorithms plug into. An
// arriving packet is parsed and checksum-verified, demultiplexed through
// the configured algorithm (counting examined PCBs), and processed by the
// TCP machine; SYNs that match no connection are matched against listening
// sockets, spawning new PCBs. Outbound segments are serialized with real
// checksums and handed to the caller's transmit function, and the
// demultiplexer's send-side cache is notified.
#ifndef TCPDEMUX_TCP_SOCKET_TABLE_H_
#define TCPDEMUX_TCP_SOCKET_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include <optional>

#include "core/demux_registry.h"
#include "core/demuxer.h"
#include "net/packet.h"
#include "tcp/retransmit_queue.h"
#include "tcp/syn_cache.h"
#include "tcp/tcp_machine.h"

namespace tcpdemux::tcp {

class SocketTable {
 public:
  /// Receives every outbound wire packet (IPv4 + TCP + payload, checksums
  /// valid). `pcb` is the connection it belongs to.
  using TransmitFn =
      std::function<void(std::vector<std::uint8_t> wire, const core::Pcb& pcb)>;

  enum class Delivery : std::uint8_t {
    kDelivered,      ///< matched an existing connection
    kNewConnection,  ///< SYN accepted by a listening socket (PCB created)
    kSynCached,      ///< SYN parked in the SYN cache; no PCB yet
    kReset,          ///< no match; RST transmitted
    kParseError,     ///< malformed or checksum-failed packet
  };

  struct DeliverResult {
    Delivery status = Delivery::kParseError;
    core::Pcb* pcb = nullptr;
    std::uint32_t pcbs_examined = 0;
  };

  /// Host-level counters a real stack would export as MIB variables.
  struct Counters {
    std::uint64_t delivered = 0;
    std::uint64_t new_connections = 0;
    std::uint64_t resets_sent = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t retransmissions = 0;
  };

  SocketTable(const core::DemuxConfig& demux_config, TransmitFn transmit);

  /// Opens a passive (listening) socket on addr:port. `addr` may be the
  /// wildcard 0.0.0.0. Returns false if an identical listener exists.
  bool listen(net::Ipv4Addr addr, std::uint16_t port);

  /// Active open to a remote endpoint; emits the SYN. Returns nullptr if
  /// the flow key is already in use.
  core::Pcb* connect(const net::FlowKey& key);

  /// Delivers a raw wire packet (as a NIC would).
  DeliverResult deliver_wire(std::span<const std::uint8_t> wire);

  /// Delivers an already-parsed packet.
  DeliverResult deliver(const net::Packet& packet);

  /// Sends `len` bytes of application data on `pcb`.
  bool send_data(core::Pcb& pcb, std::uint32_t len) {
    return machine_.send_data(pcb, len);
  }

  /// Application close (FIN).
  bool close(core::Pcb& pcb) { return machine_.close(pcb); }

  /// Pops the oldest connection that completed its passive handshake and
  /// has not been accepted yet (the BSD accept(2) queue). nullptr if none.
  [[nodiscard]] core::Pcb* accept();

  /// Connections waiting in the accept queue.
  [[nodiscard]] std::size_t accept_backlog() const noexcept {
    return accept_queue_.size();
  }

  /// Destroys a connection's PCB (e.g. after reaching CLOSED).
  bool erase(const net::FlowKey& key);

  // --- reliability (optional) ---------------------------------------------
  // When a clock is installed, data segments enter a per-connection
  // retransmission queue, cumulative ACKs produce RTT samples feeding the
  // PCB's RFC 6298 estimator (Karn's rule applied), and poll_retransmits()
  // re-emits segments whose RTO expired, backing the RTO off per timeout.

  /// Enables loss recovery. `clock` returns the current time in seconds.
  void set_clock(std::function<double()> clock) {
    clock_ = std::move(clock);
  }

  /// Retransmits every expired segment (call periodically, e.g. from an
  /// event-queue timer). Returns the number of segments re-sent.
  std::size_t poll_retransmits();

  /// Destroys PCBs whose connections have ended: CLOSED immediately,
  /// TIME_WAIT after 2*MSL (RFC 793 suggests MSL = 2 minutes; simulations
  /// pass something shorter). Requires a clock. Returns PCBs reaped.
  std::size_t reap_closed(double msl = 120.0);

  // --- SYN cache (optional) -------------------------------------------
  // When enabled, an arriving SYN for a listener is parked as a ~40-byte
  // embryonic entry instead of a full PCB; the handshake-completing ACK
  // promotes it. Protects the demuxer's table from SYN floods.

  void enable_syn_cache(SynCache::Options options = SynCache::Options()) {
    syn_cache_.emplace(options);
  }

  /// Drops embryonic entries older than the cache timeout.
  std::size_t expire_embryonic(double now) {
    return syn_cache_ ? syn_cache_->expire(now) : 0;
  }

  [[nodiscard]] const SynCache* syn_cache() const noexcept {
    return syn_cache_ ? &*syn_cache_ : nullptr;
  }

  /// Finds a connection without disturbing the demuxer's caches or stats
  /// (diagnostic path; uses the unmeasured wildcard lookup).
  [[nodiscard]] core::Pcb* find(const net::FlowKey& key) {
    const auto r = demuxer_->lookup_wildcard(key);
    return (r.pcb != nullptr && r.pcb->key == key) ? r.pcb : nullptr;
  }

  [[nodiscard]] core::Demuxer& demuxer() noexcept { return *demuxer_; }
  [[nodiscard]] const core::Demuxer& demuxer() const noexcept {
    return *demuxer_;
  }
  [[nodiscard]] std::size_t listener_count() const noexcept {
    return listeners_.size();
  }
  [[nodiscard]] const Counters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return demuxer_->size();
  }

 private:
  struct Listener {
    net::Ipv4Addr addr;  ///< may be wildcard
    std::uint16_t port;
  };

  void transmit_segment(core::Pcb& pcb, const Emit& emit);
  void transmit_rst(const net::Packet& packet);
  [[nodiscard]] const Listener* find_listener(
      const net::FlowKey& packet_key) const noexcept;
  void note_acked(core::Pcb& pcb);
  void retransmit_segment(core::Pcb& pcb,
                          const RetransmitQueue::Segment& segment);

  std::unique_ptr<core::Demuxer> demuxer_;
  std::vector<Listener> listeners_;
  TransmitFn transmit_;
  TcpMachine machine_;
  Counters counters_;
  std::vector<core::Pcb*> accept_queue_;
  std::function<double()> clock_;
  std::unordered_map<core::Pcb*, RetransmitQueue> retransmit_;
  std::unordered_map<core::Pcb*, double> closing_since_;
  std::optional<SynCache> syn_cache_;
};

}  // namespace tcpdemux::tcp

#endif  // TCPDEMUX_TCP_SOCKET_TABLE_H_
