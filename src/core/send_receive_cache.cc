#include "core/send_receive_cache.h"

#include "core/fault_inject.h"

namespace tcpdemux::core {

Pcb* SendReceiveCacheDemuxer::insert(const net::FlowKey& key) {
  if (list_.find_scan(key).pcb != nullptr) return nullptr;
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  telemetry_->on_insert();
  return list_.emplace_front(key, next_conn_id());
}

bool SendReceiveCacheDemuxer::erase(const net::FlowKey& key) {
  const auto scan = list_.find_scan(key);
  if (scan.pcb == nullptr) return false;
  if (recv_cache_ == scan.pcb) recv_cache_ = nullptr;
  if (send_cache_ == scan.pcb) send_cache_ = nullptr;
  list_.erase(scan.pcb);
  telemetry_->on_erase();
  return true;
}

bool SendReceiveCacheDemuxer::probe(Pcb* slot, const net::FlowKey& key,
                                    LookupResult& r) noexcept {
  if (slot == nullptr) return false;
  ++r.examined;
  if (slot->key == key) {
    r.pcb = slot;
    r.cache_hit = true;
    return true;
  }
  return false;
}

LookupResult SendReceiveCacheDemuxer::lookup(const net::FlowKey& key,
                                             SegmentKind kind) {
  LookupResult r;
  Pcb* first = (kind == SegmentKind::kData) ? recv_cache_ : send_cache_;
  Pcb* second = (kind == SegmentKind::kData) ? send_cache_ : recv_cache_;
  if (!probe(first, key, r)) {
    // Avoid a redundant probe when both slots hold the same PCB.
    if (second != first) probe(second, key, r);
  }
  if (r.pcb == nullptr) {
    const auto scan = list_.find_scan(key);
    r.examined += scan.examined;
    r.pcb = scan.pcb;
  }
  if (r.pcb != nullptr) recv_cache_ = r.pcb;
  note_lookup(r);
  return r;
}

LookupResult SendReceiveCacheDemuxer::lookup_wildcard(
    const net::FlowKey& key) {
  const auto scan = list_.find_best_match(key);
  return LookupResult{scan.pcb, scan.examined, false};
}

void SendReceiveCacheDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  list_.for_each(fn);
}

}  // namespace tcpdemux::core
