// Factory for demuxer instances, used by examples, benches, and the replay
// harness to instantiate algorithms uniformly.
#ifndef TCPDEMUX_CORE_DEMUX_REGISTRY_H_
#define TCPDEMUX_CORE_DEMUX_REGISTRY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/demuxer.h"
#include "net/hashers.h"

namespace tcpdemux::core {

enum class Algorithm : std::uint8_t {
  kBsd,           ///< §3.1 linear list + 1-entry cache
  kMtf,           ///< §3.2 Crowcroft move-to-front
  kSrCache,       ///< §3.3 Partridge/Pink send/receive cache
  kSequent,       ///< §3.4 hash chains + per-chain cache
  kHashedMtf,     ///< §3.5 rejected combination
  kConnectionId,  ///< §3.5 protocol-extension strawman
  kDynamic,       ///< self-resizing hash chains (post-paper extension)
  kRcu,           ///< lock-free-read hash chains + epoch reclaim (RCU)
  kFlat,          ///< open-addressing robin-hood table, fingerprint tags
  kFlat16,        ///< flat table with SIMD 16-slot group probing
  kCuckoo,        ///< 4-way bucketized cuckoo table, Cuckoo++ filters
  kSharded,       ///< N RSS-steered shards, each wrapping an inner backend
};

struct DemuxConfig {
  Algorithm algorithm = Algorithm::kSequent;
  std::uint32_t chains = 19;  ///< Sequent / hashed-MTF only
  net::HasherKind hasher = net::HasherKind::kXorFold;
  bool per_chain_cache = true;       ///< Sequent only
  std::size_t id_capacity = 65536;   ///< connection-ID only
  std::size_t flat_capacity = 1024;  ///< flat/flat16/cuckoo (initial slots)
  // Adversarial-resilience knobs (see DESIGN.md "Adversarial resilience").
  std::uint32_t hash_seed = 0;  ///< 0 = unkeyed (paper-fidelity default)
  bool rehash_on_overload = false;  ///< sequent/flat: seed-rotating rehash
  std::size_t max_pcbs = 0;         ///< sequent/dynamic/flat: 0 = unbounded
  /// dynamic/flat/flat16/cuckoo: grow by bounded-pause incremental
  /// migration instead of a stop-the-world rebuild (see DESIGN.md
  /// "Incremental resize & degradation ladder").
  bool incremental = false;
  // Sharded receive path (algorithm == kSharded only; see DESIGN.md
  // "Sharded receive path").
  std::uint32_t shards = 0;   ///< shard count (>= 1 when kSharded)
  std::string inner_spec{};   ///< per-shard backend spec, re-parsed at build
};

/// Instantiates the configured demuxer.
[[nodiscard]] std::unique_ptr<Demuxer> make_demuxer(const DemuxConfig& config);

/// Parses a spec string:
///   "bsd" | "mtf" | "srcache"
///   "connection_id[:capacity]"               (negotiated ID-space size)
///   "sequent[:chains[:hasher][:opts...]]"   e.g. "sequent:101:crc32"
///   "hashed_mtf[:chains[:hasher]]"
///   "dynamic[:initial_chains[:hasher][:opts...]]"
///   "rcu[:chains[:hasher][:opts...]]"        (lock-free-read Sequent)
///   "flat[:capacity[:hasher][:opts...]]"     (open-addressing flat table)
///   "flat16[:capacity[:hasher][:opts...]]"   (flat + SIMD group probing)
///   "cuckoo[:capacity[:hasher][:opts...]]"   (4-way Cuckoo++ table;
///                                            defaults to crc32c, since its
///                                            alt-bucket derivation needs a
///                                            mixing hash — see registry.cc)
///   "sharded:N:<inner-spec>"                 (N RSS-steered shards, each an
///                                            instance of the inner spec —
///                                            any spec above; sharded itself
///                                            cannot nest)
///
/// The count token, when an algorithm takes one, must come directly after
/// the algorithm name; the hasher token and the option tokens may then
/// appear in any order, each at most once. So "dynamic:incremental" and
/// "flat:rehash:crc32c" are valid, while conflicting duplicates
/// ("flat:incremental:incremental", two "max=N" tokens, two hasher
/// tokens) are rejected — nesting specs under sharded makes silent
/// last-wins unacceptable.
///
/// A hasher token may carry a hex seed suffix, "hasher@1f2e" — the keyed
/// family (seed 0 == "@0" == unkeyed, bit-identical to the plain name).
/// A token may carry at most one "@"; "crc32@1f@2e" is rejected.
/// hashed_mtf, as a deliberately frozen strawman, rejects seeds.
///
/// Option tokens, each at most once:
///   "nocache"   sequent/rcu: disable the per-chain cache
///   "rehash"    sequent/flat/flat16/cuckoo: rehash with a fresh seed on
///               overload watermark
///   "max=N"     sequent/dynamic/flat/flat16/cuckoo: shed inserts beyond
///               N PCBs (N > 0)
///   "incremental"  dynamic/flat/flat16/cuckoo: bounded-pause incremental
///               resize with the memory-pressure degradation ladder
/// Returns nullopt on any unrecognized, duplicate, or unsupported token.
[[nodiscard]] std::optional<DemuxConfig> parse_demux_spec(
    std::string_view spec);

/// As above, but on failure writes a human-readable reason into `*error`
/// (when non-null) naming the offending token — "duplicate 'incremental'
/// token", "'nocache' is not supported by flat", ... Callers that surface
/// spec strings to users (benches, examples, nested sharded specs) use
/// this overload.
[[nodiscard]] std::optional<DemuxConfig> parse_demux_spec(
    std::string_view spec, std::string* error);

/// Parses a hasher name as printed by net::hasher_name().
[[nodiscard]] std::optional<net::HasherKind> parse_hasher_name(
    std::string_view name);

/// Parses "name" or "name@hexseed" (1-8 hex digits) into a HashSpec —
/// the inverse of net::hash_spec_name().
[[nodiscard]] std::optional<net::HashSpec> parse_hash_spec_token(
    std::string_view token);

/// Short algorithm name for display.
[[nodiscard]] std::string_view algorithm_name(Algorithm algorithm) noexcept;

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_DEMUX_REGISTRY_H_
