// RCU-style read-mostly Sequent demuxer: lock-free lookups over hash
// chains, epoch-based reclamation for erase.
//
// Demultiplexing under OLTP traffic is ~100% reads: connections live for
// many transactions, so inserts and erases are orders of magnitude rarer
// than lookups. ConcurrentSequentDemuxer still pays an uncontended
// mutex acquire/release per lookup and serializes lookups that collide
// on a chain. This demuxer removes locks from the read path entirely —
// the design the paper's first author later canonized as RCU [McK98]:
//
//   * each chain is a singly linked list of immutable-key nodes with
//     atomic next pointers; readers traverse with plain acquire loads
//     under an EpochManager::Guard — no locks, no RMW, no stores to
//     shared lines (except an opportunistic cache install, below);
//   * insert/erase serialize per chain behind a striped mutex exactly as
//     ConcurrentSequentDemuxer does, publish with release stores, and
//     retire unlinked nodes through the epoch manager, which frees them
//     only after every reader that could hold a reference has left its
//     critical section;
//   * the per-chain one-entry cache (the paper's §3.4 structure) is an
//     atomic pointer probed lock-free. Installing a new cache entry from
//     the read path uses try_lock + a retired flag so a reader can never
//     resurrect an already-retired node into the cache (the classic
//     lookup-cache/RCU interaction hazard); if the chain lock is busy the
//     install is simply skipped — the cache is a hint.
//
// lookup_batch() amortizes the epoch enter/exit and the hash computation
// over a burst of packets — the shape in which a NIC actually hands
// packets to the stack.
//
// Pcb* lifetime contract: a pointer returned by lookup() may be
// dereferenced only while the caller is inside an epoch guard entered
// BEFORE the lookup (guards nest, so lookup()'s internal guard composes
// with the caller's):
//
//   EpochManager::Guard g(d.epoch_manager());
//   const auto r = d.lookup(key);
//   if (r.pcb != nullptr) use(*r.pcb);   // safe: g still pinned
//
// lookup()'s own guard protects only the lookup itself — the moment it
// returns, a grace period can elapse and a concurrently erased node be
// freed, so an unguarded caller may compare the pointer but not follow
// it. Callers needing references that outlive the guard must coordinate
// with erasure (PCB refcounting, out of scope here, exactly as in
// concurrent_demuxer.h).
#ifndef TCPDEMUX_CORE_RCU_DEMUXER_H_
#define TCPDEMUX_CORE_RCU_DEMUXER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/demuxer.h"
#include "core/epoch.h"
#include "core/thread_annotations.h"
#include "net/hashers.h"

namespace tcpdemux::core {

/// Lock-free-read variant of the Sequent algorithm. Same single-threaded
/// semantics (and examined-PCB accounting) as SequentDemuxer; same
/// concurrency contract as ConcurrentSequentDemuxer, minus the read-side
/// locks.
class RcuSequentDemuxer {
 public:
  struct Options {
    std::uint32_t chains = 19;
    net::HashSpec hasher = net::HasherKind::kXorFold;  ///< seed 0 = unkeyed
    bool per_chain_cache = true;
    // No rehash-on-overload here: a seed rotation would relocate every node
    // under concurrent lock-free readers, a full-table RCU rebuild that is
    // out of scope. Deployments facing collision floods run this table with
    // a keyed hasher (siphash@seed) so the flood never lands.
  };

  RcuSequentDemuxer() : RcuSequentDemuxer(Options()) {}
  explicit RcuSequentDemuxer(Options options);
  ~RcuSequentDemuxer();

  RcuSequentDemuxer(const RcuSequentDemuxer&) = delete;
  RcuSequentDemuxer& operator=(const RcuSequentDemuxer&) = delete;

  Pcb* insert(const net::FlowKey& key);
  bool erase(const net::FlowKey& key);
  LookupResult lookup(const net::FlowKey& key,
                      SegmentKind kind = SegmentKind::kData);

  /// Demultiplexes a burst of packets under one epoch guard, writing
  /// results[i] for keys[i]. `results.size()` must be >= `keys.size()`.
  void lookup_batch(std::span<const net::FlowKey> keys,
                    std::span<LookupResult> results,
                    SegmentKind kind = SegmentKind::kData);

  /// Best wildcard match (BSD in_pcblookup semantics) across all chains,
  /// mirroring SequentDemuxer::lookup_wildcard. Lock-free.
  LookupResult lookup_wildcard(const net::FlowKey& key);

  /// Snapshot iteration under an epoch guard: sees every PCB present for
  /// the whole call; concurrent inserts/erases may or may not appear.
  void for_each_pcb(const std::function<void(const Pcb&)>& fn) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return lookups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pcbs_examined() const noexcept {
    return examined_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::uint32_t chains() const noexcept {
    return options_.chains;
  }
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Per-chain node counts, walked under an epoch guard. A concurrent
  /// writer may skew one chain by a node; the quiescent (telemetry
  /// snapshot) case is exact.
  [[nodiscard]] std::vector<std::size_t> chain_sizes() const;

  /// The reclamation engine (test/ops hook: epoch, retired/freed counts).
  [[nodiscard]] EpochManager& epoch_manager() noexcept { return epoch_; }

 private:
  friend class StructuralValidator;   // src/core/validate.h (quiescent only)
  friend struct ValidatorTestAccess;  // negative validator tests only

  struct Node {
    Node(const net::FlowKey& k, std::uint64_t id) noexcept : pcb(k, id) {}
    Pcb pcb;
    std::atomic<Node*> next{nullptr};
    // Guarded by the owning Bucket's mutex — a cross-object protocol
    // GUARDED_BY cannot name (the capability lives in another struct), so
    // it stays a comment + TSan territory. Readers never touch it; the
    // cache-install path checks it only inside try_lock.
    bool retired = false;
  };

  struct alignas(64) Bucket {
    Mutex mutex;  // writers + cache installs only; reads are lock-free
    // head/cache stay lock-free-readable atomics, not GUARDED_BY: the
    // whole point of this structure is that the read path loads them
    // without the capability. The mutex serializes *writers* only.
    std::atomic<Node*> head{nullptr};
    std::atomic<Node*> cache{nullptr};
  };

  [[nodiscard]] std::uint32_t chain_of(const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key, options_.chains);
  }

  /// The read path proper; caller must hold an epoch guard.
  LookupResult lookup_in_chain(Bucket& b, const net::FlowKey& key) noexcept;

  // NOLINTNEXTLINE(raw-owning-memory): the epoch manager owns retired nodes.
  static void delete_node(void* p) { delete static_cast<Node*>(p); }

  Options options_;
  std::vector<std::unique_ptr<Bucket>> buckets_;
  mutable EpochManager epoch_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> examined_{0};
  std::atomic<std::uint64_t> conn_seq_{0};
};

/// Registry adapter: presents RcuSequentDemuxer through the Demuxer
/// interface so every table, bench, and property test can drive it.
/// Demuxer::stats_ recording is not thread-safe, so this adapter keeps
/// the single-threaded contract of the other registry algorithms;
/// concurrent callers use RcuSequentDemuxer directly.
class RcuDemuxerAdapter final : public Demuxer {
 public:
  explicit RcuDemuxerAdapter(RcuSequentDemuxer::Options options)
      : inner_(options) {}

  Pcb* insert(const net::FlowKey& key) override {
    Pcb* pcb = inner_.insert(key);
    if (pcb != nullptr) telemetry_->on_insert();
    return pcb;
  }
  bool erase(const net::FlowKey& key) override {
    const bool erased = inner_.erase(key);
    if (erased) telemetry_->on_erase();
    return erased;
  }
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override {
    const LookupResult r = inner_.lookup(key, kind);
    note_lookup(r);
    return r;
  }
  void lookup_batch(std::span<const net::FlowKey> keys,
                    std::span<LookupResult> results,
                    SegmentKind kind) override {
    inner_.lookup_batch(keys, results, kind);
    for (std::size_t i = 0; i < keys.size(); ++i) note_lookup(results[i]);
  }
  LookupResult lookup_wildcard(const net::FlowKey& key) override {
    return inner_.lookup_wildcard(key);
  }
  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override {
    inner_.for_each_pcb(fn);
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return inner_.memory_bytes();
  }
  [[nodiscard]] std::vector<std::size_t> occupancy() const override {
    return inner_.chain_sizes();
  }

  [[nodiscard]] RcuSequentDemuxer& inner() noexcept { return inner_; }
  [[nodiscard]] const RcuSequentDemuxer& inner() const noexcept {
    return inner_;
  }

 private:
  RcuSequentDemuxer inner_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_RCU_DEMUXER_H_
