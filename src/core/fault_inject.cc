#include "core/fault_inject.h"

namespace tcpdemux::core {

FaultInjector& FaultInjector::instance() noexcept {
  static FaultInjector injector;
  return injector;
}

bool FaultInjector::poll_armed() noexcept {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  // fetch_sub gives each concurrent poller a distinct pre-decrement value,
  // so exactly one thread observes the 1 -> 0 transition and injects.
  const std::uint64_t before =
      countdown_.fetch_sub(1, std::memory_order_acq_rel);
  if (before != 1) {
    if (before == 0) {
      // Countdown had already expired (kOnce raced past zero): restore so
      // the counter does not wrap into a giant period.
      countdown_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  const Mode mode = mode_.load(std::memory_order_relaxed);
  if (mode == Mode::kEvery) {
    countdown_.store(period_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  } else {  // kOnce (or a concurrent disarm: injecting once more is benign)
    mode_.store(Mode::kOff, std::memory_order_relaxed);
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::arm_every(std::uint64_t n) noexcept {
  if (n == 0) n = 1;
  period_.store(n, std::memory_order_relaxed);
  countdown_.store(n, std::memory_order_relaxed);
  mode_.store(Mode::kEvery, std::memory_order_relaxed);
}

void FaultInjector::arm_after(std::uint64_t n) noexcept {
  if (n == 0) n = 1;
  period_.store(0, std::memory_order_relaxed);
  countdown_.store(n, std::memory_order_relaxed);
  mode_.store(Mode::kOnce, std::memory_order_relaxed);
}

void FaultInjector::disarm() noexcept {
  mode_.store(Mode::kOff, std::memory_order_relaxed);
}

void FaultInjector::reset() noexcept {
  disarm();
  checkpoints_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
}

}  // namespace tcpdemux::core
