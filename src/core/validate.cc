#include "core/validate.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/bsd_list.h"
#include "core/connection_id.h"
#include "core/cuckoo_demuxer.h"
#include "core/demuxer.h"
#include "core/dynamic_hash.h"
#include "core/flat_demuxer.h"
#include "core/hashed_mtf.h"
#include "core/move_to_front.h"
#include "core/pcb_list.h"
#include "core/rcu_demuxer.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"

namespace tcpdemux::core {
namespace {

// Collector for validation errors with printf-lite formatting via streams.
class Errors {
 public:
  explicit Errors(ValidationReport& report) : report_(report) {}

  template <typename... Parts>
  void add(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    report_.errors.push_back(os.str());
  }

 private:
  ValidationReport& report_;
};

// Walks `list` checking doubly-linked consistency, and appends every member
// to `members` (when non-null) for cache/duplicate checks by the caller.
// The cycle guard caps the walk at size()+1 nodes so a corrupted next
// pointer cannot hang the validator.
void check_list(const PcbList& list, const char* what, Errors& errors,
                std::vector<const Pcb*>* members) {
  std::size_t count = 0;
  const Pcb* prev = nullptr;
  for (const Pcb* p = list.head(); p != nullptr; p = p->next) {
    if (count > list.size()) {
      errors.add(what, ": more nodes reachable than size()=", list.size(),
                 " (cycle or lost count)");
      return;
    }
    if (p->prev != prev) {
      errors.add(what, ": node ", count, " (", p->key.to_string(),
                 ") has prev link inconsistent with walk order");
    }
    if (members != nullptr) members->push_back(p);
    prev = p;
    ++count;
  }
  if (count != list.size()) {
    errors.add(what, ": reachable nodes (", count, ") != size() (",
               list.size(), ")");
  }
  if (list.tail() != prev) {
    errors.add(what, ": tail does not point at the last reachable node");
  }
  if (list.head() != nullptr && list.head()->prev != nullptr) {
    errors.add(what, ": head node has non-null prev");
  }
}

// Cache slots must point at a live member of the structure they cache for;
// a stale pointer (freed PCB, or a PCB that migrated elsewhere) is the
// classic intrusive-cache corruption.
void check_cache_member(const Pcb* cache, const char* what,
                        const std::vector<const Pcb*>& members,
                        Errors& errors) {
  if (cache == nullptr) return;
  if (std::find(members.begin(), members.end(), cache) == members.end()) {
    errors.add(what, ": cache points at a PCB that is not a live member");
  }
}

// No PCB may be reachable twice and no two PCBs may share a key; either
// breaks erase() (double free / wrong victim) and the examined-count
// accounting.
void check_unique(const std::vector<const Pcb*>& members, const char* what,
                  Errors& errors) {
  std::unordered_set<const Pcb*> seen;
  std::unordered_set<net::FlowKey> keys;
  for (const Pcb* p : members) {
    if (!seen.insert(p).second) {
      errors.add(what, ": PCB ", p->key.to_string(), " is reachable twice");
    }
    if (!keys.insert(p->key).second) {
      errors.add(what, ": duplicate key ", p->key.to_string());
    }
  }
}

}  // namespace

std::string ValidationReport::to_string() const {
  std::string out;
  for (const std::string& e : errors) {
    if (!out.empty()) out += '\n';
    out += e;
  }
  return out;
}

ValidationReport StructuralValidator::validate(const PcbList& list) {
  ValidationReport report;
  Errors errors(report);
  check_list(list, "pcb_list", errors, nullptr);
  return report;
}

ValidationReport StructuralValidator::validate(const BsdListDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> members;
  check_list(demuxer.list_, "bsd", errors, &members);
  check_unique(members, "bsd", errors);
  check_cache_member(demuxer.cache_, "bsd", members, errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const MoveToFrontDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> members;
  check_list(demuxer.list_, "mtf", errors, &members);
  check_unique(members, "mtf", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const SendReceiveCacheDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> members;
  check_list(demuxer.list_, "srcache", errors, &members);
  check_unique(members, "srcache", errors);
  check_cache_member(demuxer.recv_cache_, "srcache(recv)", members, errors);
  check_cache_member(demuxer.send_cache_, "srcache(send)", members, errors);
  return report;
}

ValidationReport StructuralValidator::validate(const SequentDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> all;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    const SequentDemuxer::Bucket& bucket = demuxer.buckets_[c];
    std::vector<const Pcb*> members;
    std::ostringstream what;
    what << "sequent chain " << c;
    check_list(bucket.list, what.str().c_str(), errors, &members);
    for (const Pcb* p : members) {
      if (demuxer.chain_of(p->key) != c) {
        errors.add("sequent: PCB ", p->key.to_string(), " hashes to chain ",
                   demuxer.chain_of(p->key), " but sits on chain ", c);
      }
    }
    if (!demuxer.options_.per_chain_cache && bucket.cache != nullptr) {
      errors.add("sequent chain ", c,
                 ": cache installed but per_chain_cache is disabled");
    }
    check_cache_member(bucket.cache, what.str().c_str(), members, errors);
    total += members.size();
    all.insert(all.end(), members.begin(), members.end());
  }
  if (total != demuxer.size_) {
    errors.add("sequent: chain occupancy total (", total,
               ") != size counter (", demuxer.size_, ")");
  }
  check_unique(all, "sequent", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const HashedMtfDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> all;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    std::vector<const Pcb*> members;
    std::ostringstream what;
    what << "hashed_mtf chain " << c;
    check_list(demuxer.buckets_[c], what.str().c_str(), errors, &members);
    for (const Pcb* p : members) {
      if (demuxer.chain_of(p->key) != c) {
        errors.add("hashed_mtf: PCB ", p->key.to_string(),
                   " hashes to chain ", demuxer.chain_of(p->key),
                   " but sits on chain ", c);
      }
    }
    total += members.size();
    all.insert(all.end(), members.begin(), members.end());
  }
  if (total != demuxer.size_) {
    errors.add("hashed_mtf: chain occupancy total (", total,
               ") != size counter (", demuxer.size_, ")");
  }
  check_unique(all, "hashed_mtf", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const DynamicHashDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  if (demuxer.buckets_.empty()) {
    errors.add("dynamic: bucket table is empty");
    return report;
  }
  std::vector<const Pcb*> all;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    const DynamicHashDemuxer::Bucket& bucket = demuxer.buckets_[c];
    std::vector<const Pcb*> members;
    std::ostringstream what;
    what << "dynamic chain " << c;
    check_list(bucket.list, what.str().c_str(), errors, &members);
    for (const Pcb* p : members) {
      if (demuxer.chain_of(p->key) != c) {
        errors.add("dynamic: PCB ", p->key.to_string(), " hashes to chain ",
                   demuxer.chain_of(p->key), " but sits on chain ", c);
      }
    }
    if (!demuxer.options_.per_chain_cache && bucket.cache != nullptr) {
      errors.add("dynamic chain ", c,
                 ": cache installed but per_chain_cache is disabled");
    }
    check_cache_member(bucket.cache, what.str().c_str(), members, errors);
    total += members.size();
    all.insert(all.end(), members.begin(), members.end());
  }
  if (total != demuxer.size_) {
    errors.add("dynamic: chain occupancy total (", total,
               ") != size counter (", demuxer.size_, ")");
  }
  check_unique(all, "dynamic", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const ConnectionIdDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);

  // Side table -> slot array: every mapping must land on a live slot whose
  // PCB carries the mapped key and whose conn_id is its own slot index.
  std::size_t occupied = 0;
  for (const auto& slot : demuxer.slots_) {
    if (slot != nullptr) ++occupied;
  }
  for (const auto& [key, id] : demuxer.id_by_key_) {
    if (id >= demuxer.slots_.size()) {
      errors.add("connection_id: key ", key.to_string(),
                 " maps to out-of-range id ", id);
      continue;
    }
    const Pcb* pcb = demuxer.slots_[id].get();
    if (pcb == nullptr) {
      errors.add("connection_id: key ", key.to_string(),
                 " maps to empty slot ", id);
    } else {
      if (pcb->key != key) {
        errors.add("connection_id: slot ", id, " holds key ",
                   pcb->key.to_string(), " but the table maps ",
                   key.to_string(), " to it");
      }
      if (pcb->conn_id != id) {
        errors.add("connection_id: slot ", id, " PCB carries conn_id ",
                   pcb->conn_id, " != its slot index");
      }
    }
  }
  if (occupied != demuxer.id_by_key_.size()) {
    errors.add("connection_id: occupied slots (", occupied,
               ") != side-table entries (", demuxer.id_by_key_.size(), ")");
  }

  // Free list: in-range, unique, and only over empty slots; together with
  // the occupied slots it must account for the whole ID space.
  std::unordered_set<std::uint32_t> free_seen;
  for (const std::uint32_t id : demuxer.free_ids_) {
    if (id >= demuxer.capacity_) {
      errors.add("connection_id: free list holds out-of-range id ", id);
      continue;
    }
    if (!free_seen.insert(id).second) {
      errors.add("connection_id: free list holds id ", id, " twice");
    }
    if (demuxer.slots_[id] != nullptr) {
      errors.add("connection_id: free list holds id ", id,
                 " whose slot is occupied");
    }
  }
  if (free_seen.size() + occupied != demuxer.capacity_) {
    errors.add("connection_id: free ids (", free_seen.size(),
               ") + occupied slots (", occupied, ") != capacity (",
               demuxer.capacity_, ")");
  }
  return report;
}

ValidationReport StructuralValidator::validate(
    const RcuSequentDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::unordered_set<const Pcb*> seen;
  std::unordered_set<net::FlowKey> keys;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    const RcuSequentDemuxer::Bucket& bucket = *demuxer.buckets_[c];
    std::unordered_set<const RcuSequentDemuxer::Node*> chain_nodes;
    std::size_t count = 0;
    for (const RcuSequentDemuxer::Node* n =
             bucket.head.load(std::memory_order_acquire);
         n != nullptr; n = n->next.load(std::memory_order_acquire)) {
      if (count > demuxer.size() + 1) {
        errors.add("rcu chain ", c, ": more nodes reachable than size()=",
                   demuxer.size(), " (cycle or lost count)");
        break;
      }
      chain_nodes.insert(n);
      if (n->retired) {
        errors.add("rcu chain ", c, ": reachable node ",
                   n->pcb.key.to_string(), " is flagged retired");
      }
      if (demuxer.chain_of(n->pcb.key) != c) {
        errors.add("rcu: PCB ", n->pcb.key.to_string(), " hashes to chain ",
                   demuxer.chain_of(n->pcb.key), " but sits on chain ", c);
      }
      if (!seen.insert(&n->pcb).second) {
        errors.add("rcu: PCB ", n->pcb.key.to_string(),
                   " is reachable twice");
      }
      if (!keys.insert(n->pcb.key).second) {
        errors.add("rcu: duplicate key ", n->pcb.key.to_string());
      }
      ++count;
    }
    total += count;

    const RcuSequentDemuxer::Node* cache =
        bucket.cache.load(std::memory_order_acquire);
    if (cache != nullptr) {
      if (!demuxer.options_.per_chain_cache) {
        errors.add("rcu chain ", c,
                   ": cache installed but per_chain_cache is disabled");
      }
      if (!chain_nodes.contains(cache)) {
        errors.add("rcu chain ", c,
                   ": cache points at a node that is not on the chain");
      } else if (cache->retired) {
        errors.add("rcu chain ", c, ": cache resurrects a retired node");
      }
    }
  }
  if (total != demuxer.size()) {
    errors.add("rcu: chain occupancy total (", total, ") != size counter (",
               demuxer.size(), ")");
  }
  if (demuxer.epoch_.freed_count() > demuxer.epoch_.retired_count()) {
    errors.add("rcu: epoch manager freed (", demuxer.epoch_.freed_count(),
               ") more nodes than were retired (",
               demuxer.epoch_.retired_count(), ")");
  }
  return report;
}

ValidationReport StructuralValidator::validate(const FlatDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  const std::size_t capacity = demuxer.capacity();
  if (capacity == 0 || (capacity & (capacity - 1)) != 0) {
    errors.add("flat: capacity ", capacity, " is not a power of two");
    return report;
  }
  if (demuxer.tags_.size() != capacity || demuxer.hashes_.size() != capacity ||
      demuxer.keys_.size() != capacity || demuxer.pcbs_.size() != capacity) {
    errors.add("flat: slot arrays are not all sized to capacity ", capacity);
    return report;
  }

  std::unordered_set<net::FlowKey> keys;
  std::size_t occupied = 0;
  for (std::size_t i = 0; i < capacity; ++i) {
    if (demuxer.tags_[i] == 0) {
      if (demuxer.pcbs_[i] != nullptr) {
        errors.add("flat slot ", i, ": empty tag but a PCB is still owned");
      }
      continue;
    }
    ++occupied;
    const Pcb* const pcb = demuxer.pcbs_[i].get();
    if (pcb == nullptr) {
      errors.add("flat slot ", i, ": occupied tag but no PCB");
      continue;
    }
    // Tag <-> hash <-> key agreement: the fingerprint array and the hash
    // array must both describe the key actually stored in the slot, or
    // lookups silently stop finding it.
    if (pcb->key != demuxer.keys_[i]) {
      errors.add("flat slot ", i, ": PCB key ", pcb->key.to_string(),
                 " != slot key ", demuxer.keys_[i].to_string());
    }
    const std::uint32_t h = demuxer.hash_of(demuxer.keys_[i]);
    if (demuxer.hashes_[i] != h) {
      errors.add("flat slot ", i, ": stored hash ", demuxer.hashes_[i],
                 " != hash of stored key ", h);
    }
    if (demuxer.tags_[i] != FlatDemuxer::tag_of(demuxer.hashes_[i])) {
      errors.add("flat slot ", i, ": tag ",
                 static_cast<unsigned>(demuxer.tags_[i]),
                 " disagrees with stored hash's fingerprint ",
                 static_cast<unsigned>(
                     FlatDemuxer::tag_of(demuxer.hashes_[i])));
    }
    // Robin-hood probe invariant: a displaced resident implies an occupied
    // predecessor at most one step closer to its own home. A violation
    // breaks the miss early-exit (keys become unreachable).
    const std::size_t dist = demuxer.probe_distance(i);
    if (dist > 0) {
      const std::size_t prev = (i - 1) & demuxer.mask_;
      if (demuxer.tags_[prev] == 0) {
        errors.add("flat slot ", i, ": probe distance ", dist,
                   " but predecessor slot is empty");
      } else if (demuxer.probe_distance(prev) + 1 < dist) {
        errors.add("flat slot ", i, ": probe distance ", dist,
                   " exceeds predecessor's by more than one (",
                   demuxer.probe_distance(prev), ")");
      }
    }
    if (!keys.insert(demuxer.keys_[i]).second) {
      errors.add("flat: duplicate key ", demuxer.keys_[i].to_string());
    }
  }
  if (occupied != demuxer.size_) {
    errors.add("flat: occupied slots (", occupied, ") != size counter (",
               demuxer.size_, ")");
  }
  // Growth keeps occupancy at or below 7/8; a violation means the next
  // insert was allowed to degrade probe runs past the design bound.
  if (demuxer.size_ * 8 > capacity * 7) {
    errors.add("flat: occupancy ", demuxer.size_, " exceeds 7/8 of capacity ",
               capacity);
  }
  return report;
}

ValidationReport StructuralValidator::validate(const CuckooDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  constexpr std::size_t kW = CuckooDemuxer::kBucketWidth;
  const std::size_t buckets = demuxer.bucket_count();
  const std::size_t capacity = demuxer.capacity();
  if (buckets < CuckooDemuxer::kMinBuckets ||
      (buckets & (buckets - 1)) != 0) {
    errors.add("cuckoo: bucket count ", buckets,
               " is not a power of two >= 4");
    return report;
  }
  if (demuxer.meta_.size() != buckets ||
      demuxer.filter_counts_.size() != buckets ||
      demuxer.hashes_.size() != capacity ||
      demuxer.keys_.size() != capacity || demuxer.pcbs_.size() != capacity) {
    errors.add("cuckoo: arrays are not all sized to ", buckets, " buckets");
    return report;
  }

  // Expected counted-filter state, recomputed from resident placement.
  std::vector<std::array<std::uint16_t, 16>> expected(buckets);
  std::unordered_set<net::FlowKey> keys;
  std::size_t occupied = 0;
  for (std::size_t i = 0; i < capacity; ++i) {
    const std::size_t bucket = i / kW;
    const std::uint8_t tag = demuxer.meta_[bucket].tags[i % kW];
    if (tag == 0) {
      if (demuxer.pcbs_[i] != nullptr) {
        errors.add("cuckoo slot ", i, ": empty tag but a PCB is still owned");
      }
      continue;
    }
    ++occupied;
    const Pcb* const pcb = demuxer.pcbs_[i].get();
    if (pcb == nullptr) {
      errors.add("cuckoo slot ", i, ": occupied tag but no PCB");
      continue;
    }
    if (pcb->key != demuxer.keys_[i]) {
      errors.add("cuckoo slot ", i, ": PCB key ", pcb->key.to_string(),
                 " != slot key ", demuxer.keys_[i].to_string());
    }
    const std::uint32_t h = demuxer.hash_of(demuxer.keys_[i]);
    if (demuxer.hashes_[i] != h) {
      errors.add("cuckoo slot ", i, ": stored hash ", demuxer.hashes_[i],
                 " != hash of stored key ", h);
    }
    if (tag != CuckooDemuxer::tag_of(demuxer.hashes_[i])) {
      errors.add("cuckoo slot ", i, ": tag ", static_cast<unsigned>(tag),
                 " disagrees with stored hash's fingerprint ",
                 static_cast<unsigned>(
                     CuckooDemuxer::tag_of(demuxer.hashes_[i])));
    }
    // Placement: a resident must sit in its primary bucket or the
    // alternate derived from (primary, tag) — anywhere else it is
    // unreachable by lookup.
    const std::size_t primary = demuxer.bucket_of(demuxer.hashes_[i]);
    const std::size_t alt = demuxer.alt_bucket(primary, tag);
    if (bucket != primary && bucket != alt) {
      errors.add("cuckoo slot ", i, ": resident of bucket ", bucket,
                 " but its candidates are ", primary, " and ", alt);
    }
    // Filter soundness: an overflowed resident (living in its alternate)
    // must be registered in its primary bucket's counted filter, or a
    // negative-looking probe of the primary bucket would hide it forever.
    if (bucket == alt && bucket != primary) {
      ++expected[primary][CuckooDemuxer::filter_index(tag)];
    }
    if (!keys.insert(demuxer.keys_[i]).second) {
      errors.add("cuckoo: duplicate key ", demuxer.keys_[i].to_string());
    }
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    for (std::size_t idx = 0; idx < 16; ++idx) {
      if (demuxer.filter_counts_[b][idx] != expected[b][idx]) {
        errors.add("cuckoo bucket ", b, ": filter count[", idx, "] = ",
                   demuxer.filter_counts_[b][idx],
                   " but placement implies ", expected[b][idx]);
      }
      const bool bit =
          (demuxer.meta_[b].filter & (1U << idx)) != 0;
      if (bit != (demuxer.filter_counts_[b][idx] != 0)) {
        errors.add("cuckoo bucket ", b, ": filter bit ", idx,
                   bit ? " set without" : " clear despite",
                   " a backing count");
      }
    }
  }
  if (occupied != demuxer.size_) {
    errors.add("cuckoo: occupied slots (", occupied, ") != size counter (",
               demuxer.size_, ")");
  }
  if (demuxer.size_ * 8 > capacity * 7) {
    errors.add("cuckoo: occupancy ", demuxer.size_,
               " exceeds 7/8 of capacity ", capacity);
  }
  return report;
}

ValidationReport validate_demuxer(const Demuxer& demuxer) {
  if (const auto* d = dynamic_cast<const BsdListDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const MoveToFrontDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const SendReceiveCacheDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const SequentDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const HashedMtfDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const DynamicHashDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const ConnectionIdDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const RcuDemuxerAdapter*>(&demuxer)) {
    return StructuralValidator::validate(d->inner());
  }
  if (const auto* d = dynamic_cast<const FlatDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const CuckooDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  ValidationReport report;
  report.errors.push_back("validate_demuxer: no validator for demuxer '" +
                          demuxer.name() + "'");
  return report;
}

// --- test-only access ------------------------------------------------------

PcbList& ValidatorTestAccess::list(BsdListDemuxer& d) { return d.list_; }
Pcb*& ValidatorTestAccess::cache(BsdListDemuxer& d) { return d.cache_; }
PcbList& ValidatorTestAccess::list(MoveToFrontDemuxer& d) { return d.list_; }
PcbList& ValidatorTestAccess::list(SendReceiveCacheDemuxer& d) {
  return d.list_;
}
Pcb*& ValidatorTestAccess::recv_cache(SendReceiveCacheDemuxer& d) {
  return d.recv_cache_;
}
Pcb*& ValidatorTestAccess::send_cache(SendReceiveCacheDemuxer& d) {
  return d.send_cache_;
}
PcbList& ValidatorTestAccess::chain(SequentDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain].list;
}
Pcb*& ValidatorTestAccess::cache(SequentDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain].cache;
}
std::size_t& ValidatorTestAccess::size(SequentDemuxer& d) { return d.size_; }
PcbList& ValidatorTestAccess::chain(HashedMtfDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain];
}
std::size_t& ValidatorTestAccess::size(HashedMtfDemuxer& d) { return d.size_; }
PcbList& ValidatorTestAccess::chain(DynamicHashDemuxer& d,
                                    std::uint32_t chain) {
  return d.buckets_[chain].list;
}
Pcb*& ValidatorTestAccess::cache(DynamicHashDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain].cache;
}
std::size_t& ValidatorTestAccess::size(DynamicHashDemuxer& d) {
  return d.size_;
}

void ValidatorTestAccess::rebind_id(ConnectionIdDemuxer& d, const Pcb& pcb,
                                    std::uint32_t id) {
  d.id_by_key_[pcb.key] = id;
}
void ValidatorTestAccess::push_free_id(ConnectionIdDemuxer& d,
                                       std::uint32_t id) {
  d.free_ids_.push_back(id);
}
void ValidatorTestAccess::pop_free_id(ConnectionIdDemuxer& d) {
  d.free_ids_.pop_back();
}

bool ValidatorTestAccess::rcu_move_head(RcuSequentDemuxer& d,
                                        std::uint32_t from, std::uint32_t to) {
  RcuSequentDemuxer::Bucket& src = *d.buckets_[from];
  RcuSequentDemuxer::Bucket& dst = *d.buckets_[to];
  RcuSequentDemuxer::Node* n = src.head.load(std::memory_order_relaxed);
  if (n == nullptr) return false;
  src.head.store(n->next.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  n->next.store(dst.head.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  dst.head.store(n, std::memory_order_relaxed);
  return true;
}
bool ValidatorTestAccess::rcu_cache_foreign_head(RcuSequentDemuxer& d,
                                                 std::uint32_t chain,
                                                 std::uint32_t other) {
  RcuSequentDemuxer::Node* n =
      d.buckets_[other]->head.load(std::memory_order_relaxed);
  if (n == nullptr) return false;
  d.buckets_[chain]->cache.store(n, std::memory_order_relaxed);
  return true;
}
void ValidatorTestAccess::rcu_clear_cache(RcuSequentDemuxer& d,
                                          std::uint32_t chain) {
  d.buckets_[chain]->cache.store(nullptr, std::memory_order_relaxed);
}
bool ValidatorTestAccess::rcu_toggle_head_retired(RcuSequentDemuxer& d,
                                                  std::uint32_t chain) {
  RcuSequentDemuxer::Node* n =
      d.buckets_[chain]->head.load(std::memory_order_relaxed);
  if (n == nullptr) return false;
  n->retired = !n->retired;
  return true;
}
void ValidatorTestAccess::rcu_adjust_size(RcuSequentDemuxer& d,
                                          std::ptrdiff_t delta) {
  d.size_.store(d.size_.load(std::memory_order_relaxed) +
                    static_cast<std::size_t>(delta),
                std::memory_order_relaxed);
}

std::vector<std::uint8_t>& ValidatorTestAccess::flat_tags(FlatDemuxer& d) {
  return d.tags_;
}
std::size_t& ValidatorTestAccess::flat_size(FlatDemuxer& d) {
  return d.size_;
}
void ValidatorTestAccess::flat_move_slot(FlatDemuxer& d, std::size_t from,
                                         std::size_t to) {
  d.tags_[to] = d.tags_[from];
  d.hashes_[to] = d.hashes_[from];
  d.keys_[to] = d.keys_[from];
  d.pcbs_[to] = std::move(d.pcbs_[from]);
  d.tags_[from] = 0;
}

std::uint8_t& ValidatorTestAccess::cuckoo_tag(CuckooDemuxer& d,
                                              std::size_t slot) {
  return d.meta_[slot / CuckooDemuxer::kBucketWidth]
      .tags[slot % CuckooDemuxer::kBucketWidth];
}

std::uint16_t& ValidatorTestAccess::cuckoo_filter(CuckooDemuxer& d,
                                                  std::size_t bucket) {
  return d.meta_[bucket].filter;
}

std::size_t& ValidatorTestAccess::cuckoo_size(CuckooDemuxer& d) {
  return d.size_;
}

void ValidatorTestAccess::cuckoo_move_slot(CuckooDemuxer& d, std::size_t from,
                                           std::size_t to) {
  cuckoo_tag(d, to) = cuckoo_tag(d, from);
  d.hashes_[to] = d.hashes_[from];
  d.keys_[to] = d.keys_[from];
  d.pcbs_[to] = std::move(d.pcbs_[from]);
  cuckoo_tag(d, from) = 0;
}

}  // namespace tcpdemux::core
