#include "core/validate.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/bsd_list.h"
#include "core/connection_id.h"
#include "core/cuckoo_demuxer.h"
#include "core/demuxer.h"
#include "core/dynamic_hash.h"
#include "core/flat_demuxer.h"
#include "core/hashed_mtf.h"
#include "core/move_to_front.h"
#include "core/pcb_list.h"
#include "core/rcu_demuxer.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"
#include "core/sharded_demuxer.h"

namespace tcpdemux::core {
namespace {

// Collector for validation errors with printf-lite formatting via streams.
class Errors {
 public:
  explicit Errors(ValidationReport& report) : report_(report) {}

  template <typename... Parts>
  void add(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    report_.errors.push_back(os.str());
  }

 private:
  ValidationReport& report_;
};

// Walks `list` checking doubly-linked consistency, and appends every member
// to `members` (when non-null) for cache/duplicate checks by the caller.
// The cycle guard caps the walk at size()+1 nodes so a corrupted next
// pointer cannot hang the validator.
void check_list(const PcbList& list, const char* what, Errors& errors,
                std::vector<const Pcb*>* members) {
  std::size_t count = 0;
  const Pcb* prev = nullptr;
  for (const Pcb* p = list.head(); p != nullptr; p = p->next) {
    if (count > list.size()) {
      errors.add(what, ": more nodes reachable than size()=", list.size(),
                 " (cycle or lost count)");
      return;
    }
    if (p->prev != prev) {
      errors.add(what, ": node ", count, " (", p->key.to_string(),
                 ") has prev link inconsistent with walk order");
    }
    if (members != nullptr) members->push_back(p);
    prev = p;
    ++count;
  }
  if (count != list.size()) {
    errors.add(what, ": reachable nodes (", count, ") != size() (",
               list.size(), ")");
  }
  if (list.tail() != prev) {
    errors.add(what, ": tail does not point at the last reachable node");
  }
  if (list.head() != nullptr && list.head()->prev != nullptr) {
    errors.add(what, ": head node has non-null prev");
  }
}

// Cache slots must point at a live member of the structure they cache for;
// a stale pointer (freed PCB, or a PCB that migrated elsewhere) is the
// classic intrusive-cache corruption.
void check_cache_member(const Pcb* cache, const char* what,
                        const std::vector<const Pcb*>& members,
                        Errors& errors) {
  if (cache == nullptr) return;
  if (std::find(members.begin(), members.end(), cache) == members.end()) {
    errors.add(what, ": cache points at a PCB that is not a live member");
  }
}

// No PCB may be reachable twice and no two PCBs may share a key; either
// breaks erase() (double free / wrong victim) and the examined-count
// accounting.
void check_unique(const std::vector<const Pcb*>& members, const char* what,
                  Errors& errors) {
  std::unordered_set<const Pcb*> seen;
  std::unordered_set<net::FlowKey> keys;
  for (const Pcb* p : members) {
    if (!seen.insert(p).second) {
      errors.add(what, ": PCB ", p->key.to_string(), " is reachable twice");
    }
    if (!keys.insert(p->key).second) {
      errors.add(what, ": duplicate key ", p->key.to_string());
    }
  }
}

}  // namespace

std::string ValidationReport::to_string() const {
  std::string out;
  for (const std::string& e : errors) {
    if (!out.empty()) out += '\n';
    out += e;
  }
  return out;
}

ValidationReport StructuralValidator::validate(const PcbList& list) {
  ValidationReport report;
  Errors errors(report);
  check_list(list, "pcb_list", errors, nullptr);
  return report;
}

ValidationReport StructuralValidator::validate(const BsdListDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> members;
  check_list(demuxer.list_, "bsd", errors, &members);
  check_unique(members, "bsd", errors);
  check_cache_member(demuxer.cache_, "bsd", members, errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const MoveToFrontDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> members;
  check_list(demuxer.list_, "mtf", errors, &members);
  check_unique(members, "mtf", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const SendReceiveCacheDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> members;
  check_list(demuxer.list_, "srcache", errors, &members);
  check_unique(members, "srcache", errors);
  check_cache_member(demuxer.recv_cache_, "srcache(recv)", members, errors);
  check_cache_member(demuxer.send_cache_, "srcache(send)", members, errors);
  return report;
}

ValidationReport StructuralValidator::validate(const SequentDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> all;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    const SequentDemuxer::Bucket& bucket = demuxer.buckets_[c];
    std::vector<const Pcb*> members;
    std::ostringstream what;
    what << "sequent chain " << c;
    check_list(bucket.list, what.str().c_str(), errors, &members);
    for (const Pcb* p : members) {
      if (demuxer.chain_of(p->key) != c) {
        errors.add("sequent: PCB ", p->key.to_string(), " hashes to chain ",
                   demuxer.chain_of(p->key), " but sits on chain ", c);
      }
    }
    if (!demuxer.options_.per_chain_cache && bucket.cache != nullptr) {
      errors.add("sequent chain ", c,
                 ": cache installed but per_chain_cache is disabled");
    }
    check_cache_member(bucket.cache, what.str().c_str(), members, errors);
    total += members.size();
    all.insert(all.end(), members.begin(), members.end());
  }
  if (total != demuxer.size_) {
    errors.add("sequent: chain occupancy total (", total,
               ") != size counter (", demuxer.size_, ")");
  }
  check_unique(all, "sequent", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const HashedMtfDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::vector<const Pcb*> all;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    std::vector<const Pcb*> members;
    std::ostringstream what;
    what << "hashed_mtf chain " << c;
    check_list(demuxer.buckets_[c], what.str().c_str(), errors, &members);
    for (const Pcb* p : members) {
      if (demuxer.chain_of(p->key) != c) {
        errors.add("hashed_mtf: PCB ", p->key.to_string(),
                   " hashes to chain ", demuxer.chain_of(p->key),
                   " but sits on chain ", c);
      }
    }
    total += members.size();
    all.insert(all.end(), members.begin(), members.end());
  }
  if (total != demuxer.size_) {
    errors.add("hashed_mtf: chain occupancy total (", total,
               ") != size counter (", demuxer.size_, ")");
  }
  check_unique(all, "hashed_mtf", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const DynamicHashDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  if (demuxer.buckets_.empty()) {
    errors.add("dynamic: bucket table is empty");
    return report;
  }
  std::vector<const Pcb*> all;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    const DynamicHashDemuxer::Bucket& bucket = demuxer.buckets_[c];
    std::vector<const Pcb*> members;
    std::ostringstream what;
    what << "dynamic chain " << c;
    check_list(bucket.list, what.str().c_str(), errors, &members);
    for (const Pcb* p : members) {
      if (demuxer.chain_of(p->key) != c) {
        errors.add("dynamic: PCB ", p->key.to_string(), " hashes to chain ",
                   demuxer.chain_of(p->key), " but sits on chain ", c);
      }
    }
    if (!demuxer.options_.per_chain_cache && bucket.cache != nullptr) {
      errors.add("dynamic chain ", c,
                 ": cache installed but per_chain_cache is disabled");
    }
    check_cache_member(bucket.cache, what.str().c_str(), members, errors);
    total += members.size();
    all.insert(all.end(), members.begin(), members.end());
  }

  if (demuxer.old_ != nullptr) {
    const auto& old = *demuxer.old_;
    if (old.residents == 0) {
      errors.add(
          "dynamic(old): migration adjunct present with zero residents");
    }
    if (old.cursor > old.buckets.size()) {
      errors.add("dynamic(old): cursor ", old.cursor,
                 " exceeds bucket count ", old.buckets.size());
    }
    std::size_t old_total = 0;
    for (std::uint32_t c = 0; c < old.buckets.size(); ++c) {
      const DynamicHashDemuxer::Bucket& bucket = old.buckets[c];
      std::vector<const Pcb*> members;
      std::ostringstream what;
      what << "dynamic(old) chain " << c;
      check_list(bucket.list, what.str().c_str(), errors, &members);
      // Drained-prefix invariant: the cursor advances only past empty
      // buckets and nothing is ever inserted into the old array, so
      // [0, cursor) stays empty for the whole migration.
      if (c < old.cursor && !members.empty()) {
        errors.add("dynamic(old): chain ", c,
                   " in the drained prefix [0, cursor=", old.cursor,
                   ") is non-empty");
      }
      for (const Pcb* p : members) {
        if (demuxer.old_chain_of(p->key) != c) {
          errors.add("dynamic(old): PCB ", p->key.to_string(),
                     " hashes to chain ", demuxer.old_chain_of(p->key),
                     " but sits on chain ", c);
        }
      }
      check_cache_member(bucket.cache, what.str().c_str(), members, errors);
      old_total += members.size();
      all.insert(all.end(), members.begin(), members.end());
    }
    if (old_total != old.residents) {
      errors.add("dynamic(old): chain occupancy total (", old_total,
                 ") != residents counter (", old.residents, ")");
    }
    total += old_total;
  }

  if (total != demuxer.size_) {
    errors.add("dynamic: chain occupancy total (", total,
               ") != size counter (", demuxer.size_, ")");
  }
  check_unique(all, "dynamic", errors);
  return report;
}

ValidationReport StructuralValidator::validate(
    const ConnectionIdDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);

  // Side table -> slot array: every mapping must land on a live slot whose
  // PCB carries the mapped key and whose conn_id is its own slot index.
  std::size_t occupied = 0;
  for (const auto& slot : demuxer.slots_) {
    if (slot != nullptr) ++occupied;
  }
  for (const auto& [key, id] : demuxer.id_by_key_) {
    if (id >= demuxer.slots_.size()) {
      errors.add("connection_id: key ", key.to_string(),
                 " maps to out-of-range id ", id);
      continue;
    }
    const Pcb* pcb = demuxer.slots_[id].get();
    if (pcb == nullptr) {
      errors.add("connection_id: key ", key.to_string(),
                 " maps to empty slot ", id);
    } else {
      if (pcb->key != key) {
        errors.add("connection_id: slot ", id, " holds key ",
                   pcb->key.to_string(), " but the table maps ",
                   key.to_string(), " to it");
      }
      if (pcb->conn_id != id) {
        errors.add("connection_id: slot ", id, " PCB carries conn_id ",
                   pcb->conn_id, " != its slot index");
      }
    }
  }
  if (occupied != demuxer.id_by_key_.size()) {
    errors.add("connection_id: occupied slots (", occupied,
               ") != side-table entries (", demuxer.id_by_key_.size(), ")");
  }

  // Free list: in-range, unique, and only over empty slots; together with
  // the occupied slots it must account for the whole ID space.
  std::unordered_set<std::uint32_t> free_seen;
  for (const std::uint32_t id : demuxer.free_ids_) {
    if (id >= demuxer.capacity_) {
      errors.add("connection_id: free list holds out-of-range id ", id);
      continue;
    }
    if (!free_seen.insert(id).second) {
      errors.add("connection_id: free list holds id ", id, " twice");
    }
    if (demuxer.slots_[id] != nullptr) {
      errors.add("connection_id: free list holds id ", id,
                 " whose slot is occupied");
    }
  }
  if (free_seen.size() + occupied != demuxer.capacity_) {
    errors.add("connection_id: free ids (", free_seen.size(),
               ") + occupied slots (", occupied, ") != capacity (",
               demuxer.capacity_, ")");
  }
  return report;
}

ValidationReport StructuralValidator::validate(
    const RcuSequentDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  std::unordered_set<const Pcb*> seen;
  std::unordered_set<net::FlowKey> keys;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < demuxer.buckets_.size(); ++c) {
    const RcuSequentDemuxer::Bucket& bucket = *demuxer.buckets_[c];
    std::unordered_set<const RcuSequentDemuxer::Node*> chain_nodes;
    std::size_t count = 0;
    for (const RcuSequentDemuxer::Node* n =
             bucket.head.load(std::memory_order_acquire);
         n != nullptr; n = n->next.load(std::memory_order_acquire)) {
      if (count > demuxer.size() + 1) {
        errors.add("rcu chain ", c, ": more nodes reachable than size()=",
                   demuxer.size(), " (cycle or lost count)");
        break;
      }
      chain_nodes.insert(n);
      if (n->retired) {
        errors.add("rcu chain ", c, ": reachable node ",
                   n->pcb.key.to_string(), " is flagged retired");
      }
      if (demuxer.chain_of(n->pcb.key) != c) {
        errors.add("rcu: PCB ", n->pcb.key.to_string(), " hashes to chain ",
                   demuxer.chain_of(n->pcb.key), " but sits on chain ", c);
      }
      if (!seen.insert(&n->pcb).second) {
        errors.add("rcu: PCB ", n->pcb.key.to_string(),
                   " is reachable twice");
      }
      if (!keys.insert(n->pcb.key).second) {
        errors.add("rcu: duplicate key ", n->pcb.key.to_string());
      }
      ++count;
    }
    total += count;

    const RcuSequentDemuxer::Node* cache =
        bucket.cache.load(std::memory_order_acquire);
    if (cache != nullptr) {
      if (!demuxer.options_.per_chain_cache) {
        errors.add("rcu chain ", c,
                   ": cache installed but per_chain_cache is disabled");
      }
      if (!chain_nodes.contains(cache)) {
        errors.add("rcu chain ", c,
                   ": cache points at a node that is not on the chain");
      } else if (cache->retired) {
        errors.add("rcu chain ", c, ": cache resurrects a retired node");
      }
    }
  }
  if (total != demuxer.size()) {
    errors.add("rcu: chain occupancy total (", total, ") != size counter (",
               demuxer.size(), ")");
  }
  if (demuxer.epoch_.freed_count() > demuxer.epoch_.retired_count()) {
    errors.add("rcu: epoch manager freed (", demuxer.epoch_.freed_count(),
               ") more nodes than were retired (",
               demuxer.epoch_.retired_count(), ")");
  }
  return report;
}

ValidationReport StructuralValidator::validate(const FlatDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  const std::size_t capacity = demuxer.capacity();
  if (capacity == 0 || (capacity & (capacity - 1)) != 0) {
    errors.add("flat: capacity ", capacity, " is not a power of two");
    return report;
  }
  if (demuxer.tags_.size() != capacity || demuxer.hashes_.size() != capacity ||
      demuxer.keys_.size() != capacity || demuxer.pcbs_.size() != capacity) {
    errors.add("flat: slot arrays are not all sized to capacity ", capacity);
    return report;
  }

  // Per-table slot checks; the key set is shared across the live and (when
  // migrating) old arrays so a key resident in both is caught as a
  // duplicate. Returns the table's occupied-slot count.
  std::unordered_set<net::FlowKey> keys;
  const auto check_table =
      [&](const std::vector<std::uint8_t>& tags,
          const std::vector<std::uint32_t>& hashes,
          const std::vector<net::FlowKey>& slot_keys,
          const std::vector<std::unique_ptr<Pcb>>& pcbs, std::size_t mask,
          const char* what) {
        std::size_t occupied = 0;
        const std::size_t cap = mask + 1;
        for (std::size_t i = 0; i < cap; ++i) {
          if (tags[i] == 0) {
            if (pcbs[i] != nullptr) {
              errors.add(what, " slot ", i,
                         ": empty tag but a PCB is still owned");
            }
            continue;
          }
          ++occupied;
          const Pcb* const pcb = pcbs[i].get();
          if (pcb == nullptr) {
            errors.add(what, " slot ", i, ": occupied tag but no PCB");
            continue;
          }
          // Tag <-> hash <-> key agreement: the fingerprint array and the
          // hash array must both describe the key actually stored in the
          // slot, or lookups silently stop finding it.
          if (pcb->key != slot_keys[i]) {
            errors.add(what, " slot ", i, ": PCB key ", pcb->key.to_string(),
                       " != slot key ", slot_keys[i].to_string());
          }
          const std::uint32_t h = demuxer.hash_of(slot_keys[i]);
          if (hashes[i] != h) {
            errors.add(what, " slot ", i, ": stored hash ", hashes[i],
                       " != hash of stored key ", h);
          }
          if (tags[i] != FlatDemuxer::tag_of(hashes[i])) {
            errors.add(what, " slot ", i, ": tag ",
                       static_cast<unsigned>(tags[i]),
                       " disagrees with stored hash's fingerprint ",
                       static_cast<unsigned>(FlatDemuxer::tag_of(hashes[i])));
          }
          // Robin-hood probe invariant: a displaced resident implies an
          // occupied predecessor at most one step closer to its own home.
          // A violation breaks the miss early-exit (keys become
          // unreachable).
          const std::size_t dist = (i - (hashes[i] & mask)) & mask;
          if (dist > 0) {
            const std::size_t prev = (i - 1) & mask;
            const std::size_t prev_dist =
                (prev - (hashes[prev] & mask)) & mask;
            if (tags[prev] == 0) {
              errors.add(what, " slot ", i, ": probe distance ", dist,
                         " but predecessor slot is empty");
            } else if (prev_dist + 1 < dist) {
              errors.add(what, " slot ", i, ": probe distance ", dist,
                         " exceeds predecessor's by more than one (",
                         prev_dist, ")");
            }
          }
          if (!keys.insert(slot_keys[i]).second) {
            errors.add(what, ": duplicate key ", slot_keys[i].to_string());
          }
        }
        return occupied;
      };

  std::size_t occupied =
      check_table(demuxer.tags_, demuxer.hashes_, demuxer.keys_,
                  demuxer.pcbs_, demuxer.mask_, "flat");

  if (demuxer.old_ != nullptr) {
    const auto& old = *demuxer.old_;
    const std::size_t old_capacity = old.mask + 1;
    if (old.tags.size() != old_capacity ||
        old.hashes.size() != old_capacity ||
        old.keys.size() != old_capacity || old.pcbs.size() != old_capacity) {
      errors.add("flat(old): slot arrays are not all sized to capacity ",
                 old_capacity);
      return report;
    }
    // The adjunct exists only while debt remains, and drains into a table
    // exactly one doubling larger.
    if (old.residents == 0) {
      errors.add("flat(old): migration adjunct present with zero residents");
    }
    if (old_capacity * 2 != capacity) {
      errors.add("flat(old): old capacity ", old_capacity,
                 " is not half the live capacity ", capacity);
    }
    // Drained-prefix invariant: the cursor advances only past empty slots
    // and nothing is ever placed into the old array, so [0, cursor) stays
    // empty for the whole migration.
    if (old.cursor > old_capacity) {
      errors.add("flat(old): cursor ", old.cursor, " exceeds capacity ",
                 old_capacity);
    }
    for (std::size_t i = 0; i < std::min(old.cursor, old_capacity); ++i) {
      if (old.tags[i] != 0) {
        errors.add("flat(old): slot ", i,
                   " in the drained prefix [0, cursor=", old.cursor,
                   ") is occupied");
        break;
      }
    }
    const std::size_t old_occupied = check_table(
        old.tags, old.hashes, old.keys, old.pcbs, old.mask, "flat(old)");
    if (old_occupied != old.residents) {
      errors.add("flat(old): occupied slots (", old_occupied,
                 ") != residents counter (", old.residents, ")");
    }
    occupied += old_occupied;
  }

  if (occupied != demuxer.size_) {
    errors.add("flat: occupied slots (", occupied, ") != size counter (",
               demuxer.size_, ")");
  }
  // Growth keeps occupancy at or below 7/8; a violation means the next
  // insert was allowed to degrade probe runs past the design bound. While
  // growth is allocation-blocked the degradation ladder admits up to the
  // hard 15/16 shed watermark instead.
  if (demuxer.grow_blocked_) {
    if (demuxer.size_ * 16 > capacity * 15) {
      errors.add("flat: occupancy ", demuxer.size_,
                 " exceeds the blocked-growth 15/16 watermark of capacity ",
                 capacity);
    }
  } else if (demuxer.size_ * 8 > capacity * 7) {
    errors.add("flat: occupancy ", demuxer.size_, " exceeds 7/8 of capacity ",
               capacity);
  }
  return report;
}

ValidationReport StructuralValidator::validate(const CuckooDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);
  constexpr std::size_t kW = CuckooDemuxer::kBucketWidth;
  const std::size_t buckets = demuxer.bucket_count();
  const std::size_t capacity = demuxer.capacity();
  if (buckets < CuckooDemuxer::kMinBuckets ||
      (buckets & (buckets - 1)) != 0) {
    errors.add("cuckoo: bucket count ", buckets,
               " is not a power of two >= 4");
    return report;
  }
  if (demuxer.meta_.size() != buckets ||
      demuxer.filter_counts_.size() != buckets ||
      demuxer.hashes_.size() != capacity ||
      demuxer.keys_.size() != capacity || demuxer.pcbs_.size() != capacity) {
    errors.add("cuckoo: arrays are not all sized to ", buckets, " buckets");
    return report;
  }

  // Per-table checks; the key set is shared across the live and (when
  // migrating) old arrays so a key resident in both is caught as a
  // duplicate. Expected counted-filter state is recomputed per table from
  // resident placement. Returns the table's occupied-slot count.
  std::unordered_set<net::FlowKey> keys;
  const auto check_table =
      [&](const std::vector<CuckooDemuxer::BucketMeta>& meta,
          const std::vector<std::uint32_t>& hashes,
          const std::vector<net::FlowKey>& slot_keys,
          const std::vector<std::unique_ptr<Pcb>>& pcbs,
          const std::vector<std::array<std::uint16_t, 16>>& filter_counts,
          std::size_t mask, const char* what) {
        const std::size_t table_buckets = mask + 1;
        const std::size_t table_capacity = table_buckets * kW;
        std::vector<std::array<std::uint16_t, 16>> expected(table_buckets);
        std::size_t occupied = 0;
        for (std::size_t i = 0; i < table_capacity; ++i) {
          const std::size_t bucket = i / kW;
          const std::uint8_t tag = meta[bucket].tags[i % kW];
          if (tag == 0) {
            if (pcbs[i] != nullptr) {
              errors.add(what, " slot ", i,
                         ": empty tag but a PCB is still owned");
            }
            continue;
          }
          ++occupied;
          const Pcb* const pcb = pcbs[i].get();
          if (pcb == nullptr) {
            errors.add(what, " slot ", i, ": occupied tag but no PCB");
            continue;
          }
          if (pcb->key != slot_keys[i]) {
            errors.add(what, " slot ", i, ": PCB key ", pcb->key.to_string(),
                       " != slot key ", slot_keys[i].to_string());
          }
          const std::uint32_t h = demuxer.hash_of(slot_keys[i]);
          if (hashes[i] != h) {
            errors.add(what, " slot ", i, ": stored hash ", hashes[i],
                       " != hash of stored key ", h);
          }
          if (tag != CuckooDemuxer::tag_of(hashes[i])) {
            errors.add(what, " slot ", i, ": tag ",
                       static_cast<unsigned>(tag),
                       " disagrees with stored hash's fingerprint ",
                       static_cast<unsigned>(
                           CuckooDemuxer::tag_of(hashes[i])));
          }
          // Placement: a resident must sit in its primary bucket or the
          // alternate derived from (primary, tag) — anywhere else it is
          // unreachable by lookup.
          const std::size_t primary = hashes[i] & mask;
          const std::size_t alt =
              (primary ^ (net::mix32_avalanche(tag) | 1U)) & mask;
          if (bucket != primary && bucket != alt) {
            errors.add(what, " slot ", i, ": resident of bucket ", bucket,
                       " but its candidates are ", primary, " and ", alt);
          }
          // Filter soundness: an overflowed resident (living in its
          // alternate) must be registered in its primary bucket's counted
          // filter, or a negative-looking probe of the primary bucket
          // would hide it forever.
          if (bucket == alt && bucket != primary) {
            ++expected[primary][CuckooDemuxer::filter_index(tag)];
          }
          if (!keys.insert(slot_keys[i]).second) {
            errors.add(what, ": duplicate key ", slot_keys[i].to_string());
          }
        }
        for (std::size_t b = 0; b < table_buckets; ++b) {
          for (std::size_t idx = 0; idx < 16; ++idx) {
            if (filter_counts[b][idx] != expected[b][idx]) {
              errors.add(what, " bucket ", b, ": filter count[", idx,
                         "] = ", filter_counts[b][idx],
                         " but placement implies ", expected[b][idx]);
            }
            const bool bit = (meta[b].filter & (1U << idx)) != 0;
            if (bit != (filter_counts[b][idx] != 0)) {
              errors.add(what, " bucket ", b, ": filter bit ", idx,
                         bit ? " set without" : " clear despite",
                         " a backing count");
            }
          }
        }
        return occupied;
      };

  std::size_t occupied =
      check_table(demuxer.meta_, demuxer.hashes_, demuxer.keys_,
                  demuxer.pcbs_, demuxer.filter_counts_, demuxer.bucket_mask_,
                  "cuckoo");

  if (demuxer.old_ != nullptr) {
    const auto& old = *demuxer.old_;
    const std::size_t old_buckets = old.bucket_mask + 1;
    const std::size_t old_capacity = old.capacity();
    if (old.meta.size() != old_buckets ||
        old.filter_counts.size() != old_buckets ||
        old.hashes.size() != old_capacity ||
        old.keys.size() != old_capacity || old.pcbs.size() != old_capacity) {
      errors.add("cuckoo(old): arrays are not all sized to ", old_buckets,
                 " buckets");
      return report;
    }
    if (old.residents == 0) {
      errors.add(
          "cuckoo(old): migration adjunct present with zero residents");
    }
    if (old_buckets * 2 != buckets) {
      errors.add("cuckoo(old): old bucket count ", old_buckets,
                 " is not half the live bucket count ", buckets);
    }
    // Drained-prefix invariant: the cursor advances only past empty slots
    // and nothing is ever placed or kicked into the old array, so
    // [0, cursor) stays empty for the whole migration.
    if (old.cursor > old_capacity) {
      errors.add("cuckoo(old): cursor ", old.cursor, " exceeds capacity ",
                 old_capacity);
    }
    for (std::size_t i = 0; i < std::min(old.cursor, old_capacity); ++i) {
      if (old.meta[i / kW].tags[i % kW] != 0) {
        errors.add("cuckoo(old): slot ", i,
                   " in the drained prefix [0, cursor=", old.cursor,
                   ") is occupied");
        break;
      }
    }
    const std::size_t old_occupied =
        check_table(old.meta, old.hashes, old.keys, old.pcbs,
                    old.filter_counts, old.bucket_mask, "cuckoo(old)");
    if (old_occupied != old.residents) {
      errors.add("cuckoo(old): occupied slots (", old_occupied,
                 ") != residents counter (", old.residents, ")");
    }
    occupied += old_occupied;
  }

  if (occupied != demuxer.size_) {
    errors.add("cuckoo: occupied slots (", occupied, ") != size counter (",
               demuxer.size_, ")");
  }
  // Growth keeps occupancy at or below 7/8; while growth is
  // allocation-blocked the degradation ladder admits up to the hard 15/16
  // shed watermark instead.
  if (demuxer.grow_blocked_) {
    if (demuxer.size_ * 16 > capacity * 15) {
      errors.add("cuckoo: occupancy ", demuxer.size_,
                 " exceeds the blocked-growth 15/16 watermark of capacity ",
                 capacity);
    }
  } else if (demuxer.size_ * 8 > capacity * 7) {
    errors.add("cuckoo: occupancy ", demuxer.size_,
               " exceeds 7/8 of capacity ", capacity);
  }
  return report;
}

ValidationReport StructuralValidator::validate(const ShardedDemuxer& demuxer) {
  ValidationReport report;
  Errors errors(report);

  // Each shard is a full registry backend: recurse through the type
  // dispatcher so a shard's inner corruption surfaces with its shard index.
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < demuxer.shard_count(); ++s) {
    const Demuxer& shard = demuxer.shard(s);
    const ValidationReport inner = validate_demuxer(shard);
    for (const std::string& e : inner.errors) {
      errors.add("shard ", s, ": ", e);
    }
    total += shard.size();
  }
  if (total != demuxer.size()) {
    errors.add("sharded: sum of shard sizes ", total, " != size() ",
               demuxer.size());
  }

  // Cross-shard invariants: no key resident twice anywhere in the fleet,
  // and — while steering has never drifted — every PCB on exactly the
  // shard its key steers to (a wrong-shard resident would be unreachable
  // via the fast path, a silent connection loss).
  std::unordered_set<net::FlowKey> seen;
  seen.reserve(demuxer.size());
  for (std::uint32_t s = 0; s < demuxer.shard_count(); ++s) {
    demuxer.shard(s).for_each_pcb([&](const Pcb& pcb) {
      if (!seen.insert(pcb.key).second) {
        errors.add("sharded: key ", pcb.key.to_string(),
                   " resident on more than one shard");
      }
      if (!demuxer.misplaced_possible_ &&
          demuxer.home_shard(pcb.key) != s) {
        errors.add("sharded: key ", pcb.key.to_string(), " on shard ", s,
                   " but steering homes it on shard ",
                   demuxer.home_shard(pcb.key));
      }
    });
  }
  return report;
}

ValidationReport validate_demuxer(const Demuxer& demuxer) {
  if (const auto* d = dynamic_cast<const ShardedDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const BsdListDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const MoveToFrontDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const SendReceiveCacheDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const SequentDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const HashedMtfDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const DynamicHashDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const ConnectionIdDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const RcuDemuxerAdapter*>(&demuxer)) {
    return StructuralValidator::validate(d->inner());
  }
  if (const auto* d = dynamic_cast<const FlatDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  if (const auto* d = dynamic_cast<const CuckooDemuxer*>(&demuxer)) {
    return StructuralValidator::validate(*d);
  }
  ValidationReport report;
  report.errors.push_back("validate_demuxer: no validator for demuxer '" +
                          demuxer.name() + "'");
  return report;
}

// --- test-only access ------------------------------------------------------

PcbList& ValidatorTestAccess::list(BsdListDemuxer& d) { return d.list_; }
Pcb*& ValidatorTestAccess::cache(BsdListDemuxer& d) { return d.cache_; }
PcbList& ValidatorTestAccess::list(MoveToFrontDemuxer& d) { return d.list_; }
PcbList& ValidatorTestAccess::list(SendReceiveCacheDemuxer& d) {
  return d.list_;
}
Pcb*& ValidatorTestAccess::recv_cache(SendReceiveCacheDemuxer& d) {
  return d.recv_cache_;
}
Pcb*& ValidatorTestAccess::send_cache(SendReceiveCacheDemuxer& d) {
  return d.send_cache_;
}
PcbList& ValidatorTestAccess::chain(SequentDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain].list;
}
Pcb*& ValidatorTestAccess::cache(SequentDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain].cache;
}
std::size_t& ValidatorTestAccess::size(SequentDemuxer& d) { return d.size_; }
PcbList& ValidatorTestAccess::chain(HashedMtfDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain];
}
std::size_t& ValidatorTestAccess::size(HashedMtfDemuxer& d) { return d.size_; }
PcbList& ValidatorTestAccess::chain(DynamicHashDemuxer& d,
                                    std::uint32_t chain) {
  return d.buckets_[chain].list;
}
Pcb*& ValidatorTestAccess::cache(DynamicHashDemuxer& d, std::uint32_t chain) {
  return d.buckets_[chain].cache;
}
std::size_t& ValidatorTestAccess::size(DynamicHashDemuxer& d) {
  return d.size_;
}

void ValidatorTestAccess::rebind_id(ConnectionIdDemuxer& d, const Pcb& pcb,
                                    std::uint32_t id) {
  d.id_by_key_[pcb.key] = id;
}
void ValidatorTestAccess::push_free_id(ConnectionIdDemuxer& d,
                                       std::uint32_t id) {
  d.free_ids_.push_back(id);
}
void ValidatorTestAccess::pop_free_id(ConnectionIdDemuxer& d) {
  d.free_ids_.pop_back();
}

bool ValidatorTestAccess::rcu_move_head(RcuSequentDemuxer& d,
                                        std::uint32_t from, std::uint32_t to) {
  RcuSequentDemuxer::Bucket& src = *d.buckets_[from];
  RcuSequentDemuxer::Bucket& dst = *d.buckets_[to];
  RcuSequentDemuxer::Node* n = src.head.load(std::memory_order_relaxed);
  if (n == nullptr) return false;
  src.head.store(n->next.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  n->next.store(dst.head.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  dst.head.store(n, std::memory_order_relaxed);
  return true;
}
bool ValidatorTestAccess::rcu_cache_foreign_head(RcuSequentDemuxer& d,
                                                 std::uint32_t chain,
                                                 std::uint32_t other) {
  RcuSequentDemuxer::Node* n =
      d.buckets_[other]->head.load(std::memory_order_relaxed);
  if (n == nullptr) return false;
  d.buckets_[chain]->cache.store(n, std::memory_order_relaxed);
  return true;
}
void ValidatorTestAccess::rcu_clear_cache(RcuSequentDemuxer& d,
                                          std::uint32_t chain) {
  d.buckets_[chain]->cache.store(nullptr, std::memory_order_relaxed);
}
bool ValidatorTestAccess::rcu_toggle_head_retired(RcuSequentDemuxer& d,
                                                  std::uint32_t chain) {
  RcuSequentDemuxer::Node* n =
      d.buckets_[chain]->head.load(std::memory_order_relaxed);
  if (n == nullptr) return false;
  n->retired = !n->retired;
  return true;
}
void ValidatorTestAccess::rcu_adjust_size(RcuSequentDemuxer& d,
                                          std::ptrdiff_t delta) {
  d.size_.store(d.size_.load(std::memory_order_relaxed) +
                    static_cast<std::size_t>(delta),
                std::memory_order_relaxed);
}

std::vector<std::uint8_t>& ValidatorTestAccess::flat_tags(FlatDemuxer& d) {
  return d.tags_;
}
std::size_t& ValidatorTestAccess::flat_size(FlatDemuxer& d) {
  return d.size_;
}
void ValidatorTestAccess::flat_move_slot(FlatDemuxer& d, std::size_t from,
                                         std::size_t to) {
  d.tags_[to] = d.tags_[from];
  d.hashes_[to] = d.hashes_[from];
  d.keys_[to] = d.keys_[from];
  d.pcbs_[to] = std::move(d.pcbs_[from]);
  d.tags_[from] = 0;
}

std::uint8_t& ValidatorTestAccess::cuckoo_tag(CuckooDemuxer& d,
                                              std::size_t slot) {
  return d.meta_[slot / CuckooDemuxer::kBucketWidth]
      .tags[slot % CuckooDemuxer::kBucketWidth];
}

std::uint16_t& ValidatorTestAccess::cuckoo_filter(CuckooDemuxer& d,
                                                  std::size_t bucket) {
  return d.meta_[bucket].filter;
}

std::size_t& ValidatorTestAccess::cuckoo_size(CuckooDemuxer& d) {
  return d.size_;
}

void ValidatorTestAccess::cuckoo_move_slot(CuckooDemuxer& d, std::size_t from,
                                           std::size_t to) {
  cuckoo_tag(d, to) = cuckoo_tag(d, from);
  d.hashes_[to] = d.hashes_[from];
  d.keys_[to] = d.keys_[from];
  d.pcbs_[to] = std::move(d.pcbs_[from]);
  cuckoo_tag(d, from) = 0;
}

}  // namespace tcpdemux::core
