#include "core/rcu_demuxer.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/fault_inject.h"
#include "core/prefetch.h"

namespace tcpdemux::core {

RcuSequentDemuxer::RcuSequentDemuxer(Options options) : options_(options) {
  if (options_.chains == 0) {
    throw std::invalid_argument("RcuSequentDemuxer: chain count must be >= 1");
  }
  buckets_.reserve(options_.chains);
  for (std::uint32_t i = 0; i < options_.chains; ++i) {
    buckets_.push_back(std::make_unique<Bucket>());
  }
}

RcuSequentDemuxer::~RcuSequentDemuxer() {
  // Caller guarantees quiescence (no guards alive). Live nodes are only
  // in the chains; retired ones live in the epoch manager's limbo and are
  // freed by its destructor.
  for (auto& bucket : buckets_) {
    Node* n = bucket->head.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;  // NOLINT(raw-owning-memory)
      n = next;
    }
  }
}

Pcb* RcuSequentDemuxer::insert(const net::FlowKey& key) {
  Bucket& b = *buckets_[chain_of(key)];
  const MutexLock lock(b.mutex);
  for (Node* n = b.head.load(std::memory_order_relaxed); n != nullptr;
       n = n->next.load(std::memory_order_relaxed)) {
    if (n->pcb.key == key) return nullptr;
  }
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  // NOLINTNEXTLINE(raw-owning-memory): chain nodes are epoch-owned.
  Node* node = new Node(key, conn_seq_.fetch_add(1, std::memory_order_relaxed));
  node->next.store(b.head.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  // Release-publish: a reader that acquires the new head sees the fully
  // constructed node, key included.
  b.head.store(node, std::memory_order_release);
  size_.fetch_add(1, std::memory_order_relaxed);
  return &node->pcb;
}

bool RcuSequentDemuxer::erase(const net::FlowKey& key) {
  Bucket& b = *buckets_[chain_of(key)];
  Node* victim = nullptr;
  {
    const MutexLock lock(b.mutex);
    Node* prev = nullptr;
    Node* cur = b.head.load(std::memory_order_relaxed);
    while (cur != nullptr && !(cur->pcb.key == key)) {
      prev = cur;
      cur = cur->next.load(std::memory_order_relaxed);
    }
    if (cur == nullptr) return false;
    // Order matters: mark retired (so no reader re-installs it into the
    // cache), drop it from the cache, then unlink. Readers already past
    // the predecessor may still traverse the node — its next pointer
    // stays intact, so they continue down the chain unharmed.
    cur->retired = true;
    if (b.cache.load(std::memory_order_relaxed) == cur) {
      b.cache.store(nullptr, std::memory_order_release);
    }
    Node* next = cur->next.load(std::memory_order_relaxed);
    if (prev != nullptr) {
      prev->next.store(next, std::memory_order_release);
    } else {
      b.head.store(next, std::memory_order_release);
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    victim = cur;
  }
  epoch_.retire(victim, &delete_node);
  return true;
}

LookupResult RcuSequentDemuxer::lookup_in_chain(
    Bucket& b, const net::FlowKey& key) noexcept {
  LookupResult r;
  if (options_.per_chain_cache) {
    Node* cached = b.cache.load(std::memory_order_acquire);
    if (cached != nullptr) {
      ++r.examined;
      if (cached->pcb.key == key) {
        r.pcb = &cached->pcb;
        r.cache_hit = true;
        return r;
      }
    }
  }
  Node* found = nullptr;
  for (Node* n = b.head.load(std::memory_order_acquire); n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    ++r.examined;
    if (n->pcb.key == key) {
      found = n;
      break;
    }
  }
  if (found != nullptr) {
    r.pcb = &found->pcb;
    if (options_.per_chain_cache && b.mutex.try_lock()) {
      // The cache is a hint: install only if the chain lock is free, and
      // never install a node a concurrent erase has already retired —
      // that pointer would outlive its grace period.
      if (!found->retired) {
        b.cache.store(found, std::memory_order_release);
      }
      b.mutex.unlock();
    }
  }
  return r;
}

LookupResult RcuSequentDemuxer::lookup(const net::FlowKey& key,
                                       SegmentKind /*kind*/) {
  Bucket& b = *buckets_[chain_of(key)];
  LookupResult r;
  {
    const EpochManager::Guard guard(epoch_);
    r = lookup_in_chain(b, key);
  }
  lookups_.fetch_add(1, std::memory_order_relaxed);
  examined_.fetch_add(r.examined, std::memory_order_relaxed);
  return r;
}

void RcuSequentDemuxer::lookup_batch(std::span<const net::FlowKey> keys,
                                     std::span<LookupResult> results,
                                     SegmentKind /*kind*/) {
  constexpr std::size_t kChunk = 16;
  std::array<Bucket*, kChunk> chain;
  std::uint64_t examined = 0;
  const EpochManager::Guard guard(epoch_);
  for (std::size_t base = 0; base < keys.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, keys.size() - base);
    // Hash the whole chunk first and prefetch each bucket's header line,
    // so the chain walks below start with the heads already in flight.
    for (std::size_t i = 0; i < n; ++i) {
      chain[i] = buckets_[chain_of(keys[base + i])].get();
      prefetch_read(chain[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      results[base + i] = lookup_in_chain(*chain[i], keys[base + i]);
      examined += results[base + i].examined;
    }
  }
  lookups_.fetch_add(keys.size(), std::memory_order_relaxed);
  examined_.fetch_add(examined, std::memory_order_relaxed);
}

LookupResult RcuSequentDemuxer::lookup_wildcard(const net::FlowKey& key) {
  // Mirrors SequentDemuxer::lookup_wildcard: the packet's home chain is
  // consulted first so an exact match short-circuits; wildcard-bearing
  // PCBs hash elsewhere, so all chains must be scanned otherwise.
  const EpochManager::Guard guard(epoch_);
  LookupResult best;
  int best_score = -1;
  const std::uint32_t home = chain_of(key);
  for (std::uint32_t i = 0; i < options_.chains; ++i) {
    Bucket& b = *buckets_[(home + i) % options_.chains];
    Node* chain_best = nullptr;
    int chain_score = -1;
    for (Node* n = b.head.load(std::memory_order_acquire); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      ++best.examined;
      const int score = n->pcb.key.match_score(key);
      if (score < 0) continue;
      if (score == 0) {
        best.pcb = &n->pcb;
        return best;
      }
      if (chain_score < 0 || score < chain_score) {
        chain_score = score;
        chain_best = n;
      }
    }
    if (chain_best == nullptr) continue;
    if (best_score < 0 || chain_score < best_score) {
      best_score = chain_score;
      best.pcb = &chain_best->pcb;
    }
  }
  return best;
}

void RcuSequentDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  const EpochManager::Guard guard(epoch_);
  for (const auto& bucket : buckets_) {
    for (Node* n = bucket->head.load(std::memory_order_acquire); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      fn(n->pcb);
    }
  }
}

std::string RcuSequentDemuxer::name() const {
  std::string n = "rcu(h=";
  n += std::to_string(options_.chains);
  n += ',';
  n += net::hash_spec_name(options_.hasher);
  if (!options_.per_chain_cache) n += ",nocache";
  n += ')';
  return n;
}

std::vector<std::size_t> RcuSequentDemuxer::chain_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(buckets_.size());
  const EpochManager::Guard guard(epoch_);
  for (const auto& bucket : buckets_) {
    std::size_t n = 0;
    for (Node* node = bucket->head.load(std::memory_order_acquire);
         node != nullptr; node = node->next.load(std::memory_order_acquire)) {
      ++n;
    }
    sizes.push_back(n);
  }
  return sizes;
}

std::size_t RcuSequentDemuxer::memory_bytes() const {
  return size() * sizeof(Node) + sizeof(*this) +
         buckets_.capacity() * (sizeof(std::unique_ptr<Bucket>) +
                                sizeof(Bucket)) +
         epoch_.memory_bytes();
}

}  // namespace tcpdemux::core
