// EpochManager: lightweight epoch-based memory reclamation (EBR) for
// read-mostly data structures.
//
// The paper's first author went on to invent RCU [McK98]; this is the
// library-level analogue of the kernel scheme, specialized for the
// demultiplexing hot path. Readers enter a *read-side critical section*
// (EpochManager::Guard) with two uncontended atomic stores and no locks,
// no RMW instructions, and no shared cache-line writes other than the
// thread's own epoch slot. Writers unlink nodes from their structure,
// then retire() them; a retired node is physically freed only after every
// thread that could still hold a reference has left its critical section.
//
// Scheme (classic 3-epoch EBR, Fraser 2004): a global epoch counter E
// advances only when every *active* reader has observed the current
// value. A node retired under epoch e can be referenced only by readers
// pinned at e-1 or e, so once E reaches e+2 the node is unreachable and
// its limbo bucket (e mod 3) may be freed. Three buckets therefore
// suffice.
//
// Thread registration is implicit: the first Guard a thread constructs
// against a given manager allocates that thread's epoch slot (one mutex
// acquisition, once per thread per manager); subsequent pins are
// wait-free. Slots are owned by the manager and survive thread exit
// (an exited thread's slot stays inactive and never blocks advancement).
//
// Lifetime contract: the caller must ensure no Guard is alive and no
// retire() is in flight when the manager is destroyed; the destructor
// frees everything still in limbo.
#ifndef TCPDEMUX_CORE_EPOCH_H_
#define TCPDEMUX_CORE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/thread_annotations.h"

namespace tcpdemux::core {

class EpochManager {
 private:
  struct Slot;  // defined below; Guard holds a pointer to its own slot

 public:
  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII read-side critical section. Construction pins the calling
  /// thread at the current epoch; destruction unpins it. Nesting is
  /// supported (inner guards are free). No locks are taken after the
  /// thread's first guard against this manager.
  class Guard {
   public:
    explicit Guard(EpochManager& manager);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager* manager_;
    Slot* slot_;
  };

  /// Hands `ptr` to the manager for deferred destruction via `deleter`.
  /// Must be called *after* `ptr` has been unlinked from the shared
  /// structure (new readers can no longer reach it). Thread-safe.
  void retire(void* ptr, void (*deleter)(void*));

  /// Attempts one epoch advance; frees the limbo bucket that the advance
  /// proves unreachable. Returns true if the epoch advanced. Called
  /// automatically by retire() but exposed for tests and idle reclaim.
  bool try_advance();

  /// Advances until every retired node has been freed. Spins while
  /// readers are active, so only call from a quiescent writer (tests,
  /// shutdown paths).
  void drain();

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_seq_cst);
  }
  /// Nodes handed to retire() so far.
  [[nodiscard]] std::uint64_t retired_count() const noexcept {
    return retired_.load(std::memory_order_relaxed);
  }
  /// Nodes physically freed so far (always <= retired_count()).
  [[nodiscard]] std::uint64_t freed_count() const noexcept {
    return freed_.load(std::memory_order_relaxed);
  }
  /// Nodes still in limbo.
  [[nodiscard]] std::uint64_t pending_count() const noexcept {
    return retired_count() - freed_count();
  }
  /// Threads that have ever pinned against this manager.
  [[nodiscard]] std::size_t registered_threads() const;

  /// Bytes of manager-side bookkeeping (slots + limbo entries), for
  /// Demuxer::memory_bytes accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  // One cache line per thread: bit 0 = active, bits 63..1 = pinned epoch.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> state{0};
    int nest = 0;  // accessed only by the owning thread
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  static constexpr std::uint64_t kActiveBit = 1;

  Slot* slot_for_this_thread();
  void pin(Slot& slot) noexcept;
  void unpin(Slot& slot) noexcept;
  // Frees one limbo bucket.
  void free_bucket(std::vector<Retired>& bucket) REQUIRES(mutex_);

  const std::uint64_t id_;  // process-unique, for the thread-local cache
  std::atomic<std::uint64_t> global_epoch_{1};
  mutable Mutex mutex_;  // guards slots_ registration + limbo_
  std::vector<std::unique_ptr<Slot>> slots_ GUARDED_BY(mutex_);
  std::array<std::vector<Retired>, 3> limbo_ GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_EPOCH_H_
