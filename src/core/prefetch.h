// Software-prefetch portability shim.
//
// The batched lookup pipelines (Demuxer::lookup_batch overrides) hide DRAM
// latency by issuing prefetches for every bucket/tag line in a burst before
// probing any of them. All prefetching goes through this header so the
// compiler intrinsic appears in exactly one place (the repo lint enforces
// this) and non-GNU toolchains degrade to a no-op instead of a build break.
#ifndef TCPDEMUX_CORE_PREFETCH_H_
#define TCPDEMUX_CORE_PREFETCH_H_

namespace tcpdemux::core {

/// Hints the CPU to pull the cache line holding `addr` toward L1 for a
/// read. `addr` may be any address, including past the end of an array —
/// prefetch never faults.
inline void prefetch_read(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  // 0 = read, 3 = high temporal locality (keep in all cache levels).
  __builtin_prefetch(addr, 0, 3);  // NOLINT(prefetch-discipline)
#else
  (void)addr;
#endif
}

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_PREFETCH_H_
