// The Sequent hashed PCB lookup algorithm (paper §3.4) — the paper's
// primary contribution.
//
// H hash chains, each a linear list with its own single-entry last-found
// cache. The flow key is hashed to pick a chain; the chain's cache is
// probed; on miss the chain is scanned linearly. Expected cost (Eq 19
// approximation): C(N,H) = C_BSD(N/H), approaching N/2H — an order of
// magnitude below BSD, MTF, and the send/receive cache at TPC/A scale.
// The installation default was H = 19 chains (a prime, so it repairs the
// weak low-order bits of cheap fold hashes).
//
// The per-chain cache may be disabled (`Options::per_chain_cache = false`)
// to reproduce the ablation in §3.4's closing discussion: the miss penalty
// dominates the hit ratio, so the cache's benefit is modest once chains are
// short.
#ifndef TCPDEMUX_CORE_SEQUENT_HASH_H_
#define TCPDEMUX_CORE_SEQUENT_HASH_H_

#include <cstdint>
#include <vector>

#include "core/demuxer.h"
#include "core/pcb_list.h"
#include "net/hashers.h"

namespace tcpdemux::core {

class SequentDemuxer final : public Demuxer {
 public:
  struct Options {
    std::uint32_t chains = 19;  ///< installation default in Sequent PTX
    net::HashSpec hasher = net::HasherKind::kXorFold;  ///< seed 0 = unkeyed
    bool per_chain_cache = true;
    /// Rotate the hash seed and rebuild the chains when the longest chain
    /// exceeds the overload watermark (collision-flood defense).
    bool rehash_on_overload = false;
    /// Refuse inserts beyond this many PCBs (0 = unbounded). Refused
    /// inserts return nullptr and count in resilience().inserts_shed.
    std::size_t max_pcbs = 0;
  };

  SequentDemuxer() : SequentDemuxer(Options()) {}
  explicit SequentDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  /// Pipelined batch: hashes the burst, prefetches every target chain's
  /// bucket header and cached/head PCB, then probes. Results and stats are
  /// exactly those of scalar lookups issued in order.
  void lookup_batch(std::span<const net::FlowKey> keys,
                    std::span<LookupResult> results,
                    SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t memory_bytes() const override {
    return size() * sizeof(Pcb) + sizeof(*this) +
           buckets_.capacity() * sizeof(Bucket);
  }

  [[nodiscard]] std::uint32_t chains() const noexcept {
    return options_.chains;
  }
  /// Occupancy of each chain (test/bench hook).
  [[nodiscard]] std::vector<std::size_t> chain_sizes() const;
  [[nodiscard]] std::vector<std::size_t> occupancy() const override {
    return chain_sizes();
  }
  /// The PCB cached on `chain` (test hook).
  [[nodiscard]] const Pcb* cached(std::uint32_t chain) const {
    return buckets_[chain].cache;
  }

  [[nodiscard]] ResilienceStats resilience() const override;
  /// Current hash spec (seed changes after an overload rehash; test hook).
  [[nodiscard]] net::HashSpec hash_spec() const noexcept {
    return options_.hasher;
  }
  /// Longest chain an overload check tolerates at the current size: benign
  /// traffic stays far below it (a balanced table's worst chain is within a
  /// small factor of load N/H), while a flood aimed at one chain crosses it
  /// after ~the constant term.
  [[nodiscard]] std::uint64_t watermark_limit() const noexcept {
    return 16 + 8 * (size_ / options_.chains + 1);
  }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  struct Bucket {
    PcbList list;
    Pcb* cache = nullptr;
  };

  [[nodiscard]] std::uint32_t chain_of(const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key, options_.chains);
  }

  /// The lookup fast path against one bucket (cache probe, then chain
  /// scan, cache install); shared by lookup() and lookup_batch().
  LookupResult lookup_in_bucket(Bucket& b, const net::FlowKey& key);

  /// Watermark bookkeeping after a successful insert into `b`; triggers a
  /// seed-rotating rehash when the overload policy says so.
  void note_insert(const Bucket& b);

  /// Rotates the seed and redistributes every PCB onto fresh chains
  /// (pointer-stable; caches restart cold).
  void rehash_with_fresh_seed();

  Options options_;
  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;

  // Overload / shedding state (see DESIGN.md "Adversarial resilience").
  std::uint64_t watermark_ = 0;
  std::uint64_t overload_rehashes_ = 0;
  std::uint64_t inserts_shed_ = 0;
  std::uint64_t inserts_since_rehash_ = 0;
  std::uint64_t rehash_cooldown_ = 0;  ///< 0 until the first rehash
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_SEQUENT_HASH_H_
