// The Sequent hashed PCB lookup algorithm (paper §3.4) — the paper's
// primary contribution.
//
// H hash chains, each a linear list with its own single-entry last-found
// cache. The flow key is hashed to pick a chain; the chain's cache is
// probed; on miss the chain is scanned linearly. Expected cost (Eq 19
// approximation): C(N,H) = C_BSD(N/H), approaching N/2H — an order of
// magnitude below BSD, MTF, and the send/receive cache at TPC/A scale.
// The installation default was H = 19 chains (a prime, so it repairs the
// weak low-order bits of cheap fold hashes).
//
// The per-chain cache may be disabled (`Options::per_chain_cache = false`)
// to reproduce the ablation in §3.4's closing discussion: the miss penalty
// dominates the hit ratio, so the cache's benefit is modest once chains are
// short.
#ifndef TCPDEMUX_CORE_SEQUENT_HASH_H_
#define TCPDEMUX_CORE_SEQUENT_HASH_H_

#include <cstdint>
#include <vector>

#include "core/demuxer.h"
#include "core/pcb_list.h"
#include "net/hashers.h"

namespace tcpdemux::core {

class SequentDemuxer final : public Demuxer {
 public:
  struct Options {
    std::uint32_t chains = 19;  ///< installation default in Sequent PTX
    net::HasherKind hasher = net::HasherKind::kXorFold;
    bool per_chain_cache = true;
  };

  SequentDemuxer() : SequentDemuxer(Options()) {}
  explicit SequentDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  /// Pipelined batch: hashes the burst, prefetches every target chain's
  /// bucket header and cached/head PCB, then probes. Results and stats are
  /// exactly those of scalar lookups issued in order.
  void lookup_batch(std::span<const net::FlowKey> keys,
                    std::span<LookupResult> results,
                    SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t memory_bytes() const override {
    return size() * sizeof(Pcb) + sizeof(*this) +
           buckets_.capacity() * sizeof(Bucket);
  }

  [[nodiscard]] std::uint32_t chains() const noexcept {
    return options_.chains;
  }
  /// Occupancy of each chain (test/bench hook).
  [[nodiscard]] std::vector<std::size_t> chain_sizes() const;
  /// The PCB cached on `chain` (test hook).
  [[nodiscard]] const Pcb* cached(std::uint32_t chain) const {
    return buckets_[chain].cache;
  }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  struct Bucket {
    PcbList list;
    Pcb* cache = nullptr;
  };

  [[nodiscard]] std::uint32_t chain_of(const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key, options_.chains);
  }

  /// The lookup fast path against one bucket (cache probe, then chain
  /// scan, cache install); shared by lookup() and lookup_batch().
  LookupResult lookup_in_bucket(Bucket& b, const net::FlowKey& key);

  Options options_;
  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_SEQUENT_HASH_H_
