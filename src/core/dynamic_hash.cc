#include "core/dynamic_hash.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/fault_inject.h"

namespace tcpdemux::core {
namespace {

// Primes that roughly double; the ladder a kernel hashtable would bake in.
constexpr std::array<std::uint32_t, 20> kPrimes = {
    19,    41,    83,     167,    337,    673,    1361,
    2729,  5471,  10949,  21911,  43853,  87719,  175447,
    350899, 701819, 1403641, 2807303, 5614657, 11229331};

}  // namespace

std::uint32_t DynamicHashDemuxer::next_table_size(std::uint32_t n) noexcept {
  for (const std::uint32_t p : kPrimes) {
    if (p >= 2 * n) return p;
  }
  return kPrimes.back();
}

DynamicHashDemuxer::DynamicHashDemuxer(Options options) : options_(options) {
  if (options_.initial_chains == 0) {
    throw std::invalid_argument(
        "DynamicHashDemuxer: chain count must be >= 1");
  }
  if (options_.max_load <= 0.0) {
    throw std::invalid_argument("DynamicHashDemuxer: max_load must be > 0");
  }
  buckets_.resize(options_.initial_chains);
}

void DynamicHashDemuxer::maybe_grow() {
  if (static_cast<double>(size_) <=
      options_.max_load * static_cast<double>(buckets_.size())) {
    return;
  }
  const std::uint32_t new_size =
      next_table_size(static_cast<std::uint32_t>(buckets_.size()));
  if (new_size <= buckets_.size()) return;  // ladder exhausted

  std::vector<Bucket> grown(new_size);
  for (Bucket& old : buckets_) {
    while (Pcb* pcb = old.list.extract_front()) {
      const std::uint32_t c =
          net::hash_chain(options_.hasher, pcb->key, new_size);
      grown[c].list.adopt_front(pcb);
    }
  }
  buckets_ = std::move(grown);  // all per-chain caches start cold
  ++rehashes_;
  telemetry_->on_rehash();
}

Pcb* DynamicHashDemuxer::insert(const net::FlowKey& key) {
  Bucket& b = buckets_[chain_of(key)];
  if (b.list.find_scan(key).pcb != nullptr) return nullptr;
  if (options_.max_pcbs != 0 && size_ >= options_.max_pcbs) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  Pcb* pcb = b.list.emplace_front(key, next_conn_id());
  ++size_;
  telemetry_->on_insert();
  watermark_ = std::max<std::uint64_t>(watermark_, b.list.size());
  maybe_grow();
  return pcb;
}

ResilienceStats DynamicHashDemuxer::resilience() const {
  return {0, inserts_shed_, watermark_, watermark_limit()};
}

bool DynamicHashDemuxer::erase(const net::FlowKey& key) {
  Bucket& b = buckets_[chain_of(key)];
  const auto scan = b.list.find_scan(key);
  if (scan.pcb == nullptr) return false;
  if (b.cache == scan.pcb) b.cache = nullptr;
  b.list.erase(scan.pcb);
  --size_;
  telemetry_->on_erase();
  return true;
}

LookupResult DynamicHashDemuxer::lookup(const net::FlowKey& key,
                                        SegmentKind /*kind*/) {
  Bucket& b = buckets_[chain_of(key)];
  LookupResult r;
  if (options_.per_chain_cache && b.cache != nullptr) {
    ++r.examined;
    if (b.cache->key == key) {
      r.pcb = b.cache;
      r.cache_hit = true;
      note_lookup(r);
      return r;
    }
  }
  const auto scan = b.list.find_scan(key);
  r.examined += scan.examined;
  r.pcb = scan.pcb;
  if (options_.per_chain_cache && scan.pcb != nullptr) b.cache = scan.pcb;
  note_lookup(r);
  return r;
}

LookupResult DynamicHashDemuxer::lookup_wildcard(const net::FlowKey& key) {
  LookupResult best;
  int best_score = -1;
  for (Bucket& b : buckets_) {
    const auto scan = b.list.find_best_match(key);
    best.examined += scan.examined;
    if (scan.pcb == nullptr) continue;
    const int score = scan.pcb->key.match_score(key);
    if (score == 0) {
      best.pcb = scan.pcb;
      return best;
    }
    if (best_score < 0 || score < best_score) {
      best_score = score;
      best.pcb = scan.pcb;
    }
  }
  return best;
}

void DynamicHashDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  for (const Bucket& b : buckets_) {
    b.list.for_each(fn);
  }
}

std::string DynamicHashDemuxer::name() const {
  std::string n = "dynamic(h=";
  n += std::to_string(buckets_.size());
  n += ',';
  n += net::hash_spec_name(options_.hasher);
  if (options_.max_pcbs != 0) n += ",max=" + std::to_string(options_.max_pcbs);
  n += ')';
  return n;
}

}  // namespace tcpdemux::core
