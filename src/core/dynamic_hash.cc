#include "core/dynamic_hash.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "core/fault_inject.h"
#include "core/resize_policy.h"

namespace tcpdemux::core {
namespace {

// Primes that roughly double; the ladder a kernel hashtable would bake in.
constexpr std::array<std::uint32_t, 20> kPrimes = {
    19,    41,    83,     167,    337,    673,    1361,
    2729,  5471,  10949,  21911,  43853,  87719,  175447,
    350899, 701819, 1403641, 2807303, 5614657, 11229331};

}  // namespace

std::uint32_t DynamicHashDemuxer::next_table_size(std::uint32_t n) noexcept {
  for (const std::uint32_t p : kPrimes) {
    if (p >= 2 * n) return p;
  }
  return kPrimes.back();
}

DynamicHashDemuxer::DynamicHashDemuxer(Options options) : options_(options) {
  if (options_.initial_chains == 0) {
    throw std::invalid_argument(
        "DynamicHashDemuxer: chain count must be >= 1");
  }
  if (options_.max_load <= 0.0) {
    throw std::invalid_argument("DynamicHashDemuxer: max_load must be > 0");
  }
  buckets_.resize(options_.initial_chains);
}

void DynamicHashDemuxer::maybe_grow() {
  if (static_cast<double>(size_) <=
      options_.max_load * static_cast<double>(buckets_.size())) {
    return;
  }
  if (options_.incremental && old_ != nullptr) {
    // The *new* array itself hit the trigger while the old one still
    // drains: churn outpaced migration. Finish the drain (bounded by the
    // remaining debt), then start the next doubling below.
    finish_migration();
  }
  const std::uint32_t new_size =
      next_table_size(static_cast<std::uint32_t>(buckets_.size()));
  if (new_size <= buckets_.size()) return;  // ladder exhausted

  if (options_.incremental) {
    if (grow_blocked_ && grow_retry_in_ > 0) {
      --grow_retry_in_;
      return;
    }
    start_migration(new_size);
    return;
  }

  std::vector<Bucket> grown(new_size);
  for (Bucket& old : buckets_) {
    while (Pcb* pcb = old.list.extract_front()) {
      const std::uint32_t c =
          net::hash_chain(options_.hasher, pcb->key, new_size);
      grown[c].list.adopt_front(pcb);
    }
  }
  buckets_ = std::move(grown);  // all per-chain caches start cold
  ++rehashes_;
  telemetry_->on_rehash();
}

bool DynamicHashDemuxer::start_migration(std::uint32_t new_size) {
  if (FaultInjector::instance().poll_alloc()) {
    defer_migration();
    return false;
  }
  std::unique_ptr<OldBuckets> old;
  std::vector<Bucket> grown;
  try {
    old = std::make_unique<OldBuckets>();
    grown.resize(new_size);
  } catch (const std::bad_alloc&) {
    defer_migration();
    return false;
  }
  // Everything allocated: swing the live array behind the drain cursor.
  // No failure path from here on, so no intermediate state can leak.
  old->residents = size_;
  old->buckets = std::move(buckets_);
  old_ = std::move(old);
  buckets_ = std::move(grown);
  grow_blocked_ = false;
  grow_backoff_ = 0;
  grow_retry_in_ = 0;
  ++rehashes_;
  telemetry_->on_rehash();
  telemetry_->on_resize_start();
  return true;
}

void DynamicHashDemuxer::defer_migration() {
  grow_blocked_ = true;
  grow_backoff_ =
      grow_backoff_ == 0
          ? kGrowBackoffMin
          : std::min<std::uint64_t>(grow_backoff_ * 2, kGrowBackoffMax);
  grow_retry_in_ = grow_backoff_;
  telemetry_->on_resize_defer();
}

void DynamicHashDemuxer::migrate_batch(std::size_t budget) {
  if (old_ == nullptr) return;
  OldBuckets& old = *old_;
  std::size_t moved = 0;
  std::size_t scanned = 0;
  const std::size_t scan_budget = budget * kMigrateScanFactor;
  while (moved < budget && old.residents > 0) {
    Bucket& ob = old.buckets[old.cursor];
    if (ob.list.empty()) {
      ++old.cursor;
      if (++scanned >= scan_budget) break;
      continue;
    }
    // Nothing is ever inserted into the old array, so the cache can only
    // reference old residents; draining the bucket retires it.
    ob.cache = nullptr;
    Pcb* pcb = ob.list.extract_front();
    buckets_[chain_of(pcb->key)].list.adopt_front(pcb);
    --old.residents;
    ++moved;
  }
  telemetry_->on_resize_step(moved, old.residents);
  if (old.residents == 0) {
    old_.reset();
    telemetry_->on_resize_complete();
  }
}

void DynamicHashDemuxer::finish_migration() {
  while (old_ != nullptr) migrate_batch(old_->residents + 1);
}

bool DynamicHashDemuxer::migration_step() {
  migrate_batch(kMigrateBatch);
  return old_ != nullptr;
}

Pcb* DynamicHashDemuxer::insert(const net::FlowKey& key) {
  if (buckets_[chain_of(key)].list.find_scan(key).pcb != nullptr) {
    return nullptr;
  }
  if (old_ != nullptr &&
      old_->buckets[old_chain_of(key)].list.find_scan(key).pcb != nullptr) {
    return nullptr;
  }
  if (options_.max_pcbs != 0 && size_ >= options_.max_pcbs) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  // Ladder rung 2: growth is allocation-blocked and mean load has reached
  // twice the growth trigger — shed rather than let chains degrade toward
  // the linear scan the paper set out to kill. The refused attempt still
  // runs maybe_grow() first: at this load the growth trigger is long
  // past, so each shed burns down the backoff and eventually retries the
  // doubling. Without it a table wedged at the watermark would stay
  // blocked forever (no insert succeeds, so the post-insert maybe_grow
  // below never runs again).
  if (grow_blocked_ &&
      static_cast<double>(size_ + 1) >
          2.0 * options_.max_load * static_cast<double>(buckets_.size())) {
    maybe_grow();
    if (grow_blocked_) {
      ++inserts_shed_;
      telemetry_->on_shed();
      return nullptr;
    }
  }
  Bucket& b = buckets_[chain_of(key)];
  Pcb* pcb = b.list.emplace_front(key, next_conn_id());
  ++size_;
  telemetry_->on_insert();
  watermark_ = std::max<std::uint64_t>(watermark_, b.list.size());
  maybe_grow();
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateBatch);
  return pcb;
}

ResilienceStats DynamicHashDemuxer::resilience() const {
  return {0, inserts_shed_, watermark_, watermark_limit()};
}

bool DynamicHashDemuxer::erase(const net::FlowKey& key) {
  Bucket& b = buckets_[chain_of(key)];
  const auto scan = b.list.find_scan(key);
  if (scan.pcb != nullptr) {
    if (b.cache == scan.pcb) b.cache = nullptr;
    b.list.erase(scan.pcb);
  } else {
    if (old_ == nullptr) return false;
    Bucket& ob = old_->buckets[old_chain_of(key)];
    const auto old_scan = ob.list.find_scan(key);
    if (old_scan.pcb == nullptr) return false;
    if (ob.cache == old_scan.pcb) ob.cache = nullptr;
    ob.list.erase(old_scan.pcb);
    if (--old_->residents == 0) {
      old_.reset();
      telemetry_->on_resize_complete();
    }
  }
  --size_;
  telemetry_->on_erase();
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateBatch);
  return true;
}

LookupResult DynamicHashDemuxer::lookup(const net::FlowKey& key,
                                        SegmentKind /*kind*/) {
  Bucket& b = buckets_[chain_of(key)];
  LookupResult r;
  if (options_.per_chain_cache && b.cache != nullptr) {
    ++r.examined;
    if (b.cache->key == key) {
      r.pcb = b.cache;
      r.cache_hit = true;
      note_lookup(r);
      return r;
    }
  }
  const auto scan = b.list.find_scan(key);
  r.examined += scan.examined;
  r.pcb = scan.pcb;
  if (options_.per_chain_cache && scan.pcb != nullptr) b.cache = scan.pcb;
  if (r.pcb == nullptr && old_ != nullptr) [[unlikely]] {
    // Mid-migration a PCB may still sit on its outgoing chain; both
    // scans' examined counts are charged (the paper's metric counts every
    // PCB compared, whichever array holds it).
    Bucket& ob = old_->buckets[old_chain_of(key)];
    const auto old_scan = ob.list.find_scan(key);
    r.examined += old_scan.examined;
    r.pcb = old_scan.pcb;
    if (options_.per_chain_cache && old_scan.pcb != nullptr) {
      ob.cache = old_scan.pcb;
    }
  }
  note_lookup(r);
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateLookupBatch);
  return r;
}

LookupResult DynamicHashDemuxer::lookup_wildcard(const net::FlowKey& key) {
  LookupResult best;
  int best_score = -1;
  const auto sweep = [&](std::vector<Bucket>& buckets) {
    for (Bucket& b : buckets) {
      const auto scan = b.list.find_best_match(key);
      best.examined += scan.examined;
      if (scan.pcb == nullptr) continue;
      const int score = scan.pcb->key.match_score(key);
      if (score == 0) {
        best.pcb = scan.pcb;
        return true;
      }
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best.pcb = scan.pcb;
      }
    }
    return false;
  };
  if (sweep(buckets_)) return best;
  if (old_ != nullptr) sweep(old_->buckets);
  return best;
}

void DynamicHashDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  for (const Bucket& b : buckets_) {
    b.list.for_each(fn);
  }
  if (old_ == nullptr) return;
  for (const Bucket& b : old_->buckets) {
    b.list.for_each(fn);
  }
}

std::string DynamicHashDemuxer::name() const {
  std::string n = "dynamic(h=";
  n += std::to_string(buckets_.size());
  n += ',';
  n += net::hash_spec_name(options_.hasher);
  if (options_.max_pcbs != 0) n += ",max=" + std::to_string(options_.max_pcbs);
  if (options_.incremental) n += ",incremental";
  n += ')';
  return n;
}

}  // namespace tcpdemux::core
