#include "core/demuxer.h"

namespace tcpdemux::core {

void Demuxer::note_lookup_telemetry(const LookupResult& r) noexcept {
  telemetry_->on_lookup(r.examined, r.pcb != nullptr, r.cache_hit);
}

}  // namespace tcpdemux::core
