// Demuxer: the common interface of every TCP PCB-lookup algorithm.
//
// The paper's figure of merit — the expected number of PCBs examined per
// received packet — is first-class here: every lookup() reports exactly how
// many PCBs (cache entries and chain nodes) were inspected.
//
// Accounting convention (matches the paper's analysis, §3.1–§3.4):
//   * probing a single-entry cache costs 1 examined PCB;
//   * each list node whose key is compared costs 1 (the found node counts);
//   * a cache hit therefore costs exactly 1; a BSD miss costs
//     1 + scan-length, giving the paper's 1 + (N+1)/2 average.
#ifndef TCPDEMUX_CORE_DEMUXER_H_
#define TCPDEMUX_CORE_DEMUXER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "core/pcb.h"
#include "net/flow_key.h"

namespace tcpdemux::core {

/// How the arriving segment is classified for cache-probe ordering.
///
/// §3.3 footnote 5: "Examining the receive-side cache makes most sense for
/// TCP data packets, while examining the send-side cache first makes most
/// sense for TCP acknowledgement packets." Only the send/receive-cache
/// demuxer distinguishes these; all other algorithms ignore the kind.
enum class SegmentKind : std::uint8_t {
  kData,  ///< carries payload (e.g. a transaction query)
  kAck,   ///< pure transport-level acknowledgement
};

/// Outcome of one demultiplexing operation.
struct LookupResult {
  Pcb* pcb = nullptr;            ///< nullptr if no PCB matches
  std::uint32_t examined = 0;    ///< PCBs inspected (paper's metric)
  bool cache_hit = false;        ///< satisfied by a single-entry cache
};

/// Cumulative per-demuxer counters.
struct DemuxStats {
  std::uint64_t lookups = 0;
  std::uint64_t found = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t pcbs_examined = 0;

  [[nodiscard]] double mean_examined() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(pcbs_examined) /
                              static_cast<double>(lookups);
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
  void record(const LookupResult& r) noexcept {
    ++lookups;
    if (r.pcb != nullptr) ++found;
    if (r.cache_hit) ++cache_hits;
    pcbs_examined += r.examined;
  }
  void reset() noexcept { *this = DemuxStats{}; }
};

/// Hostile-traffic counters (see DESIGN.md "Adversarial resilience").
/// Algorithms without overload machinery report all-zero defaults.
struct ResilienceStats {
  std::uint64_t overload_rehashes = 0;  ///< seed rotations forced by floods
  std::uint64_t inserts_shed = 0;       ///< inserts refused at max_pcbs cap
  std::uint64_t watermark = 0;       ///< worst chain length / probe distance
  std::uint64_t watermark_limit = 0;  ///< current overload trigger threshold
};

/// Abstract PCB-lookup algorithm. Owns its PCBs.
class Demuxer {
 public:
  virtual ~Demuxer() = default;

  /// Creates and registers a PCB for `key`. Returns nullptr if a PCB with
  /// an identical key already exists. The demuxer owns the returned PCB.
  virtual Pcb* insert(const net::FlowKey& key) = 0;

  /// Removes and destroys the PCB with exactly `key`. Returns false if
  /// absent. Any cache entries referencing it are invalidated.
  virtual bool erase(const net::FlowKey& key) = 0;

  /// Finds the PCB for an arriving segment, counting examined PCBs.
  /// Updates internal caches / list order as the algorithm dictates and
  /// records the result in stats().
  virtual LookupResult lookup(const net::FlowKey& key, SegmentKind kind) = 0;

  /// Convenience overload treating the segment as data. Derived classes
  /// re-expose it with `using Demuxer::lookup;`.
  LookupResult lookup(const net::FlowKey& key) {
    return lookup(key, SegmentKind::kData);
  }

  /// Demultiplexes a burst of packets, writing results[i] for keys[i].
  /// `results.size()` must be >= `keys.size()`. Results and stats are
  /// identical to issuing `keys.size()` lookup() calls in order — batching
  /// is purely a latency optimization. Overrides pipeline the work (hash
  /// every key, prefetch every target bucket/tag line, then probe) so a
  /// burst's DRAM misses overlap instead of serializing; this default is
  /// the correct scalar loop for algorithms with no such override.
  virtual void lookup_batch(std::span<const net::FlowKey> keys,
                            std::span<LookupResult> results,
                            SegmentKind kind = SegmentKind::kData) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      results[i] = lookup(keys[i], kind);
    }
  }

  /// Notes that the host transmitted a segment on `pcb`'s connection.
  /// Only the send/receive-cache algorithm observes this (its "last sent"
  /// side); the default is a no-op.
  virtual void note_sent(Pcb* pcb) { (void)pcb; }

  /// Best wildcard match for `key` (BSD in_pcblookup semantics), used for
  /// SYN delivery to listening sockets. Does not update caches and is not
  /// part of the measured fast path; `examined` is still reported.
  virtual LookupResult lookup_wildcard(const net::FlowKey& key) = 0;

  /// Number of PCBs currently registered.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Approximate resident bytes: the PCBs themselves plus the structure's
  /// own headers (chain heads, caches, index tables). §3.4 prices the
  /// Sequent algorithm's only cost as "the memory required for the
  /// hash-chain headers"; this makes that cost measurable.
  [[nodiscard]] virtual std::size_t memory_bytes() const {
    return size() * sizeof(Pcb);
  }

  /// Calls `fn` for every PCB (order unspecified).
  virtual void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const = 0;

  /// Algorithm name, e.g. "sequent(h=19,crc32)".
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const DemuxStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  /// Hostile-traffic counters; all-zero for algorithms without overload
  /// machinery (the default).
  [[nodiscard]] virtual ResilienceStats resilience() const { return {}; }

 protected:
  /// Next dense connection id; shared by all subclasses' insert paths.
  [[nodiscard]] std::uint64_t next_conn_id() noexcept { return conn_seq_++; }

  DemuxStats stats_;

 private:
  std::uint64_t conn_seq_ = 0;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_DEMUXER_H_
