// Demuxer: the common interface of every TCP PCB-lookup algorithm.
//
// The paper's figure of merit — the expected number of PCBs examined per
// received packet — is first-class here: every lookup() reports exactly how
// many PCBs (cache entries and chain nodes) were inspected.
//
// Accounting convention (matches the paper's analysis, §3.1–§3.4):
//   * probing a single-entry cache costs 1 examined PCB;
//   * each list node whose key is compared costs 1 (the found node counts);
//   * a cache hit therefore costs exactly 1; a BSD miss costs
//     1 + scan-length, giving the paper's 1 + (N+1)/2 average.
#ifndef TCPDEMUX_CORE_DEMUXER_H_
#define TCPDEMUX_CORE_DEMUXER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "core/pcb.h"
#include "net/flow_key.h"
#include "report/telemetry.h"

namespace tcpdemux::core {

/// How the arriving segment is classified for cache-probe ordering.
///
/// §3.3 footnote 5: "Examining the receive-side cache makes most sense for
/// TCP data packets, while examining the send-side cache first makes most
/// sense for TCP acknowledgement packets." Only the send/receive-cache
/// demuxer distinguishes these; all other algorithms ignore the kind.
enum class SegmentKind : std::uint8_t {
  kData,  ///< carries payload (e.g. a transaction query)
  kAck,   ///< pure transport-level acknowledgement
};

/// Outcome of one demultiplexing operation.
struct LookupResult {
  Pcb* pcb = nullptr;            ///< nullptr if no PCB matches
  std::uint32_t examined = 0;    ///< PCBs inspected (paper's metric)
  bool cache_hit = false;        ///< satisfied by a single-entry cache
};

/// Cumulative per-demuxer counters.
struct DemuxStats {
  std::uint64_t lookups = 0;
  std::uint64_t found = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t pcbs_examined = 0;

  [[nodiscard]] double mean_examined() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(pcbs_examined) /
                              static_cast<double>(lookups);
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
  void record(const LookupResult& r) noexcept {
    ++lookups;
    if (r.pcb != nullptr) ++found;
    if (r.cache_hit) ++cache_hits;
    pcbs_examined += r.examined;
  }
  void reset() noexcept { *this = DemuxStats{}; }
};

/// Hostile-traffic counters (see DESIGN.md "Adversarial resilience").
/// Algorithms without overload machinery report all-zero defaults.
struct ResilienceStats {
  std::uint64_t overload_rehashes = 0;  ///< seed rotations forced by floods
  std::uint64_t inserts_shed = 0;       ///< inserts refused at max_pcbs cap
  std::uint64_t watermark = 0;       ///< worst chain length / probe distance
  std::uint64_t watermark_limit = 0;  ///< current overload trigger threshold
};

/// Abstract PCB-lookup algorithm. Owns its PCBs.
class Demuxer {
 public:
  virtual ~Demuxer() = default;

  /// Creates and registers a PCB for `key`. Returns nullptr if a PCB with
  /// an identical key already exists. The demuxer owns the returned PCB.
  virtual Pcb* insert(const net::FlowKey& key) = 0;

  /// Removes and destroys the PCB with exactly `key`. Returns false if
  /// absent. Any cache entries referencing it are invalidated.
  virtual bool erase(const net::FlowKey& key) = 0;

  /// Finds the PCB for an arriving segment, counting examined PCBs.
  /// Updates internal caches / list order as the algorithm dictates and
  /// records the result in stats().
  virtual LookupResult lookup(const net::FlowKey& key, SegmentKind kind) = 0;

  /// Convenience overload treating the segment as data. Derived classes
  /// re-expose it with `using Demuxer::lookup;`.
  LookupResult lookup(const net::FlowKey& key) {
    return lookup(key, SegmentKind::kData);
  }

  /// Demultiplexes a burst of packets, writing results[i] for keys[i].
  /// `results.size()` must be >= `keys.size()`. Results and stats are
  /// identical to issuing `keys.size()` lookup() calls in order — batching
  /// is purely a latency optimization. Overrides pipeline the work (hash
  /// every key, prefetch every target bucket/tag line, then probe) so a
  /// burst's DRAM misses overlap instead of serializing; this default is
  /// the correct scalar loop for algorithms with no such override.
  virtual void lookup_batch(std::span<const net::FlowKey> keys,
                            std::span<LookupResult> results,
                            SegmentKind kind = SegmentKind::kData) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      results[i] = lookup(keys[i], kind);
    }
  }

  /// Notes that the host transmitted a segment on `pcb`'s connection.
  /// Only the send/receive-cache algorithm observes this (its "last sent"
  /// side); the default is a no-op.
  virtual void note_sent(Pcb* pcb) { (void)pcb; }

  /// Best wildcard match for `key` (BSD in_pcblookup semantics), used for
  /// SYN delivery to listening sockets. Does not update caches and is not
  /// part of the measured fast path; `examined` is still reported.
  virtual LookupResult lookup_wildcard(const net::FlowKey& key) = 0;

  /// Number of PCBs currently registered.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Approximate resident bytes: the PCBs themselves plus the structure's
  /// own headers (chain heads, caches, index tables). §3.4 prices the
  /// Sequent algorithm's only cost as "the memory required for the
  /// hash-chain headers"; this makes that cost measurable.
  [[nodiscard]] virtual std::size_t memory_bytes() const {
    return size() * sizeof(Pcb);
  }

  /// Calls `fn` for every PCB (order unspecified).
  virtual void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const = 0;

  /// Algorithm name, e.g. "sequent(h=19,crc32)".
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const DemuxStats& stats() const noexcept { return stats_; }
  /// Virtual so aggregating backends reset their children's ledgers too —
  /// otherwise the merged telemetry view and the parent stats() would
  /// drift apart after a reset.
  virtual void reset_stats() noexcept { stats_.reset(); }

  /// Hostile-traffic counters; all-zero for algorithms without overload
  /// machinery (the default).
  [[nodiscard]] virtual ResilienceStats resilience() const { return {}; }

  /// Advances any in-progress incremental table migration by one bounded
  /// batch (growing backends built with the `incremental` option; see
  /// DESIGN.md "Incremental resize & degradation ladder"). Returns true
  /// while migration work remains after the call. Harness hook: the fuzz
  /// suites (TCPDEMUX_FUZZ_RESIZE_EVERY) and bench/wallclock_resize drive
  /// migrations to completion with it; normal operation never needs to —
  /// insert/erase/lookup each retire their own batch.
  virtual bool migration_step() { return false; }

  /// The per-demuxer telemetry registry (see report/telemetry.h): event
  /// counters plus opt-in examined-PCB / probe-length histograms. Every
  /// lookup() override funnels its result through note_lookup(), so the
  /// registry and stats() can never drift apart. Returned by value: the
  /// lookup counters (lookups/found/cache_hits) are synced from stats_ at
  /// read time — they are the same ledger by definition, and keeping one
  /// copy means the default lookup path touches no telemetry state at all
  /// (the 2% overhead budget; see DESIGN.md "Observability").
  ///
  /// Virtual so aggregating backends (sharded) can return a merged view
  /// built from their children; the merge happens into a fresh value on
  /// every call, so repeated reads never re-add already-synced counters.
  [[nodiscard]] virtual report::Telemetry telemetry() const {
    report::Telemetry t = *telemetry_;
    t.set_lookup_counters(stats_.lookups, stats_.found, stats_.cache_hits);
    return t;
  }
  /// Switches the registry's histograms on/off for this run (default off:
  /// the paper-faithful fast path pays one predictable branch only).
  /// Virtual so aggregating backends propagate the switch to every child.
  virtual void enable_telemetry_histograms(bool on) noexcept {
    telemetry_histograms_ = on;
    telemetry_->enable_histograms(on);
  }
  virtual void reset_telemetry() noexcept { telemetry_->reset(); }

  /// Sizes of the structure's natural partitions — hash-chain lengths for
  /// the chained algorithms, the single list length for the linear-scan
  /// ones. Always sums to size(); telemetry snapshots derive occupancy
  /// skew from it.
  [[nodiscard]] virtual std::vector<std::size_t> occupancy() const {
    return {size()};
  }

 protected:
  /// Next dense connection id; shared by all subclasses' insert paths.
  [[nodiscard]] std::uint64_t next_conn_id() noexcept { return conn_seq_++; }

  /// Single funnel for lookup accounting: records `r` in stats_ and, when
  /// histograms are on, in the telemetry registry. Subclasses call this
  /// instead of touching stats_ directly so the two paths stay bit-exact
  /// (fuzz-enforced). The gate bool lives HERE, not in telemetry_: it
  /// shares stats_'s cache line, so the default (histograms-off) path has
  /// exactly the pre-telemetry memory footprint — one predicted branch,
  /// zero extra lines touched.
  void note_lookup(const LookupResult& r) noexcept {
    stats_.record(r);
    if (telemetry_histograms_) [[unlikely]] {
      note_lookup_telemetry(r);
    }
  }
  /// Histogram slow path, out of line (demuxer.cc) so the inlined fast
  /// path stays at pre-telemetry code size in every lookup loop.
  void note_lookup_telemetry(const LookupResult& r) noexcept;

  DemuxStats stats_;
  bool telemetry_histograms_ = false;
  /// Behind a pointer, not inline: the registry is ~1 KiB of histogram
  /// arrays, and an inline member would push every subclass's hot members
  /// (chain heads, slot arrays) a KiB past the vptr/stats_ cache line the
  /// lookup path already owns — measurably slowing the cheapest lookups
  /// (connection_id) even with histograms off. The pointer keeps the base
  /// at pre-telemetry size; only mutation hooks and readers dereference.
  std::unique_ptr<report::Telemetry> telemetry_ =
      std::make_unique<report::Telemetry>();

 private:
  std::uint64_t conn_seq_ = 0;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_DEMUXER_H_
