// Crowcroft's move-to-front PCB lookup (paper §3.2).
//
// A single linear list; whenever a PCB is found it is unlinked and relinked
// at the head. No cache (the head of the list *is* the cache). Under TPC/A
// this beats BSD on transport-level acknowledgements (the response-time
// window is short, so few other PCBs have jumped ahead) but is slightly
// worse than BSD on transaction entries; its worst case — deterministic
// think times, e.g. a central server polling point-of-sale terminals —
// scans the entire list every time.
#ifndef TCPDEMUX_CORE_MOVE_TO_FRONT_H_
#define TCPDEMUX_CORE_MOVE_TO_FRONT_H_

#include "core/demuxer.h"
#include "core/pcb_list.h"

namespace tcpdemux::core {

class MoveToFrontDemuxer final : public Demuxer {
 public:
  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return list_.size(); }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override { return "mtf"; }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return size() * sizeof(Pcb) + sizeof(*this);
  }

  /// Head of the list (test hook: most recently used PCB).
  [[nodiscard]] const Pcb* front() const noexcept { return list_.head(); }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  PcbList list_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_MOVE_TO_FRONT_H_
