#include "core/demux_registry.h"

#include <charconv>
#include <vector>

#include "core/bsd_list.h"
#include "core/connection_id.h"
#include "core/cuckoo_demuxer.h"
#include "core/dynamic_hash.h"
#include "core/flat_demuxer.h"
#include "core/hashed_mtf.h"
#include "core/move_to_front.h"
#include "core/rcu_demuxer.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"

namespace tcpdemux::core {
namespace {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

std::optional<std::uint32_t> parse_u32(std::string_view s) {
  std::uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::unique_ptr<Demuxer> make_demuxer(const DemuxConfig& config) {
  const net::HashSpec hasher{config.hasher, config.hash_seed};
  switch (config.algorithm) {
    case Algorithm::kBsd:
      return std::make_unique<BsdListDemuxer>();
    case Algorithm::kMtf:
      return std::make_unique<MoveToFrontDemuxer>();
    case Algorithm::kSrCache:
      return std::make_unique<SendReceiveCacheDemuxer>();
    case Algorithm::kSequent:
      return std::make_unique<SequentDemuxer>(SequentDemuxer::Options{
          config.chains, hasher, config.per_chain_cache,
          config.rehash_on_overload, config.max_pcbs});
    case Algorithm::kHashedMtf:
      return std::make_unique<HashedMtfDemuxer>(
          HashedMtfDemuxer::Options{config.chains, config.hasher});
    case Algorithm::kConnectionId:
      return std::make_unique<ConnectionIdDemuxer>(config.id_capacity);
    case Algorithm::kDynamic:
      return std::make_unique<DynamicHashDemuxer>(DynamicHashDemuxer::Options{
          config.chains, 2.0, hasher, config.per_chain_cache,
          config.max_pcbs, config.incremental});
    case Algorithm::kRcu:
      return std::make_unique<RcuDemuxerAdapter>(RcuSequentDemuxer::Options{
          config.chains, hasher, config.per_chain_cache});
    case Algorithm::kFlat:
      return std::make_unique<FlatDemuxer>(
          FlatDemuxer::Options{config.flat_capacity, hasher,
                               config.rehash_on_overload, config.max_pcbs,
                               /*group_probe=*/false, config.incremental});
    case Algorithm::kFlat16:
      return std::make_unique<FlatDemuxer>(
          FlatDemuxer::Options{config.flat_capacity, hasher,
                               config.rehash_on_overload, config.max_pcbs,
                               /*group_probe=*/true, config.incremental});
    case Algorithm::kCuckoo:
      return std::make_unique<CuckooDemuxer>(
          CuckooDemuxer::Options{config.flat_capacity, hasher,
                                 config.rehash_on_overload, config.max_pcbs,
                                 config.incremental});
  }
  return nullptr;
}

std::optional<net::HasherKind> parse_hasher_name(std::string_view name) {
  for (const net::HasherKind kind : net::kAllHashers) {
    if (net::hasher_name(kind) == name) return kind;
  }
  return std::nullopt;
}

std::optional<net::HashSpec> parse_hash_spec_token(std::string_view token) {
  const std::size_t at = token.find('@');
  const auto kind = parse_hasher_name(token.substr(0, at));
  if (!kind) return std::nullopt;
  std::uint32_t seed = 0;
  if (at != std::string_view::npos) {
    const std::string_view hex = token.substr(at + 1);
    if (hex.empty() || hex.size() > 8) return std::nullopt;
    const auto [ptr, ec] =
        std::from_chars(hex.data(), hex.data() + hex.size(), seed, 16);
    if (ec != std::errc{} || ptr != hex.data() + hex.size()) {
      return std::nullopt;
    }
  }
  return net::HashSpec{*kind, seed};
}

std::string_view algorithm_name(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kBsd: return "bsd";
    case Algorithm::kMtf: return "mtf";
    case Algorithm::kSrCache: return "srcache";
    case Algorithm::kSequent: return "sequent";
    case Algorithm::kHashedMtf: return "hashed_mtf";
    case Algorithm::kConnectionId: return "connection_id";
    case Algorithm::kDynamic: return "dynamic";
    case Algorithm::kRcu: return "rcu";
    case Algorithm::kFlat: return "flat";
    case Algorithm::kFlat16: return "flat16";
    case Algorithm::kCuckoo: return "cuckoo";
  }
  return "?";
}

std::optional<DemuxConfig> parse_demux_spec(std::string_view spec) {
  const auto parts = split(spec, ':');
  DemuxConfig config;
  const std::string_view head = parts[0];
  if (head == "bsd") {
    config.algorithm = Algorithm::kBsd;
  } else if (head == "mtf") {
    config.algorithm = Algorithm::kMtf;
  } else if (head == "srcache") {
    config.algorithm = Algorithm::kSrCache;
  } else if (head == "sequent") {
    config.algorithm = Algorithm::kSequent;
  } else if (head == "hashed_mtf") {
    config.algorithm = Algorithm::kHashedMtf;
  } else if (head == "connection_id") {
    config.algorithm = Algorithm::kConnectionId;
  } else if (head == "dynamic") {
    config.algorithm = Algorithm::kDynamic;
  } else if (head == "rcu") {
    config.algorithm = Algorithm::kRcu;
  } else if (head == "flat") {
    config.algorithm = Algorithm::kFlat;
  } else if (head == "flat16") {
    config.algorithm = Algorithm::kFlat16;
  } else if (head == "cuckoo") {
    config.algorithm = Algorithm::kCuckoo;
    // A partial-key cuckoo table derives its alternate bucket from the
    // fingerprint tag, so both bucket choices inherit the hash's quality —
    // under a fold that an address schedule can collapse (xor_fold), every
    // colliding key shares both buckets and the table degrades to an
    // 8-entry list it must shed from. Default to the hardware CRC32C
    // family instead; an explicit hasher token still overrides.
    config.hasher = net::HasherKind::kCrc32c;
  } else {
    return std::nullopt;
  }

  if (config.algorithm == Algorithm::kConnectionId) {
    if (parts.size() > 2) return std::nullopt;
    if (parts.size() == 2) {
      const auto capacity = parse_u32(parts[1]);
      if (!capacity || *capacity == 0) return std::nullopt;
      config.id_capacity = *capacity;
    }
    return config;
  }

  // The slot-array tables share capacity parsing and the resilience gates.
  const bool is_flat = config.algorithm == Algorithm::kFlat ||
                       config.algorithm == Algorithm::kFlat16 ||
                       config.algorithm == Algorithm::kCuckoo;
  const bool takes_chains = config.algorithm == Algorithm::kSequent ||
                            config.algorithm == Algorithm::kHashedMtf ||
                            config.algorithm == Algorithm::kDynamic ||
                            config.algorithm == Algorithm::kRcu;
  if (parts.size() > 1 && !takes_chains && !is_flat) return std::nullopt;

  if (parts.size() > 1) {
    const auto count = parse_u32(parts[1]);
    if (!count || *count == 0) return std::nullopt;
    if (is_flat) {
      config.flat_capacity = *count;
    } else {
      config.chains = *count;
    }
  }

  // Optional positional hasher token ("crc32" or "crc32@1f2e"), then
  // trailing option tokens, each at most once.
  std::size_t idx = 2;
  if (parts.size() > idx) {
    if (const auto hs = parse_hash_spec_token(parts[idx])) {
      // hashed_mtf is a frozen paper strawman: it stays unkeyed.
      if (hs->seed != 0 && config.algorithm == Algorithm::kHashedMtf) {
        return std::nullopt;
      }
      config.hasher = hs->kind;
      config.hash_seed = hs->seed;
      ++idx;
    }
  }

  const bool cacheable = config.algorithm == Algorithm::kSequent ||
                         config.algorithm == Algorithm::kRcu;
  const bool rehashable = config.algorithm == Algorithm::kSequent || is_flat;
  const bool cappable = config.algorithm == Algorithm::kSequent ||
                        config.algorithm == Algorithm::kDynamic || is_flat;
  const bool growable = config.algorithm == Algorithm::kDynamic || is_flat;
  bool saw_nocache = false;
  bool saw_rehash = false;
  bool saw_max = false;
  bool saw_incremental = false;
  for (; idx < parts.size(); ++idx) {
    const std::string_view tok = parts[idx];
    if (tok == "nocache" && cacheable && !saw_nocache) {
      config.per_chain_cache = false;
      saw_nocache = true;
    } else if (tok == "rehash" && rehashable && !saw_rehash) {
      config.rehash_on_overload = true;
      saw_rehash = true;
    } else if (tok.substr(0, 4) == "max=" && cappable && !saw_max) {
      const auto cap = parse_u32(tok.substr(4));
      if (!cap || *cap == 0) return std::nullopt;
      config.max_pcbs = *cap;
      saw_max = true;
    } else if (tok == "incremental" && growable && !saw_incremental) {
      config.incremental = true;
      saw_incremental = true;
    } else {
      return std::nullopt;
    }
  }
  return config;
}

}  // namespace tcpdemux::core
