#include "core/demux_registry.h"

#include <charconv>
#include <vector>

#include "core/bsd_list.h"
#include "core/connection_id.h"
#include "core/dynamic_hash.h"
#include "core/flat_demuxer.h"
#include "core/hashed_mtf.h"
#include "core/move_to_front.h"
#include "core/rcu_demuxer.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"

namespace tcpdemux::core {
namespace {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

std::optional<std::uint32_t> parse_u32(std::string_view s) {
  std::uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::unique_ptr<Demuxer> make_demuxer(const DemuxConfig& config) {
  switch (config.algorithm) {
    case Algorithm::kBsd:
      return std::make_unique<BsdListDemuxer>();
    case Algorithm::kMtf:
      return std::make_unique<MoveToFrontDemuxer>();
    case Algorithm::kSrCache:
      return std::make_unique<SendReceiveCacheDemuxer>();
    case Algorithm::kSequent:
      return std::make_unique<SequentDemuxer>(SequentDemuxer::Options{
          config.chains, config.hasher, config.per_chain_cache});
    case Algorithm::kHashedMtf:
      return std::make_unique<HashedMtfDemuxer>(
          HashedMtfDemuxer::Options{config.chains, config.hasher});
    case Algorithm::kConnectionId:
      return std::make_unique<ConnectionIdDemuxer>(config.id_capacity);
    case Algorithm::kDynamic:
      return std::make_unique<DynamicHashDemuxer>(DynamicHashDemuxer::Options{
          config.chains, 2.0, config.hasher, config.per_chain_cache});
    case Algorithm::kRcu:
      return std::make_unique<RcuDemuxerAdapter>(RcuSequentDemuxer::Options{
          config.chains, config.hasher, config.per_chain_cache});
    case Algorithm::kFlat:
      return std::make_unique<FlatDemuxer>(
          FlatDemuxer::Options{config.flat_capacity, config.hasher});
  }
  return nullptr;
}

std::optional<net::HasherKind> parse_hasher_name(std::string_view name) {
  for (const net::HasherKind kind : net::kAllHashers) {
    if (net::hasher_name(kind) == name) return kind;
  }
  return std::nullopt;
}

std::string_view algorithm_name(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kBsd: return "bsd";
    case Algorithm::kMtf: return "mtf";
    case Algorithm::kSrCache: return "srcache";
    case Algorithm::kSequent: return "sequent";
    case Algorithm::kHashedMtf: return "hashed_mtf";
    case Algorithm::kConnectionId: return "connection_id";
    case Algorithm::kDynamic: return "dynamic";
    case Algorithm::kRcu: return "rcu";
    case Algorithm::kFlat: return "flat";
  }
  return "?";
}

std::optional<DemuxConfig> parse_demux_spec(std::string_view spec) {
  const auto parts = split(spec, ':');
  DemuxConfig config;
  const std::string_view head = parts[0];
  if (head == "bsd") {
    config.algorithm = Algorithm::kBsd;
  } else if (head == "mtf") {
    config.algorithm = Algorithm::kMtf;
  } else if (head == "srcache") {
    config.algorithm = Algorithm::kSrCache;
  } else if (head == "sequent") {
    config.algorithm = Algorithm::kSequent;
  } else if (head == "hashed_mtf") {
    config.algorithm = Algorithm::kHashedMtf;
  } else if (head == "connection_id") {
    config.algorithm = Algorithm::kConnectionId;
  } else if (head == "dynamic") {
    config.algorithm = Algorithm::kDynamic;
  } else if (head == "rcu") {
    config.algorithm = Algorithm::kRcu;
  } else if (head == "flat") {
    config.algorithm = Algorithm::kFlat;
  } else {
    return std::nullopt;
  }

  if (config.algorithm == Algorithm::kConnectionId) {
    if (parts.size() > 2) return std::nullopt;
    if (parts.size() == 2) {
      const auto capacity = parse_u32(parts[1]);
      if (!capacity || *capacity == 0) return std::nullopt;
      config.id_capacity = *capacity;
    }
    return config;
  }

  if (config.algorithm == Algorithm::kFlat) {
    if (parts.size() > 3) return std::nullopt;
    if (parts.size() >= 2) {
      const auto capacity = parse_u32(parts[1]);
      if (!capacity || *capacity == 0) return std::nullopt;
      config.flat_capacity = *capacity;
    }
    if (parts.size() == 3) {
      const auto hasher = parse_hasher_name(parts[2]);
      if (!hasher) return std::nullopt;
      config.hasher = *hasher;
    }
    return config;
  }

  const bool takes_chains = config.algorithm == Algorithm::kSequent ||
                            config.algorithm == Algorithm::kHashedMtf ||
                            config.algorithm == Algorithm::kDynamic ||
                            config.algorithm == Algorithm::kRcu;
  if (parts.size() > 1 && !takes_chains) return std::nullopt;

  if (parts.size() > 1) {
    const auto chains = parse_u32(parts[1]);
    if (!chains || *chains == 0) return std::nullopt;
    config.chains = *chains;
  }
  if (parts.size() > 2) {
    const auto hasher = parse_hasher_name(parts[2]);
    if (!hasher) return std::nullopt;
    config.hasher = *hasher;
  }
  if (parts.size() > 3) {
    const bool cacheable = config.algorithm == Algorithm::kSequent ||
                           config.algorithm == Algorithm::kRcu;
    if (parts[3] != "nocache" || !cacheable) return std::nullopt;
    config.per_chain_cache = false;
  }
  if (parts.size() > 4) return std::nullopt;
  return config;
}

}  // namespace tcpdemux::core
