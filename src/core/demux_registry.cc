#include "core/demux_registry.h"

#include <charconv>
#include <vector>

#include "core/bsd_list.h"
#include "core/connection_id.h"
#include "core/cuckoo_demuxer.h"
#include "core/dynamic_hash.h"
#include "core/flat_demuxer.h"
#include "core/hashed_mtf.h"
#include "core/move_to_front.h"
#include "core/rcu_demuxer.h"
#include "core/send_receive_cache.h"
#include "core/sequent_hash.h"
#include "core/sharded_demuxer.h"

namespace tcpdemux::core {
namespace {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

std::optional<std::uint32_t> parse_u32(std::string_view s) {
  std::uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::unique_ptr<Demuxer> make_demuxer(const DemuxConfig& config) {
  const net::HashSpec hasher{config.hasher, config.hash_seed};
  switch (config.algorithm) {
    case Algorithm::kBsd:
      return std::make_unique<BsdListDemuxer>();
    case Algorithm::kMtf:
      return std::make_unique<MoveToFrontDemuxer>();
    case Algorithm::kSrCache:
      return std::make_unique<SendReceiveCacheDemuxer>();
    case Algorithm::kSequent:
      return std::make_unique<SequentDemuxer>(SequentDemuxer::Options{
          config.chains, hasher, config.per_chain_cache,
          config.rehash_on_overload, config.max_pcbs});
    case Algorithm::kHashedMtf:
      return std::make_unique<HashedMtfDemuxer>(
          HashedMtfDemuxer::Options{config.chains, config.hasher});
    case Algorithm::kConnectionId:
      return std::make_unique<ConnectionIdDemuxer>(config.id_capacity);
    case Algorithm::kDynamic:
      return std::make_unique<DynamicHashDemuxer>(DynamicHashDemuxer::Options{
          config.chains, 2.0, hasher, config.per_chain_cache,
          config.max_pcbs, config.incremental});
    case Algorithm::kRcu:
      return std::make_unique<RcuDemuxerAdapter>(RcuSequentDemuxer::Options{
          config.chains, hasher, config.per_chain_cache});
    case Algorithm::kFlat:
      return std::make_unique<FlatDemuxer>(
          FlatDemuxer::Options{config.flat_capacity, hasher,
                               config.rehash_on_overload, config.max_pcbs,
                               /*group_probe=*/false, config.incremental});
    case Algorithm::kFlat16:
      return std::make_unique<FlatDemuxer>(
          FlatDemuxer::Options{config.flat_capacity, hasher,
                               config.rehash_on_overload, config.max_pcbs,
                               /*group_probe=*/true, config.incremental});
    case Algorithm::kCuckoo:
      return std::make_unique<CuckooDemuxer>(
          CuckooDemuxer::Options{config.flat_capacity, hasher,
                                 config.rehash_on_overload, config.max_pcbs,
                                 config.incremental});
    case Algorithm::kSharded: {
      const auto inner = parse_demux_spec(config.inner_spec);
      if (!inner) return nullptr;  // parse_demux_spec validated it already
      return std::make_unique<ShardedDemuxer>(
          ShardedDemuxer::Options{config.shards, *inner});
    }
  }
  return nullptr;
}

std::optional<net::HasherKind> parse_hasher_name(std::string_view name) {
  for (const net::HasherKind kind : net::kAllHashers) {
    if (net::hasher_name(kind) == name) return kind;
  }
  return std::nullopt;
}

std::optional<net::HashSpec> parse_hash_spec_token(std::string_view token) {
  const std::size_t at = token.find('@');
  const auto kind = parse_hasher_name(token.substr(0, at));
  if (!kind) return std::nullopt;
  std::uint32_t seed = 0;
  if (at != std::string_view::npos) {
    const std::string_view hex = token.substr(at + 1);
    if (hex.empty() || hex.size() > 8) return std::nullopt;
    const auto [ptr, ec] =
        std::from_chars(hex.data(), hex.data() + hex.size(), seed, 16);
    if (ec != std::errc{} || ptr != hex.data() + hex.size()) {
      return std::nullopt;
    }
  }
  return net::HashSpec{*kind, seed};
}

std::string_view algorithm_name(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kBsd: return "bsd";
    case Algorithm::kMtf: return "mtf";
    case Algorithm::kSrCache: return "srcache";
    case Algorithm::kSequent: return "sequent";
    case Algorithm::kHashedMtf: return "hashed_mtf";
    case Algorithm::kConnectionId: return "connection_id";
    case Algorithm::kDynamic: return "dynamic";
    case Algorithm::kRcu: return "rcu";
    case Algorithm::kFlat: return "flat";
    case Algorithm::kFlat16: return "flat16";
    case Algorithm::kCuckoo: return "cuckoo";
    case Algorithm::kSharded: return "sharded";
  }
  return "?";
}

namespace {

// Error-channel helper: writes the reason (when the caller wants one) and
// yields the parse failure in one expression.
std::optional<DemuxConfig> fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return std::nullopt;
}

std::string quoted(std::string_view tok) {
  std::string out = "'";
  out += tok;
  out += "'";
  return out;
}

}  // namespace

std::optional<DemuxConfig> parse_demux_spec(std::string_view spec) {
  return parse_demux_spec(spec, nullptr);
}

std::optional<DemuxConfig> parse_demux_spec(std::string_view spec,
                                            std::string* error) {
  DemuxConfig config;

  // "sharded:N:<inner-spec>" nests a whole spec after the second ':', so it
  // is carved off before the flat token split below.
  constexpr std::string_view kSharded = "sharded";
  if (spec == kSharded || spec.substr(0, kSharded.size() + 1) == "sharded:") {
    if (spec.size() <= kSharded.size() + 1) {
      return fail(error, "sharded needs 'sharded:N:<inner-spec>'");
    }
    const std::string_view rest = spec.substr(kSharded.size() + 1);
    const std::size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      return fail(error, "sharded needs 'sharded:N:<inner-spec>'");
    }
    const std::string_view count_tok = rest.substr(0, colon);
    const std::string_view inner = rest.substr(colon + 1);
    const auto shards = parse_u32(count_tok);
    if (!shards || *shards == 0) {
      return fail(error, "bad shard count " + quoted(count_tok) +
                             " (want an integer >= 1)");
    }
    if (inner.substr(0, kSharded.size()) == kSharded) {
      return fail(error, "sharded cannot nest another sharded spec");
    }
    if (!parse_demux_spec(inner, error)) {
      if (error != nullptr) {
        *error = "bad inner spec " + quoted(inner) +
                 (error->empty() ? "" : ": " + *error);
      }
      return std::nullopt;
    }
    config.algorithm = Algorithm::kSharded;
    config.shards = *shards;
    config.inner_spec = std::string(inner);
    return config;
  }

  const auto parts = split(spec, ':');
  const std::string_view head = parts[0];
  if (head == "bsd") {
    config.algorithm = Algorithm::kBsd;
  } else if (head == "mtf") {
    config.algorithm = Algorithm::kMtf;
  } else if (head == "srcache") {
    config.algorithm = Algorithm::kSrCache;
  } else if (head == "sequent") {
    config.algorithm = Algorithm::kSequent;
  } else if (head == "hashed_mtf") {
    config.algorithm = Algorithm::kHashedMtf;
  } else if (head == "connection_id") {
    config.algorithm = Algorithm::kConnectionId;
  } else if (head == "dynamic") {
    config.algorithm = Algorithm::kDynamic;
  } else if (head == "rcu") {
    config.algorithm = Algorithm::kRcu;
  } else if (head == "flat") {
    config.algorithm = Algorithm::kFlat;
  } else if (head == "flat16") {
    config.algorithm = Algorithm::kFlat16;
  } else if (head == "cuckoo") {
    config.algorithm = Algorithm::kCuckoo;
    // A partial-key cuckoo table derives its alternate bucket from the
    // fingerprint tag, so both bucket choices inherit the hash's quality —
    // under a fold that an address schedule can collapse (xor_fold), every
    // colliding key shares both buckets and the table degrades to an
    // 8-entry list it must shed from. Default to the hardware CRC32C
    // family instead; an explicit hasher token still overrides.
    config.hasher = net::HasherKind::kCrc32c;
  } else {
    return fail(error, "unknown algorithm " + quoted(head));
  }

  if (config.algorithm == Algorithm::kConnectionId) {
    if (parts.size() > 2) {
      return fail(error, "connection_id takes at most one ':capacity' token");
    }
    if (parts.size() == 2) {
      const auto capacity = parse_u32(parts[1]);
      if (!capacity || *capacity == 0) {
        return fail(error, "bad connection_id capacity " + quoted(parts[1]));
      }
      config.id_capacity = *capacity;
    }
    return config;
  }

  // The slot-array tables share capacity parsing and the resilience gates.
  const bool is_flat = config.algorithm == Algorithm::kFlat ||
                       config.algorithm == Algorithm::kFlat16 ||
                       config.algorithm == Algorithm::kCuckoo;
  const bool takes_chains = config.algorithm == Algorithm::kSequent ||
                            config.algorithm == Algorithm::kHashedMtf ||
                            config.algorithm == Algorithm::kDynamic ||
                            config.algorithm == Algorithm::kRcu;
  if (parts.size() > 1 && !takes_chains && !is_flat) {
    return fail(error,
                std::string(head) + " takes no ':' parameters");
  }

  // One pass over the remaining tokens. The numeric count is positional
  // (directly after the algorithm name); the hasher token and the option
  // tokens may follow in any order, each at most once — duplicates and
  // conflicts are named errors, never silent last-wins.
  const bool cacheable = config.algorithm == Algorithm::kSequent ||
                         config.algorithm == Algorithm::kRcu;
  const bool rehashable = config.algorithm == Algorithm::kSequent || is_flat;
  const bool cappable = config.algorithm == Algorithm::kSequent ||
                        config.algorithm == Algorithm::kDynamic || is_flat;
  const bool growable = config.algorithm == Algorithm::kDynamic || is_flat;
  bool saw_hasher = false;
  bool saw_nocache = false;
  bool saw_rehash = false;
  bool saw_max = false;
  bool saw_incremental = false;
  for (std::size_t idx = 1; idx < parts.size(); ++idx) {
    const std::string_view tok = parts[idx];
    if (const auto count = parse_u32(tok)) {
      if (idx != 1) {
        return fail(error, "count token " + quoted(tok) +
                               " must come directly after the algorithm name");
      }
      if (*count == 0) {
        return fail(error, "count must be >= 1");
      }
      if (is_flat) {
        config.flat_capacity = *count;
      } else {
        config.chains = *count;
      }
      continue;
    }
    if (const auto hs = parse_hash_spec_token(tok)) {
      if (saw_hasher) {
        return fail(error, "duplicate hasher token " + quoted(tok));
      }
      // hashed_mtf is a frozen paper strawman: it stays unkeyed.
      if (hs->seed != 0 && config.algorithm == Algorithm::kHashedMtf) {
        return fail(error, "hashed_mtf does not take a keyed hasher (" +
                               quoted(tok) + ")");
      }
      config.hasher = hs->kind;
      config.hash_seed = hs->seed;
      saw_hasher = true;
      continue;
    }
    // A hasher name with a mangled seed suffix ("crc32@1f@2e", "crc32@",
    // 9+ hex digits) deserves a precise diagnosis, not "unknown token".
    if (const std::size_t at = tok.find('@');
        at != std::string_view::npos &&
        parse_hasher_name(tok.substr(0, at)).has_value()) {
      return fail(error, "bad seed suffix in " + quoted(tok) +
                             " (want one '@' and 1-8 hex digits)");
    }
    if (tok == "nocache") {
      if (!cacheable) {
        return fail(error, "'nocache' is not supported by " +
                               std::string(algorithm_name(config.algorithm)));
      }
      if (saw_nocache) return fail(error, "duplicate 'nocache' token");
      config.per_chain_cache = false;
      saw_nocache = true;
    } else if (tok == "rehash") {
      if (!rehashable) {
        return fail(error, "'rehash' is not supported by " +
                               std::string(algorithm_name(config.algorithm)));
      }
      if (saw_rehash) return fail(error, "duplicate 'rehash' token");
      config.rehash_on_overload = true;
      saw_rehash = true;
    } else if (tok.substr(0, 4) == "max=") {
      if (!cappable) {
        return fail(error, "'max=N' is not supported by " +
                               std::string(algorithm_name(config.algorithm)));
      }
      if (saw_max) return fail(error, "duplicate 'max=N' token");
      const auto cap = parse_u32(tok.substr(4));
      if (!cap || *cap == 0) {
        return fail(error, "bad cap in " + quoted(tok) +
                               " (want an integer >= 1)");
      }
      config.max_pcbs = *cap;
      saw_max = true;
    } else if (tok == "incremental") {
      if (!growable) {
        return fail(error, "'incremental' is not supported by " +
                               std::string(algorithm_name(config.algorithm)));
      }
      if (saw_incremental) return fail(error, "duplicate 'incremental' token");
      config.incremental = true;
      saw_incremental = true;
    } else {
      return fail(error, "unknown token " + quoted(tok));
    }
  }
  return config;
}

}  // namespace tcpdemux::core
