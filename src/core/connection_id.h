// Connection-ID direct indexing — the protocol-extension strawman of §3.5.
//
// TP4, X.25, and XTP negotiate a small integer connection ID carried in
// every data packet, which the receiver uses to index a PCB array directly:
// exactly one PCB examined, no search at all. The paper's point is that
// hashing makes PCB lookup cheap enough that this protocol surgery is not
// worth its cost; this demuxer provides the lower bound the comparison
// needs.
//
// Modeling note: with a real protocol the ID arrives in the packet header.
// Here the "negotiation" is insert() assigning a slot, and lookup() by flow
// key stands in for the receiver reading the ID out of the header — it
// costs the 1 examined PCB the array access would, via an O(1) exact-match
// side table. lookup_by_id() is the literal array access for callers that
// carry the ID themselves.
#ifndef TCPDEMUX_CORE_CONNECTION_ID_H_
#define TCPDEMUX_CORE_CONNECTION_ID_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/demuxer.h"

namespace tcpdemux::core {

class ConnectionIdDemuxer final : public Demuxer {
 public:
  /// `capacity` bounds the PCB array, like a negotiated ID space would.
  explicit ConnectionIdDemuxer(std::size_t capacity = 65536);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return id_by_key_.size(); }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override { return "connection_id"; }
  [[nodiscard]] std::size_t memory_bytes() const override {
    // Slot array + free list + exact-match side table (node estimate).
    return size() * sizeof(Pcb) + sizeof(*this) +
           slots_.capacity() * sizeof(slots_[0]) +
           free_ids_.capacity() * sizeof(std::uint32_t) +
           id_by_key_.size() * (sizeof(net::FlowKey) + 2 * sizeof(void*));
  }

  /// The negotiated ID for `pcb` (its slot index), as the peer would carry
  /// it in packet headers. This demuxer assigns conn_id = slot index.
  [[nodiscard]] std::uint32_t id_of(const Pcb& pcb) const noexcept {
    return static_cast<std::uint32_t>(pcb.conn_id);
  }

  /// Direct array access by negotiated ID. Always examines exactly 1 PCB.
  [[nodiscard]] Pcb* lookup_by_id(std::uint32_t id) const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  std::size_t capacity_;
  std::vector<std::unique_ptr<Pcb>> slots_;
  std::vector<std::uint32_t> free_ids_;
  std::unordered_map<net::FlowKey, std::uint32_t> id_by_key_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_CONNECTION_ID_H_
