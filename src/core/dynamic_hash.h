// Self-tuning hashed PCB lookup — the paper's "the system administrator
// may increase the value of H" (§3.4) turned into policy.
//
// Identical to the Sequent algorithm, except the chain table grows itself:
// when the mean load (PCBs per chain) exceeds `max_load`, the table
// rehashes to the next prime roughly twice the size, relinking the
// existing PCBs in place (no PCB is reallocated, so Pcb* handles stay
// valid — the same guarantee a kernel needs). This is the direction
// production stacks actually took (e.g. dynamically sized inpcb hash
// tables in later BSDs and Linux's ehash).
#ifndef TCPDEMUX_CORE_DYNAMIC_HASH_H_
#define TCPDEMUX_CORE_DYNAMIC_HASH_H_

#include <cstdint>
#include <vector>

#include "core/demuxer.h"
#include "core/pcb_list.h"
#include "net/hashers.h"

namespace tcpdemux::core {

class DynamicHashDemuxer final : public Demuxer {
 public:
  struct Options {
    std::uint32_t initial_chains = 19;
    double max_load = 2.0;  ///< rehash when size > max_load * chains
    net::HasherKind hasher = net::HasherKind::kCrc32;
    bool per_chain_cache = true;
  };

  DynamicHashDemuxer() : DynamicHashDemuxer(Options()) {}
  explicit DynamicHashDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t memory_bytes() const override {
    return size() * sizeof(Pcb) + sizeof(*this) +
           buckets_.capacity() * sizeof(Bucket);
  }

  [[nodiscard]] std::uint32_t chains() const noexcept {
    return static_cast<std::uint32_t>(buckets_.size());
  }
  [[nodiscard]] std::uint64_t rehash_count() const noexcept {
    return rehashes_;
  }

  /// The next prime >= 2 * n from a fixed doubling-prime ladder (exposed
  /// for tests).
  [[nodiscard]] static std::uint32_t next_table_size(std::uint32_t n) noexcept;

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  struct Bucket {
    PcbList list;
    Pcb* cache = nullptr;
  };

  [[nodiscard]] std::uint32_t chain_of(const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key,
                           static_cast<std::uint32_t>(buckets_.size()));
  }
  void maybe_grow();

  Options options_;
  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_DYNAMIC_HASH_H_
