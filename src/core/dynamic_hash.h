// Self-tuning hashed PCB lookup — the paper's "the system administrator
// may increase the value of H" (§3.4) turned into policy.
//
// Identical to the Sequent algorithm, except the chain table grows itself:
// when the mean load (PCBs per chain) exceeds `max_load`, the table
// rehashes to the next prime roughly twice the size, relinking the
// existing PCBs in place (no PCB is reallocated, so Pcb* handles stay
// valid — the same guarantee a kernel needs). This is the direction
// production stacks actually took (e.g. dynamically sized inpcb hash
// tables in later BSDs and Linux's ehash).
#ifndef TCPDEMUX_CORE_DYNAMIC_HASH_H_
#define TCPDEMUX_CORE_DYNAMIC_HASH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/demuxer.h"
#include "core/pcb_list.h"
#include "net/hashers.h"

namespace tcpdemux::core {

class DynamicHashDemuxer final : public Demuxer {
 public:
  struct Options {
    std::uint32_t initial_chains = 19;
    double max_load = 2.0;  ///< rehash when size > max_load * chains
    net::HashSpec hasher = net::HasherKind::kCrc32;  ///< seed 0 = unkeyed
    bool per_chain_cache = true;
    /// Refuse inserts beyond this many PCBs (0 = unbounded). Refused
    /// inserts return nullptr and count in resilience().inserts_shed.
    /// There is no rehash-on-overload here: this table's answer to load is
    /// growth, which dilutes benign skew but not a collision flood — pair
    /// a keyed hasher with the cap for hostile deployments.
    std::size_t max_pcbs = 0;
    /// Grow by incremental migration instead of stop-the-world relink:
    /// the outgoing bucket array drains behind a cursor, a bounded batch
    /// per operation, so no insert ever pays an O(size) pause (see
    /// DESIGN.md "Incremental resize & degradation ladder").
    bool incremental = false;
  };

  DynamicHashDemuxer() : DynamicHashDemuxer(Options()) {}
  explicit DynamicHashDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t memory_bytes() const override {
    std::size_t bytes = size() * sizeof(Pcb) + sizeof(*this) +
                        buckets_.capacity() * sizeof(Bucket);
    if (old_ != nullptr) {
      bytes += sizeof(OldBuckets) + old_->buckets.capacity() * sizeof(Bucket);
    }
    return bytes;
  }

  bool migration_step() override;
  /// True while an outgoing bucket array is still draining.
  [[nodiscard]] bool migrating() const noexcept { return old_ != nullptr; }
  /// PCBs still resident in the outgoing array (0 when not migrating).
  [[nodiscard]] std::size_t migration_debt() const noexcept {
    return old_ == nullptr ? 0 : old_->residents;
  }
  /// True while growth is allocation-blocked (ladder rung 1 engaged).
  [[nodiscard]] bool growth_blocked() const noexcept { return grow_blocked_; }

  [[nodiscard]] std::uint32_t chains() const noexcept {
    return static_cast<std::uint32_t>(buckets_.size());
  }
  [[nodiscard]] std::uint64_t rehash_count() const noexcept {
    return rehashes_;
  }
  [[nodiscard]] std::vector<std::size_t> occupancy() const override {
    std::vector<std::size_t> sizes;
    sizes.reserve(buckets_.size() +
                  (old_ == nullptr ? 0 : old_->buckets.size()));
    for (const auto& b : buckets_) sizes.push_back(b.list.size());
    if (old_ != nullptr) {
      for (const auto& b : old_->buckets) sizes.push_back(b.list.size());
    }
    return sizes;
  }

  [[nodiscard]] ResilienceStats resilience() const override;
  /// Longest chain an overload check would tolerate at the current size
  /// (reported in resilience() so operators can watch skew even though
  /// this table's only automatic response is growth).
  [[nodiscard]] std::uint64_t watermark_limit() const noexcept {
    return 16 + 8 * (size_ / buckets_.size() + 1);
  }

  /// The next prime >= 2 * n from a fixed doubling-prime ladder (exposed
  /// for tests).
  [[nodiscard]] static std::uint32_t next_table_size(std::uint32_t n) noexcept;

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  struct Bucket {
    PcbList list;
    Pcb* cache = nullptr;
  };

  /// The outgoing bucket array during an incremental migration. Nothing
  /// is ever inserted into it; buckets [0, cursor) are fully drained and
  /// the cursor only advances past empty buckets, so `residents > 0`
  /// guarantees a non-empty bucket at or past the cursor.
  struct OldBuckets {
    std::vector<Bucket> buckets;
    std::size_t cursor = 0;
    std::size_t residents = 0;
  };

  [[nodiscard]] std::uint32_t chain_of(const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key,
                           static_cast<std::uint32_t>(buckets_.size()));
  }
  [[nodiscard]] std::uint32_t old_chain_of(
      const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key,
                           static_cast<std::uint32_t>(old_->buckets.size()));
  }
  void maybe_grow();
  bool start_migration(std::uint32_t new_size);
  void defer_migration();
  void migrate_batch(std::size_t budget);
  void finish_migration();

  Options options_;
  std::vector<Bucket> buckets_;
  /// Total PCBs across the live and (during migration) outgoing arrays.
  std::size_t size_ = 0;
  std::uint64_t rehashes_ = 0;
  std::uint64_t watermark_ = 0;
  std::uint64_t inserts_shed_ = 0;
  /// Degradation-ladder state: growth allocation-blocked, with the
  /// current backoff window and inserts remaining until the next retry.
  bool grow_blocked_ = false;
  std::uint64_t grow_backoff_ = 0;
  std::uint64_t grow_retry_in_ = 0;
  std::unique_ptr<OldBuckets> old_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_DYNAMIC_HASH_H_
