#include "core/pcb.h"

namespace tcpdemux::core {

std::string_view to_string(TcpState state) noexcept {
  switch (state) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

}  // namespace tcpdemux::core
