// Structural invariant validators for every PCB-lookup algorithm.
//
// The demuxers are intrusive pointer structures — per-chain caches pointing
// into linked lists, move-to-front splices, epoch-deferred frees. A single
// dangling cache pointer or miscounted chain silently corrupts the "PCBs
// examined" metric the whole reproduction is built on, so each algorithm
// gets a validator that proves the structure is well-formed:
//
//   * every doubly linked chain is consistent (next/prev mirror each other,
//     head/tail/size agree, no cycles);
//   * every single-entry cache points at a live member of the structure it
//     caches for (never a freed or foreign PCB);
//   * every PCB sits on exactly the chain its key hashes to;
//   * per-chain occupancy totals reconcile with the advertised size();
//   * no PCB is reachable twice and no two PCBs share a key;
//   * (RCU) no reachable node is flagged retired, no cache resurrects a
//     retired node, and the epoch manager's freed count never exceeds its
//     retired count.
//
// Validators are read-only and single-threaded: for the RCU demuxer the
// caller must be quiescent (no concurrent readers or writers), exactly the
// contract of its destructor. They are deliberately O(n) or worse — they
// are the oracle for tests/core/fuzz_ops_test, not a production path.
#ifndef TCPDEMUX_CORE_VALIDATE_H_
#define TCPDEMUX_CORE_VALIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tcpdemux::core {

class PcbList;
class BsdListDemuxer;
class MoveToFrontDemuxer;
class SendReceiveCacheDemuxer;
class SequentDemuxer;
class HashedMtfDemuxer;
class DynamicHashDemuxer;
class ConnectionIdDemuxer;
class RcuSequentDemuxer;
class FlatDemuxer;
class CuckooDemuxer;
class ShardedDemuxer;
class Demuxer;
struct Pcb;

/// Outcome of one structural validation pass. Empty errors == well-formed.
struct ValidationReport {
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  /// All errors joined with newlines ("" when ok), for test failure output.
  [[nodiscard]] std::string to_string() const;
};

/// The validator proper. A class (not free functions) so a single friend
/// declaration per demuxer grants read access to the private structure.
class StructuralValidator {
 public:
  static ValidationReport validate(const PcbList& list);
  static ValidationReport validate(const BsdListDemuxer& demuxer);
  static ValidationReport validate(const MoveToFrontDemuxer& demuxer);
  static ValidationReport validate(const SendReceiveCacheDemuxer& demuxer);
  static ValidationReport validate(const SequentDemuxer& demuxer);
  static ValidationReport validate(const HashedMtfDemuxer& demuxer);
  static ValidationReport validate(const DynamicHashDemuxer& demuxer);
  static ValidationReport validate(const ConnectionIdDemuxer& demuxer);
  /// RCU variant: caller must be quiescent (no concurrent readers/writers).
  static ValidationReport validate(const RcuSequentDemuxer& demuxer);
  /// Flat table: tag/key/hash agreement per slot, robin-hood probe-distance
  /// ordering, occupancy vs size() vs load-factor bound.
  static ValidationReport validate(const FlatDemuxer& demuxer);
  /// Cuckoo table: tag/key/hash agreement per slot, bucket/alt-bucket
  /// placement, counted-filter soundness (every overflowed resident is
  /// registered in its primary bucket's filter, every bit backed by a
  /// nonzero count), occupancy vs size() vs load-factor bound.
  static ValidationReport validate(const CuckooDemuxer& demuxer);
  /// Sharded fleet: every shard's inner structure (recursive, via
  /// validate_demuxer), sum-of-shard-sizes vs size(), the cross-shard
  /// no-duplicate-key invariant, and — while steering has not drifted
  /// (misplaced_possible() false) — every PCB resident on exactly the
  /// shard its key steers to.
  static ValidationReport validate(const ShardedDemuxer& demuxer);
};

/// Validates a registry-created demuxer by dynamic type. Reports an error
/// for a type no validator covers, so a future algorithm cannot silently
/// skip validation in the fuzz harness.
[[nodiscard]] ValidationReport validate_demuxer(const Demuxer& demuxer);

/// Test-only mutable access to demuxer internals, used by the negative
/// validator tests to plant precise corruptions (stale cache pointer,
/// PCB on the wrong chain, bad size counter) and by nothing else.
/// Every accessor returns a reference so the test can restore the original
/// value before the structure is destroyed.
struct ValidatorTestAccess {
  static PcbList& list(BsdListDemuxer& d);
  static Pcb*& cache(BsdListDemuxer& d);
  static PcbList& list(MoveToFrontDemuxer& d);
  static PcbList& list(SendReceiveCacheDemuxer& d);
  static Pcb*& recv_cache(SendReceiveCacheDemuxer& d);
  static Pcb*& send_cache(SendReceiveCacheDemuxer& d);
  static PcbList& chain(SequentDemuxer& d, std::uint32_t chain);
  static Pcb*& cache(SequentDemuxer& d, std::uint32_t chain);
  static std::size_t& size(SequentDemuxer& d);
  static PcbList& chain(HashedMtfDemuxer& d, std::uint32_t chain);
  static std::size_t& size(HashedMtfDemuxer& d);
  static PcbList& chain(DynamicHashDemuxer& d, std::uint32_t chain);
  static Pcb*& cache(DynamicHashDemuxer& d, std::uint32_t chain);
  static std::size_t& size(DynamicHashDemuxer& d);
  /// Rebinds `key`'s table entry to `id` (planting a key->slot mismatch).
  static void rebind_id(ConnectionIdDemuxer& d, const Pcb& pcb,
                        std::uint32_t id);
  /// Pushes `id` onto the free list without clearing its slot.
  static void push_free_id(ConnectionIdDemuxer& d, std::uint32_t id);
  static void pop_free_id(ConnectionIdDemuxer& d);
  /// Moves the head node of `from` onto chain `to` (wrong-chain plant).
  /// Returns false if `from` is empty. Undo by moving it back.
  static bool rcu_move_head(RcuSequentDemuxer& d, std::uint32_t from,
                            std::uint32_t to);
  /// Points chain `chain`'s cache at chain `other`'s head node (foreign
  /// cache plant). Returns false if `other` is empty.
  static bool rcu_cache_foreign_head(RcuSequentDemuxer& d, std::uint32_t chain,
                                     std::uint32_t other);
  static void rcu_clear_cache(RcuSequentDemuxer& d, std::uint32_t chain);
  /// Flips the retired flag on `chain`'s head node (reachable-but-retired
  /// plant). Returns false if the chain is empty.
  static bool rcu_toggle_head_retired(RcuSequentDemuxer& d,
                                      std::uint32_t chain);
  static void rcu_adjust_size(RcuSequentDemuxer& d, std::ptrdiff_t delta);
  /// Flat-table plants: the slot-tag byte (flip a fingerprint bit), the
  /// size counter, and a whole-slot move (from must be occupied, to empty)
  /// that breaks the robin-hood probe invariant. Undo by moving back.
  static std::vector<std::uint8_t>& flat_tags(FlatDemuxer& d);
  static std::size_t& flat_size(FlatDemuxer& d);
  static void flat_move_slot(FlatDemuxer& d, std::size_t from, std::size_t to);
  /// Cuckoo-table plants: the slot-tag byte (flip a fingerprint bit), the
  /// presence-filter word of a bucket (plant a false negative), the size
  /// counter, and a raw whole-slot move (from occupied, to empty) that
  /// skips filter bookkeeping — breaking bucket placement, filter
  /// membership, or both. Undo by moving back.
  static std::uint8_t& cuckoo_tag(CuckooDemuxer& d, std::size_t slot);
  static std::uint16_t& cuckoo_filter(CuckooDemuxer& d, std::size_t bucket);
  static std::size_t& cuckoo_size(CuckooDemuxer& d);
  static void cuckoo_move_slot(CuckooDemuxer& d, std::size_t from,
                               std::size_t to);
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_VALIDATE_H_
