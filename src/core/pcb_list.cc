#include "core/pcb_list.h"

namespace tcpdemux::core {

PcbList::~PcbList() { clear(); }

PcbList::PcbList(PcbList&& other) noexcept
    : head_(std::exchange(other.head_, nullptr)),
      tail_(std::exchange(other.tail_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

PcbList& PcbList::operator=(PcbList&& other) noexcept {
  if (this != &other) {
    clear();
    head_ = std::exchange(other.head_, nullptr);
    tail_ = std::exchange(other.tail_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Pcb* PcbList::emplace_front(const net::FlowKey& key, std::uint64_t conn_id) {
  Pcb* pcb = new Pcb(key, conn_id);  // NOLINT(raw-owning-memory)
  link_front(pcb);
  return pcb;
}

PcbList::ScanResult PcbList::find_scan(
    const net::FlowKey& key) const noexcept {
  ScanResult r;
  for (Pcb* p = head_; p != nullptr; p = p->next) {
    ++r.examined;
    if (p->key == key) {
      r.pcb = p;
      return r;
    }
  }
  return r;
}

PcbList::ScanResult PcbList::find_best_match(
    const net::FlowKey& key) const noexcept {
  ScanResult r;
  int best_score = -1;
  for (Pcb* p = head_; p != nullptr; p = p->next) {
    ++r.examined;
    const int score = p->key.match_score(key);
    if (score < 0) continue;
    if (score == 0) {  // exact match: cannot be beaten
      r.pcb = p;
      return r;
    }
    if (best_score < 0 || score < best_score) {
      best_score = score;
      r.pcb = p;
    }
  }
  return r;
}

void PcbList::move_to_front(Pcb* pcb) noexcept {
  if (pcb == head_) return;
  unlink(pcb);
  link_front(pcb);
}

void PcbList::erase(Pcb* pcb) noexcept {
  unlink(pcb);
  delete pcb;  // NOLINT(raw-owning-memory)
}

Pcb* PcbList::extract_front() noexcept {
  Pcb* pcb = head_;
  if (pcb != nullptr) unlink(pcb);
  return pcb;
}

void PcbList::adopt_front(Pcb* pcb) noexcept { link_front(pcb); }

void PcbList::clear() noexcept {
  Pcb* p = head_;
  while (p != nullptr) {
    Pcb* next = p->next;
    delete p;  // NOLINT(raw-owning-memory)
    p = next;
  }
  head_ = tail_ = nullptr;
  size_ = 0;
}

void PcbList::unlink(Pcb* pcb) noexcept {
  if (pcb->prev != nullptr) {
    pcb->prev->next = pcb->next;
  } else {
    head_ = pcb->next;
  }
  if (pcb->next != nullptr) {
    pcb->next->prev = pcb->prev;
  } else {
    tail_ = pcb->prev;
  }
  pcb->next = pcb->prev = nullptr;
  --size_;
}

void PcbList::link_front(Pcb* pcb) noexcept {
  pcb->prev = nullptr;
  pcb->next = head_;
  if (head_ != nullptr) {
    head_->prev = pcb;
  } else {
    tail_ = pcb;
  }
  head_ = pcb;
  ++size_;
}

}  // namespace tcpdemux::core
