// Cache-conscious flat demuxer: open addressing with robin-hood probing,
// one-byte fingerprint tags, and tombstone-free backward-shift deletion.
//
// The paper's figure of merit — PCBs examined per lookup — is a surrogate
// for memory traffic: every chain-following demuxer in this library (BSD,
// MTF, SR, Sequent, RCU) pays at least one dependent pointer chase into a
// few-hundred-byte PCB per examined node. This structure attacks the
// traffic directly, the way modern flow tables (Cuckoo++ [LeS17], DPDK
// hash) do:
//
//   * power-of-two slot array, structure-of-arrays layout: a probe walks a
//     dense 1-byte tag array first, so resolving a slot costs a fraction
//     of a cache line, not a PCB-sized load;
//   * the tag holds an occupied bit plus 7 fingerprint bits from the top
//     of the hash. A key comparison (the 96-bit flow key, in its own dense
//     array) happens only on a fingerprint match — with 7 bits, ~1/128 of
//     colliding probes are false positives;
//   * robin-hood insertion bounds probe-sequence variance (an inserting
//     key displaces any resident closer to its home slot), which keeps the
//     early-exit bound on misses tight;
//   * deletion backward-shifts the following probe run instead of leaving
//     tombstones, so load factor — and therefore probe length — never
//     degrades with churn;
//   * growth doubles the table at 7/8 occupancy and rehashes in place
//     (amortized O(1) per insert). Pcb objects are individually owned, so
//     Pcb* stay stable across growth and slot shifts;
//   * with Options::incremental the rehash is no longer stop-the-world:
//     the old slot array is kept behind a drain cursor and every
//     insert/erase/lookup migrates a bounded batch of residents into the
//     doubled array, so worst-case per-operation work is O(batch), not
//     O(n). When the doubled array cannot be allocated the table degrades
//     down a ladder — defer-and-retry with exponential backoff, then
//     shed-at-watermark — instead of corrupting state (see DESIGN.md
//     "Incremental resize & degradation ladder").
//
// Accounting: `examined` counts key comparisons (fingerprint hits), the
// moments this structure actually touches a connection's identity. Tag
// probes are free by design — that is the whole point of the layout — so
// a miss that never matches a fingerprint reports 0 examined PCBs.
//
// The hash is finalized with a 32-bit avalanche mix before use: the table
// masks low bits for the slot index and takes the top bits as the
// fingerprint, so weak folds (the 1992 candidates) would otherwise cluster
// both. Chained tables hide this behind a prime modulus; a flat table must
// repair it itself.
#ifndef TCPDEMUX_CORE_FLAT_DEMUXER_H_
#define TCPDEMUX_CORE_FLAT_DEMUXER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/demuxer.h"
#include "net/hashers.h"

namespace tcpdemux::core {

class FlatDemuxer final : public Demuxer {
 public:
  struct Options {
    std::size_t initial_capacity = 1024;  ///< rounded up to a power of two
    net::HashSpec hasher = net::HasherKind::kXorFold;  ///< seed 0 = unkeyed
    /// Rotate the hash seed and rehash in place when an insert's probe run
    /// exceeds the overload watermark (collision-flood defense).
    bool rehash_on_overload = false;
    /// Refuse inserts beyond this many PCBs (0 = unbounded). Refused
    /// inserts return nullptr and count in resilience().inserts_shed.
    std::size_t max_pcbs = 0;
    /// Probe the fingerprint-tag array 16 slots at a time (core/simd.h)
    /// instead of byte-at-a-time: one vector compare filters a whole group
    /// and one more finds the run-terminating empty slot. Registered as the
    /// `flat16` spec. Storage, insertion, and deletion are unchanged —
    /// robin-hood keeps every probe run contiguous from the home slot to
    /// the first empty slot, which is exactly what group termination needs.
    bool group_probe = false;
    /// Grow by incremental migration instead of a stop-the-world rehash:
    /// the old array drains behind a cursor, a bounded batch per
    /// operation, with the allocation-failure degradation ladder armed.
    bool incremental = false;
  };

  FlatDemuxer() : FlatDemuxer(Options()) {}
  explicit FlatDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  void lookup_batch(std::span<const net::FlowKey> keys,
                    std::span<LookupResult> results,
                    SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;

  /// Current slot count (doubles as the table grows). Test/bench hook.
  /// While an incremental migration is in flight this is the *new* array's
  /// capacity; the draining old array is extra (see memory_bytes()).
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  bool migration_step() override;
  /// True while an incremental migration is draining the old array.
  [[nodiscard]] bool migrating() const noexcept { return old_ != nullptr; }
  /// Residents still waiting in the old array (0 when not migrating).
  [[nodiscard]] std::size_t migration_debt() const noexcept {
    return old_ != nullptr ? old_->residents : 0;
  }
  /// True while the degradation ladder has growth blocked on allocation
  /// failure (inserts shed once occupancy reaches 15/16).
  [[nodiscard]] bool growth_blocked() const noexcept { return grow_blocked_; }
  /// Longest probe sequence any resident key currently needs (test hook:
  /// robin-hood keeps this small even at high load).
  [[nodiscard]] std::size_t max_probe_distance() const noexcept;

  /// Open addressing has no chains; the natural partition is the probe
  /// run — a maximal span of contiguous occupied slots (wrapping), which
  /// bounds every resident's probe cost. Run lengths sum to size().
  [[nodiscard]] std::vector<std::size_t> occupancy() const override;

  [[nodiscard]] ResilienceStats resilience() const override;
  /// Current hash spec (seed changes after an overload rehash; test hook).
  [[nodiscard]] net::HashSpec hash_spec() const noexcept {
    return options_.hasher;
  }
  /// Longest probe run an overload check tolerates: robin-hood keeps benign
  /// probe runs near O(log capacity) even at 7/8 load, while a flood aimed
  /// at one home slot grows a run linearly and crosses this quickly.
  [[nodiscard]] std::uint64_t watermark_limit() const noexcept {
    std::uint64_t log2 = 0;
    for (std::size_t c = capacity(); c > 1; c >>= 1) ++log2;
    return 24 + 4 * log2;
  }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  /// Tag byte: occupied bit (0x80) | top 7 hash bits. 0 means empty.
  [[nodiscard]] static constexpr std::uint8_t tag_of(std::uint32_t h) noexcept {
    return static_cast<std::uint8_t>(0x80U | (h >> 25));
  }

  /// The avalanche finalizer (net::mix32_avalanche) repairs weak folds so
  /// every input bit reaches the masked index bits and fingerprint bits.
  [[nodiscard]] std::uint32_t hash_of(const net::FlowKey& key) const noexcept {
    return net::mix32_avalanche(net::hash_flow(options_.hasher, key));
  }

  /// Distance of slot `i`'s resident from its home slot, in probe steps.
  [[nodiscard]] std::size_t probe_distance(std::size_t i) const noexcept {
    return (i - (hashes_[i] & mask_)) & mask_;
  }

  struct Probe {
    std::size_t slot = kNpos;      ///< kNpos when absent
    std::uint32_t examined = 0;    ///< key comparisons performed
  };
  [[nodiscard]] Probe find_slot(std::uint32_t h,
                                const net::FlowKey& key) const noexcept;
  /// Group-probed variant of find_slot (Options::group_probe): examines
  /// 16-aligned tag groups with one vector compare each. Capacity is a
  /// power of two >= 16, so groups never straddle the array end and the
  /// wrap is a mask on the group base. Slots before the home slot in its
  /// own group are masked out — they belong to an earlier probe run.
  [[nodiscard]] Probe find_slot_grouped(std::uint32_t h,
                                        const net::FlowKey& key) const noexcept;

  /// Robin-hood placement of a (pre-hashed) entry; the caller has already
  /// established the key is absent and the load factor is acceptable.
  /// Returns the longest probe distance the placement walked (the overload
  /// watermark signal).
  std::size_t place(std::uint32_t h, net::FlowKey key,
                    std::unique_ptr<Pcb> pcb);
  /// Backward-shift removal of the resident at slot `i`.
  void remove_at(std::size_t i);
  /// Doubles the slot array and re-places every resident (stop-the-world;
  /// the non-incremental growth path).
  void grow();
  /// Growth policy switch: stop-the-world grow(), or the incremental
  /// start/force-finish/ladder machinery, at the 7/8 trigger.
  void maybe_grow();
  /// Watermark bookkeeping after a successful insert; triggers a
  /// seed-rotating rehash when the overload policy says so.
  void note_insert(std::size_t place_distance);
  /// Rotates the seed and re-places every resident at the same capacity
  /// (pointer-stable). Force-finishes any in-flight migration first — the
  /// old array's stored hashes would go stale under the new seed.
  void rehash_with_fresh_seed();

  // --- incremental migration (Options::incremental) ----------------------
  // The previous slot array, kept fully probe-able while it drains. Only
  // removal ever touches it (nothing is placed or displaced into it), so
  // it stays a valid robin-hood table and slots [0, cursor) stay empty:
  // backward-shift pulls entries *toward* the removal slot and vacates the
  // tail of the run, never refilling the drained prefix.
  struct OldTable {
    std::size_t mask = 0;
    std::size_t cursor = 0;     ///< slots [0, cursor) are drained
    std::size_t residents = 0;  ///< entries not yet migrated
    std::vector<std::uint8_t> tags;
    std::vector<std::uint32_t> hashes;
    std::vector<net::FlowKey> keys;
    std::vector<std::unique_ptr<Pcb>> pcbs;

    [[nodiscard]] std::size_t capacity() const noexcept { return mask + 1; }
    [[nodiscard]] std::size_t probe_distance(std::size_t i) const noexcept {
      return (i - (hashes[i] & mask)) & mask;
    }
  };

  /// Scalar probe of the draining old array (no group probing: the old
  /// array is cold by construction and dies within one migration).
  [[nodiscard]] Probe find_slot_old(std::uint32_t h,
                                    const net::FlowKey& key) const noexcept;
  /// Backward-shift removal in the old array (keeps it robin-hood valid).
  void remove_at_old(std::size_t i);
  /// Allocates the doubled array and swings the current one behind the
  /// drain cursor. Returns false — after stepping the degradation ladder —
  /// if the allocation failed (injected or real).
  bool start_migration();
  /// Migrates up to `budget` residents (and advances the cursor over at
  /// most 64*budget empty slots, so a sparse old array still finishes in
  /// bounded steps). No-op when not migrating.
  void migrate_batch(std::size_t budget);
  /// Drains the old array completely (the rare stop-the-world fallback:
  /// a second growth trigger or a seed rotation mid-migration).
  void finish_migration();
  /// Ladder rung 1: growth refused by the allocator. Blocks growth and
  /// arms an exponentially backed-off retry countdown (in inserts).
  void defer_migration();

  Options options_;
  std::size_t mask_ = 0;   ///< capacity - 1 (capacity is a power of two)
  std::size_t size_ = 0;   ///< residents across the live and old arrays

  // Overload / shedding state (see DESIGN.md "Adversarial resilience").
  std::uint64_t watermark_ = 0;
  std::uint64_t overload_rehashes_ = 0;
  std::uint64_t inserts_shed_ = 0;
  std::uint64_t inserts_since_rehash_ = 0;
  std::uint64_t rehash_cooldown_ = 0;  ///< 0 until the first rehash
  // Degradation-ladder state (incremental mode only).
  bool grow_blocked_ = false;       ///< allocation for the next array failed
  std::uint64_t grow_backoff_ = 0;  ///< current retry backoff, in inserts
  std::uint64_t grow_retry_in_ = 0;  ///< inserts until the next retry
  // Structure-of-arrays slot storage. Parallel, all sized capacity():
  // a probe touches tags_ (1 B/slot), then hashes_ for the robin-hood
  // bound (4 B/slot), and keys_ (12 B/slot) only on a fingerprint match.
  // The PCB itself is touched only when returned to the caller.
  std::vector<std::uint8_t> tags_;
  std::vector<std::uint32_t> hashes_;
  std::vector<net::FlowKey> keys_;
  std::vector<std::unique_ptr<Pcb>> pcbs_;
  std::unique_ptr<OldTable> old_;  ///< non-null while migrating
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_FLAT_DEMUXER_H_
