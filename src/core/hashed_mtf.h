// Hash chains with move-to-front — the combination considered and rejected
// in the paper's §3.5.
//
// "One could imagine combining move-to-front with hash chains. However,
// better results can be obtained simply by increasing the number of hash
// chains." This demuxer exists so tbl5_combination can measure that claim:
// MTF inside a chain buys at most the ~2x a perfect front-of-chain policy
// can deliver, while going from 19 to 100 chains buys ~5x.
#ifndef TCPDEMUX_CORE_HASHED_MTF_H_
#define TCPDEMUX_CORE_HASHED_MTF_H_

#include <cstdint>
#include <vector>

#include "core/demuxer.h"
#include "core/pcb_list.h"
#include "net/hashers.h"

namespace tcpdemux::core {

class HashedMtfDemuxer final : public Demuxer {
 public:
  struct Options {
    std::uint32_t chains = 19;
    net::HasherKind hasher = net::HasherKind::kXorFold;
  };

  HashedMtfDemuxer() : HashedMtfDemuxer(Options()) {}
  explicit HashedMtfDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t memory_bytes() const override {
    return size() * sizeof(Pcb) + sizeof(*this) +
           buckets_.capacity() * sizeof(PcbList);
  }
  [[nodiscard]] std::vector<std::size_t> occupancy() const override {
    std::vector<std::size_t> sizes;
    sizes.reserve(buckets_.size());
    for (const auto& list : buckets_) sizes.push_back(list.size());
    return sizes;
  }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  [[nodiscard]] std::uint32_t chain_of(const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key, options_.chains);
  }

  Options options_;
  std::vector<PcbList> buckets_;
  std::size_t size_ = 0;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_HASHED_MTF_H_
