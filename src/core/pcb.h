// The protocol control block (PCB): per-connection TCP state.
//
// This is the object every demultiplexing algorithm in this library
// searches for. Its layout mirrors the classic BSD inpcb + tcpcb pair: the
// demultiplexing identity (the 96-bit flow key), list linkage owned by
// whichever demuxer holds the PCB, and the transport state the TCP machine
// (src/tcp) maintains. The paper's figure of merit — PCBs examined per
// lookup — is a memory-traffic surrogate precisely because these objects
// are a few hundred bytes each and thousands of them do not fit in an
// on-chip cache.
#ifndef TCPDEMUX_CORE_PCB_H_
#define TCPDEMUX_CORE_PCB_H_

#include <cstdint>
#include <string_view>

#include "net/flow_key.h"

namespace tcpdemux::core {

/// RFC 793 connection states.
enum class TcpState : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

[[nodiscard]] std::string_view to_string(TcpState state) noexcept;

/// Protocol control block. Created and owned by a Demuxer; the embedded
/// list linkage (`next`/`prev`) belongs to the owning demuxer's PcbList and
/// must not be touched by other code.
struct Pcb {
  explicit Pcb(const net::FlowKey& k, std::uint64_t id) noexcept
      : key(k), conn_id(id) {}

  Pcb(const Pcb&) = delete;
  Pcb& operator=(const Pcb&) = delete;

  // --- demultiplexing identity -------------------------------------------
  net::FlowKey key;
  std::uint64_t conn_id = 0;  ///< dense id assigned at insert time

  // --- intrusive list linkage (owned by the demuxer) ----------------------
  Pcb* next = nullptr;
  Pcb* prev = nullptr;

  // --- transport state (maintained by tcp::TcpMachine) --------------------
  TcpState state = TcpState::kClosed;
  std::uint32_t iss = 0;      ///< initial send sequence number
  std::uint32_t irs = 0;      ///< initial receive sequence number
  std::uint32_t snd_una = 0;  ///< oldest unacknowledged sequence number
  std::uint32_t snd_nxt = 0;  ///< next sequence number to send
  std::uint32_t rcv_nxt = 0;  ///< next sequence number expected
  std::uint16_t snd_wnd = 65535;
  std::uint16_t rcv_wnd = 65535;

  // --- RTT / congestion bookkeeping (gives the PCB its realistic bulk) ----
  std::uint32_t srtt_us = 0;
  std::uint32_t rttvar_us = 0;
  std::uint32_t cwnd = 4380;
  std::uint32_t ssthresh = 0xffffffff;
  std::uint32_t rto_us = 1'000'000;
  std::uint32_t dupacks = 0;  ///< consecutive non-advancing ACKs (t_dupacks)
  bool delack_pending = false;  ///< delayed ACK owed (TF_DELACK)

  // --- counters ------------------------------------------------------------
  std::uint64_t segs_in = 0;
  std::uint64_t segs_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_PCB_H_
