// SIMD group-probe portability shim.
//
// The group-probed tables (flat16's 16-slot fingerprint groups, the cuckoo
// table's 4-slot buckets) filter many 1-byte tags per probe step with one
// vector compare. All vector intrinsics go through this header so they
// appear in exactly one audited place (the repo lint's simd-discipline rule
// enforces this) and toolchains without SSE2/NEON degrade to a scalar
// 8-byte SWAR path instead of a build break.
//
// Backend selection is compile-time — `simd_backend()` reports which one
// was chosen so tests and benches can verify it at runtime. Defining
// TCPDEMUX_SIMD_FORCE_SWAR forces the scalar path on any architecture;
// the `*_swar` entry points are additionally always compiled and
// unit-tested against the native path, so the fallback cannot rot on
// machines where it is not the default.
#ifndef TCPDEMUX_CORE_SIMD_H_
#define TCPDEMUX_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#if !defined(TCPDEMUX_SIMD_FORCE_SWAR)
#if defined(__SSE2__)
#include <emmintrin.h>  // NOLINT(simd-discipline)
#define TCPDEMUX_SIMD_SSE2 1
#elif defined(__aarch64__) && (defined(__ARM_NEON) || defined(__ARM_NEON__))
#include <arm_neon.h>  // NOLINT(simd-discipline)
#define TCPDEMUX_SIMD_NEON 1
#endif
#endif

namespace tcpdemux::core {

/// Number of 1-byte fingerprint tags examined by one group probe.
inline constexpr std::size_t kGroupWidth = 16;

namespace simd_detail {

// Per-byte equality mask for one 64-bit lane: returns a word with 0x80 in
// every byte of `word` equal to `byte`, 0x00 elsewhere. The (x & 0x7f..) +
// 0x7f.. trick never carries across byte boundaries, so the mask is exact
// per byte (the classic `(v - 0x01..) & ~v & 0x80..` zero-byte test is not:
// a borrow from a zero byte can flag its neighbour).
[[nodiscard]] inline constexpr std::uint64_t eq_mask8(std::uint64_t word,
                                                      std::uint8_t byte) noexcept {
  constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
  const std::uint64_t x = word ^ (0x0101010101010101ULL * byte);
  return ~(((x & kLow7) + kLow7) | x | kLow7);
}

// Compacts an eq_mask8 result (0x80 per matching byte) into an 8-bit mask,
// bit i set iff byte i matched. The multiply places byte i's 0x80 bit at
// bit 56+i; terms that overflow 2^64 wrap into bits < 56 and are shifted
// out, so the result is exact.
[[nodiscard]] inline constexpr std::uint32_t movemask8(std::uint64_t mask) noexcept {
  return static_cast<std::uint32_t>((mask * 0x0002040810204081ULL) >> 56);
}

}  // namespace simd_detail

/// Scalar 16-wide group match: bit i of the result is set iff tags[i] ==
/// tag. Always compiled (and differentially tested against `group_match`)
/// regardless of the selected backend.
[[nodiscard]] inline std::uint32_t group_match_swar(const std::uint8_t* tags,
                                                    std::uint8_t tag) noexcept {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::memcpy(&lo, tags, sizeof lo);
  std::memcpy(&hi, tags + 8, sizeof hi);
  return simd_detail::movemask8(simd_detail::eq_mask8(lo, tag)) |
         (simd_detail::movemask8(simd_detail::eq_mask8(hi, tag)) << 8);
}

/// Scalar 4-wide bucket match (cuckoo buckets): bit i of the result is set
/// iff tags[i] == tag. Only the low 4 bits can be set.
[[nodiscard]] inline std::uint32_t bucket_match_swar(const std::uint8_t* tags,
                                                     std::uint8_t tag) noexcept {
  std::uint32_t word = 0;
  std::memcpy(&word, tags, sizeof word);
  constexpr std::uint32_t kLow7 = 0x7f7f7f7fU;
  const std::uint32_t x = word ^ (0x01010101U * tag);
  const std::uint32_t m = ~(((x & kLow7) + kLow7) | x | kLow7);
  // Same movemask compaction as the 8-byte lane, scaled to 4 bytes: byte
  // i's 0x80 bit lands at bit 28+i; wrapped overflow terms stay below 28.
  return (m * 0x00204081U) >> 28;
}

#if defined(TCPDEMUX_SIMD_SSE2)

[[nodiscard]] inline std::uint32_t group_match(const std::uint8_t* tags,
                                               std::uint8_t tag) noexcept {
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));  // NOLINT(simd-discipline)
  const __m128i eq =
      _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(tag)));  // NOLINT(simd-discipline)
  return static_cast<std::uint32_t>(_mm_movemask_epi8(eq));  // NOLINT(simd-discipline)
}

[[nodiscard]] constexpr std::string_view simd_backend() noexcept {
  return "sse2";
}

#elif defined(TCPDEMUX_SIMD_NEON)

[[nodiscard]] inline std::uint32_t group_match(const std::uint8_t* tags,
                                               std::uint8_t tag) noexcept {
  const uint8x16_t eq = vceqq_u8(vld1q_u8(tags), vdupq_n_u8(tag));  // NOLINT(simd-discipline)
  // NEON has no movemask; weight each matching lane by its bit position
  // and horizontally add each half.
  alignas(16) static constexpr std::uint8_t kBits[16] = {
      1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t weighted = vandq_u8(eq, vld1q_u8(kBits));  // NOLINT(simd-discipline)
  return static_cast<std::uint32_t>(vaddv_u8(vget_low_u8(weighted))) |  // NOLINT(simd-discipline)
         (static_cast<std::uint32_t>(vaddv_u8(vget_high_u8(weighted)))  // NOLINT(simd-discipline)
          << 8);
}

[[nodiscard]] constexpr std::string_view simd_backend() noexcept {
  return "neon";
}

#else

[[nodiscard]] inline std::uint32_t group_match(const std::uint8_t* tags,
                                               std::uint8_t tag) noexcept {
  return group_match_swar(tags, tag);
}

[[nodiscard]] constexpr std::string_view simd_backend() noexcept {
  return "swar";
}

#endif

/// 4-wide bucket match on the native backend. A 4-byte probe does not fill
/// a vector register, so every backend uses the 32-bit SWAR lane — the name
/// exists so call sites stay uniform if a wider bucket ever warrants SSE.
[[nodiscard]] inline std::uint32_t bucket_match(const std::uint8_t* tags,
                                                std::uint8_t tag) noexcept {
  return bucket_match_swar(tags, tag);
}

/// Bitmask of empty slots (tag 0x00) in a 16-slot group.
[[nodiscard]] inline std::uint32_t group_empty(const std::uint8_t* tags) noexcept {
  return group_match(tags, 0);
}

[[nodiscard]] inline std::uint32_t group_empty_swar(const std::uint8_t* tags) noexcept {
  return group_match_swar(tags, 0);
}

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_SIMD_H_
