// Sharded receive path: N independent inner demuxers fed by RSS steering.
//
// The paper's cost model assumes one shared PCB table; its modern failure
// mode is not probe length but cache-coherence traffic on that shared
// state. Receive-side scaling sidesteps the sharing entirely: the NIC
// Toeplitz-hashes each frame and steers it to a per-core queue, and each
// core owns a private PCB table that no other core ever touches (the
// IncludeOS tcp_smp design). This class is the host half of that split:
//
//   * steering — net::rss_steer (Toeplitz by default) over an
//     RssIndirectionTable maps every flow key to its *home shard*; insert,
//     erase, and lookup all go to the home shard, so in steady state a
//     shard only ever sees its own flows;
//   * mis-steering — the host can rewrite indirection entries or rotate
//     the steering seed while flows are live (rebalancing, key rotation,
//     NAT rebinding). PCBs deliberately stay on the shard that owns them —
//     migrating established TCP state is the expensive path the handoff
//     protocol exists to avoid — so lookups for re-steered flows miss on
//     the new home shard and fall back to probing the others. The
//     `misplaced_possible` flag gates that slow path: until steering
//     mutates, no lookup ever pays for it;
//   * aggregation — size/occupancy/telemetry present the shard fleet as
//     one demuxer. telemetry() merges per-shard registries into a fresh
//     value on every read (Telemetry::merge_from), so repeated reads never
//     double-count; occupancy() reports per-shard sizes, which is exactly
//     what interval_sample needs to expose cross-shard skew.
//
// Single-threaded by contract, like every registry backend: the bench
// harness gets its parallelism by driving shard(i) from thread i, which is
// the real deployment shape (each core runs its own shard; the parent view
// is a control-plane object).
#ifndef TCPDEMUX_CORE_SHARDED_DEMUXER_H_
#define TCPDEMUX_CORE_SHARDED_DEMUXER_H_

#include <memory>
#include <vector>

#include "core/demux_registry.h"
#include "core/demuxer.h"
#include "net/rss.h"

namespace tcpdemux::core {

class ShardedDemuxer : public Demuxer {
 public:
  struct Options {
    std::uint32_t shards = 4;
    /// Per-shard backend; every shard gets an identical instance.
    DemuxConfig inner;
    /// Steering hash. Toeplitz unkeyed by default — what NIC RSS computes.
    net::HashSpec steering{net::HasherKind::kToeplitz, 0};
    std::uint32_t indirection_entries = net::RssIndirectionTable::kDefaultEntries;
  };

  explicit ShardedDemuxer(const Options& options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  using Demuxer::lookup;
  void lookup_batch(std::span<const net::FlowKey> keys,
                    std::span<LookupResult> results,
                    SegmentKind kind = SegmentKind::kData) override;
  void note_sent(Pcb* pcb) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ResilienceStats resilience() const override;
  bool migration_step() override;
  [[nodiscard]] std::vector<std::size_t> occupancy() const override;

  /// Merged fleet view, built fresh on every call: each shard's synced
  /// telemetry() snapshot accumulated via Telemetry::merge_from. The
  /// parent's own registry is never populated, so there is nothing to
  /// double-count no matter how often shards and parent are read.
  [[nodiscard]] report::Telemetry telemetry() const override;
  void enable_telemetry_histograms(bool on) noexcept override;
  void reset_telemetry() noexcept override;
  void reset_stats() noexcept override;

  // --- sharded-specific surface -------------------------------------

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Direct shard access: bench threads drive shard(i) from core i, and
  /// the NIC dispatch delivers per-queue traffic straight to its shard.
  [[nodiscard]] Demuxer& shard(std::uint32_t i) noexcept {
    return *shards_[i];
  }
  [[nodiscard]] const Demuxer& shard(std::uint32_t i) const noexcept {
    return *shards_[i];
  }

  /// The shard steering currently assigns `key` to.
  [[nodiscard]] std::uint32_t home_shard(const net::FlowKey& key) const noexcept {
    return net::rss_steer(steering_, key, indirection_);
  }
  [[nodiscard]] const net::HashSpec& steering() const noexcept {
    return steering_;
  }
  [[nodiscard]] const net::RssIndirectionTable& indirection() const noexcept {
    return indirection_;
  }

  /// Host-side rewrite of one indirection entry (rebalance / flow-director
  /// override). Live flows whose hash lands on this entry are re-steered
  /// away from the shard that owns their PCB, so the cross-shard fallback
  /// path arms permanently (until the table empties).
  void set_indirection_entry(std::uint32_t index, std::uint32_t queue);

  /// Rotates the steering seed (hash-key rotation under flood). Every
  /// established flow may now be steered to a different shard; arms the
  /// fallback path like set_indirection_entry.
  void rotate_steering_seed();

  /// True when steering has mutated since the table was last empty —
  /// i.e. when lookups may need the cross-shard fallback.
  [[nodiscard]] bool misplaced_possible() const noexcept {
    return misplaced_possible_;
  }
  /// Lookups resolved on a non-home shard via the fallback sweep — the
  /// demuxer-level mis-steer indicator.
  [[nodiscard]] std::uint64_t cross_shard_hits() const noexcept {
    return cross_shard_hits_;
  }

 private:
  // StructuralValidator checks the cross-shard no-duplicate-key and
  // home-placement invariants from the inside, like every backend.
  friend class StructuralValidator;

  /// Ledger-free exact-key membership probe on shard `s` (used to keep the
  /// no-duplicate-key invariant when steering has drifted): wildcard
  /// lookups touch neither caches nor stats, so probing does not distort
  /// the per-shard accounting.
  [[nodiscard]] bool present_on(std::uint32_t s, const net::FlowKey& key) const;

  /// The shard that owns `pcb` (home shard in steady state; a sweep when
  /// steering has drifted). Returns shard_count() when not found.
  [[nodiscard]] std::uint32_t owning_shard(const Pcb* pcb,
                                           const net::FlowKey& key) const;

  net::HashSpec steering_;
  net::RssIndirectionTable indirection_;
  std::vector<std::unique_ptr<Demuxer>> shards_;
  bool misplaced_possible_ = false;
  std::uint64_t cross_shard_hits_ = 0;
  // Scratch for lookup_batch's partition-by-shard (member, not per-call
  // allocation).
  std::vector<std::uint32_t> batch_shard_;
  std::vector<net::FlowKey> batch_keys_;
  std::vector<LookupResult> batch_results_;
  std::vector<std::uint32_t> batch_index_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_SHARDED_DEMUXER_H_
