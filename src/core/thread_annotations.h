// Clang thread-safety (capability) annotations and annotated lock types.
//
// Every concurrency invariant in this repo used to be checked only
// dynamically — TSan on whatever schedules `ctest -L concurrency` happens
// to exercise. This header moves the lock protocols into the type system:
// a mutex is a *capability*, data it protects is GUARDED_BY it, and
// functions that expect it held say REQUIRES. Clang's -Wthread-safety
// then proves, at compile time and on every path, that no annotated field
// is touched without its lock and no lock is taken twice. The
// TCPDEMUX_THREAD_SAFETY CMake option turns the analysis on (Clang only);
// tests/static/ holds the negative-compile harness proving the
// annotations actually reject planted violations.
//
// On GCC (and any compiler without the attributes) everything here
// expands to nothing and the lock types collapse to thin wrappers over
// their std counterparts — zero behavioral or layout difference, so the
// GCC-only CI image builds exactly the code it always built.
//
// Conventions (see DESIGN.md "Static analysis"):
//   * lock-bearing types in src/core, src/report, and src/tcp use
//     core::Mutex / core::SharedMutex, never bare std::mutex — the
//     lock-discipline lint pass enforces this, so new concurrent code is
//     annotated-by-construction;
//   * lock acquisition goes through the RAII MutexLock / ReaderMutexLock
//     (std::scoped_lock is not annotation-aware: a lock taken through it
//     is invisible to the analysis);
//   * fields a mutex protects carry GUARDED_BY(mutex_); internal helpers
//     that expect the lock held carry REQUIRES(mutex_) instead of
//     re-locking.
//
// The macro set mirrors the canonical LLVM mutex.h reference so the
// vocabulary matches the Clang documentation exactly.
#ifndef TCPDEMUX_CORE_THREAD_ANNOTATIONS_H_
#define TCPDEMUX_CORE_THREAD_ANNOTATIONS_H_

#include <mutex>         // NOLINT(lock-discipline): wrapped, not bare
#include <shared_mutex>  // NOLINT(lock-discipline): wrapped, not bare

#if defined(__clang__) && defined(__has_attribute)
#define TCPDEMUX_THREAD_ATTR(x) __attribute__((x))
#else
#define TCPDEMUX_THREAD_ATTR(x)  // no-op off Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) TCPDEMUX_THREAD_ATTR(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY TCPDEMUX_THREAD_ATTR(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) TCPDEMUX_THREAD_ATTR(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) TCPDEMUX_THREAD_ATTR(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) TCPDEMUX_THREAD_ATTR(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) TCPDEMUX_THREAD_ATTR(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  TCPDEMUX_THREAD_ATTR(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  TCPDEMUX_THREAD_ATTR(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) TCPDEMUX_THREAD_ATTR(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  TCPDEMUX_THREAD_ATTR(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) TCPDEMUX_THREAD_ATTR(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  TCPDEMUX_THREAD_ATTR(release_shared_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  TCPDEMUX_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) \
  TCPDEMUX_THREAD_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) TCPDEMUX_THREAD_ATTR(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) TCPDEMUX_THREAD_ATTR(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) TCPDEMUX_THREAD_ATTR(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  TCPDEMUX_THREAD_ATTR(no_thread_safety_analysis)
#endif

namespace tcpdemux::core {

/// std::mutex as a named capability. Same size, same cost; Clang can now
/// track which scopes hold it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;  // NOLINT(lock-discipline): the one sanctioned wrap
};

/// std::shared_mutex as a named capability (exclusive + shared modes).
/// No current user — provided for the sharded receive path, whose
/// read-mostly shard directories want reader/writer locking with the same
/// compile-time discipline.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mutex_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mutex_.try_lock_shared();
  }

 private:
  // NOLINTNEXTLINE(lock-discipline): the one sanctioned wrap
  std::shared_mutex mutex_;
};

/// RAII exclusive lock, annotation-aware (std::scoped_lock is not: locks
/// taken through it are invisible to the analysis).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive lock over a SharedMutex (writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterMutexLock() RELEASE() { mutex_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared lock over a SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mutex_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_THREAD_ANNOTATIONS_H_
