#include "core/bsd_list.h"

#include "core/fault_inject.h"

namespace tcpdemux::core {

Pcb* BsdListDemuxer::insert(const net::FlowKey& key) {
  if (list_.find_scan(key).pcb != nullptr) return nullptr;
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  telemetry_->on_insert();
  return list_.emplace_front(key, next_conn_id());
}

bool BsdListDemuxer::erase(const net::FlowKey& key) {
  const auto scan = list_.find_scan(key);
  if (scan.pcb == nullptr) return false;
  if (cache_ == scan.pcb) cache_ = nullptr;
  list_.erase(scan.pcb);
  telemetry_->on_erase();
  return true;
}

LookupResult BsdListDemuxer::lookup(const net::FlowKey& key,
                                    SegmentKind /*kind*/) {
  LookupResult r;
  if (cache_ != nullptr) {
    ++r.examined;
    if (cache_->key == key) {
      r.pcb = cache_;
      r.cache_hit = true;
      note_lookup(r);
      return r;
    }
  }
  const auto scan = list_.find_scan(key);
  r.examined += scan.examined;
  r.pcb = scan.pcb;
  if (scan.pcb != nullptr) cache_ = scan.pcb;
  note_lookup(r);
  return r;
}

LookupResult BsdListDemuxer::lookup_wildcard(const net::FlowKey& key) {
  const auto scan = list_.find_best_match(key);
  return LookupResult{scan.pcb, scan.examined, false};
}

void BsdListDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  list_.for_each(fn);
}

}  // namespace tcpdemux::core
